// Command gdn-benchjson converts `go test -json -bench` output into a
// compact machine-readable benchmark report, so CI can upload one JSON
// artifact per commit and the perf trajectory of the bulk path is
// recorded instead of scrolled away in build logs.
//
//	go test -run 'xxx^' -bench . -benchmem -json ./... | gdn-benchjson -out BENCH_ci.json
//
// The converter reads the test2json event stream (one JSON object per
// line), extracts benchmark result lines, and emits:
//
//	{
//	  "commit": "...", "goos": "...", "goarch": "...", "generated": "...",
//	  "results": [{"package": "gdn/internal/rpc", "name": "BenchmarkRPC_CallParallel",
//	               "procs": 4, "iterations": 100, "ns_per_op": 5312.0,
//	               "mb_per_s": 0, "bytes_per_op": 745, "allocs_per_op": 13}, ...]
//	}
//
// Lines that are not benchmark results pass through silently; a stream
// with no benchmarks at all is reported as an error so a CI
// misconfiguration (benchmarks filtered out) fails loudly instead of
// uploading an empty artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// testEvent is the subset of the test2json event schema we consume.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// result is one parsed benchmark line.
type result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// report is the artifact layout.
type report struct {
	Commit    string    `json:"commit,omitempty"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	Generated time.Time `json:"generated"`
	Results   []result  `json:"results"`
}

func main() {
	in := flag.String("in", "-", "test2json input file (- = stdin)")
	out := flag.String("out", "BENCH_ci.json", "output artifact path")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	results, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results in input; is -bench wired through?"))
	}

	rep := report{
		Commit:    os.Getenv("GITHUB_SHA"),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Generated: time.Now().UTC(),
		Results:   results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("gdn-benchjson: wrote %d results to %s\n", len(results), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gdn-benchjson:", err)
	os.Exit(1)
}

// parse consumes a test2json stream and returns every benchmark
// result found in output events.
func parse(r io.Reader) ([]result, error) {
	var results []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate interleaved non-JSON noise (panics, build output).
			continue
		}
		if ev.Action != "output" {
			continue
		}
		if res, ok := parseBenchLine(ev.Package, strings.TrimSpace(ev.Output)); ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// parseBenchLine parses one "BenchmarkName-P  N  x ns/op  [y MB/s]
// [z B/op] [w allocs/op]" line; ok reports whether the line was one.
func parseBenchLine(pkg, line string) (result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res := result{Package: pkg, Name: name, Procs: procs, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			seen = true
		case "MB/s":
			res.MBPerS = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		}
	}
	return res, seen
}

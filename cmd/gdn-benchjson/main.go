// Command gdn-benchjson converts `go test -json -bench` output into a
// compact machine-readable benchmark report, so CI can upload one JSON
// artifact per commit and the perf trajectory of the bulk path is
// recorded instead of scrolled away in build logs.
//
//	go test -run 'xxx^' -bench . -benchmem -json ./... | gdn-benchjson -out BENCH_ci.json
//
// The converter reads the test2json event stream (one JSON object per
// line), extracts benchmark result lines, and emits:
//
//	{
//	  "commit": "...", "goos": "...", "goarch": "...", "generated": "...",
//	  "results": [{"package": "gdn/internal/rpc", "name": "BenchmarkRPC_CallParallel",
//	               "procs": 4, "iterations": 100, "ns_per_op": 5312.0,
//	               "mb_per_s": 0, "bytes_per_op": 745, "allocs_per_op": 13}, ...]
//	}
//
// Lines that are not benchmark results pass through silently; a stream
// with no benchmarks at all is reported as an error so a CI
// misconfiguration (benchmarks filtered out) fails loudly instead of
// uploading an empty artifact.
//
// With -baseline the converter additionally gates on regressions: the
// fresh report is compared against a committed baseline report and the
// run fails when ns/op of any benchmark named in -compare regressed by
// more than -max-regress percent:
//
//	gdn-benchjson -in bench-raw.ndjson -out BENCH_ci.json \
//	    -baseline BENCH_seed.json \
//	    -compare BenchmarkE5_Download_Large,BenchmarkRPC_CallParallel \
//	    -max-regress 25
//
// A gated benchmark missing from either report is an error, not a
// pass — renaming a benchmark of record must not silently disarm the
// gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// testEvent is the subset of the test2json event schema we consume.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// result is one parsed benchmark line.
type result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// report is the artifact layout.
type report struct {
	Commit    string    `json:"commit,omitempty"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	Generated time.Time `json:"generated"`
	Results   []result  `json:"results"`
}

func main() {
	in := flag.String("in", "-", "test2json input file (- = stdin)")
	out := flag.String("out", "BENCH_ci.json", "output artifact path")
	baseline := flag.String("baseline", "", "baseline report to compare against (enables the regression gate)")
	compare := flag.String("compare", "", "comma-separated benchmark names the gate checks (requires -baseline)")
	maxRegress := flag.Float64("max-regress", 25, "fail when a gated benchmark's ns/op regresses more than this percent")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `usage: gdn-benchjson [flags]

Converts a 'go test -json -bench' event stream into one JSON benchmark
artifact, and optionally gates the run against a committed baseline.

  go test -run 'xxx^' -bench . -benchmem -json ./... | gdn-benchjson -out BENCH_ci.json

Flags:
`)
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), `
Regression gate (-baseline):
  With -baseline, each benchmark named in -compare is looked up in both
  the baseline report and the fresh run; the gate fails when its ns/op
  regressed by more than -max-regress percent. Faster-than-baseline
  runs always pass. A gated name missing from EITHER report is a hard
  failure, not a pass — renaming or deleting a benchmark of record
  must not silently disarm the gate. -baseline without any -compare
  names is likewise an error.

  gdn-benchjson -in bench-raw.ndjson -out /dev/null \
      -baseline BENCH_seed.json \
      -compare BenchmarkE5_Download_Large,BenchmarkRPC_CallParallel \
      -max-regress 25

Exit codes:
  0  artifact written; gate (if armed) passed
  1  any failure: unreadable input, no benchmark lines in the stream,
     unwritable -out, unparsable baseline, a gated name missing from
     baseline or current run, or a regression over budget
`)
	}
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	results, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results in input; is -bench wired through?"))
	}

	rep := report{
		Commit:    os.Getenv("GITHUB_SHA"),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Generated: time.Now().UTC(),
		Results:   results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("gdn-benchjson: wrote %d results to %s\n", len(results), *out)
	}

	if *baseline != "" {
		if err := compareAgainst(*baseline, results, splitNames(*compare), *maxRegress); err != nil {
			fatal(err)
		}
	}
}

// splitNames parses the -compare list, tolerating spaces and empty
// entries.
func splitNames(s string) []string {
	var names []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// compareAgainst gates the fresh results on a committed baseline: each
// named benchmark's ns/op may regress by at most maxRegress percent.
// Faster-than-baseline runs always pass; a gated name absent from
// either side fails the gate rather than disarming it.
func compareAgainst(baselinePath string, current []result, names []string, maxRegress float64) error {
	if len(names) == 0 {
		return fmt.Errorf("-baseline given but -compare names no benchmarks")
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	index := func(rs []result) map[string]result {
		m := make(map[string]result, len(rs))
		for _, r := range rs {
			m[r.Name] = r
		}
		return m
	}
	baseBy, curBy := index(base.Results), index(current)

	var failures []string
	for _, name := range names {
		b, okB := baseBy[name]
		c, okC := curBy[name]
		switch {
		case !okB:
			return fmt.Errorf("gated benchmark %s missing from baseline %s", name, baselinePath)
		case !okC:
			return fmt.Errorf("gated benchmark %s missing from this run", name)
		}
		pct := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		fmt.Printf("gdn-benchjson: %s: baseline %.0f ns/op, current %.0f ns/op (%+.1f%%)\n",
			name, b.NsPerOp, c.NsPerOp, pct)
		if pct > maxRegress {
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (budget %.0f%%)", name, pct, maxRegress))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gdn-benchjson:", err)
	os.Exit(1)
}

// parse consumes a test2json stream and returns every benchmark
// result found in output events. One logical output line can be split
// across several events — the testing package writes the padded
// benchmark name and the numbers separately — so output is reassembled
// per package and parsed only at newline boundaries.
func parse(r io.Reader) ([]result, error) {
	var results []result
	partial := make(map[string]string) // package → output tail awaiting its newline
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate interleaved non-JSON noise (panics, build output).
			continue
		}
		if ev.Action != "output" {
			continue
		}
		buf := partial[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			if res, ok := parseBenchLine(ev.Package, strings.TrimSpace(buf[:nl])); ok {
				results = append(results, res)
			}
			buf = buf[nl+1:]
		}
		partial[ev.Package] = buf
	}
	return results, sc.Err()
}

// parseBenchLine parses one "BenchmarkName-P  N  x ns/op  [y MB/s]
// [z B/op] [w allocs/op]" line; ok reports whether the line was one.
func parseBenchLine(pkg, line string) (result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res := result{Package: pkg, Name: name, Procs: procs, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			seen = true
		case "MB/s":
			res.MBPerS = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		}
	}
	return res, seen
}

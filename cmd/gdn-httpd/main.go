// Command gdn-httpd runs a GDN-enabled HTTPD on real TCP (paper §4):
// the web server that makes GDN packages reachable from standard
// browsers at /pkg/<name> URLs. With -cache it becomes the caching
// flavour — the GDN-enabled proxy server users run on their own
// machines, whose local representatives act as replicas.
//
//	gdn-httpd -listen :8080 -gls :7003 -dns :8001
//	gdn-httpd -listen :3128 -gls :7003 -dns :8001 -cache -cache-obj-addr :9100
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"gdn/internal/core"
	"gdn/internal/daemon"
	"gdn/internal/httpd"
)

func main() {
	var cf daemon.ClientFlags
	cf.Register(flag.CommandLine)
	var (
		listen     = flag.String("listen", ":8080", "HTTP listen address")
		cache      = flag.Bool("cache", false, "install cache replicas during binding (proxy flavour)")
		cacheObj   = flag.String("cache-obj-addr", "", "replica-traffic address for hosted caches (required with -cache)")
		cacheTTL   = flag.String("cache-ttl", "30s", "cache TTL")
		cacheMode  = flag.String("cache-mode", "ttl", "cache coherence: ttl or invalidate")
		register   = flag.Bool("register-caches", false, "register caches in the location service")
		cacheBytes = flag.Int64("cache-bytes", 0, "cache capacity in bytes (0 = default 256 MiB)")
		stateDir   = flag.String("statedir", "", "disk directory for the proxy cache; survives restarts (\"\" = in-memory)")
	)
	var df daemon.DebugFlags
	df.Register(flag.CommandLine)
	flag.Parse()

	rt, err := cf.Runtime()
	if err != nil {
		daemon.Fatal(err)
	}
	if rt.Names() == nil {
		daemon.Fatal(fmt.Errorf("gdn-httpd: -dns is required (names resolve through the GNS)"))
	}

	var disp *core.Dispatcher
	if *cache {
		if *cacheObj == "" {
			flag.Usage()
			os.Exit(2)
		}
		disp, err = core.NewDispatcher(daemon.Net, cf.Site, *cacheObj, nil, daemon.Logf("gdn-httpd/disp"))
		if err != nil {
			daemon.Fatal(err)
		}
	}

	h, err := httpd.New(httpd.Config{
		Runtime:        rt,
		CacheObjects:   *cache,
		Disp:           disp,
		CacheParams:    map[string]string{"ttl": *cacheTTL, "mode": *cacheMode},
		RegisterCaches: *register,
		CacheBytes:     *cacheBytes,
		StateDir:       *stateDir,
		Logf:           daemon.Logf("gdn-httpd"),
	})
	if err != nil {
		daemon.Fatal(err)
	}
	defer h.Close()

	fmt.Printf("gdn-httpd: serving on %s (cache=%v)\n", *listen, *cache)
	if dbg := df.Serve(daemon.Logf("gdn-httpd")); dbg != "" {
		fmt.Printf("gdn-httpd: debug endpoint on http://%s/debug/gdn/metrics\n", dbg)
	}
	if err := http.ListenAndServe(*listen, h); err != nil {
		daemon.Fatal(err)
	}
}

// Command gdn-experiments regenerates every table of the evaluation:
// the reproduction of each quantitative claim in "The Globe
// Distribution Network" (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	gdn-experiments            # run everything
//	gdn-experiments E2 E5 E8   # run selected experiments
//	gdn-experiments -list      # list experiment identifiers
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gdn/internal/experiments"
	"gdn/internal/obs"
)

// runners maps experiment identifiers to their drivers with default
// configurations.
var runners = []struct {
	id   string
	what string
	run  func() []*experiments.Table
}{
	{"E1", "subobject composition overhead", func() []*experiments.Table {
		return []*experiments.Table{experiments.E1Overhead(experiments.E1Config{})}
	}},
	{"E2", "GLS lookup distance + mobile-object ablation", func() []*experiments.Table {
		return []*experiments.Table{experiments.E2LookupDistance(), experiments.E2MobileAblation()}
	}},
	{"E3", "GLS root partitioning + one-way partitions", func() []*experiments.Table {
		return []*experiments.Table{experiments.E3RootPartitioning(experiments.E3Config{}), experiments.E3OneWayPartition()}
	}},
	{"E4", "differentiated replication vs global policies", func() []*experiments.Table {
		return []*experiments.Table{experiments.E4Differentiated(experiments.E4Config{})}
	}},
	{"E5", "end-to-end downloads + chunk ablation", func() []*experiments.Table {
		return []*experiments.Table{experiments.E5Download(experiments.E5Config{}), experiments.E5ChunkAblation()}
	}},
	{"E6", "security channel cost", func() []*experiments.Table {
		return []*experiments.Table{experiments.E6ChannelCost(experiments.E6Config{})}
	}},
	{"E7", "GNS caching and batching", func() []*experiments.Table {
		return []*experiments.Table{experiments.E7NameService(experiments.E7Config{})}
	}},
	{"E8", "replication protocols under read/write mixes", func() []*experiments.Table {
		return []*experiments.Table{experiments.E8Protocols(experiments.E8Config{})}
	}},
	{"E9", "object-server checkpoint and recovery", func() []*experiments.Table {
		return []*experiments.Table{experiments.E9Recovery(experiments.E9Config{})}
	}},
	{"E10", "security admission", func() []*experiments.Table {
		return []*experiments.Table{experiments.E10Admission()}
	}},
	{"E11", "replica failover under a fleet of downloads", func() []*experiments.Table {
		return []*experiments.Table{experiments.E11Failover(experiments.E11Config{})}
	}},
	{"E12", "chaos soak: seeded fault schedules vs the invariants", func() []*experiments.Table {
		return []*experiments.Table{experiments.E12ChaosSoak(experiments.E12Config{Seeds: e12Seeds})}
	}},
}

// e12Seeds carries the -seeds flag to the E12 runner; empty keeps the
// experiment's default seed sweep.
var e12Seeds []int64

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	seeds := flag.String("seeds", "", "comma-separated chaos seeds for E12 (default 1,2,3)")
	metricsDump := flag.Bool("metrics-dump", false, "print the final metrics-registry snapshot (Prometheus text) after the experiments")
	flag.Parse()

	if *seeds != "" {
		for _, s := range strings.Split(*seeds, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gdn-experiments: bad -seeds value %q: %v\n", s, err)
				os.Exit(2)
			}
			e12Seeds = append(e12Seeds, v)
		}
	}

	if *list {
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.id, r.what)
		}
		return
	}

	selected := make(map[string]bool)
	for _, arg := range flag.Args() {
		selected[strings.ToUpper(arg)] = true
	}

	ran := 0
	for _, r := range runners {
		if len(selected) > 0 && !selected[r.id] {
			continue
		}
		fmt.Printf("== %s: %s ==\n", r.id, r.what)
		for _, tab := range r.run() {
			tab.Render(os.Stdout)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "gdn-experiments: nothing matched %v (try -list)\n", flag.Args())
		os.Exit(1)
	}
	if *metricsDump {
		fmt.Println("== metrics registry ==")
		if err := obs.WritePrometheus(os.Stdout, obs.Default); err != nil {
			fmt.Fprintf(os.Stderr, "gdn-experiments: metrics dump: %v\n", err)
			os.Exit(1)
		}
	}
}

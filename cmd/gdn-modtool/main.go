// Command gdn-modtool is the moderator tool (paper §4): it creates,
// updates and removes package DSOs, defines their replication
// scenarios, and registers their names with the GNS Naming Authority.
//
//	gdn-modtool -gls :7003 -dns :8001 -na :8010 \
//	    create -name /apps/graphics/gimp -protocol masterslave \
//	    -servers :9001,:9011 -dir ./gimp-1.0
//
//	gdn-modtool ... list -dir /apps
//	gdn-modtool ... add-replica -name /apps/graphics/gimp -server :9021
//	gdn-modtool ... remove -name /apps/graphics/gimp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gdn/internal/core"
	"gdn/internal/daemon"
	"gdn/internal/modtool"
)

func main() {
	var cf daemon.ClientFlags
	cf.Register(flag.CommandLine)
	na := flag.String("na", "", "Naming Authority address (required)")
	var df daemon.DebugFlags
	df.Register(flag.CommandLine)
	flag.Parse()

	if *na == "" || flag.NArg() < 1 {
		usage()
	}

	rt, err := cf.Runtime()
	if err != nil {
		daemon.Fatal(err)
	}
	tool, err := modtool.New(modtool.Config{
		Site:            cf.Site,
		Net:             daemon.Net,
		Runtime:         rt,
		NamingAuthority: *na,
	})
	if err != nil {
		daemon.Fatal(err)
	}
	defer tool.Close()
	df.Serve(daemon.Logf("gdn-modtool"))

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "create":
		runCreate(tool, args)
	case "remove":
		runRemove(tool, args)
	case "add-replica":
		runAddReplica(tool, args)
	case "list":
		runList(tool, args)
	case "search":
		runSearch(tool, args)
	case "scenario":
		runScenario(tool, args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gdn-modtool [flags] <create|remove|add-replica|list|search|scenario> [args]
run "gdn-modtool -h" for connection flags`)
	os.Exit(2)
}

func runCreate(tool *modtool.Tool, args []string) {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	name := fs.String("name", "", "package object name, e.g. /apps/graphics/gimp")
	protocol := fs.String("protocol", "masterslave", "replication protocol")
	servers := fs.String("servers", "", "comma-separated GOS command addresses")
	dir := fs.String("dir", "", "directory whose files become the package content")
	desc := fs.String("description", "", "package description")
	fs.Parse(args)
	if *name == "" || *servers == "" || *dir == "" {
		fs.Usage()
		os.Exit(2)
	}

	files, err := loadDir(*dir)
	if err != nil {
		daemon.Fatal(err)
	}
	meta := map[string]string{}
	if *desc != "" {
		meta["description"] = *desc
	}
	oid, cost, err := tool.CreatePackage(*name, core.Scenario{
		Protocol: *protocol,
		Servers:  daemon.SplitList(*servers),
	}, modtool.Package{Files: files, Meta: meta})
	if err != nil {
		daemon.Fatal(err)
	}
	fmt.Printf("created %s\n  oid: %s\n  files: %d\n  network cost: %v\n", *name, oid, len(files), cost)
}

// loadDir reads every regular file under dir, keyed by relative path.
func loadDir(dir string) (map[string][]byte, error) {
	files := make(map[string][]byte)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files[filepath.ToSlash(rel)] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no files under %s", dir)
	}
	return files, nil
}

func runRemove(tool *modtool.Tool, args []string) {
	fs := flag.NewFlagSet("remove", flag.ExitOnError)
	name := fs.String("name", "", "package object name")
	fs.Parse(args)
	if *name == "" {
		fs.Usage()
		os.Exit(2)
	}
	if _, err := tool.RemovePackage(*name); err != nil {
		daemon.Fatal(err)
	}
	fmt.Printf("removed %s\n", *name)
}

func runAddReplica(tool *modtool.Tool, args []string) {
	fs := flag.NewFlagSet("add-replica", flag.ExitOnError)
	name := fs.String("name", "", "package object name")
	server := fs.String("server", "", "GOS command address to add")
	fs.Parse(args)
	if *name == "" || *server == "" {
		fs.Usage()
		os.Exit(2)
	}
	if _, err := tool.AddReplica(*name, *server); err != nil {
		daemon.Fatal(err)
	}
	fmt.Printf("added replica of %s at %s\n", *name, *server)
}

func runList(tool *modtool.Tool, args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	dir := fs.String("dir", "/", "directory to list")
	fs.Parse(args)
	names, err := tool.List(*dir)
	if err != nil {
		daemon.Fatal(err)
	}
	for _, n := range names {
		fmt.Println(n)
	}
}

func runSearch(tool *modtool.Tool, args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	dir := fs.String("dir", "/", "directory to search under")
	query := fs.String("q", "", "query matched against names and metadata")
	fs.Parse(args)
	if *query == "" {
		fs.Usage()
		os.Exit(2)
	}
	hits, err := tool.Search(*dir, *query)
	if err != nil {
		daemon.Fatal(err)
	}
	for _, h := range hits {
		fmt.Printf("%s\t(matched %s)\n", h.Name, h.Matched)
	}
}

func runScenario(tool *modtool.Tool, args []string) {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	name := fs.String("name", "", "package object name")
	fs.Parse(args)
	if *name == "" {
		fs.Usage()
		os.Exit(2)
	}
	sc, err := tool.Scenario(*name)
	if err != nil {
		daemon.Fatal(err)
	}
	fmt.Println(sc)
}

// Command gdn-gos runs a Globe Object Server on real TCP (paper §4):
// the application-independent daemon hosting replicas of distributed
// shared objects, commanded by moderator tools, registering its
// replicas in the location service and checkpointing them to disk.
//
//	gdn-gos -cmd-addr :9001 -obj-addr :9002 -gls :7003 -state /var/lib/gdn
package main

import (
	"flag"
	"fmt"
	"os"

	"gdn/internal/daemon"
	"gdn/internal/gos"
)

func main() {
	var cf daemon.ClientFlags
	cf.Register(flag.CommandLine)
	var (
		cmdAddr  = flag.String("cmd-addr", "", "listen address for moderator commands (required)")
		objAddr  = flag.String("obj-addr", "", "listen address for replica traffic (required)")
		stateDir = flag.String("state", "", "checkpoint directory (empty disables persistence)")
	)
	var df daemon.DebugFlags
	df.Register(flag.CommandLine)
	flag.Parse()
	if *cmdAddr == "" || *objAddr == "" {
		flag.Usage()
		os.Exit(2)
	}

	rt, err := cf.Runtime()
	if err != nil {
		daemon.Fatal(err)
	}
	srv, err := gos.Start(daemon.Net, gos.Config{
		Site:     cf.Site,
		CmdAddr:  *cmdAddr,
		ObjAddr:  *objAddr,
		Runtime:  rt,
		StateDir: *stateDir,
		Logf:     daemon.Logf("gdn-gos"),
	})
	if err != nil {
		daemon.Fatal(err)
	}
	fmt.Printf("gdn-gos: commands on %s, replica traffic on %s, %d replicas recovered\n",
		*cmdAddr, *objAddr, srv.Hosted())
	if dbg := df.Serve(daemon.Logf("gdn-gos")); dbg != "" {
		fmt.Printf("gdn-gos: debug endpoint on http://%s/debug/gdn/metrics\n", dbg)
	}

	sig := daemon.WaitForSignal()
	fmt.Printf("gdn-gos: %v, checkpointing and shutting down\n", sig)
	if err := srv.Shutdown(); err != nil {
		daemon.Fatal(err)
	}
}

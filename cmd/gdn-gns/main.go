// Command gdn-gns runs the name-service side of the GDN on real TCP:
// an authoritative mini-DNS server for the GDN Zone and, optionally,
// the GNS Naming Authority — the sole daemon allowed to send dynamic
// updates to the zone (paper §5, §6.1).
//
// A typical deployment runs one root DNS server, one zone server per
// region, and a single naming authority:
//
//	gdn-gns -dns-addr :8001 -root                      # root, delegating
//	gdn-gns -dns-addr :8002 -zone gdn.cs.vu.nl         # zone server
//	gdn-gns -na-addr :8010 -servers :8002 -zone gdn.cs.vu.nl
//
// The TSIG secret shared between the authority and the zone servers
// comes from -tsig-secret (both sides must match).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gdn/internal/daemon"
	"gdn/internal/dns"
	"gdn/internal/gns"
)

func main() {
	var (
		dnsAddr  = flag.String("dns-addr", "", "listen address for the DNS server (empty: no DNS server)")
		zoneName = flag.String("zone", "gdn.cs.vu.nl", "GDN Zone name")
		root     = flag.Bool("root", false, "serve the root zone (with -delegate pairs) instead of the GDN Zone")
		delegate = flag.String("delegate", "", "comma-separated ns-name=addr delegations for the root zone")
		naAddr   = flag.String("na-addr", "", "listen address for the Naming Authority (empty: no authority)")
		servers  = flag.String("servers", "", "comma-separated zone-server addresses the authority updates")
		tsig     = flag.String("tsig-secret", "gdn-dev-secret", "TSIG key secret shared with the zone servers")
		batch    = flag.Int("batch", 1, "naming-authority update batch size")
		snapshot = flag.String("snapshot", "", "authority name-table snapshot file")
	)
	var df daemon.DebugFlags
	df.Register(flag.CommandLine)
	flag.Parse()

	if *dnsAddr == "" && *naAddr == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *dnsAddr != "" {
		srv, err := dns.ServeDNS(daemon.Net, *dnsAddr, daemon.Logf("gdn-gns/dns"))
		if err != nil {
			daemon.Fatal(err)
		}
		defer srv.Close()
		if *root {
			zone := dns.NewZone("")
			for _, pair := range daemon.SplitList(*delegate) {
				ns, addr, ok := strings.Cut(pair, "=")
				if !ok {
					daemon.Fatal(fmt.Errorf("bad -delegate entry %q (want ns-name=addr)", pair))
				}
				if err := zone.Add(dns.RR{Name: *zoneName, Type: dns.TypeNS, TTL: 3600, Data: ns}); err != nil {
					daemon.Fatal(err)
				}
				if err := zone.Add(dns.RR{Name: ns, Type: dns.TypeADDR, TTL: 3600, Data: addr}); err != nil {
					daemon.Fatal(err)
				}
			}
			srv.AddZone(zone)
			fmt.Printf("gdn-gns: root DNS server on %s\n", *dnsAddr)
		} else {
			zone := dns.NewZone(*zoneName)
			zone.AllowUpdate("na-key", []byte(*tsig))
			srv.AddZone(zone)
			fmt.Printf("gdn-gns: authoritative server for %q on %s\n", *zoneName, *dnsAddr)
		}
	}

	var authority *gns.Authority
	if *naAddr != "" {
		var err error
		authority, err = gns.StartAuthority(daemon.Net, gns.AuthorityConfig{
			Zone:       *zoneName,
			Site:       "local",
			Addr:       *naAddr,
			Servers:    daemon.SplitList(*servers),
			TSIGKey:    "na-key",
			TSIGSecret: []byte(*tsig),
			BatchSize:  *batch,
			Logf:       daemon.Logf("gdn-gns/na"),
		})
		if err != nil {
			daemon.Fatal(err)
		}
		defer authority.Close()
		if *snapshot != "" {
			if b, err := os.ReadFile(*snapshot); err == nil {
				if err := authority.Restore(b); err != nil {
					daemon.Fatal(err)
				}
				if err := authority.ResyncZone(); err != nil {
					daemon.Fatal(err)
				}
				fmt.Printf("gdn-gns: restored %d names and resynced the zone\n", len(authority.Names()))
			}
		}
		fmt.Printf("gdn-gns: naming authority for %q on %s (batch %d)\n", *zoneName, *naAddr, *batch)
	}
	if dbg := df.Serve(daemon.Logf("gdn-gns")); dbg != "" {
		fmt.Printf("gdn-gns: debug endpoint on http://%s/debug/gdn/metrics\n", dbg)
	}

	sig := daemon.WaitForSignal()
	fmt.Printf("gdn-gns: %v, shutting down\n", sig)
	if authority != nil && *snapshot != "" {
		if err := os.WriteFile(*snapshot, authority.Snapshot(), 0o600); err != nil {
			daemon.Fatal(err)
		}
	}
}

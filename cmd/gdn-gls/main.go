// Command gdn-gls runs one Globe Location Service directory subnode on
// real TCP (paper §3.5). A deployment starts one process per subnode:
// the root first, then region nodes pointing at it, then leaf nodes —
// mirroring the domain hierarchy of Figure 2.
//
// Example three-node tree on one machine:
//
//	gdn-gls -domain root -addr :7001 -self :7001
//	gdn-gls -domain eu   -addr :7002 -self :7002 -parent :7001
//	gdn-gls -domain eu/nl -addr :7003 -self :7003 -parent :7002
//
// Persistence (§7) comes in two shapes. The preferred one is
// -state-dir: the node keeps a base snapshot plus an append-only
// journal there, batching mutations to disk every -flush-every and
// folding the journal into a fresh base once it outgrows
// -compact-bytes — steady-state traffic costs appends, never a full
// rewrite. The legacy -snapshot flag still writes one monolithic
// snapshot file on shutdown (and periodically, as crash insurance)
// and restores it on start; old v1/v2 snapshot files restore fine.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gdn/internal/daemon"
	"gdn/internal/gls"
)

func main() {
	var (
		domain   = flag.String("domain", "", "domain this directory node serves (required)")
		addr     = flag.String("addr", "", "listen address host:port (required)")
		self     = flag.String("self", "", "comma-separated addresses of all subnodes of this domain (default: -addr)")
		parent   = flag.String("parent", "", "comma-separated parent node addresses (empty for the root)")
		seed     = flag.Int64("seed", 1, "seed for random forwarding-pointer choice")
		snapshot = flag.String("snapshot", "", "legacy monolithic snapshot file (prefer -state-dir)")
		stateDir = flag.String("state-dir", "", "directory for the base snapshot + append journal")
		flushEv  = flag.Duration("flush-every", time.Second, "journal flush (write+fsync) interval for -state-dir")
		compact  = flag.Int64("compact-bytes", 8<<20, "journal size that triggers compaction into a new base snapshot")
	)
	var df daemon.DebugFlags
	df.Register(flag.CommandLine)
	flag.Parse()
	if *domain == "" || *addr == "" {
		flag.Usage()
		os.Exit(2)
	}

	selfAddrs := daemon.SplitList(*self)
	if len(selfAddrs) == 0 {
		selfAddrs = []string{*addr}
	}
	node, err := gls.Start(daemon.Net, gls.Config{
		Domain:       *domain,
		Site:         "local",
		Addr:         *addr,
		Self:         gls.Ref{Addrs: selfAddrs},
		Parent:       gls.Ref{Addrs: daemon.SplitList(*parent)},
		Seed:         *seed,
		Logf:         daemon.Logf("gdn-gls"),
		StateDir:     *stateDir,
		FlushEvery:   *flushEv,
		CompactBytes: *compact,
	})
	if err != nil {
		daemon.Fatal(err)
	}
	if *stateDir != "" {
		fmt.Printf("gdn-gls: journaling state to %s (flush %v, compact at %d bytes)\n",
			*stateDir, *flushEv, *compact)
	}

	if *snapshot != "" {
		if b, err := os.ReadFile(*snapshot); err == nil {
			if err := node.Restore(b); err != nil {
				daemon.Fatal(fmt.Errorf("restore %s: %w", *snapshot, err))
			}
			fmt.Printf("gdn-gls: restored %d records from %s\n", node.Records(), *snapshot)
		}
	}
	fmt.Printf("gdn-gls: directory node for %q serving on %s\n", *domain, *addr)
	if dbg := df.Serve(daemon.Logf("gdn-gls")); dbg != "" {
		fmt.Printf("gdn-gls: debug endpoint on http://%s/debug/gdn/metrics\n", dbg)
	}

	// Legacy snapshot mode has no journal: flush a periodic snapshot so
	// a crash loses minutes of registrations, not all of them.
	var stopFlush chan struct{}
	if *snapshot != "" && *stateDir == "" {
		stopFlush = make(chan struct{})
		go func() {
			t := time.NewTicker(5 * time.Minute)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := os.WriteFile(*snapshot, node.Snapshot(), 0o600); err != nil {
						daemon.Logf("gdn-gls")("periodic snapshot: %v", err)
					}
				case <-stopFlush:
					return
				}
			}
		}()
	}

	sig := daemon.WaitForSignal()
	fmt.Printf("gdn-gls: %v, shutting down\n", sig)
	if stopFlush != nil {
		close(stopFlush)
	}
	if *snapshot != "" {
		if err := os.WriteFile(*snapshot, node.Snapshot(), 0o600); err != nil {
			daemon.Fatal(err)
		}
	}
	node.Close()
}

// Command gdn-gls runs one Globe Location Service directory subnode on
// real TCP (paper §3.5). A deployment starts one process per subnode:
// the root first, then region nodes pointing at it, then leaf nodes —
// mirroring the domain hierarchy of Figure 2.
//
// Example three-node tree on one machine:
//
//	gdn-gls -domain root -addr :7001 -self :7001
//	gdn-gls -domain eu   -addr :7002 -self :7002 -parent :7001
//	gdn-gls -domain eu/nl -addr :7003 -self :7003 -parent :7002
//
// The node checkpoints its records (contact addresses and forwarding
// pointers) to -snapshot on shutdown and restores them on start, the
// paper's §7 persistence feature.
package main

import (
	"flag"
	"fmt"
	"os"

	"gdn/internal/daemon"
	"gdn/internal/gls"
)

func main() {
	var (
		domain   = flag.String("domain", "", "domain this directory node serves (required)")
		addr     = flag.String("addr", "", "listen address host:port (required)")
		self     = flag.String("self", "", "comma-separated addresses of all subnodes of this domain (default: -addr)")
		parent   = flag.String("parent", "", "comma-separated parent node addresses (empty for the root)")
		seed     = flag.Int64("seed", 1, "seed for random forwarding-pointer choice")
		snapshot = flag.String("snapshot", "", "snapshot file for persistence across restarts")
	)
	var df daemon.DebugFlags
	df.Register(flag.CommandLine)
	flag.Parse()
	if *domain == "" || *addr == "" {
		flag.Usage()
		os.Exit(2)
	}

	selfAddrs := daemon.SplitList(*self)
	if len(selfAddrs) == 0 {
		selfAddrs = []string{*addr}
	}
	node, err := gls.Start(daemon.Net, gls.Config{
		Domain: *domain,
		Site:   "local",
		Addr:   *addr,
		Self:   gls.Ref{Addrs: selfAddrs},
		Parent: gls.Ref{Addrs: daemon.SplitList(*parent)},
		Seed:   *seed,
		Logf:   daemon.Logf("gdn-gls"),
	})
	if err != nil {
		daemon.Fatal(err)
	}

	if *snapshot != "" {
		if b, err := os.ReadFile(*snapshot); err == nil {
			if err := node.Restore(b); err != nil {
				daemon.Fatal(fmt.Errorf("restore %s: %w", *snapshot, err))
			}
			fmt.Printf("gdn-gls: restored %d records from %s\n", node.Records(), *snapshot)
		}
	}
	fmt.Printf("gdn-gls: directory node for %q serving on %s\n", *domain, *addr)
	if dbg := df.Serve(daemon.Logf("gdn-gls")); dbg != "" {
		fmt.Printf("gdn-gls: debug endpoint on http://%s/debug/gdn/metrics\n", dbg)
	}

	sig := daemon.WaitForSignal()
	fmt.Printf("gdn-gls: %v, shutting down\n", sig)
	if *snapshot != "" {
		if err := os.WriteFile(*snapshot, node.Snapshot(), 0o600); err != nil {
			daemon.Fatal(err)
		}
	}
	node.Close()
}

// Command gdn-lint runs the project-invariant analyzers from
// internal/analysis over the tree: buffer ownership (bufown), lock
// discipline (lockrpc), metric naming (metricname) and trace
// propagation (tracectx).
//
// Usage:
//
//	gdn-lint [-run bufown,lockrpc] [packages...]   # default ./...
//	gdn-lint -list
//
// It prints one line per finding and exits 1 if there are any.
// Findings are suppressed in source with
//
//	//gdnlint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the flagged line or the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gdn/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	all := analysis.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if *run != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "gdn-lint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gdn-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gdn-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, selected)
	for _, d := range diags {
		fmt.Println(d)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gdn-lint: %v\n", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gdn-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

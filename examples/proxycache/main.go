// Proxycache: a user-side GDN-enabled proxy server (paper §4).
//
// A package lives on a European server. A household in Australia runs
// a GDN proxy: a caching HTTPD whose local representative "may act as
// a replica for the DSO, in which case downloading a software package
// is fast". The family's three computers download the same package;
// only the first fetch crosses the ocean. When the package updates,
// the TTL decides how soon the proxy notices — and the invalidation
// mode closes even that window.
//
//	go run ./examples/proxycache
package main

import (
	"bytes"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"gdn"
	"gdn/internal/netsim"
)

func main() {
	world, err := gdn.NewWorld(gdn.DefaultTopology())
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	moderator, err := world.Moderator("eu-nl-vu", "alice")
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := moderator.CreatePackage("/apps/games/nethack",
		gdn.Scenario{Protocol: gdn.ProtocolClientServer, Servers: world.GOSAddrs("eu-nl-vu")},
		gdn.Package{Files: map[string][]byte{
			"nethack.tar": bytes.Repeat([]byte{7}, 2<<20),
		}},
	); err != nil {
		log.Fatal(err)
	}

	// The proxy runs at the Australian site with a 10-minute TTL.
	proxy, err := world.HTTPD("ap-au-mu", gdn.HTTPDConfig{
		Caching:     true,
		CacheParams: map[string]string{"ttl": "10m"},
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(proxy)
	defer ts.Close()
	fmt.Println("GDN proxy serving the household at", ts.URL)

	download := func(who string) {
		world.Net.ResetMeter()
		before := proxy.Stats().VirtualCost
		resp, err := http.Get(ts.URL + "/pkg/apps/games/nethack/-/nethack.tar")
		if err != nil {
			log.Fatal(err)
		}
		n := int64(0)
		buf := make([]byte, 32<<10)
		for {
			k, err := resp.Body.Read(buf)
			n += int64(k)
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		m := world.Net.Meter()
		fmt.Printf("  %-8s got %4.1f MiB: %6.2f MiB wide-area, %v virtual network time\n",
			who, float64(n)/(1<<20),
			float64(m.Bytes[netsim.WideArea])/(1<<20),
			proxy.Stats().VirtualCost-before)
	}

	fmt.Println("three household downloads through the proxy:")
	download("laptop")
	download("desktop")
	download("server")

	// Upstream update: inside the TTL the proxy serves the old copy;
	// after expiry it revalidates and fetches the new one.
	if _, err := moderator.UpdatePackage("/apps/games/nethack", func(s *gdn.Stub) error {
		return s.AddFile("nethack.tar", bytes.Repeat([]byte{8}, 2<<20))
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("package updated upstream; proxy TTL window:")
	download("laptop")
	world.Clock.Advance(11 * time.Minute)
	fmt.Println("after TTL expiry:")
	download("laptop")
}

// Quickstart: the whole Globe Distribution Network in one process.
//
// A simulated three-region world is assembled (location service, name
// service, object servers), a moderator publishes a package replicated
// across two continents, and a user on a third continent downloads and
// verifies it — the end-to-end path of the paper's Figure 3.
//
//	go run ./examples/quickstart
//
// With -debug-addr the process stays up after the tour and serves the
// observability plane alongside the GDN-enabled web server, so one
// command demonstrates end-to-end request tracing:
//
//	go run ./examples/quickstart -debug-addr :8090
//	curl -s localhost:8090/debug/gdn/traces | head -40
//	curl -s localhost:8090/debug/gdn/metrics | grep gdn_httpd
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"gdn"
	"gdn/internal/daemon"
)

func main() {
	debugAddr := flag.String("debug-addr", "",
		"after the tour, keep serving the package and /debug/gdn/{metrics,traces} on this address (empty: exit)")
	flag.Parse()
	// 1. Build the world: regions eu/na/ap with two sites each, a GLS
	//    hierarchy, DNS + naming authority, and one object server per
	//    site.
	world, err := gdn.NewWorld(gdn.DefaultTopology())
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()
	fmt.Println("world up:", world.Sites())

	// 2. A moderator in Amsterdam publishes a package, replicated
	//    master/slave in Europe and North America (the replication
	//    scenario of §3.1: how + where).
	moderator, err := world.Moderator("eu-nl-vu", "alice")
	if err != nil {
		log.Fatal(err)
	}
	oid, deployCost, err := moderator.CreatePackage(
		"/apps/compilers/gcc",
		gdn.Scenario{
			Protocol: gdn.ProtocolMasterSlave,
			Servers:  world.GOSAddrs("eu-nl-vu", "na-ca-ucb"),
		},
		gdn.Package{
			Files: map[string][]byte{
				"README":       []byte("The GNU Compiler Collection, version 2.95"),
				"gcc-2.95.tar": make([]byte, 1<<20),
			},
			Meta: map[string]string{"description": "GNU C compiler"},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published /apps/compilers/gcc\n  oid: %s\n  deployment network cost: %v\n", oid, deployCost)

	// 3. A user in Tokyo binds by name — GNS resolves the name to the
	//    OID, the GLS maps the OID to the nearest replica — and
	//    downloads.
	stub, bindCost, err := world.BindPackage("ap-jp-ut", "/apps/compilers/gcc")
	if err != nil {
		log.Fatal(err)
	}
	defer stub.Close()
	fmt.Printf("user in ap-jp-ut bound in %v\n", bindCost)

	files, err := stub.ListContents()
	if err != nil {
		log.Fatal(err)
	}
	for _, fi := range files {
		fmt.Printf("  %-14s %8d bytes  sha256=%x...\n", fi.Path, fi.Size, fi.Digest[:6])
	}

	data, err := stub.GetFileContents("gcc-2.95.tar")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("downloaded %d bytes in %v (virtual network time)\n", len(data), stub.TakeCost())

	// 4. Verify integrity end to end (§6.1: users "should be assured of
	//    the origin of the software").
	if err := stub.VerifyFile("README"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("digest verification: OK")

	// 5. Optionally stay up as a live deployment: the Tokyo edge's
	//    GDN-enabled web server and the debug endpoints on one listener.
	if *debugAddr != "" {
		serveDebug(world, *debugAddr)
	}
}

// serveDebug mounts the /pkg/ handler and the observability plane on
// addr, performs one traced download through the edge so the trace
// ring has a hop chain to show immediately, and blocks.
func serveDebug(world *gdn.World, addr string) {
	h, err := world.HTTPD("ap-jp-ut", gdn.HTTPDConfig{})
	if err != nil {
		log.Fatal(err)
	}
	mux := daemon.DebugMux()
	mux.Handle("/pkg/", h)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, mux) //nolint:errcheck

	bound := ln.Addr().String()
	url := "http://" + bound + "/pkg/apps/compilers/gcc/-/gcc-2.95.tar"
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("\nserving on %s (downloaded %d bytes through the edge to seed a trace)\n", bound, n)
	fmt.Printf("  package:  %s\n", url)
	fmt.Printf("  traces:   http://%s/debug/gdn/traces\n", bound)
	fmt.Printf("  metrics:  http://%s/debug/gdn/metrics\n", bound)
	select {}
}

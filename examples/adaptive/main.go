// Adaptive: per-object replication scenarios that follow popularity.
//
// This is the §3.1 story in motion: "the information's replication
// scenario should adapt to changes in its popularity". Fifty packages
// start on one central European server. A Zipf-shaped day of downloads
// runs; an operator watches per-package demand and widens the
// replication scenario of whatever is hot (modtool.AddReplica — the
// paper's moderator adapting a scenario). A second day runs with the
// adapted placement. Wide-area traffic drops for the same workload —
// the differentiated-replication effect of [Pierre et al. 1999].
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"sort"

	"gdn"
	"gdn/internal/netsim"
	"gdn/internal/workload"
)

const (
	packages  = 50
	downloads = 600
)

func main() {
	world, err := gdn.NewWorld(gdn.DefaultTopology())
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	moderator, err := world.Moderator("eu-nl-vu", "operator")
	if err != nil {
		log.Fatal(err)
	}

	// Publish everything central: masterslave with a single master, so
	// scenarios can be widened later without changing protocol.
	names := make([]string, packages)
	for i := range names {
		names[i] = fmt.Sprintf("/apps/pkg%02d", i)
		if _, _, err := moderator.CreatePackage(names[i],
			gdn.Scenario{Protocol: gdn.ProtocolMasterSlave, Servers: world.GOSAddrs("eu-nl-vu")},
			gdn.Package{Files: map[string][]byte{"data": make([]byte, 256<<10)}},
		); err != nil {
			log.Fatal(err)
		}
	}

	clients := []string{"eu-de-tu", "na-ny-cu", "ap-au-mu"}
	day := func(label string) map[int]int {
		world.Net.ResetMeter()
		zipf := workload.NewZipf(packages, 1.0, 42)
		demand := make(map[int]int)
		stubs := make(map[string]*gdn.Stub)
		for i := 0; i < downloads; i++ {
			pkg := zipf.Next()
			site := clients[i%len(clients)]
			demand[pkg]++
			key := fmt.Sprintf("%s/%d", site, pkg)
			stub, ok := stubs[key]
			if !ok {
				var err error
				stub, _, err = world.BindPackage(site, names[pkg])
				if err != nil {
					log.Fatal(err)
				}
				defer stub.Close()
				stubs[key] = stub
			}
			if _, err := stub.GetFileContents("data"); err != nil {
				log.Fatal(err)
			}
		}
		m := world.Net.Meter()
		fmt.Printf("%s: %d downloads, %.1f MiB wide-area traffic\n",
			label, downloads, float64(m.Bytes[netsim.WideArea])/(1<<20))
		return demand
	}

	demand := day("day 1 (all packages central)")

	// Adaptation: replicate the packages that carried the most load
	// into North America and Asia.
	type hot struct{ pkg, count int }
	var ranked []hot
	for pkg, count := range demand {
		ranked = append(ranked, hot{pkg, count})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].count > ranked[j].count })
	widened := 0
	for _, h := range ranked[:8] {
		for _, server := range []string{"na-ca-ucb:gos-cmd", "ap-jp-ut:gos-cmd"} {
			if _, err := moderator.AddReplica(names[h.pkg], server); err != nil {
				log.Fatal(err)
			}
			widened++
		}
		sc, err := moderator.Scenario(names[h.pkg])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  widened %s (%d downloads) -> %v\n", names[h.pkg], h.count, sc.Servers)
	}
	fmt.Printf("adaptation: %d replicas added for the 8 hottest packages\n", widened)

	day("day 2 (hot packages replicated)")
}

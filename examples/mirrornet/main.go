// Mirrornet: a worldwide mirror network for a Linux distribution.
//
// The same 4 MiB package is published twice — once on a single central
// server (the anonymous-FTP world the paper wants to replace) and once
// master/slave with a replica in every region (the GDN way). A release
// day is simulated: every site downloads the package; then the
// distribution publishes a point release and the mirrors converge
// through one state push. The wide-area byte meter tells the story of
// §3.1's bandwidth/server-capacity trade-off.
//
//	go run ./examples/mirrornet
package main

import (
	"bytes"
	"fmt"
	"log"

	"gdn"
	"gdn/internal/netsim"
)

const pkgSize = 4 << 20

func main() {
	fmt.Println("== central server (FTP-style baseline) ==")
	runRelease(false)
	fmt.Println()
	fmt.Println("== GDN mirror network (master/slave everywhere) ==")
	runRelease(true)
}

func runRelease(mirrored bool) {
	world, err := gdn.NewWorld(gdn.DefaultTopology())
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	servers := []string{"eu-nl-vu"}
	protocol := gdn.ProtocolClientServer
	if mirrored {
		protocol = gdn.ProtocolMasterSlave
		servers = []string{"eu-nl-vu", "na-ca-ucb", "ap-jp-ut"}
	}

	moderator, err := world.Moderator("eu-nl-vu", "release-team")
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := moderator.CreatePackage("/os/linux/gdnix",
		gdn.Scenario{Protocol: protocol, Servers: world.GOSAddrs(servers...)},
		gdn.Package{Files: map[string][]byte{
			"gdnix-1.0.iso": bytes.Repeat([]byte{0xAA}, pkgSize),
		}},
	); err != nil {
		log.Fatal(err)
	}
	deployWAN := world.Net.Meter().Bytes[netsim.WideArea]
	fmt.Printf("deployment: %d replicas, %.1f MiB wide-area\n",
		len(servers), float64(deployWAN)/(1<<20))

	// Release day: every site downloads once.
	world.Net.ResetMeter()
	var worst, total int64
	for _, site := range world.Sites() {
		stub, _, err := world.BindPackage(site, "/os/linux/gdnix")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := stub.GetFileContents("gdnix-1.0.iso"); err != nil {
			log.Fatal(err)
		}
		cost := stub.TakeCost().Milliseconds()
		total += cost
		if cost > worst {
			worst = cost
		}
		stub.Close()
	}
	m := world.Net.Meter()
	fmt.Printf("release day (%d downloads): %.1f MiB wide-area, mean %.0f ms, worst %d ms\n",
		len(world.Sites()), float64(m.Bytes[netsim.WideArea])/(1<<20),
		float64(total)/float64(len(world.Sites())), worst)

	// Point release: one write, mirrors converge.
	world.Net.ResetMeter()
	if _, err := moderator.UpdatePackage("/os/linux/gdnix", func(s *gdn.Stub) error {
		return s.AddFile("gdnix-1.0.1.patch", bytes.Repeat([]byte{0xBB}, 64<<10))
	}); err != nil {
		log.Fatal(err)
	}
	m = world.Net.Meter()
	fmt.Printf("point release push: %.2f MiB wide-area\n", float64(m.Bytes[netsim.WideArea])/(1<<20))

	// Every region sees the patch immediately.
	for _, site := range []string{"na-ny-cu", "ap-au-mu"} {
		stub, _, err := world.BindPackage(site, "/os/linux/gdnix")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := stub.GetFileContents("gdnix-1.0.1.patch"); err != nil {
			log.Fatalf("%s: patch not visible: %v", site, err)
		}
		stub.Close()
	}
	fmt.Println("patch visible at all mirrors")
}

package gdn_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gdn"
	"gdn/internal/netsim"
)

func newWorld(t *testing.T, top gdn.Topology) *gdn.World {
	t.Helper()
	w, err := gdn.NewWorld(top)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestWorldEndToEnd(t *testing.T) {
	w := newWorld(t, gdn.DefaultTopology())

	mod, err := w.Moderator("eu-nl-vu", "alice")
	if err != nil {
		t.Fatal(err)
	}

	// Publish a package replicated master/slave across three regions.
	scenario := gdn.Scenario{
		Protocol: gdn.ProtocolMasterSlave,
		Servers:  w.GOSAddrs("eu-nl-vu", "na-ca-ucb", "ap-jp-ut"),
	}
	content := bytes.Repeat([]byte("GNU "), 2500)
	oid, cost, err := mod.CreatePackage("/apps/compilers/gcc", scenario, gdn.Package{
		Files: map[string][]byte{
			"README":       []byte("The GNU Compiler Collection"),
			"gcc-2.95.tar": content,
		},
		Meta: map[string]string{"description": "GNU C compiler"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if oid.IsNil() || cost <= 0 {
		t.Fatalf("oid=%v cost=%v", oid, cost)
	}

	// Every site in the world can bind by name and download, and the
	// digest check passes everywhere.
	for _, site := range w.Sites() {
		stub, _, err := w.BindPackage(site, "/apps/compilers/gcc")
		if err != nil {
			t.Fatalf("%s: bind: %v", site, err)
		}
		data, err := stub.GetFileContents("gcc-2.95.tar")
		if err != nil {
			t.Fatalf("%s: download: %v", site, err)
		}
		if !bytes.Equal(data, content) {
			t.Fatalf("%s: content mismatch", site)
		}
		if err := stub.VerifyFile("README"); err != nil {
			t.Fatalf("%s: verify: %v", site, err)
		}
		stub.Close()
	}

	// Clients near a replica must download without wide-area traffic.
	stub, _, err := w.BindPackage("ap-jp-ut", "/apps/compilers/gcc")
	if err != nil {
		t.Fatal(err)
	}
	defer stub.Close()
	if _, err := stub.GetFileContents("README"); err != nil {
		t.Fatal(err)
	}
	before := w.Net.Meter()
	if _, err := stub.GetFileContents("gcc-2.95.tar"); err != nil {
		t.Fatal(err)
	}
	diff := w.Net.Meter().Sub(before)
	if diff.Bytes[netsim.WideArea] != 0 {
		t.Fatalf("read near a replica crossed the wide area: %v", diff)
	}
}

func TestSecureWorldEndToEnd(t *testing.T) {
	top := gdn.DefaultTopology()
	top.Secure = true
	w := newWorld(t, top)

	mod, err := w.Moderator("eu-nl-vu", "alice")
	if err != nil {
		t.Fatal(err)
	}
	scenario := gdn.Scenario{
		Protocol: gdn.ProtocolClientServer,
		Servers:  w.GOSAddrs("eu-nl-vu"),
	}
	if _, _, err := mod.CreatePackage("/apps/editors/vim", scenario, gdn.Package{
		Files: map[string][]byte{"vim.tar": []byte("vim content")},
	}); err != nil {
		t.Fatal(err)
	}

	// An ordinary user reads fine...
	stub, _, err := w.BindPackage("na-ny-cu", "/apps/editors/vim")
	if err != nil {
		t.Fatal(err)
	}
	defer stub.Close()
	if _, err := stub.GetFileContents("vim.tar"); err != nil {
		t.Fatalf("user read: %v", err)
	}
	// ...but cannot modify the package (paper §6.1).
	if err := stub.AddFile("trojan", []byte("evil")); err == nil {
		t.Fatal("user write must be rejected")
	} else if !strings.Contains(err.Error(), "not authorized") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}

func TestWorldWithPartitionedRootAndBatching(t *testing.T) {
	top := gdn.DefaultTopology()
	top.RootSubnodes = 4
	top.GNSBatchSize = 100
	w := newWorld(t, top)

	mod, err := w.Moderator("eu-nl-vu", "alice")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("/apps/pkg%d", i)
		if _, _, err := mod.CreatePackage(name, gdn.Scenario{
			Protocol: gdn.ProtocolClientServer,
			Servers:  w.GOSAddrs("eu-nl-vu"),
		}, gdn.Package{Files: map[string][]byte{"f": []byte("x")}}); err != nil {
			t.Fatal(err)
		}
	}
	// Names are not resolvable yet: the naming authority is batching.
	if _, _, err := w.BindPackage("na-ny-cu", "/apps/pkg0"); err == nil {
		t.Fatal("names must still be batched")
	}
	if w.Authority().Flushes() != 0 {
		t.Fatal("no flush expected yet")
	}
	// Force the batch out; names resolve. (A different site binds here:
	// the first site's resolver is still holding the NXDOMAIN answer in
	// its negative cache, exactly as real DNS would.)
	if err := w.Authority().ResyncZone(); err != nil {
		t.Fatal(err)
	}
	stub, _, err := w.BindPackage("eu-de-tu", "/apps/pkg0")
	if err != nil {
		t.Fatal(err)
	}
	stub.Close()
}

func TestWorldValidation(t *testing.T) {
	if _, err := gdn.NewWorld(gdn.Topology{}); err == nil {
		t.Fatal("empty topology must fail")
	}
	if _, err := gdn.NewWorld(gdn.Topology{Regions: map[string][]string{"eu": {}}}); err == nil {
		t.Fatal("region without sites must fail")
	}
}

module gdn

go 1.24

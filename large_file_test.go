package gdn_test

import (
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"gdn"
	"gdn/internal/transport"
)

// TestLargeFileRoundTrip is the tentpole acceptance check: a 64 MiB
// file — over four times the seed's 15 MiB MaxFileSize ceiling, and
// larger than both the wire field limit (16 MiB) and the transport
// frame limit (20 MiB) — round-trips create → replicate → download.
// That it completes at all proves chunk-bounded transfer end to end:
// the moderator uploads chunk-sized batches, the slave replica delta-
// syncs chunk by chunk, and the HTTPD download is a frame stream; any
// content-sized frame anywhere on the path would be refused by the
// transport's MaxFrame guard. Content integrity is verified against
// the SHA-256 manifest at the HTTP edge (the handler's streaming
// verify) and re-checked here.
func TestLargeFileRoundTrip(t *testing.T) {
	const size = 64<<20 + 333 // not chunk-aligned on purpose
	if int64(size) < 3*transport.MaxFrame {
		t.Fatal("test content no longer exceeds frame bounds; raise it")
	}
	w := newWorld(t, gdn.DefaultTopology())

	content := make([]byte, size)
	rand.New(rand.NewSource(64)).Read(content)
	wantDigest := sha256.Sum256(content)

	mod, err := w.Moderator("eu-nl-vu", "large-mod")
	if err != nil {
		t.Fatal(err)
	}
	// Master in Europe, slave in North America: creation exercises the
	// chunked upload, slave creation the delta state sync.
	if _, _, err := mod.CreatePackage("/apps/huge", gdn.Scenario{
		Protocol: gdn.ProtocolMasterSlave,
		Servers:  w.GOSAddrs("eu-nl-vu", "na-ca-ucb"),
	}, gdn.Package{Files: map[string][]byte{"dvd.iso": content}}); err != nil {
		t.Fatal(err)
	}

	// Download through a GDN HTTPD on a third continent.
	h, err := w.HTTPD("ap-au-mu", gdn.HTTPDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/pkg/apps/huge/-/dvd.iso")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-GDN-Digest"); got != fmt.Sprintf("%x", wantDigest) {
		t.Fatalf("advertised digest %s", got)
	}
	hash := sha256.New()
	n, err := io.Copy(hash, resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n != size {
		t.Fatalf("downloaded %d bytes, want %d", n, size)
	}
	var got [sha256.Size]byte
	hash.Sum(got[:0])
	if got != wantDigest {
		t.Fatal("downloaded content does not match the SHA-256 manifest")
	}

	// A direct client on a fourth site verifies through the stub's
	// streaming digest check as well.
	stub, _, err := w.BindPackage("na-ny-cu", "/apps/huge")
	if err != nil {
		t.Fatal(err)
	}
	defer stub.Close()
	if err := stub.VerifyFile("dvd.iso"); err != nil {
		t.Fatal(err)
	}
}

package gdn_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"gdn"
	"gdn/internal/core"
	"gdn/internal/gos"
	"gdn/internal/ids"
	"gdn/internal/pkgobj"
	"gdn/internal/transport"
)

// TestLargeFileRoundTrip is the tentpole acceptance check: a 64 MiB
// file — over four times the seed's 15 MiB MaxFileSize ceiling, and
// larger than both the wire field limit (16 MiB) and the transport
// frame limit (20 MiB) — round-trips create → replicate → download.
// That it completes at all proves chunk-bounded transfer end to end:
// the moderator uploads chunk-sized batches, the slave replica delta-
// syncs chunk by chunk, and the HTTPD download is a frame stream; any
// content-sized frame anywhere on the path would be refused by the
// transport's MaxFrame guard. Content integrity is verified against
// the SHA-256 manifest at the HTTP edge (the handler's streaming
// verify) and re-checked here.
func TestLargeFileRoundTrip(t *testing.T) {
	const size = 64<<20 + 333 // not chunk-aligned on purpose
	if int64(size) < 3*transport.MaxFrame {
		t.Fatal("test content no longer exceeds frame bounds; raise it")
	}
	w := newWorld(t, gdn.DefaultTopology())

	content := make([]byte, size)
	rand.New(rand.NewSource(64)).Read(content)
	wantDigest := sha256.Sum256(content)

	mod, err := w.Moderator("eu-nl-vu", "large-mod")
	if err != nil {
		t.Fatal(err)
	}
	// Master in Europe, slave in North America: creation exercises the
	// chunked upload, slave creation the delta state sync.
	if _, _, err := mod.CreatePackage("/apps/huge", gdn.Scenario{
		Protocol: gdn.ProtocolMasterSlave,
		Servers:  w.GOSAddrs("eu-nl-vu", "na-ca-ucb"),
	}, gdn.Package{Files: map[string][]byte{"dvd.iso": content}}); err != nil {
		t.Fatal(err)
	}

	// Download through a GDN HTTPD on a third continent.
	h, err := w.HTTPD("ap-au-mu", gdn.HTTPDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/pkg/apps/huge/-/dvd.iso")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-GDN-Digest"); got != fmt.Sprintf("%x", wantDigest) {
		t.Fatalf("advertised digest %s", got)
	}
	hash := sha256.New()
	n, err := io.Copy(hash, resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n != size {
		t.Fatalf("downloaded %d bytes, want %d", n, size)
	}
	var got [sha256.Size]byte
	hash.Sum(got[:0])
	if got != wantDigest {
		t.Fatal("downloaded content does not match the SHA-256 manifest")
	}

	// A direct client on a fourth site verifies through the stub's
	// streaming digest check as well.
	stub, _, err := w.BindPackage("na-ny-cu", "/apps/huge")
	if err != nil {
		t.Fatal(err)
	}
	defer stub.Close()
	if err := stub.VerifyFile("dvd.iso"); err != nil {
		t.Fatal(err)
	}

	// A curl -r-style range request travels HTTPD → replica → store and
	// returns exactly the asked-for bytes with the manifest digest as a
	// strong ETag.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/pkg/apps/huge/-/dvd.iso", nil)
	if err != nil {
		t.Fatal(err)
	}
	const rangeFrom, rangeTo = 40 << 20, 40<<20 + 999 // crosses no chunk boundary guarantees
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", rangeFrom, rangeTo))
	rresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range status %d, want 206", rresp.StatusCode)
	}
	if cr := rresp.Header.Get("Content-Range"); cr != fmt.Sprintf("bytes %d-%d/%d", rangeFrom, rangeTo, size) {
		t.Fatalf("Content-Range = %q", cr)
	}
	part, err := io.ReadAll(rresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, content[rangeFrom:rangeTo+1]) {
		t.Fatalf("range body mismatch (%d bytes)", len(part))
	}
	etag := rresp.Header.Get("ETag")
	if etag != fmt.Sprintf(`"%x"`, wantDigest) {
		t.Fatalf("ETag = %q, want the manifest digest", etag)
	}

	// The ETag round-trips: a conditional re-fetch is answered 304 with
	// no body.
	req2, err := http.NewRequest(http.MethodGet, ts.URL+"/pkg/apps/huge/-/dvd.iso", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("If-None-Match", etag)
	cresp, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	if cresp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional status %d, want 304", cresp.StatusCode)
	}

	// Re-deploying the unchanged 64 MiB package short-circuits: the
	// OpChunkHave negotiation names nothing missing and no chunk body
	// crosses the wire.
	staged := pkgobj.New()
	if err := pkgobj.NewStub(core.NewLocalLR(ids.Nil, staged)).UploadFile("dvd.iso", content); err != nil {
		t.Fatal(err)
	}
	state, err := staged.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	refs, err := pkgobj.StateRefs(state)
	if err != nil {
		t.Fatal(err)
	}
	cl := gos.NewClient(w.Net, "eu-de-tu", w.GOSAddrs("eu-nl-vu")[0], nil)
	defer cl.Close()
	stats, _, err := cl.PutChunks(staged.Store(), refs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Offered == 0 {
		t.Fatal("re-deploy offered no refs; staging broke")
	}
	if stats.Sent != 0 || stats.SentBytes != 0 {
		t.Fatalf("re-deploy of unchanged content uploaded %d chunks (%d bytes); negotiation failed to short-circuit",
			stats.Sent, stats.SentBytes)
	}
}

package gdn_test

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"gdn/internal/core"
	"gdn/internal/daemon"
	"gdn/internal/dns"
	"gdn/internal/gls"
	"gdn/internal/gns"
	"gdn/internal/gos"
	"gdn/internal/httpd"
	"gdn/internal/modtool"
	"gdn/internal/pkgobj"
	"gdn/internal/transport"
)

// freeAddr reserves a localhost TCP address for a service.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestFullStackOverTCP assembles the complete GDN — location service,
// DNS, naming authority, two object servers, moderator tool and a
// GDN-HTTPD — on real localhost TCP sockets, exactly as the cmd/
// daemons do, and runs the paper's end-to-end flow: publish, resolve,
// bind, download, verify, remove.
func TestFullStackOverTCP(t *testing.T) {
	tcp := transport.TCP{}

	// --- location service: root → region → two leaves ---------------
	rootAddr := freeAddr(t)
	euAddr := freeAddr(t)
	leafA := freeAddr(t)
	leafB := freeAddr(t)

	startNode := func(domain, addr string, parent []string) *gls.Node {
		node, err := gls.Start(tcp, gls.Config{
			Domain: domain, Site: "local", Addr: addr,
			Self:   gls.Ref{Addrs: []string{addr}},
			Parent: gls.Ref{Addrs: parent},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		return node
	}
	startNode("root", rootAddr, nil)
	startNode("eu", euAddr, []string{rootAddr})
	startNode("eu/a", leafA, []string{euAddr})
	startNode("eu/b", leafB, []string{euAddr})

	// --- DNS: root server delegating the GDN zone -------------------
	const zoneName = "gdn.test"
	secret := []byte("tcp-test-secret")
	rootDNSAddr := freeAddr(t)
	zoneDNSAddr := freeAddr(t)

	rootDNS, err := dns.ServeDNS(tcp, rootDNSAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rootDNS.Close() })
	rootZone := dns.NewZone("")
	if err := rootZone.Add(dns.RR{Name: zoneName, Type: dns.TypeNS, TTL: 60, Data: "ns1." + zoneName}); err != nil {
		t.Fatal(err)
	}
	if err := rootZone.Add(dns.RR{Name: "ns1." + zoneName, Type: dns.TypeADDR, TTL: 60, Data: zoneDNSAddr}); err != nil {
		t.Fatal(err)
	}
	rootDNS.AddZone(rootZone)

	zoneDNS, err := dns.ServeDNS(tcp, zoneDNSAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { zoneDNS.Close() })
	zone := dns.NewZone(zoneName)
	zone.AllowUpdate("na-key", secret)
	zoneDNS.AddZone(zone)

	naAddr := freeAddr(t)
	authority, err := gns.StartAuthority(tcp, gns.AuthorityConfig{
		Zone: zoneName, Site: "local", Addr: naAddr,
		Servers: []string{zoneDNSAddr},
		TSIGKey: "na-key", TSIGSecret: secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { authority.Close() })

	// --- runtimes and object servers ---------------------------------
	newRuntime := func(leaf string) *core.Runtime {
		return core.NewRuntime(core.RuntimeConfig{
			Site: "local", Net: tcp,
			Resolver: gls.NewResolver(tcp, "local", gls.Ref{Addrs: []string{leaf}}),
			Names:    gns.NewNameService(dns.NewResolver(tcp, "local", []string{rootDNSAddr}), zoneName),
			Registry: daemon.Registry(),
		})
	}

	var gosCmds []string
	for _, leaf := range []string{leafA, leafB} {
		cmdAddr := freeAddr(t)
		objAddr := freeAddr(t)
		srv, err := gos.Start(tcp, gos.Config{
			Site: "local", CmdAddr: cmdAddr, ObjAddr: objAddr,
			Runtime: newRuntime(leaf),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		gosCmds = append(gosCmds, cmdAddr)
	}

	// --- moderator publishes a replicated package --------------------
	tool, err := modtool.New(modtool.Config{
		Site: "local", Net: tcp,
		Runtime:         newRuntime(leafA),
		NamingAuthority: naAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tool.Close() })

	content := bytes.Repeat([]byte("tcp"), 100_000)
	if _, _, err := tool.CreatePackage("/apps/tcp-demo", core.Scenario{
		Protocol: "masterslave",
		Servers:  gosCmds,
	}, modtool.Package{
		Files: map[string][]byte{"demo.tar": content, "README": []byte("over real sockets")},
	}); err != nil {
		t.Fatal(err)
	}

	// --- a user binds by name and verifies ---------------------------
	userRT := newRuntime(leafB)
	lr, _, err := userRT.BindName("/apps/tcp-demo")
	if err != nil {
		t.Fatal(err)
	}
	stub := pkgobj.NewStub(lr)
	got, err := stub.GetFileContents("demo.tar")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch over TCP")
	}
	if err := stub.VerifyFile("demo.tar"); err != nil {
		t.Fatal(err)
	}
	lr.Close()

	// --- and through a real GDN-HTTPD --------------------------------
	h, err := httpd.New(httpd.Config{Runtime: newRuntime(leafB)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/pkg/apps/tcp-demo/-/demo.tar")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !bytes.Equal(body, content) {
		t.Fatalf("HTTP download over TCP failed: %d bytes, %v", len(body), err)
	}

	// --- teardown path ------------------------------------------------
	if _, err := tool.RemovePackage("/apps/tcp-demo"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := userRT.BindName("/apps/tcp-demo"); err == nil {
		t.Fatal("bind after removal must fail")
	}
}

// TestTCPFraming exercises the framed-conn layer directly: large
// frames, many frames, and the frame-size bound.
func TestTCPFraming(t *testing.T) {
	tcp := transport.TCP{}
	l, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type accepted struct {
		conn transport.Conn
		err  error
	}
	acc := make(chan accepted, 1)
	go func() {
		c, err := l.Accept()
		acc <- accepted{c, err}
	}()
	client, err := tcp.Dial("", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	a := <-acc
	if a.err != nil {
		t.Fatal(a.err)
	}
	server := a.conn
	defer server.Close()

	// Many ordered frames of mixed sizes.
	sizes := []int{0, 1, 1024, 1 << 20, 3, 8 << 20}
	go func() {
		for i, n := range sizes {
			buf := bytes.Repeat([]byte{byte(i + 1)}, n)
			if err := client.Send(buf); err != nil {
				return
			}
		}
	}()
	for i, n := range sizes {
		got, _, err := server.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(got) != n {
			t.Fatalf("frame %d: %d bytes, want %d", i, len(got), n)
		}
		if n > 0 && (got[0] != byte(i+1) || got[n-1] != byte(i+1)) {
			t.Fatalf("frame %d corrupted", i)
		}
	}

	// Oversized frames are refused at the sender.
	if err := client.Send(make([]byte, transport.MaxFrame+1)); err == nil {
		t.Fatal("oversized frame must be refused")
	}
}

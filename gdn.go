// Package gdn is the public face of this reproduction of "The Globe
// Distribution Network" (Bakker et al., USENIX 2000): a worldwide
// application for distributing free software, built on the Globe
// middleware's distributed shared objects with per-object replication.
//
// The implementation lives in internal packages, one per subsystem:
//
//	internal/core     distributed shared objects: subobjects, binding
//	internal/repl     replication protocols (clientserver, masterslave,
//	                  active, cache, local)
//	internal/gls      the Globe Location Service (OID → contact address)
//	internal/dns      a miniature DNS (substrate for the name service)
//	internal/gns      the Globe Name Service and its Naming Authority
//	internal/pkgobj   the package DSO (files, manifests, digests)
//	internal/store    the content-addressed chunk store behind bulk
//	                  content, caches and object-server persistence
//	internal/gos      the Globe Object Server daemon logic
//	internal/httpd    the GDN-enabled HTTPD / proxy
//	internal/modtool  the moderator tool
//	internal/netsim   the simulated wide-area network
//	internal/sec      authenticated, integrity-protected channels
//
// This package re-exports the types a user composes deployments from
// and provides World, a builder that assembles a complete GDN — the
// location-service tree, name servers, naming authority, object
// servers, moderator tools and GDN HTTPDs — either on the simulated
// WAN (tests, benchmarks, experiments) or on real TCP (the cmd/
// daemons build their own smaller assemblies).
package gdn

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gdn/internal/core"
	"gdn/internal/dns"
	"gdn/internal/gls"
	"gdn/internal/gns"
	"gdn/internal/gos"
	"gdn/internal/httpd"
	"gdn/internal/ids"
	"gdn/internal/modtool"
	"gdn/internal/netsim"
	"gdn/internal/pkgobj"
	"gdn/internal/repl"
	"gdn/internal/sec"
)

// Re-exported identifiers, so deployments can be written against this
// package alone.
type (
	// OID is a worldwide-unique, location-independent object identifier.
	OID = ids.OID
	// Scenario is a replication scenario: protocol + hosting servers.
	Scenario = core.Scenario
	// ContactAddress locates one representative of an object.
	ContactAddress = gls.ContactAddress
	// Package describes a package's files and metadata for creation.
	Package = modtool.Package
	// FileInfo describes one file inside a package.
	FileInfo = pkgobj.FileInfo
	// Stub is the typed client interface of a package DSO.
	Stub = pkgobj.Stub
)

// Replication protocol names, re-exported from internal/repl.
const (
	ProtocolClientServer = repl.ClientServer
	ProtocolMasterSlave  = repl.MasterSlave
	ProtocolActive       = repl.Active
	ProtocolCache        = repl.Cache
)

// Topology describes the simulated world to build: regions and the
// sites inside them. The first listed site of each region hosts that
// region's location-service directory node and one authoritative name
// server for the GDN Zone.
type Topology struct {
	// Regions maps a region name ("eu") to its site names. Iteration
	// order is normalized by sorting, so topologies are deterministic.
	Regions map[string][]string
	// HubSite hosts the root directory node, the root DNS server and
	// the naming authority. Defaults to "hub" (created automatically).
	HubSite string
	// RootSubnodes partitions the location-service root directory node
	// (§3.5); 1 (default) means unpartitioned. Extra subnode sites are
	// created in the hub's domain.
	RootSubnodes int
	// SharedRegionLeaves attaches every site of a region to the region's
	// directory node directly instead of giving each site its own leaf
	// node. Replicas hosted anywhere in the region then register in one
	// record, so a single lookup returns every regional replica — the
	// peer set a binding client needs for instant intra-region failover.
	// The failover experiments use this; the default (per-site leaves)
	// preserves the paper's deeper hierarchy.
	SharedRegionLeaves bool
	// Zone is the GDN Zone name; defaults to "gdn.cs.vu.nl".
	Zone string
	// GNSBatchSize batches naming-authority updates (§5); default 1.
	GNSBatchSize int
	// Secure runs every service with two-way authenticated channels and
	// role-based admission (§6.3).
	Secure bool
	// GOSLeaseTTL overrides the object servers' registration-session
	// TTL. 0 keeps the gos default (30s); chaos experiments shrink it
	// so partition-heal repair is observable in wall-clock seconds.
	GOSLeaseTTL time.Duration
}

// DefaultTopology is a small three-region world used by examples and
// benchmarks: two sites per region in Europe, North America and Asia.
func DefaultTopology() Topology {
	return Topology{
		Regions: map[string][]string{
			"eu": {"eu-nl-vu", "eu-de-tu"},
			"na": {"na-ca-ucb", "na-ny-cu"},
			"ap": {"ap-jp-ut", "ap-au-mu"},
		},
	}
}

// VirtualClock is a controllable time source shared by a World's
// runtimes; TTL caches expire when tests advance it.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// Now returns the current virtual time.
func (vc *VirtualClock) Now() time.Time {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.now
}

// Advance moves virtual time forward.
func (vc *VirtualClock) Advance(d time.Duration) {
	vc.mu.Lock()
	vc.now = vc.now.Add(d)
	vc.mu.Unlock()
}

// World is a complete in-process GDN deployment on a simulated WAN.
type World struct {
	Net   *netsim.Network
	Tree  *gls.Tree
	Clock *VirtualClock

	topology Topology
	zone     string
	sites    []string // all leaf sites, sorted
	regions  []string // region names, sorted

	dnsServers map[string]*dns.Server // by site
	authority  *gns.Authority
	gosServers map[string]*gos.Server // by site

	registry *core.Registry
	secCA    *sec.Authority

	mu       sync.Mutex
	closers  []func()
	runtimes map[string]*core.Runtime
}

// Zone returns the GDN Zone name.
func (w *World) Zone() string { return w.zone }

// Sites returns every leaf site, sorted.
func (w *World) Sites() []string { return append([]string(nil), w.sites...) }

// Regions returns the region names, sorted.
func (w *World) Regions() []string { return append([]string(nil), w.regions...) }

// RegionSites returns the sites of one region.
func (w *World) RegionSites(region string) []string {
	return append([]string(nil), w.topology.Regions[region]...)
}

// Registry returns the shared implementation repository (package
// semantics and all replication protocols pre-registered).
func (w *World) Registry() *core.Registry { return w.registry }

// Authority returns the GNS Naming Authority.
func (w *World) Authority() *gns.Authority { return w.authority }

// GOS returns the object server at a site, if one was started.
func (w *World) GOS(site string) (*gos.Server, bool) {
	s, ok := w.gosServers[site]
	return s, ok
}

// DNSServer returns the authoritative name server at a site, if any.
func (w *World) DNSServer(site string) (*dns.Server, bool) {
	s, ok := w.dnsServers[site]
	return s, ok
}

// Close tears the whole world down, newest services first.
func (w *World) Close() {
	w.mu.Lock()
	closers := w.closers
	w.closers = nil
	w.mu.Unlock()
	for i := len(closers) - 1; i >= 0; i-- {
		closers[i]()
	}
}

func (w *World) addCloser(f func()) {
	w.mu.Lock()
	w.closers = append(w.closers, f)
	w.mu.Unlock()
}

// NewWorld builds and starts a deployment: the simulated network, the
// location-service hierarchy (root, one domain per region, one leaf
// domain per site), a root DNS server delegating the GDN Zone to one
// authoritative server per region, the naming authority, and one Globe
// Object Server per site.
func NewWorld(top Topology) (*World, error) {
	if len(top.Regions) == 0 {
		return nil, fmt.Errorf("gdn: topology needs regions")
	}
	if top.HubSite == "" {
		top.HubSite = "hub"
	}
	if top.Zone == "" {
		top.Zone = "gdn.cs.vu.nl"
	}
	if top.RootSubnodes < 1 {
		top.RootSubnodes = 1
	}
	if top.GNSBatchSize < 1 {
		top.GNSBatchSize = 1
	}

	w := &World{
		Net:        netsim.New(nil),
		Clock:      &VirtualClock{now: time.Unix(1_000_000_000, 0)},
		topology:   top,
		zone:       dns.CanonicalName(top.Zone),
		dnsServers: make(map[string]*dns.Server),
		gosServers: make(map[string]*gos.Server),
		registry:   core.NewRegistry(),
		runtimes:   make(map[string]*core.Runtime),
	}
	pkgobj.Register(w.registry)
	repl.RegisterAll(w.registry)

	if top.Secure {
		ca, err := sec.NewAuthority("gdn-root-authority")
		if err != nil {
			return nil, err
		}
		w.secCA = ca
	}

	// Regions and sites, sorted for determinism.
	for region := range top.Regions {
		w.regions = append(w.regions, region)
	}
	sort.Strings(w.regions)
	for _, region := range w.regions {
		if len(top.Regions[region]) == 0 {
			return nil, fmt.Errorf("gdn: region %q has no sites", region)
		}
		for _, site := range top.Regions[region] {
			w.Net.AddSite(site, site, region)
			w.sites = append(w.sites, site)
		}
	}
	sort.Strings(w.sites)
	w.Net.AddSite(top.HubSite, top.HubSite, "core")

	// Location-service hierarchy. Root subnodes beyond the first get
	// their own hub-domain sites.
	rootSites := []string{top.HubSite}
	for i := 1; i < top.RootSubnodes; i++ {
		extra := fmt.Sprintf("%s-%d", top.HubSite, i)
		w.Net.AddSite(extra, top.HubSite, "core")
		rootSites = append(rootSites, extra)
	}
	rootSpec := gls.DomainSpec{Name: "root", Sites: rootSites}
	for _, region := range w.regions {
		regionSpec := gls.DomainSpec{Name: region, Sites: []string{top.Regions[region][0]}}
		if !top.SharedRegionLeaves {
			for _, site := range top.Regions[region] {
				regionSpec.Children = append(regionSpec.Children, gls.Leaf(region+"/"+site, site))
			}
		}
		rootSpec.Children = append(rootSpec.Children, regionSpec)
	}
	var treeOpts []gls.DeployOption
	if w.secCA != nil {
		auth, err := w.Credentials(sec.RoleGLS, "tree")
		if err != nil {
			return nil, err
		}
		treeOpts = append(treeOpts, gls.WithTreeAuth(auth))
	}
	tree, err := gls.Deploy(w.Net, rootSpec, treeOpts...)
	if err != nil {
		return nil, err
	}
	w.Tree = tree
	w.addCloser(tree.Close)

	if err := w.startNaming(); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.startObjectServers(); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// Credentials issues credentials for a role from the world's authority
// (secure worlds only). GDN hosts get two-way authentication.
func (w *World) Credentials(role, id string) (*sec.Config, error) {
	if w.secCA == nil {
		return nil, nil
	}
	creds, err := sec.NewCredentials(w.secCA, sec.Principal(role, id), role)
	if err != nil {
		return nil, err
	}
	requireClient := role != sec.RoleUser
	return &sec.Config{
		Creds:             creds,
		TrustAnchors:      w.secCA.Anchors(),
		RequireClientAuth: requireClient,
	}, nil
}

// tsigSecret is the shared key between the naming authority and the
// zone's name servers.
var tsigSecret = []byte("gdn-naming-authority-tsig-key")

// startNaming brings up DNS and the naming authority: a root server at
// the hub delegating the GDN Zone to one authoritative server per
// region.
func (w *World) startNaming() error {
	hub := w.topology.HubSite
	rootSrv, err := dns.ServeDNS(w.Net, hub+":dns", nil)
	if err != nil {
		return err
	}
	w.addCloser(func() { rootSrv.Close() })
	w.dnsServers[hub] = rootSrv

	rootZone := dns.NewZone("")
	var zoneServers []string
	for _, region := range w.regions {
		site := w.topology.Regions[region][0]
		srv, err := dns.ServeDNS(w.Net, site+":dns", nil)
		if err != nil {
			return err
		}
		w.addCloser(func() { srv.Close() })
		w.dnsServers[site] = srv

		zone := dns.NewZone(w.zone)
		zone.AllowUpdate("na-key", tsigSecret)
		srv.AddZone(zone)
		zoneServers = append(zoneServers, site+":dns")

		nsName := "ns-" + region + "." + w.zone
		if err := rootZone.Add(dns.RR{Name: w.zone, Type: dns.TypeNS, TTL: 3600, Data: nsName}); err != nil {
			return err
		}
		if err := rootZone.Add(dns.RR{Name: nsName, Type: dns.TypeADDR, TTL: 3600, Data: site + ":dns"}); err != nil {
			return err
		}
	}
	rootSrv.AddZone(rootZone)

	var naAuth *sec.Config
	if w.secCA != nil {
		var err error
		naAuth, err = w.Credentials(sec.RoleGNS, "naming-authority")
		if err != nil {
			return err
		}
	}
	authority, err := gns.StartAuthority(w.Net, gns.AuthorityConfig{
		Zone:       w.zone,
		Site:       hub,
		Addr:       hub + ":gns-authority",
		Servers:    zoneServers,
		TSIGKey:    "na-key",
		TSIGSecret: tsigSecret,
		BatchSize:  w.topology.GNSBatchSize,
		Auth:       naAuth,
	})
	if err != nil {
		return err
	}
	w.authority = authority
	w.addCloser(func() { authority.Close() })
	return nil
}

// startObjectServers launches one GOS per leaf site.
func (w *World) startObjectServers() error {
	for _, site := range w.sites {
		var auth *sec.Config
		if w.secCA != nil {
			var err error
			auth, err = w.Credentials(sec.RoleGOS, site)
			if err != nil {
				return err
			}
		}
		rt, err := w.runtime(site, auth)
		if err != nil {
			return err
		}
		srv, err := gos.Start(w.Net, gos.Config{
			Site:     site,
			CmdAddr:  site + ":gos-cmd",
			ObjAddr:  site + ":gos-obj",
			Runtime:  rt,
			Auth:     auth,
			LeaseTTL: w.topology.GOSLeaseTTL,
		})
		if err != nil {
			return err
		}
		w.gosServers[site] = srv
		w.addCloser(func() { srv.Close() })
	}
	return nil
}

// leafDomain returns the location-service domain a site's clients and
// servers attach to: the site's own leaf, or the whole region's node
// when the topology shares leaves.
func (w *World) leafDomain(site string) (string, error) {
	for _, region := range w.regions {
		for _, s := range w.topology.Regions[region] {
			if s == site {
				if w.topology.SharedRegionLeaves {
					return region, nil
				}
				return region + "/" + site, nil
			}
		}
	}
	return "", fmt.Errorf("gdn: unknown site %q", site)
}

// DNSResolver returns a caching DNS resolver at a site, rooted at the
// hub's root server.
func (w *World) DNSResolver(site string) *dns.Resolver {
	res := dns.NewResolver(w.Net, site, []string{w.topology.HubSite + ":dns"})
	w.addCloser(func() { res.Close() })
	return res
}

// NameService returns a GNS read handle at a site.
func (w *World) NameService(site string) *gns.NameService {
	return gns.NewNameService(w.DNSResolver(site), w.zone)
}

// GLSResolver returns a location-service resolver attached to the
// site's leaf domain.
func (w *World) GLSResolver(site string, auth *sec.Config) (*gls.Resolver, error) {
	leaf, err := w.leafDomain(site)
	if err != nil {
		return nil, err
	}
	var opts []gls.ResolverOption
	if auth != nil {
		opts = append(opts, gls.WithResolverAuth(auth))
	}
	res, err := w.Tree.Resolver(site, leaf, opts...)
	if err != nil {
		return nil, err
	}
	w.addCloser(func() { res.Close() })
	return res, nil
}

// runtime builds (and caches per site+auth-identity) a runtime.
func (w *World) runtime(site string, auth *sec.Config) (*core.Runtime, error) {
	key := site
	if auth != nil && auth.Creds != nil {
		key += "/" + auth.Creds.Cert.Name
	}
	w.mu.Lock()
	rt, ok := w.runtimes[key]
	w.mu.Unlock()
	if ok {
		return rt, nil
	}
	res, err := w.GLSResolver(site, auth)
	if err != nil {
		return nil, err
	}
	rt = core.NewRuntime(core.RuntimeConfig{
		Site:     site,
		Net:      w.Net,
		Resolver: res,
		Names:    w.NameService(site),
		Registry: w.registry,
		Auth:     auth,
		Clock:    w.Clock.Now,
	})
	w.mu.Lock()
	w.runtimes[key] = rt
	w.mu.Unlock()
	return rt, nil
}

// UserRuntime returns a runtime for an ordinary GDN user at a site:
// anonymous in open worlds, user-role credentials in secure ones.
func (w *World) UserRuntime(site string) (*core.Runtime, error) {
	var auth *sec.Config
	if w.secCA != nil {
		var err error
		auth, err = w.Credentials(sec.RoleUser, "user-"+site)
		if err != nil {
			return nil, err
		}
		auth.RequireClientAuth = false
	}
	return w.runtime(site, auth)
}

// GOSAddrs returns the command addresses of the object servers at the
// given sites; a replication scenario is a protocol plus this list.
func (w *World) GOSAddrs(sites ...string) []string {
	out := make([]string, len(sites))
	for i, site := range sites {
		out[i] = site + ":gos-cmd"
	}
	return out
}

// Moderator returns a moderator tool homed at a site.
func (w *World) Moderator(site, name string) (*modtool.Tool, error) {
	var auth *sec.Config
	if w.secCA != nil {
		var err error
		auth, err = w.Credentials(sec.RoleModerator, name)
		if err != nil {
			return nil, err
		}
	}
	rt, err := w.runtime(site, auth)
	if err != nil {
		return nil, err
	}
	tool, err := modtool.New(modtool.Config{
		Site:            site,
		Net:             w.Net,
		Runtime:         rt,
		NamingAuthority: w.topology.HubSite + ":gns-authority",
		Auth:            auth,
	})
	if err != nil {
		return nil, err
	}
	w.addCloser(func() { tool.Close() })
	return tool, nil
}

// HTTPDConfig tunes an HTTPD created with HTTPD.
type HTTPDConfig struct {
	// Caching installs cache replicas during binding (the paper's
	// "may act as a replica").
	Caching bool
	// CacheParams tunes the caches (ttl, mode).
	CacheParams map[string]string
	// RegisterCaches registers caches in the location service.
	RegisterCaches bool
	// CacheBytes bounds the HTTPD's shared chunk cache (0 = default).
	CacheBytes int64
	// StateDir roots the chunk cache on disk so it survives restarts
	// ("" = in-memory).
	StateDir string
	// LeaseTTL is the registration-session lifetime for registered
	// caches (0 = default 30s, negative = permanent registrations).
	LeaseTTL time.Duration
	// RenewEvery overrides the session heartbeat cadence (negative
	// disables the loop; tests renew by hand).
	RenewEvery time.Duration
}

// HTTPD starts a GDN-enabled HTTPD at a site and returns its handler.
func (w *World) HTTPD(site string, cfg HTTPDConfig) (*httpd.Handler, error) {
	var auth *sec.Config
	if w.secCA != nil {
		var err error
		auth, err = w.Credentials(sec.RoleHTTPD, site)
		if err != nil {
			return nil, err
		}
	}
	rt, err := w.runtime(site, auth)
	if err != nil {
		return nil, err
	}
	var disp *core.Dispatcher
	if cfg.Caching {
		disp, err = core.NewDispatcher(w.Net, site, site+":httpd-obj", auth, nil)
		if err != nil {
			return nil, err
		}
		w.addCloser(func() { disp.Close() })
	}
	h, err := httpd.New(httpd.Config{
		Runtime:        rt,
		CacheObjects:   cfg.Caching,
		Disp:           disp,
		CacheParams:    cfg.CacheParams,
		RegisterCaches: cfg.RegisterCaches,
		CacheBytes:     cfg.CacheBytes,
		StateDir:       cfg.StateDir,
		LeaseTTL:       cfg.LeaseTTL,
		RenewEvery:     cfg.RenewEvery,
	})
	if err != nil {
		return nil, err
	}
	w.addCloser(func() { h.Close() })
	return h, nil
}

// BindPackage binds a user at a site to a package by name and returns
// its typed stub.
func (w *World) BindPackage(site, name string) (*Stub, time.Duration, error) {
	rt, err := w.UserRuntime(site)
	if err != nil {
		return nil, 0, err
	}
	lr, cost, err := rt.BindName(name)
	if err != nil {
		return nil, cost, err
	}
	return pkgobj.NewStub(lr), cost, nil
}

// Package analysis is the project-invariant static-analysis suite:
// a small, dependency-free analyzer framework (mirroring the shape of
// golang.org/x/tools/go/analysis, which this module deliberately does
// not depend on) plus the four gdn analyzers that machine-check the
// conventions the data plane's correctness rests on:
//
//   - bufown: zero-copy buffer ownership — a buffer obtained from
//     store.GetZC/transport.GetFrame/Conn.Recv, or a file handle from
//     store.OpenChunk, must have its release fire exactly once on
//     every path: no use-after-release, no double-release, no leak on
//     early return. SendOwned/SendFile transfer ownership to the send
//     path; the caller must not release (or touch the buffer) after
//     the handoff.
//   - tracectx: trace propagation — a function that takes an
//     obs.SpanContext must call the T-variant of any callee that has
//     one, and must not re-root a trace by passing a zero
//     obs.SpanContext{} while a real context is in scope.
//   - metricname: every obs.Registry Counter/Gauge/Histogram series
//     name matches gdn_<layer>_* where <layer> is the declaring
//     package (or its sanctioned alias), with the unit-suffix
//     conventions from internal/obs/doc.go.
//   - lockrpc: no rpc.Client/core.PeerClient call, channel send, or
//     transport write while holding a store/pending-table shard
//     mutex — the deadlock class 16-way/8-way striping makes easy to
//     reintroduce.
//
// The framework loads packages with `go list -export -deps` and
// type-checks the target packages from source against the export data
// of their dependencies, so it needs only the Go toolchain — no
// module downloads. cmd/gdn-lint is the multichecker driver; the
// analyzers' golden tests live under testdata/ and run through the
// analysistest subpackage.
//
// Diagnostics are suppressed with a directive on the flagged line or
// the line above:
//
//	//gdnlint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; a directive without one is itself a
// finding.
package analysis

package analysis_test

import (
	"testing"

	"gdn/internal/analysis"
	"gdn/internal/analysis/analysistest"
)

func TestBufOwnGolden(t *testing.T) {
	analysistest.Run(t, analysis.BufOwn, "testdata/bufown")
}

func TestBufOwnClean(t *testing.T) {
	analysistest.Run(t, analysis.BufOwn, "testdata/bufownclean")
}

func TestTraceCtxGolden(t *testing.T) {
	analysistest.Run(t, analysis.TraceCtx, "testdata/tracectx")
}

func TestTraceCtxClean(t *testing.T) {
	analysistest.Run(t, analysis.TraceCtx, "testdata/tracectxclean")
}

func TestMetricNameGolden(t *testing.T) {
	analysistest.Run(t, analysis.MetricName, "testdata/metricname")
}

func TestMetricNameClean(t *testing.T) {
	analysistest.Run(t, analysis.MetricName, "testdata/metricnameclean")
}

func TestLockRPCGolden(t *testing.T) {
	analysistest.Run(t, analysis.LockRPC, "testdata/lockrpc")
}

func TestLockRPCClean(t *testing.T) {
	analysistest.Run(t, analysis.LockRPC, "testdata/lockrpcclean")
}

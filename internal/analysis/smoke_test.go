package analysis_test

import (
	"testing"

	"gdn/internal/analysis"
)

// TestSuiteCleanOnRealPackages is the in-tree smoke test: the loader
// must type-check real packages through go list export data, and the
// suite must be clean on the hot data-plane packages (CI runs the full
// ./... sweep through cmd/gdn-lint).
func TestSuiteCleanOnRealPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list")
	}
	pkgs, err := analysis.Load("../..", "./internal/store", "./internal/rpc")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, analysis.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %v", d)
	}
}

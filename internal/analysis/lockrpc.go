package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockRPC enforces the lock discipline the striped hot structures
// (the store's 16-way chunk shards, the rpc pending table's 8-way
// shards) depend on: a shard mutex is held for map surgery only.
// Blocking while holding one — an rpc.Client/core.PeerClient call, a
// StreamWriter send, a transport write, or a channel send — stalls
// every request hashing to that shard, and closes the loop for the
// classic reply-delivery deadlock (demux needs the shard the blocked
// sender holds).
//
// A shard mutex is any sync.Mutex/RWMutex locked through a value
// whose named type contains "shard" (store.shard, rpc.pendShard, ...).
// Ordinary connection-level mutexes (e.g. a sequencer serializing
// Send) are legitimately held across writes and are not flagged.
// Channel sends inside a select with a default case are non-blocking
// and exempt.
var LockRPC = &Analyzer{
	Name: "lockrpc",
	Doc: "no rpc/transport call or blocking channel send while holding a store or " +
		"pending-table shard mutex",
	Run: runLockRPC,
}

func runLockRPC(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					(&lockWalker{pass: pass}).walkStmts(fn.Body.List)
				}
			case *ast.FuncLit:
				(&lockWalker{pass: pass}).walkStmts(fn.Body.List)
			}
			return true
		})
	}
	return nil
}

// lockWalker tracks the stack of shard locks held at each statement.
// held entries are human-readable descriptions of the lock
// expressions, e.g. "store.shard mutex".
type lockWalker struct {
	pass *Pass
	held []string
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt) {
	depth := len(w.held)
	for _, s := range stmts {
		w.walkStmt(s)
	}
	// Locks taken in this block (and not released in it) do not leak
	// into the caller's view: a helper that returns holding a lock is
	// beyond this analysis.
	if len(w.held) > depth {
		w.held = w.held[:depth]
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer shard.mu.Unlock() keeps the lock to the end of the
		// function: everything after is "while held". An Unlock is
		// never treated as releasing when deferred.
		if w.shardLockName(s.Call, "Lock", "RLock") != "" {
			// Deferred Lock would be bizarre; ignore.
			return
		}
		w.dangerExpr(s.Call)
	case *ast.GoStmt:
		w.dangerExpr(s.Call) // spawning is fine; evaluate args only
	case *ast.SendStmt:
		if len(w.held) > 0 {
			w.pass.Reportf(s.Arrow, "channel send may block while holding %s", w.held[len(w.held)-1])
		}
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.expr(s.Cond)
		w.walkStmts(s.Body.List)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.walkStmts(s.Body.List)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.walkStmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		w.selectStmt(s)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	}
}

// selectStmt: a select with a default case never blocks, so its sends
// are exempt; without one, each communication can block exactly like a
// bare send.
func (w *lockWalker) selectStmt(s *ast.SelectStmt) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm != nil {
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				if !hasDefault && len(w.held) > 0 {
					w.pass.Reportf(send.Arrow, "channel send may block while holding %s", w.held[len(w.held)-1])
				}
				w.expr(send.Chan)
				w.expr(send.Value)
			} else {
				if hasDefault {
					// Non-blocking receive: walk without the send check.
					w.walkStmt(cc.Comm)
				} else {
					if len(w.held) > 0 {
						w.pass.Reportf(cc.Comm.Pos(), "select may block while holding %s", w.held[len(w.held)-1])
					}
					w.walkStmt(cc.Comm)
				}
			}
		}
		w.walkStmts(cc.Body)
	}
}

// expr handles lock transitions and danger calls in an expression.
func (w *lockWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		// Non-call expressions can still contain calls (binary ops,
		// composite literals, ...).
		ast.Inspect(e, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				w.expr(c)
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false // separate scope, walked by runLockRPC
			}
			return true
		})
		return
	}
	if name := w.shardLockName(call, "Lock", "RLock"); name != "" {
		w.held = append(w.held, name)
		return
	}
	if name := w.shardLockName(call, "Unlock", "RUnlock"); name != "" {
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i] == name {
				w.held = append(w.held[:i], w.held[i+1:]...)
				break
			}
		}
		return
	}
	w.dangerExpr(call)
}

// dangerExpr reports the call if it can block on the network or a
// peer while a shard lock is held, then recurses into its arguments.
func (w *lockWalker) dangerExpr(call *ast.CallExpr) {
	if len(w.held) > 0 {
		if what := dangerCall(w.pass.Info, call); what != "" {
			w.pass.Reportf(call.Pos(), "%s while holding %s", what, w.held[len(w.held)-1])
		}
	}
	for _, a := range call.Args {
		w.expr(a)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(sel.X)
	}
}

// dangerCall classifies calls that block on a peer: rpc client calls,
// stream-writer sends, raw transport writes.
func dangerCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	if funcIs(fn, "gdn/internal/transport", "SendVec") || funcIs(fn, "gdn/internal/transport", "SendFileFrame") {
		return "transport." + fn.Name()
	}
	recvPkg, recvType, ok := recvTypeName(fn)
	if !ok {
		return ""
	}
	for _, t := range [...]struct{ pkg, typ, label string }{
		{"gdn/internal/rpc", "Client", "rpc.Client." + fn.Name()},
		{"gdn/internal/rpc", "StreamWriter", "rpc.StreamWriter." + fn.Name()},
		{"gdn/internal/core", "PeerClient", "core.PeerClient." + fn.Name()},
		{"gdn/internal/transport", "Conn", "transport.Conn." + fn.Name()},
	} {
		if recvPkg == t.pkg && recvType == t.typ {
			return t.label
		}
	}
	return ""
}

// shardLockName matches a call of one of methods on a sync.Mutex or
// sync.RWMutex reached through a value whose named type contains
// "shard", returning a description of the lock, or "".
func (w *lockWalker) shardLockName(call *ast.CallExpr, methods ...string) string {
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil {
		return ""
	}
	match := false
	for _, m := range methods {
		if methodIs(fn, "sync", "Mutex", m) || methodIs(fn, "sync", "RWMutex", m) {
			match = true
			break
		}
	}
	if !match {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return w.shardTypeIn(sel.X)
}

// shardTypeIn scans the receiver chain of a mutex selector for a
// shard-named type: s.shards[i].mu, sh.mu, pendShards[h].mu, ...
func (w *lockWalker) shardTypeIn(e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		x, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := w.pass.Info.Types[x]
		if !ok {
			return true
		}
		named := namedOf(tv.Type)
		if named == nil {
			return true
		}
		name := named.Obj().Name()
		if strings.Contains(strings.ToLower(name), "shard") {
			q := name
			if named.Obj().Pkg() != nil {
				q = named.Obj().Pkg().Name() + "." + name
			}
			found = q + " mutex"
		}
		return true
	})
	return found
}

// Package lockrpccleantest holds the lock idioms lockrpc must accept:
// surgery-only shard holds, calls after the unlock, non-blocking
// sends, and connection-level (non-shard) mutexes held across writes.
package lockrpccleantest

import (
	"sync"

	"gdn/internal/rpc"
	"gdn/internal/transport"
)

type tableShard struct {
	mu      sync.Mutex
	waiters map[uint64]chan []byte
}

// unlockThenCall is the withdraw-then-notify idiom the real pending
// table uses: drop the shard lock before anything that can block.
func unlockThenCall(sh *tableShard, c *rpc.Client, id uint64, p []byte) {
	sh.mu.Lock()
	ch := sh.waiters[id]
	delete(sh.waiters, id)
	sh.mu.Unlock()
	if ch != nil {
		ch <- p
	}
	c.Call(1, nil)
}

// nonBlockingSend: a select with a default never parks the shard.
func nonBlockingSend(sh *tableShard, id uint64, p []byte) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	select {
	case sh.waiters[id] <- p:
		return true
	default:
		return false
	}
}

// sequencer is connection-level state, not a shard: holding its mutex
// across a send is the sequencedConn idiom and is legitimate.
type sequencer struct {
	mu   sync.Mutex
	next uint64
}

func sendInOrder(s *sequencer, conn transport.Conn, p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	return conn.Send(p)
}

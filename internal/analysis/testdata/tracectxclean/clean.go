// Package tracectxcleantest holds the propagation idioms tracectx
// must accept: forwarding the in-scope context through T-variants, and
// the sanctioned untraced entry points that root a fresh trace because
// they have no context to forward.
package tracectxcleantest

import (
	"gdn/internal/core"
	"gdn/internal/obs"
	"gdn/internal/rpc"
)

func forwards(tc obs.SpanContext, c *rpc.Client) error {
	_, _, err := c.CallT(tc, 1, nil)
	return err
}

func forwardsPeer(tc obs.SpanContext, p *core.PeerClient) error {
	_, err := p.CallStreamT(tc, 2, nil)
	return err
}

// Entry is an untraced convenience wrapper: no span context in scope,
// so rooting with the zero value is exactly what it should do.
func Entry(c *rpc.Client) error {
	_, _, err := c.CallT(obs.SpanContext{}, 1, nil)
	return err
}

// untracedCall: calling the untraced form is fine outside a traced
// path.
func untracedCall(c *rpc.Client) error {
	_, _, err := c.Call(1, nil)
	return err
}

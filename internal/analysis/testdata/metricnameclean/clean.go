// Package metricnamecleantest holds conforming series names,
// including labeled series and runtime-built names the analyzer must
// leave alone.
package metricnamecleantest

import "gdn/internal/obs"

func register(r *obs.Registry, ops []string) {
	r.Counter("gdn_metricnamecleantest_hits_total", "ok")
	r.Gauge("gdn_metricnamecleantest_queue_depth", "ok")
	r.Histogram("gdn_metricnamecleantest_wait_seconds", "ok", obs.Seconds, nil)
	r.Histogram("gdn_metricnamecleantest_frame_bytes", "ok", obs.Bytes, nil)
	r.Counter(`gdn_metricnamecleantest_hits_total{peer="a"}`, "labeled ok")

	// Runtime-built names (the gls per-op histogram pattern) are
	// checked by the registry at startup, not here.
	for _, op := range ops {
		r.Counter("gdn_metricnamecleantest_"+op+"_total", "dynamic")
	}
}

// Package bufowncleantest holds the correct ownership idioms bufown
// must accept without a single diagnostic: deferred releases,
// nil-guarded releases, err==nil fall-throughs, per-iteration loop
// releases, and SendOwned/SendFile handoffs.
package bufowncleantest

import (
	"os"

	"gdn/internal/rpc"
	"gdn/internal/store"
	"gdn/internal/transport"
)

func deferredRelease(s *store.Store, ref store.Ref) ([]byte, error) {
	data, release, err := s.GetZC(ref)
	if err != nil {
		return nil, err
	}
	defer release()
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

func nilGuardedRelease(s *store.Store, ref store.Ref, size int64) error {
	data, release, err := s.GetZC(ref)
	if err != nil {
		return err
	}
	if int64(len(data)) != size {
		if release != nil {
			release()
		}
		return os.ErrInvalid
	}
	release()
	return nil
}

// successBranchTerminates is the streamManifestRange shape: the happy
// path lives inside if err == nil and always returns, so the
// fall-through is the error path with nothing to release.
func successBranchTerminates(s *store.Store, ref store.Ref) (int64, error) {
	f, size, err := s.OpenChunk(ref)
	if err == nil {
		f.Close()
		return size, nil
	}
	return 0, err
}

func releasePerIteration(s *store.Store, refs []store.Ref, fn func(p []byte) error) error {
	for _, ref := range refs {
		data, release, err := s.GetZC(ref)
		if err != nil {
			return err
		}
		err = fn(data)
		if release != nil {
			release()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func handoffOwned(sw *rpc.StreamWriter, s *store.Store, ref store.Ref) error {
	data, release, err := s.GetZC(ref)
	if err != nil {
		return err
	}
	return sw.SendOwned(data, release)
}

func handoffFile(sw *rpc.StreamWriter, s *store.Store, ref store.Ref) error {
	f, size, err := s.OpenChunk(ref)
	if err != nil {
		return err
	}
	return sw.SendFile(f, size, func() {})
}

func putOnEveryPath(c transport.Conn) (byte, error) {
	p, _, err := c.Recv()
	if err != nil {
		return 0, err
	}
	if len(p) == 0 {
		transport.PutFrame(p)
		return 0, os.ErrInvalid
	}
	b := p[0]
	transport.PutFrame(p)
	return b, nil
}

// escapeStopsTracking: a frame stored in a struct leaves local
// analysis; whoever drains the queue owns it now.
type parked struct {
	payload []byte
}

func escapeStopsTracking(c transport.Conn, q chan<- parked) error {
	p, _, err := c.Recv()
	if err != nil {
		return err
	}
	q <- parked{payload: p}
	return nil
}

// Package suppresstest exercises the //gdnlint:ignore directive: a
// reasoned directive silences the named analyzer on its line and the
// next, a reasonless one is itself a finding and silences nothing.
package suppresstest

import (
	"sync"

	"gdn/internal/rpc"
)

type pendShard struct {
	mu sync.Mutex
}

// sanctioned carries a reasoned suppression: no lockrpc finding here.
func sanctioned(sh *pendShard, c *rpc.Client) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	//gdnlint:ignore lockrpc golden fixture: the callee is a recording stub that cannot block
	c.Call(1, nil)
}

// unexplained carries a reasonless directive: the directive is
// reported and the finding it failed to suppress survives.
func unexplained(sh *pendShard, c *rpc.Client) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	//gdnlint:ignore
	c.Call(1, nil)
}

// Package lockrpctest is the lockrpc golden package: blocking
// operations while holding a shard mutex.
package lockrpctest

import (
	"sync"

	"gdn/internal/core"
	"gdn/internal/rpc"
	"gdn/internal/transport"
)

// tableShard mirrors the striped pending-table/store shards the rule
// protects: the "shard" in the type name is what marks the mutex.
type tableShard struct {
	mu      sync.Mutex
	waiters map[uint64]chan []byte
}

func callUnderLock(sh *tableShard, c *rpc.Client) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.Call(1, nil) // want `rpc\.Client\.Call while holding lockrpctest\.tableShard mutex`
}

func peerCallUnderLock(sh *tableShard, p *core.PeerClient) {
	sh.mu.Lock()
	p.Call(1, nil) // want `core\.PeerClient\.Call while holding`
	sh.mu.Unlock()
}

func streamSendUnderLock(sh *tableShard, sw *rpc.StreamWriter, p []byte) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sw.Send(p) // want `rpc\.StreamWriter\.Send while holding`
}

func transportWriteUnderLock(sh *tableShard, conn transport.Conn, parts [][]byte) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	transport.SendVec(conn, parts) // want `transport\.SendVec while holding`
}

func connSendUnderLock(sh *tableShard, conn transport.Conn, p []byte) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	conn.Send(p) // want `transport\.Conn\.Send while holding`
}

func channelSendUnderLock(sh *tableShard, id uint64, p []byte) {
	sh.mu.Lock()
	ch := sh.waiters[id]
	ch <- p // want `channel send may block while holding`
	sh.mu.Unlock()
}

func blockingSelectUnderLock(sh *tableShard, id uint64, p []byte) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	select {
	case sh.waiters[id] <- p: // want `channel send may block while holding`
	}
}

// rlockCounts: read locks stall writers just the same.
type storeShard struct {
	mu sync.RWMutex
}

func rlockCounts(sh *storeShard, c *rpc.Client) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c.Call(1, nil) // want `rpc\.Client\.Call while holding lockrpctest\.storeShard mutex`
}

// recShard and clientShard mirror the GLS striped record table and
// client-connection stripes: the mutex is reached through an array of
// shard structs, and the rule must still mark it.
type recShard struct {
	mu   sync.RWMutex
	recs map[uint64]int
}

type clientShard struct {
	mu sync.Mutex
	m  map[string]*rpc.Client
}

type dirNode struct {
	shards  [16]recShard
	clients [8]clientShard
}

func lookupViaArrayShard(n *dirNode, c *rpc.Client) {
	sh := &n.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c.Call(1, nil) // want `rpc\.Client\.Call while holding lockrpctest\.recShard mutex`
}

func closeUnderClientStripe(n *dirNode) {
	sh := &n.clients[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, c := range sh.m {
		c.Close() // want `rpc\.Client\.Close while holding lockrpctest\.clientShard mutex`
	}
}

// Package bufowntest is the bufown golden package: every want comment
// pins a diagnostic the analyzer must produce against the real
// store/transport/rpc APIs.
package bufowntest

import (
	"os"

	"gdn/internal/rpc"
	"gdn/internal/store"
	"gdn/internal/transport"
)

// leakOnEarlyReturn forgets the release on the size-check error path.
func leakOnEarlyReturn(s *store.Store, ref store.Ref, size int64) ([]byte, error) {
	data, release, err := s.GetZC(ref)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != size {
		return nil, os.ErrInvalid // want `store\.GetZC buffer is not released`
	}
	out := make([]byte, len(data))
	copy(out, data)
	release()
	return out, nil
}

func doubleRelease(s *store.Store, ref store.Ref) error {
	_, release, err := s.GetZC(ref)
	if err != nil {
		return err
	}
	release()
	release() // want `store\.GetZC buffer is released twice`
	return nil
}

func useAfterRelease(s *store.Store, ref store.Ref) byte {
	data, release, err := s.GetZC(ref)
	if err != nil {
		return 0
	}
	release()
	return data[0] // want `use of store\.GetZC buffer after its release has fired`
}

func releaseAfterHandoff(sw *rpc.StreamWriter, s *store.Store, ref store.Ref) error {
	data, release, err := s.GetZC(ref)
	if err != nil {
		return err
	}
	if err := sw.SendOwned(data, release); err != nil {
		return err
	}
	release() // want `released after its ownership was handed to the send path`
	return nil
}

func useAfterHandoff(sw *rpc.StreamWriter, s *store.Store, ref store.Ref) byte {
	data, release, err := s.GetZC(ref)
	if err != nil {
		return 0
	}
	if err := sw.SendOwned(data, release); err != nil {
		return 0
	}
	return data[0] // want `use of store\.GetZC buffer after its ownership was handed`
}

func discardRelease(s *store.Store, ref store.Ref) []byte {
	data, _, err := s.GetZC(ref) // want `store\.GetZC buffer is discarded`
	if err != nil {
		return nil
	}
	return data
}

func leakHandle(s *store.Store, ref store.Ref) (int64, error) {
	f, size, err := s.OpenChunk(ref)
	if err != nil {
		return 0, err
	}
	if size == 0 {
		return 0, os.ErrInvalid // want `store\.OpenChunk handle is not released`
	}
	f.Close()
	return size, nil
}

func doublePut(n int) {
	p := transport.GetFrame(n)
	transport.PutFrame(p)
	transport.PutFrame(p) // want `transport\.GetFrame buffer is released twice`
}

// dropShortFrame mirrors the sequencedConn.Recv leak this analyzer
// caught in the real tree: an undersized frame dropped on the
// validation path without going back to the pool.
func dropShortFrame(c transport.Conn) ([]byte, error) {
	p, _, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if len(p) < 8 {
		return nil, os.ErrInvalid // want `received frame is not released`
	}
	return p, nil
}

// leakInLoop loses one frame per iteration on the skip path.
func leakInLoop(c transport.Conn, n int) error {
	for i := 0; i < n; i++ {
		p, _, err := c.Recv()
		if err != nil {
			return err
		}
		if len(p) == 0 {
			continue // want `received frame is not released`
		}
		transport.PutFrame(p)
	}
	return nil
}

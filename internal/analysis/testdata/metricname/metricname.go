// Package metricnametest is the metricname golden package: series
// names that violate the gdn_<layer>_* and unit-suffix conventions.
package metricnametest

import "gdn/internal/obs"

func register(r *obs.Registry) {
	r.Counter("gdn_store_hits_total", "wrong layer")        // want `claims layer "store" but is declared in package metricnametest`
	r.Counter("metricnametest_hits_total", "no gdn prefix") // want `does not start with gdn_`
	r.Counter("gdn_metricnametest_hits", "no unit")         // want `must end in _total`
	r.Counter("gdn_metricnametest_", "empty what")          // want `has no name after the layer segment`
	r.Gauge("gdn_metricnametest_depth_total", "gauge unit") // want `must not end in _total`
	r.Gauge("gdn_metricnametest_wait_seconds", "gauge sec") // want `must not end in _seconds`

	r.Histogram("gdn_metricnametest_wait_bytes", "unit mismatch", obs.Seconds, nil)  // want `must end in _seconds`
	r.Histogram("gdn_metricnametest_size_seconds", "unit mismatch", obs.Bytes, nil)  // want `must end in _bytes`
	r.Histogram("gdn_metricnametest_size", "no unit at all", obs.Bytes, []int64{1})  // want `must end in _bytes`
	r.Counter(`gdn_metricnametest_hits{peer="a"}`, "label does not rescue the unit") // want `must end in _total`
}

// Package tracectxtest is the tracectx golden package: traced
// functions that drop or re-root the span context.
package tracectxtest

import (
	"io"

	"gdn/internal/core"
	"gdn/internal/obs"
	"gdn/internal/pkgobj"
	"gdn/internal/rpc"
)

func dropOnClient(tc obs.SpanContext, c *rpc.Client) error {
	_, _, err := c.Call(1, nil) // want `call to Call drops the trace .* call CallT`
	return err
}

func dropOnPeer(tc obs.SpanContext, p *core.PeerClient) error {
	_, err := p.CallStream(2, nil) // want `call to CallStream drops the trace .* call CallStreamT`
	return err
}

func dropOnStub(tc obs.SpanContext, s *pkgobj.Stub, w io.Writer) error {
	_, err := s.ReadFileTo(w, "/x") // want `call to ReadFileTo drops the trace .* call ReadFileToT`
	return err
}

func reroot(tc obs.SpanContext, c *rpc.Client) error {
	_, _, err := c.CallT(obs.SpanContext{}, 1, nil) // want `zero obs\.SpanContext\{\} re-roots the trace`
	return err
}

// rerootInClosure: the span context is still in scope inside a closure
// spawned by a traced function.
func rerootInClosure(tc obs.SpanContext, c *rpc.Client) func() error {
	return func() error {
		_, _, err := c.CallT(obs.SpanContext{}, 1, nil) // want `zero obs\.SpanContext\{\} re-roots the trace`
		return err
	}
}

package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// MetricName enforces the series-naming conventions documented in
// internal/obs/doc.go: every name registered through an obs.Registry
// is gdn_<layer>_<what>[_<unit>], where <layer> is the declaring
// package (so a dashboard can be read back to the code that emits it),
// counters end in _total, histograms carry their unit (_seconds or
// _bytes, matching the obs.Seconds/obs.Bytes unit argument), and
// gauges are instantaneous values, so they carry neither.
//
// Names built at runtime (non-constant arguments) are skipped: the
// analyzer checks what it can prove, and the registry's own validation
// covers the rest at process start.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "obs.Registry series names are gdn_<layer>_* for the declaring package, " +
		"counters end _total, histograms end _seconds/_bytes per their unit, gauges carry no unit suffix",
	Run: runMetricName,
}

// metricLayerAliases maps a package name to additional accepted layer
// segments. core's peer-set metrics predate the rule and are
// sanctioned by internal/obs/doc.go's prefix list.
var metricLayerAliases = map[string][]string{
	"core": {"peerset"},
}

func runMetricName(pass *Pass) error {
	layers := append([]string{pass.Pkg.Name()}, metricLayerAliases[pass.Pkg.Name()]...)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || len(call.Args) == 0 {
				return true
			}
			var metricKind string
			switch {
			case methodIs(fn, "gdn/internal/obs", "Registry", "Counter"):
				metricKind = "Counter"
			case methodIs(fn, "gdn/internal/obs", "Registry", "Gauge"):
				metricKind = "Gauge"
			case methodIs(fn, "gdn/internal/obs", "Registry", "Histogram"):
				metricKind = "Histogram"
			default:
				return true
			}
			name, ok := constString(pass.Info, call.Args[0])
			if !ok {
				return true // runtime-built name: nothing to prove here
			}
			checkMetricName(pass, call, metricKind, name, layers)
			return true
		})
	}
	return nil
}

// constString folds e to its constant string value.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func checkMetricName(pass *Pass, call *ast.CallExpr, kind, name string, layers []string) {
	pos := call.Args[0].Pos()
	// Static labels ride in a {k="v"} suffix; the naming rules apply
	// to the series name proper.
	base := name
	if i := strings.IndexByte(base, '{'); i >= 0 {
		base = base[:i]
	}
	rest, ok := strings.CutPrefix(base, "gdn_")
	if !ok {
		pass.Reportf(pos, "metric %q does not start with gdn_: series names are gdn_<layer>_<what>", name)
		return
	}
	layer, what, ok := strings.Cut(rest, "_")
	if !ok || what == "" {
		pass.Reportf(pos, "metric %q has no name after the layer segment: want gdn_<layer>_<what>", name)
		return
	}
	if !layerAllowed(layer, layers) {
		pass.Reportf(pos, "metric %q claims layer %q but is declared in package %s: want gdn_%s_*",
			name, layer, pass.Pkg.Name(), strings.Join(layers, "_* or gdn_"))
		return
	}
	switch kind {
	case "Counter":
		if !strings.HasSuffix(base, "_total") {
			pass.Reportf(pos, "counter %q must end in _total", name)
		}
	case "Gauge":
		for _, suffix := range []string{"_total", "_seconds", "_bytes"} {
			if strings.HasSuffix(base, suffix) {
				pass.Reportf(pos, "gauge %q must not end in %s: gauges are instantaneous values", name, suffix)
				return
			}
		}
	case "Histogram":
		want := histogramUnitSuffixes(pass, call)
		for _, suffix := range want {
			if strings.HasSuffix(base, suffix) {
				return
			}
		}
		pass.Reportf(pos, "histogram %q must end in %s to match its unit", name, strings.Join(want, " or "))
	}
}

func layerAllowed(layer string, layers []string) bool {
	for _, l := range layers {
		if layer == l {
			return true
		}
	}
	return false
}

// histogramUnitSuffixes returns the suffixes acceptable for the
// histogram's unit argument: obs.Seconds demands _seconds, obs.Bytes
// demands _bytes, anything non-constant accepts either.
func histogramUnitSuffixes(pass *Pass, call *ast.CallExpr) []string {
	both := []string{"_seconds", "_bytes"}
	if len(call.Args) < 3 {
		return both
	}
	sel, ok := ast.Unparen(call.Args[2]).(*ast.SelectorExpr)
	if !ok {
		return both
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Const)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "gdn/internal/obs" {
		return both
	}
	switch obj.Name() {
	case "Seconds":
		return []string{"_seconds"}
	case "Bytes":
		return []string{"_bytes"}
	}
	return both
}

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// suppressKey locates one suppression directive's reach: a diagnostic
// from the named analyzer on the named line (the directive's own line,
// and the line below a directive that stands alone).
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

type suppressSet map[suppressKey]bool

func (s suppressSet) covers(d Diagnostic) bool {
	return s[suppressKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]
}

const directive = "//gdnlint:ignore"

// suppressions scans the files for //gdnlint:ignore directives. A
// well-formed directive names one or more analyzers and a reason:
//
//	//gdnlint:ignore bufown ownership handed to C, released in callback
//
// and suppresses those analyzers on its own line and the next line
// (so it works both as a trailing comment and on the line above the
// flagged statement). A directive without a reason is returned as a
// diagnostic itself: an unexplained suppression is a finding.
func suppressions(fset *token.FileSet, files []*ast.File) (suppressSet, []Diagnostic) {
	set := suppressSet{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directive) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directive)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other //gdnlint:ignoreXxx token
				}
				names, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "gdnlint",
						Pos:      pos,
						Message:  "malformed directive: want //gdnlint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				for _, name := range strings.Split(names, ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set[suppressKey{pos.Filename, line, name}] = true
					}
				}
			}
		}
	}
	return set, bad
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufOwn enforces the zero-copy data plane's buffer-ownership
// contract (docs/ARCHITECTURE.md, "Buffer ownership"): a resource
// acquired from store.GetZC (release func), store.OpenChunk (file
// handle), transport.GetFrame or transport.Conn.Recv (pooled buffer)
// must have its release fire exactly once on every path.
// StreamWriter.SendOwned/SendFile transfer the obligation to the send
// path; after the handoff the caller must neither release nor touch
// the buffer again.
//
// The analysis is intra-procedural and precision-first: a resource
// that escapes (stored in a struct, passed to an unknown call,
// returned, captured by a closure) stops being tracked, and
// diagnostics fire only on definite violations — a path where the
// obligation provably cannot have been met. Error paths are exempt:
// when the acquisition's err result is known non-nil (or the release
// func is known nil), there is nothing to release.
var BufOwn = &Analyzer{
	Name: "bufown",
	Doc: "zero-copy buffers and file handles are released exactly once on every path " +
		"(store.GetZC/OpenChunk, transport.GetFrame/Recv, StreamWriter.SendOwned/SendFile)",
	Run: runBufOwn,
}

type resKind int

const (
	kindRelease resKind = iota // release func returned by store.GetZC
	kindFile                   // *os.File returned by store.OpenChunk
	kindBuf                    // pooled []byte from GetFrame / Conn.Recv
)

// ownStatus is one resource's state along one control-flow path.
type ownStatus int

const (
	ownLive        ownStatus = iota // obligation outstanding
	ownReleased                     // release fired
	ownTransferred                  // ownership handed to the send path
	ownEscaped                      // left local analysis; no further claims
	ownExempt                       // acquisition failed here; nothing to release
	ownMaybe                        // paths disagree; stay quiet
)

// resource is one tracked obligation: the handle variable that must
// be released, the data it covers, and the err result that exempts
// failure paths.
type resource struct {
	kind  resKind
	v     *types.Var // release func, file handle, or buffer
	data  *types.Var // kindRelease: the slice the release covers
	errv  *types.Var
	what  string
	birth token.Pos
}

func runBufOwn(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					newOwnWalker(pass).analyze(fn.Body)
				}
			case *ast.FuncLit:
				// Closure bodies are their own scopes: resources they
				// acquire are tracked locally, resources they capture
				// escaped in the enclosing walk.
				newOwnWalker(pass).analyze(fn.Body)
			}
			return true
		})
	}
	return nil
}

type ownState struct {
	m          map[*resource]ownStatus
	terminated bool
}

func (st *ownState) clone() *ownState {
	c := &ownState{m: make(map[*resource]ownStatus, len(st.m))}
	for k, v := range st.m {
		c.m[k] = v
	}
	return c
}

// loopFrame tracks one enclosing loop: which resources were already
// known at entry (everything born later is loop-local) and the states
// flowing to the statement after the loop via break.
type loopFrame struct {
	marker      int
	breakStates []*ownState
}

type ownWalker struct {
	pass      *Pass
	resources []*resource
	loops     []*loopFrame
	breakable []byte // 'L' for loops, 'S' for switch/select, innermost last
	reported  map[*resource]bool
}

func newOwnWalker(pass *Pass) *ownWalker {
	return &ownWalker{pass: pass, reported: map[*resource]bool{}}
}

func (w *ownWalker) analyze(body *ast.BlockStmt) {
	st := &ownState{m: map[*resource]ownStatus{}}
	w.walkStmts(body.List, st)
	if !st.terminated {
		w.leakCheck(st, body.Rbrace, 0, "function return")
	}
}

func (w *ownWalker) report(st *ownState, r *resource, pos token.Pos, format string, args ...any) {
	if w.reported[r] {
		return
	}
	w.reported[r] = true
	w.pass.Reportf(pos, format, args...)
	st.m[r] = ownEscaped // one report per resource; silence the cascade
}

// leakCheck reports every resource born at index >= since that is
// definitely live when the path ends at pos.
func (w *ownWalker) leakCheck(st *ownState, pos token.Pos, since int, where string) {
	for _, r := range w.resources[since:] {
		// A resource absent from the map was not acquired on this
		// path (born in a branch that terminated).
		if s, ok := st.m[r]; ok && s == ownLive {
			w.report(st, r, pos, "%s is not released on this path (missing release before %s)", r.what, where)
		}
	}
}

func (w *ownWalker) walkStmts(stmts []ast.Stmt, st *ownState) {
	for _, s := range stmts {
		if st.terminated {
			return
		}
		w.walkStmt(s, st)
	}
}

func (w *ownWalker) walkStmt(s ast.Stmt, st *ownState) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s, st)
	case *ast.ExprStmt:
		w.useExpr(s.X, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.useExpr(v, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.deferred(s, st)
	case *ast.GoStmt:
		w.useExpr(s.Call, st)
	case *ast.SendStmt:
		w.useExpr(s.Chan, st)
		w.useExpr(s.Value, st)
	case *ast.IncDecStmt:
		w.useExpr(s.X, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.useExpr(r, st)
		}
		w.leakCheck(st, s.Pos(), 0, "this return")
		st.terminated = true
	case *ast.BranchStmt:
		w.branch(s, st)
	case *ast.BlockStmt:
		w.walkStmts(s.List, st)
	case *ast.IfStmt:
		w.ifStmt(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.useExpr(s.Cond, st)
		}
		w.loop(s.Body, s.Post, st)
	case *ast.RangeStmt:
		w.useExpr(s.X, st)
		w.loop(s.Body, nil, st)
	case *ast.SwitchStmt:
		w.switchStmt(s, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.caseBodies(s.Body, nil, st, true)
	case *ast.SelectStmt:
		w.selectStmt(s, st)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st)
	case *ast.EmptyStmt:
	}
}

// assign handles acquisitions, reassignment of tracked handles, and
// generic RHS usage.
func (w *ownWalker) assign(s *ast.AssignStmt, st *ownState) {
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if w.acquire(s, call, st) {
				return
			}
		}
	}
	for _, r := range s.Rhs {
		w.useExpr(r, st)
	}
	// Overwriting a live handle loses it; stop tracking rather than
	// guessing.
	for _, l := range s.Lhs {
		if v := w.lhsVar(l); v != nil {
			for _, r := range w.resources {
				if r.v == v && st.m[r] == ownLive {
					st.m[r] = ownEscaped
				}
			}
		} else {
			w.useExpr(l, st) // x.field = ..., m[k] = ...: indexes may use tracked vars
		}
	}
}

// lhsVar resolves an assignment target to its variable (definition or
// prior declaration), nil for anything but a plain identifier.
func (w *ownWalker) lhsVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := w.pass.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := w.pass.Info.Uses[id].(*types.Var)
	return v
}

// acquire recognizes the tracked sources and registers their
// obligations. Reports a discarded release immediately: blanking the
// handle can never satisfy exactly-once.
func (w *ownWalker) acquire(s *ast.AssignStmt, call *ast.CallExpr, st *ownState) bool {
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil {
		return false
	}
	for _, a := range call.Args {
		w.useExpr(a, st)
	}
	reg := func(handleIdx, dataIdx, errIdx int, kind resKind, what string) {
		var errv *types.Var
		if errIdx >= 0 && errIdx < len(s.Lhs) {
			errv = w.lhsVar(s.Lhs[errIdx])
		}
		var datav *types.Var
		if dataIdx >= 0 && dataIdx < len(s.Lhs) {
			datav = w.lhsVar(s.Lhs[dataIdx])
		}
		if handleIdx >= len(s.Lhs) {
			return
		}
		handle := ast.Unparen(s.Lhs[handleIdx])
		if id, ok := handle.(*ast.Ident); ok && id.Name == "_" {
			w.pass.Reportf(id.Pos(), "%s is discarded: it must be released exactly once on every path", what)
			return
		}
		v := w.lhsVar(s.Lhs[handleIdx])
		if v == nil {
			return // stored straight into a field: escapes at birth
		}
		r := &resource{kind: kind, v: v, data: datav, errv: errv, what: what, birth: s.Pos()}
		w.resources = append(w.resources, r)
		st.m[r] = ownLive
	}
	switch {
	case methodIs(fn, "gdn/internal/store", "Store", "GetZC"):
		reg(1, 0, 2, kindRelease, "store.GetZC buffer")
	case methodIs(fn, "gdn/internal/store", "Store", "OpenChunk"):
		reg(0, -1, 2, kindFile, "store.OpenChunk handle")
	case funcIs(fn, "gdn/internal/transport", "GetFrame"):
		reg(0, -1, -1, kindBuf, "transport.GetFrame buffer")
	case methodIs(fn, "gdn/internal/transport", "Conn", "Recv"):
		reg(0, -1, 2, kindBuf, "received frame")
	default:
		return false
	}
	return true
}

// deferred handles defer statements: a deferred release covers every
// path from here on.
func (w *ownWalker) deferred(s *ast.DeferStmt, st *ownState) {
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		// defer func() { ...; release(); ... }(): apply the release
		// transitions found in the closure body, silently.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				w.releaseTransition(call, st, true)
			}
			return true
		})
		return
	}
	if w.releaseTransition(s.Call, st, false) {
		return
	}
	w.useExpr(s.Call, st)
}

// branch handles break/continue: paths leaving a loop must have
// released everything born inside it (the handle goes out of scope).
func (w *ownWalker) branch(s *ast.BranchStmt, st *ownState) {
	switch s.Tok {
	case token.BREAK:
		if s.Label == nil && len(w.breakable) > 0 && w.breakable[len(w.breakable)-1] == 'S' {
			// break out of a switch/select: execution continues right
			// where the case merge resumes; not a path end.
			return
		}
		if lf := w.innerLoop(); lf != nil {
			w.leakCheck(st, s.Pos(), lf.marker, "leaving the loop")
			lf.breakStates = append(lf.breakStates, st.clone())
		}
		st.terminated = true
	case token.CONTINUE:
		if lf := w.innerLoop(); lf != nil {
			w.leakCheck(st, s.Pos(), lf.marker, "the next iteration")
		}
		st.terminated = true
	case token.GOTO:
		st.terminated = true
	case token.FALLTHROUGH:
		// Approximation: the next case body is analyzed from the
		// switch-entry state.
	}
}

func (w *ownWalker) innerLoop() *loopFrame {
	if len(w.loops) == 0 {
		return nil
	}
	return w.loops[len(w.loops)-1]
}

func (w *ownWalker) loop(body *ast.BlockStmt, post ast.Stmt, st *ownState) {
	lf := &loopFrame{marker: len(w.resources)}
	w.loops = append(w.loops, lf)
	w.breakable = append(w.breakable, 'L')
	bodySt := st.clone()
	w.walkStmts(body.List, bodySt)
	if !bodySt.terminated {
		if post != nil {
			w.walkStmt(post, bodySt)
		}
		// End of an iteration: anything born this iteration is about
		// to go out of scope.
		w.leakCheck(bodySt, body.Rbrace, lf.marker, "the next iteration")
	}
	w.breakable = w.breakable[:len(w.breakable)-1]
	w.loops = w.loops[:len(w.loops)-1]

	// The state after the loop merges: never entered (pre-state), fell
	// out of the body, and every break.
	exits := []*ownState{st}
	if !bodySt.terminated {
		exits = append(exits, bodySt)
	}
	exits = append(exits, lf.breakStates...)
	merged := mergeStates(exits)
	// Loop-local resources are out of scope (and already checked).
	for _, r := range w.resources[lf.marker:] {
		delete(merged.m, r)
	}
	*st = *merged
}

func (w *ownWalker) ifStmt(s *ast.IfStmt, st *ownState) {
	if s.Init != nil {
		w.walkStmt(s.Init, st)
	}
	w.useCond(s.Cond, st)
	thenSt := st.clone()
	w.refine(s.Cond, thenSt, true)
	elseSt := st.clone()
	w.refine(s.Cond, elseSt, false)
	w.walkStmts(s.Body.List, thenSt)
	if s.Else != nil {
		w.walkStmt(s.Else, elseSt)
	}
	switch {
	case thenSt.terminated && elseSt.terminated:
		st.terminated = true
	case thenSt.terminated:
		*st = *elseSt
	case elseSt.terminated:
		*st = *thenSt
	default:
		*st = *mergeStates([]*ownState{thenSt, elseSt})
	}
}

func (w *ownWalker) switchStmt(s *ast.SwitchStmt, st *ownState) {
	if s.Init != nil {
		w.walkStmt(s.Init, st)
	}
	if s.Tag != nil {
		w.useExpr(s.Tag, st)
	}
	w.caseBodies(s.Body, s, st, false)
}

// caseBodies analyzes each case clause as a branch from the entry
// state and merges the exits. An expressionless switch refines err/nil
// conditions exactly like a chain of ifs.
func (w *ownWalker) caseBodies(body *ast.BlockStmt, sw *ast.SwitchStmt, st *ownState, typeSwitch bool) {
	w.breakable = append(w.breakable, 'S')
	var exits []*ownState
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		caseSt := st.clone()
		for _, e := range cc.List {
			if !typeSwitch {
				w.useCond(e, caseSt)
			}
			if sw != nil && sw.Tag == nil {
				w.refine(e, caseSt, true)
			}
		}
		w.walkStmts(cc.Body, caseSt)
		if !caseSt.terminated {
			exits = append(exits, caseSt)
		}
	}
	w.breakable = w.breakable[:len(w.breakable)-1]
	if !hasDefault {
		exits = append(exits, st)
	}
	if len(exits) == 0 {
		st.terminated = true
		return
	}
	*st = *mergeStates(exits)
}

func (w *ownWalker) selectStmt(s *ast.SelectStmt, st *ownState) {
	w.breakable = append(w.breakable, 'S')
	var exits []*ownState
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		caseSt := st.clone()
		if cc.Comm != nil {
			w.walkStmt(cc.Comm, caseSt)
		}
		w.walkStmts(cc.Body, caseSt)
		if !caseSt.terminated {
			exits = append(exits, caseSt)
		}
	}
	w.breakable = w.breakable[:len(w.breakable)-1]
	if len(exits) == 0 {
		st.terminated = true
		return
	}
	*st = *mergeStates(exits)
}

// refine applies nil-comparison facts to a branch: inside an error
// branch (err != nil taken, or err == nil not taken) the acquisition
// failed and the obligation is void; a handle known nil likewise has
// nothing to release.
func (w *ownWalker) refine(cond ast.Expr, st *ownState, taken bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	var other ast.Expr
	if w.isNil(x) {
		other = y
	} else if w.isNil(y) {
		other = x
	} else {
		return
	}
	v := usedVar(w.pass.Info, other)
	if v == nil {
		return
	}
	// knownNil: on this branch the compared variable is nil.
	knownNil := (be.Op == token.EQL) == taken
	for _, r := range w.resources {
		if st.m[r] != ownLive {
			continue
		}
		if r.errv != nil && v == r.errv && !knownNil {
			st.m[r] = ownExempt // error path: nothing was acquired
		}
		if v == r.v && knownNil {
			st.m[r] = ownExempt // nil handle: nothing to release
		}
	}
}

func (w *ownWalker) isNil(e ast.Expr) bool {
	if tv, ok := w.pass.Info.Types[e]; ok {
		return tv.IsNil()
	}
	return false
}

// useCond walks a condition: nil comparisons and len/cap observations
// are not uses, anything else follows the generic rules.
func (w *ownWalker) useCond(cond ast.Expr, st *ownState) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LAND || e.Op == token.LOR {
			w.useCond(e.X, st)
			w.useCond(e.Y, st)
			return
		}
		if w.isNil(ast.Unparen(e.X)) || w.isNil(ast.Unparen(e.Y)) {
			return // x == nil / x != nil: an observation, not a use
		}
		w.useExpr(e.X, st)
		w.useExpr(e.Y, st)
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			w.useCond(e.X, st)
			return
		}
		w.useExpr(e, st)
	default:
		w.useExpr(cond, st)
	}
}

// useExpr applies the generic usage rules to an expression tree:
// special release/handoff calls transition their resources; any other
// appearance of a tracked handle makes it escape; touching the data a
// fired release covered is a use-after-release.
func (w *ownWalker) useExpr(e ast.Expr, st *ownState) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		w.useCall(e, st)
	case *ast.FuncLit:
		// Captured handles escape into the closure.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := w.pass.Info.Uses[id].(*types.Var); ok {
					for _, r := range w.resources {
						if (r.v == v || r.data == v) && st.m[r] == ownLive {
							st.m[r] = ownEscaped
						}
					}
				}
			}
			return true
		})
	case *ast.Ident:
		w.useIdent(e, st)
	case *ast.SelectorExpr:
		w.useExpr(e.X, st)
	case *ast.IndexExpr:
		w.useExpr(e.X, st)
		w.useExpr(e.Index, st)
	case *ast.SliceExpr:
		w.useExpr(e.X, st)
		w.useExpr(e.Low, st)
		w.useExpr(e.High, st)
		w.useExpr(e.Max, st)
	case *ast.StarExpr:
		w.useExpr(e.X, st)
	case *ast.UnaryExpr:
		w.useExpr(e.X, st)
	case *ast.BinaryExpr:
		w.useExpr(e.X, st)
		w.useExpr(e.Y, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.useExpr(kv.Value, st)
			} else {
				w.useExpr(el, st)
			}
		}
	case *ast.KeyValueExpr:
		w.useExpr(e.Value, st)
	case *ast.TypeAssertExpr:
		w.useExpr(e.X, st)
	}
}

// useIdent marks a directly-used handle escaped and reports uses of
// released data.
func (w *ownWalker) useIdent(id *ast.Ident, st *ownState) {
	v, ok := w.pass.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	for _, r := range w.resources {
		switch {
		case r.v == v || r.data == v:
			switch st.m[r] {
			case ownReleased:
				w.report(st, r, id.Pos(), "use of %s after its release has fired", r.what)
			case ownTransferred:
				w.report(st, r, id.Pos(), "use of %s after its ownership was handed to the send path", r.what)
			case ownLive:
				if r.v == v {
					st.m[r] = ownEscaped
				}
				// Reading the data of a live resource is fine.
			}
		}
	}
}

// useCall dispatches a call expression: known releases and handoffs
// transition their resources, len/cap/copy observe without consuming,
// conversions and unknown calls make their tracked arguments escape.
func (w *ownWalker) useCall(call *ast.CallExpr, st *ownState) {
	if w.releaseTransition(call, st, false) {
		return
	}
	// Builtins that observe a buffer without taking it.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap", "copy", "delete", "print", "println":
				return
			}
		}
	}
	// Type conversion: the result aliases the operand; treat as a
	// generic use of the arguments.
	w.useExpr(call.Fun, st)
	for _, a := range call.Args {
		w.useExpr(a, st)
	}
}

// releaseTransition recognizes the calls that discharge (or hand off)
// an obligation and applies the transition, reporting definite
// double-releases and releases after handoff. Returns false when call
// is none of them.
func (w *ownWalker) releaseTransition(call *ast.CallExpr, st *ownState, silent bool) bool {
	info := w.pass.Info

	// rel() — calling a tracked release func.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) == 0 {
		if v, ok := info.Uses[id].(*types.Var); ok {
			for _, r := range w.resources {
				if r.kind == kindRelease && r.v == v {
					w.fire(st, r, call.Pos(), silent)
					return true
				}
			}
		}
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	switch {
	case funcIs(fn, "gdn/internal/transport", "PutFrame") && len(call.Args) == 1:
		if r := w.resourceOf(call.Args[0], kindBuf, st); r != nil {
			w.fire(st, r, call.Pos(), silent)
			return true
		}
	case methodIs(fn, "os", "File", "Close"):
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if r := w.resourceOf(sel.X, kindFile, st); r != nil {
				w.fire(st, r, call.Pos(), silent)
				return true
			}
		}
	case methodIs(fn, "gdn/internal/rpc", "StreamWriter", "SendOwned") && len(call.Args) == 2:
		w.handoff(st, call, call.Args[0], call.Args[1], silent)
		return true
	case methodIs(fn, "gdn/internal/rpc", "StreamWriter", "SendFile") && len(call.Args) == 3:
		w.useExpr(call.Args[1], st)
		w.handoff(st, call, call.Args[0], call.Args[2], silent)
		return true
	}
	return false
}

// resourceOf finds the tracked resource of the wanted kind whose
// handle the expression denotes (possibly sliced), or nil.
func (w *ownWalker) resourceOf(e ast.Expr, kind resKind, st *ownState) *resource {
	e = ast.Unparen(e)
	if se, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(se.X)
	}
	v := usedVar(w.pass.Info, e)
	if v == nil {
		return nil
	}
	for _, r := range w.resources {
		if r.kind == kind && r.v == v {
			return r
		}
	}
	return nil
}

// fire transitions a resource to released, reporting a definite
// second release.
func (w *ownWalker) fire(st *ownState, r *resource, pos token.Pos, silent bool) {
	switch st.m[r] {
	case ownReleased:
		if !silent {
			w.report(st, r, pos, "%s is released twice on this path", r.what)
			return
		}
	case ownTransferred:
		if !silent {
			w.report(st, r, pos, "%s is released after its ownership was handed to the send path (the sender releases it)", r.what)
			return
		}
	}
	st.m[r] = ownReleased
}

// handoff transfers ownership of the payload (and its release) to the
// send path: SendOwned(data, release) / SendFile(f, n, release).
func (w *ownWalker) handoff(st *ownState, call *ast.CallExpr, payload, release ast.Expr, silent bool) {
	transfer := func(r *resource) {
		if r == nil {
			return
		}
		switch st.m[r] {
		case ownTransferred:
			if !silent {
				w.report(st, r, call.Pos(), "ownership of %s is handed to the send path twice", r.what)
				return
			}
		case ownReleased:
			if !silent {
				w.report(st, r, call.Pos(), "%s is handed to the send path after its release already fired", r.what)
				return
			}
		}
		st.m[r] = ownTransferred
	}
	switch w.payloadKind(payload) {
	case kindBuf:
		transfer(w.resourceOf(payload, kindBuf, st))
	case kindFile:
		transfer(w.resourceOf(payload, kindFile, st))
	}
	// The release argument identifies a GetZC resource even when the
	// payload expression is a slice of the data or a fresh buffer.
	if v := usedVar(w.pass.Info, release); v != nil {
		for _, r := range w.resources {
			if r.kind == kindRelease && r.v == v {
				transfer(r)
			}
		}
	}
}

// payloadKind guesses which handle kind a payload expression denotes.
func (w *ownWalker) payloadKind(e ast.Expr) resKind {
	e = ast.Unparen(e)
	if se, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(se.X)
	}
	if v := usedVar(w.pass.Info, e); v != nil {
		for _, r := range w.resources {
			if r.v == v {
				return r.kind
			}
		}
	}
	return kindRelease // matched (if at all) through the release arg
}

// mergeStates folds path states: agreement survives, a released
// obligation absorbs an exempt one (the release fired wherever there
// was something to release), and any other disagreement goes quiet.
// A resource absent from one input was never acquired on that path,
// which is the exempt case.
func mergeStates(states []*ownState) *ownState {
	out := states[0].clone()
	for _, st := range states[1:] {
		for r, b := range st.m {
			a, ok := out.m[r]
			if !ok {
				a = ownExempt
			}
			out.m[r] = mergeStatus(a, b)
		}
		for r, a := range out.m {
			if _, ok := st.m[r]; !ok {
				out.m[r] = mergeStatus(a, ownExempt)
			}
		}
	}
	return out
}

func mergeStatus(a, b ownStatus) ownStatus {
	if a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	switch {
	case a == ownReleased && b == ownExempt:
		return ownReleased
	case a == ownTransferred && b == ownExempt:
		return ownTransferred
	default:
		return ownMaybe
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer checks one project invariant over one type-checked
// package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -run flags and
	// suppression directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description shown by gdn-lint -list.
	Doc string
	// Run reports every violation in the pass's package.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one package: the syntax, the type
// information, and a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation, positioned in the source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (gdn/%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{BufOwn, LockRPC, MetricName, TraceCtx}
}

// Run applies analyzers to pkgs, filters suppressed diagnostics, and
// returns the remainder sorted by position. Malformed or reasonless
// suppression directives are reported as diagnostics of the pseudo
// analyzer "gdnlint".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup, bad := suppressions(pkg.Fset, pkg.Files)
		out = append(out, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return out, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !sup.covers(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// --- shared type-query helpers used by the analyzers ---

// calleeFunc resolves a call expression to the *types.Func it
// statically invokes (package function, method, or interface method),
// or nil for calls through function values, type conversions and
// builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified identifier: pkg.Func.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcIs reports whether fn is the named package-level function.
func funcIs(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil
}

// methodIs reports whether fn is the named method on the named type
// (pointer or value receiver, concrete or interface).
func methodIs(fn *types.Func, pkgPath, typeName, method string) bool {
	if fn == nil || fn.Name() != method || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	recvPkg, recvType, ok := recvTypeName(fn)
	return ok && recvPkg == pkgPath && recvType == typeName
}

// recvTypeName returns the package path and type name of fn's
// receiver's named type, dereferencing a pointer receiver.
func recvTypeName(fn *types.Func) (pkgPath, name string, ok bool) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// namedOf unwraps pointers and aliases down to the *types.Named
// beneath t, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeIs reports whether t (possibly behind pointers) is the named
// type pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// usedVar resolves an expression to the *types.Var it denotes, seeing
// through parens. Returns nil for anything but a plain identifier.
func usedVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

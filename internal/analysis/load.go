package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// A Package is one type-checked target: syntax plus type info, ready
// for the analyzers.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the slice of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Match      []string
	Standard   bool
}

// goList runs `go list -export -deps` in dir over patterns and
// decodes the JSON stream. -export compiles anything stale, so every
// dependency (standard library included) comes back with an export
// data file the type-checker can import — no module downloads, no
// re-type-checking the world from source.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Match,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` reported, keyed by import path as it appears both in
// source files and inside other packages' export data (vendored
// standard-library paths included, since -deps lists them under their
// resolved names).
type exportImporter struct {
	exports map[string]string
	gc      types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	imp := &exportImporter{exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := imp.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return imp
}

func (imp *exportImporter) Import(path string) (*types.Package, error) {
	return imp.ImportFrom(path, "", 0)
}

func (imp *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return imp.gc.ImportFrom(path, dir, mode)
}

// Load expands patterns (e.g. "./...") relative to dir, and parses
// and type-checks every matched package from source. Test files are
// not part of the compilation units go list reports, so they are not
// analyzed — the invariants guard production paths.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if len(p.Match) == 0 || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		var paths []string
		for _, f := range p.GoFiles {
			paths = append(paths, filepath.Join(p.Dir, f))
		}
		pkg, err := check(fset, imp, p.ImportPath, paths)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the .go files of one directory as a
// single package. go list never sees directories under testdata/, so
// this is how the analysistest harness loads its golden packages;
// their imports still resolve through the enclosing module (modRoot),
// letting testdata exercise the analyzers against the real
// gdn/internal/... APIs.
func LoadDir(modRoot, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}

	// Pre-parse just to learn the import set, then let go list build
	// the export data for exactly those packages and their deps.
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err == nil && p != "unsafe" && p != "C" {
				importSet[p] = true
			}
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		var patterns []string
		for p := range importSet {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(modRoot, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := newExportImporter(fset, exports)
	return checkParsed(fset, imp, "testdata/"+files[0].Name.Name, files)
}

// check parses paths and type-checks them as one package.
func check(fset *token.FileSet, imp types.Importer, importPath string, paths []string) (*Package, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return checkParsed(fset, imp, importPath, files)
}

func checkParsed(fset *token.FileSet, imp types.Importer, importPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

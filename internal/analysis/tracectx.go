package analysis

import (
	"go/ast"
	"go/types"
)

// TraceCtx enforces the trace-propagation contract from
// internal/obs/doc.go: once a request carries a span context, every
// hop forwards it. Concretely, inside a traced function — one that
// takes an obs.SpanContext parameter —
//
//   - calling a function or method that has a T-variant sibling
//     (same name + "T", taking an obs.SpanContext) drops the trace:
//     the T-variant must be called instead, and
//   - passing a zero obs.SpanContext{} literal re-roots the trace
//     while a real context is in scope.
//
// Untraced convenience wrappers (Call delegating to CallT with a zero
// context) are the sanctioned entry points and are not flagged: they
// have no SpanContext parameter to propagate.
var TraceCtx = &Analyzer{
	Name: "tracectx",
	Doc: "traced code paths (functions taking obs.SpanContext) must call T-variants " +
		"and must not re-root the trace with a zero obs.SpanContext{}",
	Run: runTraceCtx,
}

func runTraceCtx(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || !hasSpanCtxParam(sig) {
				continue
			}
			checkTracedBody(pass, fd)
		}
	}
	return nil
}

// hasSpanCtxParam reports whether any parameter is an obs.SpanContext
// (by value or pointer).
func hasSpanCtxParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if typeIs(sig.Params().At(i).Type(), "gdn/internal/obs", "SpanContext") {
			return true
		}
	}
	return false
}

// checkTracedBody walks one traced function body. Nested function
// literals are part of the traced path: a closure spawned by a traced
// handler still has the span context in scope.
func checkTracedBody(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if isZeroSpanCtx(pass.Info, arg) {
				pass.Reportf(arg.Pos(),
					"zero obs.SpanContext{} re-roots the trace inside traced function %s: pass the in-scope span context",
					fd.Name.Name)
			}
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		if sig, _ := fn.Type().(*types.Signature); sig != nil && hasSpanCtxParam(sig) {
			return true // already the traced form
		}
		if tv := tVariantOf(fn); tv != nil {
			pass.Reportf(call.Pos(),
				"call to %s drops the trace inside traced function %s: call %s and forward the span context",
				fn.Name(), fd.Name.Name, tv.Name())
		}
		return true
	})
}

// isZeroSpanCtx matches an empty obs.SpanContext{} composite literal.
func isZeroSpanCtx(info *types.Info, e ast.Expr) bool {
	cl, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok || len(cl.Elts) != 0 {
		return false
	}
	tv, ok := info.Types[cl]
	return ok && typeIs(tv.Type, "gdn/internal/obs", "SpanContext")
}

// tVariantOf finds fn's traced sibling: a function or method named
// fn.Name()+"T" in the same scope (package scope for functions, the
// receiver's explicit method set for methods) that takes an
// obs.SpanContext. Returns nil when fn has no such sibling.
func tVariantOf(fn *types.Func) *types.Func {
	want := fn.Name() + "T"
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	if sig.Recv() == nil {
		if fn.Pkg() == nil {
			return nil
		}
		sib, _ := fn.Pkg().Scope().Lookup(want).(*types.Func)
		if sib != nil {
			if ssig, _ := sib.Type().(*types.Signature); ssig != nil && hasSpanCtxParam(ssig) {
				return sib
			}
		}
		return nil
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != want {
			continue
		}
		if msig, _ := m.Type().(*types.Signature); msig != nil && hasSpanCtxParam(msig) {
			return m
		}
	}
	return nil
}

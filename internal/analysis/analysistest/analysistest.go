// Package analysistest runs one gdn analyzer over a golden package
// under testdata and checks its diagnostics against expectations
// embedded in the source: a comment of the form
//
//	// want `regexp` `regexp`
//
// on a line means the analyzer must report on that line, with messages
// matched (in any order) by the given regular expressions. Every
// diagnostic must be wanted and every want must be matched; both
// directions failing keeps the golden packages honest as the analyzers
// evolve. Golden packages import the real gdn/internal/... APIs, so
// the analyzers are exercised against the exact types they police.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gdn/internal/analysis"
)

var (
	wantRe = regexp.MustCompile(`//\s*want\s+(.+)$`)
	argRe  = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

type lineKey struct {
	file string // base name
	line int
}

// Run loads dir (relative to the test's working directory) as one
// package through the same loader gdn-lint uses and applies a to it.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	modRoot, err := findModRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadDir(modRoot, dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	wants, err := parseWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		key := lineKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no %s diagnostic matching %q", key.file, key.line, a.Name, w.raw)
			}
		}
	}
}

// findModRoot walks up from the working directory to the enclosing
// go.mod.
func findModRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// parseWants collects the want expectations of every .go file in dir.
func parseWants(dir string) (map[lineKey][]*want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	wants := map[lineKey][]*want{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := lineKey{e.Name(), i + 1}
			for _, arg := range argRe.FindAllStringSubmatch(m[1], -1) {
				raw := arg[1]
				if raw == "" && arg[2] != "" {
					// Double-quoted form: unquote escapes first.
					var err error
					raw, err = strconv.Unquote(`"` + arg[2] + `"`)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want string %q: %v", e.Name(), i+1, arg[2], err)
					}
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, raw, err)
				}
				wants[key] = append(wants[key], &want{re: re, raw: raw})
			}
		}
	}
	return wants, nil
}

package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"gdn/internal/analysis"
)

// TestSuppression pins the directive semantics end to end: a reasoned
// //gdnlint:ignore silences the named analyzer, a reasonless one is
// itself reported and silences nothing.
func TestSuppression(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadDir(root, "testdata/suppress")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.LockRPC})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%v", len(diags), diags)
	}
	if diags[0].Analyzer != "gdnlint" || !strings.Contains(diags[0].Message, "malformed directive") {
		t.Errorf("first diagnostic should flag the reasonless directive, got %v", diags[0])
	}
	if diags[1].Analyzer != "lockrpc" {
		t.Errorf("the unsuppressed finding should survive, got %v", diags[1])
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "recording stub") {
			t.Errorf("reasoned suppression did not suppress: %v", d)
		}
	}
}

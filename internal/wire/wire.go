// Package wire implements the binary encoding used by all Globe protocol
// messages: invocation messages exchanged between local representatives,
// location-service requests, object-server commands and marshalled
// semantics state.
//
// The paper's replication and communication subobjects operate only on
// opaque messages "in which method identifiers and parameters have been
// encoded" (§3.3); this package is that encoding. It is deliberately
// simple — length-prefixed fields, big-endian fixed-width integers — so
// messages are deterministic, self-delimiting and cheap to parse.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"gdn/internal/ids"
)

// Encoding limits. Oversized fields are rejected during decode so a
// malformed or hostile message cannot make a server allocate unbounded
// memory (paper §6.1: servers must survive bogus protocol messages).
const (
	// MaxBytes is the largest single byte-string field. It bounds one
	// file chunk plus headroom for framing.
	MaxBytes = 16 << 20
	// MaxString is the largest string field (names, paths, addresses).
	MaxString = 64 << 10
	// MaxCount is the largest element count for encoded lists.
	MaxCount = 1 << 20
)

// ErrTruncated is returned when a message ends before a field completes.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLarge is returned when a length prefix exceeds the field limit.
var ErrTooLarge = errors.New("wire: field exceeds size limit")

// Writer builds a message by appending fields. The zero value is ready
// to use. Writers are not safe for concurrent use.
//
// Fields that would not survive the round trip — a string longer than
// MaxString whose 16-bit length prefix would wrap, a byte string over
// MaxBytes, a count over MaxCount — record an error instead of encoding
// corrupt data. Like Reader, the writer goes inert after the first
// error: subsequent appends are no-ops, Err returns the error, and
// Bytes returns nil so a failed encode cannot be sent by accident.
type Writer struct {
	buf []byte
	err error
}

// NewWriter returns a writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// writerPool recycles encode buffers across messages. The RPC layer
// encodes every request and response through it, so steady-state
// traffic allocates no per-message buffers.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// maxPooledWriter bounds the buffer capacity a pooled writer retains.
// It is sized to keep one canonical 256 KiB content chunk plus framing
// recyclable — upload frames and chunk-batch requests are steady-state
// traffic on the bulk path — while occasional giant messages
// (multi-megabyte chunk-batch responses) still drop their buffers
// rather than pin them in the pool forever.
const maxPooledWriter = 288 << 10

// GetWriter returns a pooled writer with capacity preallocated for at
// least n bytes. Call Free when the encoded bytes have been fully
// consumed (sent or copied); the returned slice from Bytes must not be
// retained past Free.
func GetWriter(n int) *Writer {
	w := writerPool.Get().(*Writer)
	if cap(w.buf) < n {
		w.buf = make([]byte, 0, n)
	}
	return w
}

// Free resets the writer and returns it to the package pool. The caller
// must not use the writer, or any slice obtained from Bytes, afterwards.
func (w *Writer) Free() {
	if cap(w.buf) > maxPooledWriter {
		w.buf = nil
	}
	w.Reset()
	writerPool.Put(w)
}

// Bytes returns the encoded message, or nil if an append failed. The
// slice aliases the writer's buffer; the caller must not keep writing
// afterwards.
func (w *Writer) Bytes() []byte {
	if w.err != nil {
		return nil
	}
	return w.buf
}

// Err returns the first encoding error, or nil.
func (w *Writer) Err() error { return w.err }

// Len returns the number of bytes encoded so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset discards the contents and any recorded error, retaining the
// buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.err = nil
}

func (w *Writer) wfail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Uint8 appends a single byte.
func (w *Writer) Uint8(v uint8) {
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, v)
}

// Uint16 appends a big-endian 16-bit integer.
func (w *Writer) Uint16(v uint16) {
	if w.err != nil {
		return
	}
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

// Uint32 appends a big-endian 32-bit integer.
func (w *Writer) Uint32(v uint32) {
	if w.err != nil {
		return
	}
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// Uint64 appends a big-endian 64-bit integer.
func (w *Writer) Uint64(v uint64) {
	if w.err != nil {
		return
	}
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Int64 appends a 64-bit integer in two's complement.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Float64 appends an IEEE-754 double.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

// Bytes32 appends a byte string with a 32-bit length prefix. Slices
// over MaxBytes record ErrTooLarge — the peer's Reader would refuse
// them anyway.
func (w *Writer) Bytes32(b []byte) {
	if w.err != nil {
		return
	}
	if len(b) > MaxBytes {
		w.wfail(fmt.Errorf("%w: %d-byte field", ErrTooLarge, len(b)))
		return
	}
	w.Uint32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Bytes32Prefix appends only the 32-bit length prefix of an n-byte
// string whose bytes will travel out of band. The zero-copy send path
// uses it: a frame header ends with the prefix, and the transport
// concatenates the chunk body after it without the body ever being
// appended to (copied into) the writer. The result decodes exactly as
// if Bytes32 had been called on the body.
func (w *Writer) Bytes32Prefix(n int) {
	if w.err != nil {
		return
	}
	if n < 0 || n > MaxBytes {
		w.wfail(fmt.Errorf("%w: %d-byte field", ErrTooLarge, n))
		return
	}
	w.Uint32(uint32(n))
}

// Str appends a string with a 16-bit length prefix. Strings over
// MaxString record ErrTooLarge: encoding one would silently wrap the
// length prefix and corrupt every field after it.
func (w *Writer) Str(s string) {
	if w.err != nil {
		return
	}
	if len(s) > MaxString || len(s) > math.MaxUint16 {
		w.wfail(fmt.Errorf("%w: %d-byte string", ErrTooLarge, len(s)))
		return
	}
	w.Uint16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

// Hash appends a fixed 32-byte digest (a chunk ref or SHA-256) with
// no length prefix.
func (w *Writer) Hash(h [32]byte) {
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, h[:]...)
}

// OID appends an object identifier.
func (w *Writer) OID(o ids.OID) {
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, o[:]...)
}

// Count appends a list length prefix, bounded by MaxCount to mirror the
// Reader.
func (w *Writer) Count(n int) {
	if w.err != nil {
		return
	}
	if n < 0 || n > MaxCount {
		w.wfail(fmt.Errorf("%w: count %d", ErrTooLarge, n))
		return
	}
	w.Uint32(uint32(n))
}

// Reader decodes a message built by Writer. Decoding methods record the
// first error and return zero values afterwards, so call sequences can
// run unconditionally and check Err once at the end — the idiomatic
// pattern for parsing untrusted protocol input without panics.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over the encoded message b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns nil if the message decoded cleanly and completely, and an
// error if decoding failed or trailing bytes remain.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint8 decodes a single byte.
func (r *Reader) Uint8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Uint16 decodes a big-endian 16-bit integer.
func (r *Reader) Uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// Uint32 decodes a big-endian 32-bit integer.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 decodes a big-endian 64-bit integer.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 decodes a 64-bit two's complement integer.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Float64 decodes an IEEE-754 double.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Bool decodes a boolean byte; any nonzero value is true.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Bytes32 decodes a 32-bit length-prefixed byte string. The returned
// slice aliases the message buffer.
func (r *Reader) Bytes32() []byte {
	n := r.Uint32()
	if r.err != nil {
		return nil
	}
	if n > MaxBytes {
		r.fail(ErrTooLarge)
		return nil
	}
	return r.take(int(n))
}

// Str decodes a 16-bit length-prefixed string.
func (r *Reader) Str() string {
	n := r.Uint16()
	if r.err != nil {
		return ""
	}
	if int(n) > MaxString {
		r.fail(ErrTooLarge)
		return ""
	}
	return string(r.take(int(n)))
}

// Hash decodes a fixed 32-byte digest.
func (r *Reader) Hash() [32]byte {
	var h [32]byte
	copy(h[:], r.take(len(h)))
	return h
}

// OID decodes an object identifier.
func (r *Reader) OID() ids.OID {
	b := r.take(ids.Size)
	if b == nil {
		return ids.Nil
	}
	var o ids.OID
	copy(o[:], b)
	return o
}

// Count decodes a list length prefix, bounded by MaxCount.
func (r *Reader) Count() int {
	n := r.Uint32()
	if r.err != nil {
		return 0
	}
	if n > MaxCount {
		r.fail(ErrTooLarge)
		return 0
	}
	return int(n)
}

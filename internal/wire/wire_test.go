package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gdn/internal/ids"
)

func TestRoundTripAllTypes(t *testing.T) {
	o := ids.Derive("wire-test")
	w := NewWriter(0)
	w.Uint8(0xab)
	w.Uint16(0xbeef)
	w.Uint32(0xdeadbeef)
	w.Uint64(0x0123456789abcdef)
	w.Int64(-42)
	w.Float64(math.Pi)
	w.Bool(true)
	w.Bool(false)
	w.Bytes32([]byte("hello world"))
	w.Str("gdn")
	w.OID(o)
	w.Count(7)

	r := NewReader(w.Bytes())
	if got := r.Uint8(); got != 0xab {
		t.Errorf("Uint8 = %#x", got)
	}
	if got := r.Uint16(); got != 0xbeef {
		t.Errorf("Uint16 = %#x", got)
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 0x0123456789abcdef {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := r.Int64(); got != -42 {
		t.Errorf("Int64 = %d", got)
	}
	if got := r.Float64(); got != math.Pi {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.Bool(); !got {
		t.Error("Bool #1 = false")
	}
	if got := r.Bool(); got {
		t.Error("Bool #2 = true")
	}
	if got := r.Bytes32(); !bytes.Equal(got, []byte("hello world")) {
		t.Errorf("Bytes32 = %q", got)
	}
	if got := r.Str(); got != "gdn" {
		t.Errorf("String = %q", got)
	}
	if got := r.OID(); got != o {
		t.Errorf("OID = %s", got)
	}
	if got := r.Count(); got != 7 {
		t.Errorf("Count = %d", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestTruncatedMessage(t *testing.T) {
	w := NewWriter(0)
	w.Uint64(1)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Uint64()
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, r.Err())
		}
	}
}

func TestErrorSticksAndReturnsZero(t *testing.T) {
	r := NewReader([]byte{0x01})
	r.Uint32() // fails: only one byte
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// Everything after the first error must be inert zero values.
	if r.Uint8() != 0 || r.Str() != "" || r.Bytes32() != nil || !r.OID().IsNil() {
		t.Fatal("reads after error were not zero values")
	}
	if r.Done() == nil {
		t.Fatal("Done must report the sticky error")
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	w := NewWriter(0)
	w.Uint8(1)
	w.Uint8(2)
	r := NewReader(w.Bytes())
	r.Uint8()
	if err := r.Done(); err == nil {
		t.Fatal("Done ignored trailing bytes")
	}
}

func TestBytes32SizeLimit(t *testing.T) {
	// A hostile length prefix must be rejected before allocation.
	var b []byte
	b = append(b, 0xff, 0xff, 0xff, 0xff) // length = 2^32-1
	r := NewReader(b)
	if got := r.Bytes32(); got != nil {
		t.Fatal("oversized Bytes32 returned data")
	}
	if !errors.Is(r.Err(), ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", r.Err())
	}
}

func TestCountLimit(t *testing.T) {
	var b []byte
	b = append(b, 0x7f, 0xff, 0xff, 0xff)
	r := NewReader(b)
	if got := r.Count(); got != 0 {
		t.Fatalf("oversized Count = %d", got)
	}
	if !errors.Is(r.Err(), ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", r.Err())
	}
}

func TestEmptyFields(t *testing.T) {
	w := NewWriter(0)
	w.Bytes32(nil)
	w.Str("")
	r := NewReader(w.Bytes())
	if got := r.Bytes32(); len(got) != 0 {
		t.Errorf("empty Bytes32 = %q", got)
	}
	if got := r.Str(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(16)
	w.Uint64(99)
	if w.Len() != 8 {
		t.Fatalf("Len = %d", w.Len())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	w.Uint8(5)
	r := NewReader(w.Bytes())
	if r.Uint8() != 5 || r.Done() != nil {
		t.Fatal("writer unusable after Reset")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(a uint64, b []byte, s string, flag bool) bool {
		if len(s) > MaxString {
			s = s[:MaxString]
		}
		w := NewWriter(0)
		w.Uint64(a)
		w.Bytes32(b)
		w.Str(s)
		w.Bool(flag)
		r := NewReader(w.Bytes())
		ga := r.Uint64()
		gb := r.Bytes32()
		gs := r.Str()
		gf := r.Bool()
		if r.Done() != nil {
			return false
		}
		return ga == a && bytes.Equal(gb, b) && gs == s && gf == flag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzlikeRandomInputNoPanic(t *testing.T) {
	// Decoding arbitrary bytes must never panic, only error.
	f := func(b []byte) bool {
		r := NewReader(b)
		r.Uint32()
		r.Str()
		r.Bytes32()
		r.OID()
		r.Count()
		r.Float64()
		_ = r.Done()
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringTruncatesAtLimitBoundary(t *testing.T) {
	// A string of exactly MaxString must round-trip.
	s := string(make([]byte, 65535))
	w := NewWriter(0)
	w.Str(s)
	r := NewReader(w.Bytes())
	if got := r.Str(); got != s {
		t.Fatal("max-length string did not round-trip")
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterStrOverflowSurfacesError(t *testing.T) {
	// A string whose length cannot fit the 16-bit prefix used to wrap
	// silently and corrupt every following field; it must now record an
	// error, go inert, and yield no bytes.
	long := string(make([]byte, 70000))
	w := NewWriter(0)
	w.Uint8(7)
	w.Str(long)
	w.Uint32(42) // must be a no-op after the failure
	if err := w.Err(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Err() = %v, want ErrTooLarge", err)
	}
	if b := w.Bytes(); b != nil {
		t.Fatalf("failed writer leaked %d bytes", len(b))
	}
	if w.Len() != 1 {
		t.Fatalf("writer kept appending after error: len %d", w.Len())
	}
}

func TestWriterStrUint16Boundary(t *testing.T) {
	// 65535 is the largest length the prefix can represent; 65536 (which
	// is still <= MaxString) would wrap to 0 and must be refused.
	w := NewWriter(0)
	w.Str(string(make([]byte, 65536)))
	if !errors.Is(w.Err(), ErrTooLarge) {
		t.Fatalf("Err() = %v, want ErrTooLarge for prefix-wrapping string", w.Err())
	}
}

func TestWriterBytes32AndCountLimits(t *testing.T) {
	w := NewWriter(0)
	w.Count(MaxCount + 1)
	if !errors.Is(w.Err(), ErrTooLarge) {
		t.Fatalf("Count over limit: Err() = %v", w.Err())
	}
	w2 := NewWriter(0)
	w2.Count(-1)
	if !errors.Is(w2.Err(), ErrTooLarge) {
		t.Fatalf("negative Count: Err() = %v", w2.Err())
	}
}

func TestPooledWriterRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		w := GetWriter(64)
		w.Uint16(uint16(i))
		w.Str("pooled")
		w.Bytes32([]byte{byte(i)})
		r := NewReader(w.Bytes())
		if r.Uint16() != uint16(i) || r.Str() != "pooled" || !bytes.Equal(r.Bytes32(), []byte{byte(i)}) {
			t.Fatalf("iteration %d: pooled writer corrupted message", i)
		}
		if err := r.Done(); err != nil {
			t.Fatal(err)
		}
		w.Free()
	}
}

func TestPooledWriterClearsErrorOnReuse(t *testing.T) {
	w := GetWriter(8)
	w.Str(string(make([]byte, 70000)))
	if w.Err() == nil {
		t.Fatal("expected error")
	}
	w.Free()
	w2 := GetWriter(8)
	defer w2.Free()
	if w2.Err() != nil || w2.Len() != 0 {
		t.Fatal("pooled writer carried error or bytes across Free")
	}
}

// Package gos implements the Globe Object Server: "an application-
// independent daemon for hosting replicas of any kind of distributed
// shared object" (paper §4). A GOS accepts commands from moderator
// tools — create the first replica of a new object, bind to an
// existing object and create an additional replica, remove a replica —
// registers the replicas it hosts with the Globe Location Service, and
// checkpoints their state to disk so they "save their state during a
// reboot and reconstruct themselves afterwards" (§4).
//
// Security follows §6.1: when configured with credentials, the command
// endpoint accepts state-changing commands only from authenticated
// moderators and administrators, and the GLS registrations it performs
// carry the server's own GOS identity.
package gos

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"gdn/internal/core"
	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/rpc"
	"gdn/internal/sec"
	"gdn/internal/transport"
	"gdn/internal/wire"
)

// Command operation codes.
const (
	// OpCreateReplica creates (and registers) one replica. A nil object
	// identifier in the request asks the server to create the first
	// replica of a brand-new object, allocating the identifier as part
	// of location-service registration (§6.1).
	OpCreateReplica uint16 = iota + 1
	// OpRemoveReplica tears one replica down and deregisters it.
	OpRemoveReplica
	// OpListReplicas returns the hosted replicas.
	OpListReplicas
	// OpCheckpoint forces all hosted replicas' state to stable storage.
	OpCheckpoint
	// OpServerInfo returns the server's replica-traffic address and
	// hosted-replica count; moderator tools use it to build contact
	// addresses without address-derivation conventions.
	OpServerInfo
)

// Config assembles an object server.
type Config struct {
	// Site is the hosting site.
	Site string
	// CmdAddr is the command endpoint moderator tools talk to.
	CmdAddr string
	// ObjAddr is the replica-traffic endpoint (the dispatcher); it is
	// the address part of every contact address this server registers.
	ObjAddr string
	// Runtime supplies the implementation registry and the location-
	// service resolver used for registration.
	Runtime *core.Runtime
	// StateDir is the checkpoint directory; "" disables persistence.
	StateDir string
	// Auth protects both endpoints when non-nil. Commands additionally
	// require the moderator or admin role (§6.1, requirement 1).
	Auth *sec.Config
	// Logf receives diagnostics; nil discards them.
	Logf func(string, ...any)
}

// hosted is one replica this server runs.
type hosted struct {
	lr   *core.LR
	spec core.ReplicaSpec
	ca   gls.ContactAddress
}

// Server is a running Globe Object Server.
type Server struct {
	cfg Config
	net transport.Network

	disp *core.Dispatcher
	cmd  *rpc.Server

	mu      sync.Mutex
	objects map[ids.OID]*hosted
}

// Start launches an object server and recovers any replicas found in
// its state directory, re-registering their contact addresses.
func Start(net transport.Network, cfg Config) (*Server, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("gos: config needs a runtime")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{cfg: cfg, net: net, objects: make(map[ids.OID]*hosted)}

	disp, err := core.NewDispatcher(net, cfg.Site, cfg.ObjAddr, cfg.Auth, cfg.Logf)
	if err != nil {
		return nil, err
	}
	s.disp = disp

	opts := []rpc.ServerOption{rpc.WithServerLog(cfg.Logf)}
	if cfg.Auth != nil {
		opts = append(opts, rpc.WithServerWrapper(cfg.Auth.WrapServer))
	}
	cmd, err := rpc.Serve(net, cfg.CmdAddr, s.handle, opts...)
	if err != nil {
		disp.Close()
		return nil, err
	}
	s.cmd = cmd

	if err := s.recover(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Addr returns the command endpoint address.
func (s *Server) Addr() string { return s.cfg.CmdAddr }

// ObjAddr returns the replica-traffic endpoint address.
func (s *Server) ObjAddr() string { return s.disp.Addr() }

// Hosted returns the number of replicas this server runs.
func (s *Server) Hosted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// HostedLR returns the local representative for an object, if hosted.
// Experiments use it to reach protocol statistics.
func (s *Server) HostedLR(oid ids.OID) (*core.LR, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.objects[oid]
	if !ok {
		return nil, false
	}
	return h.lr, true
}

// Close stops the server without deregistering replicas — the behaviour
// of a crash or an abrupt reboot. Checkpoints and location-service
// registrations survive, which is what recovery builds on.
func (s *Server) Close() error {
	err := s.cmd.Close()
	if derr := s.disp.Close(); err == nil {
		err = derr
	}
	s.mu.Lock()
	objects := s.objects
	s.objects = make(map[ids.OID]*hosted)
	s.mu.Unlock()
	for _, h := range objects {
		h.lr.Close()
	}
	return err
}

// Shutdown checkpoints every replica, then closes. This is the orderly
// reboot path of §4.
func (s *Server) Shutdown() error {
	if err := s.CheckpointAll(); err != nil {
		return err
	}
	return s.Close()
}

func (s *Server) handle(call *rpc.Call) ([]byte, error) {
	if err := s.authorize(call); err != nil {
		return nil, err
	}
	switch call.Op {
	case OpCreateReplica:
		return s.handleCreate(call)
	case OpRemoveReplica:
		return s.handleRemove(call)
	case OpListReplicas:
		return s.handleList()
	case OpCheckpoint:
		return nil, s.CheckpointAll()
	case OpServerInfo:
		w := wire.NewWriter(64)
		w.Str(s.cfg.Site)
		w.Str(s.disp.Addr())
		w.Uint32(uint32(s.Hosted()))
		return w.Bytes(), nil
	default:
		return nil, fmt.Errorf("gos: unknown op %d", call.Op)
	}
}

// authorize admits only moderators and administrators to the command
// endpoint (§6.1: "A Globe Object Server should accept only commands
// sent by a GDN moderator"). Fellow object servers are admitted too:
// replica-creation fan-out may be delegated.
func (s *Server) authorize(call *rpc.Call) error {
	if s.cfg.Auth == nil {
		return nil
	}
	if !sec.HasRole(call.Peer, sec.RoleModerator, sec.RoleAdmin, sec.RoleGOS) {
		return fmt.Errorf("%w: peer %q may not command this object server", sec.ErrUnauthorized, call.Peer)
	}
	return nil
}

// CreateRequest is the body of OpCreateReplica.
type CreateRequest struct {
	// OID is the object to replicate; nil creates a new object.
	OID ids.OID
	// Impl, Protocol, Role and Params mirror core.ReplicaSpec.
	Impl     string
	Protocol string
	Role     string
	Params   map[string]string
	// Peers are contact addresses of existing representatives.
	Peers []gls.ContactAddress
	// InitState seeds the new replica's semantics state; nil leaves it
	// empty (or lets the protocol fetch it from peers).
	InitState []byte
}

// Encode serializes the request.
func (cr CreateRequest) Encode() []byte {
	w := wire.NewWriter(256)
	w.OID(cr.OID)
	w.Str(cr.Impl)
	w.Str(cr.Protocol)
	w.Str(cr.Role)
	keys := make([]string, 0, len(cr.Params))
	for k := range cr.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Count(len(keys))
	for _, k := range keys {
		w.Str(k)
		w.Str(cr.Params[k])
	}
	w.Bytes32(gls.EncodeAddrs(cr.Peers))
	if cr.InitState == nil {
		w.Bool(false)
	} else {
		w.Bool(true)
		w.Bytes32(cr.InitState)
	}
	return w.Bytes()
}

func decodeCreateRequest(b []byte) (CreateRequest, error) {
	r := wire.NewReader(b)
	var cr CreateRequest
	cr.OID = r.OID()
	cr.Impl = r.Str()
	cr.Protocol = r.Str()
	cr.Role = r.Str()
	n := r.Count()
	if r.Err() != nil {
		return CreateRequest{}, r.Err()
	}
	if n > 0 {
		cr.Params = make(map[string]string, n)
	}
	for i := 0; i < n; i++ {
		k := r.Str()
		cr.Params[k] = r.Str()
	}
	peerBytes := r.Bytes32()
	hasState := r.Bool()
	if hasState {
		cr.InitState = append([]byte(nil), r.Bytes32()...)
	}
	if err := r.Done(); err != nil {
		return CreateRequest{}, err
	}
	peers, err := gls.DecodeAddrs(peerBytes)
	if err != nil {
		return CreateRequest{}, err
	}
	cr.Peers = peers
	return cr, nil
}

func (s *Server) handleCreate(call *rpc.Call) ([]byte, error) {
	req, err := decodeCreateRequest(call.Body)
	if err != nil {
		return nil, err
	}
	oid, ca, cost, err := s.create(req)
	call.Charge(cost)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(96)
	w.OID(oid)
	w.Bytes32(gls.EncodeAddrs([]gls.ContactAddress{ca}))
	return w.Bytes(), nil
}

// create constructs, registers and checkpoints one replica.
func (s *Server) create(req CreateRequest) (oid ids.OID, ca gls.ContactAddress, cost time.Duration, err error) {
	oid = req.OID
	if oid.IsNil() {
		// First replica of a new object: the identifier is allocated as
		// part of registration (§6.1); the resolver library draws it.
		oid = ids.New()
	}
	s.mu.Lock()
	_, exists := s.objects[oid]
	s.mu.Unlock()
	if exists {
		return ids.Nil, gls.ContactAddress{}, 0, fmt.Errorf("gos: already hosting a replica of %s", oid.Short())
	}

	spec := core.ReplicaSpec{
		OID:       oid,
		Impl:      req.Impl,
		Protocol:  req.Protocol,
		Role:      req.Role,
		Params:    req.Params,
		Peers:     req.Peers,
		InitState: req.InitState,
	}
	lr, ca, err := s.cfg.Runtime.NewReplica(spec, s.disp)
	if err != nil {
		return ids.Nil, gls.ContactAddress{}, 0, err
	}

	_, insCost, err := s.cfg.Runtime.Resolver().Insert(oid, ca)
	if err != nil {
		lr.Close()
		return ids.Nil, gls.ContactAddress{}, insCost, fmt.Errorf("gos: register %s: %w", oid.Short(), err)
	}

	h := &hosted{lr: lr, spec: spec, ca: ca}
	s.mu.Lock()
	s.objects[oid] = h
	s.mu.Unlock()

	if err := s.checkpoint(h); err != nil {
		s.cfg.Logf("gos: checkpoint %s: %v", oid.Short(), err)
	}
	return oid, ca, insCost, nil
}

func (s *Server) handleRemove(call *rpc.Call) ([]byte, error) {
	r := wire.NewReader(call.Body)
	oid := r.OID()
	if err := r.Done(); err != nil {
		return nil, err
	}

	s.mu.Lock()
	h, ok := s.objects[oid]
	delete(s.objects, oid)
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("gos: not hosting %s", oid.Short())
	}

	cost, err := s.cfg.Runtime.Resolver().Delete(oid, s.disp.Addr())
	call.Charge(cost)
	if err != nil {
		s.cfg.Logf("gos: deregister %s: %v", oid.Short(), err)
	}
	h.lr.Close()
	s.removeCheckpoint(oid)
	return nil, nil
}

// ReplicaInfo describes one hosted replica in list responses.
type ReplicaInfo struct {
	OID      ids.OID
	Impl     string
	Protocol string
	Role     string
}

func (s *Server) handleList() ([]byte, error) {
	s.mu.Lock()
	infos := make([]ReplicaInfo, 0, len(s.objects))
	for oid, h := range s.objects {
		infos = append(infos, ReplicaInfo{OID: oid, Impl: h.spec.Impl, Protocol: h.spec.Protocol, Role: h.spec.Role})
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return ids.Compare(infos[i].OID, infos[j].OID) < 0 })

	w := wire.NewWriter(64 * len(infos))
	w.Count(len(infos))
	for _, info := range infos {
		w.OID(info.OID)
		w.Str(info.Impl)
		w.Str(info.Protocol)
		w.Str(info.Role)
	}
	return w.Bytes(), nil
}

// --- persistence -----------------------------------------------------

// checkpointName is the stable file name for one replica's checkpoint.
func (s *Server) checkpointName(oid ids.OID) string {
	return filepath.Join(s.cfg.StateDir, oid.String()+".replica")
}

// CheckpointAll writes every hosted replica's state to the state
// directory.
func (s *Server) CheckpointAll() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	s.mu.Lock()
	hs := make([]*hosted, 0, len(s.objects))
	for _, h := range s.objects {
		hs = append(hs, h)
	}
	s.mu.Unlock()
	for _, h := range hs {
		if err := s.checkpoint(h); err != nil {
			return err
		}
	}
	return nil
}

// checkpoint writes one replica's spec and current state atomically
// (write to a temporary name, then rename).
func (s *Server) checkpoint(h *hosted) error {
	if s.cfg.StateDir == "" {
		return nil
	}
	state, err := h.lr.Semantics().MarshalState()
	if err != nil {
		return fmt.Errorf("gos: marshal %s: %w", h.spec.OID.Short(), err)
	}
	w := wire.NewWriter(256 + len(state))
	w.OID(h.spec.OID)
	w.Str(h.spec.Impl)
	w.Str(h.spec.Protocol)
	w.Str(h.spec.Role)
	keys := make([]string, 0, len(h.spec.Params))
	for k := range h.spec.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Count(len(keys))
	for _, k := range keys {
		w.Str(k)
		w.Str(h.spec.Params[k])
	}
	w.Bytes32(gls.EncodeAddrs(h.spec.Peers))
	w.Bytes32(state)

	name := s.checkpointName(h.spec.OID)
	tmp := name + ".tmp"
	if err := os.WriteFile(tmp, w.Bytes(), 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, name)
}

func (s *Server) removeCheckpoint(oid ids.OID) {
	if s.cfg.StateDir == "" {
		return
	}
	os.Remove(s.checkpointName(oid))
}

// rolePriority orders recovery so state-holding roles come up before
// the roles that fetch state from them.
func rolePriority(role string) int {
	switch role {
	case "server", "master", "sequencer", "":
		return 0
	default:
		return 1
	}
}

// recover reconstructs replicas from the state directory and
// re-registers their contact addresses with the location service (§4).
func (s *Server) recover() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		if os.IsNotExist(err) {
			return os.MkdirAll(s.cfg.StateDir, 0o700)
		}
		return err
	}

	type pending struct {
		spec core.ReplicaSpec
	}
	var specs []pending
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".replica") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.cfg.StateDir, e.Name()))
		if err != nil {
			return err
		}
		spec, err := decodeCheckpoint(b)
		if err != nil {
			return fmt.Errorf("gos: checkpoint %s: %w", e.Name(), err)
		}
		specs = append(specs, pending{spec: spec})
	}
	sort.SliceStable(specs, func(i, j int) bool {
		return rolePriority(specs[i].spec.Role) < rolePriority(specs[j].spec.Role)
	})

	for _, p := range specs {
		lr, ca, err := s.cfg.Runtime.NewReplica(p.spec, s.disp)
		if err != nil {
			return fmt.Errorf("gos: recover %s: %w", p.spec.OID.Short(), err)
		}
		if _, _, err := s.cfg.Runtime.Resolver().Insert(p.spec.OID, ca); err != nil {
			lr.Close()
			return fmt.Errorf("gos: re-register %s: %w", p.spec.OID.Short(), err)
		}
		s.mu.Lock()
		s.objects[p.spec.OID] = &hosted{lr: lr, spec: p.spec, ca: ca}
		s.mu.Unlock()
		s.cfg.Logf("gos: recovered replica %s (%s/%s)", p.spec.OID.Short(), p.spec.Protocol, p.spec.Role)
	}
	return nil
}

func decodeCheckpoint(b []byte) (core.ReplicaSpec, error) {
	r := wire.NewReader(b)
	var spec core.ReplicaSpec
	spec.OID = r.OID()
	spec.Impl = r.Str()
	spec.Protocol = r.Str()
	spec.Role = r.Str()
	n := r.Count()
	if r.Err() != nil {
		return core.ReplicaSpec{}, r.Err()
	}
	if n > 0 {
		spec.Params = make(map[string]string, n)
	}
	for i := 0; i < n; i++ {
		k := r.Str()
		spec.Params[k] = r.Str()
	}
	peerBytes := r.Bytes32()
	state := r.Bytes32()
	if err := r.Done(); err != nil {
		return core.ReplicaSpec{}, err
	}
	peers, err := gls.DecodeAddrs(peerBytes)
	if err != nil {
		return core.ReplicaSpec{}, err
	}
	spec.Peers = peers
	spec.InitState = append([]byte(nil), state...)
	return spec, nil
}

// Package gos implements the Globe Object Server: "an application-
// independent daemon for hosting replicas of any kind of distributed
// shared object" (paper §4). A GOS accepts commands from moderator
// tools — create the first replica of a new object, bind to an
// existing object and create an additional replica, remove a replica —
// registers the replicas it hosts with the Globe Location Service, and
// checkpoints their state to disk so they "save their state during a
// reboot and reconstruct themselves afterwards" (§4).
//
// Security follows §6.1: when configured with credentials, the command
// endpoint accepts state-changing commands only from authenticated
// moderators and administrators, and the GLS registrations it performs
// carry the server's own GOS identity.
package gos

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"gdn/internal/core"
	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/rpc"
	"gdn/internal/sec"
	"gdn/internal/store"
	"gdn/internal/transport"
	"gdn/internal/walog"
	"gdn/internal/wire"
)

// Command operation codes.
const (
	// OpCreateReplica creates (and registers) one replica. A nil object
	// identifier in the request asks the server to create the first
	// replica of a brand-new object, allocating the identifier as part
	// of location-service registration (§6.1).
	OpCreateReplica uint16 = iota + 1
	// OpRemoveReplica tears one replica down and deregisters it.
	OpRemoveReplica
	// OpListReplicas returns the hosted replicas.
	OpListReplicas
	// OpCheckpoint forces all hosted replicas' state to stable storage.
	OpCheckpoint
	// OpServerInfo returns the server's replica-traffic address and
	// hosted-replica count; moderator tools use it to build contact
	// addresses without address-derivation conventions.
	OpServerInfo
	// OpPutChunks uploads content chunks into the server's chunk
	// store ahead of a create command whose InitState references them
	// by content address. Each chunk is verified against its claimed
	// address on arrival. The call is normally an upload stream (one
	// chunk per data frame); a unary body carrying a counted batch of
	// (ref, bytes) pairs is accepted too.
	OpPutChunks
	// OpChunkHave is the which-of-these-do-you-have negotiation run
	// before OpPutChunks: refs in, the subset the server's store lacks
	// out. A moderator re-deploying a mostly-unchanged package learns
	// it can skip almost every upload.
	OpChunkHave
)

// Config assembles an object server.
type Config struct {
	// Site is the hosting site.
	Site string
	// CmdAddr is the command endpoint moderator tools talk to.
	CmdAddr string
	// ObjAddr is the replica-traffic endpoint (the dispatcher); it is
	// the address part of every contact address this server registers.
	ObjAddr string
	// Runtime supplies the implementation registry and the location-
	// service resolver used for registration.
	Runtime *core.Runtime
	// StateDir is the checkpoint directory; "" disables persistence.
	StateDir string
	// ScrubEvery is the interval between background scrubbing passes
	// over the disk chunk store (persistent servers only). 0 selects a
	// default; negative disables scrubbing.
	ScrubEvery time.Duration
	// ScrubBytes bounds one scrubbing pass; 0 selects a default.
	ScrubBytes int64
	// LeaseTTL is the lifetime of this server's registration session
	// with the location service. Every hosted replica is attached to
	// the one session, and a heartbeat (a third of the TTL) renews them
	// all with a single batched call per leaf subnode — renewal traffic
	// is O(servers), not O(replicas) — so entries stay live while the
	// server does and age out of lookups within one TTL of a crash: the
	// location layer stops advertising dead replicas. 0 selects the
	// default (30s); negative disables leasing (permanent
	// registrations, no heartbeat — the pre-session behaviour).
	LeaseTTL time.Duration
	// DrainAfter is the cumulative count of scrubber-quarantined chunks
	// at which the server declares its store chronically corrupt and
	// drains its replicas out of location-service lookups (without
	// deregistering — state and leases survive, and the server
	// undrains itself once a full scrub pass runs clean and every
	// quarantined ref has been re-fetched). 0 selects the default (4);
	// negative disables draining.
	DrainAfter int
	// Auth protects both endpoints when non-nil. Commands additionally
	// require the moderator or admin role (§6.1, requirement 1).
	Auth *sec.Config
	// Logf receives diagnostics; nil discards them.
	Logf func(string, ...any)
}

// Default scrubbing rate: a pass over up to 256 MiB of chunk content
// every 30 seconds — roughly 8 MiB/s of sequential read, background
// noise against the bulk path it protects.
const (
	defaultScrubEvery = 30 * time.Second
	defaultScrubBytes = 256 << 20
)

// Default replica-health knobs: registrations live 30 seconds past
// the last heartbeat, and four quarantined chunks mark a store as
// chronically corrupt.
const (
	defaultLeaseTTL   = 30 * time.Second
	defaultDrainAfter = 4
)

// hosted is one replica this server runs.
type hosted struct {
	lr   *core.LR
	spec core.ReplicaSpec
	ca   gls.ContactAddress
	// ckptMu serializes checkpoints of this replica: concurrent
	// OpCheckpoint commands could otherwise interleave the file rename
	// and the pin swap in opposite orders, leaving the durable
	// manifest's chunks unpinned.
	ckptMu sync.Mutex
}

// Server is a running Globe Object Server.
type Server struct {
	cfg Config
	net transport.Network

	disp *core.Dispatcher
	cmd  *rpc.Server

	// stopScrub halts the background chunk scrubber; nil when
	// scrubbing is disabled.
	stopScrub func()
	// stopHeartbeat halts the session-renewal loop; nil when leasing is
	// disabled.
	stopHeartbeat func()
	// sess is the registration session every hosted replica's contact
	// address is attached to; nil when leasing is disabled (or the
	// runtime has no resolver).
	sess *gls.ServerSession

	// healthMu guards the scrub-health accounting feeding GLS drain.
	healthMu sync.Mutex
	drained  bool
	scrubBad int // quarantined chunks since the last healthy wrap
	wrapBad  int // quarantined chunks in the current scrub wrap

	// chunks is the server-wide content store every hosted replica's
	// bulk content lives in: disk-backed under StateDir (durable
	// across reboots, §4), memory-backed otherwise. Content shared
	// between replicas — or between a replica and its checkpoints —
	// is stored once.
	chunks *store.Store

	mu      sync.Mutex
	objects map[ids.OID]*hosted
	closing bool
	// pins records, per object, the chunk refs its last durable
	// checkpoint references. Those refs stay retained in the store
	// until the checkpoint is superseded or removed, so live-state
	// churn can never delete a chunk an on-disk manifest still needs.
	pins map[ids.OID][]store.Ref
	// ckptImages holds the latest durable checkpoint image per object
	// — the live set a checkpoint-log compaction rewrites the log
	// from. Guarded by mu.
	ckptImages map[ids.OID][]byte

	// ckptLog is the append-only checkpoint log: each checkpoint is
	// one appended frame instead of a whole-file rewrite per replica,
	// so checkpointing N replicas costs one fsync batch, not N
	// rename+fsync pairs. Nil when StateDir is unset. ckptLogMu
	// serializes appends against compaction (a Rewrite must not lose
	// a frame appended after its live-image scan); lock order is
	// ckptLogMu before mu.
	ckptLog      *walog.Log
	ckptLogMu    sync.Mutex
	ckptLogClose sync.Once
}

// Start launches an object server and recovers any replicas found in
// its state directory, re-registering their contact addresses.
func Start(net transport.Network, cfg Config) (*Server, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("gos: config needs a runtime")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:        cfg,
		net:        net,
		objects:    make(map[ids.OID]*hosted),
		pins:       make(map[ids.OID][]store.Ref),
		ckptImages: make(map[ids.OID][]byte),
	}
	chunkDir := ""
	if cfg.StateDir != "" {
		chunkDir = filepath.Join(cfg.StateDir, "chunks")
	}
	chunks, err := store.Open(chunkDir)
	if err != nil {
		return nil, fmt.Errorf("gos: open chunk store: %w", err)
	}
	s.chunks = chunks

	disp, err := core.NewDispatcher(net, cfg.Site, cfg.ObjAddr, cfg.Auth, cfg.Logf)
	if err != nil {
		return nil, err
	}
	s.disp = disp

	// One registration session covers every replica this server will
	// host: replicas attach to it as they are created or recovered, and
	// the heartbeat renews them all with a single batched call.
	if ttl := s.leaseTTL(); ttl > 0 && cfg.Runtime.Resolver() != nil {
		sess, _, err := cfg.Runtime.Resolver().OpenSession(disp.Addr(), ttl)
		if err != nil {
			disp.Close()
			return nil, fmt.Errorf("gos: open registration session: %w", err)
		}
		s.sess = sess
	}

	// Recover before the command endpoint opens: the recovery sweep
	// reclaims every unreferenced chunk, and a moderator upload
	// accepted mid-recovery would be unreferenced by definition.
	if err := s.recover(); err != nil {
		disp.Close()
		for _, h := range s.objects {
			h.lr.Close()
		}
		if s.ckptLog != nil {
			s.ckptLog.Close()
		}
		return nil, err
	}

	opts := []rpc.ServerOption{rpc.WithServerLog(cfg.Logf)}
	if cfg.Auth != nil {
		opts = append(opts, rpc.WithServerWrapper(cfg.Auth.WrapServer))
	}
	cmd, err := rpc.Serve(net, cfg.CmdAddr, s.handle, opts...)
	if err != nil {
		disp.Close()
		for _, h := range s.objects {
			h.lr.Close()
		}
		if s.ckptLog != nil {
			s.ckptLog.Close()
		}
		return nil, err
	}
	s.cmd = cmd

	// Background scrubbing re-verifies the durable chunks this server
	// is trusted to serve; a quarantined chunk is refetched by the next
	// state transfer that needs it (repair by delta sync). Scrub
	// results feed the location service: chronic corruption drains
	// this server's replicas out of lookups until the store heals.
	if cfg.StateDir != "" && cfg.ScrubEvery >= 0 {
		every, bytes := cfg.ScrubEvery, cfg.ScrubBytes
		if every == 0 {
			every = defaultScrubEvery
		}
		if bytes == 0 {
			bytes = defaultScrubBytes
		}
		s.stopScrub = s.startScrubLoop(every, bytes)
	}

	// Heartbeat: renew the registration session at a third of the lease
	// TTL, so every attached registration stays live exactly as long as
	// the server does.
	if s.sess != nil {
		s.stopHeartbeat = s.startHeartbeat(s.leaseTTL() / 3)
	}
	return s, nil
}

// leaseTTL returns the effective registration TTL (0 when leasing is
// disabled).
func (s *Server) leaseTTL() time.Duration {
	switch {
	case s.cfg.LeaseTTL < 0:
		return 0
	case s.cfg.LeaseTTL == 0:
		return defaultLeaseTTL
	default:
		return s.cfg.LeaseTTL
	}
}

// drainAfter returns the effective chronic-corruption threshold (0
// when draining is disabled).
func (s *Server) drainAfter() int {
	switch {
	case s.cfg.DrainAfter < 0:
		return 0
	case s.cfg.DrainAfter == 0:
		return defaultDrainAfter
	default:
		return s.cfg.DrainAfter
	}
}

// register inserts one replica's contact address — attached to the
// server's registration session when leasing is on, permanent
// otherwise.
func (s *Server) register(oid ids.OID, ca gls.ContactAddress) (time.Duration, error) {
	if s.sess != nil {
		_, cost, err := s.sess.Attach(oid, ca)
		return cost, err
	}
	_, cost, err := s.cfg.Runtime.Resolver().Insert(oid, ca)
	return cost, err
}

// deregister removes one replica's contact address and, when leasing is
// on, drops it from the session's re-attach set.
func (s *Server) deregister(oid ids.OID) (time.Duration, error) {
	if s.sess != nil {
		return s.sess.Detach(oid)
	}
	return s.cfg.Runtime.Resolver().Delete(oid, s.disp.Addr())
}

// startHeartbeat renews every hosted replica's lease on a ticker.
func (s *Server) startHeartbeat(every time.Duration) func() {
	if every <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.Heartbeat()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(stop) }); <-done }
}

// Heartbeat renews the registration session now — one batched call per
// leaf subnode keeps every hosted replica's entry alive, however many
// there are. The background loop calls it on a ticker; tests call it
// directly.
func (s *Server) Heartbeat() {
	if s.sess == nil {
		return
	}
	if _, err := s.sess.Renew(); err != nil {
		s.cfg.Logf("gos: renew registration session: %v", err)
	}
}

// startScrubLoop drives bounded scrub passes and feeds their results
// into the drain policy.
func (s *Server) startScrubLoop(every time.Duration, bytesPerPass int64) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.ScrubPass(bytesPerPass)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(stop) }); <-done }
}

// ScrubPass runs one bounded scrub pass and applies the drain policy:
// crossing the chronic-corruption threshold drains this server's
// replicas out of location-service lookups; a full wrap over the
// store with zero corruption and every quarantined ref re-fetched
// undrains them. The background loop calls it on a ticker; tests call
// it directly. limit <= 0 selects the configured pass bound.
func (s *Server) ScrubPass(limit int64) store.ScrubResult {
	if limit <= 0 {
		limit = s.cfg.ScrubBytes
		if limit <= 0 {
			limit = defaultScrubBytes
		}
	}
	res := s.chunks.Scrub(limit)
	for _, ref := range res.Quarantined {
		s.cfg.Logf("gos: scrub quarantined corrupt chunk %s", ref.Short())
	}

	threshold := s.drainAfter()
	var drain, undrain bool
	s.healthMu.Lock()
	s.scrubBad += len(res.Quarantined)
	s.wrapBad += len(res.Quarantined)
	if threshold > 0 && !s.drained && s.scrubBad >= threshold {
		s.drained = true
		drain = true
	}
	if res.Wrapped {
		if s.drained && s.wrapBad == 0 && s.chunks.Lost() == 0 {
			// The whole store verified clean and every quarantined ref
			// healed: the replica is trustworthy again.
			s.drained = false
			s.scrubBad = 0
			undrain = true
		}
		s.wrapBad = 0
	}
	s.healthMu.Unlock()

	if drain {
		s.setDrain(true)
	}
	if undrain {
		s.setDrain(false)
	}
	return res
}

// Drained reports whether this server has drained its replicas out of
// location-service lookups.
func (s *Server) Drained() bool {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	return s.drained
}

// setDrain tells the location service to hide (or restore) every
// contact address at this server's replica endpoint. With a
// registration session the bit rides the next batched renewal
// (ServerSession.Drain) — no per-subnode fan-out; sessionless servers
// fall back to the OpDrain compatibility shim.
func (s *Server) setDrain(draining bool) {
	var err error
	if s.sess != nil {
		_, err = s.sess.Drain(draining)
	} else {
		_, err = s.cfg.Runtime.Resolver().Drain(s.disp.Addr(), draining)
	}
	if err != nil {
		s.cfg.Logf("gos: drain(%v) %s: %v", draining, s.disp.Addr(), err)
		return
	}
	if draining {
		s.cfg.Logf("gos: store chronically corrupt; drained %s from location lookups", s.disp.Addr())
	} else {
		s.cfg.Logf("gos: store healed; undrained %s", s.disp.Addr())
	}
}

// Addr returns the command endpoint address.
func (s *Server) Addr() string { return s.cfg.CmdAddr }

// ObjAddr returns the replica-traffic endpoint address.
func (s *Server) ObjAddr() string { return s.disp.Addr() }

// Hosted returns the number of replicas this server runs.
func (s *Server) Hosted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// HostedLR returns the local representative for an object, if hosted.
// Experiments use it to reach protocol statistics.
func (s *Server) HostedLR(oid ids.OID) (*core.LR, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.objects[oid]
	if !ok {
		return nil, false
	}
	return h.lr, true
}

// Close stops the server without deregistering replicas — the behaviour
// of a crash or an abrupt reboot. Checkpoints and location-service
// registrations survive (the registration session simply stops being
// renewed and ages out with its entries), which is what recovery
// builds on.
func (s *Server) Close() error {
	if s.stopHeartbeat != nil {
		s.stopHeartbeat()
	}
	if s.stopScrub != nil {
		s.stopScrub()
	}
	err := s.cmd.Close()
	if derr := s.disp.Close(); err == nil {
		err = derr
	}
	s.mu.Lock()
	s.closing = true
	objects := s.objects
	s.objects = make(map[ids.OID]*hosted)
	s.mu.Unlock()
	for _, h := range objects {
		h.lr.Close()
	}
	if s.ckptLog != nil {
		s.ckptLogClose.Do(func() {
			if cerr := s.ckptLog.Close(); err == nil {
				err = cerr
			}
		})
	}
	return err
}

// Shutdown checkpoints every replica, then closes. This is the orderly
// reboot path of §4.
func (s *Server) Shutdown() error {
	if err := s.CheckpointAll(); err != nil {
		return err
	}
	return s.Close()
}

func (s *Server) handle(call *rpc.Call) ([]byte, error) {
	if err := s.authorize(call); err != nil {
		return nil, err
	}
	switch call.Op {
	case OpCreateReplica:
		return s.handleCreate(call)
	case OpRemoveReplica:
		return s.handleRemove(call)
	case OpListReplicas:
		return s.handleList()
	case OpCheckpoint:
		return nil, s.CheckpointAll()
	case OpPutChunks:
		return s.handlePutChunks(call)
	case OpChunkHave:
		return s.handleChunkHave(call)
	case OpServerInfo:
		w := wire.NewWriter(64)
		w.Str(s.cfg.Site)
		w.Str(s.disp.Addr())
		w.Uint32(uint32(s.Hosted()))
		return w.Bytes(), nil
	default:
		return nil, fmt.Errorf("gos: unknown op %d", call.Op)
	}
}

// authorize admits only moderators and administrators to the command
// endpoint (§6.1: "A Globe Object Server should accept only commands
// sent by a GDN moderator"). Fellow object servers are admitted too:
// replica-creation fan-out may be delegated.
func (s *Server) authorize(call *rpc.Call) error {
	if s.cfg.Auth == nil {
		return nil
	}
	if !sec.HasRole(call.Peer, sec.RoleModerator, sec.RoleAdmin, sec.RoleGOS) {
		return fmt.Errorf("%w: peer %q may not command this object server", sec.ErrUnauthorized, call.Peer)
	}
	return nil
}

// Chunks exposes the server's content store; tests and experiments
// inspect it.
func (s *Server) Chunks() *store.Store { return s.chunks }

// handleChunkHave answers the upload negotiation: refs in, the subset
// missing from the server's store out.
func (s *Server) handleChunkHave(call *rpc.Call) ([]byte, error) {
	refs, err := core.DecodeRefs(call.Body, core.ChunkHaveMaxRefs)
	if err != nil {
		return nil, err
	}
	return core.EncodeRefs(s.chunks.Missing(refs)), nil
}

// handlePutChunks stores uploaded content chunks, verifying each
// against its claimed content address — a moderator cannot be
// spoofed into serving bytes that do not hash to their name, and
// uploading a chunk the server already has is a no-op (dedup).
// Streamed uploads carry one raw chunk per data frame (the content
// address is recomputed on arrival); unary batches carry claimed
// (ref, bytes) pairs.
func (s *Server) handlePutChunks(call *rpc.Call) ([]byte, error) {
	if ur := call.Upload(); ur != nil {
		for {
			data, err := ur.Recv()
			if err == io.EOF {
				return nil, nil
			}
			if err != nil {
				return nil, err
			}
			if _, err := s.chunks.Put(data); err != nil {
				return nil, err
			}
		}
	}
	r := wire.NewReader(call.Body)
	n := r.Count()
	if err := r.Err(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		ref := store.Ref(r.Hash())
		data := r.Bytes32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if err := s.chunks.PutRef(ref, data); err != nil {
			return nil, err
		}
	}
	return nil, r.Done()
}

// CreateRequest is the body of OpCreateReplica.
type CreateRequest struct {
	// OID is the object to replicate; nil creates a new object.
	OID ids.OID
	// Impl, Protocol, Role and Params mirror core.ReplicaSpec.
	Impl     string
	Protocol string
	Role     string
	Params   map[string]string
	// Peers are contact addresses of existing representatives.
	Peers []gls.ContactAddress
	// InitState seeds the new replica's semantics state; nil leaves it
	// empty (or lets the protocol fetch it from peers).
	InitState []byte
}

// Encode serializes the request.
func (cr CreateRequest) Encode() []byte {
	w := wire.NewWriter(256)
	w.OID(cr.OID)
	w.Str(cr.Impl)
	w.Str(cr.Protocol)
	w.Str(cr.Role)
	keys := make([]string, 0, len(cr.Params))
	for k := range cr.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Count(len(keys))
	for _, k := range keys {
		w.Str(k)
		w.Str(cr.Params[k])
	}
	w.Bytes32(gls.EncodeAddrs(cr.Peers))
	if cr.InitState == nil {
		w.Bool(false)
	} else {
		w.Bool(true)
		w.Bytes32(cr.InitState)
	}
	return w.Bytes()
}

func decodeCreateRequest(b []byte) (CreateRequest, error) {
	r := wire.NewReader(b)
	var cr CreateRequest
	cr.OID = r.OID()
	cr.Impl = r.Str()
	cr.Protocol = r.Str()
	cr.Role = r.Str()
	n := r.Count()
	if r.Err() != nil {
		return CreateRequest{}, r.Err()
	}
	if n > 0 {
		cr.Params = make(map[string]string, n)
	}
	for i := 0; i < n; i++ {
		k := r.Str()
		cr.Params[k] = r.Str()
	}
	peerBytes := r.Bytes32()
	hasState := r.Bool()
	if hasState {
		cr.InitState = append([]byte(nil), r.Bytes32()...)
	}
	if err := r.Done(); err != nil {
		return CreateRequest{}, err
	}
	peers, err := gls.DecodeAddrs(peerBytes)
	if err != nil {
		return CreateRequest{}, err
	}
	cr.Peers = peers
	return cr, nil
}

func (s *Server) handleCreate(call *rpc.Call) ([]byte, error) {
	req, err := decodeCreateRequest(call.Body)
	if err != nil {
		return nil, err
	}
	oid, ca, cost, err := s.create(req)
	call.Charge(cost)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(96)
	w.OID(oid)
	w.Bytes32(gls.EncodeAddrs([]gls.ContactAddress{ca}))
	return w.Bytes(), nil
}

// create constructs, registers and checkpoints one replica.
func (s *Server) create(req CreateRequest) (oid ids.OID, ca gls.ContactAddress, cost time.Duration, err error) {
	oid = req.OID
	if oid.IsNil() {
		// First replica of a new object: the identifier is allocated as
		// part of registration (§6.1); the resolver library draws it.
		oid = ids.New()
	}
	s.mu.Lock()
	_, exists := s.objects[oid]
	s.mu.Unlock()
	if exists {
		return ids.Nil, gls.ContactAddress{}, 0, fmt.Errorf("gos: already hosting a replica of %s", oid.Short())
	}

	spec := core.ReplicaSpec{
		OID:       oid,
		Impl:      req.Impl,
		Protocol:  req.Protocol,
		Role:      req.Role,
		Params:    req.Params,
		Peers:     req.Peers,
		InitState: req.InitState,
		Store:     s.chunks,
	}
	lr, ca, err := s.cfg.Runtime.NewReplica(spec, s.disp)
	if err != nil {
		return ids.Nil, gls.ContactAddress{}, 0, err
	}

	insCost, err := s.register(oid, ca)
	if err != nil {
		lr.Close()
		return ids.Nil, gls.ContactAddress{}, insCost, fmt.Errorf("gos: register %s: %w", oid.Short(), err)
	}

	h := &hosted{lr: lr, spec: spec, ca: ca}
	s.mu.Lock()
	s.objects[oid] = h
	s.mu.Unlock()

	if err := s.checkpoint(h); err != nil {
		s.cfg.Logf("gos: checkpoint %s: %v", oid.Short(), err)
	}
	return oid, ca, insCost, nil
}

func (s *Server) handleRemove(call *rpc.Call) ([]byte, error) {
	r := wire.NewReader(call.Body)
	oid := r.OID()
	if err := r.Done(); err != nil {
		return nil, err
	}

	s.mu.Lock()
	h, ok := s.objects[oid]
	delete(s.objects, oid)
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("gos: not hosting %s", oid.Short())
	}

	cost, err := s.deregister(oid)
	call.Charge(cost)
	if err != nil {
		s.cfg.Logf("gos: deregister %s: %v", oid.Short(), err)
	}
	h.lr.Close()
	s.removeCheckpoint(oid)
	return nil, nil
}

// ReplicaInfo describes one hosted replica in list responses.
type ReplicaInfo struct {
	OID      ids.OID
	Impl     string
	Protocol string
	Role     string
}

func (s *Server) handleList() ([]byte, error) {
	s.mu.Lock()
	infos := make([]ReplicaInfo, 0, len(s.objects))
	for oid, h := range s.objects {
		infos = append(infos, ReplicaInfo{OID: oid, Impl: h.spec.Impl, Protocol: h.spec.Protocol, Role: h.spec.Role})
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return ids.Compare(infos[i].OID, infos[j].OID) < 0 })

	w := wire.NewWriter(64 * len(infos))
	w.Count(len(infos))
	for _, info := range infos {
		w.OID(info.OID)
		w.Str(info.Impl)
		w.Str(info.Protocol)
		w.Str(info.Role)
	}
	return w.Bytes(), nil
}

// --- persistence -----------------------------------------------------

// checkpointName is the stable file name for one replica's checkpoint.
func (s *Server) checkpointName(oid ids.OID) string {
	return filepath.Join(s.cfg.StateDir, oid.String()+".replica")
}

// CheckpointAll writes every hosted replica's state to the state
// directory.
func (s *Server) CheckpointAll() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	s.mu.Lock()
	hs := make([]*hosted, 0, len(s.objects))
	for _, h := range s.objects {
		hs = append(hs, h)
	}
	s.mu.Unlock()
	for _, h := range hs {
		if err := s.checkpoint(h); err != nil {
			return err
		}
	}
	return nil
}

// checkpoint writes one replica's spec and current state durably, as
// one frame appended to the checkpoint log (batched write + fsync).
// The state is a manifest into the server's chunk store, so
// checkpointing a huge package appends a few kilobytes of manifest —
// the chunks are already durable, written when the content arrived.
// The refs the manifest names are pinned in the store until this
// checkpoint is superseded, so they survive any live-state churn in
// between.
func (s *Server) checkpoint(h *hosted) error {
	if s.cfg.StateDir == "" {
		return nil
	}
	h.ckptMu.Lock()
	defer h.ckptMu.Unlock()
	// A write landing between MarshalState and Retain can release (and,
	// in plain mode, delete) a chunk the freshly marshalled manifest
	// references; the Retain then fails. The state that replaced it is
	// just as good a checkpoint, so re-marshal and try again.
	for attempt := 0; ; attempt++ {
		state, err := h.lr.Semantics().MarshalState()
		if err != nil {
			return fmt.Errorf("gos: marshal %s: %w", h.spec.OID.Short(), err)
		}
		// Pin the new manifest's chunks before the file becomes the
		// checkpoint, so there is no instant where the on-disk manifest
		// references unpinned chunks.
		refs, err := stateRefsOf(h.lr.Semantics(), state)
		if err != nil {
			return fmt.Errorf("gos: checkpoint refs %s: %w", h.spec.OID.Short(), err)
		}
		if err := s.chunks.Retain(refs); err != nil {
			if errors.Is(err, store.ErrMissing) && attempt < 5 {
				continue
			}
			return fmt.Errorf("gos: pin checkpoint %s: %w", h.spec.OID.Short(), err)
		}

		w := wire.NewWriter(256 + len(state))
		w.OID(h.spec.OID)
		w.Str(h.spec.Impl)
		w.Str(h.spec.Protocol)
		w.Str(h.spec.Role)
		keys := make([]string, 0, len(h.spec.Params))
		for k := range h.spec.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.Count(len(keys))
		for _, k := range keys {
			w.Str(k)
			w.Str(h.spec.Params[k])
		}
		w.Bytes32(gls.EncodeAddrs(h.spec.Peers))
		w.Bytes32(state)

		if err := s.appendCheckpoint(h.spec.OID, w.Bytes()); err != nil {
			s.chunks.Release(refs)
			return err
		}
		// The log frame supersedes any legacy per-replica file from an
		// older server; retire it so recovery cannot resurrect stale
		// state after a later tombstone.
		os.Remove(s.checkpointName(h.spec.OID))
		s.mu.Lock()
		if s.objects[h.spec.OID] != h && !s.closing {
			// The replica was removed while we checkpointed; a durable
			// image would resurrect it on the next reboot. Undo with a
			// tombstone. (On server close the map is emptied too, but
			// there the image must survive — that is the crash-recovery
			// contract.)
			s.mu.Unlock()
			s.appendTombstone(h.spec.OID)
			s.chunks.Release(refs)
			return nil
		}
		old := s.pins[h.spec.OID]
		s.pins[h.spec.OID] = refs
		s.mu.Unlock()
		s.chunks.Release(old)
		s.maybeCompactCkptLog()
		return nil
	}
}

// stateRefsOf parses the chunk refs out of a marshalled state when
// the semantics chunks its content; nil refs otherwise.
func stateRefsOf(sem core.Semantics, state []byte) ([]store.Ref, error) {
	cs, ok := sem.(core.ChunkedState)
	if !ok {
		return nil, nil
	}
	return cs.StateRefs(state)
}

func (s *Server) removeCheckpoint(oid ids.OID) {
	if s.cfg.StateDir == "" {
		return
	}
	os.Remove(s.checkpointName(oid))
	s.appendTombstone(oid)
	s.mu.Lock()
	refs := s.pins[oid]
	delete(s.pins, oid)
	s.mu.Unlock()
	s.chunks.Release(refs)
}

// Checkpoint-log frame kinds: an image frame carries a full replica
// checkpoint (spec + state manifest), a tombstone retracts every
// earlier image for its object.
const (
	ckptImage     = uint8(1)
	ckptTombstone = uint8(2)
)

// ckptLogName is the append-only checkpoint log all replicas share.
func (s *Server) ckptLogName() string {
	return filepath.Join(s.cfg.StateDir, "checkpoints.log")
}

// ckptCompactMin is the smallest checkpoint log worth compacting.
const ckptCompactMin = 1 << 20

// appendCheckpoint appends one image frame and makes it durable.
func (s *Server) appendCheckpoint(oid ids.OID, img []byte) error {
	s.ckptLogMu.Lock()
	defer s.ckptLogMu.Unlock()
	if s.ckptLog == nil {
		return fmt.Errorf("gos: checkpoint log closed")
	}
	p := make([]byte, 1+len(img))
	p[0] = ckptImage
	copy(p[1:], img)
	s.ckptLog.Append(p)
	if _, err := s.ckptLog.Flush(); err != nil {
		return fmt.Errorf("gos: checkpoint append %s: %w", oid.Short(), err)
	}
	s.mu.Lock()
	s.ckptImages[oid] = img
	s.mu.Unlock()
	return nil
}

// appendTombstone retracts an object's checkpoints from the log.
// Best-effort: a tombstone that fails to flush costs one resurrected
// replica on the next reboot, which the moderator can remove again.
func (s *Server) appendTombstone(oid ids.OID) {
	s.ckptLogMu.Lock()
	defer s.ckptLogMu.Unlock()
	if s.ckptLog == nil {
		return
	}
	p := make([]byte, 1+ids.Size)
	p[0] = ckptTombstone
	copy(p[1:], oid[:])
	s.ckptLog.Append(p)
	if _, err := s.ckptLog.Flush(); err != nil {
		s.cfg.Logf("gos: checkpoint tombstone %s: %v", oid.Short(), err)
	}
	s.mu.Lock()
	delete(s.ckptImages, oid)
	s.mu.Unlock()
}

// maybeCompactCkptLog folds the checkpoint log down to the latest
// image per live object once superseded frames dominate it. Holding
// ckptLogMu across the scan-and-rewrite keeps concurrent appends from
// being dropped by the Rewrite.
func (s *Server) maybeCompactCkptLog() {
	s.ckptLogMu.Lock()
	defer s.ckptLogMu.Unlock()
	if s.ckptLog == nil {
		return
	}
	// All ckptImages writers hold ckptLogMu, so the map is stable for
	// the duration of the scan; mu still covers the reads.
	s.mu.Lock()
	live := int64(0)
	for _, img := range s.ckptImages {
		live += int64(len(img)) + 16
	}
	s.mu.Unlock()
	threshold := 2 * live
	if threshold < ckptCompactMin {
		threshold = ckptCompactMin
	}
	if s.ckptLog.Size()+int64(s.ckptLog.Buffered()) <= threshold {
		return
	}
	s.mu.Lock()
	payloads := make([][]byte, 0, len(s.ckptImages))
	for _, img := range s.ckptImages {
		p := make([]byte, 1+len(img))
		p[0] = ckptImage
		copy(p[1:], img)
		payloads = append(payloads, p)
	}
	s.mu.Unlock()
	if err := s.ckptLog.Rewrite(payloads); err != nil {
		s.cfg.Logf("gos: compact checkpoint log: %v", err)
	}
}

// rolePriority orders recovery so state-holding roles come up before
// the roles that fetch state from them.
func rolePriority(role string) int {
	switch role {
	case "server", "master", "sequencer", "":
		return 0
	default:
		return 1
	}
}

// recover reconstructs replicas from the state directory and
// re-registers their contact addresses with the location service (§4).
// Legacy per-replica files are read first, then the checkpoint log is
// replayed over them: the last frame per object wins, and a tombstone
// retracts the object entirely.
func (s *Server) recover() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.StateDir, 0o700); err != nil {
		return err
	}
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return err
	}

	images := make(map[ids.OID][]byte)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".replica") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.cfg.StateDir, e.Name()))
		if err != nil {
			return err
		}
		spec, err := decodeCheckpoint(b)
		if err != nil {
			return fmt.Errorf("gos: checkpoint %s: %w", e.Name(), err)
		}
		images[spec.OID] = b
	}

	lg, err := walog.Open(s.ckptLogName(), func(p []byte) error {
		if len(p) < 1 {
			return fmt.Errorf("empty checkpoint frame")
		}
		switch p[0] {
		case ckptImage:
			img := append([]byte(nil), p[1:]...)
			r := wire.NewReader(img)
			oid := r.OID()
			if r.Err() != nil {
				return fmt.Errorf("checkpoint frame: %w", r.Err())
			}
			images[oid] = img
		case ckptTombstone:
			oid, err := ids.FromBytes(p[1:])
			if err != nil {
				return fmt.Errorf("tombstone frame: %w", err)
			}
			delete(images, oid)
		default:
			return fmt.Errorf("unknown checkpoint frame kind %d", p[0])
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("gos: open checkpoint log: %w", err)
	}
	s.ckptLog = lg
	s.ckptImages = images

	type pending struct {
		spec core.ReplicaSpec
	}
	var specs []pending
	for oid, b := range images {
		spec, err := decodeCheckpoint(b)
		if err != nil {
			return fmt.Errorf("gos: checkpoint %s: %w", oid.Short(), err)
		}
		specs = append(specs, pending{spec: spec})
	}
	sort.SliceStable(specs, func(i, j int) bool {
		return rolePriority(specs[i].spec.Role) < rolePriority(specs[j].spec.Role)
	})

	for _, p := range specs {
		p.spec.Store = s.chunks
		lr, ca, err := s.cfg.Runtime.NewReplica(p.spec, s.disp)
		if err != nil {
			return fmt.Errorf("gos: recover %s: %w", p.spec.OID.Short(), err)
		}
		if _, err := s.register(p.spec.OID, ca); err != nil {
			lr.Close()
			return fmt.Errorf("gos: re-register %s: %w", p.spec.OID.Short(), err)
		}
		// Re-pin the surviving checkpoint's refs so the durable image
		// keeps protecting its chunks until the next checkpoint.
		refs, err := stateRefsOf(lr.Semantics(), p.spec.InitState)
		if err == nil && refs != nil {
			if err := s.chunks.Retain(refs); err == nil {
				s.mu.Lock()
				s.pins[p.spec.OID] = refs
				s.mu.Unlock()
			}
		}
		s.mu.Lock()
		s.objects[p.spec.OID] = &hosted{lr: lr, spec: p.spec, ca: ca}
		s.mu.Unlock()
		s.cfg.Logf("gos: recovered replica %s (%s/%s)", p.spec.OID.Short(), p.spec.Protocol, p.spec.Role)
	}
	// Everything the recovered manifests reference is now retained;
	// whatever remains unreferenced is an orphan a crash left behind
	// (content written but never checkpointed). Reclaim it.
	if chunks, bytes := s.chunks.Sweep(); chunks > 0 {
		s.cfg.Logf("gos: swept %d orphaned chunks (%d bytes)", chunks, bytes)
	}
	return nil
}

func decodeCheckpoint(b []byte) (core.ReplicaSpec, error) {
	r := wire.NewReader(b)
	var spec core.ReplicaSpec
	spec.OID = r.OID()
	spec.Impl = r.Str()
	spec.Protocol = r.Str()
	spec.Role = r.Str()
	n := r.Count()
	if r.Err() != nil {
		return core.ReplicaSpec{}, r.Err()
	}
	if n > 0 {
		spec.Params = make(map[string]string, n)
	}
	for i := 0; i < n; i++ {
		k := r.Str()
		spec.Params[k] = r.Str()
	}
	peerBytes := r.Bytes32()
	state := r.Bytes32()
	if err := r.Done(); err != nil {
		return core.ReplicaSpec{}, err
	}
	peers, err := gls.DecodeAddrs(peerBytes)
	if err != nil {
		return core.ReplicaSpec{}, err
	}
	spec.Peers = peers
	spec.InitState = append([]byte(nil), state...)
	return spec, nil
}

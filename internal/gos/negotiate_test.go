package gos

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"gdn/internal/core"
	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/pkgobj"
	"gdn/internal/repl"
	"gdn/internal/store"
)

// stagePackage builds a staged package with one deterministic file of
// the given size and returns it with its marshalled state and refs.
func stagePackage(t *testing.T, name string, size int) (*pkgobj.Package, []byte, []store.Ref, []byte) {
	t.Helper()
	content := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(content)
	staged := pkgobj.New()
	stub := pkgobj.NewStub(core.NewLocalLR(ids.Nil, staged))
	if err := stub.UploadFile(name, content); err != nil {
		t.Fatal(err)
	}
	state, err := staged.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	refs, err := pkgobj.StateRefs(state)
	if err != nil {
		t.Fatal(err)
	}
	return staged, state, refs, content
}

// TestRedeployUnchangedPackageUploadsNoChunks is the negotiation
// acceptance check: deploying a package a second time moves zero chunk
// bodies, counted three ways — the client's upload stats, the server
// store's counters, and the simulated network's byte meter.
func TestRedeployUnchangedPackageUploadsNoChunks(t *testing.T) {
	f := newFixture(t, nil)
	srv := f.startGOS("eu-gos", t.TempDir(), nil)

	const size = 800_123 // four chunks, not chunk-aligned
	staged, state, refs, _ := stagePackage(t, "big.bin", size)

	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer cl.Close()

	stats, _, err := cl.PutChunks(staged.Store(), refs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != stats.Offered || stats.Sent == 0 {
		t.Fatalf("first deploy sent %d of %d chunks; want all", stats.Sent, stats.Offered)
	}
	if _, _, _, err := cl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
		InitState: state,
	}); err != nil {
		t.Fatal(err)
	}

	// Re-deploy: the negotiation names nothing missing.
	before := srv.Chunks().Stats()
	f.net.ResetMeter()
	stats, _, err = cl.PutChunks(staged.Store(), refs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != 0 || stats.SentBytes != 0 {
		t.Fatalf("re-deploy uploaded %d chunks (%d bytes), want none", stats.Sent, stats.SentBytes)
	}
	after := srv.Chunks().Stats()
	if after.Dedup != before.Dedup {
		t.Fatalf("server store saw %d redundant Puts during re-deploy, want 0", after.Dedup-before.Dedup)
	}
	if after.Chunks != before.Chunks || after.Bytes != before.Bytes {
		t.Fatalf("server store changed across a no-op re-deploy: %+v -> %+v", before, after)
	}
	if moved := f.net.Meter().TotalBytes(); moved > 64<<10 {
		t.Fatalf("re-deploy negotiation moved %d bytes on the wire; content (%d bytes) leaked through", moved, size)
	}
}

// TestScrubbedChunkRepairedByNextFetch drives the full corruption
// lifecycle: silent on-disk rot at a slave is caught by the scrubber,
// quarantined, and healed by the next state transfer's delta sync —
// without any operator action.
func TestScrubbedChunkRepairedByNextFetch(t *testing.T) {
	f := newFixture(t, nil)
	slaveDir := t.TempDir()
	f.startGOS("eu-gos", t.TempDir(), nil)
	slaveSrv := f.startGOS("us-gos", slaveDir, nil)

	const size = 800_123
	staged, state, refs, content := stagePackage(t, "big.bin", size)

	euCl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer euCl.Close()
	usCl := NewClient(f.net, "mod", "us-gos:gos-cmd", nil)
	defer usCl.Close()
	if _, _, err := euCl.PutChunks(staged.Store(), refs); err != nil {
		t.Fatal(err)
	}
	oid, masterCA, _, err := euCl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.MasterSlave, Role: repl.RoleMaster,
		InitState: state,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := usCl.CreateReplica(CreateRequest{
		OID: oid, Impl: pkgobj.Impl, Protocol: repl.MasterSlave, Role: repl.RoleSlave,
		Peers: []gls.ContactAddress{masterCA},
	}); err != nil {
		t.Fatal(err)
	}

	// Rot one chunk on the slave's disk behind the store's back.
	victim := refs[1]
	chunkPath := filepath.Join(slaveDir, "chunks", victim.String()[:2], victim.String())
	raw, err := os.ReadFile(chunkPath)
	if err != nil {
		t.Fatalf("read slave chunk file: %v", err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(chunkPath, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	res := slaveSrv.Chunks().Scrub(-1)
	if len(res.Quarantined) != 1 || res.Quarantined[0] != victim {
		t.Fatalf("scrub quarantined %v, want [%s]", res.Quarantined, victim.Short())
	}

	// The slave cannot serve the file while the chunk is quarantined.
	usLR, _, err := f.rts["us-gos"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer usLR.Close()
	usStub := pkgobj.NewStub(usLR)
	if err := usStub.VerifyFile("big.bin"); err == nil {
		t.Fatal("slave served a file with a quarantined chunk")
	}

	// The next write pushes state; the slave's delta sync notices the
	// quarantined ref is missing and refetches it from the master.
	modLR, _, err := f.rts["mod"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer modLR.Close()
	if err := pkgobj.NewStub(modLR).SetMeta("release", "2"); err != nil {
		t.Fatal(err)
	}

	got, err := usStub.GetFileContents("big.bin")
	if err != nil {
		t.Fatalf("slave read after repair: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("repaired content does not match the original")
	}
	if st := slaveSrv.Chunks().Stats(); st.Repaired != 1 {
		t.Fatalf("slave store Repaired = %d, want 1", st.Repaired)
	}
}

// TestUploadFileNegotiatedDelta checks the moderator update path: an
// unchanged re-upload touches nothing, and a small change ships only
// the changed chunk — no redundant chunk body reaches the master's
// store either way.
func TestUploadFileNegotiatedDelta(t *testing.T) {
	f := newFixture(t, nil)
	masterSrv := f.startGOS("eu-gos", "", nil)
	f.startGOS("us-gos", "", nil)

	euCl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer euCl.Close()
	usCl := NewClient(f.net, "mod", "us-gos:gos-cmd", nil)
	defer usCl.Close()
	oid, masterCA, _, err := euCl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.MasterSlave, Role: repl.RoleMaster,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := usCl.CreateReplica(CreateRequest{
		OID: oid, Impl: pkgobj.Impl, Protocol: repl.MasterSlave, Role: repl.RoleSlave,
		Peers: []gls.ContactAddress{masterCA},
	}); err != nil {
		t.Fatal(err)
	}

	const size = 800_123
	content := make([]byte, size)
	rand.New(rand.NewSource(11)).Read(content)

	// Bind at the master's own site: a GLS lookup finds the nearest
	// replica (§3.5 — from a third site it may return only the slave,
	// in which case UploadFile correctly falls back to content-bearing
	// writes), and this test asserts on the negotiated path, so it
	// needs the master's contact address deterministically.
	modLR, _, err := f.rts["eu-gos"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer modLR.Close()
	modStub := pkgobj.NewStub(modLR)
	if err := modStub.UploadFile("big.bin", content); err != nil {
		t.Fatal(err)
	}

	// Unchanged re-upload: the Stat short-circuit means no write, no
	// chunk traffic, no store churn at all.
	before := masterSrv.Chunks().Stats()
	f.net.ResetMeter()
	if err := modStub.UploadFile("big.bin", content); err != nil {
		t.Fatal(err)
	}
	if after := masterSrv.Chunks().Stats(); after != before {
		t.Fatalf("unchanged re-upload churned the master store: %+v -> %+v", before, after)
	}
	if moved := f.net.Meter().TotalBytes(); moved > 16<<10 {
		t.Fatalf("unchanged re-upload moved %d bytes", moved)
	}

	// Change the tail chunk only: exactly the delta travels, and the
	// unchanged chunks are never re-Put (the negotiation filtered them
	// before their bodies could reach the wire).
	changed := append([]byte(nil), content...)
	changed[len(changed)-10] ^= 0xFF
	before = masterSrv.Chunks().Stats()
	f.net.ResetMeter()
	if err := modStub.UploadFile("big.bin", changed); err != nil {
		t.Fatal(err)
	}
	if after := masterSrv.Chunks().Stats(); after.Dedup != before.Dedup {
		t.Fatalf("changed-tail re-upload re-Put %d unchanged chunks", after.Dedup-before.Dedup)
	}
	// The tail chunk is ~13.5 KB; the full file is 800 KB. Bound the
	// wire generously below full-content reship (which would also hit
	// the slave push): changed chunk to master + state push + slave
	// delta fetch of the same chunk.
	if moved := f.net.Meter().TotalBytes(); moved > 200<<10 {
		t.Fatalf("changed-tail re-upload moved %d bytes; delta sync is not filtering", moved)
	}

	// The slave converged on the new content.
	usLR, _, err := f.rts["us-gos"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer usLR.Close()
	got, err := pkgobj.NewStub(usLR).GetFileContents("big.bin")
	if err != nil || !bytes.Equal(got, changed) {
		t.Fatalf("slave content diverged after delta upload: %v", err)
	}
}

package gos

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gdn/internal/core"
	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/netsim"
	"gdn/internal/pkgobj"
	"gdn/internal/repl"
	"gdn/internal/store"
)

// Replica-health tests: leases age dead servers out of the location
// service, heartbeats keep live ones in, and chronic scrub corruption
// drains (then heals and undrains) a server's replicas.

type healthClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *healthClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *healthClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// healthFixture is a world whose sites all attach to one shared leaf
// directory node (at the hub), so every replica of an object lands in
// one GLS record — the shape intra-region failover and drain filtering
// operate on. The tree runs on a controllable clock with the janitor
// disabled; tests drive expiry explicitly.
type healthFixture struct {
	t     *testing.T
	net   *netsim.Network
	tree  *gls.Tree
	clock *healthClock
	reg   *core.Registry
	rts   map[string]*core.Runtime
}

func newHealthFixture(t *testing.T) *healthFixture {
	t.Helper()
	f := &healthFixture{
		t:     t,
		net:   netsim.New(nil),
		clock: &healthClock{now: time.Unix(1_000_000_000, 0)},
		rts:   make(map[string]*core.Runtime),
	}
	f.net.AddSite("hub", "hub", "core")
	f.net.AddSite("eu-gos", "nl", "eu")
	f.net.AddSite("us-gos", "ca", "us")
	f.net.AddSite("mod", "de", "eu")

	tree, err := gls.Deploy(f.net, gls.DomainSpec{
		Name: "root", Sites: []string{"hub"},
		Children: []gls.DomainSpec{gls.Leaf("lan", "hub")},
	}, gls.WithTreeClock(f.clock.Now), gls.WithTreeSweep(-1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	f.tree = tree

	f.reg = core.NewRegistry()
	pkgobj.Register(f.reg)
	repl.RegisterAll(f.reg)

	for _, site := range []string{"eu-gos", "us-gos", "mod"} {
		res, err := tree.Resolver(site, "lan")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { res.Close() })
		f.rts[site] = core.NewRuntime(core.RuntimeConfig{
			Site: site, Net: f.net, Resolver: res, Registry: f.reg,
		})
	}
	return f
}

func (f *healthFixture) startGOS(site string, cfg Config) *Server {
	f.t.Helper()
	cfg.Site = site
	cfg.CmdAddr = site + ":gos-cmd"
	cfg.ObjAddr = site + ":gos-obj"
	cfg.Runtime = f.rts[site]
	srv, err := Start(f.net, cfg)
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { srv.Close() })
	return srv
}

func (f *healthFixture) lookup(oid ids.OID) ([]gls.ContactAddress, error) {
	addrs, _, err := f.rts["mod"].Resolver().Lookup(oid)
	return addrs, err
}

func TestCrashedServerLeaseAgesOut(t *testing.T) {
	f := newHealthFixture(t)
	srv := f.startGOS("eu-gos", Config{LeaseTTL: 10 * time.Second})

	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer cl.Close()
	oid, _, _, err := cl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if addrs, err := f.lookup(oid); err != nil || len(addrs) != 1 {
		t.Fatalf("lookup while server lives: %v (%d addrs)", err, len(addrs))
	}

	// Heartbeats renew the lease past its original expiry.
	f.clock.Advance(8 * time.Second)
	srv.Heartbeat()
	f.clock.Advance(8 * time.Second)
	if addrs, err := f.lookup(oid); err != nil || len(addrs) != 1 {
		t.Fatalf("lookup after renewal: %v (%d addrs)", err, len(addrs))
	}

	// The server dies (Close keeps registrations, like a crash); one
	// TTL later the replica has vanished from fresh lookups — no more
	// contact addresses pointing at a corpse.
	srv.Close()
	f.clock.Advance(11 * time.Second)
	if _, err := f.lookup(oid); !errors.Is(err, gls.ErrNotFound) {
		t.Fatalf("lookup one TTL after crash = %v, want ErrNotFound", err)
	}
}

// TestHeartbeatIsOneRenewalForManyReplicas pins the control-plane
// contract of registration sessions: a server hosting N replicas costs
// the location service O(1) RPCs per heartbeat interval, not O(N) —
// the renewal touches the session, never the entries.
func TestHeartbeatIsOneRenewalForManyReplicas(t *testing.T) {
	f := newHealthFixture(t)
	srv := f.startGOS("eu-gos", Config{LeaseTTL: 30 * time.Second})

	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer cl.Close()
	const replicas = 24
	var oids []ids.OID
	for i := 0; i < replicas; i++ {
		oid, _, _, err := cl.CreateReplica(CreateRequest{
			Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
		})
		if err != nil {
			t.Fatalf("create replica %d: %v", i, err)
		}
		oids = append(oids, oid)
	}

	leaf := f.tree.Nodes("lan")[0]
	before := leaf.Stats()
	const beats = 4
	for i := 0; i < beats; i++ {
		f.clock.Advance(10 * time.Second)
		srv.Heartbeat()
	}
	after := leaf.Stats()
	if got := after.Inserts - before.Inserts; got != 0 {
		t.Fatalf("heartbeats performed %d per-replica inserts, want 0", got)
	}
	if got := after.SessionRenews - before.SessionRenews; got != beats {
		t.Fatalf("SessionRenews delta = %d, want %d (one per heartbeat)", got, beats)
	}
	// The renewals actually kept all the replicas alive.
	for _, oid := range []ids.OID{oids[0], oids[replicas-1]} {
		if addrs, err := f.lookup(oid); err != nil || len(addrs) != 1 {
			t.Fatalf("lookup after heartbeats: %v (%d addrs)", err, len(addrs))
		}
	}
	// And a removed replica leaves the session's re-attach set: a later
	// renewal-driven re-attach cannot resurrect it.
	if _, err := cl.RemoveReplica(oids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.lookup(oids[0]); !errors.Is(err, gls.ErrNotFound) {
		t.Fatalf("lookup of removed replica = %v, want ErrNotFound", err)
	}
}

func TestChronicScrubCorruptionDrainsThenHeals(t *testing.T) {
	f := newHealthFixture(t)
	stateDir := t.TempDir()
	// ScrubEvery < 0 disables the background loop; the test drives
	// passes by hand. DrainAfter 1: the first quarantined chunk is
	// chronic enough.
	master := f.startGOS("eu-gos", Config{StateDir: stateDir, ScrubEvery: -1, DrainAfter: 1})
	f.startGOS("us-gos", Config{})

	// A master/slave pair: the master's store holds the content on
	// disk (scrubbable), the slave is the healthy alternative lookups
	// should keep returning.
	mcl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer mcl.Close()
	oid, masterCA, _, err := mcl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.MasterSlave, Role: repl.RoleMaster,
	})
	if err != nil {
		t.Fatal(err)
	}

	content := bytes.Repeat([]byte("replicated bits "), 64)
	lr, _, err := f.rts["mod"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	stub := pkgobj.NewStub(lr)
	if err := stub.AddFile("blob", content); err != nil {
		t.Fatal(err)
	}

	scl := NewClient(f.net, "mod", "us-gos:gos-cmd", nil)
	defer scl.Close()
	if _, _, _, err := scl.CreateReplica(CreateRequest{
		OID: oid, Impl: pkgobj.Impl, Protocol: repl.MasterSlave, Role: repl.RoleSlave,
		Peers: []gls.ContactAddress{masterCA},
	}); err != nil {
		t.Fatal(err)
	}
	stub.Close()
	if addrs, err := f.lookup(oid); err != nil || len(addrs) != 2 {
		t.Fatalf("lookup with both replicas: %v (%d addrs)", err, len(addrs))
	}

	// Silent media corruption on the master's disk: flip bytes in the
	// content chunk's backing file.
	ref := store.RefOf(content)
	chunkPath := filepath.Join(stateDir, "chunks", ref.String()[:2], ref.String())
	data, err := os.ReadFile(chunkPath)
	if err != nil {
		t.Fatalf("read chunk file: %v", err)
	}
	data[0] ^= 0xFF
	if err := os.WriteFile(chunkPath, data, 0o600); err != nil {
		t.Fatal(err)
	}

	// The scrub pass quarantines the chunk, crosses the chronic
	// threshold and drains the master: fresh lookups now return only
	// the slave, without any registration being deleted.
	res := master.ScrubPass(0)
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined = %v, want the corrupted chunk", res.Quarantined)
	}
	if !master.Drained() {
		t.Fatal("server must drain after chronic corruption")
	}
	addrs, err := f.lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0].Address != "us-gos:gos-obj" {
		t.Fatalf("addrs while drained = %v, want just the slave", addrs)
	}

	// Repair: a verified re-Put of the content heals the quarantined
	// ref (in production the next delta sync does this); the following
	// clean full pass undrains the server.
	if _, err := master.Chunks().Put(content); err != nil {
		t.Fatal(err)
	}
	if res := master.ScrubPass(0); len(res.Quarantined) != 0 || !res.Wrapped {
		t.Fatalf("healing pass = %+v, want clean wrap", res)
	}
	if master.Drained() {
		t.Fatal("server must undrain after a clean wrap with no lost refs")
	}
	addrs, err = f.lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 {
		t.Fatalf("addrs after heal = %v, want both replicas", addrs)
	}
}

package gos

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"path/filepath"
	"testing"

	"gdn/internal/pkgobj"
	"gdn/internal/repl"
	"gdn/internal/store"
)

// TestCrashMidWriteRecoversVerifiedAndSweepsOrphans kills an object
// server between a content write and the next checkpoint, restarts it
// over the same state directory, and checks the two halves of the
// durability contract: recovered replicas serve exactly the content
// of the last checkpoint (verified against its SHA-256 manifest), and
// the chunks the interrupted write left behind — durable on disk but
// referenced by no checkpoint — are garbage collected by the
// recovery sweep.
func TestCrashMidWriteRecoversVerifiedAndSweepsOrphans(t *testing.T) {
	f := newFixture(t, nil)
	stateDir := t.TempDir()
	first := f.startGOS("eu-gos", stateDir, nil)

	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	oid, _, _, err := cl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Durable content: several distinct chunks of random bytes.
	payload := make([]byte, 3*pkgobj.DefaultChunkSize+12345)
	rand.New(rand.NewSource(42)).Read(payload)
	wantDigest := sha256.Sum256(payload)

	lr, _, err := f.rts["mod"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	stub := pkgobj.NewStub(lr)
	if err := stub.AddFile("pkg.tar", payload); err != nil {
		t.Fatal(err)
	}
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	durable := first.Chunks().Stats()

	// The interrupted write: fresh chunks reach the durable store, but
	// the server dies before any checkpoint references them.
	orphan := make([]byte, 2*pkgobj.DefaultChunkSize)
	rand.New(rand.NewSource(43)).Read(orphan)
	if err := stub.AddFile("wip.tar", orphan); err != nil {
		t.Fatal(err)
	}
	if got := first.Chunks().Stats().Chunks; got <= durable.Chunks {
		t.Fatalf("mid-write chunks not in store: %d <= %d", got, durable.Chunks)
	}
	lr.Close()
	cl.Close()
	first.Close() // crash: no checkpoint of wip.tar

	// A hard kill would leave the interrupted write's chunks on disk
	// with no manifest referencing them; simulate that by writing
	// orphans straight into the (now quiescent) chunk directory.
	orphanStore, err := store.Open(filepath.Join(stateDir, "chunks"))
	if err != nil {
		t.Fatal(err)
	}
	orphanRef, err := orphanStore.Put(orphan)
	if err != nil {
		t.Fatal(err)
	}

	// Reboot over the same directory.
	srv2 := f.restartGOS("eu-gos", stateDir)
	if srv2.Chunks().Has(orphanRef) {
		t.Fatal("crash-orphaned chunk survived the recovery sweep")
	}
	if srv2.Hosted() != 1 {
		t.Fatalf("recovered %d replicas, want 1", srv2.Hosted())
	}

	// Orphan GC: the store holds exactly the checkpointed chunk set
	// again; the interrupted write's chunks are gone from disk.
	if got := srv2.Chunks().Stats(); got.Chunks != durable.Chunks || got.Bytes != durable.Bytes {
		t.Fatalf("store after recovery = %d chunks/%d bytes, want %d/%d (orphans swept)",
			got.Chunks, got.Bytes, durable.Chunks, durable.Bytes)
	}

	// Content integrity: the recovered replica serves byte-identical,
	// digest-verified content.
	lr2, _, err := f.rts["mod"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer lr2.Close()
	stub2 := pkgobj.NewStub(lr2)
	if err := stub2.VerifyFile("pkg.tar"); err != nil {
		t.Fatalf("recovered content failed digest verification: %v", err)
	}
	got, err := stub2.GetFileContents("pkg.tar")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("recovered content differs: %v", err)
	}
	fi, err := stub2.Stat("pkg.tar")
	if err != nil || fi.Digest != wantDigest {
		t.Fatalf("recovered digest differs: %v", err)
	}
	if _, err := stub2.GetFileContents("wip.tar"); err == nil {
		t.Fatal("uncheckpointed file must be gone after crash")
	}
}

// TestCheckpointPinsSurviveLiveChurn overwrites a checkpointed file
// and verifies the superseded checkpoint's chunks stay on disk until
// the next checkpoint replaces the durable image — a crash at any
// point must find every chunk its on-disk manifests name.
func TestCheckpointPinsSurviveLiveChurn(t *testing.T) {
	f := newFixture(t, nil)
	stateDir := t.TempDir()
	srv := f.startGOS("eu-gos", stateDir, nil)

	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer cl.Close()
	oid, _, _, err := cl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	})
	if err != nil {
		t.Fatal(err)
	}

	v1 := make([]byte, pkgobj.DefaultChunkSize+100)
	rand.New(rand.NewSource(1)).Read(v1)
	lr, _, err := f.rts["mod"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Close()
	stub := pkgobj.NewStub(lr)
	if err := stub.AddFile("f", v1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	v1ref := store.RefOf(v1[:pkgobj.DefaultChunkSize])

	// Overwrite: live state releases v1's chunks, but the checkpoint
	// still references them, so they must survive on disk.
	v2 := make([]byte, pkgobj.DefaultChunkSize)
	rand.New(rand.NewSource(2)).Read(v2)
	if err := stub.AddFile("f", v2); err != nil {
		t.Fatal(err)
	}
	if !srv.Chunks().Has(v1ref) {
		t.Fatal("checkpointed chunk deleted while its on-disk manifest still references it")
	}

	// The next checkpoint supersedes the old image; only then may the
	// old content go.
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if srv.Chunks().Has(v1ref) {
		t.Fatal("superseded checkpoint chunk survived the new checkpoint")
	}
}

package gos

import (
	"fmt"
	"time"

	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/rpc"
	"gdn/internal/sec"
	"gdn/internal/store"
	"gdn/internal/transport"
	"gdn/internal/wire"
)

// Client commands one Globe Object Server; moderator tools hold one per
// server in a replication scenario.
type Client struct {
	rpc *rpc.Client
}

// NewClient connects to the GOS command endpoint at addr. auth carries
// the caller's (moderator) credentials when the server enforces
// admission.
func NewClient(net transport.Network, site, addr string, auth *sec.Config) *Client {
	var opts []rpc.ClientOption
	if auth != nil {
		opts = append(opts, rpc.WithClientWrapper(auth.WrapClient))
	}
	return &Client{rpc: rpc.NewClient(net, site, addr, opts...)}
}

// Addr returns the server's command address.
func (c *Client) Addr() string { return c.rpc.Addr() }

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }

// CreateReplica asks the server to host one replica, returning the
// object identifier (allocated when the request's was nil) and the
// registered contact address.
func (c *Client) CreateReplica(req CreateRequest) (ids.OID, gls.ContactAddress, time.Duration, error) {
	resp, cost, err := c.rpc.Call(OpCreateReplica, req.Encode())
	if err != nil {
		return ids.Nil, gls.ContactAddress{}, cost, err
	}
	r := wire.NewReader(resp)
	oid := r.OID()
	caBytes := r.Bytes32()
	if err := r.Done(); err != nil {
		return ids.Nil, gls.ContactAddress{}, cost, err
	}
	cas, err := gls.DecodeAddrs(caBytes)
	if err != nil || len(cas) != 1 {
		return ids.Nil, gls.ContactAddress{}, cost, err
	}
	return oid, cas[0], cost, nil
}

// RemoveReplica tears one replica down and deregisters it.
func (c *Client) RemoveReplica(oid ids.OID) (time.Duration, error) {
	w := wire.NewWriter(ids.Size)
	w.OID(oid)
	_, cost, err := c.rpc.Call(OpRemoveReplica, w.Bytes())
	return cost, err
}

// ListReplicas returns the replicas the server hosts.
func (c *Client) ListReplicas() ([]ReplicaInfo, error) {
	resp, _, err := c.rpc.Call(OpListReplicas, nil)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	n := r.Count()
	if r.Err() != nil {
		return nil, r.Err()
	}
	infos := make([]ReplicaInfo, 0, n)
	for i := 0; i < n; i++ {
		infos = append(infos, ReplicaInfo{
			OID:      r.OID(),
			Impl:     r.Str(),
			Protocol: r.Str(),
			Role:     r.Str(),
		})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return infos, nil
}

// Checkpoint forces the server to write all replica state to disk.
func (c *Client) Checkpoint() error {
	_, _, err := c.rpc.Call(OpCheckpoint, nil)
	return err
}

// putChunksBatch bounds one OpPutChunks request so upload frames stay
// chunk-scaled, never content-scaled.
const (
	putChunksMaxRefs  = 16
	putChunksMaxBytes = 4 << 20
)

// PutChunks uploads content chunks into the server's store in bounded
// batches, returning the accumulated virtual cost. Duplicate refs are
// uploaded once. A moderator deploying a package uploads its staged
// chunks with this before sending the manifest-bearing create command.
func (c *Client) PutChunks(src *store.Store, refs []store.Ref) (time.Duration, error) {
	refs = dedupRefs(refs)
	var total time.Duration
	for len(refs) > 0 {
		var bodies [][]byte
		var bytes int64
		for _, ref := range refs {
			if len(bodies) == putChunksMaxRefs {
				break
			}
			data, err := src.Get(ref)
			if err != nil {
				return total, fmt.Errorf("gos: read chunk %s for upload: %w", ref.Short(), err)
			}
			if len(bodies) > 0 && bytes+int64(len(data)) > putChunksMaxBytes {
				break
			}
			bodies = append(bodies, data)
			bytes += int64(len(data))
		}
		w := wire.NewWriter(64 + int(bytes))
		w.Count(len(bodies))
		for i, data := range bodies {
			w.Hash(refs[i])
			w.Bytes32(data)
		}
		_, cost, err := c.rpc.Call(OpPutChunks, w.Bytes())
		total += cost
		if err != nil {
			return total, err
		}
		refs = refs[len(bodies):]
	}
	return total, nil
}

// dedupRefs drops duplicate refs, preserving order.
func dedupRefs(refs []store.Ref) []store.Ref {
	seen := make(map[store.Ref]bool, len(refs))
	out := refs[:0:0]
	for _, r := range refs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// ServerInfo describes one object server.
type ServerInfo struct {
	Site    string
	ObjAddr string
	Hosted  int
}

// Info returns the server's site, replica-traffic address and load.
func (c *Client) Info() (ServerInfo, error) {
	resp, _, err := c.rpc.Call(OpServerInfo, nil)
	if err != nil {
		return ServerInfo{}, err
	}
	r := wire.NewReader(resp)
	info := ServerInfo{Site: r.Str(), ObjAddr: r.Str(), Hosted: int(r.Uint32())}
	if err := r.Done(); err != nil {
		return ServerInfo{}, err
	}
	return info, nil
}

package gos

import (
	"fmt"
	"time"

	"gdn/internal/core"
	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/rpc"
	"gdn/internal/sec"
	"gdn/internal/store"
	"gdn/internal/transport"
	"gdn/internal/wire"
)

// Client commands one Globe Object Server; moderator tools hold one per
// server in a replication scenario.
type Client struct {
	rpc *rpc.Client
}

// NewClient connects to the GOS command endpoint at addr. auth carries
// the caller's (moderator) credentials when the server enforces
// admission.
func NewClient(net transport.Network, site, addr string, auth *sec.Config) *Client {
	var opts []rpc.ClientOption
	if auth != nil {
		opts = append(opts, rpc.WithClientWrapper(auth.WrapClient))
	}
	return &Client{rpc: rpc.NewClient(net, site, addr, opts...)}
}

// Addr returns the server's command address.
func (c *Client) Addr() string { return c.rpc.Addr() }

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }

// CreateReplica asks the server to host one replica, returning the
// object identifier (allocated when the request's was nil) and the
// registered contact address.
func (c *Client) CreateReplica(req CreateRequest) (ids.OID, gls.ContactAddress, time.Duration, error) {
	resp, cost, err := c.rpc.Call(OpCreateReplica, req.Encode())
	if err != nil {
		return ids.Nil, gls.ContactAddress{}, cost, err
	}
	r := wire.NewReader(resp)
	oid := r.OID()
	caBytes := r.Bytes32()
	if err := r.Done(); err != nil {
		return ids.Nil, gls.ContactAddress{}, cost, err
	}
	cas, err := gls.DecodeAddrs(caBytes)
	if err != nil || len(cas) != 1 {
		return ids.Nil, gls.ContactAddress{}, cost, err
	}
	return oid, cas[0], cost, nil
}

// RemoveReplica tears one replica down and deregisters it.
func (c *Client) RemoveReplica(oid ids.OID) (time.Duration, error) {
	w := wire.NewWriter(ids.Size)
	w.OID(oid)
	_, cost, err := c.rpc.Call(OpRemoveReplica, w.Bytes())
	return cost, err
}

// ListReplicas returns the replicas the server hosts.
func (c *Client) ListReplicas() ([]ReplicaInfo, error) {
	resp, _, err := c.rpc.Call(OpListReplicas, nil)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	n := r.Count()
	if r.Err() != nil {
		return nil, r.Err()
	}
	infos := make([]ReplicaInfo, 0, n)
	for i := 0; i < n; i++ {
		infos = append(infos, ReplicaInfo{
			OID:      r.OID(),
			Impl:     r.Str(),
			Protocol: r.Str(),
			Role:     r.Str(),
		})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return infos, nil
}

// Checkpoint forces the server to write all replica state to disk.
func (c *Client) Checkpoint() error {
	_, _, err := c.rpc.Call(OpCheckpoint, nil)
	return err
}

// UploadStats reports what a negotiated chunk upload actually moved;
// tests and deploy tooling read it to confirm that re-deploys of
// unchanged content short-circuit.
type UploadStats struct {
	// Offered counts the deduplicated refs the deploy names.
	Offered int
	// Sent counts the chunk bodies that crossed the wire (the refs the
	// server was missing).
	Sent int
	// SentBytes is their content size.
	SentBytes int64
}

// MissingChunks asks the server which of refs its store lacks — the
// negotiation run before an upload. Batches are bounded so request
// bodies stay kilobytes regardless of package size.
func (c *Client) MissingChunks(refs []store.Ref) ([]store.Ref, time.Duration, error) {
	return core.MissingChunksVia(func(body []byte) ([]byte, time.Duration, error) {
		return c.rpc.Call(OpChunkHave, body)
	}, refs)
}

// PutChunks makes every listed chunk present in the server's store,
// shipping only the ones it is missing: a which-of-these-do-you-have
// negotiation (OpChunkHave) names the gaps, and their bodies flow over
// one upload stream (OpPutChunks), a chunk per frame, so peak
// buffering is O(chunk) at both ends and a re-deploy of unchanged
// content uploads nothing. A moderator deploying a package runs this
// before sending the manifest-bearing create command.
func (c *Client) PutChunks(src *store.Store, refs []store.Ref) (UploadStats, time.Duration, error) {
	refs = dedupRefs(refs)
	stats := UploadStats{Offered: len(refs)}

	missing, total, err := c.MissingChunks(refs)
	if err != nil {
		return stats, total, err
	}
	if len(missing) == 0 {
		return stats, total, nil
	}

	us, err := c.rpc.CallUpload(OpPutChunks, nil)
	if err != nil {
		return stats, total, err
	}
	for _, ref := range missing {
		data, gerr := src.Get(ref)
		if gerr != nil {
			us.Cancel()
			return stats, total, fmt.Errorf("gos: read chunk %s for upload: %w", ref.Short(), gerr)
		}
		if err := us.Send(data); err != nil {
			// The server already answered; CloseAndRecv reports why.
			break
		}
		stats.Sent++
		stats.SentBytes += int64(len(data))
	}
	_, cost, err := us.CloseAndRecv()
	total += cost
	return stats, total, err
}

// dedupRefs drops duplicate refs, preserving order.
func dedupRefs(refs []store.Ref) []store.Ref {
	seen := make(map[store.Ref]bool, len(refs))
	out := refs[:0:0]
	for _, r := range refs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// ServerInfo describes one object server.
type ServerInfo struct {
	Site    string
	ObjAddr string
	Hosted  int
}

// Info returns the server's site, replica-traffic address and load.
func (c *Client) Info() (ServerInfo, error) {
	resp, _, err := c.rpc.Call(OpServerInfo, nil)
	if err != nil {
		return ServerInfo{}, err
	}
	r := wire.NewReader(resp)
	info := ServerInfo{Site: r.Str(), ObjAddr: r.Str(), Hosted: int(r.Uint32())}
	if err := r.Done(); err != nil {
		return ServerInfo{}, err
	}
	return info, nil
}

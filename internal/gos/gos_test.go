package gos

import (
	"bytes"
	"strings"
	"testing"

	"gdn/internal/core"
	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/netsim"
	"gdn/internal/pkgobj"
	"gdn/internal/repl"
	"gdn/internal/sec"
)

// fixture: a two-region world with a GLS tree and two object servers.
type fixture struct {
	t    *testing.T
	net  *netsim.Network
	tree *gls.Tree
	reg  *core.Registry
	rts  map[string]*core.Runtime
}

func newFixture(t *testing.T, auths map[string]*sec.Config) *fixture {
	t.Helper()
	f := &fixture{
		t:   t,
		net: netsim.New(nil),
		rts: make(map[string]*core.Runtime),
	}
	f.net.AddSite("hub", "hub", "core")
	f.net.AddSite("eu-gos", "nl", "eu")
	f.net.AddSite("us-gos", "ca", "us")
	f.net.AddSite("mod", "de", "eu")

	tree, err := gls.Deploy(f.net, gls.DomainSpec{
		Name: "root", Sites: []string{"hub"},
		Children: []gls.DomainSpec{
			gls.Leaf("eu", "eu-gos"),
			gls.Leaf("us", "us-gos"),
			gls.Leaf("eu2", "mod"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	f.tree = tree

	f.reg = core.NewRegistry()
	pkgobj.Register(f.reg)
	repl.RegisterAll(f.reg)

	for site, leaf := range map[string]string{"eu-gos": "eu", "us-gos": "us", "mod": "eu2"} {
		res, err := tree.Resolver(site, leaf)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { res.Close() })
		f.rts[site] = core.NewRuntime(core.RuntimeConfig{
			Site: site, Net: f.net, Resolver: res, Registry: f.reg,
			Auth: auths[site],
		})
	}
	return f
}

func (f *fixture) startGOS(site, stateDir string, auth *sec.Config) *Server {
	f.t.Helper()
	srv, err := Start(f.net, Config{
		Site:     site,
		CmdAddr:  site + ":gos-cmd",
		ObjAddr:  site + ":gos-obj",
		Runtime:  f.rts[site],
		StateDir: stateDir,
		Auth:     auth,
	})
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { srv.Close() })
	return srv
}

func TestCreateFirstReplicaAllocatesOID(t *testing.T) {
	f := newFixture(t, nil)
	f.startGOS("eu-gos", "", nil)

	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer cl.Close()

	oid, ca, cost, err := cl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if oid.IsNil() {
		t.Fatal("create-first-replica must allocate an OID")
	}
	if ca.Address != "eu-gos:gos-obj" || ca.Protocol != repl.ClientServer {
		t.Fatalf("contact address = %+v", ca)
	}
	if cost <= 0 {
		t.Fatal("creation must report GLS registration cost")
	}

	// The replica is discoverable and usable through a normal bind.
	lr, _, err := f.rts["mod"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Close()
	stub := pkgobj.NewStub(lr)
	if err := stub.AddFile("README", []byte("gcc")); err != nil {
		t.Fatal(err)
	}
	data, err := stub.GetFileContents("README")
	if err != nil || string(data) != "gcc" {
		t.Fatalf("read back = %q, %v", data, err)
	}
}

func TestCreateSecondReplicaAndReplication(t *testing.T) {
	f := newFixture(t, nil)
	f.startGOS("eu-gos", "", nil)
	f.startGOS("us-gos", "", nil)

	euCl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer euCl.Close()
	usCl := NewClient(f.net, "mod", "us-gos:gos-cmd", nil)
	defer usCl.Close()

	// Master in the EU (the paper's "create first replica" step) ...
	oid, masterCA, _, err := euCl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.MasterSlave, Role: repl.RoleMaster,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ... then "bind to DSO <OID>, create replica" at the US server.
	oid2, _, _, err := usCl.CreateReplica(CreateRequest{
		OID: oid, Impl: pkgobj.Impl, Protocol: repl.MasterSlave, Role: repl.RoleSlave,
		Peers: []gls.ContactAddress{masterCA},
	})
	if err != nil {
		t.Fatal(err)
	}
	if oid2 != oid {
		t.Fatal("second replica must keep the object identifier")
	}

	// A moderator writes through a bind; a US client reads from its
	// local slave.
	modLR, _, err := f.rts["mod"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer modLR.Close()
	if err := pkgobj.NewStub(modLR).AddFile("f", []byte("content")); err != nil {
		t.Fatal(err)
	}

	usLR, _, err := f.rts["us-gos"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer usLR.Close()
	data, err := pkgobj.NewStub(usLR).GetFileContents("f")
	if err != nil || string(data) != "content" {
		t.Fatalf("slave read = %q, %v", data, err)
	}
}

func TestRemoveReplicaDeregisters(t *testing.T) {
	f := newFixture(t, nil)
	f.startGOS("eu-gos", "", nil)
	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer cl.Close()

	oid, _, _, err := cl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RemoveReplica(oid); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.rts["mod"].Bind(oid); err == nil {
		t.Fatal("bind after removal must fail")
	}
	if _, err := cl.RemoveReplica(oid); err == nil {
		t.Fatal("double removal must fail")
	}
}

func TestListReplicas(t *testing.T) {
	f := newFixture(t, nil)
	srv := f.startGOS("eu-gos", "", nil)
	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer cl.Close()

	for i := 0; i < 3; i++ {
		if _, _, _, err := cl.CreateReplica(CreateRequest{
			Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
		}); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := cl.ListReplicas()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 || srv.Hosted() != 3 {
		t.Fatalf("replicas = %d / hosted = %d", len(infos), srv.Hosted())
	}
	for _, info := range infos {
		if info.Impl != pkgobj.Impl || info.Role != repl.RoleServer {
			t.Fatalf("info = %+v", info)
		}
	}
}

func TestCrashRecoveryRestoresStateAndRegistration(t *testing.T) {
	f := newFixture(t, nil)
	stateDir := t.TempDir()
	first := f.startGOS("eu-gos", stateDir, nil)

	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	oid, _, _, err := cl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fill with content, checkpoint, then crash.
	lr, _, err := f.rts["mod"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	stub := pkgobj.NewStub(lr)
	payload := bytes.Repeat([]byte("data"), 10_000)
	if err := stub.AddFile("pkg.tar", payload); err != nil {
		t.Fatal(err)
	}
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	lr.Close()
	cl.Close()
	first.Close() // crash

	srv2 := f.restartGOS("eu-gos", stateDir)
	if srv2.Hosted() != 1 {
		t.Fatalf("recovered %d replicas, want 1", srv2.Hosted())
	}

	// The object answers again at the same address with its state.
	lr2, _, err := f.rts["mod"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer lr2.Close()
	data, err := pkgobj.NewStub(lr2).GetFileContents("pkg.tar")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("recovered state differs")
	}
}

// restartGOS simulates a reboot: close the old server (the fixture's
// cleanup will find it already closed) and start a fresh one on the
// same addresses and state directory.
func (f *fixture) restartGOS(site, stateDir string) *Server {
	f.t.Helper()
	// The old listener must be gone before the address can be reused;
	// tests call Close (crash) or Shutdown (orderly) before restarting.
	srv, err := Start(f.net, Config{
		Site:     site,
		CmdAddr:  site + ":gos-cmd2",
		ObjAddr:  site + ":gos-obj",
		Runtime:  f.rts[site],
		StateDir: stateDir,
	})
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { srv.Close() })
	return srv
}

func TestUncheckpointedWritesAreLostOnCrash(t *testing.T) {
	// Negative space of persistence: state written after the last
	// checkpoint does not survive — documenting the paper's model where
	// replicas "save their state during a reboot" (orderly), not
	// continuously.
	f := newFixture(t, nil)
	stateDir := t.TempDir()
	first := f.startGOS("eu-gos", stateDir, nil)

	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	oid, _, _, err := cl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	})
	if err != nil {
		t.Fatal(err)
	}
	lr, _, err := f.rts["mod"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	stub := pkgobj.NewStub(lr)
	if err := stub.AddFile("before", []byte("checkpointed")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := stub.AddFile("after", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	lr.Close()
	cl.Close()
	first.Close() // crash without checkpoint

	f.restartGOS("eu-gos", stateDir)
	lr2, _, err := f.rts["mod"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer lr2.Close()
	stub2 := pkgobj.NewStub(lr2)
	if _, err := stub2.GetFileContents("before"); err != nil {
		t.Fatal("checkpointed file lost")
	}
	if _, err := stub2.GetFileContents("after"); err == nil {
		t.Fatal("uncheckpointed file must be gone after crash")
	}
}

func TestShutdownCheckpointsEverything(t *testing.T) {
	f := newFixture(t, nil)
	stateDir := t.TempDir()
	first := f.startGOS("eu-gos", stateDir, nil)

	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	oid, _, _, err := cl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	})
	if err != nil {
		t.Fatal(err)
	}
	lr, _, err := f.rts["mod"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	if err := pkgobj.NewStub(lr).AddFile("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	lr.Close()
	cl.Close()
	if err := first.Shutdown(); err != nil {
		t.Fatal(err)
	}

	f.restartGOS("eu-gos", stateDir)
	lr2, _, err := f.rts["mod"].Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer lr2.Close()
	if _, err := pkgobj.NewStub(lr2).GetFileContents("f"); err != nil {
		t.Fatal("orderly shutdown must persist unprompted")
	}
}

func TestCommandAdmissionControl(t *testing.T) {
	authority, err := sec.NewAuthority("gdn-root")
	if err != nil {
		t.Fatal(err)
	}
	mkAuth := func(role, id string) *sec.Config {
		creds, err := sec.NewCredentials(authority, sec.Principal(role, id), role)
		if err != nil {
			t.Fatal(err)
		}
		return &sec.Config{Creds: creds, TrustAnchors: authority.Anchors(), RequireClientAuth: true}
	}
	gosAuth := mkAuth(sec.RoleGOS, "eu-gos")
	modAuth := mkAuth(sec.RoleModerator, "alice")
	userAuth := mkAuth(sec.RoleUser, "mallory")

	f := newFixture(t, map[string]*sec.Config{"eu-gos": gosAuth})
	f.startGOS("eu-gos", "", gosAuth)

	mod := NewClient(f.net, "mod", "eu-gos:gos-cmd", modAuth)
	defer mod.Close()
	if _, _, _, err := mod.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	}); err != nil {
		t.Fatalf("moderator create: %v", err)
	}

	user := NewClient(f.net, "mod", "eu-gos:gos-cmd", userAuth)
	defer user.Close()
	if _, _, _, err := user.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	}); err == nil {
		t.Fatal("user create must be rejected")
	} else if !strings.Contains(err.Error(), "not authorized") {
		t.Fatalf("unexpected rejection: %v", err)
	}

	// An unauthenticated client cannot even complete the handshake.
	anon := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer anon.Close()
	if _, err := anon.ListReplicas(); err == nil {
		t.Fatal("anonymous command must fail")
	}
}

func TestCreateRequestRoundTrip(t *testing.T) {
	req := CreateRequest{
		OID:      ids.Derive("x"),
		Impl:     pkgobj.Impl,
		Protocol: repl.MasterSlave,
		Role:     repl.RoleSlave,
		Params:   map[string]string{"a": "1"},
		Peers: []gls.ContactAddress{
			{Protocol: repl.MasterSlave, Address: "m:obj", Impl: pkgobj.Impl, Role: repl.RoleMaster},
		},
		InitState: []byte{1, 2, 3},
	}
	got, err := decodeCreateRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.OID != req.OID || got.Impl != req.Impl || got.Role != req.Role ||
		len(got.Peers) != 1 || got.Peers[0] != req.Peers[0] ||
		!bytes.Equal(got.InitState, req.InitState) || got.Params["a"] != "1" {
		t.Fatalf("round trip: %+v", got)
	}

	// nil InitState survives as nil (distinguishes "no seed" from
	// "empty seed").
	req.InitState = nil
	got, err = decodeCreateRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.InitState != nil {
		t.Fatal("nil InitState must stay nil")
	}
}

func TestDuplicateHostingRejected(t *testing.T) {
	f := newFixture(t, nil)
	f.startGOS("eu-gos", "", nil)
	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer cl.Close()

	oid, _, _, err := cl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := cl.CreateReplica(CreateRequest{
		OID: oid, Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	}); err == nil {
		t.Fatal("hosting the same object twice must fail")
	}
}

package gos

import (
	"os"
	"path/filepath"
	"testing"

	"gdn/internal/pkgobj"
	"gdn/internal/repl"
)

// TestCheckpointLogSupersedesAndTombstones drives the append-log
// checkpoint lifecycle: repeated checkpoints append superseding image
// frames, removal appends a tombstone, and recovery replays to the
// latest surviving image per object.
func TestCheckpointLogSupersedesAndTombstones(t *testing.T) {
	f := newFixture(t, nil)
	stateDir := t.TempDir()
	srv := f.startGOS("eu-gos", stateDir, nil)

	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer cl.Close()
	doomed, _, _, err := cl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	})
	if err != nil {
		t.Fatal(err)
	}
	kept, _, _, err := cl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Checkpoint twice (two generations of image frames), then remove
	// one replica — its tombstone must retract both its images.
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RemoveReplica(doomed); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(stateDir, "checkpoints.log")); err != nil {
		t.Fatalf("no checkpoint log: %v", err)
	}
	entries, err := os.ReadDir(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".replica" {
			t.Fatalf("legacy per-replica file written: %s", e.Name())
		}
	}

	srv.Close() // crash
	srv2 := f.restartGOS("eu-gos", stateDir)
	if srv2.Hosted() != 1 {
		t.Fatalf("recovered %d replicas, want 1 (tombstoned one resurrected?)", srv2.Hosted())
	}
	if _, ok := srv2.HostedLR(kept); !ok {
		t.Fatalf("surviving replica %s not recovered", kept.Short())
	}
	if _, ok := srv2.HostedLR(doomed); ok {
		t.Fatalf("removed replica %s resurrected from stale image frames", doomed.Short())
	}
}

// TestLegacyReplicaFileMigratesIntoLog checks the upgrade path: a
// per-replica checkpoint file from an older server recovers, and the
// next checkpoint retires it in favour of a log frame.
func TestLegacyReplicaFileMigratesIntoLog(t *testing.T) {
	f := newFixture(t, nil)
	stateDir := t.TempDir()
	srv := f.startGOS("eu-gos", stateDir, nil)

	cl := NewClient(f.net, "mod", "eu-gos:gos-cmd", nil)
	defer cl.Close()
	oid, _, _, err := cl.CreateReplica(CreateRequest{
		Impl: pkgobj.Impl, Protocol: repl.ClientServer, Role: repl.RoleServer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Rewrite history into the legacy layout: the image as a
	// per-replica file, no checkpoint log.
	srv.mu.Lock()
	img := append([]byte(nil), srv.ckptImages[oid]...)
	srv.mu.Unlock()
	if len(img) == 0 {
		t.Fatal("no image recorded for checkpointed replica")
	}
	srv.Close() // crash
	if err := os.WriteFile(srv.checkpointName(oid), img, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(stateDir, "checkpoints.log")); err != nil {
		t.Fatal(err)
	}

	srv2 := f.restartGOS("eu-gos", stateDir)
	if srv2.Hosted() != 1 {
		t.Fatalf("recovered %d replicas from legacy file, want 1", srv2.Hosted())
	}
	// The next checkpoint supersedes the legacy file with a log frame.
	cl2 := NewClient(f.net, "mod", "eu-gos:gos-cmd2", nil)
	defer cl2.Close()
	if err := cl2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(srv2.checkpointName(oid)); !os.IsNotExist(err) {
		t.Fatalf("legacy file not retired after checkpoint: %v", err)
	}
	srv2.Close()
	srv3 := f.restartGOS("eu-gos", stateDir)
	_ = srv3
	if srv3.Hosted() != 1 {
		t.Fatalf("recovered %d replicas from migrated log, want 1", srv3.Hosted())
	}
}

package repl

import (
	"fmt"
	"time"

	"gdn/internal/core"
	"gdn/internal/obs"
	"gdn/internal/rpc"
	"gdn/internal/store"
)

// ClientServerProtocol returns the client/(single) server protocol: one
// replica holds the object's state and every invocation — read or
// write — executes there. It is the simplest of the two protocols the
// paper ships (§7) and the baseline every replicated scenario is
// measured against: cheap in server resources, expensive in wide-area
// traffic once clients are far away.
func ClientServerProtocol() *core.Protocol {
	return &core.Protocol{
		Name:       ClientServer,
		NewProxy:   newForwardingProxy,
		NewReplica: newCSServer,
	}
}

// csServer is the replica side: it executes everything locally, tracks
// a state version, and invalidates subscribed caches on writes.
type csServer struct {
	*replicaBase
}

func newCSServer(env *core.Env) (core.Replication, error) {
	if env.Disp == nil {
		return nil, fmt.Errorf("repl: %s server replica needs a dispatcher", ClientServer)
	}
	s := &csServer{replicaBase: newReplicaBase(env)}
	env.Disp.Register(env.OID, s.handle)
	return s, nil
}

// Invoke serves the hosting process's own use of the replica (an
// object server or HTTPD reading a co-resident object).
func (s *csServer) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	out, err := s.env.Exec.Execute(inv)
	var cost time.Duration
	if err == nil && inv.Write {
		s.bumpVersion()
		cost, err = s.invalidateCaches()
	}
	return out, cost, err
}

func (s *csServer) Close() error {
	s.env.Disp.Unregister(s.env.OID)
	s.closePeers()
	return nil
}

func (s *csServer) handle(call *rpc.Call) ([]byte, error) {
	if handled, resp, err := s.handleCommon(call); handled {
		return resp, err
	}
	if call.Op != core.OpInvoke {
		return nil, fmt.Errorf("repl: %s server: unexpected op %d", ClientServer, call.Op)
	}
	inv, err := core.DecodeInvocation(call.Body)
	if err != nil {
		return nil, err
	}
	if inv.Write {
		if err := authorizeWrite(s.env, call); err != nil {
			return nil, err
		}
	}
	out, err := s.env.Exec.Execute(inv)
	if err == nil && inv.Write {
		s.bumpVersion()
		cost, ierr := s.invalidateCaches()
		call.Charge(cost)
		if ierr != nil {
			s.env.Logf("repl: %s: cache invalidation: %v", ClientServer, ierr)
		}
	}
	return out, err
}

// invalidateCaches notifies invalidation-mode caches that their copy is
// stale. Failures are logged, not fatal: a dead cache only rejoins
// colder.
func (s *csServer) invalidateCaches() (time.Duration, error) {
	subs := s.subscribers(RoleCache)
	if len(subs) == 0 {
		return 0, nil
	}
	addrs := make([]string, len(subs))
	for i, sub := range subs {
		addrs[i] = sub.addr
	}
	return s.pushAll(addrs, core.OpInvalidate, nil)
}

// forwardingProxyPrefs is the capability order forwardingProxy ranks
// candidates by: the most capable representative the location service
// returned serves every invocation.
var forwardingProxyPrefs = []string{RoleServer, RoleMaster, RoleSlave, RoleCache, RoleSequencer, RolePeer}

// forwardingProxy is the proxy side shared by clientserver and cache:
// every invocation is forwarded to a remote representative chosen from
// a ranked peer set — failing over to the next candidate (and
// re-resolving through the location service) when the bound one dies,
// instead of staying pinned to a bind-time corpse.
type forwardingProxy struct {
	env   *core.Env
	peers *core.PeerSet
}

func newForwardingProxy(env *core.Env) (core.Replication, error) {
	ps, err := core.NewPeerSet(env, "", forwardingProxyPrefs, forwardingProxyPrefs)
	if err != nil {
		return nil, fmt.Errorf("repl: %w", err)
	}
	return &forwardingProxy{env: env, peers: ps}, nil
}

func (p *forwardingProxy) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	return p.peers.Call(core.OpInvoke, inv.Encode(), inv.Write)
}

// ReadBulk implements core.BulkReader by streaming from a forwarded
// representative, resuming at the current offset on another replica
// when one dies mid-stream.
func (p *forwardingProxy) ReadBulk(tc obs.SpanContext, path string, off, n int64, fn func([]byte) error) (core.Manifest, time.Duration, error) {
	return streamBulkVia(tc, p.peers, path, off, n, fn)
}

// MissingChunks and PushChunks implement core.ChunkNegotiator: every
// candidate either executes manifest writes itself (the clientserver
// server) or forwards chunk traffic to the replica that does, so a
// chunk a candidate confirms holding is a chunk the manifest write
// will find.
func (p *forwardingProxy) MissingChunks(refs []store.Ref) ([]store.Ref, time.Duration, error) {
	return missingChunksVia(p.peers, refs)
}

// PushChunks implements core.ChunkNegotiator.
func (p *forwardingProxy) PushChunks(chunks [][]byte) (time.Duration, error) {
	return pushChunksVia(p.peers, chunks)
}

func (p *forwardingProxy) Close() error { return p.peers.Close() }

// Peers exposes the ranked peer set; tests and experiments read its
// failover counters.
func (p *forwardingProxy) Peers() *core.PeerSet { return p.peers }

// pickPeer returns the address of the first peer matching the earliest
// role in prefs; an empty role preference matches anything.
func pickPeer(env *core.Env, prefs ...string) string {
	for _, role := range prefs {
		for _, ca := range env.Peers {
			if ca.Role == role {
				return ca.Address
			}
		}
	}
	if len(env.Peers) > 0 {
		return env.Peers[0].Address
	}
	return ""
}

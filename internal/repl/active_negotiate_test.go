package repl

import (
	"bytes"
	"math/rand"
	"testing"

	"gdn/internal/core"
	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/pkgobj"
	"gdn/internal/store"
)

// Active-replication chunk negotiation: writes replay at every peer, so
// the proxy negotiates against all of them — a chunk is skipped only
// when every replica already holds it (the intersection of have-sets),
// and each replica is shipped exactly its own gap. The payoff the
// ROADMAP asked for: an unchanged re-deploy to an active-replicated
// object moves zero chunk bodies.

// activeWorld builds sequencer + two peers hosting a package object and
// returns the hosted LRs plus a binding proxy stub at us-client.
func activeWorld(t *testing.T, f *fixture, oid ids.OID) (seq, peer1, peer2 *core.LR, stub *pkgobj.Stub) {
	t.Helper()
	pkgobj.Register(f.rts["origin"].Registry())
	seq, seqCA := pkgReplica(t, f, oid, "origin", Active, RoleSequencer, nil)
	peer1, _ = pkgReplica(t, f, oid, "eu-client", Active, RolePeer, []gls.ContactAddress{seqCA})
	peer2, _ = pkgReplica(t, f, oid, "us-client", Active, RolePeer, []gls.ContactAddress{seqCA})
	proxy := f.bind("us-client", oid)
	return seq, peer1, peer2, pkgobj.NewStub(proxy)
}

// semStoreOf reaches a hosted replica's chunk store.
func semStoreOf(t *testing.T, lr *core.LR) *store.Store {
	t.Helper()
	cs, ok := lr.Semantics().(core.ChunkStored)
	if !ok {
		t.Fatal("semantics is not chunk-stored")
	}
	return cs.Store()
}

func TestActiveNegotiatedUploadReachesEveryPeer(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.Derive("active-negotiate")
	seq, peer1, peer2, stub := activeWorld(t, f, oid)

	const chunk = pkgobj.DefaultChunkSize
	content := make([]byte, 4*chunk+123)
	rand.New(rand.NewSource(11)).Read(content)

	// The proxy implements the negotiator now, so UploadFile takes the
	// manifest path; the write replays at the sequencer and both peers,
	// each of which must therefore hold the chunks.
	if _, ok := stub.LR().Replication().(core.ChunkNegotiator); !ok {
		t.Fatal("active proxy must implement core.ChunkNegotiator")
	}
	if err := stub.UploadFile("blob", content); err != nil {
		t.Fatal(err)
	}
	for name, lr := range map[string]*core.LR{"sequencer": seq, "peer1": peer1, "peer2": peer2} {
		got, err := pkgobj.NewStub(lr).GetFileContents("blob")
		if err != nil || !bytes.Equal(got, content) {
			t.Fatalf("%s content diverged after negotiated upload: %v", name, err)
		}
	}

	// Re-deploying the same bytes under a new path cannot use the Stat
	// short-circuit (no file there yet), so it exercises the
	// negotiation: every replica already has every chunk, and zero
	// chunk bodies may cross any wire — just the negotiation rounds and
	// the replayed manifest write.
	f.net.ResetMeter()
	if err := stub.UploadFile("copy", content); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, b := range f.net.Meter().Bytes {
		total += b
	}
	if total > chunk/2 {
		t.Fatalf("unchanged re-deploy moved %d bytes, want far less than one chunk (%d)", total, chunk)
	}
	for name, lr := range map[string]*core.LR{"sequencer": seq, "peer1": peer1, "peer2": peer2} {
		got, err := pkgobj.NewStub(lr).GetFileContents("copy")
		if err != nil || !bytes.Equal(got, content) {
			t.Fatalf("%s copy diverged after zero-transfer re-deploy: %v", name, err)
		}
	}
}

func TestActiveNegotiationIsUnionOfMissingSets(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.Derive("active-union")
	seq, peer1, peer2, stub := activeWorld(t, f, oid)

	const chunk = pkgobj.DefaultChunkSize
	content := make([]byte, 2*chunk)
	rand.New(rand.NewSource(12)).Read(content)
	if err := stub.UploadFile("blob", content); err != nil {
		t.Fatal(err)
	}
	shared := store.RefOf(content[:chunk]) // present at every replica now

	// Plant a chunk in the sequencer's store only: an intersection
	// negotiated against one replica would skip it and starve the
	// peers; the all-peer negotiation must still report it missing.
	lopsided := make([]byte, chunk)
	rand.New(rand.NewSource(13)).Read(lopsided)
	lref, err := semStoreOf(t, seq).Put(lopsided)
	if err != nil {
		t.Fatal(err)
	}

	neg := stub.LR().Replication().(core.ChunkNegotiator)
	missing, _, err := neg.MissingChunks([]store.Ref{shared, lref})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0] != lref {
		t.Fatalf("missing = %v, want just the lopsided chunk %s", missing, lref.Short())
	}

	// PushChunks ships each replica its own gap: afterwards no store
	// lacks the chunk (and the sequencer, which had it, took no new
	// body — its put would just have deduplicated anyway).
	if _, err := neg.PushChunks([][]byte{lopsided}); err != nil {
		t.Fatal(err)
	}
	for name, lr := range map[string]*core.LR{"sequencer": seq, "peer1": peer1, "peer2": peer2} {
		if m := semStoreOf(t, lr).Missing([]store.Ref{lref}); len(m) != 0 {
			t.Fatalf("%s store still missing pushed chunk", name)
		}
	}
}

func TestActiveNegotiationAbortsWhenAPeerIsDown(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.Derive("active-down")
	_, _, _, stub := activeWorld(t, f, oid)

	const chunk = pkgobj.DefaultChunkSize
	content := make([]byte, 2*chunk)
	rand.New(rand.NewSource(14)).Read(content)

	// With a peer unreachable the negotiation must refuse (a chunk
	// "present everywhere reachable" may still be missing there), and
	// UploadFile falls back to content-bearing writes, which the
	// sequencer journal replays when the peer resyncs.
	f.net.SetDown("eu-client", true)
	neg := stub.LR().Replication().(core.ChunkNegotiator)
	if _, _, err := neg.MissingChunks([]store.Ref{store.RefOf(content)}); err == nil {
		t.Fatal("negotiation with a dead peer must fail, forcing the content-bearing fallback")
	}
	if err := stub.UploadFile("blob", content); err != nil {
		t.Fatalf("upload must fall back to content-bearing writes: %v", err)
	}
	got, err := stub.GetFileContents("blob")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("read back after fallback upload: %v", err)
	}
}

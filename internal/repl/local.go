package repl

import (
	"time"

	"gdn/internal/core"
)

// LocalProtocol returns the degenerate protocol for objects private to
// one address space: a single copy, no network traffic, no contact
// point. Moderator tools stage new package objects with it before
// shipping their state to object servers.
func LocalProtocol() *core.Protocol {
	return &core.Protocol{
		Name: Local,
		NewProxy: func(env *core.Env) (core.Replication, error) {
			return &localRepl{env: env}, nil
		},
		NewReplica: func(env *core.Env) (core.Replication, error) {
			return &localRepl{env: env}, nil
		},
	}
}

type localRepl struct {
	env *core.Env
}

func (l *localRepl) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	out, err := l.env.Exec.Execute(inv)
	return out, 0, err
}

func (l *localRepl) Close() error { return nil }

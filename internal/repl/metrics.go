package repl

import "gdn/internal/obs"

// Registry handles for the replication layer. The per-instance
// CacheStats accessors remain as views for tests; these aggregate the
// same events across every replica in the process.
var (
	mCacheHits = obs.Default.Counter("gdn_repl_cache_hits_total",
		"cache reads served inside the TTL or subscription window")
	mCacheMisses = obs.Default.Counter("gdn_repl_cache_misses_total",
		"cache reads that pulled state from a parent")
	mCacheRevalidations = obs.Default.Counter("gdn_repl_cache_revalidations_total",
		"cache freshness checks answered not-modified by a parent")
	mInvalidations = obs.Default.Counter("gdn_repl_invalidations_total",
		"OpInvalidate messages accepted by caches and slaves")
	mFillChunks = obs.Default.Counter("gdn_repl_fill_chunks_total",
		"chunks pulled from a parent during delta state transfer")
	mFillBytes = obs.Default.Counter("gdn_repl_fill_bytes_total",
		"chunk bytes pulled from a parent during delta state transfer")
)

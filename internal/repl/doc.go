// Package repl implements Globe's replication subobjects: the
// interchangeable protocols that keep the state of a distributed shared
// object's representatives consistent (paper §3.3). Each protocol
// provides a proxy side (installed in binding clients) and a replica
// side (hosted by object servers and GDN HTTPDs), both implementing the
// standard core.Replication interface over opaque invocations.
//
// The protocols:
//
//   - "local": a single non-contactable copy; no network traffic. Used
//     for objects private to one address space.
//   - "clientserver": one server replica holds the state; proxies
//     forward every invocation to it. One of the two protocols the
//     paper ships (§7).
//   - "masterslave": a master accepts writes and synchronously pushes
//     full state to slave replicas, which serve reads near clients. The
//     paper's second shipped protocol (§7).
//   - "active": writes are ordered by a sequencer replica and applied
//     at every peer; reads are local at any peer. The "actively
//     replicate all the state at all the local representatives"
//     strategy of §3.3.
//   - "cache": a pull-based replica for GDN proxy servers: it fills
//     from a parent replica on demand and serves reads locally, with
//     either TTL expiry or server-sent invalidations — the two
//     coherence options the differentiated-replication study needs.
//
// A note on consistency semantics: "masterslave" pushes state
// synchronously before acknowledging a write, so reads at any slave
// after a write acknowledges see that write (the strong setting the
// GDN wants for software integrity). "cache" serves stale reads up to
// its TTL, which is the trade-off the E4 experiment quantifies.
//
// # The bulk read path
//
// OpBulkRead streams one file's byte range as chunk-sized frames. The
// serving side plans the transfer with Manifest.ChunkRange and runs it
// through store.Pipeline, fetching a few chunks ahead of the wire so
// storage latency overlaps send latency. Each fetched chunk is handed
// to the RPC stream without copying: disk chunks go down as open file
// handles (spliced by the transport) or pooled buffers released at
// write completion, memory chunks by reference. The manifest's chunks
// are retained for the stream's duration, so eviction or a concurrent
// write cannot yank bytes mid-transfer; the pins may be released while
// final frames still sit in the sender's queue, which is safe — queued
// buffers are owned by the queue, and an unlinked chunk file stays
// readable through its open handle.
//
// Failover (streamBulkVia) retries a died stream on the next peer at
// the byte offset already delivered to the consumer. The retry
// re-plans spans from that offset — including a partial first chunk —
// so the consumer sees one uninterrupted byte sequence, no duplicates
// and no gaps, regardless of where the previous stream stopped or how
// far its server-side prefetch window had run ahead. Consumer errors
// are terminal (core.NoFailover): retrying elsewhere would replay
// bytes the consumer already took.
//
// Cache fills ride the same pipeline shape: OpChunkGet batches are
// fetched one request ahead of the verify-and-store consumer, and
// every chunk is re-hashed by PutPinned before it lands, so a corrupt
// or hostile parent cannot poison a downstream store.
package repl

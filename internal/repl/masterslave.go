package repl

import (
	"fmt"
	"sync"
	"time"

	"gdn/internal/core"
	"gdn/internal/obs"
	"gdn/internal/rpc"
	"gdn/internal/store"
)

// MasterSlaveProtocol returns the master/slave protocol: one master
// replica accepts all writes and synchronously pushes the resulting
// state to slave replicas placed near clients, which serve reads
// locally. The second of the two protocols the paper ships (§7) and
// the workhorse of the GDN: packages are written rarely (by
// moderators) and read often (by everyone), exactly the mix this
// protocol favours.
func MasterSlaveProtocol() *core.Protocol {
	return &core.Protocol{
		Name:     MasterSlave,
		NewProxy: newMSProxy,
		NewReplica: func(env *core.Env) (core.Replication, error) {
			switch env.Role {
			case RoleMaster:
				return newMSMaster(env)
			case RoleSlave:
				return newMSSlave(env)
			default:
				return nil, fmt.Errorf("repl: %s: unknown role %q", MasterSlave, env.Role)
			}
		},
	}
}

// msMaster is the master replica: the single writer.
type msMaster struct {
	*replicaBase
	// writeMu serializes writes so state pushes leave in write order.
	writeMu sync.Mutex
}

func newMSMaster(env *core.Env) (core.Replication, error) {
	if env.Disp == nil {
		return nil, fmt.Errorf("repl: %s master needs a dispatcher", MasterSlave)
	}
	m := &msMaster{replicaBase: newReplicaBase(env)}
	env.Disp.Register(env.OID, m.handle)
	return m, nil
}

func (m *msMaster) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	if inv.Write {
		return m.write(inv, nil)
	}
	out, err := m.env.Exec.Execute(inv)
	return out, 0, err
}

func (m *msMaster) Close() error {
	m.env.Disp.Unregister(m.env.OID)
	m.closePeers()
	return nil
}

func (m *msMaster) handle(call *rpc.Call) ([]byte, error) {
	if handled, resp, err := m.handleCommon(call); handled {
		return resp, err
	}
	if call.Op != core.OpInvoke {
		return nil, fmt.Errorf("repl: %s master: unexpected op %d", MasterSlave, call.Op)
	}
	inv, err := core.DecodeInvocation(call.Body)
	if err != nil {
		return nil, err
	}
	if !inv.Write {
		return m.env.Exec.Execute(inv)
	}
	if err := authorizeWrite(m.env, call); err != nil {
		return nil, err
	}
	out, cost, err := m.write(inv, call)
	if call != nil {
		call.Charge(cost)
	}
	return out, err
}

// write executes a state-modifying invocation and synchronously pushes
// the new state to every slave before returning, so a client whose
// write has been acknowledged reads it at any slave.
func (m *msMaster) write(inv core.Invocation, call *rpc.Call) ([]byte, time.Duration, error) {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()

	out, err := m.env.Exec.Execute(inv)
	if err != nil {
		return nil, 0, err
	}
	version := m.bumpVersion()
	state, err := m.env.Exec.MarshalState()
	if err != nil {
		return nil, 0, fmt.Errorf("repl: %s master: marshal after write: %w", MasterSlave, err)
	}

	var total time.Duration
	slaveAddrs := m.slaveAddrs()
	if len(slaveAddrs) > 0 {
		cost, perr := m.pushAll(slaveAddrs, core.OpStatePush, encodeStatePush(version, state))
		total += cost
		if perr != nil {
			m.env.Logf("repl: %s master %s: push: %v", MasterSlave, m.env.OID.Short(), perr)
		}
	}
	if cacheSubs := m.subscribers(RoleCache); len(cacheSubs) > 0 {
		addrs := make([]string, len(cacheSubs))
		for i, s := range cacheSubs {
			addrs[i] = s.addr
		}
		cost, perr := m.pushAll(addrs, core.OpInvalidate, nil)
		total += cost
		if perr != nil {
			m.env.Logf("repl: %s master %s: invalidate: %v", MasterSlave, m.env.OID.Short(), perr)
		}
	}
	return out, total, nil
}

// slaveAddrs merges statically configured slaves (from the replication
// scenario) with dynamically subscribed ones.
func (m *msMaster) slaveAddrs() []string {
	seen := make(map[string]bool)
	var out []string
	for _, ca := range m.env.PeersWithRole(RoleSlave) {
		if !seen[ca.Address] {
			seen[ca.Address] = true
			out = append(out, ca.Address)
		}
	}
	for _, s := range m.subscribers(RoleSlave) {
		if !seen[s.addr] {
			seen[s.addr] = true
			out = append(out, s.addr)
		}
	}
	return out
}

// msSlave is a read replica: it initializes from the master, receives
// synchronous state pushes, serves reads locally and forwards writes.
type msSlave struct {
	*replicaBase
	masterAddr string
}

func newMSSlave(env *core.Env) (core.Replication, error) {
	if env.Disp == nil {
		return nil, fmt.Errorf("repl: %s slave needs a dispatcher", MasterSlave)
	}
	masters := env.PeersWithRole(RoleMaster)
	if len(masters) == 0 {
		return nil, fmt.Errorf("repl: %s slave for %s: no master in peer set", MasterSlave, env.OID.Short())
	}
	s := &msSlave{replicaBase: newReplicaBase(env), masterAddr: masters[0].Address}

	// State transfer, then subscription; a push racing between the two
	// only delivers a version we already have or newer.
	_, version, state, pins, _, err := s.fetchState(obs.SpanContext{}, s.peer(s.masterAddr), 0)
	if err != nil {
		return nil, fmt.Errorf("repl: %s slave: initial state transfer: %w", MasterSlave, err)
	}
	err = env.Exec.UnmarshalState(state)
	s.releasePins(pins)
	if err != nil {
		return nil, fmt.Errorf("repl: %s slave: install state: %w", MasterSlave, err)
	}
	s.setVersion(version)
	if err := s.subscribeTo(s.masterAddr, env.Disp.Addr(), RoleSlave); err != nil {
		return nil, fmt.Errorf("repl: %s slave: subscribe: %w", MasterSlave, err)
	}
	env.Disp.Register(env.OID, s.handle)
	return s, nil
}

func (s *msSlave) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	if inv.Write {
		// Writes go to the single writer; the master pushes the
		// resulting state back to us before acknowledging.
		return s.peer(s.masterAddr).Call(core.OpInvoke, inv.Encode())
	}
	out, err := s.env.Exec.Execute(inv)
	return out, 0, err
}

func (s *msSlave) Close() error {
	s.env.Disp.Unregister(s.env.OID)
	s.unsubscribeFrom(s.masterAddr, s.env.Disp.Addr())
	s.closePeers()
	return nil
}

func (s *msSlave) handle(call *rpc.Call) ([]byte, error) {
	// Chunk negotiation targets the replica that executes manifest
	// writes — the master. A slave answering OpChunkHave from its own
	// store would promise chunks the master may lack, and accepting
	// OpChunkPut locally would feed a store no write reads from; both
	// are forwarded instead, so negotiated uploads work even for
	// writers that only know slave addresses (ROADMAP open item).
	if handled, resp, err := s.relayChunkOps(call, s.masterAddr); handled {
		return resp, err
	}
	if handled, resp, err := s.handleCommon(call); handled {
		return resp, err
	}
	switch call.Op {
	case core.OpInvoke:
		inv, err := core.DecodeInvocation(call.Body)
		if err != nil {
			return nil, err
		}
		if inv.Write {
			if err := authorizeWrite(s.env, call); err != nil {
				return nil, err
			}
			resp, cost, err := s.peer(s.masterAddr).Call(core.OpInvoke, call.Body)
			call.Charge(cost)
			return resp, err
		}
		return s.env.Exec.Execute(inv)
	case core.OpStatePush:
		if err := authorizeWrite(s.env, call); err != nil {
			return nil, err
		}
		version, state, err := decodeStatePush(call.Body)
		if err != nil {
			return nil, err
		}
		if version <= s.currentVersion() {
			return nil, nil // stale or duplicate push
		}
		// The push carries manifests; pull only the chunks we are
		// missing back from the master before installing — the delta
		// that makes an append to a huge package cost only the
		// appended chunks, not a full-state reship.
		pins, cost, err := s.fillChunks(call.TC, s.peer(s.masterAddr), state)
		call.Charge(cost)
		if err != nil {
			return nil, err
		}
		err = s.env.Exec.UnmarshalState(state)
		s.releasePins(pins)
		if err != nil {
			return nil, err
		}
		s.setVersion(version)
		return nil, nil
	default:
		return nil, fmt.Errorf("repl: %s slave: unexpected op %d", MasterSlave, call.Op)
	}
}

// msProxy is the binding client's subobject: reads go to a healthy
// slave (the location service returned the nearest representatives,
// and the peer set spreads load across them), writes go to the master
// — directly when known, else through a slave. Candidate health,
// failover and re-resolution live in the shared core.PeerSet.
type msProxy struct {
	env   *core.Env
	peers *core.PeerSet
}

func newMSProxy(env *core.Env) (core.Replication, error) {
	ps, err := core.NewPeerSet(env, "",
		[]string{RoleSlave, RoleMaster},
		[]string{RoleMaster, RoleSlave})
	if err != nil {
		return nil, fmt.Errorf("repl: %s proxy for %s: %w", MasterSlave, env.OID.Short(), err)
	}
	return &msProxy{env: env, peers: ps}, nil
}

func (p *msProxy) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	return p.peers.Call(core.OpInvoke, inv.Encode(), inv.Write)
}

// ReadBulk implements core.BulkReader by streaming from a read
// replica, resuming on the next candidate when one dies mid-stream.
func (p *msProxy) ReadBulk(tc obs.SpanContext, path string, off, n int64, fn func([]byte) error) (core.Manifest, time.Duration, error) {
	return streamBulkVia(tc, p.peers, path, off, n, fn)
}

// MissingChunks and PushChunks implement core.ChunkNegotiator. The
// store that is probed and fed is always the master's — slaves forward
// both ops there — so the manifest write (which the protocol also
// routes to the master) finds every chunk the negotiation promised,
// and state pushes carry the new chunks onward to the slaves by delta
// sync. Negotiation therefore no longer needs a direct master contact
// address.
func (p *msProxy) MissingChunks(refs []store.Ref) ([]store.Ref, time.Duration, error) {
	return missingChunksVia(p.peers, refs)
}

// PushChunks implements core.ChunkNegotiator.
func (p *msProxy) PushChunks(chunks [][]byte) (time.Duration, error) {
	return pushChunksVia(p.peers, chunks)
}

func (p *msProxy) Close() error { return p.peers.Close() }

// Peers exposes the ranked peer set for tests and experiments.
func (p *msProxy) Peers() *core.PeerSet { return p.peers }

package repl

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gdn/internal/core"
	"gdn/internal/rpc"
	"gdn/internal/store"
)

// MasterSlaveProtocol returns the master/slave protocol: one master
// replica accepts all writes and synchronously pushes the resulting
// state to slave replicas placed near clients, which serve reads
// locally. The second of the two protocols the paper ships (§7) and
// the workhorse of the GDN: packages are written rarely (by
// moderators) and read often (by everyone), exactly the mix this
// protocol favours.
func MasterSlaveProtocol() *core.Protocol {
	return &core.Protocol{
		Name:     MasterSlave,
		NewProxy: newMSProxy,
		NewReplica: func(env *core.Env) (core.Replication, error) {
			switch env.Role {
			case RoleMaster:
				return newMSMaster(env)
			case RoleSlave:
				return newMSSlave(env)
			default:
				return nil, fmt.Errorf("repl: %s: unknown role %q", MasterSlave, env.Role)
			}
		},
	}
}

// msMaster is the master replica: the single writer.
type msMaster struct {
	*replicaBase
	// writeMu serializes writes so state pushes leave in write order.
	writeMu sync.Mutex
}

func newMSMaster(env *core.Env) (core.Replication, error) {
	if env.Disp == nil {
		return nil, fmt.Errorf("repl: %s master needs a dispatcher", MasterSlave)
	}
	m := &msMaster{replicaBase: newReplicaBase(env)}
	env.Disp.Register(env.OID, m.handle)
	return m, nil
}

func (m *msMaster) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	if inv.Write {
		return m.write(inv, nil)
	}
	out, err := m.env.Exec.Execute(inv)
	return out, 0, err
}

func (m *msMaster) Close() error {
	m.env.Disp.Unregister(m.env.OID)
	m.closePeers()
	return nil
}

func (m *msMaster) handle(call *rpc.Call) ([]byte, error) {
	if handled, resp, err := m.handleCommon(call); handled {
		return resp, err
	}
	if call.Op != core.OpInvoke {
		return nil, fmt.Errorf("repl: %s master: unexpected op %d", MasterSlave, call.Op)
	}
	inv, err := core.DecodeInvocation(call.Body)
	if err != nil {
		return nil, err
	}
	if !inv.Write {
		return m.env.Exec.Execute(inv)
	}
	if err := authorizeWrite(m.env, call); err != nil {
		return nil, err
	}
	out, cost, err := m.write(inv, call)
	if call != nil {
		call.Charge(cost)
	}
	return out, err
}

// write executes a state-modifying invocation and synchronously pushes
// the new state to every slave before returning, so a client whose
// write has been acknowledged reads it at any slave.
func (m *msMaster) write(inv core.Invocation, call *rpc.Call) ([]byte, time.Duration, error) {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()

	out, err := m.env.Exec.Execute(inv)
	if err != nil {
		return nil, 0, err
	}
	version := m.bumpVersion()
	state, err := m.env.Exec.MarshalState()
	if err != nil {
		return nil, 0, fmt.Errorf("repl: %s master: marshal after write: %w", MasterSlave, err)
	}

	var total time.Duration
	slaveAddrs := m.slaveAddrs()
	if len(slaveAddrs) > 0 {
		cost, perr := m.pushAll(slaveAddrs, core.OpStatePush, encodeStatePush(version, state))
		total += cost
		if perr != nil {
			m.env.Logf("repl: %s master %s: push: %v", MasterSlave, m.env.OID.Short(), perr)
		}
	}
	if cacheSubs := m.subscribers(RoleCache); len(cacheSubs) > 0 {
		addrs := make([]string, len(cacheSubs))
		for i, s := range cacheSubs {
			addrs[i] = s.addr
		}
		cost, perr := m.pushAll(addrs, core.OpInvalidate, nil)
		total += cost
		if perr != nil {
			m.env.Logf("repl: %s master %s: invalidate: %v", MasterSlave, m.env.OID.Short(), perr)
		}
	}
	return out, total, nil
}

// slaveAddrs merges statically configured slaves (from the replication
// scenario) with dynamically subscribed ones.
func (m *msMaster) slaveAddrs() []string {
	seen := make(map[string]bool)
	var out []string
	for _, ca := range m.env.PeersWithRole(RoleSlave) {
		if !seen[ca.Address] {
			seen[ca.Address] = true
			out = append(out, ca.Address)
		}
	}
	for _, s := range m.subscribers(RoleSlave) {
		if !seen[s.addr] {
			seen[s.addr] = true
			out = append(out, s.addr)
		}
	}
	return out
}

// msSlave is a read replica: it initializes from the master, receives
// synchronous state pushes, serves reads locally and forwards writes.
type msSlave struct {
	*replicaBase
	masterAddr string
}

func newMSSlave(env *core.Env) (core.Replication, error) {
	if env.Disp == nil {
		return nil, fmt.Errorf("repl: %s slave needs a dispatcher", MasterSlave)
	}
	masters := env.PeersWithRole(RoleMaster)
	if len(masters) == 0 {
		return nil, fmt.Errorf("repl: %s slave for %s: no master in peer set", MasterSlave, env.OID.Short())
	}
	s := &msSlave{replicaBase: newReplicaBase(env), masterAddr: masters[0].Address}

	// State transfer, then subscription; a push racing between the two
	// only delivers a version we already have or newer.
	_, version, state, pins, _, err := s.fetchState(s.masterAddr, 0)
	if err != nil {
		return nil, fmt.Errorf("repl: %s slave: initial state transfer: %w", MasterSlave, err)
	}
	err = env.Exec.UnmarshalState(state)
	s.releasePins(pins)
	if err != nil {
		return nil, fmt.Errorf("repl: %s slave: install state: %w", MasterSlave, err)
	}
	s.setVersion(version)
	if err := s.subscribeTo(s.masterAddr, env.Disp.Addr(), RoleSlave); err != nil {
		return nil, fmt.Errorf("repl: %s slave: subscribe: %w", MasterSlave, err)
	}
	env.Disp.Register(env.OID, s.handle)
	return s, nil
}

func (s *msSlave) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	if inv.Write {
		// Writes go to the single writer; the master pushes the
		// resulting state back to us before acknowledging.
		return s.peer(s.masterAddr).Call(core.OpInvoke, inv.Encode())
	}
	out, err := s.env.Exec.Execute(inv)
	return out, 0, err
}

func (s *msSlave) Close() error {
	s.env.Disp.Unregister(s.env.OID)
	s.unsubscribeFrom(s.masterAddr, s.env.Disp.Addr())
	s.closePeers()
	return nil
}

func (s *msSlave) handle(call *rpc.Call) ([]byte, error) {
	if handled, resp, err := s.handleCommon(call); handled {
		return resp, err
	}
	switch call.Op {
	case core.OpInvoke:
		inv, err := core.DecodeInvocation(call.Body)
		if err != nil {
			return nil, err
		}
		if inv.Write {
			if err := authorizeWrite(s.env, call); err != nil {
				return nil, err
			}
			resp, cost, err := s.peer(s.masterAddr).Call(core.OpInvoke, call.Body)
			call.Charge(cost)
			return resp, err
		}
		return s.env.Exec.Execute(inv)
	case core.OpStatePush:
		if err := authorizeWrite(s.env, call); err != nil {
			return nil, err
		}
		version, state, err := decodeStatePush(call.Body)
		if err != nil {
			return nil, err
		}
		if version <= s.currentVersion() {
			return nil, nil // stale or duplicate push
		}
		// The push carries manifests; pull only the chunks we are
		// missing back from the master before installing — the delta
		// that makes an append to a huge package cost only the
		// appended chunks, not a full-state reship.
		pins, cost, err := s.fillChunks(s.masterAddr, state)
		call.Charge(cost)
		if err != nil {
			return nil, err
		}
		err = s.env.Exec.UnmarshalState(state)
		s.releasePins(pins)
		if err != nil {
			return nil, err
		}
		s.setVersion(version)
		return nil, nil
	default:
		return nil, fmt.Errorf("repl: %s slave: unexpected op %d", MasterSlave, call.Op)
	}
}

// msProxy is the binding client's subobject: reads go to a slave (the
// location service returned the nearest representatives), writes go to
// the master — directly when known, else through a slave.
type msProxy struct {
	env *core.Env

	mu    sync.Mutex
	rnd   *rand.Rand
	peers map[string]*core.PeerClient

	readAddrs []string
	writeAddr string
	// writeIsMaster records that writeAddr is the master itself.
	// Negotiated bulk writes are only sound then: probing and feeding a
	// forwarding slave's store would not help the master execute the
	// manifest write.
	writeIsMaster bool
}

func newMSProxy(env *core.Env) (core.Replication, error) {
	p := &msProxy{
		env:   env,
		rnd:   rand.New(rand.NewSource(int64(env.OID[0])<<8 | int64(env.OID[1]))),
		peers: make(map[string]*core.PeerClient),
	}
	for _, ca := range env.PeersWithRole(RoleSlave) {
		p.readAddrs = append(p.readAddrs, ca.Address)
	}
	if masters := env.PeersWithRole(RoleMaster); len(masters) > 0 {
		p.writeAddr = masters[0].Address
		p.writeIsMaster = true
		if len(p.readAddrs) == 0 {
			p.readAddrs = []string{p.writeAddr}
		}
	} else if len(p.readAddrs) > 0 {
		// No master visible: slaves forward writes on our behalf.
		p.writeAddr = p.readAddrs[0]
	} else {
		return nil, fmt.Errorf("repl: %s proxy for %s: no usable contact address", MasterSlave, env.OID.Short())
	}
	return p, nil
}

func (p *msProxy) peer(addr string) *core.PeerClient {
	p.mu.Lock()
	defer p.mu.Unlock()
	pc, ok := p.peers[addr]
	if !ok {
		pc = p.env.Dial(addr)
		p.peers[addr] = pc
	}
	return pc
}

func (p *msProxy) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	addr := p.writeAddr
	if !inv.Write {
		p.mu.Lock()
		addr = p.readAddrs[p.rnd.Intn(len(p.readAddrs))]
		p.mu.Unlock()
	}
	return p.peer(addr).Call(core.OpInvoke, inv.Encode())
}

// ReadBulk implements core.BulkReader by streaming from one of the
// read replicas (the location service returned the nearest ones).
func (p *msProxy) ReadBulk(path string, off, n int64, fn func([]byte) error) (core.Manifest, time.Duration, error) {
	p.mu.Lock()
	addr := p.readAddrs[p.rnd.Intn(len(p.readAddrs))]
	p.mu.Unlock()
	return streamBulkFrom(p.peer(addr), path, off, n, fn)
}

// errNoMasterContact declines negotiation when writes reach the master
// only through a forwarding slave; uploaders fall back to writes that
// carry their content bytes.
var errNoMasterContact = fmt.Errorf("repl: %s proxy has no master contact address; negotiated writes unavailable", MasterSlave)

// MissingChunks and PushChunks implement core.ChunkNegotiator against
// the master — the replica that will execute the manifest write is the
// one whose store is probed and fed, and the protocol's state pushes
// carry the new chunks onward to the slaves by delta sync.
func (p *msProxy) MissingChunks(refs []store.Ref) ([]store.Ref, time.Duration, error) {
	if !p.writeIsMaster {
		return nil, 0, errNoMasterContact
	}
	return missingChunksFrom(p.peer(p.writeAddr), refs)
}

// PushChunks implements core.ChunkNegotiator.
func (p *msProxy) PushChunks(chunks [][]byte) (time.Duration, error) {
	if !p.writeIsMaster {
		return 0, errNoMasterContact
	}
	return pushChunksTo(p.peer(p.writeAddr), chunks)
}

func (p *msProxy) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pc := range p.peers {
		pc.Close()
	}
	p.peers = make(map[string]*core.PeerClient)
	return nil
}

package repl

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"gdn/internal/core"
	"gdn/internal/obs"
	"gdn/internal/rpc"
	"gdn/internal/store"
	"gdn/internal/wire"
)

// ActiveProtocol returns active replication: every peer replica holds
// the full state and executes every write, with a sequencer replica
// imposing a global order — the "actively replicate all the state at
// all the local representatives" strategy of §3.3. Reads are local at
// every peer; writes cost a fan-out to all of them. Compared with
// master/slave, the active protocol trades write bandwidth (it ships
// the invocation, not the whole state) against per-replica execution.
func ActiveProtocol() *core.Protocol {
	return &core.Protocol{
		Name:     Active,
		NewProxy: newActiveProxy,
		NewReplica: func(env *core.Env) (core.Replication, error) {
			switch env.Role {
			case RoleSequencer:
				return newSequencer(env)
			case RolePeer:
				return newActivePeer(env)
			default:
				return nil, fmt.Errorf("repl: %s: unknown role %q", Active, env.Role)
			}
		},
	}
}

// opPeerRoster asks an active replica for the full replica roster
// (sequencer first): location-service lookups return the nearest
// replicas, but all-peer chunk negotiation needs every one. The
// sequencer answers from its peer bookkeeping; peers relay to the
// sequencer. Outside the core replica-op range (0x10+) and far from
// the rpc-reserved band (0xFF00+).
const opPeerRoster uint16 = 0x30

// encodeRoster serializes an address list (sequencer first).
func encodeRoster(addrs []string) []byte {
	w := wire.NewWriter(16 + 32*len(addrs))
	w.Count(len(addrs))
	for _, a := range addrs {
		w.Str(a)
	}
	return w.Bytes()
}

func decodeRoster(b []byte) ([]string, error) {
	r := wire.NewReader(b)
	n := r.Count()
	if err := r.Err(); err != nil {
		return nil, err
	}
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		addrs = append(addrs, r.Str())
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return addrs, nil
}

// sequencer orders all writes: it executes each locally, stamps it with
// the new version, and applies it at every peer before acknowledging.
type sequencer struct {
	*replicaBase
	writeMu sync.Mutex
}

func newSequencer(env *core.Env) (core.Replication, error) {
	if env.Disp == nil {
		return nil, fmt.Errorf("repl: %s sequencer needs a dispatcher", Active)
	}
	s := &sequencer{replicaBase: newReplicaBase(env)}
	env.Disp.Register(env.OID, s.handle)
	return s, nil
}

func (s *sequencer) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	if inv.Write {
		return s.write(inv)
	}
	out, err := s.env.Exec.Execute(inv)
	return out, 0, err
}

func (s *sequencer) Close() error {
	s.env.Disp.Unregister(s.env.OID)
	s.closePeers()
	return nil
}

func (s *sequencer) handle(call *rpc.Call) ([]byte, error) {
	if handled, resp, err := s.handleCommon(call); handled {
		return resp, err
	}
	if call.Op == opPeerRoster {
		// The roster reveals only transport addresses, which lookups
		// serve anyway; no write authorization needed.
		return encodeRoster(append([]string{s.env.Disp.Addr()}, s.peerAddrs()...)), nil
	}
	if call.Op != core.OpInvoke {
		return nil, fmt.Errorf("repl: %s sequencer: unexpected op %d", Active, call.Op)
	}
	inv, err := core.DecodeInvocation(call.Body)
	if err != nil {
		return nil, err
	}
	if !inv.Write {
		return s.env.Exec.Execute(inv)
	}
	if err := authorizeWrite(s.env, call); err != nil {
		return nil, err
	}
	out, cost, err := s.write(inv)
	call.Charge(cost)
	return out, err
}

// write orders one write: local execution, then parallel OpApply to
// every peer. The writeMu ensures applies leave in version order.
func (s *sequencer) write(inv core.Invocation) ([]byte, time.Duration, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()

	out, err := s.env.Exec.Execute(inv)
	if err != nil {
		return nil, 0, err
	}
	version := s.bumpVersion()

	addrs := s.peerAddrs()
	var total time.Duration
	if len(addrs) > 0 {
		cost, perr := s.pushAll(addrs, core.OpApply, encodeApply(version, inv))
		total += cost
		if perr != nil {
			s.env.Logf("repl: %s sequencer %s: apply: %v", Active, s.env.OID.Short(), perr)
		}
	}
	if cacheSubs := s.subscribers(RoleCache); len(cacheSubs) > 0 {
		cacheAddrs := make([]string, len(cacheSubs))
		for i, sub := range cacheSubs {
			cacheAddrs[i] = sub.addr
		}
		cost, perr := s.pushAll(cacheAddrs, core.OpInvalidate, nil)
		total += cost
		if perr != nil {
			s.env.Logf("repl: %s sequencer %s: invalidate: %v", Active, s.env.OID.Short(), perr)
		}
	}
	return out, total, nil
}

func (s *sequencer) peerAddrs() []string {
	seen := make(map[string]bool)
	var out []string
	for _, ca := range s.env.PeersWithRole(RolePeer) {
		if !seen[ca.Address] {
			seen[ca.Address] = true
			out = append(out, ca.Address)
		}
	}
	for _, sub := range s.subscribers(RolePeer) {
		if !seen[sub.addr] {
			seen[sub.addr] = true
			out = append(out, sub.addr)
		}
	}
	return out
}

// activePeer executes ordered writes from the sequencer and serves
// reads locally.
type activePeer struct {
	*replicaBase
	seqAddr string
}

func newActivePeer(env *core.Env) (core.Replication, error) {
	if env.Disp == nil {
		return nil, fmt.Errorf("repl: %s peer needs a dispatcher", Active)
	}
	seqs := env.PeersWithRole(RoleSequencer)
	if len(seqs) == 0 {
		return nil, fmt.Errorf("repl: %s peer for %s: no sequencer in peer set", Active, env.OID.Short())
	}
	p := &activePeer{replicaBase: newReplicaBase(env), seqAddr: seqs[0].Address}

	_, version, state, pins, _, err := p.fetchState(obs.SpanContext{}, p.peer(p.seqAddr), 0)
	if err != nil {
		return nil, fmt.Errorf("repl: %s peer: initial state transfer: %w", Active, err)
	}
	err = env.Exec.UnmarshalState(state)
	p.releasePins(pins)
	if err != nil {
		return nil, fmt.Errorf("repl: %s peer: install state: %w", Active, err)
	}
	p.setVersion(version)
	if err := p.subscribeTo(p.seqAddr, env.Disp.Addr(), RolePeer); err != nil {
		return nil, fmt.Errorf("repl: %s peer: subscribe: %w", Active, err)
	}
	env.Disp.Register(env.OID, p.handle)
	return p, nil
}

func (p *activePeer) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	if inv.Write {
		return p.peer(p.seqAddr).Call(core.OpInvoke, inv.Encode())
	}
	out, err := p.env.Exec.Execute(inv)
	return out, 0, err
}

func (p *activePeer) Close() error {
	p.env.Disp.Unregister(p.env.OID)
	p.unsubscribeFrom(p.seqAddr, p.env.Disp.Addr())
	p.closePeers()
	return nil
}

func (p *activePeer) handle(call *rpc.Call) ([]byte, error) {
	if handled, resp, err := p.handleCommon(call); handled {
		return resp, err
	}
	if call.Op == opPeerRoster {
		// The sequencer owns the authoritative roster; relay.
		resp, cost, err := p.peer(p.seqAddr).Call(opPeerRoster, call.Body)
		call.Charge(cost)
		return resp, err
	}
	switch call.Op {
	case core.OpInvoke:
		inv, err := core.DecodeInvocation(call.Body)
		if err != nil {
			return nil, err
		}
		if inv.Write {
			if err := authorizeWrite(p.env, call); err != nil {
				return nil, err
			}
			resp, cost, err := p.peer(p.seqAddr).Call(core.OpInvoke, call.Body)
			call.Charge(cost)
			return resp, err
		}
		return p.env.Exec.Execute(inv)
	case core.OpApply:
		if err := authorizeWrite(p.env, call); err != nil {
			return nil, err
		}
		return nil, p.apply(call)
	default:
		return nil, fmt.Errorf("repl: %s peer: unexpected op %d", Active, call.Op)
	}
}

// apply executes one ordered write. A version gap means we missed an
// apply (e.g. while restarting); recover with a full state transfer
// rather than replaying.
func (p *activePeer) apply(call *rpc.Call) error {
	version, inv, err := decodeApply(call.Body)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case version <= p.version:
		return nil // duplicate
	case version == p.version+1:
		if _, err := p.env.Exec.Execute(inv); err != nil {
			return err
		}
		p.version = version
		return nil
	default:
		fresh, v, state, pins, cost, err := p.fetchState(call.TC, p.peer(p.seqAddr), p.version)
		call.Charge(cost)
		if err != nil {
			return fmt.Errorf("repl: %s peer: resync after gap: %w", Active, err)
		}
		// fresh means the "gap" was a forged or duplicated version — the
		// sequencer confirms our state is current, so apply nothing.
		if !fresh {
			err := p.env.Exec.UnmarshalState(state)
			p.releasePins(pins)
			if err != nil {
				return err
			}
			p.version = v
		} else {
			p.releasePins(pins)
		}
		return nil
	}
}

func encodeApply(version uint64, inv core.Invocation) []byte {
	encoded := inv.Encode()
	out := binary.BigEndian.AppendUint64(make([]byte, 0, 8+len(encoded)), version)
	return append(out, encoded...)
}

func decodeApply(b []byte) (uint64, core.Invocation, error) {
	if len(b) < 8 {
		return 0, core.Invocation{}, fmt.Errorf("repl: truncated apply message")
	}
	inv, err := core.DecodeInvocation(b[8:])
	return binary.BigEndian.Uint64(b), inv, err
}

// activeProxy sends reads to a healthy peer replica (spread by the
// ranked peer set) and writes to the sequencer, failing over to a
// forwarding peer when the sequencer address is unreachable.
type activeProxy struct {
	env   *core.Env
	peers *core.PeerSet
}

func newActiveProxy(env *core.Env) (core.Replication, error) {
	ps, err := core.NewPeerSet(env, "",
		[]string{RolePeer, RoleSequencer},
		[]string{RoleSequencer, RolePeer})
	if err != nil {
		return nil, fmt.Errorf("repl: %s proxy for %s: %w", Active, env.OID.Short(), err)
	}
	return &activeProxy{env: env, peers: ps}, nil
}

func (p *activeProxy) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	return p.peers.Call(core.OpInvoke, inv.Encode(), inv.Write)
}

// ReadBulk implements core.BulkReader by streaming from a read peer,
// resuming on the next candidate when one dies mid-stream.
func (p *activeProxy) ReadBulk(tc obs.SpanContext, path string, off, n int64, fn func([]byte) error) (core.Manifest, time.Duration, error) {
	return streamBulkVia(tc, p.peers, path, off, n, fn)
}

// roster fetches the full replica roster (sequencer first) through any
// reachable candidate: the binding lookup only returned the nearest
// replicas, but all-peer negotiation must reach every one, wherever it
// registered.
func (p *activeProxy) roster() ([]string, time.Duration, error) {
	var addrs []string
	cost, err := p.peers.Do(false, func(_ string, pc *core.PeerClient) (time.Duration, error) {
		resp, c, err := pc.Call(opPeerRoster, nil)
		if err != nil {
			return c, err
		}
		got, derr := decodeRoster(resp)
		if derr != nil {
			return c, core.NoFailover(derr)
		}
		addrs = got
		return c, nil
	})
	if err != nil {
		return nil, cost, fmt.Errorf("repl: %s proxy for %s: fetch replica roster: %w", Active, p.env.OID.Short(), err)
	}
	if len(addrs) == 0 {
		return nil, cost, fmt.Errorf("repl: %s proxy for %s: empty replica roster", Active, p.env.OID.Short())
	}
	return addrs, cost, nil
}

// MissingChunks implements core.ChunkNegotiator for active replication
// by negotiating against every replica in the roster: because writes
// replay at every peer, a manifest write needs its chunks present at
// every store, so a chunk may be skipped only when every replica
// already holds it — the reported missing set is the complement of the
// intersection of the replicas' have-sets. Any unreachable replica
// aborts the negotiation (the uploader falls back to content-bearing
// writes, which the sequencer replays with the bytes attached), so no
// peer is ever left without the chunks a manifest names.
func (p *activeProxy) MissingChunks(refs []store.Ref) ([]store.Ref, time.Duration, error) {
	addrs, total, err := p.roster()
	if err != nil {
		return nil, total, err
	}
	var union []store.Ref
	seen := make(map[store.Ref]bool)
	for _, addr := range addrs {
		missing, cost, err := missingChunksFrom(p.peers.ClientFor(addr), refs)
		total += cost
		if err != nil {
			return nil, total, fmt.Errorf("repl: %s: negotiate with %s: %w", Active, addr, err)
		}
		for _, ref := range missing {
			if !seen[ref] {
				seen[ref] = true
				union = append(union, ref)
			}
		}
	}
	return union, total, nil
}

// PushChunks implements core.ChunkNegotiator: each roster replica
// receives exactly the chunks its own store lacks (a per-replica
// re-probe keeps the call stateless), so an unchanged re-deploy moves
// zero chunk bodies and a partially-shared one ships every replica
// only its gap.
func (p *activeProxy) PushChunks(chunks [][]byte) (time.Duration, error) {
	refs := make([]store.Ref, len(chunks))
	byRef := make(map[store.Ref][]byte, len(chunks))
	for i, data := range chunks {
		refs[i] = store.RefOf(data)
		byRef[refs[i]] = data
	}
	addrs, total, err := p.roster()
	if err != nil {
		return total, err
	}
	for _, addr := range addrs {
		pc := p.peers.ClientFor(addr)
		missing, cost, err := missingChunksFrom(pc, refs)
		total += cost
		if err != nil {
			return total, fmt.Errorf("repl: %s: negotiate with %s: %w", Active, addr, err)
		}
		push := make([][]byte, 0, len(missing))
		for _, ref := range missing {
			if body, ok := byRef[ref]; ok {
				push = append(push, body)
			}
		}
		cost, err = pushChunksTo(pc, push)
		total += cost
		if err != nil {
			return total, fmt.Errorf("repl: %s: push %d chunks to %s: %w", Active, len(push), addr, err)
		}
	}
	return total, nil
}

func (p *activeProxy) Close() error { return p.peers.Close() }

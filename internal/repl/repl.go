// Package repl implements Globe's replication subobjects: the
// interchangeable protocols that keep the state of a distributed shared
// object's representatives consistent (paper §3.3). Each protocol
// provides a proxy side (installed in binding clients) and a replica
// side (hosted by object servers and GDN HTTPDs), both implementing the
// standard core.Replication interface over opaque invocations.
//
// The protocols:
//
//   - "local": a single non-contactable copy; no network traffic. Used
//     for objects private to one address space.
//   - "clientserver": one server replica holds the state; proxies
//     forward every invocation to it. One of the two protocols the
//     paper ships (§7).
//   - "masterslave": a master accepts writes and synchronously pushes
//     full state to slave replicas, which serve reads near clients. The
//     paper's second shipped protocol (§7).
//   - "active": writes are ordered by a sequencer replica and applied
//     at every peer; reads are local at any peer. The "actively
//     replicate all the state at all the local representatives"
//     strategy of §3.3.
//   - "cache": a pull-based replica for GDN proxy servers: it fills
//     from a parent replica on demand and serves reads locally, with
//     either TTL expiry or server-sent invalidations — the two
//     coherence options the differentiated-replication study needs.
//
// A note on consistency semantics: "masterslave" pushes state
// synchronously before acknowledging a write, so reads at any slave
// after a write acknowledges see that write (the strong setting the
// GDN wants for software integrity). "cache" serves stale reads up to
// its TTL, which is the trade-off the E4 experiment quantifies.
package repl

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"gdn/internal/core"
	"gdn/internal/rpc"
	"gdn/internal/sec"
	"gdn/internal/wire"
)

// Protocol names.
const (
	Local        = "local"
	ClientServer = "clientserver"
	MasterSlave  = "masterslave"
	Active       = "active"
	Cache        = "cache"
)

// Roles within protocols.
const (
	RoleServer    = "server"
	RoleMaster    = "master"
	RoleSlave     = "slave"
	RoleSequencer = "sequencer"
	RolePeer      = "peer"
	RoleCache     = "cache"
)

// RegisterAll installs every protocol in a registry.
func RegisterAll(reg *core.Registry) {
	reg.RegisterProtocol(LocalProtocol())
	reg.RegisterProtocol(ClientServerProtocol())
	reg.RegisterProtocol(MasterSlaveProtocol())
	reg.RegisterProtocol(ActiveProtocol())
	reg.RegisterProtocol(CacheProtocol())
}

// writeRoles are the principal roles allowed to perform state-modifying
// operations when a deployment runs with security (paper §6.1:
// authorized senders are moderator tools and GDN object servers).
var writeRoles = []string{sec.RoleModerator, sec.RoleAdmin, sec.RoleGOS}

// authorizeWrite admits a state-modifying message. Unsecured
// deployments (env.Auth == nil) admit everyone. Beyond the global
// write roles, a peer with the maintainer role is admitted when the
// object's replication scenario names it in the "maintainers"
// parameter — the paper's fourth group, which "is allowed to manage
// just the contents of a package" (§2).
func authorizeWrite(env *core.Env, call *rpc.Call) error {
	if env.Auth == nil {
		return nil
	}
	if sec.HasRole(call.Peer, writeRoles...) {
		return nil
	}
	if sec.RoleOf(call.Peer) == sec.RoleMaintainer && maintainerListed(env, call.Peer) {
		return nil
	}
	return fmt.Errorf("%w: peer %q may not modify object %s",
		sec.ErrUnauthorized, call.Peer, env.OID.Short())
}

// maintainerListed reports whether the scenario's comma-separated
// "maintainers" parameter names the principal.
func maintainerListed(env *core.Env, principal string) bool {
	for _, m := range strings.Split(env.Param("maintainers", ""), ",") {
		if m != "" && m == principal {
			return true
		}
	}
	return false
}

// subscriber is a peer representative that asked to be kept consistent.
type subscriber struct {
	addr string
	role string
}

// replicaBase carries the bookkeeping every hosted replica shares:
// a state version, the subscriber set, and cached peer connections.
type replicaBase struct {
	env *core.Env

	mu      sync.Mutex
	version uint64
	subs    map[string]subscriber // keyed by address

	peerMu sync.Mutex
	peers  map[string]*core.PeerClient
}

func newReplicaBase(env *core.Env) *replicaBase {
	return &replicaBase{
		env:   env,
		subs:  make(map[string]subscriber),
		peers: make(map[string]*core.PeerClient),
	}
}

// peer returns a cached connection to a remote dispatcher.
func (rb *replicaBase) peer(addr string) *core.PeerClient {
	rb.peerMu.Lock()
	defer rb.peerMu.Unlock()
	p, ok := rb.peers[addr]
	if !ok {
		p = rb.env.Dial(addr)
		rb.peers[addr] = p
	}
	return p
}

// closePeers releases all cached connections.
func (rb *replicaBase) closePeers() {
	rb.peerMu.Lock()
	defer rb.peerMu.Unlock()
	for _, p := range rb.peers {
		p.Close()
	}
	rb.peers = make(map[string]*core.PeerClient)
}

// bumpVersion marks the state as changed and returns the new version.
func (rb *replicaBase) bumpVersion() uint64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	rb.version++
	return rb.version
}

// setVersion records the version received with pushed state.
func (rb *replicaBase) setVersion(v uint64) {
	rb.mu.Lock()
	rb.version = v
	rb.mu.Unlock()
}

// currentVersion reads the state version.
func (rb *replicaBase) currentVersion() uint64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.version
}

// addSubscriber registers a peer for pushes/invalidations.
func (rb *replicaBase) addSubscriber(addr, role string) {
	rb.mu.Lock()
	rb.subs[addr] = subscriber{addr: addr, role: role}
	rb.mu.Unlock()
}

// removeSubscriber drops a registration.
func (rb *replicaBase) removeSubscriber(addr string) {
	rb.mu.Lock()
	delete(rb.subs, addr)
	rb.mu.Unlock()
}

// subscribers snapshots the subscriber set, optionally filtered by role.
func (rb *replicaBase) subscribers(role string) []subscriber {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	out := make([]subscriber, 0, len(rb.subs))
	for _, s := range rb.subs {
		if role == "" || s.role == role {
			out = append(out, s)
		}
	}
	return out
}

// handleCommon serves the operations every replica answers: state
// fetches and (un)subscriptions. It reports whether it handled the op.
func (rb *replicaBase) handleCommon(call *rpc.Call) (handled bool, resp []byte, err error) {
	switch call.Op {
	case core.OpStateGet:
		resp, err = rb.handleStateGet(call)
		return true, resp, err
	case core.OpSubscribe:
		resp, err = rb.handleSubscribe(call, true)
		return true, resp, err
	case core.OpUnsubscribe:
		resp, err = rb.handleSubscribe(call, false)
		return true, resp, err
	default:
		return false, nil, nil
	}
}

// handleStateGet answers a versioned state fetch: when the caller's
// version is current the response says "fresh" without shipping state.
func (rb *replicaBase) handleStateGet(call *rpc.Call) ([]byte, error) {
	r := wire.NewReader(call.Body)
	haveVersion := r.Uint64()
	if err := r.Done(); err != nil {
		return nil, err
	}
	rb.mu.Lock()
	version := rb.version
	rb.mu.Unlock()

	w := wire.NewWriter(64)
	if haveVersion == version && version != 0 {
		w.Bool(true) // fresh
		w.Uint64(version)
		w.Bytes32(nil)
		return w.Bytes(), nil
	}
	state, err := rb.env.Exec.MarshalState()
	if err != nil {
		return nil, err
	}
	w.Bool(false)
	w.Uint64(version)
	w.Bytes32(state)
	return w.Bytes(), nil
}

func (rb *replicaBase) handleSubscribe(call *rpc.Call, add bool) ([]byte, error) {
	// Subscriptions alter who receives state: only GDN infrastructure
	// may register (a hostile subscriber could otherwise stall writes).
	if rb.env.Auth != nil && !sec.HasRole(call.Peer, sec.RoleGOS, sec.RoleHTTPD, sec.RoleAdmin) {
		return nil, fmt.Errorf("%w: peer %q may not subscribe", sec.ErrUnauthorized, call.Peer)
	}
	r := wire.NewReader(call.Body)
	addr := r.Str()
	role := r.Str()
	if err := r.Done(); err != nil {
		return nil, err
	}
	if add {
		rb.addSubscriber(addr, role)
	} else {
		rb.removeSubscriber(addr)
	}
	return nil, nil
}

// subscribeTo announces this replica to a parent.
func (rb *replicaBase) subscribeTo(parentAddr, ownAddr, role string) error {
	w := wire.NewWriter(64)
	w.Str(ownAddr)
	w.Str(role)
	_, _, err := rb.peer(parentAddr).Call(core.OpSubscribe, w.Bytes())
	return err
}

// unsubscribeFrom withdraws the announcement; failures are ignored
// because teardown must proceed even when the parent is gone.
func (rb *replicaBase) unsubscribeFrom(parentAddr, ownAddr string) {
	w := wire.NewWriter(64)
	w.Str(ownAddr)
	w.Str("")
	rb.peer(parentAddr).Call(core.OpUnsubscribe, w.Bytes()) //nolint:errcheck
}

// fetchState pulls state from a parent replica. It returns fresh=true
// when the parent confirmed haveVersion is current.
func (rb *replicaBase) fetchState(parentAddr string, haveVersion uint64) (fresh bool, version uint64, state []byte, cost time.Duration, err error) {
	w := wire.NewWriter(8)
	w.Uint64(haveVersion)
	resp, cost, err := rb.peer(parentAddr).Call(core.OpStateGet, w.Bytes())
	if err != nil {
		return false, 0, nil, cost, err
	}
	r := wire.NewReader(resp)
	fresh = r.Bool()
	version = r.Uint64()
	state = r.Bytes32()
	if err := r.Done(); err != nil {
		return false, 0, nil, cost, err
	}
	return fresh, version, state, cost, nil
}

// pushAll delivers op+body to every address concurrently and returns
// the maximum single cost — pushes happen in parallel, so the latency a
// client observes is the slowest push, while the network meter has
// already counted every frame.
func (rb *replicaBase) pushAll(addrs []string, op uint16, body []byte) (time.Duration, error) {
	if len(addrs) == 0 {
		return 0, nil
	}
	type result struct {
		cost time.Duration
		err  error
	}
	results := make(chan result, len(addrs))
	for _, addr := range addrs {
		go func(addr string) {
			_, cost, err := rb.peer(addr).Call(op, body)
			results <- result{cost, err}
		}(addr)
	}
	var max time.Duration
	var firstErr error
	for range addrs {
		r := <-results
		if r.cost > max {
			max = r.cost
		}
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	return max, firstErr
}

// encodeStatePush builds an OpStatePush body.
func encodeStatePush(version uint64, state []byte) []byte {
	w := wire.NewWriter(16 + len(state))
	w.Uint64(version)
	w.Bytes32(state)
	return w.Bytes()
}

// decodeStatePush reverses encodeStatePush.
func decodeStatePush(b []byte) (version uint64, state []byte, err error) {
	r := wire.NewReader(b)
	version = r.Uint64()
	state = r.Bytes32()
	if err := r.Done(); err != nil {
		return 0, nil, err
	}
	return version, state, nil
}

package repl

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"gdn/internal/core"
	"gdn/internal/obs"
	"gdn/internal/rpc"
	"gdn/internal/sec"
	"gdn/internal/store"
	"gdn/internal/wire"
)

// Protocol names.
const (
	Local        = "local"
	ClientServer = "clientserver"
	MasterSlave  = "masterslave"
	Active       = "active"
	Cache        = "cache"
)

// Roles within protocols.
const (
	RoleServer    = "server"
	RoleMaster    = "master"
	RoleSlave     = "slave"
	RoleSequencer = "sequencer"
	RolePeer      = "peer"
	RoleCache     = "cache"
)

// RegisterAll installs every protocol in a registry.
func RegisterAll(reg *core.Registry) {
	reg.RegisterProtocol(LocalProtocol())
	reg.RegisterProtocol(ClientServerProtocol())
	reg.RegisterProtocol(MasterSlaveProtocol())
	reg.RegisterProtocol(ActiveProtocol())
	reg.RegisterProtocol(CacheProtocol())
}

// writeRoles are the principal roles allowed to perform state-modifying
// operations when a deployment runs with security (paper §6.1:
// authorized senders are moderator tools and GDN object servers).
var writeRoles = []string{sec.RoleModerator, sec.RoleAdmin, sec.RoleGOS}

// authorizeWrite admits a state-modifying message. Unsecured
// deployments (env.Auth == nil) admit everyone. Beyond the global
// write roles, a peer with the maintainer role is admitted when the
// object's replication scenario names it in the "maintainers"
// parameter — the paper's fourth group, which "is allowed to manage
// just the contents of a package" (§2).
func authorizeWrite(env *core.Env, call *rpc.Call) error {
	if env.Auth == nil {
		return nil
	}
	if sec.HasRole(call.Peer, writeRoles...) {
		return nil
	}
	if sec.RoleOf(call.Peer) == sec.RoleMaintainer && maintainerListed(env, call.Peer) {
		return nil
	}
	return fmt.Errorf("%w: peer %q may not modify object %s",
		sec.ErrUnauthorized, call.Peer, env.OID.Short())
}

// maintainerListed reports whether the scenario's comma-separated
// "maintainers" parameter names the principal.
func maintainerListed(env *core.Env, principal string) bool {
	for _, m := range strings.Split(env.Param("maintainers", ""), ",") {
		if m != "" && m == principal {
			return true
		}
	}
	return false
}

// subscriber is a peer representative that asked to be kept consistent.
type subscriber struct {
	addr string
	role string
}

// replicaBase carries the bookkeeping every hosted replica shares:
// a state version, the subscriber set, and cached peer connections.
type replicaBase struct {
	env *core.Env

	mu      sync.Mutex
	version uint64
	subs    map[string]subscriber // keyed by address

	peerMu sync.Mutex
	peers  map[string]*core.PeerClient
}

func newReplicaBase(env *core.Env) *replicaBase {
	return &replicaBase{
		env:   env,
		subs:  make(map[string]subscriber),
		peers: make(map[string]*core.PeerClient),
	}
}

// peer returns a cached connection to a remote dispatcher.
func (rb *replicaBase) peer(addr string) *core.PeerClient {
	rb.peerMu.Lock()
	defer rb.peerMu.Unlock()
	p, ok := rb.peers[addr]
	if !ok {
		p = rb.env.Dial(addr)
		rb.peers[addr] = p
	}
	return p
}

// closePeers releases all cached connections.
func (rb *replicaBase) closePeers() {
	rb.peerMu.Lock()
	defer rb.peerMu.Unlock()
	for _, p := range rb.peers {
		p.Close()
	}
	rb.peers = make(map[string]*core.PeerClient)
}

// bumpVersion marks the state as changed and returns the new version.
func (rb *replicaBase) bumpVersion() uint64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	rb.version++
	return rb.version
}

// setVersion records the version received with pushed state.
func (rb *replicaBase) setVersion(v uint64) {
	rb.mu.Lock()
	rb.version = v
	rb.mu.Unlock()
}

// currentVersion reads the state version.
func (rb *replicaBase) currentVersion() uint64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.version
}

// addSubscriber registers a peer for pushes/invalidations.
func (rb *replicaBase) addSubscriber(addr, role string) {
	rb.mu.Lock()
	rb.subs[addr] = subscriber{addr: addr, role: role}
	rb.mu.Unlock()
}

// removeSubscriber drops a registration.
func (rb *replicaBase) removeSubscriber(addr string) {
	rb.mu.Lock()
	delete(rb.subs, addr)
	rb.mu.Unlock()
}

// subscribers snapshots the subscriber set, optionally filtered by role.
func (rb *replicaBase) subscribers(role string) []subscriber {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	out := make([]subscriber, 0, len(rb.subs))
	for _, s := range rb.subs {
		if role == "" || s.role == role {
			out = append(out, s)
		}
	}
	return out
}

// handleCommon serves the operations every replica answers: state
// fetches, chunk fetches, streamed bulk reads and (un)subscriptions.
// It reports whether it handled the op.
func (rb *replicaBase) handleCommon(call *rpc.Call) (handled bool, resp []byte, err error) {
	switch call.Op {
	case core.OpStateGet:
		resp, err = rb.handleStateGet(call)
		return true, resp, err
	case core.OpChunkGet:
		resp, err = rb.handleChunkGet(call)
		return true, resp, err
	case core.OpChunkHave:
		resp, err = rb.handleChunkHave(call)
		return true, resp, err
	case core.OpChunkPut:
		resp, err = rb.handleChunkPut(call)
		return true, resp, err
	case core.OpBulkRead:
		resp, err = rb.handleBulkRead(call)
		return true, resp, err
	case core.OpSubscribe:
		resp, err = rb.handleSubscribe(call, true)
		return true, resp, err
	case core.OpUnsubscribe:
		resp, err = rb.handleSubscribe(call, false)
		return true, resp, err
	default:
		return false, nil, nil
	}
}

// chunkGetMaxBatch bounds one OpChunkGet response: enough chunks to
// amortize the round trip, small enough that no response frame grows
// with package size.
const (
	chunkGetMaxRefs  = 32
	chunkGetMaxBytes = 8 << 20
)

// handleChunkGet serves chunk bytes by ref from the local store — the
// supplier side of delta state transfer. The response may cover a
// prefix of the requested refs (size cap); the caller re-requests the
// rest. Like OpStateGet, it serves reads without write authorization.
func (rb *replicaBase) handleChunkGet(call *rpc.Call) ([]byte, error) {
	if rb.env.Store == nil {
		return nil, fmt.Errorf("repl: %s has no chunk store", rb.env.OID.Short())
	}
	r := wire.NewReader(call.Body)
	n := r.Count()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > chunkGetMaxRefs {
		n = chunkGetMaxRefs
	}
	refs := make([]store.Ref, 0, n)
	for i := 0; i < n; i++ {
		refs = append(refs, r.Hash())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}

	w := wire.NewWriter(4096)
	sent := 0
	var bytes int64
	var bodies [][]byte
	for _, ref := range refs {
		data, err := rb.env.Store.Get(ref)
		if err != nil {
			return nil, fmt.Errorf("repl: chunk %s: %w", ref.Short(), err)
		}
		if sent > 0 && bytes+int64(len(data)) > chunkGetMaxBytes {
			break
		}
		bodies = append(bodies, data)
		bytes += int64(len(data))
		sent++
	}
	w.Count(sent)
	for _, data := range bodies {
		w.Bytes32(data)
	}
	if err := w.Err(); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// handleChunkHave answers the which-of-these-do-you-have negotiation:
// refs in, the subset the local store lacks out. Like OpStateGet it
// serves without write authorization — it reveals only which content
// addresses are present, which OpChunkGet already serves by content.
func (rb *replicaBase) handleChunkHave(call *rpc.Call) ([]byte, error) {
	if rb.env.Store == nil {
		return nil, fmt.Errorf("repl: %s has no chunk store", rb.env.OID.Short())
	}
	refs, err := core.DecodeRefs(call.Body, core.ChunkHaveMaxRefs)
	if err != nil {
		return nil, err
	}
	return core.EncodeRefs(rb.env.Store.Missing(refs)), nil
}

// handleChunkPut stores uploaded chunk bodies — the supply side of a
// negotiated bulk write. Every chunk is verified against its content
// address (Put hashes the bytes), so a hostile writer cannot plant
// content under a foreign name; what it can do is limited to what
// AddFile already allows an authorized writer. The call is normally an
// upload stream (one chunk per frame); a unary body carrying a counted
// batch is accepted too.
func (rb *replicaBase) handleChunkPut(call *rpc.Call) ([]byte, error) {
	if err := authorizeWrite(rb.env, call); err != nil {
		return nil, err
	}
	if rb.env.Store == nil {
		return nil, fmt.Errorf("repl: %s has no chunk store", rb.env.OID.Short())
	}
	if ur := call.Upload(); ur != nil {
		for {
			data, err := ur.Recv()
			if err == io.EOF {
				return nil, nil
			}
			if err != nil {
				return nil, err
			}
			if _, err := rb.env.Store.Put(data); err != nil {
				return nil, err
			}
		}
	}
	r := wire.NewReader(call.Body)
	n := r.Count()
	if err := r.Err(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		data := r.Bytes32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if _, err := rb.env.Store.Put(data); err != nil {
			return nil, err
		}
	}
	return nil, r.Done()
}

// relayChunkOps forwards chunk-negotiation traffic (OpChunkHave,
// OpChunkPut) to the upstream representative whose store manifest
// writes actually read — slaves relay to their master, caches to
// their parent. Answering either op from a forwarding replica's own
// store would negotiate against the wrong store: promising chunks the
// write target lacks, or banking uploads where no write will find
// them. Uploads are relayed one frame at a time, so the forwarder
// buffers one chunk, never the transfer. It reports whether it
// handled the op.
func (rb *replicaBase) relayChunkOps(call *rpc.Call, upstream string) (handled bool, resp []byte, err error) {
	switch call.Op {
	case core.OpChunkHave:
		resp, cost, err := rb.peer(upstream).CallT(call.TC, core.OpChunkHave, call.Body)
		call.Charge(cost)
		return true, resp, err
	case core.OpChunkPut:
		resp, err := rb.relayChunkPut(call, upstream)
		return true, resp, err
	default:
		return false, nil, nil
	}
}

func (rb *replicaBase) relayChunkPut(call *rpc.Call, upstream string) ([]byte, error) {
	if err := authorizeWrite(rb.env, call); err != nil {
		return nil, err
	}
	ur := call.Upload()
	if ur == nil {
		// Unary batch shape: forward the body as-is.
		resp, cost, err := rb.peer(upstream).CallT(call.TC, core.OpChunkPut, call.Body)
		call.Charge(cost)
		return resp, err
	}
	us, err := rb.peer(upstream).CallUploadT(call.TC, core.OpChunkPut, nil)
	if err != nil {
		return nil, err
	}
	for {
		data, err := ur.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			us.Cancel()
			return nil, err
		}
		if err := us.Send(data); err != nil {
			// Upstream already answered (an error or teardown); the
			// receive below returns the authoritative result.
			break
		}
	}
	resp, cost, err := us.CloseAndRecv()
	call.Charge(cost)
	return resp, err
}

// missingChunksFrom runs the OpChunkHave negotiation against a remote
// representative in bounded batches.
func missingChunksFrom(pc *core.PeerClient, refs []store.Ref) ([]store.Ref, time.Duration, error) {
	return core.MissingChunksVia(func(body []byte) ([]byte, time.Duration, error) {
		return pc.Call(core.OpChunkHave, body)
	}, refs)
}

// missingChunksVia is missingChunksFrom with peer-set failover: the
// negotiation is a read (it changes nothing), so any candidate that
// answers — or forwards to the write-target replica — will do.
func missingChunksVia(ps *core.PeerSet, refs []store.Ref) ([]store.Ref, time.Duration, error) {
	var missing []store.Ref
	cost, err := ps.Do(false, func(_ string, pc *core.PeerClient) (time.Duration, error) {
		m, c, err := missingChunksFrom(pc, refs)
		if err == nil {
			missing = m
		}
		return c, err
	})
	return missing, cost, err
}

// pushChunksVia ships chunk bodies with peer-set failover. Chunk puts
// are idempotent (content-addressed stores deduplicate), so a transfer
// that died half-way is safely replayed against the next candidate:
// the chunks that already landed become no-ops.
func pushChunksVia(ps *core.PeerSet, chunks [][]byte) (time.Duration, error) {
	return ps.Do(false, func(_ string, pc *core.PeerClient) (time.Duration, error) {
		return pushChunksTo(pc, chunks)
	})
}

// pushChunksTo ships chunk bodies to a remote representative over an
// OpChunkPut upload stream, one chunk per frame — peak buffering stays
// O(chunk) at both ends no matter how much content moves.
func pushChunksTo(pc *core.PeerClient, chunks [][]byte) (time.Duration, error) {
	if len(chunks) == 0 {
		return 0, nil
	}
	us, err := pc.CallUpload(core.OpChunkPut, nil)
	if err != nil {
		return 0, err
	}
	for _, data := range chunks {
		if err := us.Send(data); err != nil {
			// The server already answered (an error, or teardown); the
			// receive below returns the authoritative result.
			break
		}
	}
	_, cost, err := us.CloseAndRecv()
	return cost, err
}

// fillChunks makes every chunk a marshalled state references present
// in the local store, fetching missing ones from the parent replica
// in bounded batches — the receiver side of delta state transfer. On
// an unchanged file only the changed chunks cross the wire.
//
// Every referenced chunk (present or fetched) is pinned before
// fillChunks returns, so a capacity-mode store cannot evict the early
// chunks of a transfer larger than its budget before UnmarshalState
// takes its own pins. The caller must Release the returned refs once
// the state install (successful or not) is done.
func (rb *replicaBase) fillChunks(tc obs.SpanContext, parent *core.PeerClient, state []byte) (pinned []store.Ref, cost time.Duration, err error) {
	st := rb.env.Store
	re, ok := rb.env.Exec.(core.RefExec)
	if st == nil || !ok {
		return nil, 0, nil
	}
	refs, err := re.StateRefs(state)
	if err != nil {
		return nil, 0, fmt.Errorf("repl: parse state refs: %w", err)
	}
	if refs == nil {
		return nil, 0, nil // semantics does not chunk its state
	}

	// Pin what is already resident; collect the rest for fetching.
	var missing []store.Ref
	seen := make(map[store.Ref]bool, len(refs))
	for _, ref := range refs {
		if seen[ref] {
			continue
		}
		seen[ref] = true
		if st.Retain([]store.Ref{ref}) == nil {
			pinned = append(pinned, ref)
		} else {
			missing = append(missing, ref)
		}
	}
	fail := func(err error) ([]store.Ref, time.Duration, error) {
		st.Release(pinned)
		return nil, cost, err
	}

	// Fetch in pipelined batches: while one OpChunkGet response is
	// verified and stored locally, the next request is already on the
	// wire (depth 2 keeps exactly one fetch ahead), so a cache fill
	// pays max(network, hash+disk) per batch instead of their sum. A
	// size-capped short response leaves a remainder; the outer loop
	// replans those refs into fresh batches.
	for len(missing) > 0 {
		var batches [][]store.Ref
		for i := 0; i < len(missing); i += chunkGetMaxRefs {
			batches = append(batches, missing[i:min(i+chunkGetMaxRefs, len(missing))])
		}
		var leftover []store.Ref
		fetch := func(bi int) ([]byte, error) {
			batch := batches[bi]
			w := wire.NewWriter(8 + 32*len(batch))
			w.Count(len(batch))
			for _, ref := range batch {
				w.Hash(ref)
			}
			resp, c, err := parent.CallT(tc, core.OpChunkGet, w.Bytes())
			cost += c
			if err != nil {
				return nil, fmt.Errorf("repl: fetch %d chunks: %w", len(batch), err)
			}
			return resp, nil
		}
		consume := func(bi int, resp []byte) error {
			batch := batches[bi]
			r := wire.NewReader(resp)
			k := r.Count()
			if err := r.Err(); err != nil {
				return err
			}
			if k == 0 || k > len(batch) {
				return fmt.Errorf("repl: chunk fetch returned %d of %d", k, len(batch))
			}
			for i := 0; i < k; i++ {
				data := r.Bytes32()
				if err := r.Err(); err != nil {
					return err
				}
				// PutPinned verifies the bytes hash to a ref (so a corrupt
				// or hostile parent cannot poison the store) and pins the
				// chunk against eviction for the rest of the transfer.
				got, err := st.PutPinned(data)
				if err != nil {
					return err
				}
				if got != batch[i] {
					st.Release([]store.Ref{got})
					return fmt.Errorf("%w: asked for %s, parent sent %s",
						store.ErrCorrupt, batch[i].Short(), got.Short())
				}
				mFillChunks.Inc()
				mFillBytes.Add(int64(len(data)))
				pinned = append(pinned, got)
			}
			if err := r.Done(); err != nil {
				return err
			}
			leftover = append(leftover, batch[k:]...)
			return nil
		}
		// Responses own nothing (plain byte slices), so no drop hook;
		// cost accumulation in fetch is safe because Pipeline joins the
		// producer goroutine before returning.
		if err := store.Pipeline(2, len(batches), fetch, consume, nil); err != nil {
			return fail(err)
		}
		missing = leftover
	}
	return pinned, cost, nil
}

// handleBulkRead streams the byte range [off, off+n) of one file to
// the caller in chunk-sized frames, reading straight from the content
// store. The manifest's chunks are retained for the duration of the
// stream so a concurrent write cannot delete them mid-transfer; the
// trailer carries the file's size and digest for end-to-end
// verification.
func (rb *replicaBase) handleBulkRead(call *rpc.Call) ([]byte, error) {
	r := wire.NewReader(call.Body)
	path := r.Str()
	off := r.Int64()
	n := r.Int64()
	if err := r.Done(); err != nil {
		return nil, err
	}
	be, ok := rb.env.Exec.(core.BulkExec)
	if !ok || rb.env.Store == nil {
		return nil, core.ErrNoBulk
	}
	m, err := be.FileManifest(path)
	if err != nil {
		return nil, err
	}
	defer rb.env.Store.Release(m.Refs())

	sw, err := call.OpenStream()
	if err != nil {
		return nil, err
	}
	span := obs.StartSpan(call.TC, "store.walk "+path)
	err = streamManifestRange(rb.env.Store, m, off, n, sw)
	span.SetError(err)
	span.End()
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(48)
	w.Int64(m.Size)
	w.Hash(m.Digest)
	return w.Bytes(), nil
}

// bulkPrefetchDepth is how many chunks the OpBulkRead serve loop keeps
// fetched ahead of the wire. Four 256 KiB chunks of lookahead hide a
// disk read (or pooled verify) behind the previous chunk's send
// without tying a meaningful slice of the buffer pool to one stream.
const bulkPrefetchDepth = 4

// servedChunk is one chunk span staged for the wire: either bytes plus
// the ownership-release callback SendOwned fires at write completion,
// or an open file handle positioned at the span start for SendFile to
// splice (sendfile on TCP transports).
type servedChunk struct {
	data    []byte
	release func()
	file    *os.File
	n       int64
}

// discard frees a staged chunk that will never reach the wire.
func (sc servedChunk) discard() {
	if sc.file != nil {
		sc.file.Close()
	}
	if sc.release != nil {
		sc.release()
	}
}

// streamManifestRange streams [off, off+n) of m to sw, prefetching
// bulkPrefetchDepth chunks ahead of the wire and handing each chunk's
// backing buffer or file handle to the stream without an intermediate
// copy. Spans come from ChunkRange, so a failover retry re-entering at
// the delivered byte offset replans its prefetch window from exactly
// that position — including a partial first chunk.
func streamManifestRange(st *store.Store, m core.Manifest, off, n int64, sw *rpc.StreamWriter) error {
	spans := m.ChunkRange(off, n)
	fetch := func(i int) (servedChunk, error) {
		sp := spans[i]
		c := m.Chunks[sp.Index]
		f, size, err := st.OpenChunk(c.Ref)
		if err == nil {
			if size != c.Size {
				f.Close()
				return servedChunk{}, fmt.Errorf("repl: chunk %s is %d bytes, manifest claims %d",
					c.Ref.Short(), size, c.Size)
			}
			if sp.A > 0 {
				if _, err := f.Seek(sp.A, io.SeekStart); err != nil {
					f.Close()
					return servedChunk{}, err
				}
			}
			return servedChunk{file: f, n: sp.B - sp.A}, nil
		}
		if !errors.Is(err, store.ErrNotOnDisk) {
			return servedChunk{}, fmt.Errorf("repl: bulk content lost chunk %s: %w", c.Ref.Short(), err)
		}
		data, release, err := st.GetZC(c.Ref)
		if err != nil {
			return servedChunk{}, fmt.Errorf("repl: bulk content lost chunk %s: %w", c.Ref.Short(), err)
		}
		if int64(len(data)) != c.Size {
			if release != nil {
				release()
			}
			return servedChunk{}, fmt.Errorf("repl: chunk %s is %d bytes, manifest claims %d",
				c.Ref.Short(), len(data), c.Size)
		}
		return servedChunk{data: data[sp.A:sp.B], release: release}, nil
	}
	consume := func(_ int, sc servedChunk) error {
		if sc.file != nil {
			f := sc.file
			return sw.SendFile(f, sc.n, func() { f.Close() })
		}
		return sw.SendOwned(sc.data, sc.release)
	}
	return store.Pipeline(bulkPrefetchDepth, len(spans), fetch, consume, servedChunk.discard)
}

// readLocalBulk is the replica-side core.BulkReader: it reads from
// the co-resident store with no network traffic.
func (rb *replicaBase) readLocalBulk(tc obs.SpanContext, path string, off, n int64, fn func([]byte) error) (core.Manifest, time.Duration, error) {
	be, ok := rb.env.Exec.(core.BulkExec)
	if !ok || rb.env.Store == nil {
		return core.Manifest{}, 0, core.ErrNoBulk
	}
	m, err := be.FileManifest(path)
	if err != nil {
		return core.Manifest{}, 0, err
	}
	defer rb.env.Store.Release(m.Refs())
	span := obs.StartSpan(tc, "store.walk "+path)
	err = m.WalkRange(rb.env.Store, off, n, fn)
	span.SetError(err)
	span.End()
	if err != nil {
		return m, 0, err
	}
	return m, 0, nil
}

// ReadBulk implements core.BulkReader for every replica type that
// embeds replicaBase (method promotion): the content is local, so the
// read never touches the network. Protocol types whose local state
// can be stale (the cache) override it.
func (rb *replicaBase) ReadBulk(tc obs.SpanContext, path string, off, n int64, fn func([]byte) error) (core.Manifest, time.Duration, error) {
	return rb.readLocalBulk(tc, path, off, n, fn)
}

// streamBulkFrom is the proxy-side core.BulkReader body: it opens an
// OpBulkRead stream to a remote representative and feeds each frame
// to fn. Peak buffering is one frame.
func streamBulkFrom(tc obs.SpanContext, pc *core.PeerClient, path string, off, n int64, fn func([]byte) error) (m core.Manifest, cost time.Duration, err error) {
	span := obs.StartSpan(tc, "repl.stream "+path)
	defer func() {
		span.SetError(err)
		span.End()
	}()
	w := wire.NewWriter(32 + len(path))
	w.Str(path)
	w.Int64(off)
	w.Int64(n)
	st, err := pc.CallStreamT(span.Context(), core.OpBulkRead, w.Bytes())
	if err != nil {
		return core.Manifest{}, 0, err
	}
	defer st.Close()
	for {
		p, _, err := st.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			return core.Manifest{}, st.Cost(), err
		}
		if err := fn(p); err != nil {
			return core.Manifest{}, st.Cost(), err
		}
	}
	r := wire.NewReader(st.Trailer())
	m = core.Manifest{Size: r.Int64(), Digest: r.Hash()}
	if err := r.Done(); err != nil {
		return core.Manifest{}, st.Cost(), err
	}
	return m, st.Cost(), nil
}

// streamBulkVia is streamBulkFrom with peer-set failover: when the
// streaming replica dies mid-transfer the read resumes on the next
// candidate at the byte position already delivered, so the consumer
// sees one uninterrupted range and a replica crash costs one retried
// request instead of a failed download. Errors raised by fn itself
// (the consumer) are terminal — retrying elsewhere would replay bytes
// the consumer already took.
func streamBulkVia(tc obs.SpanContext, ps *core.PeerSet, path string, off, n int64, fn func([]byte) error) (core.Manifest, time.Duration, error) {
	var m core.Manifest
	var delivered int64
	cost, err := ps.Do(false, func(_ string, pc *core.PeerClient) (time.Duration, error) {
		remaining := n
		if n >= 0 {
			remaining = n - delivered
			if remaining <= 0 && delivered > 0 {
				// Everything asked for already flowed; only the trailer
				// was lost. Fetch it via a zero-length read.
				remaining = 0
			}
		}
		var sinkErr error
		got, c, err := streamBulkFrom(tc, pc, path, off+delivered, remaining, func(p []byte) error {
			if err := fn(p); err != nil {
				sinkErr = err
				return err
			}
			delivered += int64(len(p))
			return nil
		})
		if sinkErr != nil {
			return c, core.NoFailover(sinkErr)
		}
		if err == nil {
			m = got
		}
		return c, err
	})
	return m, cost, err
}

// handleStateGet answers a versioned state fetch: when the caller's
// version is current the response says "fresh" without shipping state.
func (rb *replicaBase) handleStateGet(call *rpc.Call) ([]byte, error) {
	r := wire.NewReader(call.Body)
	haveVersion := r.Uint64()
	if err := r.Done(); err != nil {
		return nil, err
	}
	rb.mu.Lock()
	version := rb.version
	rb.mu.Unlock()

	w := wire.NewWriter(64)
	if haveVersion == version && version != 0 {
		w.Bool(true) // fresh
		w.Uint64(version)
		w.Bytes32(nil)
		return w.Bytes(), nil
	}
	state, err := rb.env.Exec.MarshalState()
	if err != nil {
		return nil, err
	}
	w.Bool(false)
	w.Uint64(version)
	w.Bytes32(state)
	return w.Bytes(), nil
}

func (rb *replicaBase) handleSubscribe(call *rpc.Call, add bool) ([]byte, error) {
	// Subscriptions alter who receives state: only GDN infrastructure
	// may register (a hostile subscriber could otherwise stall writes).
	if rb.env.Auth != nil && !sec.HasRole(call.Peer, sec.RoleGOS, sec.RoleHTTPD, sec.RoleAdmin) {
		return nil, fmt.Errorf("%w: peer %q may not subscribe", sec.ErrUnauthorized, call.Peer)
	}
	r := wire.NewReader(call.Body)
	addr := r.Str()
	role := r.Str()
	if err := r.Done(); err != nil {
		return nil, err
	}
	if add {
		rb.addSubscriber(addr, role)
	} else {
		rb.removeSubscriber(addr)
	}
	return nil, nil
}

// subscribeTo announces this replica to a parent.
func (rb *replicaBase) subscribeTo(parentAddr, ownAddr, role string) error {
	w := wire.NewWriter(64)
	w.Str(ownAddr)
	w.Str(role)
	_, _, err := rb.peer(parentAddr).Call(core.OpSubscribe, w.Bytes())
	return err
}

// unsubscribeFrom withdraws the announcement; failures are ignored
// because teardown must proceed even when the parent is gone.
func (rb *replicaBase) unsubscribeFrom(parentAddr, ownAddr string) {
	w := wire.NewWriter(64)
	w.Str(ownAddr)
	w.Str("")
	rb.peer(parentAddr).Call(core.OpUnsubscribe, w.Bytes()) //nolint:errcheck
}

// fetchState pulls state from a parent replica. It returns fresh=true
// when the parent confirmed haveVersion is current. The state is a
// manifest for chunk-stored semantics; fetchState completes the delta
// sync by pulling exactly the referenced chunks the local store lacks,
// so the caller can install the state directly. The returned pins
// hold every referenced chunk against eviction; the caller passes
// them to releasePins once the install is done.
func (rb *replicaBase) fetchState(tc obs.SpanContext, parent *core.PeerClient, haveVersion uint64) (fresh bool, version uint64, state []byte, pins []store.Ref, cost time.Duration, err error) {
	w := wire.NewWriter(8)
	w.Uint64(haveVersion)
	resp, cost, err := parent.CallT(tc, core.OpStateGet, w.Bytes())
	if err != nil {
		return false, 0, nil, nil, cost, err
	}
	r := wire.NewReader(resp)
	fresh = r.Bool()
	version = r.Uint64()
	state = r.Bytes32()
	if err := r.Done(); err != nil {
		return false, 0, nil, nil, cost, err
	}
	if !fresh {
		var fillCost time.Duration
		pins, fillCost, err = rb.fillChunks(tc, parent, state)
		cost += fillCost
		if err != nil {
			return false, 0, nil, nil, cost, err
		}
	}
	return fresh, version, state, pins, cost, nil
}

// fetchStateVia is fetchState with peer-set failover: the fetch (and
// its delta chunk fill) runs against the top-ranked parent candidate
// and retries down the ranking when one is dead. The address that
// actually served is returned so the caller can track its current
// parent (an invalidation-mode cache re-subscribes there).
func (rb *replicaBase) fetchStateVia(tc obs.SpanContext, ps *core.PeerSet, haveVersion uint64) (servedBy string, fresh bool, version uint64, state []byte, pins []store.Ref, cost time.Duration, err error) {
	cost, err = ps.Do(false, func(addr string, pc *core.PeerClient) (time.Duration, error) {
		f, v, st, p, c, e := rb.fetchState(tc, pc, haveVersion)
		if e == nil {
			servedBy, fresh, version, state, pins = addr, f, v, st, p
		}
		return c, e
	})
	return servedBy, fresh, version, state, pins, cost, err
}

// releasePins drops the transfer pins fetchState/fillChunks took.
func (rb *replicaBase) releasePins(refs []store.Ref) {
	if rb.env.Store != nil && len(refs) > 0 {
		rb.env.Store.Release(refs)
	}
}

// pushAll delivers op+body to every address concurrently and returns
// the maximum single cost — pushes happen in parallel, so the latency a
// client observes is the slowest push, while the network meter has
// already counted every frame.
func (rb *replicaBase) pushAll(addrs []string, op uint16, body []byte) (time.Duration, error) {
	if len(addrs) == 0 {
		return 0, nil
	}
	type result struct {
		cost time.Duration
		err  error
	}
	results := make(chan result, len(addrs))
	for _, addr := range addrs {
		go func(addr string) {
			_, cost, err := rb.peer(addr).Call(op, body)
			results <- result{cost, err}
		}(addr)
	}
	var max time.Duration
	var firstErr error
	for range addrs {
		r := <-results
		if r.cost > max {
			max = r.cost
		}
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	return max, firstErr
}

// encodeStatePush builds an OpStatePush body.
func encodeStatePush(version uint64, state []byte) []byte {
	w := wire.NewWriter(16 + len(state))
	w.Uint64(version)
	w.Bytes32(state)
	return w.Bytes()
}

// decodeStatePush reverses encodeStatePush.
func decodeStatePush(b []byte) (version uint64, state []byte, err error) {
	r := wire.NewReader(b)
	version = r.Uint64()
	state = r.Bytes32()
	if err := r.Done(); err != nil {
		return 0, nil, err
	}
	return version, state, nil
}

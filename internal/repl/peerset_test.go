package repl

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gdn/internal/core"
	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/obs"
	"gdn/internal/pkgobj"
	"gdn/internal/rpc"
	"gdn/internal/store"
)

// Tests for the ranked peer-set behaviour the proxies now share: role
// preference, read spreading across interchangeable replicas, and
// failover to the next candidate when the bound replica dies.

func TestPickPeerRolePreferenceOrdering(t *testing.T) {
	peers := []gls.ContactAddress{
		{Role: RolePeer, Address: "a:peer"},
		{Role: RoleSlave, Address: "b:slave"},
		{Role: RoleMaster, Address: "c:master"},
		{Role: RoleSlave, Address: "d:slave2"},
	}
	env := &core.Env{Peers: peers}

	// The earliest role in prefs wins, regardless of peer order; among
	// equals the first listed is picked.
	if got := pickPeer(env, RoleMaster, RoleSlave); got != "c:master" {
		t.Fatalf("pickPeer(master, slave) = %q", got)
	}
	if got := pickPeer(env, RoleSlave, RoleMaster); got != "b:slave" {
		t.Fatalf("pickPeer(slave, master) = %q", got)
	}
	if got := pickPeer(env, RoleServer, RoleSequencer, RolePeer); got != "a:peer" {
		t.Fatalf("pickPeer(..., peer) = %q", got)
	}
	// No preferred role present: the first peer is the fallback.
	if got := pickPeer(env, RoleServer); got != "a:peer" {
		t.Fatalf("pickPeer fallback = %q", got)
	}
	if got := pickPeer(&core.Env{}, RoleServer); got != "" {
		t.Fatalf("pickPeer on empty set = %q", got)
	}
}

// countingBackend registers a fake representative that answers reads
// and counts how many it served.
func countingBackend(t *testing.T, f *fixture, site string, oid ids.OID) *atomic.Int64 {
	t.Helper()
	var hits atomic.Int64
	f.disps[site].Register(oid, func(call *rpc.Call) ([]byte, error) {
		if call.Op != core.OpInvoke {
			return nil, fmt.Errorf("backend %s: unexpected op %d", site, call.Op)
		}
		hits.Add(1)
		return []byte("v"), nil
	})
	t.Cleanup(func() { f.disps[site].Unregister(oid) })
	return &hits
}

func TestTwoProxiesOfOneObjectSpreadReads(t *testing.T) {
	// The seed bug this guards against: msProxy used to seed its
	// read-replica RNG from the OID's first bytes, so every proxy of a
	// given object world-wide picked the same slave order and herded
	// the object's whole read load onto one replica.
	f := newFixture(t, nil)
	oid := ids.New()
	// Both slaves sit in the caller's far region at equal distance, so
	// the latency demotion (which rightly prefers a much nearer
	// replica) stays out of the picture and pure spreading is tested.
	originHits := countingBackend(t, f, "origin", oid)
	euHits := countingBackend(t, f, "eu-client", oid)

	peers := []gls.ContactAddress{
		{Protocol: MasterSlave, Role: RoleSlave, Address: "origin:objects"},
		{Protocol: MasterSlave, Role: RoleSlave, Address: "eu-client:objects"},
	}
	proto := MasterSlaveProtocol()
	const proxies, reads = 2, 32
	for i := 0; i < proxies; i++ {
		p, err := proto.NewProxy(&core.Env{
			OID: oid, Site: "us-client", Net: f.net, Peers: peers,
			Logf: func(string, ...any) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < reads; j++ {
			if _, _, err := p.Invoke(core.Invocation{Method: "get", Args: getArgs("k")}); err != nil {
				t.Fatal(err)
			}
		}
		p.Close()
	}

	total := originHits.Load() + euHits.Load()
	if total != proxies*reads {
		t.Fatalf("backends saw %d reads, want %d", total, proxies*reads)
	}
	// Both slaves must carry real load. With per-instance seeding and
	// per-call shuffling each expects ~50%; require 25% so the test
	// never flakes while still catching a herd.
	min := int64(total / 4)
	if originHits.Load() < min || euHits.Load() < min {
		t.Fatalf("read herding: origin=%d eu=%d of %d", originHits.Load(), euHits.Load(), total)
	}
}

func TestUnaryReadFailsOverToNextReplica(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	_, masterCA := f.replica(oid, "origin", MasterSlave, RoleMaster, nil, nil)
	f.replica(oid, "eu-client", MasterSlave, RoleSlave, nil, []gls.ContactAddress{masterCA})

	proto := MasterSlaveProtocol()
	p, err := proto.NewProxy(&core.Env{
		OID: oid, Site: "us-client", Net: f.net,
		Peers: []gls.ContactAddress{
			masterCA,
			{Protocol: MasterSlave, Role: RoleSlave, Address: "eu-client:objects"},
		},
		Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	mp := p.(*msProxy)

	if _, _, err := p.Invoke(core.Invocation{Method: "set", Write: true, Args: setArgs("k", "v")}); err != nil {
		t.Fatal(err)
	}

	// Kill the read-preferred slave: the read retries on the master
	// instead of failing, with exactly one failover.
	f.net.SetDown("eu-client", true)
	out, _, err := p.Invoke(core.Invocation{Method: "get", Args: getArgs("k")})
	if err != nil {
		t.Fatalf("read with dead slave: %v", err)
	}
	if string(out) != "v" {
		t.Fatalf("read = %q", out)
	}
	if got := mp.Peers().Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}

	// The failed candidate is now in backoff: further reads go straight
	// to the healthy replica without re-dialling the corpse.
	for i := 0; i < 4; i++ {
		if _, _, err := p.Invoke(core.Invocation{Method: "get", Args: getArgs("k")}); err != nil {
			t.Fatal(err)
		}
	}
	if got := mp.Peers().Failovers(); got != 1 {
		t.Fatalf("failovers after backoff = %d, want still 1", got)
	}
}

func TestCacheForwardsChunkNegotiationToParent(t *testing.T) {
	// A cache replica's store is not the store manifest writes read:
	// negotiation answered locally would promise chunks the server
	// lacks (OpChunkHave) or bank uploads where no write finds them
	// (OpChunkPut). Both must relay to the parent chain.
	f := newFixture(t, nil)
	pkgobj.Register(f.rts["origin"].Registry())
	oid := ids.New()

	serverLR, serverCA, err := newPkgReplica(f, oid, "origin", ClientServer, RoleServer, nil)
	if err != nil {
		t.Fatal(err)
	}
	present := []byte("chunk the server already holds")
	if err := pkgobj.NewStub(serverLR).AddFile("seed", present); err != nil {
		t.Fatal(err)
	}
	cacheLR, _, err := newPkgReplica(f, oid, "eu-client", Cache, RoleCache, []gls.ContactAddress{serverCA})
	if err != nil {
		t.Fatal(err)
	}

	pc := core.DialPeer(f.net, "us-client", oid, "eu-client:objects", nil)
	defer pc.Close()

	// Negotiate THROUGH the cache: the server has `present`, so only
	// the absent ref may come back missing — even though the cache's
	// own store holds neither.
	absent := []byte("chunk nobody has yet")
	refs := []store.Ref{store.RefOf(present), store.RefOf(absent)}
	missing, _, err := missingChunksFrom(pc, refs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0] != store.RefOf(absent) {
		t.Fatalf("missing via cache = %v, want just the absent ref (cache answered from the wrong store)", missing)
	}

	// Push the absent chunk through the cache: it must land in the
	// server's store (where a manifest write will find it), not the
	// cache's.
	if _, err := pushChunksTo(pc, [][]byte{absent}); err != nil {
		t.Fatal(err)
	}
	serverStore := serverLR.Semantics().(*pkgobj.Package).Store()
	if !serverStore.Has(store.RefOf(absent)) {
		t.Fatal("pushed chunk missing from the server's store")
	}
	cacheStore := cacheLR.Semantics().(*pkgobj.Package).Store()
	if cacheStore.Has(store.RefOf(absent)) {
		t.Fatal("pushed chunk banked in the cache's store instead of relayed")
	}
}

// newPkgReplica hosts a pkgobj replica at a site without registering
// it in the location service.
func newPkgReplica(f *fixture, oid ids.OID, site, protocol, role string, peers []gls.ContactAddress) (*core.LR, gls.ContactAddress, error) {
	lr, ca, err := f.rts[site].NewReplica(core.ReplicaSpec{
		OID: oid, Impl: pkgobj.Impl, Protocol: protocol, Role: role, Peers: peers,
	}, f.disps[site])
	if err != nil {
		return nil, gls.ContactAddress{}, err
	}
	f.t.Cleanup(func() { lr.Close() })
	return lr, ca, nil
}

func TestBulkReadResumesMidStreamOnReplicaDeath(t *testing.T) {
	f := newFixture(t, nil)
	pkgobj.Register(f.rts["origin"].Registry())
	oid := ids.New()

	masterLR, masterCA, err := newPkgReplica(f, oid, "origin", MasterSlave, RoleMaster, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 8 MiB = 32 chunks: more frames than the stream's credit window,
	// so the serving replica is still mid-transfer (flow-controlled)
	// when its site goes down — the kill lands mid-stream, not after
	// the whole file is already in flight.
	content := bytes.Repeat([]byte("failover bytes! "), 512*1024)
	if err := pkgobj.NewStub(masterLR).UploadFile("blob", content); err != nil {
		t.Fatal(err)
	}
	_, slaveCA, err := newPkgReplica(f, oid, "eu-client", MasterSlave, RoleSlave, []gls.ContactAddress{masterCA})
	if err != nil {
		t.Fatal(err)
	}

	proto := MasterSlaveProtocol()
	p, err := proto.NewProxy(&core.Env{
		OID: oid, Site: "us-client", Net: f.net,
		Peers: []gls.ContactAddress{masterCA, slaveCA},
		Logf:  func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	mp := p.(*msProxy)

	// Stream the file; after the first frame lands, crash the replica
	// serving it (reads prefer the slave). The stream must resume on
	// the master at the exact byte position already delivered. The read
	// carries a trace so the resumed stream's spans can be checked for
	// continuity below.
	root := obs.StartTrace("test.failover-read")
	var got bytes.Buffer
	var killOnce sync.Once
	m, _, err := p.(core.BulkReader).ReadBulk(root.Context(), "blob", 0, -1, func(b []byte) error {
		got.Write(b)
		killOnce.Do(func() { f.net.SetDown("eu-client", true) })
		return nil
	})
	root.End()
	if err != nil {
		t.Fatalf("bulk read across replica death: %v", err)
	}
	if m.Size != int64(len(content)) {
		t.Fatalf("manifest size = %d, want %d", m.Size, len(content))
	}
	if !bytes.Equal(got.Bytes(), content) {
		t.Fatalf("content mismatch after failover: got %d bytes", got.Len())
	}
	if fo := mp.Peers().Failovers(); fo != 1 {
		t.Fatalf("failovers = %d, want exactly 1 (one retried request)", fo)
	}

	// Trace continuity across the failover: both stream attempts (the
	// one the crash cut short and the resumed one) must have recorded
	// spans under the same trace ID.
	var streamSpans int
	for _, rec := range obs.DefaultTracer.Recent() {
		if rec.Trace == root.Context().Trace && rec.Name == "repl.stream blob" {
			streamSpans++
		}
	}
	if streamSpans != 2 {
		t.Fatalf("repl.stream spans in trace = %d, want 2 (original + resumed)", streamSpans)
	}
}

func TestBulkRangeReadResumesAtPartialChunkOffset(t *testing.T) {
	// The range-request flavour of mid-stream failover: the read starts
	// inside a chunk (so the serving side's prefetch plan opens with a
	// partial span) and the replica dies mid-transfer, forcing the
	// resumed stream to re-plan its prefetch window from the delivered
	// byte offset — which again lands mid-chunk. The consumer must see
	// exactly content[off:off+n]: no duplicated bytes from a prefetch
	// window that had run ahead of delivery, no gap at the seam.
	f := newFixture(t, nil)
	pkgobj.Register(f.rts["origin"].Registry())
	oid := ids.New()

	masterLR, masterCA, err := newPkgReplica(f, oid, "origin", MasterSlave, RoleMaster, nil)
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 8<<20)
	for i := range content {
		content[i] = byte(i * 31)
	}
	if err := pkgobj.NewStub(masterLR).UploadFile("blob", content); err != nil {
		t.Fatal(err)
	}
	_, slaveCA, err := newPkgReplica(f, oid, "eu-client", MasterSlave, RoleSlave, []gls.ContactAddress{masterCA})
	if err != nil {
		t.Fatal(err)
	}

	proto := MasterSlaveProtocol()
	p, err := proto.NewProxy(&core.Env{
		OID: oid, Site: "us-client", Net: f.net,
		Peers: []gls.ContactAddress{masterCA, slaveCA},
		Logf:  func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Both bounds land strictly inside chunks (256 KiB canonical size).
	const off, n = 300_000, 5_000_000
	var got bytes.Buffer
	var killOnce sync.Once
	_, _, err = p.(core.BulkReader).ReadBulk(obs.SpanContext{}, "blob", off, n, func(b []byte) error {
		got.Write(b)
		killOnce.Do(func() { f.net.SetDown("eu-client", true) })
		return nil
	})
	if err != nil {
		t.Fatalf("range read across replica death: %v", err)
	}
	if !bytes.Equal(got.Bytes(), content[off:off+n]) {
		t.Fatalf("range content mismatch after failover: got %d bytes, want %d", got.Len(), n)
	}
	if fo := p.(*msProxy).Peers().Failovers(); fo != 1 {
		t.Fatalf("failovers = %d, want exactly 1", fo)
	}
}

func TestRelayedChunkOpsPropagateTrace(t *testing.T) {
	// The relay path is where a trace most easily goes dark: the cache
	// answers OpChunkHave by making a fresh outbound call to its
	// parent, and only call.TC threads the incoming trace into it. A
	// traced negotiation through the cache must therefore record a
	// server-side span at both hops under one trace ID.
	f := newFixture(t, nil)
	pkgobj.Register(f.rts["origin"].Registry())
	oid := ids.New()

	_, serverCA, err := newPkgReplica(f, oid, "origin", ClientServer, RoleServer, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := newPkgReplica(f, oid, "eu-client", Cache, RoleCache, []gls.ContactAddress{serverCA}); err != nil {
		t.Fatal(err)
	}

	pc := core.DialPeer(f.net, "us-client", oid, "eu-client:objects", nil)
	defer pc.Close()

	root := obs.StartTrace("test.chunk-negotiate")
	refs := []store.Ref{store.RefOf([]byte("chunk nobody has"))}
	missing, _, err := core.MissingChunksVia(func(body []byte) ([]byte, time.Duration, error) {
		return pc.CallT(root.Context(), core.OpChunkHave, body)
	}, refs)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 {
		t.Fatalf("missing = %v, want the one absent ref", missing)
	}

	var serveSpans int
	for _, rec := range obs.DefaultTracer.Recent() {
		if rec.Trace == root.Context().Trace && strings.HasPrefix(rec.Name, "rpc.serve op") {
			serveSpans++
		}
	}
	if serveSpans != 2 {
		t.Fatalf("rpc.serve spans in trace = %d, want 2 (cache hop + relayed parent hop)", serveSpans)
	}
}

package repl

import (
	"testing"
	"time"

	"gdn/internal/gls"
	"gdn/internal/ids"
)

// Cache re-parenting: the cache protocol's upstream is a ranked peer
// set, not a bind-time pin — when the parent it has been filling from
// dies, the next fill walks the ranking to a live one (closing the
// ROADMAP item "pickPeer still pins the cache protocol's parent at
// construction").

func TestCacheFailsOverToAnotherParent(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	master, masterCA := f.replica(oid, "origin", MasterSlave, RoleMaster, nil, nil)
	_, slaveCA := f.replica(oid, "eu-client", MasterSlave, RoleSlave, nil, []gls.ContactAddress{masterCA})

	cacheLR, _ := f.replica(oid, "us-client", Cache, RoleCache,
		map[string]string{"ttl": "10s"}, []gls.ContactAddress{masterCA, slaveCA})
	cache := cacheRepl(t, cacheLR)

	mustSet(t, master, "k", "v1")
	if val, _ := mustGet(t, cacheLR, "k"); val != "v1" {
		t.Fatalf("fill read = %q", val)
	}
	// The preferred parent is the slave (state-holding, nearest role
	// rank); it dies, and the master keeps writing.
	f.net.SetDown("eu-client", true)
	mustSet(t, master, "k", "v2")

	// Past the TTL the revalidation cannot reach the dead slave; the
	// old pinned-parent cache 502'd here. The peer set walks on to the
	// master and the cache serves the fresh value.
	f.clock.Advance(11 * time.Second)
	if val, _ := mustGet(t, cacheLR, "k"); val != "v2" {
		t.Fatalf("read after parent death = %q, want v2 via the surviving parent", val)
	}
	if cache.Parent() == slaveCA.Address {
		t.Fatal("dead slave must not stay the preferred parent")
	}
}

func TestColdCacheRefusesToSeedPeers(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	server, serverCA := f.replica(oid, "origin", ClientServer, RoleServer, nil, nil)
	mustSet(t, server, "k", "v1")
	cache1LR, cache1CA := f.replica(oid, "eu-client", Cache, RoleCache, nil, []gls.ContactAddress{serverCA})

	// A second cache whose only parent candidate is the first cache —
	// which has never filled. The fill must fail loudly, not install
	// the cold cache's empty state as a success.
	cache2LR, _ := f.replica(oid, "us-client", Cache, RoleCache, nil, []gls.ContactAddress{cache1CA})
	if _, _, err := cache2LR.Invoke("get", false, getArgs("k")); err == nil {
		t.Fatal("fill from a cold cache must fail, not serve empty state")
	}

	// Once the parent cache holds state, the chained fill works and
	// serves the real value.
	if val, _ := mustGet(t, cache1LR, "k"); val != "v1" {
		t.Fatalf("parent cache fill = %q", val)
	}
	if val, _ := mustGet(t, cache2LR, "k"); val != "v1" {
		t.Fatalf("chained cache fill = %q, want v1", val)
	}
}

func TestInvalidateModeCacheParentsAtInvalidationSource(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	master, masterCA := f.replica(oid, "origin", MasterSlave, RoleMaster, nil, nil)
	_, slaveCA := f.replica(oid, "eu-client", MasterSlave, RoleSlave, nil, []gls.ContactAddress{masterCA})

	cacheLR, _ := f.replica(oid, "us-client", Cache, RoleCache,
		map[string]string{"mode": "invalidate"}, []gls.ContactAddress{slaveCA, masterCA})
	cache := cacheRepl(t, cacheLR)

	// Invalidation-mode caches must parent where invalidations
	// originate: only the master pushes OpInvalidate to its cache
	// subscribers — a slave never relays it, and a cache subscribed
	// there would serve stale state forever.
	cache.cacheMu.Lock()
	subscribed := cache.subscribedAt
	cache.cacheMu.Unlock()
	if subscribed != masterCA.Address {
		t.Fatalf("invalidate-mode cache subscribed at %q, want the master %q", subscribed, masterCA.Address)
	}

	mustSet(t, master, "k", "v1")
	if val, _ := mustGet(t, cacheLR, "k"); val != "v1" {
		t.Fatalf("fill read = %q", val)
	}

	// The slave dying is irrelevant to the cache's coherence: writes
	// through the cache reach the master, and master writes invalidate
	// the copy — no TTL, no staleness window.
	f.net.SetDown("eu-client", true)
	if _, _, err := cacheLR.Invoke("set", true, setArgs("k", "v2")); err != nil {
		t.Fatalf("write-through with dead slave: %v", err)
	}
	if val, _ := mustGet(t, cacheLR, "k"); val != "v2" {
		t.Fatalf("refill read = %q", val)
	}
	mustSet(t, master, "k", "v3")
	if val, _ := mustGet(t, cacheLR, "k"); val != "v3" {
		t.Fatalf("read after invalidation = %q, want v3", val)
	}
	if got := cache.Stats().Invalidations; got == 0 {
		t.Fatal("cache never received an invalidation")
	}
}

package repl

import (
	"bytes"
	"math/rand"
	"testing"

	"gdn/internal/core"
	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/netsim"
	"gdn/internal/pkgobj"
)

// pkgReplica hosts a package replica at a site (the repl fixture's
// replica helper is kv-specific).
func pkgReplica(t *testing.T, f *fixture, oid ids.OID, site, protocol, role string, peers []gls.ContactAddress) (*core.LR, gls.ContactAddress) {
	t.Helper()
	lr, ca, err := f.rts[site].NewReplica(core.ReplicaSpec{
		OID: oid, Impl: pkgobj.Impl, Protocol: protocol, Role: role, Peers: peers,
	}, f.disps[site])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lr.Close() })
	if _, _, err := f.rts[site].Resolver().Insert(oid, ca); err != nil {
		t.Fatal(err)
	}
	return lr, ca
}

// TestMasterSlaveDeltaSyncShipsOnlyMissingChunks pins the delta state
// transfer property: after the initial full sync, an append to a
// multi-chunk file costs the wide-area link roughly the appended
// chunk, because the state push carries manifests and the slave
// fetches only refs its store lacks.
func TestMasterSlaveDeltaSyncShipsOnlyMissingChunks(t *testing.T) {
	f := newFixture(t, nil)
	pkgobj.Register(f.rts["origin"].Registry())

	const chunk = pkgobj.DefaultChunkSize
	base := make([]byte, 8*chunk)
	rand.New(rand.NewSource(7)).Read(base)

	oid := ids.Derive("delta-sync")
	masterLR, masterCA := pkgReplica(t, f, oid, "origin", MasterSlave, RoleMaster, nil)
	master := pkgobj.NewStub(masterLR)
	if err := master.UploadFile("blob", base); err != nil {
		t.Fatal(err)
	}

	// Slave creation across the wide area: the initial transfer must
	// ship everything once.
	f.net.ResetMeter()
	slaveLR, _ := pkgReplica(t, f, oid, "us-client", MasterSlave, RoleSlave, []gls.ContactAddress{masterCA})
	if wan := f.net.Meter().Bytes[netsim.WideArea]; wan < int64(len(base)) {
		t.Fatalf("initial sync shipped %d WAN bytes, want >= %d", wan, len(base))
	}

	// Append one chunk of fresh content: the synchronous push must
	// cost ~one chunk, not a full-state reship.
	extra := make([]byte, chunk)
	rand.New(rand.NewSource(8)).Read(extra)
	f.net.ResetMeter()
	if err := master.AppendFile("blob", extra); err != nil {
		t.Fatal(err)
	}
	wan := f.net.Meter().Bytes[netsim.WideArea]
	if wan < int64(chunk) {
		t.Fatalf("append shipped %d WAN bytes, want at least the appended chunk (%d)", wan, chunk)
	}
	if wan > int64(2*chunk) {
		t.Fatalf("append shipped %d WAN bytes — full-state reship instead of delta (file is %d)", wan, len(base)+chunk)
	}

	// The slave converged byte-for-byte.
	slave := pkgobj.NewStub(slaveLR)
	got, err := slave.GetFileContents("blob")
	if err != nil || !bytes.Equal(got, append(base, extra...)) {
		t.Fatalf("slave content diverged: %v", err)
	}
}

// TestProxyStreamedReadVerifies pins the proxy-side bulk stream: a
// binding client reads a multi-chunk file through ReadFileTo (the
// OpBulkRead frame stream) and the digest check passes.
func TestProxyStreamedReadVerifies(t *testing.T) {
	f := newFixture(t, nil)
	pkgobj.Register(f.rts["origin"].Registry())

	content := make([]byte, 5*pkgobj.DefaultChunkSize+999)
	rand.New(rand.NewSource(9)).Read(content)

	oid := ids.Derive("bulk-stream")
	serverLR, _ := pkgReplica(t, f, oid, "origin", ClientServer, RoleServer, nil)
	if err := pkgobj.NewStub(serverLR).UploadFile("blob", content); err != nil {
		t.Fatal(err)
	}

	clientLR := f.bind("us-client", oid)
	if _, ok := clientLR.Replication().(core.BulkReader); !ok {
		t.Fatal("client proxy must support streamed bulk reads")
	}
	stub := pkgobj.NewStub(clientLR)
	var buf bytes.Buffer
	n, err := stub.ReadFileTo(&buf, "blob")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) || !bytes.Equal(buf.Bytes(), content) {
		t.Fatalf("streamed read returned %d bytes, want %d", n, len(content))
	}
	if stub.TakeCost() <= 0 {
		t.Fatal("streamed read lost its virtual network cost")
	}
}

package repl

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"gdn/internal/core"
	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/netsim"
	"gdn/internal/sec"
	"gdn/internal/wire"
)

// kvSem is a key-value semantics subobject used to observe replica
// convergence.
type kvSem struct {
	m map[string]string
}

func newKV() core.Semantics { return &kvSem{m: make(map[string]string)} }

func (k *kvSem) Invoke(inv core.Invocation) ([]byte, error) {
	r := wire.NewReader(inv.Args)
	switch inv.Method {
	case "set":
		key := r.Str()
		val := r.Str()
		if err := r.Done(); err != nil {
			return nil, err
		}
		k.m[key] = val
		return nil, nil
	case "get":
		key := r.Str()
		if err := r.Done(); err != nil {
			return nil, err
		}
		return []byte(k.m[key]), nil
	case "len":
		out := wire.NewWriter(4)
		out.Uint32(uint32(len(k.m)))
		return out.Bytes(), nil
	default:
		return nil, fmt.Errorf("kv: unknown method %q", inv.Method)
	}
}

func (k *kvSem) MarshalState() ([]byte, error) {
	keys := make([]string, 0, len(k.m))
	for key := range k.m {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	w := wire.NewWriter(64)
	w.Count(len(keys))
	for _, key := range keys {
		w.Str(key)
		w.Str(k.m[key])
	}
	return w.Bytes(), nil
}

func (k *kvSem) UnmarshalState(b []byte) error {
	r := wire.NewReader(b)
	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		key := r.Str()
		m[key] = r.Str()
	}
	if err := r.Done(); err != nil {
		return err
	}
	k.m = m
	return nil
}

func setArgs(key, val string) []byte {
	w := wire.NewWriter(len(key) + len(val) + 8)
	w.Str(key)
	w.Str(val)
	return w.Bytes()
}

func getArgs(key string) []byte {
	w := wire.NewWriter(len(key) + 4)
	w.Str(key)
	return w.Bytes()
}

// fixture is a five-site world: one GLS hub, one "origin" region and
// two client regions, each with a dispatcher and runtime.
type fixture struct {
	t     *testing.T
	net   *netsim.Network
	tree  *gls.Tree
	sites []string
	rts   map[string]*core.Runtime
	disps map[string]*core.Dispatcher
	clock *virtualClock
}

type virtualClock struct {
	mu  sync.Mutex
	now time.Time
}

func (vc *virtualClock) Now() time.Time {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.now
}

func (vc *virtualClock) Advance(d time.Duration) {
	vc.mu.Lock()
	vc.now = vc.now.Add(d)
	vc.mu.Unlock()
}

func newFixture(t *testing.T, auths map[string]*sec.Config) *fixture {
	t.Helper()
	f := &fixture{
		t:     t,
		net:   netsim.New(nil),
		sites: []string{"origin", "eu-client", "us-client"},
		rts:   make(map[string]*core.Runtime),
		disps: make(map[string]*core.Dispatcher),
		clock: &virtualClock{now: time.Unix(1_000_000, 0)},
	}
	f.net.AddSite("hub", "hub", "core")
	f.net.AddSite("origin", "nl", "eu")
	f.net.AddSite("eu-client", "de", "eu")
	f.net.AddSite("us-client", "ca", "us")

	var children []gls.DomainSpec
	for _, s := range f.sites {
		children = append(children, gls.Leaf("leaf-"+s, s))
	}
	tree, err := gls.Deploy(f.net, gls.DomainSpec{Name: "root", Sites: []string{"hub"}, Children: children})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	f.tree = tree

	reg := core.NewRegistry()
	reg.RegisterSemantics("kv/1", newKV)
	RegisterAll(reg)

	for _, s := range f.sites {
		res, err := tree.Resolver(s, "leaf-"+s)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { res.Close() })
		auth := auths[s]
		disp, err := core.NewDispatcher(f.net, s, s+":objects", auth, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { disp.Close() })
		f.disps[s] = disp
		f.rts[s] = core.NewRuntime(core.RuntimeConfig{
			Site: s, Net: f.net, Resolver: res, Registry: reg,
			Auth: auth, Clock: f.clock.Now,
		})
	}
	return f
}

// replica creates a hosted representative at site and registers it in
// the location service.
func (f *fixture) replica(oid ids.OID, site, protocol, role string, params map[string]string, peers []gls.ContactAddress) (*core.LR, gls.ContactAddress) {
	f.t.Helper()
	lr, ca, err := f.rts[site].NewReplica(core.ReplicaSpec{
		OID: oid, Impl: "kv/1", Protocol: protocol, Role: role,
		Params: params, Peers: peers,
	}, f.disps[site])
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { lr.Close() })
	if _, _, err := f.rts[site].Resolver().Insert(oid, ca); err != nil {
		f.t.Fatal(err)
	}
	return lr, ca
}

func (f *fixture) bind(site string, oid ids.OID) *core.LR {
	f.t.Helper()
	lr, _, err := f.rts[site].Bind(oid)
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { lr.Close() })
	return lr
}

func mustSet(t *testing.T, lr *core.LR, key, val string) time.Duration {
	t.Helper()
	_, cost, err := lr.Invoke("set", true, setArgs(key, val))
	if err != nil {
		t.Fatal(err)
	}
	return cost
}

func mustGet(t *testing.T, lr *core.LR, key string) (string, time.Duration) {
	t.Helper()
	out, cost, err := lr.Invoke("get", false, getArgs(key))
	if err != nil {
		t.Fatal(err)
	}
	return string(out), cost
}

func TestLocalProtocolNoNetwork(t *testing.T) {
	f := newFixture(t, nil)
	reg := f.rts["origin"].Registry()
	sem, err := reg.NewSemantics("kv/1")
	if err != nil {
		t.Fatal(err)
	}
	proto, err := reg.Protocol(Local)
	if err != nil {
		t.Fatal(err)
	}
	repl, err := proto.NewReplica(&core.Env{Exec: core.NewLocalExec(sem)})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()

	before := f.net.Meter()
	if _, cost, err := repl.Invoke(core.Invocation{Method: "set", Write: true, Args: setArgs("a", "1")}); err != nil || cost != 0 {
		t.Fatalf("cost=%v err=%v", cost, err)
	}
	if diff := f.net.Meter().Sub(before); diff.TotalFrames() != 0 {
		t.Fatalf("local protocol sent %d frames", diff.TotalFrames())
	}
}

func TestClientServerRoundTrip(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	f.replica(oid, "origin", ClientServer, RoleServer, nil, nil)

	client := f.bind("us-client", oid)
	if cost := mustSet(t, client, "gcc", "2.95"); cost <= 0 {
		t.Fatal("remote write must cost network traffic")
	}
	val, cost := mustGet(t, client, "gcc")
	if val != "2.95" {
		t.Fatalf("get = %q", val)
	}
	if cost <= 0 {
		t.Fatal("clientserver reads must travel to the server")
	}
}

func TestMasterSlaveReadsAreLocal(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	_, masterCA := f.replica(oid, "origin", MasterSlave, RoleMaster, nil, nil)
	f.replica(oid, "us-client", MasterSlave, RoleSlave, nil, []gls.ContactAddress{masterCA})

	// Write through a client near the master.
	euClient := f.bind("eu-client", oid)
	mustSet(t, euClient, "linux", "2.2")

	// The US client's GLS lookup finds its local slave; reads stay in
	// region and are cheaper than the EU client's read of the master.
	usClient := f.bind("us-client", oid)
	val, usCost := mustGet(t, usClient, "linux")
	if val != "2.2" {
		t.Fatalf("slave read = %q (state push missing?)", val)
	}
	_, euCost := mustGet(t, euClient, "linux")
	if usCost >= euCost*10 {
		t.Fatalf("slave read (%v) should not dwarf master read (%v)", usCost, euCost)
	}

	// Reads at the slave must not cross the wide area.
	before := f.net.Meter()
	mustGet(t, usClient, "linux")
	diff := f.net.Meter().Sub(before)
	if diff.Bytes[netsim.WideArea] != 0 {
		t.Fatalf("slave-local read crossed the wide area: %v", diff)
	}
}

func TestMasterSlaveWriteVisibleEverywhereOnAck(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	_, masterCA := f.replica(oid, "origin", MasterSlave, RoleMaster, nil, nil)
	f.replica(oid, "eu-client", MasterSlave, RoleSlave, nil, []gls.ContactAddress{masterCA})
	f.replica(oid, "us-client", MasterSlave, RoleSlave, nil, []gls.ContactAddress{masterCA})

	euClient := f.bind("eu-client", oid)
	usClient := f.bind("us-client", oid)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		mustSet(t, euClient, key, "v")
		if val, _ := mustGet(t, usClient, key); val != "v" {
			t.Fatalf("write %s not visible at remote slave immediately after ack", key)
		}
	}
}

func TestMasterSlaveWriteThroughSlaveForwards(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	_, masterCA := f.replica(oid, "origin", MasterSlave, RoleMaster, nil, nil)
	slave, _ := f.replica(oid, "us-client", MasterSlave, RoleSlave, nil, []gls.ContactAddress{masterCA})

	// Invoke a write directly on the slave representative: it must
	// forward to the master and the master's push must come back.
	if _, _, err := slave.Invoke("set", true, setArgs("x", "1")); err != nil {
		t.Fatal(err)
	}
	if val, _ := mustGet(t, slave, "x"); val != "1" {
		t.Fatalf("slave read after forwarded write = %q", val)
	}
	// The master saw it too.
	euClient := f.bind("eu-client", oid)
	if val, _ := mustGet(t, euClient, "x"); val != "1" {
		t.Fatalf("master missed forwarded write")
	}
}

func TestActiveReplicationConvergence(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	seqLR, seqCA := f.replica(oid, "origin", Active, RoleSequencer, nil, nil)
	peer1, _ := f.replica(oid, "eu-client", Active, RolePeer, nil, []gls.ContactAddress{seqCA})
	peer2, _ := f.replica(oid, "us-client", Active, RolePeer, nil, []gls.ContactAddress{seqCA})

	// Writes through different representatives all serialize through
	// the sequencer.
	mustSet(t, peer1, "a", "1")
	mustSet(t, peer2, "b", "2")
	mustSet(t, seqLR, "c", "3")

	for name, lr := range map[string]*core.LR{"sequencer": seqLR, "peer1": peer1, "peer2": peer2} {
		for key, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
			if got, _ := mustGet(t, lr, key); got != want {
				t.Fatalf("%s: %s = %q, want %q", name, key, got, want)
			}
		}
	}

	// Reads at peers are local.
	before := f.net.Meter()
	mustGet(t, peer2, "a")
	if diff := f.net.Meter().Sub(before); diff.TotalFrames() != 0 {
		t.Fatalf("peer read sent %d frames", diff.TotalFrames())
	}
}

func TestActivePeerGapRecovery(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	_, seqCA := f.replica(oid, "origin", Active, RoleSequencer, nil, nil)
	peer, peerCA := f.replica(oid, "eu-client", Active, RolePeer, nil, []gls.ContactAddress{seqCA})

	mustSet(t, peer, "a", "1")

	// Simulate a missed apply by injecting one with a version far
	// ahead: the peer must fall back to a full state transfer instead
	// of applying out of order.
	pc := core.DialPeer(f.net, "origin", oid, peerCA.Address, nil)
	defer pc.Close()
	ghost := core.Invocation{Method: "set", Write: true, Args: setArgs("ghost", "x")}
	if _, _, err := pc.Call(core.OpApply, applyBody(99, ghost)); err != nil {
		t.Fatal(err)
	}

	// The gap triggered resync from the sequencer: the ghost write must
	// NOT be applied, and real state must be intact.
	if val, _ := mustGet(t, peer, "ghost"); val != "" {
		t.Fatal("out-of-order apply executed instead of resync")
	}
	if val, _ := mustGet(t, peer, "a"); val != "1" {
		t.Fatal("resync lost state")
	}
}

func applyBody(version uint64, inv core.Invocation) []byte {
	return encodeApply(version, inv)
}

func TestCacheTTLModes(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	_, serverCA := f.replica(oid, "origin", ClientServer, RoleServer, nil, nil)

	// A cache in the US with a 60s TTL, under a virtual clock.
	cacheLR, _ := f.replica(oid, "us-client", Cache, RoleCache,
		map[string]string{"ttl": "60s"}, []gls.ContactAddress{serverCA})
	cache := cacheRepl(t, cacheLR)

	origin := f.bind("origin", oid)
	mustSet(t, origin, "pkg", "v1")

	// First read fills the cache (a miss), second is a pure hit.
	if val, cost := mustGet(t, cacheLR, "pkg"); val != "v1" || cost == 0 {
		t.Fatalf("fill read: val=%q cost=%v", val, cost)
	}
	if val, cost := mustGet(t, cacheLR, "pkg"); val != "v1" || cost != 0 {
		t.Fatalf("hit read: val=%q cost=%v", val, cost)
	}
	s := cache.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}

	// Expire without upstream change: revalidation, no state shipped.
	f.clock.Advance(61 * time.Second)
	if val, cost := mustGet(t, cacheLR, "pkg"); val != "v1" || cost == 0 {
		t.Fatalf("revalidate read: val=%q cost=%v", val, cost)
	}
	if s := cache.Stats(); s.Revalidations != 1 {
		t.Fatalf("stats = %+v", s)
	}

	// Upstream write, then expiry: the revalidation ships new state.
	mustSet(t, origin, "pkg", "v2")
	f.clock.Advance(61 * time.Second)
	if val, _ := mustGet(t, cacheLR, "pkg"); val != "v2" {
		t.Fatalf("stale read after TTL expiry: %q", val)
	}

	// Before expiry the cache may serve stale data — that is the
	// documented trade-off.
	mustSet(t, origin, "pkg", "v3")
	if val, _ := mustGet(t, cacheLR, "pkg"); val != "v2" {
		t.Fatalf("TTL cache read = %q, expected stale v2", val)
	}
}

func TestCacheInvalidationMode(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	_, serverCA := f.replica(oid, "origin", ClientServer, RoleServer, nil, nil)
	cacheLR, _ := f.replica(oid, "us-client", Cache, RoleCache,
		map[string]string{"mode": "invalidate"}, []gls.ContactAddress{serverCA})
	cache := cacheRepl(t, cacheLR)

	origin := f.bind("origin", oid)
	mustSet(t, origin, "pkg", "v1")
	if val, _ := mustGet(t, cacheLR, "pkg"); val != "v1" {
		t.Fatal("fill failed")
	}

	// The server's write pushes an invalidation; the next read refetches
	// and sees fresh data immediately — no TTL staleness window.
	mustSet(t, origin, "pkg", "v2")
	if val, _ := mustGet(t, cacheLR, "pkg"); val != "v2" {
		t.Fatalf("invalidation-mode cache served stale %q", val)
	}
	s := cache.Stats()
	if s.Invalidations == 0 {
		t.Fatalf("stats = %+v, want an invalidation", s)
	}
}

func TestCacheWriteThrough(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	f.replica(oid, "origin", ClientServer, RoleServer, nil, nil)
	// Bind the cache via the GLS so it discovers the server itself.
	cacheLR, _ := f.replica(oid, "us-client", Cache, RoleCache, nil,
		mustLookup(t, f, "us-client", oid))

	mustSet(t, cacheLR, "k", "v")
	// The write went upstream; a fresh client at the origin sees it.
	origin := f.bind("origin", oid)
	if val, _ := mustGet(t, origin, "k"); val != "v" {
		t.Fatalf("write-through lost: %q", val)
	}
	// And the cache itself rereads it correctly (dropped + refetched).
	if val, _ := mustGet(t, cacheLR, "k"); val != "v" {
		t.Fatalf("cache reread = %q", val)
	}
}

func mustLookup(t *testing.T, f *fixture, site string, oid ids.OID) []gls.ContactAddress {
	t.Helper()
	addrs, _, err := f.rts[site].Resolver().Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	return addrs
}

func cacheRepl(t *testing.T, lr *core.LR) *CacheReplica {
	t.Helper()
	c, ok := lr.Replication().(*CacheReplica)
	if !ok {
		t.Fatalf("replication subobject is %T, want *CacheReplica", lr.Replication())
	}
	return c
}

func TestWriteAuthorizationEnforced(t *testing.T) {
	ca, err := sec.NewAuthority("gdn-root")
	if err != nil {
		t.Fatal(err)
	}
	mkAuth := func(role, id string) *sec.Config {
		creds, err := sec.NewCredentials(ca, sec.Principal(role, id), role)
		if err != nil {
			t.Fatal(err)
		}
		// GDN hosts authenticate both ways (paper §6.3, Figure 4 link 3).
		return &sec.Config{Creds: creds, TrustAnchors: ca.Anchors(), RequireClientAuth: true}
	}
	auths := map[string]*sec.Config{
		"origin":    mkAuth(sec.RoleGOS, "origin"),
		"eu-client": mkAuth(sec.RoleModerator, "alice"),
		"us-client": mkAuth(sec.RoleUser, "mallory"),
	}
	f := newFixture(t, auths)
	oid := ids.New()
	f.replica(oid, "origin", ClientServer, RoleServer, nil, nil)

	moderator := f.bind("eu-client", oid)
	if _, _, err := moderator.Invoke("set", true, setArgs("k", "v")); err != nil {
		t.Fatalf("moderator write: %v", err)
	}

	user := f.bind("us-client", oid)
	if _, _, err := user.Invoke("set", true, setArgs("k", "evil")); err == nil {
		t.Fatal("user write must be rejected")
	} else if !strings.Contains(err.Error(), "not authorized") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Reads are open to authenticated users.
	if val, _ := mustGet(t, user, "k"); val != "v" {
		t.Fatalf("user read = %q", val)
	}
}

func TestConvergenceUnderConcurrentWrites(t *testing.T) {
	// Property: after racing writers through different proxies, all
	// representatives of a master/slave and an active object hold
	// identical state.
	for _, proto := range []string{MasterSlave, Active} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			f := newFixture(t, nil)
			oid := ids.New()
			var headRole, tailRole string
			switch proto {
			case MasterSlave:
				headRole, tailRole = RoleMaster, RoleSlave
			case Active:
				headRole, tailRole = RoleSequencer, RolePeer
			}
			headLR, headCA := f.replica(oid, "origin", proto, headRole, nil, nil)
			tail1, _ := f.replica(oid, "eu-client", proto, tailRole, nil, []gls.ContactAddress{headCA})
			tail2, _ := f.replica(oid, "us-client", proto, tailRole, nil, []gls.ContactAddress{headCA})

			writers := []*core.LR{headLR, tail1, tail2}
			var wg sync.WaitGroup
			rnd := rand.New(rand.NewSource(11))
			for w := 0; w < 3; w++ {
				for i := 0; i < 10; i++ {
					wg.Add(1)
					key := fmt.Sprintf("w%d-k%d", w, rnd.Intn(5))
					go func(lr *core.LR, key string, i int) {
						defer wg.Done()
						if _, _, err := lr.Invoke("set", true, setArgs(key, fmt.Sprint(i))); err != nil {
							t.Error(err)
						}
					}(writers[w], key, i)
				}
			}
			wg.Wait()

			states := make([][]byte, len(writers))
			for i, lr := range writers {
				st, err := lr.Semantics().MarshalState()
				if err != nil {
					t.Fatal(err)
				}
				states[i] = st
			}
			for i := 1; i < len(states); i++ {
				if !reflect.DeepEqual(states[0], states[i]) {
					t.Fatalf("replica %d diverged from head", i)
				}
			}
		})
	}
}

func TestMaintainerRoleScopedToPackage(t *testing.T) {
	// The paper's planned fourth group (§2): a maintainer manages the
	// contents of packages that list them — and nothing else.
	ca, err := sec.NewAuthority("gdn-root")
	if err != nil {
		t.Fatal(err)
	}
	mkAuth := func(role, id string) *sec.Config {
		creds, err := sec.NewCredentials(ca, sec.Principal(role, id), role)
		if err != nil {
			t.Fatal(err)
		}
		return &sec.Config{Creds: creds, TrustAnchors: ca.Anchors(), RequireClientAuth: true}
	}
	bobPrincipal := sec.Principal(sec.RoleMaintainer, "bob")
	auths := map[string]*sec.Config{
		"origin":    mkAuth(sec.RoleGOS, "origin"),
		"eu-client": mkAuth(sec.RoleMaintainer, "bob"),
	}
	f := newFixture(t, auths)

	// Package A lists bob as maintainer; package B does not.
	oidA, oidB := ids.New(), ids.New()
	f.replica(oidA, "origin", ClientServer, RoleServer,
		map[string]string{"maintainers": bobPrincipal}, nil)
	f.replica(oidB, "origin", ClientServer, RoleServer, nil, nil)

	bobA := f.bind("eu-client", oidA)
	if _, _, err := bobA.Invoke("set", true, setArgs("news", "fixed a bug")); err != nil {
		t.Fatalf("maintainer write to own package: %v", err)
	}
	bobB := f.bind("eu-client", oidB)
	if _, _, err := bobB.Invoke("set", true, setArgs("news", "hijack")); err == nil {
		t.Fatal("maintainer write to a foreign package must be rejected")
	}
	// Reads everywhere are fine.
	if val, _ := mustGet(t, bobB, "news"); val != "" {
		t.Fatalf("foreign package modified: %q", val)
	}
}

// TestCacheSubscriptionLeaseRepairsForgottenSubscription: a parent that
// restarts (or sat behind a partition) forgets its subscriber table; a
// pure invalidate-mode cache then serves stale state forever. With a
// subscription lease ("resub") the cache re-confirms within one lease —
// revalidating by version and re-subscribing — so the next upstream
// write invalidates it again.
func TestCacheSubscriptionLeaseRepairsForgottenSubscription(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	srvLR, serverCA := f.replica(oid, "origin", ClientServer, RoleServer, nil, nil)
	cacheLR, _ := f.replica(oid, "us-client", Cache, RoleCache,
		map[string]string{"mode": "invalidate", "resub": "30s"}, []gls.ContactAddress{serverCA})
	cache := cacheRepl(t, cacheLR)

	origin := f.bind("origin", oid)
	mustSet(t, origin, "pkg", "v1")
	if val, _ := mustGet(t, cacheLR, "pkg"); val != "v1" {
		t.Fatal("fill failed")
	}

	// The server "restarts": its in-memory subscriber table is gone,
	// and the cache has no way to know.
	srv := srvLR.Replication().(*csServer)
	srv.mu.Lock()
	srv.subs = make(map[string]subscriber)
	srv.mu.Unlock()

	// A write now reaches no subscriber; inside the lease the cache
	// serves its stale copy (the documented trade-off)...
	mustSet(t, origin, "pkg", "v2")
	if val, _ := mustGet(t, cacheLR, "pkg"); val != "v1" {
		t.Fatalf("cache read = %q, expected stale v1 inside the lease", val)
	}

	// ...but once the lease runs out, the next read revalidates, picks
	// up v2 and re-subscribes.
	f.clock.Advance(31 * time.Second)
	if val, _ := mustGet(t, cacheLR, "pkg"); val != "v2" {
		t.Fatalf("cache read after lease expiry = %q, want revalidated v2", val)
	}

	// The repaired subscription delivers invalidations again.
	mustSet(t, origin, "pkg", "v3")
	if val, _ := mustGet(t, cacheLR, "pkg"); val != "v3" {
		t.Fatalf("cache read after repair = %q, want v3", val)
	}
	if s := cache.Stats(); s.Invalidations == 0 {
		t.Fatalf("stats = %+v, want an invalidation after the repaired subscription", s)
	}
}

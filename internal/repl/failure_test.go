package repl

import (
	"errors"
	"testing"
	"time"

	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/transport"
)

// Failure injection: the paper names host and network failures as the
// availability threats replication is meant to absorb (§6.1). These
// tests crash sites and cut links with the simulator and check which
// operations survive.

func TestSlaveReadsSurviveMasterCrash(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	_, masterCA := f.replica(oid, "origin", MasterSlave, RoleMaster, nil, nil)
	slave, _ := f.replica(oid, "us-client", MasterSlave, RoleSlave, nil, []gls.ContactAddress{masterCA})

	mustSet(t, slave, "k", "v")
	f.net.SetDown("origin", true)

	// Reads at the slave keep working: the replica holds full state.
	if val, _ := mustGet(t, slave, "k"); val != "v" {
		t.Fatalf("slave read after master crash = %q", val)
	}
	// Writes need the master and fail cleanly.
	if _, _, err := slave.Invoke("set", true, setArgs("k", "v2")); err == nil {
		t.Fatal("write must fail while the master is down")
	}

	// The master recovers; writes flow again and push to the slave.
	f.net.SetDown("origin", false)
	if _, _, err := slave.Invoke("set", true, setArgs("k", "v2")); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if val, _ := mustGet(t, slave, "k"); val != "v2" {
		t.Fatalf("slave read after recovery = %q", val)
	}
}

func TestMasterWritesSurviveSlaveCrash(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	master, masterCA := f.replica(oid, "origin", MasterSlave, RoleMaster, nil, nil)
	f.replica(oid, "us-client", MasterSlave, RoleSlave, nil, []gls.ContactAddress{masterCA})

	f.net.SetDown("us-client", true)
	// The push to the dead slave fails, is logged, and the write
	// succeeds: one crashed replica must not stall the object.
	if _, _, err := master.Invoke("set", true, setArgs("a", "1")); err != nil {
		t.Fatalf("master write with dead slave: %v", err)
	}
	if val, _ := mustGet(t, master, "a"); val != "1" {
		t.Fatal("master state lost")
	}
}

func TestPartitionHealsCleanly(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	f.replica(oid, "origin", ClientServer, RoleServer, nil, nil)
	client := f.bind("us-client", oid)

	mustSet(t, client, "x", "1")
	f.net.Partition("us-client", "origin")

	_, _, err := client.Invoke("get", false, getArgs("x"))
	if err == nil {
		t.Fatal("read across a partition must fail")
	}
	if !errors.Is(err, transport.ErrUnreachable) && !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("unexpected failure shape: %v", err)
	}

	f.net.Heal("us-client", "origin")
	// The client pool discards the broken connection and redials.
	if val, _ := mustGet(t, client, "x"); val != "1" {
		t.Fatalf("read after heal = %q", val)
	}
}

func TestTTLCacheServesDuringParentOutage(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	_, serverCA := f.replica(oid, "origin", ClientServer, RoleServer, nil, nil)
	cacheLR, _ := f.replica(oid, "us-client", Cache, RoleCache,
		map[string]string{"ttl": "1h"}, []gls.ContactAddress{serverCA})

	origin := f.bind("origin", oid)
	mustSet(t, origin, "pkg", "v1")
	if val, _ := mustGet(t, cacheLR, "pkg"); val != "v1" {
		t.Fatal("fill failed")
	}

	// Origin goes dark: the cache keeps serving its valid copy — the
	// availability upside of §3.1's replication argument.
	f.net.SetDown("origin", true)
	if val, _ := mustGet(t, cacheLR, "pkg"); val != "v1" {
		t.Fatal("cache must serve through the outage")
	}

	// After TTL expiry the revalidation fails: staleness bounds
	// availability in TTL mode.
	f.clock.Advance(2 * time.Hour)
	if _, _, err := cacheLR.Invoke("get", false, getArgs("pkg")); err == nil {
		t.Fatal("expired cache with dead parent must fail, not serve stale silently")
	}
}

func TestLocalLookupSurvivesRootCrash(t *testing.T) {
	// The GLS design point: objects with nearby replicas resolve with
	// "local" communication only, so even a dead root node does not
	// break them (§3.5).
	f := newFixture(t, nil)
	oid := ids.New()
	f.replica(oid, "eu-client", ClientServer, RoleServer, nil, nil)

	f.net.SetDown("hub", true) // the root directory node's site

	addrs, _, err := f.rts["eu-client"].Resolver().Lookup(oid)
	if err != nil {
		t.Fatalf("local lookup with dead root: %v", err)
	}
	if len(addrs) != 1 {
		t.Fatalf("addrs = %v", addrs)
	}

	// An object with no local entry needs the root and fails — the
	// failure is contained to remote objects.
	if _, _, err := f.rts["us-client"].Resolver().Lookup(oid); err == nil {
		t.Fatal("cross-region lookup requires the root")
	}
}

func TestActivePeerCrashDoesNotBlockOthers(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	seq, seqCA := f.replica(oid, "origin", Active, RoleSequencer, nil, nil)
	peerUp, _ := f.replica(oid, "eu-client", Active, RolePeer, nil, []gls.ContactAddress{seqCA})
	f.replica(oid, "us-client", Active, RolePeer, nil, []gls.ContactAddress{seqCA})

	f.net.SetDown("us-client", true)
	if _, _, err := seq.Invoke("set", true, setArgs("a", "1")); err != nil {
		t.Fatalf("write with one dead peer: %v", err)
	}
	if val, _ := mustGet(t, peerUp, "a"); val != "1" {
		t.Fatal("surviving peer missed the apply")
	}
}

func TestRecoveredActivePeerResyncsOnNextApply(t *testing.T) {
	f := newFixture(t, nil)
	oid := ids.New()
	seq, seqCA := f.replica(oid, "origin", Active, RoleSequencer, nil, nil)
	peer, _ := f.replica(oid, "us-client", Active, RolePeer, nil, []gls.ContactAddress{seqCA})

	mustSet(t, seq, "a", "1")
	f.net.SetDown("us-client", true)
	mustSet(t, seq, "b", "2") // missed by the dead peer
	mustSet(t, seq, "c", "3") // missed too
	f.net.SetDown("us-client", false)

	// The next apply carries a version gap; the peer detects it and
	// performs a full state transfer instead of applying out of order.
	mustSet(t, seq, "d", "4")
	for key, want := range map[string]string{"a": "1", "b": "2", "c": "3", "d": "4"} {
		if got, _ := mustGet(t, peer, key); got != want {
			t.Fatalf("peer %s = %q after resync, want %q", key, got, want)
		}
	}
}

func TestBindFailsCleanlyWhenReplicaUnreachable(t *testing.T) {
	// Cut the clients off from the replica's site but not from the
	// location service: binding (a directory operation relayed through
	// the tree) still succeeds, while invocations (direct client →
	// replica traffic) fail cleanly instead of hanging.
	f := newFixture(t, nil)
	oid := ids.New()
	f.replica(oid, "origin", ClientServer, RoleServer, nil, nil)
	client := f.bind("us-client", oid)

	f.net.Partition("eu-client", "origin")
	f.net.Partition("us-client", "origin")

	lr, _, err := f.rts["eu-client"].Bind(oid)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	defer lr.Close()
	if _, _, err := lr.Invoke("get", false, getArgs("x")); err == nil {
		t.Fatal("invoke on an unreachable object must fail")
	}
	if _, _, err := client.Invoke("get", false, getArgs("x")); err == nil {
		t.Fatal("existing binding must fail too")
	}
}

package repl

import (
	"fmt"
	"sync"
	"time"

	"gdn/internal/core"
	"gdn/internal/obs"
	"gdn/internal/rpc"
)

// CacheProtocol returns the pull-based caching subobject installed in
// GDN-enabled proxy servers and HTTPDs (§4): it fills from a parent
// replica on first use, serves reads from the local copy, and forwards
// writes upstream. Two coherence modes, selected by the scenario
// parameter "mode":
//
//   - "ttl" (default): the copy expires after the "ttl" duration and is
//     revalidated against the parent (a cheap version check that ships
//     state only when it changed);
//   - "invalidate": the copy stays valid until the parent's writer
//     pushes an invalidation; the cache subscribes at construction and
//     re-subscribes wherever it re-parents.
//
// The TTL-versus-invalidation trade-off is one of the ablations the
// differentiated-replication experiment runs (DESIGN.md §4, E4).
func CacheProtocol() *core.Protocol {
	return &core.Protocol{
		Name:     Cache,
		NewProxy: newForwardingProxy,
		NewReplica: func(env *core.Env) (core.Replication, error) {
			return NewCacheReplica(env)
		},
	}
}

// CacheStats counts cache effectiveness for the experiments.
type CacheStats struct {
	// Hits served entirely from the local copy.
	Hits int64
	// Misses required a full state fetch.
	Misses int64
	// Revalidations confirmed freshness without shipping state.
	Revalidations int64
	// Invalidations received from the parent's writer.
	Invalidations int64
}

// cacheParentPrefs ranks parent candidates for TTL-mode caches:
// state-holding replicas first (a nearby slave beats the master for
// fills), protocol drivers next, and unlisted roles — other caches
// included — as the last resort. The cache's own address is never a
// candidate (the peer set excludes the hosting dispatcher), so a
// registered cache cannot re-parent onto itself.
var cacheParentPrefs = []string{RoleSlave, RoleServer, RoleMaster, RolePeer, RoleSequencer}

// invalidateParentPrefs ranks parents for invalidation-mode caches:
// only the protocol's write driver pushes OpInvalidate to its cache
// subscribers (the clientserver server, the masterslave master, the
// active sequencer — slaves and peers do not relay it), so filling
// and subscribing anywhere else would leave the cache serving stale
// state forever. Non-driver roles remain as last-resort fallbacks.
var invalidateParentPrefs = []string{RoleServer, RoleMaster, RoleSequencer}

// CacheReplica is the concrete caching subobject; it is exported so
// experiments can read its statistics after driving a workload. The
// parent is not a bind-time pin: a ranked peer set tracks every
// eligible upstream, fills fail over to the next candidate when one
// dies, and re-resolution discovers parents that appear after
// construction (closing the last pickPeer pin the ROADMAP named).
type CacheReplica struct {
	*replicaBase
	parents *core.PeerSet
	mode    string
	ttl     time.Duration
	resub   time.Duration

	cacheMu   sync.Mutex
	haveState bool
	fetchedAt time.Time
	stats     CacheStats
	// subscribedAt is the parent currently delivering invalidations
	// (invalidate mode only); when a fill is served by a different
	// parent the subscription follows it.
	subscribedAt string
	// checkedAt is when the subscription was last confirmed alive (a
	// successful subscribe or revalidation); the resub lease measures
	// from here.
	checkedAt time.Time
}

// Cache modes.
const (
	ModeTTL        = "ttl"
	ModeInvalidate = "invalidate"
)

// NewCacheReplica constructs a caching representative. The parent set
// is every non-cache peer the location service (or scenario) named,
// overridable with the "parent" parameter, which pins a single
// upstream address.
func NewCacheReplica(env *core.Env) (*CacheReplica, error) {
	if env.Disp == nil {
		return nil, fmt.Errorf("repl: %s replica needs a dispatcher", Cache)
	}
	mode := env.Param("mode", ModeTTL)
	if mode != ModeTTL && mode != ModeInvalidate {
		return nil, fmt.Errorf("repl: %s: unknown mode %q", Cache, mode)
	}
	ttl, err := time.ParseDuration(env.Param("ttl", "30s"))
	if err != nil {
		return nil, fmt.Errorf("repl: %s: bad ttl: %w", Cache, err)
	}
	// "resub" (invalidate mode) is the subscription lease: how long the
	// cache trusts its invalidation subscription before re-confirming
	// it with a version revalidation and a fresh subscribe. A parent
	// that crashed, restarted, or sat behind a partition silently
	// forgets its subscribers; without the lease such a cache serves
	// stale state forever. Zero (the default) keeps the pure
	// invalidate-mode contract: valid until told otherwise.
	resub, err := time.ParseDuration(env.Param("resub", "0s"))
	if err != nil {
		return nil, fmt.Errorf("repl: %s: bad resub: %w", Cache, err)
	}
	prefs := cacheParentPrefs
	if mode == ModeInvalidate {
		prefs = invalidateParentPrefs
	}
	var parents *core.PeerSet
	if pin := env.Param("parent", ""); pin != "" {
		parents, err = core.NewPeerSetPinned(env, pin)
	} else {
		parents, err = core.NewPeerSet(env, "", prefs, prefs)
	}
	if err != nil {
		return nil, fmt.Errorf("repl: %s replica for %s: no parent replica: %w", Cache, env.OID.Short(), err)
	}

	c := &CacheReplica{
		replicaBase: newReplicaBase(env),
		parents:     parents,
		mode:        mode,
		ttl:         ttl,
		resub:       resub,
	}
	if mode == ModeInvalidate {
		parent, ok := parents.PickAddr(false)
		if !ok {
			return nil, fmt.Errorf("repl: %s replica for %s: no parent replica", Cache, env.OID.Short())
		}
		if err := c.subscribeTo(parent, env.Disp.Addr(), RoleCache); err != nil {
			return nil, fmt.Errorf("repl: %s: subscribe for invalidations: %w", Cache, err)
		}
		c.subscribedAt = parent
		c.checkedAt = env.Now()
	}
	env.Disp.Register(env.OID, c.handle)
	return c, nil
}

// Stats snapshots the hit/miss counters.
func (c *CacheReplica) Stats() CacheStats {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	return c.stats
}

// Parent returns the currently preferred upstream replica address.
func (c *CacheReplica) Parent() string {
	addr, _ := c.parents.PickAddr(false)
	return addr
}

// Parents exposes the ranked parent set for tests and experiments.
func (c *CacheReplica) Parents() *core.PeerSet { return c.parents }

func (c *CacheReplica) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	if inv.Write {
		// Write-through: the parent's protocol handles consistency; our
		// copy is stale the moment the write succeeds, so drop it.
		resp, cost, err := c.parents.Call(core.OpInvoke, inv.Encode(), true)
		if err == nil {
			c.drop()
		}
		return resp, cost, err
	}
	cost, err := c.ensureFresh(obs.SpanContext{})
	if err != nil {
		return nil, cost, err
	}
	out, err := c.env.Exec.Execute(inv)
	return out, cost, err
}

// ReadBulk implements core.BulkReader: the cache fills (or
// revalidates) first, then streams from its local copy — repeated
// downloads through a GDN proxy cost no upstream traffic.
func (c *CacheReplica) ReadBulk(tc obs.SpanContext, path string, off, n int64, fn func([]byte) error) (core.Manifest, time.Duration, error) {
	cost, err := c.ensureFresh(tc)
	if err != nil {
		return core.Manifest{}, cost, err
	}
	m, readCost, err := c.readLocalBulk(tc, path, off, n, fn)
	return m, cost + readCost, err
}

func (c *CacheReplica) Close() error {
	c.env.Disp.Unregister(c.env.OID)
	if c.mode == ModeInvalidate {
		c.cacheMu.Lock()
		subscribed := c.subscribedAt
		c.cacheMu.Unlock()
		if subscribed != "" {
			c.unsubscribeFrom(subscribed, c.env.Disp.Addr())
		}
	}
	c.parents.Close()
	c.closePeers()
	return nil
}

// drop discards the local copy.
func (c *CacheReplica) drop() {
	c.cacheMu.Lock()
	c.haveState = false
	c.cacheMu.Unlock()
}

// followParent moves the invalidation subscription to the parent that
// actually served the latest fill: invalidations for the state we now
// hold must come from where it came from. Called with cacheMu held.
func (c *CacheReplica) followParent(servedBy string) {
	if c.mode != ModeInvalidate || servedBy == "" || servedBy == c.subscribedAt {
		return
	}
	if err := c.subscribeTo(servedBy, c.env.Disp.Addr(), RoleCache); err != nil {
		c.env.Logf("repl: %s: re-subscribe at %s: %v", Cache, servedBy, err)
		return
	}
	if c.subscribedAt != "" {
		c.unsubscribeFrom(c.subscribedAt, c.env.Disp.Addr())
	}
	c.subscribedAt = servedBy
}

// ensureFresh guarantees the local copy is usable under the configured
// coherence mode, fetching or revalidating as needed — against the
// best-ranked live parent, not a bind-time pin.
func (c *CacheReplica) ensureFresh(tc obs.SpanContext) (time.Duration, error) {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()

	now := c.env.Now()
	if c.haveState {
		stale := now.Sub(c.fetchedAt) >= c.ttl
		if c.mode == ModeInvalidate {
			// Valid until invalidated — unless a subscription lease is
			// configured and has run out, in which case the copy is only
			// trusted after the subscription is confirmed still alive.
			stale = c.resub > 0 && now.Sub(c.checkedAt) >= c.resub
		}
		if !stale {
			c.stats.Hits++
			mCacheHits.Inc()
			return 0, nil
		}
		// TTL (or subscription lease) expired: revalidate against a
		// parent by version.
		servedBy, fresh, version, state, pins, cost, err := c.fetchStateVia(tc, c.parents, c.currentVersion())
		if err != nil {
			if c.mode == ModeInvalidate {
				// No parent reachable to confirm the subscription. Keep
				// serving the local copy — availability through a
				// partition is the documented invalidate-mode trade-off —
				// and check again one lease from now rather than paying a
				// failed fetch on every read.
				c.checkedAt = now
				c.stats.Hits++
				mCacheHits.Inc()
				c.env.Logf("repl: %s: subscription check failed, serving cached copy: %v", Cache, err)
				return cost, nil
			}
			return cost, fmt.Errorf("repl: %s: revalidate: %w", Cache, err)
		}
		c.fetchedAt = now
		if c.mode == ModeInvalidate {
			// Re-subscribe even at an unchanged parent: it may have
			// restarted (or been healed back) having forgotten its
			// subscriber table, and subscribing is idempotent.
			c.resubscribe(servedBy)
			c.checkedAt = now
		} else {
			c.followParent(servedBy)
		}
		if fresh {
			c.releasePins(pins)
			c.stats.Revalidations++
			mCacheRevalidations.Inc()
			return cost, nil
		}
		err = c.env.Exec.UnmarshalState(state)
		c.releasePins(pins)
		if err != nil {
			return cost, err
		}
		c.setVersion(version)
		c.stats.Misses++
		mCacheMisses.Inc()
		return cost, nil
	}

	servedBy, _, version, state, pins, cost, err := c.fetchStateVia(tc, c.parents, 0)
	if err != nil {
		return cost, fmt.Errorf("repl: %s: fill: %w", Cache, err)
	}
	err = c.env.Exec.UnmarshalState(state)
	c.releasePins(pins)
	if err != nil {
		return cost, err
	}
	c.followParent(servedBy)
	c.setVersion(version)
	c.haveState = true
	c.fetchedAt = now
	if c.mode == ModeInvalidate {
		c.checkedAt = now
	}
	c.stats.Misses++
	mCacheMisses.Inc()
	return cost, nil
}

// resubscribe re-issues the invalidation subscription after its lease
// ran out — even at an unchanged parent, which may have restarted and
// forgotten its subscribers. Called with cacheMu held.
func (c *CacheReplica) resubscribe(servedBy string) {
	if servedBy == "" {
		servedBy = c.subscribedAt
	}
	if servedBy == "" {
		return
	}
	if err := c.subscribeTo(servedBy, c.env.Disp.Addr(), RoleCache); err != nil {
		c.env.Logf("repl: %s: re-subscribe at %s: %v", Cache, servedBy, err)
		return
	}
	if c.subscribedAt != "" && c.subscribedAt != servedBy {
		c.unsubscribeFrom(c.subscribedAt, c.env.Disp.Addr())
	}
	c.subscribedAt = servedBy
}

func (c *CacheReplica) handle(call *rpc.Call) ([]byte, error) {
	// Negotiated writes read and feed the parent chain's store, never
	// the cache's own (a chunk banked here would be invisible to the
	// manifest write upstream). Forward both negotiation ops to the
	// currently preferred parent; one that is itself a slave relays
	// onward to the master.
	if call.Op == core.OpChunkHave || call.Op == core.OpChunkPut {
		upstream, ok := c.parents.PickAddr(true)
		if !ok {
			return nil, fmt.Errorf("repl: %s: no parent to relay chunk ops to", Cache)
		}
		if handled, resp, err := c.relayChunkOps(call, upstream); handled {
			return resp, err
		}
	}
	if call.Op == core.OpBulkRead {
		// A registered cache serves streamed reads to other clients;
		// fill or revalidate before the base handler reads local state.
		cost, err := c.ensureFresh(call.TC)
		call.Charge(cost)
		if err != nil {
			return nil, err
		}
	}
	if call.Op == core.OpStateGet {
		// A cache may seed another representative (a peer cache that
		// re-parented here), but only from state it actually holds: a
		// cold cache answering version-0 empty state would be installed
		// as a successful fill — silent wrong data. Refusing instead
		// makes the peer walk on to a live candidate or fail loudly.
		// Filling here on demand is not an option: two caches orphaned
		// together would recurse into each other forever.
		c.cacheMu.Lock()
		have := c.haveState
		c.cacheMu.Unlock()
		if !have {
			return nil, fmt.Errorf("repl: %s for %s: cold cache cannot seed a peer", Cache, c.env.OID.Short())
		}
	}
	if handled, resp, err := c.handleCommon(call); handled {
		return resp, err
	}
	switch call.Op {
	case core.OpInvoke:
		inv, err := core.DecodeInvocation(call.Body)
		if err != nil {
			return nil, err
		}
		if inv.Write {
			if err := authorizeWrite(c.env, call); err != nil {
				return nil, err
			}
		}
		resp, cost, err := c.Invoke(inv)
		call.Charge(cost)
		return resp, err
	case core.OpInvalidate:
		if err := authorizeWrite(c.env, call); err != nil {
			return nil, err
		}
		c.cacheMu.Lock()
		c.haveState = false
		c.stats.Invalidations++
		c.cacheMu.Unlock()
		mInvalidations.Inc()
		return nil, nil
	default:
		return nil, fmt.Errorf("repl: %s: unexpected op %d", Cache, call.Op)
	}
}

package repl

import (
	"fmt"
	"sync"
	"time"

	"gdn/internal/core"
	"gdn/internal/rpc"
)

// CacheProtocol returns the pull-based caching subobject installed in
// GDN-enabled proxy servers and HTTPDs (§4): it fills from a parent
// replica on first use, serves reads from the local copy, and forwards
// writes upstream. Two coherence modes, selected by the scenario
// parameter "mode":
//
//   - "ttl" (default): the copy expires after the "ttl" duration and is
//     revalidated against the parent (a cheap version check that ships
//     state only when it changed);
//   - "invalidate": the copy stays valid until the parent's writer
//     pushes an invalidation; the cache subscribes at construction.
//
// The TTL-versus-invalidation trade-off is one of the ablations the
// differentiated-replication experiment runs (DESIGN.md §4, E4).
func CacheProtocol() *core.Protocol {
	return &core.Protocol{
		Name:     Cache,
		NewProxy: newForwardingProxy,
		NewReplica: func(env *core.Env) (core.Replication, error) {
			return NewCacheReplica(env)
		},
	}
}

// CacheStats counts cache effectiveness for the experiments.
type CacheStats struct {
	// Hits served entirely from the local copy.
	Hits int64
	// Misses required a full state fetch.
	Misses int64
	// Revalidations confirmed freshness without shipping state.
	Revalidations int64
	// Invalidations received from the parent's writer.
	Invalidations int64
}

// CacheReplica is the concrete caching subobject; it is exported so
// experiments can read its statistics after driving a workload.
type CacheReplica struct {
	*replicaBase
	parentAddr string
	mode       string
	ttl        time.Duration

	cacheMu   sync.Mutex
	haveState bool
	fetchedAt time.Time
	stats     CacheStats
}

// Cache modes.
const (
	ModeTTL        = "ttl"
	ModeInvalidate = "invalidate"
)

// NewCacheReplica constructs a caching representative. The parent is
// the first non-cache peer, overridable with the "parent" parameter.
func NewCacheReplica(env *core.Env) (*CacheReplica, error) {
	if env.Disp == nil {
		return nil, fmt.Errorf("repl: %s replica needs a dispatcher", Cache)
	}
	parent := env.Param("parent", "")
	if parent == "" {
		parent = pickPeer(env, RoleSlave, RoleServer, RoleMaster, RolePeer, RoleSequencer)
	}
	if parent == "" {
		return nil, fmt.Errorf("repl: %s replica for %s: no parent replica", Cache, env.OID.Short())
	}
	mode := env.Param("mode", ModeTTL)
	if mode != ModeTTL && mode != ModeInvalidate {
		return nil, fmt.Errorf("repl: %s: unknown mode %q", Cache, mode)
	}
	ttl, err := time.ParseDuration(env.Param("ttl", "30s"))
	if err != nil {
		return nil, fmt.Errorf("repl: %s: bad ttl: %w", Cache, err)
	}

	c := &CacheReplica{
		replicaBase: newReplicaBase(env),
		parentAddr:  parent,
		mode:        mode,
		ttl:         ttl,
	}
	if mode == ModeInvalidate {
		if err := c.subscribeTo(parent, env.Disp.Addr(), RoleCache); err != nil {
			return nil, fmt.Errorf("repl: %s: subscribe for invalidations: %w", Cache, err)
		}
	}
	env.Disp.Register(env.OID, c.handle)
	return c, nil
}

// Stats snapshots the hit/miss counters.
func (c *CacheReplica) Stats() CacheStats {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	return c.stats
}

// Parent returns the upstream replica address.
func (c *CacheReplica) Parent() string { return c.parentAddr }

func (c *CacheReplica) Invoke(inv core.Invocation) ([]byte, time.Duration, error) {
	if inv.Write {
		// Write-through: the parent's protocol handles consistency; our
		// copy is stale the moment the write succeeds, so drop it.
		resp, cost, err := c.peer(c.parentAddr).Call(core.OpInvoke, inv.Encode())
		if err == nil {
			c.drop()
		}
		return resp, cost, err
	}
	cost, err := c.ensureFresh()
	if err != nil {
		return nil, cost, err
	}
	out, err := c.env.Exec.Execute(inv)
	return out, cost, err
}

// ReadBulk implements core.BulkReader: the cache fills (or
// revalidates) first, then streams from its local copy — repeated
// downloads through a GDN proxy cost no upstream traffic.
func (c *CacheReplica) ReadBulk(path string, off, n int64, fn func([]byte) error) (core.Manifest, time.Duration, error) {
	cost, err := c.ensureFresh()
	if err != nil {
		return core.Manifest{}, cost, err
	}
	m, readCost, err := c.readLocalBulk(path, off, n, fn)
	return m, cost + readCost, err
}

func (c *CacheReplica) Close() error {
	c.env.Disp.Unregister(c.env.OID)
	if c.mode == ModeInvalidate {
		c.unsubscribeFrom(c.parentAddr, c.env.Disp.Addr())
	}
	c.closePeers()
	return nil
}

// drop discards the local copy.
func (c *CacheReplica) drop() {
	c.cacheMu.Lock()
	c.haveState = false
	c.cacheMu.Unlock()
}

// ensureFresh guarantees the local copy is usable under the configured
// coherence mode, fetching or revalidating as needed.
func (c *CacheReplica) ensureFresh() (time.Duration, error) {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()

	now := c.env.Now()
	if c.haveState {
		if c.mode == ModeInvalidate || now.Sub(c.fetchedAt) < c.ttl {
			c.stats.Hits++
			return 0, nil
		}
		// TTL expired: revalidate against the parent by version.
		fresh, version, state, pins, cost, err := c.fetchState(c.parentAddr, c.currentVersion())
		if err != nil {
			return cost, fmt.Errorf("repl: %s: revalidate: %w", Cache, err)
		}
		c.fetchedAt = now
		if fresh {
			c.releasePins(pins)
			c.stats.Revalidations++
			return cost, nil
		}
		err = c.env.Exec.UnmarshalState(state)
		c.releasePins(pins)
		if err != nil {
			return cost, err
		}
		c.setVersion(version)
		c.stats.Misses++
		return cost, nil
	}

	_, version, state, pins, cost, err := c.fetchState(c.parentAddr, 0)
	if err != nil {
		return cost, fmt.Errorf("repl: %s: fill: %w", Cache, err)
	}
	err = c.env.Exec.UnmarshalState(state)
	c.releasePins(pins)
	if err != nil {
		return cost, err
	}
	c.setVersion(version)
	c.haveState = true
	c.fetchedAt = now
	c.stats.Misses++
	return cost, nil
}

func (c *CacheReplica) handle(call *rpc.Call) ([]byte, error) {
	// Negotiated writes read and feed the parent chain's store, never
	// the cache's own (a chunk banked here would be invisible to the
	// manifest write upstream). Forward both negotiation ops; a parent
	// that is itself a slave relays onward to the master.
	if handled, resp, err := c.relayChunkOps(call, c.parentAddr); handled {
		return resp, err
	}
	if call.Op == core.OpBulkRead {
		// A registered cache serves streamed reads to other clients;
		// fill or revalidate before the base handler reads local state.
		cost, err := c.ensureFresh()
		call.Charge(cost)
		if err != nil {
			return nil, err
		}
	}
	if handled, resp, err := c.handleCommon(call); handled {
		return resp, err
	}
	switch call.Op {
	case core.OpInvoke:
		inv, err := core.DecodeInvocation(call.Body)
		if err != nil {
			return nil, err
		}
		if inv.Write {
			if err := authorizeWrite(c.env, call); err != nil {
				return nil, err
			}
		}
		resp, cost, err := c.Invoke(inv)
		call.Charge(cost)
		return resp, err
	case core.OpInvalidate:
		if err := authorizeWrite(c.env, call); err != nil {
			return nil, err
		}
		c.cacheMu.Lock()
		c.haveState = false
		c.stats.Invalidations++
		c.cacheMu.Unlock()
		return nil, nil
	default:
		return nil, fmt.Errorf("repl: %s: unexpected op %d", Cache, call.Op)
	}
}

// Package modtool implements the moderator tool: the program a GDN
// moderator uses to add, update and remove package DSOs (paper §4,
// §6.1). Creating a package follows the paper's procedure exactly:
//
//  1. the moderator defines a replication scenario — protocol plus the
//     object servers that should host replicas;
//  2. a "create first replica" command goes to the first server in the
//     scenario, which constructs the replica, registers a contact
//     address with the location service (allocating the object
//     identifier), and returns the identifier;
//  3. the remaining servers receive "bind to DSO <OID>, create replica"
//     commands and register their replicas too;
//  4. the name is registered with the Globe Name Service through the
//     GNS Naming Authority.
//
// The scenario is recorded in the package's metadata so later updates
// and removals know every hosting server without an exhaustive
// location-service walk.
package modtool

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"gdn/internal/core"
	"gdn/internal/gls"
	"gdn/internal/gns"
	"gdn/internal/gos"
	"gdn/internal/ids"
	"gdn/internal/pkgobj"
	"gdn/internal/repl"
	"gdn/internal/sec"
	"gdn/internal/transport"
)

// ScenarioMetaKey is the package metadata key holding the encoded
// replication scenario.
const ScenarioMetaKey = "gdn.scenario"

// ModifiedMetaKey is the package metadata key holding the time of the
// last moderator change, as decimal Unix seconds. It replicates with
// the rest of the state, so every replica agrees on it; the GDN HTTPD
// serves it as Last-Modified for clients too dumb for ETags.
const ModifiedMetaKey = pkgobj.MetaModified

// stampModified records the change time on a package.
func stampModified(stub *pkgobj.Stub) error {
	return stub.SetMeta(ModifiedMetaKey, fmt.Sprintf("%d", time.Now().Unix()))
}

// Config assembles a moderator tool.
type Config struct {
	// Site is where the moderator runs.
	Site string
	// Net is the transport network.
	Net transport.Network
	// Runtime binds to package DSOs; it must carry the moderator's
	// credentials when the deployment is secured, and a name service
	// for name-based operations.
	Runtime *core.Runtime
	// NamingAuthority is the GNS Naming Authority's address.
	NamingAuthority string
	// Auth carries the moderator's credentials for talking to object
	// servers and the naming authority; nil in unsecured deployments.
	Auth *sec.Config
}

// Tool is a moderator tool instance.
type Tool struct {
	cfg Config
	gns *gns.Client
}

// New builds a moderator tool.
func New(cfg Config) (*Tool, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("modtool: config needs a runtime")
	}
	if cfg.NamingAuthority == "" {
		return nil, fmt.Errorf("modtool: config needs the naming authority address")
	}
	return &Tool{
		cfg: cfg,
		gns: gns.NewClient(cfg.Net, cfg.Site, cfg.NamingAuthority, cfg.Auth),
	}, nil
}

// Close releases connections.
func (t *Tool) Close() error { return t.gns.Close() }

// headRole returns the role of a scenario's first replica.
func headRole(protocol string) (string, error) {
	switch protocol {
	case repl.ClientServer:
		return repl.RoleServer, nil
	case repl.MasterSlave:
		return repl.RoleMaster, nil
	case repl.Active:
		return repl.RoleSequencer, nil
	default:
		return "", fmt.Errorf("modtool: protocol %q cannot head a scenario", protocol)
	}
}

// tailRole returns the role of a scenario's additional replicas.
func tailRole(protocol string) (string, error) {
	switch protocol {
	case repl.ClientServer:
		return "", fmt.Errorf("modtool: %s supports a single replica; use masterslave or active to replicate", repl.ClientServer)
	case repl.MasterSlave:
		return repl.RoleSlave, nil
	case repl.Active:
		return repl.RolePeer, nil
	default:
		return "", fmt.Errorf("modtool: protocol %q cannot extend a scenario", protocol)
	}
}

// Package describes a package to create: its content files and
// human-readable metadata.
type Package struct {
	Files map[string][]byte
	Meta  map[string]string
}

// CreatePackage stages the package locally, deploys it under the given
// replication scenario, and registers its name. It returns the object
// identifier and the total virtual network cost of the deployment.
func (t *Tool) CreatePackage(name string, scenario core.Scenario, pkg Package) (ids.OID, time.Duration, error) {
	if err := scenario.Validate(); err != nil {
		return ids.Nil, 0, err
	}
	if len(scenario.Servers) > 1 {
		if _, err := tailRole(scenario.Protocol); err != nil {
			return ids.Nil, 0, err
		}
	}

	// Stage the content in a local, network-free representative — the
	// moderator tool's working copy.
	staged := pkgobj.New()
	stagedStub := pkgobj.NewStub(core.NewLocalLR(ids.Nil, staged))
	paths := make([]string, 0, len(pkg.Files))
	for path := range pkg.Files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := stagedStub.UploadFile(path, pkg.Files[path]); err != nil {
			return ids.Nil, 0, fmt.Errorf("modtool: stage %q: %w", path, err)
		}
	}
	for key, val := range pkg.Meta {
		if err := stagedStub.SetMeta(key, val); err != nil {
			return ids.Nil, 0, err
		}
	}
	if err := stagedStub.SetMeta(ScenarioMetaKey, hex.EncodeToString(scenario.Encode())); err != nil {
		return ids.Nil, 0, err
	}
	if err := stampModified(stagedStub); err != nil {
		return ids.Nil, 0, err
	}
	state, err := staged.MarshalState()
	if err != nil {
		return ids.Nil, 0, err
	}

	var total time.Duration

	// The state is a manifest; ship the content chunks it references
	// ahead of it, in chunk-sized batches, so no frame ever scales
	// with package size. The remaining servers pull their chunks from
	// the first replica through the replication protocol's delta sync.
	refs, err := pkgobj.StateRefs(state)
	if err != nil {
		return ids.Nil, 0, err
	}

	// Create the first replica, seeding it with the staged state. The
	// object identifier is allocated during registration.
	role, err := headRole(scenario.Protocol)
	if err != nil {
		return ids.Nil, 0, err
	}
	// PutChunks negotiates first (OpChunkHave), so re-deploying a
	// package whose content the server mostly has — a version bump of
	// a large mostly-unchanged tree — uploads only the new chunks.
	first := t.gosClient(scenario.Servers[0])
	defer first.Close()
	_, cost, err := first.PutChunks(staged.Store(), refs)
	total += cost
	if err != nil {
		return ids.Nil, total, fmt.Errorf("modtool: upload content to %s: %w", scenario.Servers[0], err)
	}
	oid, firstCA, cost, err := first.CreateReplica(gos.CreateRequest{
		Impl:      pkgobj.Impl,
		Protocol:  scenario.Protocol,
		Role:      role,
		Params:    scenario.Params,
		InitState: state,
	})
	total += cost
	if err != nil {
		return ids.Nil, total, fmt.Errorf("modtool: create first replica at %s: %w", scenario.Servers[0], err)
	}

	// Additional replicas bind to the object and pull state from the
	// first replica through their protocol.
	if len(scenario.Servers) > 1 {
		tail, err := tailRole(scenario.Protocol)
		if err != nil {
			return ids.Nil, total, err
		}
		for _, server := range scenario.Servers[1:] {
			cl := t.gosClient(server)
			_, _, cost, err := cl.CreateReplica(gos.CreateRequest{
				OID:      oid,
				Impl:     pkgobj.Impl,
				Protocol: scenario.Protocol,
				Role:     tail,
				Params:   scenario.Params,
				Peers:    []gls.ContactAddress{firstCA},
			})
			cl.Close()
			total += cost
			if err != nil {
				return ids.Nil, total, fmt.Errorf("modtool: create replica at %s: %w", server, err)
			}
		}
	}

	// Finally, register the name.
	cost, err = t.gns.Add(name, oid)
	total += cost
	if err != nil {
		return ids.Nil, total, fmt.Errorf("modtool: register name %q: %w", name, err)
	}
	return oid, total, nil
}

// UpdatePackage binds to a package by name and applies fn to it; all
// writes travel through the object's replication protocol under the
// moderator's credentials.
func (t *Tool) UpdatePackage(name string, fn func(*pkgobj.Stub) error) (time.Duration, error) {
	lr, cost, err := t.cfg.Runtime.BindName(name)
	if err != nil {
		return cost, err
	}
	defer lr.Close()
	stub := pkgobj.NewStub(lr)
	if err := fn(stub); err != nil {
		return cost + stub.TakeCost(), err
	}
	if err := stampModified(stub); err != nil {
		return cost + stub.TakeCost(), err
	}
	return cost + stub.TakeCost(), nil
}

// RemovePackage removes every replica listed in the package's recorded
// scenario and deregisters the name.
func (t *Tool) RemovePackage(name string) (time.Duration, error) {
	lr, total, err := t.cfg.Runtime.BindName(name)
	if err != nil {
		return total, err
	}
	stub := pkgobj.NewStub(lr)
	scenario, err := t.recordedScenario(stub)
	total += stub.TakeCost()
	lr.Close()
	if err != nil {
		return total, err
	}
	oid, cost, err := t.cfg.Runtime.Names().Resolve(name)
	total += cost
	if err != nil {
		return total, err
	}

	// Tear replicas down back to front so the state-holding head goes
	// last: protocols that pull state keep working while tails vanish.
	for i := len(scenario.Servers) - 1; i >= 0; i-- {
		cl := t.gosClient(scenario.Servers[i])
		cost, err := cl.RemoveReplica(oid)
		cl.Close()
		total += cost
		if err != nil {
			return total, fmt.Errorf("modtool: remove replica at %s: %w", scenario.Servers[i], err)
		}
	}

	cost, err = t.gns.Remove(name)
	total += cost
	if err != nil {
		return total, fmt.Errorf("modtool: deregister name %q: %w", name, err)
	}
	return total, nil
}

// AddReplica extends a package's replication scenario with one more
// object server — the adaptation step of §3.1: replication scenarios
// "adapt to changes in popularity and rate of change".
func (t *Tool) AddReplica(name, server string) (time.Duration, error) {
	lr, total, err := t.cfg.Runtime.BindName(name)
	if err != nil {
		return total, err
	}
	defer lr.Close()
	stub := pkgobj.NewStub(lr)
	scenario, err := t.recordedScenario(stub)
	if err != nil {
		total += stub.TakeCost()
		return total, err
	}
	for _, s := range scenario.Servers {
		if s == server {
			total += stub.TakeCost()
			return total, fmt.Errorf("modtool: %s already hosts %q", server, name)
		}
	}
	tail, err := tailRole(scenario.Protocol)
	if err != nil {
		total += stub.TakeCost()
		return total, err
	}

	oid, cost, err := t.cfg.Runtime.Names().Resolve(name)
	total += cost
	if err != nil {
		total += stub.TakeCost()
		return total, err
	}
	// The head replica's contact address gives the new replica its
	// state source; it is the first entry of the recorded scenario.
	headCl := t.gosClient(scenario.Servers[0])
	infos, err := headCl.ListReplicas()
	var srvInfo gos.ServerInfo
	if err == nil {
		srvInfo, err = headCl.Info()
	}
	headCl.Close()
	if err != nil {
		total += stub.TakeCost()
		return total, err
	}
	var headCA gls.ContactAddress
	for _, info := range infos {
		if info.OID == oid {
			headCA = gls.ContactAddress{
				Protocol: info.Protocol,
				Address:  srvInfo.ObjAddr,
				Impl:     info.Impl,
				Role:     info.Role,
			}
		}
	}
	if headCA.Address == "" {
		total += stub.TakeCost()
		return total, fmt.Errorf("modtool: head server %s no longer hosts %q", scenario.Servers[0], name)
	}

	cl := t.gosClient(server)
	_, _, cost, err = cl.CreateReplica(gos.CreateRequest{
		OID:      oid,
		Impl:     pkgobj.Impl,
		Protocol: scenario.Protocol,
		Role:     tail,
		Params:   scenario.Params,
		Peers:    []gls.ContactAddress{headCA},
	})
	cl.Close()
	total += cost
	if err != nil {
		return total, err
	}

	// Record the widened scenario.
	scenario.Servers = append(scenario.Servers, server)
	if err := stub.SetMeta(ScenarioMetaKey, hex.EncodeToString(scenario.Encode())); err != nil {
		total += stub.TakeCost()
		return total, err
	}
	total += stub.TakeCost()
	return total, nil
}

// Scenario returns the replication scenario recorded for a package.
func (t *Tool) Scenario(name string) (core.Scenario, error) {
	lr, _, err := t.cfg.Runtime.BindName(name)
	if err != nil {
		return core.Scenario{}, err
	}
	defer lr.Close()
	return t.recordedScenario(pkgobj.NewStub(lr))
}

func (t *Tool) recordedScenario(stub *pkgobj.Stub) (core.Scenario, error) {
	encoded, err := stub.GetMeta(ScenarioMetaKey)
	if err != nil {
		return core.Scenario{}, err
	}
	if encoded == "" {
		return core.Scenario{}, fmt.Errorf("modtool: package has no recorded scenario")
	}
	b, err := hex.DecodeString(encoded)
	if err != nil {
		return core.Scenario{}, fmt.Errorf("modtool: corrupt scenario metadata: %w", err)
	}
	return core.DecodeScenario(b)
}

// List returns the package names under a directory, via the name
// service.
func (t *Tool) List(dir string) ([]string, error) {
	names, _, err := t.cfg.Runtime.Names().List(dir)
	return names, err
}

func (t *Tool) gosClient(cmdAddr string) *gos.Client {
	return gos.NewClient(t.cfg.Net, t.cfg.Site, cmdAddr, t.cfg.Auth)
}

// SearchResult is one attribute-search hit.
type SearchResult struct {
	// Name is the package's object name.
	Name string
	// Matched is the metadata entry (or "name") that matched.
	Matched string
}

// Search walks the name space under dir and returns the packages whose
// name or metadata contains the query, case-insensitively — the
// "attribute-based search, such that people can look for a software
// package with some specific functionality" the paper plans (§2, §8).
// It binds each package to read its metadata, so cost grows with the
// subtree size; the GDN HTTPD exposes the same walk at /search.
func (t *Tool) Search(dir, query string) ([]SearchResult, error) {
	query = strings.ToLower(query)
	if query == "" {
		return nil, fmt.Errorf("modtool: empty search query")
	}
	var results []SearchResult
	_, err := t.cfg.Runtime.Names().Walk(dir, func(name string, _ ids.OID) error {
		if strings.Contains(strings.ToLower(name), query) {
			results = append(results, SearchResult{Name: name, Matched: "name"})
			return nil
		}
		lr, _, err := t.cfg.Runtime.BindName(name)
		if err != nil {
			return nil // tolerate races with removals
		}
		defer lr.Close()
		meta, err := pkgobj.NewStub(lr).Meta()
		if err != nil {
			return nil
		}
		for key, val := range meta {
			if key == ScenarioMetaKey {
				continue
			}
			if strings.Contains(strings.ToLower(val), query) {
				results = append(results, SearchResult{Name: name, Matched: key})
				return nil
			}
		}
		return nil
	})
	return results, err
}

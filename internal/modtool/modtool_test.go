package modtool_test

import (
	"bytes"
	"strings"
	"testing"

	"gdn"
	"gdn/internal/modtool"
	"gdn/internal/pkgobj"
)

func newWorld(t *testing.T, secure bool) *gdn.World {
	t.Helper()
	top := gdn.DefaultTopology()
	top.Secure = secure
	w, err := gdn.NewWorld(top)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func moderator(t *testing.T, w *gdn.World) *modtool.Tool {
	t.Helper()
	mod, err := w.Moderator("eu-nl-vu", "alice")
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func create(t *testing.T, w *gdn.World, mod *modtool.Tool, name string, servers ...string) gdn.OID {
	t.Helper()
	protocol := gdn.ProtocolMasterSlave
	if len(servers) == 1 {
		protocol = gdn.ProtocolClientServer
	}
	oid, _, err := mod.CreatePackage(name, gdn.Scenario{
		Protocol: protocol,
		Servers:  w.GOSAddrs(servers...),
	}, gdn.Package{
		Files: map[string][]byte{"README": []byte("readme for " + name)},
		Meta:  map[string]string{"description": name},
	})
	if err != nil {
		t.Fatal(err)
	}
	return oid
}

func TestCreateFollowsPaperProcedure(t *testing.T) {
	w := newWorld(t, false)
	mod := moderator(t, w)

	oid := create(t, w, mod, "/apps/graphics/gimp", "eu-nl-vu", "na-ca-ucb")
	if oid.IsNil() {
		t.Fatal("no OID")
	}

	// Both listed servers host a replica: master at the first, slave at
	// the second.
	euGOS, _ := w.GOS("eu-nl-vu")
	naGOS, _ := w.GOS("na-ca-ucb")
	if euGOS.Hosted() != 1 || naGOS.Hosted() != 1 {
		t.Fatalf("hosted: eu=%d na=%d", euGOS.Hosted(), naGOS.Hosted())
	}
	euLR, _ := euGOS.HostedLR(oid)
	naLR, _ := naGOS.HostedLR(oid)
	if euLR.Role() != "master" || naLR.Role() != "slave" {
		t.Fatalf("roles: eu=%q na=%q", euLR.Role(), naLR.Role())
	}

	// The content arrived through the scenario: a user in Asia reads it.
	stub, _, err := w.BindPackage("ap-jp-ut", "/apps/graphics/gimp")
	if err != nil {
		t.Fatal(err)
	}
	defer stub.Close()
	data, err := stub.GetFileContents("README")
	if err != nil || !bytes.Contains(data, []byte("gimp")) {
		t.Fatalf("read: %q, %v", data, err)
	}
	// The scenario is recorded in metadata for later management.
	sc, err := mod.Scenario("/apps/graphics/gimp")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Protocol != gdn.ProtocolMasterSlave || len(sc.Servers) != 2 {
		t.Fatalf("recorded scenario = %+v", sc)
	}
}

func TestUpdatePackage(t *testing.T) {
	w := newWorld(t, false)
	mod := moderator(t, w)
	create(t, w, mod, "/apps/tex/tetex", "eu-nl-vu", "ap-jp-ut")

	if _, err := mod.UpdatePackage("/apps/tex/tetex", func(s *pkgobj.Stub) error {
		return s.AddFile("NEWS", []byte("version 1.1 released"))
	}); err != nil {
		t.Fatal(err)
	}

	// The update propagated to the slave in Asia.
	stub, _, err := w.BindPackage("ap-au-mu", "/apps/tex/tetex")
	if err != nil {
		t.Fatal(err)
	}
	defer stub.Close()
	data, err := stub.GetFileContents("NEWS")
	if err != nil || !bytes.Contains(data, []byte("1.1")) {
		t.Fatalf("slave read after update: %q, %v", data, err)
	}
}

func TestRemovePackage(t *testing.T) {
	w := newWorld(t, false)
	mod := moderator(t, w)
	oid := create(t, w, mod, "/apps/games/rogue", "eu-nl-vu", "na-ca-ucb")

	if _, err := mod.RemovePackage("/apps/games/rogue"); err != nil {
		t.Fatal(err)
	}

	// Replicas gone at both servers.
	for _, site := range []string{"eu-nl-vu", "na-ca-ucb"} {
		srv, _ := w.GOS(site)
		if _, hosted := srv.HostedLR(oid); hosted {
			t.Fatalf("%s still hosts the removed package", site)
		}
	}
	// The name is gone (resolvers that never saw it get NXDOMAIN).
	if _, _, err := w.BindPackage("eu-de-tu", "/apps/games/rogue"); err == nil {
		t.Fatal("bind after removal must fail")
	}
}

func TestAddReplicaWidensScenario(t *testing.T) {
	w := newWorld(t, false)
	mod := moderator(t, w)
	oid := create(t, w, mod, "/os/linux/debian", "eu-nl-vu", "na-ca-ucb")

	// Popularity grew in Asia: add a replica there (§3.1 adaptation).
	if _, err := mod.AddReplica("/os/linux/debian", "ap-jp-ut:gos-cmd"); err != nil {
		t.Fatal(err)
	}
	apGOS, _ := w.GOS("ap-jp-ut")
	if _, hosted := apGOS.HostedLR(oid); !hosted {
		t.Fatal("new replica not hosted")
	}
	sc, err := mod.Scenario("/os/linux/debian")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Servers) != 3 {
		t.Fatalf("scenario not widened: %+v", sc)
	}

	// Duplicate additions are refused.
	if _, err := mod.AddReplica("/os/linux/debian", "ap-jp-ut:gos-cmd"); err == nil {
		t.Fatal("duplicate replica must be refused")
	}

	// An Asian client now reads locally.
	stub, _, err := w.BindPackage("ap-au-mu", "/os/linux/debian")
	if err != nil {
		t.Fatal(err)
	}
	defer stub.Close()
	if _, err := stub.GetFileContents("README"); err != nil {
		t.Fatal(err)
	}
}

func TestListPackages(t *testing.T) {
	w := newWorld(t, false)
	mod := moderator(t, w)
	create(t, w, mod, "/apps/graphics/gimp", "eu-nl-vu")
	create(t, w, mod, "/apps/graphics/xv", "eu-nl-vu")

	names, err := mod.List("/apps/graphics")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "gimp" || names[1] != "xv" {
		t.Fatalf("names = %v", names)
	}
}

func TestClientServerScenarioCannotReplicate(t *testing.T) {
	w := newWorld(t, false)
	mod := moderator(t, w)
	_, _, err := mod.CreatePackage("/apps/x", gdn.Scenario{
		Protocol: gdn.ProtocolClientServer,
		Servers:  w.GOSAddrs("eu-nl-vu", "na-ca-ucb"),
	}, gdn.Package{Files: map[string][]byte{"f": []byte("x")}})
	if err == nil || !strings.Contains(err.Error(), "single replica") {
		t.Fatalf("err = %v, want single-replica refusal", err)
	}
}

func TestSecureModerationOnly(t *testing.T) {
	w := newWorld(t, true)
	mod := moderator(t, w)
	create(t, w, mod, "/apps/editors/emacs", "eu-nl-vu")

	// A user cannot run moderation: their role is rejected by the GOS
	// and the naming authority.
	userRT, err := w.UserRuntime("na-ny-cu")
	if err != nil {
		t.Fatal(err)
	}
	userCreds, err := w.Credentials("user", "mallory")
	if err != nil {
		t.Fatal(err)
	}
	userTool, err := modtool.New(modtool.Config{
		Site:            "na-ny-cu",
		Net:             w.Net,
		Runtime:         userRT,
		NamingAuthority: "hub:gns-authority",
		Auth:            userCreds,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer userTool.Close()
	if _, _, err := userTool.CreatePackage("/apps/evil", gdn.Scenario{
		Protocol: gdn.ProtocolClientServer,
		Servers:  w.GOSAddrs("na-ny-cu"),
	}, gdn.Package{Files: map[string][]byte{"f": []byte("x")}}); err == nil {
		t.Fatal("user-created package must be rejected")
	}
	if _, err := userTool.RemovePackage("/apps/editors/emacs"); err == nil {
		t.Fatal("user removal must be rejected")
	}
}

func TestModtoolSearch(t *testing.T) {
	w := newWorld(t, false)
	mod := moderator(t, w)
	create(t, w, mod, "/apps/graphics/gimp", "eu-nl-vu")
	create(t, w, mod, "/apps/tex/tetex", "eu-nl-vu")

	// Descriptions were set to the package name by create(); search for
	// a fragment that hits exactly one of them in metadata.
	hits, err := mod.Search("/", "tetex")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Name != "/apps/tex/tetex" {
		t.Fatalf("hits = %+v", hits)
	}

	// A fragment present in both names matches both.
	hits, err = mod.Search("/apps", "apps")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %+v", hits)
	}

	// No match, and empty query rejected.
	hits, err = mod.Search("/", "nonexistent-fragment")
	if err != nil || len(hits) != 0 {
		t.Fatalf("hits = %+v, %v", hits, err)
	}
	if _, err := mod.Search("/", ""); err == nil {
		t.Fatal("empty query must fail")
	}
}

// Package gns implements the Globe Name Service: the mapping from
// human-readable, hierarchical object names to object identifiers
// (paper §5). Combined with the location service this forms Globe's
// two-level naming scheme — names map to OIDs, OIDs map to contact
// addresses — and the stability of the name→OID mapping is what lets
// the service be built on DNS with aggressive caching.
//
// Following the paper's prototype, the GNS here is DNS-based: object
// names have a one-to-one mapping to DNS names inside a configured
// zone, the encoded OID lives in a TXT record, and all changes flow
// through a Naming Authority — the sole daemon allowed to send dynamic
// updates to the zone's name servers (signed with TSIG). Moderator
// tools talk to the Naming Authority over authenticated channels, and
// the authority batches updates to keep zone-update load low (§5).
//
// The GDN hides the DNS domain from users: package names look like
// /apps/graphics/gimp, and the single configured "GDN Zone" is
// prefixed automatically before resolution (§5).
package gns

import (
	"errors"
	"fmt"
	"strings"

	"gdn/internal/dns"
	"gdn/internal/ids"
)

// Errors reported by name handling.
var (
	// ErrBadObjectName is returned for names that violate the DNS-imposed
	// syntax restrictions the paper calls out as a disadvantage of the
	// prototype (§5).
	ErrBadObjectName = errors.New("gns: malformed object name")
	// ErrNotFound is returned when a name has no OID record.
	ErrNotFound = errors.New("gns: name not registered")
	// ErrExists is returned when registering a name that is taken.
	ErrExists = errors.New("gns: name already registered")
)

// oidPrefix tags the TXT record holding an object identifier.
const oidPrefix = "globe-oid="

// entryPrefix tags TXT records enumerating a directory's children.
const entryPrefix = "entry="

// pkgPrefix tags TXT records marking a directory child as itself a
// registered object (a package). It lives alongside the child's entry
// record at the parent, so one TXT query classifies every child as
// directory or package without a resolution round trip per child.
const pkgPrefix = "pkg="

// SplitObjectName validates and splits a hierarchical object name such
// as "/apps/graphics/gimp" into its components, lowercased. Components
// must be valid DNS labels — the name-syntax restriction the paper
// accepts in its DNS-based prototype.
func SplitObjectName(name string) ([]string, error) {
	if !strings.HasPrefix(name, "/") {
		return nil, fmt.Errorf("%w: %q must start with '/'", ErrBadObjectName, name)
	}
	parts := strings.Split(strings.ToLower(strings.Trim(name, "/")), "/")
	if len(parts) == 1 && parts[0] == "" {
		return nil, nil // the root directory "/"
	}
	for _, p := range parts {
		if !validLabel(p) {
			return nil, fmt.Errorf("%w: component %q", ErrBadObjectName, p)
		}
	}
	return parts, nil
}

// validLabel enforces DNS label syntax: 1-63 characters, letters,
// digits, hyphens and underscores, not beginning or ending with '-'.
func validLabel(s string) bool {
	if len(s) == 0 || len(s) > 63 {
		return false
	}
	if s[0] == '-' || s[len(s)-1] == '-' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', '0' <= c && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// NameToDNS maps an object name to its DNS name inside zone. The
// components reverse so the name nests under the zone the way the paper
// maps /nl/vu/cs/globe/somePackage to somePackage.globe.cs.vu.nl (§5).
func NameToDNS(objectName, zone string) (string, error) {
	parts, err := SplitObjectName(objectName)
	if err != nil {
		return "", err
	}
	zone = dns.CanonicalName(zone)
	if len(parts) == 0 {
		return zone, nil
	}
	rev := make([]string, len(parts))
	for i, p := range parts {
		rev[len(parts)-1-i] = p
	}
	if zone == "" {
		return strings.Join(rev, "."), nil
	}
	return strings.Join(rev, ".") + "." + zone, nil
}

// DNSToName reverses NameToDNS for names inside zone.
func DNSToName(dnsName, zone string) (string, error) {
	dnsName = dns.CanonicalName(dnsName)
	zone = dns.CanonicalName(zone)
	if !dns.InZone(dnsName, zone) {
		return "", fmt.Errorf("%w: %q outside zone %q", ErrBadObjectName, dnsName, zone)
	}
	rel := strings.TrimSuffix(strings.TrimSuffix(dnsName, zone), ".")
	if rel == "" {
		return "/", nil
	}
	parts := strings.Split(rel, ".")
	rev := make([]string, len(parts))
	for i, p := range parts {
		rev[len(parts)-1-i] = p
	}
	return "/" + strings.Join(rev, "/"), nil
}

// ParentDirs returns every directory above an object name, nearest
// first: /apps/graphics/gimp → /apps/graphics, /apps, /.
func ParentDirs(objectName string) ([]string, error) {
	parts, err := SplitObjectName(objectName)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for i := len(parts) - 1; i >= 0; i-- {
		if i == 0 {
			dirs = append(dirs, "/")
		} else {
			dirs = append(dirs, "/"+strings.Join(parts[:i], "/"))
		}
	}
	return dirs, nil
}

// EncodeOIDRecord renders an OID as TXT record data.
func EncodeOIDRecord(oid ids.OID) string { return oidPrefix + oid.String() }

// DecodeOIDRecord parses TXT record data produced by EncodeOIDRecord.
func DecodeOIDRecord(txt string) (ids.OID, bool) {
	if !strings.HasPrefix(txt, oidPrefix) {
		return ids.Nil, false
	}
	oid, err := ids.Parse(strings.TrimPrefix(txt, oidPrefix))
	if err != nil {
		return ids.Nil, false
	}
	return oid, true
}

// EncodeEntryRecord renders a directory-child entry as TXT data.
func EncodeEntryRecord(child string) string { return entryPrefix + child }

// DecodeEntryRecord parses directory-entry TXT data.
func DecodeEntryRecord(txt string) (string, bool) {
	if !strings.HasPrefix(txt, entryPrefix) {
		return "", false
	}
	return strings.TrimPrefix(txt, entryPrefix), true
}

// EncodePkgRecord renders a child-is-a-package marker as TXT data.
func EncodePkgRecord(child string) string { return pkgPrefix + child }

// DecodePkgRecord parses package-marker TXT data.
func DecodePkgRecord(txt string) (string, bool) {
	if !strings.HasPrefix(txt, pkgPrefix) {
		return "", false
	}
	return strings.TrimPrefix(txt, pkgPrefix), true
}

package gns

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gdn/internal/dns"
	"gdn/internal/ids"
	"gdn/internal/rpc"
	"gdn/internal/sec"
	"gdn/internal/transport"
	"gdn/internal/wire"
)

// Naming Authority operation codes.
const (
	// OpAdd registers an object name; body: name, OID.
	OpAdd uint16 = iota + 1
	// OpRemove deregisters an object name; body: name.
	OpRemove
	// OpFlush forces pending updates out to the name servers.
	OpFlush
	// OpPending returns the number of staged update records.
	OpPending
)

// AuthorityConfig configures a Naming Authority: "the daemon that sends
// DNS UPDATE messages to the name servers responsible for the GDN Zone,
// in response to add and remove requests from clients" (paper §6.1).
type AuthorityConfig struct {
	// Zone is the GDN Zone, e.g. "gdn.cs.vu.nl".
	Zone string
	// Site and Addr place the authority's RPC endpoint.
	Site string
	Addr string
	// Servers lists the authoritative name servers for the zone. The
	// authority sends every signed update to each of them — the paper
	// spreads resolution load over "multiple authoritative name
	// servers" (§5); pushing updates to all replaces zone transfer.
	Servers []string
	// TSIGKey and TSIGSecret sign updates toward the name servers; the
	// zone must list the same key via Zone.AllowUpdate.
	TSIGKey    string
	TSIGSecret []byte
	// BatchSize staged records trigger an automatic flush. 1 sends every
	// change immediately; larger values implement the paper's "the
	// number of updates to our zone can be kept low by batching" (§5).
	BatchSize int
	// Auth, when non-nil, restricts Add and Remove to authenticated
	// moderators and administrators (paper §6.1, requirement 3).
	Auth *sec.Config
	// Now supplies the TSIG clock (defaults to wall time).
	Now func() int64
	// Logf receives diagnostics; nil discards them.
	Logf func(string, ...any)
}

// Authority is a running Naming Authority. It is the sole writer of the
// GDN Zone: it owns the authoritative table of registered names and
// turns changes into batched, TSIG-signed dynamic updates.
type Authority struct {
	cfg AuthorityConfig
	net transport.Network

	mu       sync.Mutex
	names    map[string]ids.OID         // object name -> OID
	children map[string]map[string]bool // directory -> child labels
	pending  []dns.RR
	flushes  int64

	clientMu sync.Mutex
	clients  map[string]*rpc.Client

	server *rpc.Server
}

// StartAuthority launches a Naming Authority.
func StartAuthority(net transport.Network, cfg AuthorityConfig) (*Authority, error) {
	cfg.Zone = dns.CanonicalName(cfg.Zone)
	if cfg.Zone == "" {
		return nil, fmt.Errorf("gns: authority needs a zone")
	}
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("gns: authority needs at least one name server")
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().Unix() }
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	a := &Authority{
		cfg:      cfg,
		net:      net,
		names:    make(map[string]ids.OID),
		children: make(map[string]map[string]bool),
		clients:  make(map[string]*rpc.Client),
	}
	opts := []rpc.ServerOption{rpc.WithServerLog(cfg.Logf)}
	if cfg.Auth != nil {
		opts = append(opts, rpc.WithServerWrapper(cfg.Auth.WrapServer))
	}
	srv, err := rpc.Serve(net, cfg.Addr, a.handle, opts...)
	if err != nil {
		return nil, err
	}
	a.server = srv
	return a, nil
}

// Addr returns the authority's RPC address.
func (a *Authority) Addr() string { return a.cfg.Addr }

// Close stops the authority. Pending updates are not flushed; restart
// recovery re-derives them from the registered-names snapshot.
func (a *Authority) Close() error {
	err := a.server.Close()
	a.clientMu.Lock()
	for _, c := range a.clients {
		c.Close()
	}
	a.clients = make(map[string]*rpc.Client)
	a.clientMu.Unlock()
	return err
}

// Flushes returns how many update messages have been sent to the name
// servers; the batching experiment compares this against registrations.
func (a *Authority) Flushes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushes
}

// Names returns all registered object names, sorted.
func (a *Authority) Names() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.names))
	for n := range a.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (a *Authority) client(addr string) *rpc.Client {
	a.clientMu.Lock()
	defer a.clientMu.Unlock()
	c, ok := a.clients[addr]
	if !ok {
		c = rpc.NewClient(a.net, a.cfg.Site, addr)
		a.clients[addr] = c
	}
	return c
}

func (a *Authority) handle(call *rpc.Call) ([]byte, error) {
	switch call.Op {
	case OpAdd:
		return a.handleAdd(call)
	case OpRemove:
		return a.handleRemove(call)
	case OpFlush:
		return nil, a.flush(call)
	case OpPending:
		a.mu.Lock()
		n := len(a.pending)
		a.mu.Unlock()
		w := wire.NewWriter(4)
		w.Uint32(uint32(n))
		return w.Bytes(), nil
	default:
		return nil, fmt.Errorf("gns: unknown op %d", call.Op)
	}
}

// authorize admits moderators and administrators when security is on.
func (a *Authority) authorize(call *rpc.Call) error {
	if a.cfg.Auth == nil {
		return nil
	}
	if !sec.HasRole(call.Peer, sec.RoleModerator, sec.RoleAdmin) {
		return fmt.Errorf("%w: peer %q may not change the GDN zone", sec.ErrUnauthorized, call.Peer)
	}
	return nil
}

func (a *Authority) handleAdd(call *rpc.Call) ([]byte, error) {
	if err := a.authorize(call); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	name := r.Str()
	oid := r.OID()
	if err := r.Done(); err != nil {
		return nil, err
	}
	parts, err := SplitObjectName(name)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: cannot register the root directory", ErrBadObjectName)
	}
	canonical := "/" + strings.Join(parts, "/")

	a.mu.Lock()
	defer a.mu.Unlock()
	if _, taken := a.names[canonical]; taken {
		return nil, fmt.Errorf("%w: %s", ErrExists, canonical)
	}
	a.names[canonical] = oid

	dnsName, err := NameToDNS(canonical, a.cfg.Zone)
	if err != nil {
		return nil, err
	}
	a.stage(dns.RR{Name: dnsName, Type: dns.TypeTXT, Class: dns.ClassIN, TTL: recordTTL, Data: EncodeOIDRecord(oid)})

	// Register the name in each directory above it that does not list it
	// yet, creating directories on demand.
	dirs, err := ParentDirs(canonical)
	if err != nil {
		return nil, err
	}
	child := parts[len(parts)-1]
	// The immediate parent additionally gets a package marker, so a
	// single listing query classifies this child as an object — even
	// when the entry chain already existed (the name was a directory
	// before it became a package too).
	parentDNS, err := NameToDNS(dirs[0], a.cfg.Zone)
	if err != nil {
		return nil, err
	}
	a.stage(dns.RR{Name: parentDNS, Type: dns.TypeTXT, Class: dns.ClassIN, TTL: recordTTL, Data: EncodePkgRecord(child)})
	for i, dir := range dirs {
		kids := a.children[dir]
		if kids == nil {
			kids = make(map[string]bool)
			a.children[dir] = kids
		}
		if kids[child] {
			break // the chain above already exists
		}
		kids[child] = true
		dirDNS, err := NameToDNS(dir, a.cfg.Zone)
		if err != nil {
			return nil, err
		}
		a.stage(dns.RR{Name: dirDNS, Type: dns.TypeTXT, Class: dns.ClassIN, TTL: recordTTL, Data: EncodeEntryRecord(child)})
		// The next level up must list this directory.
		if i+1 < len(dirs) {
			child = lastLabel(dir)
		}
	}
	return nil, a.maybeFlushLocked(call)
}

func (a *Authority) handleRemove(call *rpc.Call) ([]byte, error) {
	if err := a.authorize(call); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	name := r.Str()
	if err := r.Done(); err != nil {
		return nil, err
	}
	parts, err := SplitObjectName(name)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: cannot remove the root directory", ErrBadObjectName)
	}
	canonical := "/" + strings.Join(parts, "/")

	a.mu.Lock()
	defer a.mu.Unlock()
	oid, ok := a.names[canonical]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, canonical)
	}
	delete(a.names, canonical)

	dnsName, err := NameToDNS(canonical, a.cfg.Zone)
	if err != nil {
		return nil, err
	}
	a.stage(dns.RR{Name: dnsName, Type: dns.TypeTXT, Class: dns.ClassNone, Data: EncodeOIDRecord(oid)})

	// Unlink from parent directories while they become empty. A name
	// that still has children stays listed: it is also a directory.
	dirs, err := ParentDirs(canonical)
	if err != nil {
		return nil, err
	}
	current := canonical
	child := parts[len(parts)-1]
	// The object is gone, so its package marker at the immediate parent
	// goes regardless of whether the name survives as a directory.
	parentDNS, err := NameToDNS(dirs[0], a.cfg.Zone)
	if err != nil {
		return nil, err
	}
	a.stage(dns.RR{Name: parentDNS, Type: dns.TypeTXT, Class: dns.ClassNone, Data: EncodePkgRecord(child)})
	for _, dir := range dirs {
		if len(a.children[current]) > 0 {
			break // still a non-empty directory; keep its entry
		}
		if _, isObject := a.names[current]; isObject {
			break // another registration (multi-name) keeps it alive
		}
		kids := a.children[dir]
		delete(kids, child)
		if len(kids) == 0 {
			delete(a.children, dir)
		}
		dirDNS, err := NameToDNS(dir, a.cfg.Zone)
		if err != nil {
			return nil, err
		}
		a.stage(dns.RR{Name: dirDNS, Type: dns.TypeTXT, Class: dns.ClassNone, Data: EncodeEntryRecord(child)})
		current = dir
		child = lastLabel(dir)
	}
	return nil, a.maybeFlushLocked(call)
}

// recordTTL is the TTL for GNS records. The paper leans on the
// assumption that name→OID mappings are stable, so a generous TTL is
// appropriate; resolvers cache it.
const recordTTL = 300

func (a *Authority) stage(rr dns.RR) {
	a.pending = append(a.pending, rr)
}

func (a *Authority) maybeFlushLocked(call *rpc.Call) error {
	if len(a.pending) < a.cfg.BatchSize {
		return nil
	}
	return a.flushLocked(call)
}

func (a *Authority) flush(call *rpc.Call) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushLocked(call)
}

// flushLocked sends all pending records as one signed update to every
// authoritative server. The caller holds a.mu.
func (a *Authority) flushLocked(call *rpc.Call) error {
	if len(a.pending) == 0 {
		return nil
	}
	up := dns.NewUpdate(a.cfg.Zone)
	up.Authority = append(up.Authority, a.pending...)
	if err := dns.SignTSIG(up, a.cfg.TSIGKey, a.cfg.TSIGSecret, a.cfg.Now()); err != nil {
		return err
	}
	body, err := dns.Encode(up)
	if err != nil {
		return err
	}
	for _, server := range a.cfg.Servers {
		respBody, cost, err := a.client(server).Call(dns.OpDNS, body)
		if call != nil {
			call.Charge(cost)
		}
		if err != nil {
			return fmt.Errorf("gns: update to %s: %w", server, err)
		}
		resp, err := dns.Decode(respBody)
		if err != nil {
			return fmt.Errorf("gns: update to %s: %w", server, err)
		}
		if resp.RCode != dns.RCodeOK {
			return fmt.Errorf("gns: update to %s refused: %v", server, resp.RCode)
		}
	}
	a.pending = nil
	a.flushes++
	return nil
}

// Snapshot serializes the authority's name table for crash recovery.
func (a *Authority) Snapshot() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := wire.NewWriter(1024)
	w.Str(a.cfg.Zone)
	w.Count(len(a.names))
	for name, oid := range a.names {
		w.Str(name)
		w.OID(oid)
	}
	return w.Bytes()
}

// Restore rebuilds the name table (and the derived directory tree) from
// a snapshot. It does not emit DNS updates: the zone content either
// survived with the name servers or is re-pushed with ResyncZone.
func (a *Authority) Restore(b []byte) error {
	r := wire.NewReader(b)
	zone := r.Str()
	count := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	if zone != a.cfg.Zone {
		return fmt.Errorf("gns: snapshot is for zone %q, authority serves %q", zone, a.cfg.Zone)
	}
	names := make(map[string]ids.OID, count)
	for i := 0; i < count; i++ {
		name := r.Str()
		oid := r.OID()
		names[name] = oid
	}
	if err := r.Done(); err != nil {
		return err
	}

	children := make(map[string]map[string]bool)
	for name := range names {
		parts, err := SplitObjectName(name)
		if err != nil {
			return err
		}
		dirs, err := ParentDirs(name)
		if err != nil {
			return err
		}
		child := parts[len(parts)-1]
		for _, dir := range dirs {
			kids := children[dir]
			if kids == nil {
				kids = make(map[string]bool)
				children[dir] = kids
			}
			kids[child] = true
			child = lastLabel(dir)
		}
	}

	a.mu.Lock()
	a.names = names
	a.children = children
	a.pending = nil
	a.mu.Unlock()
	return nil
}

// ResyncZone re-stages every registered name as an update, bringing
// freshly initialized name servers to the authority's state.
func (a *Authority) ResyncZone() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for name, oid := range a.names {
		dnsName, err := NameToDNS(name, a.cfg.Zone)
		if err != nil {
			return err
		}
		a.stage(dns.RR{Name: dnsName, Type: dns.TypeTXT, Class: dns.ClassIN, TTL: recordTTL, Data: EncodeOIDRecord(oid)})
		dirs, err := ParentDirs(name)
		if err != nil {
			return err
		}
		parentDNS, err := NameToDNS(dirs[0], a.cfg.Zone)
		if err != nil {
			return err
		}
		a.stage(dns.RR{Name: parentDNS, Type: dns.TypeTXT, Class: dns.ClassIN, TTL: recordTTL, Data: EncodePkgRecord(lastLabel(name))})
	}
	for dir, kids := range a.children {
		dirDNS, err := NameToDNS(dir, a.cfg.Zone)
		if err != nil {
			return err
		}
		for child := range kids {
			a.stage(dns.RR{Name: dirDNS, Type: dns.TypeTXT, Class: dns.ClassIN, TTL: recordTTL, Data: EncodeEntryRecord(child)})
		}
	}
	return a.flushLocked(nil)
}

// lastLabel returns the final path component of an object name, or ""
// for the root.
func lastLabel(objectName string) string {
	if objectName == "/" {
		return ""
	}
	for i := len(objectName) - 1; i >= 0; i-- {
		if objectName[i] == '/' {
			return objectName[i+1:]
		}
	}
	return objectName
}

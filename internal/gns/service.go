package gns

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"gdn/internal/dns"
	"gdn/internal/ids"
	"gdn/internal/rpc"
	"gdn/internal/sec"
	"gdn/internal/transport"
	"gdn/internal/wire"
)

// NameService is the read path of the GNS: it resolves object names to
// object identifiers through ordinary DNS resolution, benefiting from
// resolver caching exactly as the paper intends (§5). One NameService
// wraps one resolver and one zone — the GDN Zone — which it prefixes
// automatically so users never see the DNS domain.
type NameService struct {
	res  *dns.Resolver
	zone string
}

// NewNameService returns a name service resolving names inside zone
// through res.
func NewNameService(res *dns.Resolver, zone string) *NameService {
	return &NameService{res: res, zone: dns.CanonicalName(zone)}
}

// Zone returns the GDN Zone this service resolves within.
func (ns *NameService) Zone() string { return ns.zone }

// Resolve maps an object name such as /apps/graphics/gimp to its object
// identifier. The returned cost is zero when the resolver cache
// answered.
func (ns *NameService) Resolve(objectName string) (ids.OID, time.Duration, error) {
	dnsName, err := NameToDNS(objectName, ns.zone)
	if err != nil {
		return ids.Nil, 0, err
	}
	texts, result, err := ns.res.QueryTXT(dnsName)
	if err != nil {
		if result.RCode == dns.RCodeNXDomain {
			return ids.Nil, result.Cost, fmt.Errorf("%w: %s", ErrNotFound, objectName)
		}
		return ids.Nil, result.Cost, err
	}
	for _, txt := range texts {
		if oid, ok := DecodeOIDRecord(txt); ok {
			return oid, result.Cost, nil
		}
	}
	return ids.Nil, result.Cost, fmt.Errorf("%w: %s", ErrNotFound, objectName)
}

// List returns the child names registered under a directory, sorted.
func (ns *NameService) List(dir string) ([]string, time.Duration, error) {
	dnsName, err := NameToDNS(dir, ns.zone)
	if err != nil {
		return nil, 0, err
	}
	texts, result, err := ns.res.QueryTXT(dnsName)
	if err != nil {
		if result.RCode == dns.RCodeNXDomain {
			return nil, result.Cost, fmt.Errorf("%w: %s", ErrNotFound, dir)
		}
		return nil, result.Cost, err
	}
	var children []string
	for _, txt := range texts {
		if child, ok := DecodeEntryRecord(txt); ok {
			children = append(children, child)
		}
	}
	sort.Strings(children)
	return children, result.Cost, nil
}

// Entry describes one child of a GNS directory.
type Entry struct {
	// Name is the child's label within the directory.
	Name string
	// Package reports that the child is itself a registered object; it
	// may additionally be a directory with children of its own.
	Package bool
}

// Entries returns a directory's children with their directory-versus-
// package classification, from one TXT query: the parent's record set
// carries a package marker alongside each object child's entry record.
// Callers that previously probed every child with Resolve (N extra
// round trips, cost uncounted) list with this instead.
func (ns *NameService) Entries(dir string) ([]Entry, time.Duration, error) {
	dnsName, err := NameToDNS(dir, ns.zone)
	if err != nil {
		return nil, 0, err
	}
	texts, result, err := ns.res.QueryTXT(dnsName)
	if err != nil {
		if result.RCode == dns.RCodeNXDomain {
			return nil, result.Cost, fmt.Errorf("%w: %s", ErrNotFound, dir)
		}
		return nil, result.Cost, err
	}
	pkgs := make(map[string]bool)
	var names []string
	for _, txt := range texts {
		if child, ok := DecodeEntryRecord(txt); ok {
			names = append(names, child)
		} else if child, ok := DecodePkgRecord(txt); ok {
			pkgs[child] = true
		}
	}
	sort.Strings(names)
	entries := make([]Entry, 0, len(names))
	for _, name := range names {
		entries = append(entries, Entry{Name: name, Package: pkgs[name]})
	}
	return entries, result.Cost, nil
}

// maxWalkDepth bounds Walk's recursion so a cyclic or hostile
// directory graph terminates.
const maxWalkDepth = 16

// Walk visits every registered object name under dir, depth first in
// sorted order, calling fn with the name and its identifier. It is the
// enumeration primitive behind attribute-based search — the feature
// the paper wants beyond plain name lookup (§2, §8). Traversal costs
// are returned in aggregate.
func (ns *NameService) Walk(dir string, fn func(name string, oid ids.OID) error) (time.Duration, error) {
	return ns.walk(dir, 0, fn)
}

func (ns *NameService) walk(dir string, depth int, fn func(string, ids.OID) error) (time.Duration, error) {
	if depth > maxWalkDepth {
		return 0, fmt.Errorf("gns: directory tree deeper than %d at %q", maxWalkDepth, dir)
	}
	children, total, err := ns.List(dir)
	if err != nil {
		return total, err
	}
	for _, child := range children {
		full := dir + "/" + child
		if dir == "/" {
			full = "/" + child
		}
		oid, cost, err := ns.Resolve(full)
		total += cost
		switch {
		case err == nil:
			if err := fn(full, oid); err != nil {
				return total, err
			}
		case errors.Is(err, ErrNotFound):
			// A pure directory: no object registered at this name.
		default:
			return total, err
		}
		cost, err = ns.walk(full, depth+1, fn)
		total += cost
		if err != nil && !errors.Is(err, ErrNotFound) {
			return total, err
		}
	}
	return total, nil
}

// Client is the write path of the GNS as seen by a moderator tool: it
// sends add and remove requests to the Naming Authority over an
// (optionally authenticated) channel.
type Client struct {
	rpc *rpc.Client
}

// NewClient connects to a Naming Authority at addr. auth supplies the
// moderator's credentials when the authority enforces admission.
func NewClient(net transport.Network, site, addr string, auth *sec.Config) *Client {
	var opts []rpc.ClientOption
	if auth != nil {
		opts = append(opts, rpc.WithClientWrapper(auth.WrapClient))
	}
	return &Client{rpc: rpc.NewClient(net, site, addr, opts...)}
}

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }

// Add registers an object name for an OID.
func (c *Client) Add(name string, oid ids.OID) (time.Duration, error) {
	w := wire.NewWriter(64)
	w.Str(name)
	w.OID(oid)
	_, cost, err := c.rpc.Call(OpAdd, w.Bytes())
	return cost, err
}

// Remove deregisters an object name.
func (c *Client) Remove(name string) (time.Duration, error) {
	w := wire.NewWriter(64)
	w.Str(name)
	_, cost, err := c.rpc.Call(OpRemove, w.Bytes())
	return cost, err
}

// Flush forces the authority to push pending updates to the name
// servers.
func (c *Client) Flush() (time.Duration, error) {
	_, cost, err := c.rpc.Call(OpFlush, nil)
	return cost, err
}

// Pending returns the number of staged update records at the authority.
func (c *Client) Pending() (int, error) {
	resp, _, err := c.rpc.Call(OpPending, nil)
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp)
	n := r.Uint32()
	if err := r.Done(); err != nil {
		return 0, err
	}
	return int(n), nil
}

package gns

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"gdn/internal/dns"
	"gdn/internal/ids"
	"gdn/internal/netsim"
	"gdn/internal/sec"
)

func TestNameToDNSAndBack(t *testing.T) {
	cases := []struct {
		object string
		zone   string
		dns    string
	}{
		{"/apps/graphics/gimp", "gdn.cs.vu.nl", "gimp.graphics.apps.gdn.cs.vu.nl"},
		{"/nl/vu/cs/globe/somepackage", "", "somepackage.globe.cs.vu.nl"},
		{"/apps", "gdn.cs.vu.nl", "apps.gdn.cs.vu.nl"},
		{"/", "gdn.cs.vu.nl", "gdn.cs.vu.nl"},
	}
	for _, c := range cases {
		got, err := NameToDNS(c.object, c.zone)
		if err != nil {
			t.Fatalf("NameToDNS(%q): %v", c.object, err)
		}
		if got != c.dns {
			t.Errorf("NameToDNS(%q, %q) = %q, want %q", c.object, c.zone, got, c.dns)
		}
		back, err := DNSToName(got, c.zone)
		if err != nil {
			t.Fatal(err)
		}
		want := strings.ToLower(c.object)
		if back != want {
			t.Errorf("DNSToName(%q) = %q, want %q", got, back, want)
		}
	}
}

func TestNameValidation(t *testing.T) {
	bad := []string{"apps/gimp", "/apps//gimp", "/apps/Gi mp", "/-bad", "/" + strings.Repeat("x", 64)}
	for _, name := range bad {
		if _, err := NameToDNS(name, "zone"); err == nil {
			t.Errorf("NameToDNS(%q) must fail", name)
		}
	}
	// Upper case is folded, mirroring DNS case-insensitivity.
	got, err := NameToDNS("/Apps/Graphics/Gimp", "zone")
	if err != nil || got != "gimp.graphics.apps.zone" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestParentDirs(t *testing.T) {
	dirs, err := ParentDirs("/apps/graphics/gimp")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/apps/graphics", "/apps", "/"}
	if len(dirs) != len(want) {
		t.Fatalf("dirs = %v", dirs)
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Fatalf("dirs = %v, want %v", dirs, want)
		}
	}
}

func TestOIDRecordRoundTrip(t *testing.T) {
	f := func(seed string) bool {
		oid := ids.Derive(seed)
		got, ok := DecodeOIDRecord(EncodeOIDRecord(oid))
		return ok && got == oid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := DecodeOIDRecord("entry=foo"); ok {
		t.Fatal("entry record must not parse as OID")
	}
	if _, ok := DecodeOIDRecord("globe-oid=nothex"); ok {
		t.Fatal("bad hex must not parse")
	}
}

// gnsWorld assembles a complete naming stack: two authoritative name
// servers for the GDN zone, a naming authority pushing signed updates
// to both, and a caching resolver for clients.
type gnsWorld struct {
	net       *netsim.Network
	servers   []*dns.Server
	zones     []*dns.Zone
	authority *Authority
	resolver  *dns.Resolver
	service   *NameService
	client    *Client
}

const testZone = "gdn.cs.vu.nl"

func newGNSWorld(t *testing.T, batchSize int, auth *sec.Config, clientAuth *sec.Config) *gnsWorld {
	t.Helper()
	net := netsim.New(nil)
	net.AddSite("ns1", "eu-nl", "eu")
	net.AddSite("ns2", "us-ca", "us")
	net.AddSite("na", "eu-nl", "eu")
	net.AddSite("client", "eu-de", "eu")

	w := &gnsWorld{net: net}
	secret := []byte("na-secret")
	for _, site := range []string{"ns1", "ns2"} {
		srv, err := dns.ServeDNS(net, site+":dns", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		zone := dns.NewZone(testZone)
		zone.AllowUpdate("na-key", secret)
		srv.AddZone(zone)
		srv.SetClock(func() int64 { return 0 })
		w.servers = append(w.servers, srv)
		w.zones = append(w.zones, zone)
	}

	authority, err := StartAuthority(net, AuthorityConfig{
		Zone:       testZone,
		Site:       "na",
		Addr:       "na:gns-authority",
		Servers:    []string{"ns1:dns", "ns2:dns"},
		TSIGKey:    "na-key",
		TSIGSecret: secret,
		BatchSize:  batchSize,
		Auth:       auth,
		Now:        func() int64 { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { authority.Close() })
	w.authority = authority

	w.resolver = dns.NewResolver(net, "client", []string{"ns1:dns", "ns2:dns"})
	t.Cleanup(func() { w.resolver.Close() })
	w.service = NewNameService(w.resolver, testZone)
	w.client = NewClient(net, "client", "na:gns-authority", clientAuth)
	t.Cleanup(func() { w.client.Close() })
	return w
}

func TestAddResolveRemove(t *testing.T) {
	w := newGNSWorld(t, 1, nil, nil)
	oid := ids.Derive("gimp")

	if _, err := w.client.Add("/apps/graphics/Gimp", oid); err != nil {
		t.Fatal(err)
	}

	got, cost, err := w.service.Resolve("/apps/graphics/gimp")
	if err != nil {
		t.Fatal(err)
	}
	if got != oid {
		t.Fatalf("resolved %s, want %s", got, oid)
	}
	if cost <= 0 {
		t.Fatal("first resolution must cost network traffic")
	}

	// Both name servers received the update.
	for i, zone := range w.zones {
		if zone.Serial() == 0 {
			t.Fatalf("server %d never saw an update", i)
		}
	}

	if _, err := w.client.Remove("/apps/graphics/gimp"); err != nil {
		t.Fatal(err)
	}
	w.resolver.FlushCache()
	if _, _, err := w.service.Resolve("/apps/graphics/gimp"); err == nil {
		t.Fatal("resolve after remove must fail")
	}
}

func TestDuplicateAndMissingNames(t *testing.T) {
	w := newGNSWorld(t, 1, nil, nil)
	oid := ids.Derive("x")
	if _, err := w.client.Add("/apps/x", oid); err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.Add("/apps/x", ids.Derive("y")); err == nil {
		t.Fatal("duplicate add must fail")
	} else if !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := w.client.Remove("/apps/nope"); err == nil {
		t.Fatal("removing unknown name must fail")
	}
}

func TestMultipleNamesOneObject(t *testing.T) {
	// "A package is allowed to have more than one name so we can have
	// multiple classifications" (§5).
	w := newGNSWorld(t, 1, nil, nil)
	oid := ids.Derive("gimp")
	for _, name := range []string{"/apps/graphics/gimp", "/apps/photography/gimp"} {
		if _, err := w.client.Add(name, oid); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"/apps/graphics/gimp", "/apps/photography/gimp"} {
		got, _, err := w.service.Resolve(name)
		if err != nil || got != oid {
			t.Fatalf("resolve %s = %v, %v", name, got, err)
		}
	}
}

func TestDirectoryListing(t *testing.T) {
	w := newGNSWorld(t, 1, nil, nil)
	names := []string{"/apps/graphics/gimp", "/apps/graphics/xv", "/apps/tex/tetex", "/os/linux/debian"}
	for _, n := range names {
		if _, err := w.client.Add(n, ids.Derive(n)); err != nil {
			t.Fatal(err)
		}
	}

	kids, _, err := w.service.List("/apps/graphics")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0] != "gimp" || kids[1] != "xv" {
		t.Fatalf("graphics children = %v", kids)
	}
	kids, _, err = w.service.List("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0] != "apps" || kids[1] != "os" {
		t.Fatalf("root children = %v", kids)
	}

	// Removing the only TeX package prunes /apps/tex from /apps but
	// keeps /apps itself (graphics is still there).
	if _, err := w.client.Remove("/apps/tex/tetex"); err != nil {
		t.Fatal(err)
	}
	w.resolver.FlushCache()
	kids, _, err = w.service.List("/apps")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 1 || kids[0] != "graphics" {
		t.Fatalf("apps children after prune = %v", kids)
	}
}

func TestEntriesClassifyInOneRoundTrip(t *testing.T) {
	w := newGNSWorld(t, 1, nil, nil)
	for _, n := range []string{"/apps/graphics/gimp", "/apps/tex"} {
		if _, err := w.client.Add(n, ids.Derive(n)); err != nil {
			t.Fatal(err)
		}
	}

	entries, _, err := w.service.Entries("/apps")
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{{Name: "graphics", Package: false}, {Name: "tex", Package: true}}
	if len(entries) != 2 || entries[0] != want[0] || entries[1] != want[1] {
		t.Fatalf("entries = %v, want %v", entries, want)
	}
	// One TXT query classifies every child: no per-child Resolve.
	if qs := w.servers[0].QueriesHandled() + w.servers[1].QueriesHandled(); qs != 1 {
		t.Fatalf("entries listing issued %d DNS queries, want 1", qs)
	}

	// A directory that later becomes a package too flips its marker.
	if _, err := w.client.Add("/apps/graphics", ids.Derive("graphics-pkg")); err != nil {
		t.Fatal(err)
	}
	w.resolver.FlushCache()
	entries, _, err = w.service.Entries("/apps")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || !entries[0].Package {
		t.Fatalf("entries after dir-becomes-package = %v", entries)
	}

	// Removing the package (children remain) demotes it back to a
	// plain directory entry.
	if _, err := w.client.Remove("/apps/graphics"); err != nil {
		t.Fatal(err)
	}
	w.resolver.FlushCache()
	entries, _, err = w.service.Entries("/apps")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Package {
		t.Fatalf("entries after package removal = %v", entries)
	}
}

func TestUpdateBatching(t *testing.T) {
	w := newGNSWorld(t, 50, nil, nil)

	// 10 adds stage ~21 records (10 OIDs + 11 directory entries), under
	// the batch threshold: nothing sent yet.
	for i := 0; i < 10; i++ {
		name := "/apps/pkg-" + string(rune('a'+i))
		if _, err := w.client.Add(name, ids.Derive(name)); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.authority.Flushes(); got != 0 {
		t.Fatalf("flushes = %d before threshold", got)
	}
	pending, err := w.client.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if pending == 0 {
		t.Fatal("updates must be staged")
	}
	if _, _, err := w.service.Resolve("/apps/pkg-a"); err == nil {
		t.Fatal("unflushed names must not resolve yet")
	}

	// An explicit flush delivers everything as one update message.
	if _, err := w.client.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := w.authority.Flushes(); got != 1 {
		t.Fatalf("flushes = %d after explicit flush", got)
	}
	if got := w.zones[0].Serial(); got != 1 {
		t.Fatalf("zone serial = %d: batch must be one transaction", got)
	}
	w.resolver.FlushCache()
	if _, _, err := w.service.Resolve("/apps/pkg-a"); err != nil {
		t.Fatal(err)
	}

	// Crossing the threshold flushes automatically.
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("/os/auto%d", i)
		if _, err := w.client.Add(name, ids.Derive(name)); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.authority.Flushes(); got < 2 {
		t.Fatalf("flushes = %d, want automatic flush past threshold", got)
	}
}

func TestResolutionUsesResolverCache(t *testing.T) {
	w := newGNSWorld(t, 1, nil, nil)
	oid := ids.Derive("gimp")
	if _, err := w.client.Add("/apps/gimp", oid); err != nil {
		t.Fatal(err)
	}
	if _, cost, err := w.service.Resolve("/apps/gimp"); err != nil || cost == 0 {
		t.Fatalf("first resolve: cost=%v err=%v", cost, err)
	}
	_, cost, err := w.service.Resolve("/apps/gimp")
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Fatalf("cached resolve must be free, cost=%v", cost)
	}
}

func TestAuthorityAdmissionControl(t *testing.T) {
	ca, err := sec.NewAuthority("gdn-root")
	if err != nil {
		t.Fatal(err)
	}
	naCreds, err := sec.NewCredentials(ca, sec.Principal(sec.RoleGNS, "na"), sec.RoleGNS)
	if err != nil {
		t.Fatal(err)
	}
	modCreds, err := sec.NewCredentials(ca, sec.Principal(sec.RoleModerator, "alice"), sec.RoleModerator)
	if err != nil {
		t.Fatal(err)
	}
	userCreds, err := sec.NewCredentials(ca, sec.Principal(sec.RoleUser, "mallory"), sec.RoleUser)
	if err != nil {
		t.Fatal(err)
	}

	serverAuth := &sec.Config{Creds: naCreds, TrustAnchors: ca.Anchors(), RequireClientAuth: true}
	modAuth := &sec.Config{Creds: modCreds, TrustAnchors: ca.Anchors()}
	w := newGNSWorld(t, 1, serverAuth, modAuth)

	if _, err := w.client.Add("/apps/ok", ids.Derive("ok")); err != nil {
		t.Fatalf("moderator add: %v", err)
	}

	mallory := NewClient(w.net, "client", "na:gns-authority", &sec.Config{
		Creds:        userCreds,
		TrustAnchors: ca.Anchors(),
	})
	defer mallory.Close()
	if _, err := mallory.Add("/apps/evil", ids.Derive("evil")); err == nil {
		t.Fatal("user add must be rejected")
	}
	if _, err := mallory.Remove("/apps/ok"); err == nil {
		t.Fatal("user remove must be rejected")
	}

	// Resolution needs no credentials at all: reads go through plain DNS.
	if _, _, err := w.service.Resolve("/apps/ok"); err != nil {
		t.Fatalf("anonymous resolve: %v", err)
	}
}

func TestAuthoritySnapshotRestoreAndResync(t *testing.T) {
	w := newGNSWorld(t, 1, nil, nil)
	names := []string{"/apps/a", "/apps/b", "/os/c"}
	for _, n := range names {
		if _, err := w.client.Add(n, ids.Derive(n)); err != nil {
			t.Fatal(err)
		}
	}
	snap := w.authority.Snapshot()

	// A replacement authority restores the table and can re-push the
	// whole zone to a fresh name server.
	w.authority.Close()
	net := w.net
	secret := []byte("na-secret")
	restored, err := StartAuthority(net, AuthorityConfig{
		Zone: testZone, Site: "na", Addr: "na:gns-authority2",
		Servers: []string{"ns1:dns", "ns2:dns"},
		TSIGKey: "na-key", TSIGSecret: secret,
		Now: func() int64 { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got := restored.Names()
	if len(got) != len(names) {
		t.Fatalf("restored names = %v", got)
	}

	// Wipe one server's zone, then resync.
	fresh := dns.NewZone(testZone)
	fresh.AllowUpdate("na-key", secret)
	w.servers[0].AddZone(fresh)
	if err := restored.ResyncZone(); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Dump()) == 0 {
		t.Fatal("resync must repopulate the zone")
	}
	w.resolver.FlushCache()
	if _, _, err := w.service.Resolve("/apps/a"); err != nil {
		t.Fatalf("resolve after resync: %v", err)
	}
}

func TestRestoreRejectsWrongZone(t *testing.T) {
	w := newGNSWorld(t, 1, nil, nil)
	other, err := StartAuthority(w.net, AuthorityConfig{
		Zone: "other.zone", Site: "na", Addr: "na:gns-other",
		Servers: []string{"ns1:dns"},
		TSIGKey: "k", TSIGSecret: []byte("s"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Restore(w.authority.Snapshot()); err == nil {
		t.Fatal("cross-zone restore must fail")
	}
}

func TestErrNotFoundPlumbing(t *testing.T) {
	w := newGNSWorld(t, 1, nil, nil)
	_, _, err := w.service.Resolve("/apps/ghost")
	if err == nil {
		t.Fatal("expected error")
	}
	// The DNS layer answers NXDOMAIN; the service surfaces an error the
	// caller can branch on without string matching.
	var isNX bool
	if strings.Contains(err.Error(), "NXDOMAIN") || errors.Is(err, ErrNotFound) {
		isNX = true
	}
	if !isNX {
		t.Fatalf("unexpected error shape: %v", err)
	}
}

package workload

import (
	"math"
	"testing"
)

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.0, 42)
	counts := make([]int, 100)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate; the head must hold most of the mass.
	if counts[0] < counts[10] {
		t.Fatalf("rank 0 (%d) not hotter than rank 10 (%d)", counts[0], counts[10])
	}
	head := 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	if frac := float64(head) / draws; frac < 0.4 {
		t.Fatalf("top-10 share = %.2f, want Zipf-like head", frac)
	}
	// Expected rank-0 share for s=1, n=100 is 1/H(100) ≈ 0.19.
	want := 1 / harmonic(100)
	got := float64(counts[0]) / draws
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("rank-0 share = %.3f, want ≈ %.3f", got, want)
	}
}

func harmonic(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

func TestZipfDeterministic(t *testing.T) {
	a, b := NewZipf(50, 0.8, 7), NewZipf(50, 0.8, 7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must yield the same stream")
		}
	}
}

func TestDepartmentalTraceShape(t *testing.T) {
	tr := DepartmentalTrace(TraceConfig{
		Docs: 200, Events: 10000,
		Sites: []string{"a", "b", "c"},
		Seed:  1,
	})
	counts := tr.ClassCounts()
	if counts[ColdStatic] < counts[WarmStatic] || counts[WarmStatic] < counts[HotStatic] {
		t.Fatalf("class pyramid inverted: %v", counts)
	}
	if counts[HotUpdated] == 0 {
		t.Fatal("need some hot-updated documents")
	}

	// Updates must exist but be a small minority, and only on classes
	// that update.
	writes := 0
	for _, e := range tr.Events {
		if e.Write {
			writes++
			if f := tr.Docs[e.Doc].WriteFraction; f == 0 {
				t.Fatalf("write event on non-updating doc %d", e.Doc)
			}
		}
	}
	frac := float64(writes) / float64(len(tr.Events))
	if frac == 0 || frac > 0.2 {
		t.Fatalf("write fraction = %.3f, want small but nonzero", frac)
	}

	// Hot documents must receive far more events than cold ones.
	perDoc := make([]int, len(tr.Docs))
	for _, e := range tr.Events {
		perDoc[e.Doc]++
	}
	if perDoc[0] <= perDoc[len(perDoc)-1] {
		t.Fatal("popularity skew missing")
	}
}

func TestTraceDeterministic(t *testing.T) {
	cfg := TraceConfig{Docs: 50, Events: 500, Sites: []string{"x", "y"}, Seed: 3}
	a, b := DepartmentalTrace(cfg), DepartmentalTrace(cfg)
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("same config must yield the same trace")
		}
	}
}

func TestReadWriteMix(t *testing.T) {
	events := ReadWriteMix(1000, 0.3, []string{"s1", "s2"}, 9)
	writes := 0
	for _, e := range events {
		if e.Write {
			writes++
		}
	}
	if frac := float64(writes) / 1000; math.Abs(frac-0.3) > 0.05 {
		t.Fatalf("write fraction = %.2f, want ≈ 0.30", frac)
	}
}

// Package workload generates the synthetic workloads the experiments
// replay: Zipf-popular package retrievals with geographic client
// spread, and the departmental-web-trace style document populations
// behind the differentiated-replication study the paper cites (§3.1,
// [Pierre et al. 1999]). Real traces from the Vrije Universiteit are
// not available, so these generators are calibrated to the qualitative
// properties the paper describes: most documents cold, a few hot;
// updates rare overall but concentrated on a small set of documents
// (see DESIGN.md §2).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipf draws item indexes with a Zipf(s) popularity distribution over n
// items: index 0 is the most popular. Deterministic for a given seed.
type Zipf struct {
	rnd *rand.Rand
	cdf []float64
}

// NewZipf builds a generator over n items with exponent s (s > 0; web
// popularity is classically s ≈ 0.8-1.0).
func NewZipf(n int, s float64, seed int64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf needs n > 0")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{rnd: rand.New(rand.NewSource(seed)), cdf: cdf}
}

// Next draws one item index.
func (z *Zipf) Next() int {
	u := z.rnd.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// DocClass partitions a document population the way the paper's
// departmental trace splits: by popularity and change rate.
type DocClass int

// Document classes.
const (
	// ColdStatic documents are rarely read and never updated — the long
	// tail of any web site or software archive.
	ColdStatic DocClass = iota
	// WarmStatic documents see steady reads and no updates.
	WarmStatic
	// HotStatic documents are very popular and effectively immutable
	// (released software).
	HotStatic
	// HotUpdated documents are both popular and frequently changed
	// (nightly builds, news pages) — the class that breaks any single
	// global replication policy.
	HotUpdated
)

// String returns the class name used in experiment tables.
func (c DocClass) String() string {
	switch c {
	case ColdStatic:
		return "cold-static"
	case WarmStatic:
		return "warm-static"
	case HotStatic:
		return "hot-static"
	case HotUpdated:
		return "hot-updated"
	default:
		return fmt.Sprintf("DocClass(%d)", int(c))
	}
}

// Doc is one document (package) in a trace.
type Doc struct {
	// ID indexes the document; 0 is the most popular.
	ID int
	// Name is the document's GDN object name.
	Name string
	// Size is the content size in bytes.
	Size int
	// Class is the popularity/update profile.
	Class DocClass
	// WriteFraction is the fraction of this document's events that are
	// updates.
	WriteFraction float64
}

// Event is one trace record: a read or write of a document by a client
// at a site.
type Event struct {
	// Doc indexes into the trace's document list.
	Doc int
	// Site is the client's site.
	Site string
	// Write marks an update (performed by a moderator near the origin).
	Write bool
}

// TraceConfig parameterizes DepartmentalTrace.
type TraceConfig struct {
	// Docs is the number of documents (default 100).
	Docs int
	// Events is the number of trace records (default 5000).
	Events int
	// Sites are the client sites, weighted uniformly.
	Sites []string
	// ZipfExponent shapes popularity (default 0.9).
	ZipfExponent float64
	// DocSize is the base document size in bytes (default 10 KiB);
	// actual sizes spread ×1 to ×8 deterministically.
	DocSize int
	// Seed makes the trace reproducible.
	Seed int64
}

// Trace is a generated workload.
type Trace struct {
	Docs   []Doc
	Events []Event
}

// ClassCounts tallies documents per class.
func (t *Trace) ClassCounts() map[DocClass]int {
	out := make(map[DocClass]int)
	for _, d := range t.Docs {
		out[d.Class]++
	}
	return out
}

// classify assigns classes by popularity rank: the top 2% of documents
// that also update form HotUpdated, the next hot ones HotStatic, then
// warm, and the bulk cold — the shape of the departmental trace.
func classify(rank, n int) DocClass {
	switch {
	case rank < max(1, n/50): // top 2%
		return HotUpdated
	case rank < max(2, n/10): // next 8%
		return HotStatic
	case rank < n/3:
		return WarmStatic
	default:
		return ColdStatic
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// writeFraction returns the update share of a class's events.
func writeFraction(c DocClass) float64 {
	switch c {
	case HotUpdated:
		return 0.2
	case WarmStatic:
		return 0.01
	default:
		return 0
	}
}

// DepartmentalTrace generates a document population and event stream
// with the departmental-web-server shape.
func DepartmentalTrace(cfg TraceConfig) *Trace {
	if cfg.Docs <= 0 {
		cfg.Docs = 100
	}
	if cfg.Events <= 0 {
		cfg.Events = 5000
	}
	if cfg.ZipfExponent <= 0 {
		cfg.ZipfExponent = 0.9
	}
	if cfg.DocSize <= 0 {
		cfg.DocSize = 10 << 10
	}
	if len(cfg.Sites) == 0 {
		panic("workload: trace needs client sites")
	}

	rnd := rand.New(rand.NewSource(cfg.Seed))
	docs := make([]Doc, cfg.Docs)
	for i := range docs {
		class := classify(i, cfg.Docs)
		docs[i] = Doc{
			ID:            i,
			Name:          fmt.Sprintf("/docs/doc%04d", i),
			Size:          cfg.DocSize * (1 + i%8),
			Class:         class,
			WriteFraction: writeFraction(class),
		}
	}

	zipf := NewZipf(cfg.Docs, cfg.ZipfExponent, cfg.Seed+1)
	events := make([]Event, cfg.Events)
	for i := range events {
		doc := zipf.Next()
		write := rnd.Float64() < docs[doc].WriteFraction
		events[i] = Event{
			Doc:   doc,
			Site:  cfg.Sites[rnd.Intn(len(cfg.Sites))],
			Write: write,
		}
	}
	return &Trace{Docs: docs, Events: events}
}

// ReadWriteMix generates a simple event stream over one document with
// the given write fraction; the protocol-comparison experiment uses it.
func ReadWriteMix(events int, writeFraction float64, sites []string, seed int64) []Event {
	rnd := rand.New(rand.NewSource(seed))
	out := make([]Event, events)
	for i := range out {
		out[i] = Event{
			Doc:   0,
			Site:  sites[rnd.Intn(len(sites))],
			Write: rnd.Float64() < writeFraction,
		}
	}
	return out
}

// PackageSizes returns the download-size sweep the end-to-end
// experiment uses, spanning the paper's "can be very large" range
// while staying inside one protocol message.
func PackageSizes() []int {
	return []int{100 << 10, 1 << 20, 10 << 20}
}

// Package ids implements Globe object identifiers (OIDs).
//
// Every distributed shared object (DSO) in Globe is identified by a
// worldwide-unique, location-independent object identifier that never
// changes during the lifetime of the object (paper §3.4). An OID is an
// opaque 160-bit string; this package provides generation, parsing,
// comparison and the hashing used by the Globe Location Service to
// partition directory nodes into subnodes (paper §3.5).
package ids

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// Size is the length of an object identifier in bytes (160 bits).
const Size = 20

// OID is a worldwide-unique, location-independent object identifier.
// The zero value is the nil OID, which identifies no object.
type OID [Size]byte

// Nil is the zero object identifier. It is never assigned to an object.
var Nil OID

// ErrBadOID is returned when parsing malformed textual identifiers.
var ErrBadOID = errors.New("ids: malformed object identifier")

// New returns a fresh random object identifier. Identifiers are drawn
// from crypto/rand so independently operated location-service nodes can
// allocate them without coordination, as the paper's GLS does during
// contact-address registration.
func New() OID {
	var o OID
	if _, err := rand.Read(o[:]); err != nil {
		// crypto/rand never fails on supported platforms; an error here
		// means the environment is unusable for identifier allocation.
		panic("ids: crypto/rand unavailable: " + err.Error())
	}
	return o
}

// Derive returns the deterministic identifier for the given seed. It is
// used by tests and simulations that need reproducible object handles.
func Derive(seed string) OID {
	sum := sha256.Sum256([]byte(seed))
	var o OID
	copy(o[:], sum[:Size])
	return o
}

// IsNil reports whether o is the nil identifier.
func (o OID) IsNil() bool { return o == Nil }

// String returns the canonical textual form: 40 lowercase hex digits.
func (o OID) String() string { return hex.EncodeToString(o[:]) }

// Short returns an abbreviated form for logs.
func (o OID) Short() string { return hex.EncodeToString(o[:4]) }

// Parse decodes the canonical textual form produced by String.
func Parse(s string) (OID, error) {
	var o OID
	if len(s) != Size*2 {
		return Nil, fmt.Errorf("%w: want %d hex digits, got %d", ErrBadOID, Size*2, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return Nil, fmt.Errorf("%w: %v", ErrBadOID, err)
	}
	copy(o[:], b)
	return o, nil
}

// MustParse is Parse for tests and static configuration; it panics on error.
func MustParse(s string) OID {
	o, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return o
}

// Bytes returns the identifier as a fresh byte slice.
func (o OID) Bytes() []byte {
	b := make([]byte, Size)
	copy(b, o[:])
	return b
}

// FromBytes builds an identifier from exactly Size bytes.
func FromBytes(b []byte) (OID, error) {
	var o OID
	if len(b) != Size {
		return Nil, fmt.Errorf("%w: want %d bytes, got %d", ErrBadOID, Size, len(b))
	}
	copy(o[:], b)
	return o, nil
}

// Subnode returns the index, in [0, n), of the location-service subnode
// responsible for this identifier when a directory node is partitioned
// into n subnodes (paper §3.5). The partition function must be stable
// across nodes, so it hashes the identifier rather than sampling it.
func (o OID) Subnode(n int) int {
	if n <= 1 {
		return 0
	}
	sum := sha256.Sum256(o[:])
	v := binary.BigEndian.Uint64(sum[:8])
	return int(v % uint64(n))
}

// Compare orders identifiers lexicographically; it returns -1, 0 or 1.
func Compare(a, b OID) int {
	for i := 0; i < Size; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

package ids

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewIsUnique(t *testing.T) {
	seen := make(map[OID]bool)
	for i := 0; i < 1000; i++ {
		o := New()
		if o.IsNil() {
			t.Fatal("New returned the nil OID")
		}
		if seen[o] {
			t.Fatalf("duplicate OID after %d draws: %s", i, o)
		}
		seen[o] = true
	}
}

func TestParseRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		o := New()
		got, err := Parse(o.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", o.String(), err)
		}
		if got != o {
			t.Fatalf("round trip changed OID: %s != %s", got, o)
		}
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"abc",
		strings.Repeat("g", 40),        // not hex
		strings.Repeat("a", 39),        // too short
		strings.Repeat("a", 41),        // too long
		strings.Repeat("A", 38) + "zz", // bad tail
		"0x" + strings.Repeat("a", 38), // prefix junk
		strings.Repeat("a", 20) + " " + strings.Repeat("a", 19),
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a := Derive("package:/apps/graphics/Gimp")
	b := Derive("package:/apps/graphics/Gimp")
	c := Derive("package:/apps/graphics/gimp")
	if a != b {
		t.Fatal("Derive not deterministic")
	}
	if a == c {
		t.Fatal("Derive collided on distinct seeds")
	}
}

func TestStringForm(t *testing.T) {
	o := Derive("x")
	s := o.String()
	if len(s) != 40 {
		t.Fatalf("String length = %d, want 40", len(s))
	}
	if strings.ToLower(s) != s {
		t.Fatalf("String not lowercase: %q", s)
	}
	if len(o.Short()) != 8 {
		t.Fatalf("Short length = %d, want 8", len(o.Short()))
	}
}

func TestBytesRoundTrip(t *testing.T) {
	o := New()
	b := o.Bytes()
	got, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != o {
		t.Fatal("FromBytes(Bytes()) changed OID")
	}
	// Bytes must be a copy, not an alias.
	b[0] ^= 0xff
	if got != o {
		t.Fatal("mutating Bytes() result affected the OID")
	}
}

func TestFromBytesRejectsWrongLength(t *testing.T) {
	for _, n := range []int{0, 1, 19, 21, 40} {
		if _, err := FromBytes(make([]byte, n)); err == nil {
			t.Errorf("FromBytes(len %d) succeeded, want error", n)
		}
	}
}

func TestSubnodeInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		for i := 0; i < 200; i++ {
			o := New()
			s := o.Subnode(n)
			if s < 0 || s >= n {
				t.Fatalf("Subnode(%d) = %d out of range", n, s)
			}
		}
	}
}

func TestSubnodeStable(t *testing.T) {
	o := Derive("stable")
	first := o.Subnode(8)
	for i := 0; i < 10; i++ {
		if o.Subnode(8) != first {
			t.Fatal("Subnode not stable for same OID")
		}
	}
}

func TestSubnodeZeroAndNegative(t *testing.T) {
	o := New()
	if o.Subnode(0) != 0 || o.Subnode(-3) != 0 {
		t.Fatal("Subnode with n<=1 must return 0")
	}
}

func TestSubnodeBalance(t *testing.T) {
	// The partition must spread load: with 4 subnodes and 4000 OIDs each
	// bucket should get roughly 1000; allow generous slack.
	const n, draws = 4, 4000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[New().Subnode(n)]++
	}
	for b, c := range counts {
		if c < draws/n/2 || c > draws/n*2 {
			t.Fatalf("subnode %d has %d of %d OIDs: partition badly unbalanced", b, c, draws)
		}
	}
}

func TestCompare(t *testing.T) {
	a := OID{}
	b := OID{}
	b[Size-1] = 1
	if Compare(a, a) != 0 {
		t.Fatal("Compare(a,a) != 0")
	}
	if Compare(a, b) != -1 {
		t.Fatal("Compare(a,b) != -1")
	}
	if Compare(b, a) != 1 {
		t.Fatal("Compare(b,a) != 1")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(x, y [Size]byte) bool {
		a, b := OID(x), OID(y)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseStringInverseProperty(t *testing.T) {
	f := func(x [Size]byte) bool {
		o := OID(x)
		got, err := Parse(o.String())
		return err == nil && got == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse("nope")
}

package rpc

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gdn/internal/obs"
	"gdn/internal/transport"
	"gdn/internal/wire"
)

// Upload streams: the client-to-server mirror of the response stream
// shape, so a bulk transfer INTO a server (a moderator deploying a
// package's chunks) flows as a sequence of bounded frames instead of
// unary batches, with the same properties the download path already
// has — peak buffering O(frame), per-stream flow control, and a slow
// consumer stalling only its own stream.
//
// Wire shape. The client opens an upload with a reserved-op request
// frame (opUploadOpen) whose body wraps the real operation code and a
// header body; the server dispatches it to the op's handler like any
// request, with an UploadReader attached to the Call. Data travels as
// further request frames under the same request ID (opUploadData, the
// body is the payload), terminated by one opUploadEnd frame. The
// handler's return value answers the call as an ordinary unary
// response — the upload's trailer, in the opposite direction of the
// download stream's.
//
// Flow control. The client may have streamWindow data frames
// outstanding; the server grants more as the handler consumes them,
// with a statusCredit response frame carrying the consumed count. A
// handler that stops reading therefore stalls its own uploader — not
// the connection — and per-upload buffering is bounded by the window.
// Either side can abandon the transfer: the client with the shared
// opStreamCancel frame, the server by returning from the handler
// early (the response completes the call and fails further Sends).

// Reserved upload operation codes; see stream.go for the registry.
const (
	opUploadOpen uint16 = 0xFFFD
	opUploadData uint16 = 0xFFFC
	opUploadEnd  uint16 = 0xFFFB
)

// maxConnUploads bounds concurrently open upload calls per connection.
// An upload handler parks its worker in Recv awaiting data frames that
// only the connection's read loop can deliver; together with
// maxConnStreams (half the worker pool) this cap keeps a quarter of
// the pool free, so the read loop always has a worker to hand the next
// request to and can keep draining the frames that unpark the rest.
const maxConnUploads = maxConnRequests / 4

// ErrTooManyUploads rejects opening an upload beyond the
// per-connection cap; it reaches the caller as a remote error.
var ErrTooManyUploads = errors.New("rpc: too many concurrent uploads on this connection")

// errUploadFinished fails Send after the server already answered the
// call — the handler stopped reading, deliberately or with an error;
// CloseAndRecv returns the authoritative result.
var errUploadFinished = errors.New("rpc: server closed the upload; result available")

// encodeUploadOpen wraps an operation and its header body into an
// opUploadOpen envelope.
func encodeUploadOpen(op uint16, header []byte) []byte {
	w := wire.NewWriter(8 + len(header))
	w.Uint16(op)
	w.Bytes32(header)
	return w.Bytes()
}

// decodeUploadOpen reverses encodeUploadOpen. The header aliases body.
func decodeUploadOpen(body []byte) (op uint16, header []byte, err error) {
	r := wire.NewReader(body)
	op = r.Uint16()
	header = r.Bytes32()
	if err := r.Done(); err != nil {
		return 0, nil, err
	}
	return op, header, nil
}

// encodeCreditFrame builds a statusCredit response frame granting n
// more data frames for one upload.
func encodeCreditFrame(id uint64, n uint32) *wire.Writer {
	ack := encodeAckBody(n)
	w := wire.GetWriter(28)
	w.Uint64(id)
	w.Uint8(statusCredit)
	w.Str("")
	w.Int64(0)
	w.Bytes32(ack[:])
	return w
}

// --- server side ------------------------------------------------------

// uploadEvent is one delivery from the connection read loop to an
// upload handler: a data frame, the end marker, or a failure.
type uploadEvent struct {
	data  []byte // payload (aliases frame)
	frame []byte // backing receive buffer, recycled after consumption
	cost  time.Duration
	final bool
	err   error
}

// uploadTable tracks the open upload readers of one server connection.
type uploadTable struct {
	sender *connSender

	// n mirrors len(m) so the per-request cleanup probe on the unary
	// hot path is one atomic load, not a mutex acquisition.
	n atomic.Int32

	mu     sync.Mutex
	m      map[uint64]*UploadReader
	closed bool
}

func newUploadTable(sender *connSender) *uploadTable {
	return &uploadTable{sender: sender, m: make(map[uint64]*UploadReader)}
}

// open registers an upload for one request ID.
func (t *uploadTable) open(id uint64) (*UploadReader, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, transport.ErrClosed
	}
	if len(t.m) >= maxConnUploads {
		return nil, ErrTooManyUploads
	}
	ur := &UploadReader{
		table:  t,
		id:     id,
		events: make(chan uploadEvent, streamWindow+2),
	}
	t.m[id] = ur
	t.n.Store(int32(len(t.m)))
	return ur, nil
}

// deliver routes one event to an upload's reader. The channel send
// happens under the table lock, so once take has removed the reader no
// further events can race its drain. It reports false when the event
// had a reader but its buffer was full — a peer overrunning the
// flow-control window. Events for unknown IDs (the handler already
// finished) are dropped with ok=true; the caller recycles the frame.
func (t *uploadTable) deliver(id uint64, ev uploadEvent) (accepted, overrun bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ur := t.m[id]
	if ur == nil {
		return false, false
	}
	select {
	case ur.events <- ev:
		return true, false
	default:
		return false, true
	}
}

// take removes an upload when its handler completes, returning it (nil
// if the call was not an upload).
func (t *uploadTable) take(id uint64) *UploadReader {
	if t.n.Load() == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ur := t.m[id]
	delete(t.m, id)
	t.n.Store(int32(len(t.m)))
	return ur
}

// cancel aborts an upload on the client's request.
func (t *uploadTable) cancel(id uint64) {
	t.mu.Lock()
	ur := t.m[id]
	t.mu.Unlock()
	if ur != nil {
		ur.abort(ErrStreamCanceled)
	}
}

// closeAll aborts every upload when the connection dies, so no handler
// stays parked waiting for data frames that can never arrive.
func (t *uploadTable) closeAll(err error) {
	t.mu.Lock()
	t.closed = true
	readers := make([]*UploadReader, 0, len(t.m))
	for _, ur := range t.m {
		readers = append(readers, ur)
	}
	t.m = make(map[uint64]*UploadReader)
	t.n.Store(0)
	t.mu.Unlock()
	for _, ur := range readers {
		ur.abort(err)
	}
}

// UploadReader is the server half of an upload: the handler receives
// the client's data frames through it, then returns normally; the
// return value answers the call. Exactly one goroutine (the handler)
// may call Recv.
type UploadReader struct {
	table  *uploadTable
	id     uint64
	events chan uploadEvent

	aborted atomic.Bool // one abort event is ever delivered

	// Handler-goroutine state; no lock needed.
	consumed int
	cost     time.Duration
	prev     []byte
	done     bool
}

// Recv returns the next data frame's payload. It returns io.EOF once
// the client finished the upload. The returned slice is valid only
// until the next Recv call — the buffer is recycled. Consuming frames
// grants the client more flow-control credit.
func (u *UploadReader) Recv() ([]byte, error) {
	if u.prev != nil {
		transport.PutFrame(u.prev)
		u.prev = nil
	}
	if u.done {
		return nil, io.EOF
	}
	ev := <-u.events
	u.cost += ev.cost
	if ev.err != nil {
		u.done = true
		return nil, ev.err
	}
	if ev.final {
		u.done = true
		return nil, io.EOF
	}
	u.consumed++
	if u.consumed >= streamWindow/2 {
		u.table.sender.enqueue(encodeCreditFrame(u.id, uint32(u.consumed)))
		u.consumed = 0
	}
	u.prev = ev.frame
	return ev.data, nil
}

// abort fails the upload; Recv returns err from then on. The event
// channel's capacity covers the window plus the end marker plus this
// one failure event, so the non-blocking send cannot drop it unless
// the peer overran its window (which condemns the connection anyway).
func (u *UploadReader) abort(err error) {
	if u.aborted.Swap(true) {
		return
	}
	select {
	case u.events <- uploadEvent{err: err}:
	default:
	}
}

// drain recycles buffered frames after the handler finished without
// consuming the whole upload, and returns the cost of everything the
// handler never saw so the response still accounts the full call tree.
func (u *UploadReader) drain() time.Duration {
	if u.prev != nil {
		transport.PutFrame(u.prev)
		u.prev = nil
	}
	cost := u.cost
	u.cost = 0
	for {
		select {
		case ev := <-u.events:
			cost += ev.cost
			if ev.frame != nil {
				transport.PutFrame(ev.frame)
			}
		default:
			return cost
		}
	}
}

// --- client side ------------------------------------------------------

// UploadStream is the client half of an upload call. Exactly one
// goroutine may drive it: Send any number of times, then CloseAndRecv
// (or Cancel).
type UploadStream struct {
	mc *muxConn
	id uint64
	pc *pendingCall

	mu      sync.Mutex
	cond    *sync.Cond
	credits int
	err     error
	ended   bool
}

// Send transmits one data frame, blocking while the flow-control
// window is exhausted. It fails once the server answered the call, the
// upload was canceled, or the connection died; CloseAndRecv then
// returns the authoritative result.
func (u *UploadStream) Send(p []byte) error {
	u.mu.Lock()
	for u.credits == 0 && u.err == nil {
		u.cond.Wait()
	}
	if u.err != nil {
		err := u.err
		u.mu.Unlock()
		return err
	}
	u.credits--
	u.mu.Unlock()

	w := encodeRequest(u.id, opUploadData, p, obs.SpanContext{})
	if err := w.Err(); err != nil {
		w.Free()
		return err
	}
	u.mc.sender.enqueue(w)
	return nil
}

// addCredit grants more data frames; the demux goroutine calls it for
// each statusCredit frame.
func (u *UploadStream) addCredit(n uint32) {
	u.mu.Lock()
	u.credits += int(n)
	u.mu.Unlock()
	u.cond.Broadcast()
}

// abort fails future Sends and wakes a blocked one.
func (u *UploadStream) abort(err error) {
	u.mu.Lock()
	if u.err == nil {
		u.err = err
	}
	u.mu.Unlock()
	u.cond.Broadcast()
}

// finish records the server's answer: it unblocks Send with a
// sentinel and completes the pending call for CloseAndRecv.
func (u *UploadStream) finish(r callResult) {
	if r.err != nil {
		u.abort(r.err)
	} else {
		u.abort(errUploadFinished)
	}
	u.pc.done <- r
}

// CloseAndRecv marks the upload complete and waits for the server's
// response — the handler's return value, exactly as a unary call
// would deliver it.
func (u *UploadStream) CloseAndRecv() ([]byte, time.Duration, error) {
	u.mu.Lock()
	alreadyEnded, failed := u.ended, u.err != nil
	u.ended = true
	u.mu.Unlock()
	if !alreadyEnded && !failed {
		w := encodeRequest(u.id, opUploadEnd, nil, obs.SpanContext{})
		u.mc.sender.enqueue(w)
	}
	r := <-u.pc.done
	return r.resp, r.cost, r.err
}

// Cancel abandons the upload: the pending call is withdrawn, the
// server's handler is told to stop reading, and a later CloseAndRecv
// reports the cancellation. Canceling a completed call is a no-op.
func (u *UploadStream) Cancel() {
	u.mu.Lock()
	if u.ended {
		u.mu.Unlock()
		return
	}
	u.ended = true
	u.mu.Unlock()

	if u.mc.withdraw(u.id) {
		u.abort(ErrStreamCanceled)
		u.mc.sendCancelFrame(u.id)
		u.pc.done <- callResult{err: ErrStreamCanceled}
	}
}

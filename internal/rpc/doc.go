// Package rpc implements the request/response protocol every Globe
// service in this repository speaks: location-service directory nodes,
// object servers, replication peers and naming authorities.
//
// Messages are opaque bodies tagged with an operation code, matching the
// paper's model of subobjects that exchange "opaque invocation messages"
// (§3.3). The one Globe-specific feature is virtual cost propagation:
// a server accumulates the simulated network cost of the nested calls it
// makes on behalf of a request and reports it in the response, so a
// client's Call returns the cost of the entire dependent call tree. This
// is how experiments measure, for example, that a location-service
// lookup costs time proportional to the distance between client and
// nearest replica (paper §3.5) without any real sleeping.
//
// # Multiplexed framing
//
// Calls are multiplexed: one shared connection per remote carries many
// in-flight requests, identified by a per-connection 64-bit request ID.
// The frame layouts are
//
//	request:  id uint64 | op uint16 | body bytes32
//	response: id uint64 | status uint8 | errmsg str16 | cost int64 | body bytes32
//
// all encoded with package wire. A client sends requests from any number
// of goroutines; a single demux goroutine per connection receives
// responses and routes each to the waiting caller recorded in the
// pending-call table. The table is striped (request IDs are sequential,
// so id mod stripes balances perfectly); call timeouts are deadlines on
// the stripes, swept by one timer per stripe armed for its earliest
// deadline — not a goroutine plus timer per call. The server reads
// requests in one loop and dispatches each to its own (bounded) handler
// goroutine, so slow requests do not head-of-line block pipelined ones
// and responses may complete out of order; the request ID pairs them
// back up. Virtual frame costs ride the same tables: the cost of each
// request frame is charged to that request's response, and the response
// frame's own cost is added by the demux goroutine before the caller is
// woken.
//
// # Credit window
//
// Streaming responses (and uploads, symmetrically) are flow controlled
// by credits, never by trusting TCP backpressure: a stream may send
// streamWindow data frames before it must park waiting for the receiver
// to acknowledge consumption with a credit frame (opStreamAck). The
// invariant is that at most streamWindow frames are in flight per
// stream, so a slow consumer bounds the memory a fast producer can pin
// at one window — on a connection shared by many calls, one stalled
// download cannot balloon the process or starve unrelated requests.
// Cancellation (opStreamCancel) and call timeout release a parked
// producer; a receiver that overruns its advertised window condemns the
// connection, because a peer that ignores flow control is broken.
//
// # Buffer ownership on the send path
//
// StreamWriter.Send copies: the caller keeps its buffer, the stream
// takes a private copy, and nothing needs coordinating. The zero-copy
// variants make ownership explicit instead:
//
//   - SendOwned(p, release) transfers ownership of p to the stream. The
//     bytes travel header-and-body as separate parts down to a vectored
//     transport write (writev on TCP; a single assemble on transports
//     that cannot vector), and release fires exactly once, at write
//     completion — or on any failure path that means the write will
//     never happen (connection death, credit abort, encode error).
//     Callers hand the released buffer back to its pool there, so one
//     chunk buffer flows store→rpc→wire with no intermediate copy.
//   - SendFile(f, n, release) transfers an open file's next n bytes.
//     TCP transports splice them (sendfile(2)) so the payload never
//     enters user space; others fall back to one pooled read. release
//     closes the file under the same exactly-once contract.
//
// The sender's queue honours the same contract for every frame it ever
// held: on connection failure each queued frame's release fires as the
// queue drains. Nothing in the protocol distinguishes the paths — a
// copied, owned, or spliced frame is byte-identical on the wire.
package rpc

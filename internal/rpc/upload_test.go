package rpc

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"gdn/internal/netsim"
	"gdn/internal/transport"
)

// uploadSummer returns a handler that consumes an upload, hashing the
// frames it receives, and answers with "<frames> <hexdigest>".
func uploadSummer() Handler {
	return func(c *Call) ([]byte, error) {
		ur := c.Upload()
		if ur == nil {
			return nil, errors.New("not an upload call")
		}
		h := sha256.New()
		frames := 0
		for {
			p, err := ur.Recv()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return nil, err
			}
			h.Write(p)
			frames++
		}
		return []byte(fmt.Sprintf("%d %x", frames, h.Sum(nil))), nil
	}
}

func TestUploadDeliversFramesInOrder(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:up", uploadSummer())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:up")
	defer cl.Close()

	const frames, size = 100, 8 << 10
	us, err := cl.CallUpload(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	buf := make([]byte, size)
	for i := 0; i < frames; i++ {
		for j := range buf {
			buf[j] = byte(i)
		}
		h.Write(buf)
		if err := us.Send(buf); err != nil {
			t.Fatalf("send frame %d: %v", i, err)
		}
	}
	resp, _, err := us.CloseAndRecv()
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%d %x", frames, h.Sum(nil))
	if string(resp) != want {
		t.Fatalf("server summed %q, want %q", resp, want)
	}
}

func TestUploadHeaderReachesHandler(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:hdr", func(c *Call) ([]byte, error) {
		if c.Upload() == nil {
			return nil, errors.New("no upload attached")
		}
		for {
			if _, err := c.Upload().Recv(); err != nil {
				break
			}
		}
		return []byte(fmt.Sprintf("op=%d header=%s", c.Op, c.Body)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:hdr")
	defer cl.Close()

	us, err := cl.CallUpload(42, []byte("manifest"))
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := us.CloseAndRecv()
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "op=42 header=manifest" {
		t.Fatalf("handler saw %q", resp)
	}
}

func TestUploadFlowControlBoundsOutstanding(t *testing.T) {
	n := simNet(t)
	release := make(chan struct{})
	srv, err := Serve(n, "server:fc", func(c *Call) ([]byte, error) {
		<-release // park before consuming anything
		for {
			_, err := c.Upload().Recv()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return nil, err
			}
		}
		return []byte("done"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:fc")
	defer cl.Close()

	us, err := cl.CallUpload(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The window admits exactly streamWindow frames while the handler
	// is parked; the next Send must block.
	for i := 0; i < streamWindow; i++ {
		if err := us.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("send %d within window: %v", i, err)
		}
	}
	blocked := make(chan error, 1)
	go func() {
		blocked <- us.Send([]byte{0xFF})
	}()
	select {
	case err := <-blocked:
		t.Fatalf("send beyond the window returned early (%v); flow control is not applying", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release) // handler consumes; credit flows; the send completes
	if err := <-blocked; err != nil {
		t.Fatalf("send after credit: %v", err)
	}
	resp, _, err := us.CloseAndRecv()
	if err != nil || string(resp) != "done" {
		t.Fatalf("CloseAndRecv = %q, %v", resp, err)
	}
}

func TestUploadServerEarlyAnswerUnblocksSender(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:early", func(c *Call) ([]byte, error) {
		// Read one frame, then reject the rest.
		if _, err := c.Upload().Recv(); err != nil {
			return nil, err
		}
		return nil, errors.New("quota exceeded")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:early")
	defer cl.Close()

	us, err := cl.CallUpload(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Keep sending until the server's answer fails the stream; the
	// window guarantees this cannot loop forever.
	var sendErr error
	for i := 0; i < 10*streamWindow; i++ {
		if sendErr = us.Send([]byte("x")); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatalf("sends kept succeeding after the server answered")
	}
	_, _, err = us.CloseAndRecv()
	if err == nil || !IsRemote(err) {
		t.Fatalf("CloseAndRecv = %v, want the handler's remote error", err)
	}
}

func TestUploadCancelUnblocksHandler(t *testing.T) {
	n := simNet(t)
	handlerErr := make(chan error, 1)
	srv, err := Serve(n, "server:cancel", func(c *Call) ([]byte, error) {
		for {
			_, err := c.Upload().Recv()
			if err != nil {
				handlerErr <- err
				return nil, err
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:cancel")
	defer cl.Close()

	us, err := cl.CallUpload(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := us.Send([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	us.Cancel()
	select {
	case err := <-handlerErr:
		if !errors.Is(err, ErrStreamCanceled) {
			t.Fatalf("handler unblocked with %v, want ErrStreamCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("handler still parked after cancel")
	}
	if _, _, err := us.CloseAndRecv(); !errors.Is(err, ErrStreamCanceled) {
		t.Fatalf("CloseAndRecv after cancel = %v", err)
	}
}

func TestUploadConnectionDeathFailsBothSides(t *testing.T) {
	n := simNet(t)
	started := make(chan struct{})
	handlerErr := make(chan error, 1)
	srv, err := Serve(n, "server:death", func(c *Call) ([]byte, error) {
		close(started)
		for {
			_, err := c.Upload().Recv()
			if err != nil {
				handlerErr <- err
				return nil, err
			}
		}
	}, WithServerLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(n, "client", "server:death")
	defer cl.Close()

	us, err := cl.CallUpload(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := us.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	<-started // the handler owns the upload before the connection dies
	srv.Close()
	if _, _, err := us.CloseAndRecv(); err == nil {
		t.Fatalf("CloseAndRecv survived the connection dying")
	}
	select {
	case err := <-handlerErr:
		if err == nil {
			t.Fatalf("handler Recv returned nil after connection death")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("handler still parked after connection death")
	}
}

func TestUploadInterleavesWithUnaryCalls(t *testing.T) {
	n := simNet(t)
	gate := make(chan struct{})
	srv, err := Serve(n, "server:mix", func(c *Call) ([]byte, error) {
		if ur := c.Upload(); ur != nil {
			<-gate // hold the upload open across the unary calls
			total := 0
			for {
				p, err := ur.Recv()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					return nil, err
				}
				total += len(p)
			}
			return []byte(fmt.Sprintf("upload %d", total)), nil
		}
		return append([]byte("unary "), c.Body...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:mix")
	defer cl.Close()

	us, err := cl.CallUpload(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := us.Send(bytes.Repeat([]byte("a"), 100)); err != nil {
		t.Fatal(err)
	}
	// Unary traffic keeps flowing on the same connection while the
	// upload is parked.
	for i := 0; i < 10; i++ {
		resp, _, err := cl.Call(9, []byte("ping"))
		if err != nil || string(resp) != "unary ping" {
			t.Fatalf("unary call during upload: %q, %v", resp, err)
		}
	}
	close(gate)
	resp, _, err := us.CloseAndRecv()
	if err != nil || string(resp) != "upload 100" {
		t.Fatalf("upload result = %q, %v", resp, err)
	}
}

func TestUploadReservedInnerOpRejected(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:resv", uploadSummer())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:resv")
	defer cl.Close()
	if _, err := cl.CallUpload(opStreamAck, nil); err == nil {
		t.Fatalf("reserved inner op accepted")
	}
}

func TestUploadOverTCP(t *testing.T) {
	var tcp transport.TCP
	srv, err := Serve(&tcp, "127.0.0.1:0", uploadSummer())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(&tcp, "client", srv.Addr())
	defer cl.Close()

	const frames, size = 64, 64 << 10
	us, err := cl.CallUpload(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	buf := make([]byte, size)
	for i := 0; i < frames; i++ {
		for j := range buf {
			buf[j] = byte(i * 31)
		}
		h.Write(buf)
		if err := us.Send(buf); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	resp, _, err := us.CloseAndRecv()
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%d %x", frames, h.Sum(nil))
	if string(resp) != want {
		t.Fatalf("TCP upload summed %q, want %q", resp, want)
	}
}

// TestUploadSweeperFailsWaitersOnWedgedConn covers the pending-table
// sweeper when the connection wedges mid-upload with credit frames in
// flight: the link silently eats every frame (loss 1.0), so the
// server's credit grants never arrive and senders parked on the
// flow-control window would otherwise wait forever. The sweeper must
// fail every waiter within roughly one sweep interval (the call's
// timeout), and no goroutine may leak.
func TestUploadSweeperFailsWaitersOnWedgedConn(t *testing.T) {
	base := runtime.NumGoroutine()

	n := simNet(t)
	gotFrame := make(chan struct{}, 64)
	srv, err := Serve(n, "server:wedge", func(c *Call) ([]byte, error) {
		for {
			if _, err := c.Upload().Recv(); err != nil {
				return nil, nil
			}
			gotFrame <- struct{}{}
		}
	}, WithServerLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}

	cl := NewClient(n, "client", "server:wedge")
	cl.Timeout = 200 * time.Millisecond
	us, err := cl.CallUpload(9, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Prove the connection live, then wedge the link.
	if err := us.Send([]byte("alive")); err != nil {
		t.Fatal(err)
	}
	<-gotFrame
	n.SetLinkFaults(netsim.WideArea, netsim.LinkFaults{Loss: 1})

	// Far more senders than the flow-control window: the first few
	// spend the remaining credit (their frames vanish silently — the
	// sender cannot know), the rest park waiting for credit that can
	// never arrive.
	const senders = 40
	start := time.Now()
	errs := make(chan error, senders)
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- us.Send(make([]byte, 1024))
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("senders still parked long after the sweep interval")
	}
	if elapsed := time.Since(start); elapsed > 10*cl.Timeout {
		t.Fatalf("waiters released after %v, want within ~one sweep interval (%v)", elapsed, cl.Timeout)
	}
	close(errs)
	var failed int
	for err := range errs {
		if err != nil {
			failed++
			if IsRemote(err) {
				t.Fatalf("wedged-conn failure surfaced as remote error: %v", err)
			}
		}
	}
	if failed == 0 {
		t.Fatal("no parked sender observed the sweeper's failure")
	}
	// The authoritative result reports the failure too, promptly.
	if _, _, err := us.CloseAndRecv(); err == nil {
		t.Fatal("CloseAndRecv survived a wedged connection")
	}

	n.ClearFaults()
	cl.Close()
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

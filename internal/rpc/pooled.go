package rpc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gdn/internal/transport"
)

// PooledClient is the pre-multiplexing client: each call checks one
// connection out of a pool and monopolizes it for the full round trip,
// with a goroutine and timer per call to enforce the timeout. It speaks
// the same framed protocol as Client and Server.
//
// It is retained as the baseline for the pooled-vs-mux comparison
// benchmarks (BenchmarkRPC_CallParallel* in the repository root); new
// code should use Client.
type PooledClient struct {
	net  transport.Network
	from string
	addr string

	// Timeout bounds one call once its connection is established.
	Timeout time.Duration

	id atomic.Uint64

	mu   sync.Mutex
	idle []transport.Conn
	n    int // total conns, idle + in use
	max  int
	shut bool
}

// NewPooledClient returns a checkout-per-call client for addr with a
// pool of at most maxConns connections (<=0 selects the historical
// default of 8).
func NewPooledClient(net transport.Network, from, addr string, maxConns int) *PooledClient {
	if maxConns <= 0 {
		maxConns = 8
	}
	return &PooledClient{net: net, from: from, addr: addr, max: maxConns, Timeout: 30 * time.Second}
}

// Addr returns the remote service address.
func (c *PooledClient) Addr() string { return c.addr }

// Close releases pooled connections. In-flight calls fail.
func (c *PooledClient) Close() error {
	c.mu.Lock()
	c.shut = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	return nil
}

func (c *PooledClient) getConn() (transport.Conn, error) {
	c.mu.Lock()
	if c.shut {
		c.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.n++
	c.mu.Unlock()

	raw, err := c.net.Dial(c.from, c.addr)
	if err != nil {
		c.mu.Lock()
		c.n--
		c.mu.Unlock()
		return nil, err
	}
	return raw, nil
}

func (c *PooledClient) putConn(conn transport.Conn, broken bool) {
	c.mu.Lock()
	if broken || c.shut || len(c.idle) >= c.max {
		c.n--
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
	c.mu.Unlock()
}

// Call sends one request and waits for the response, holding one pooled
// connection for the whole round trip.
func (c *PooledClient) Call(op uint16, body []byte) (resp []byte, cost time.Duration, err error) {
	conn, err := c.getConn()
	if err != nil {
		return nil, 0, err
	}

	done := make(chan callResult, 1)
	go func() {
		done <- c.doCall(conn, op, body)
	}()

	var timeout <-chan time.Time
	if c.Timeout > 0 {
		t := time.NewTimer(c.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case r := <-done:
		broken := r.err != nil && !IsRemote(r.err)
		c.putConn(conn, broken)
		return r.resp, r.cost, r.err
	case <-timeout:
		conn.Close()
		c.putConn(conn, true)
		// Let the call goroutine finish against the closed conn.
		go func() { <-done }()
		return nil, 0, fmt.Errorf("rpc: call to %s op %d timed out after %v", c.addr, op, c.Timeout)
	}
}

func (c *PooledClient) doCall(conn transport.Conn, op uint16, body []byte) (r callResult) {
	w := encodeRequest(c.id.Add(1), op, body)
	if err := w.Err(); err != nil {
		// Unencodable body (e.g. over the wire size limits): surface the
		// encode error instead of sending a nil frame the server would
		// reject as malformed.
		w.Free()
		r.err = err
		return
	}
	err := conn.Send(w.Bytes())
	w.Free()
	if err != nil {
		r.err = err
		return
	}
	frame, frameCost, err := conn.Recv()
	if err != nil {
		r.err = err
		return
	}
	_, respBody, serverCost, rerr, derr := decodeResponse(frame)
	if derr != nil {
		r.err = derr
		return
	}
	r.resp = respBody
	r.cost = frameCost + serverCost
	r.err = rerr
	return
}

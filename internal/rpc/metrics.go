package rpc

import "gdn/internal/obs"

// Registry handles for the rpc layer, cached once so the hot path
// never touches the registry map. Dial outcomes cover the transport:
// every connection a client opens goes through Client.dial.
var (
	mCallSeconds = obs.Default.Histogram("gdn_rpc_client_call_seconds",
		"unary call round-trip latency, including queueing and retries",
		obs.Seconds, obs.TimeBuckets)
	mCallErrors = obs.Default.Counter("gdn_rpc_client_call_errors_total",
		"unary calls that returned an error")
	mRetries = obs.Default.Counter("gdn_rpc_client_retries_total",
		"provably-unsent failures retried inside CallTimeout")
	mTimeouts = obs.Default.Counter("gdn_rpc_client_timeouts_total",
		"pending calls expired by the deadline sweeper")

	mDialOK = obs.Default.Counter(`gdn_rpc_dials_total{outcome="ok"}`,
		"transport dials by outcome")
	mDialErr = obs.Default.Counter(`gdn_rpc_dials_total{outcome="err"}`,
		"transport dials by outcome")
	mDialBackoff = obs.Default.Counter(`gdn_rpc_dials_total{outcome="backoff"}`,
		"transport dials by outcome (fast-failed inside the backoff gate)")

	mCondemnedWedged = obs.Default.Counter(`gdn_rpc_conns_condemned_total{cause="wedged"}`,
		"connections condemned after a full silent timeout window")
	mSeqCondemned = obs.Default.Counter(`gdn_rpc_conns_condemned_total{cause="seqgap"}`,
		"connections condemned by the sequence layer on a frame gap")
	mSeqDups = obs.Default.Counter("gdn_rpc_seqconn_dup_frames_total",
		"duplicate frames dropped by the sequence layer")
	mSeqReorders = obs.Default.Counter("gdn_rpc_seqconn_reorders_total",
		"one-frame reorders repaired by the sequence layer")

	mServeSeconds = obs.Default.Histogram("gdn_rpc_server_op_seconds",
		"server-side handler latency per dispatched request",
		obs.Seconds, obs.TimeBuckets)
	mServePanics = obs.Default.Counter("gdn_rpc_server_panics_total",
		"handler panics converted to remote errors")

	// Zero-copy data-plane counters: where payload bytes stopped being
	// copied. A vec frame's body reached the transport out of band
	// (writev on TCP, single assembly on netsim); a sendfile frame's
	// bytes were spliced disk→socket without entering user space; an
	// assembled frame fell back to one pooled-buffer copy because the
	// connection stack (e.g. a security channel) cannot vector.
	mSendVecFrames = obs.Default.Counter("gdn_rpc_send_vec_frames_total",
		"frames whose payload traveled out of band with no encoder copy")
	mSendVecBytes = obs.Default.Counter("gdn_rpc_send_vec_bytes_total",
		"payload bytes handed to the transport without an encoder copy")
	mSendSendfileFrames = obs.Default.Counter("gdn_rpc_send_sendfile_frames_total",
		"file-backed frames spliced by the transport (sendfile on TCP)")
	mSendSendfileBytes = obs.Default.Counter("gdn_rpc_send_sendfile_bytes_total",
		"payload bytes spliced from files by the transport")
	mSendAssembledFrames = obs.Default.Counter("gdn_rpc_send_assembled_frames_total",
		"vectored/file frames assembled into one pooled buffer (non-vectoring conn)")
)

package rpc

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gdn/internal/obs"
	"gdn/internal/transport"
	"gdn/internal/wire"
)

// pipelineTarget is the in-flight depth at which a client configured
// with more than one connection opens another instead of piling more
// pipelined calls onto an existing one.
const pipelineTarget = 64

// DefaultTimeout seeds a Client's Timeout field at construction, so no
// operation can hang forever on a wedged connection — the failure mode
// one-way partitions produce, where requests flow out but responses
// never come back. NewClient copies it exactly once; calls in flight
// read only the client's own field (or WithTimeout's override), so
// chaos experiments that lower the var around world construction never
// race against live calls.
var DefaultTimeout = 30 * time.Second

// Dial backoff: after repeated failed dials the slot refuses further
// dial attempts for a jittered, exponentially growing cooldown, so the
// many callers sharing a client do not re-dial a dead remote full-rate.
// The gate arms only after dialBackoffAfter consecutive failures —
// below that every caller really dials, so a remote that bounced once
// is reached again the moment it is back — and the cap is kept small
// relative to lease TTLs so recovery after a heal is prompt.
const (
	dialBackoffBase  = 25 * time.Millisecond
	dialBackoffMax   = time.Second
	dialBackoffAfter = 3
)

// unsentError marks a failure that provably happened before the request
// left this process (dial failed, or the shared connection was already
// dead at registration). Such failures are always safe to retry — on
// this client or on another replica — because the remote cannot have
// executed anything.
type unsentError struct{ err error }

func (e *unsentError) Error() string { return e.err.Error() }
func (e *unsentError) Unwrap() error { return e.err }

// IsUnsent reports whether err is a provably-unsent failure (see
// unsentError). Failover layers use it to retry writes safely.
func IsUnsent(err error) bool {
	var ue *unsentError
	return errors.As(err, &ue)
}

// Client issues calls to one service address over a small set of shared
// multiplexed connections (one by default). Any number of goroutines
// may call concurrently; their requests are pipelined over the shared
// connections and matched to responses by request ID. Clients are safe
// for concurrent use.
type Client struct {
	net  transport.Network
	from string
	addr string
	wrap ConnWrapper

	// Timeout bounds one call once its connection is established.
	// NewClient seeds it from DefaultTimeout; WithTimeout overrides it.
	// Zero or negative (possible only on a hand-built Client) falls
	// back to DefaultTimeout per call — every call has a deadline, so a
	// wedged or one-way-partitioned connection can never park a caller
	// forever.
	Timeout time.Duration

	// Retries is the per-call retry budget for provably-unsent
	// failures (IsUnsent): dial errors and dead-at-registration
	// connections. The default 0 keeps the seed behaviour — failover
	// across replicas belongs to core.PeerSet; this budget is for
	// callers with a single backend riding out a redial.
	Retries int

	slots []*connSlot
	shut  atomic.Bool
}

// connSlot holds one shared connection. mu serializes (re)dialing the
// slot and guards the dial-backoff gate; readers go through the atomic
// pointer without locking.
type connSlot struct {
	mu sync.Mutex
	mc atomic.Pointer[muxConn]

	// Dial-backoff gate (guarded by mu): after consecutive dial
	// failures the slot fails fast until nextTry instead of re-dialing
	// a dead remote at the callers' full rate.
	fails   int
	nextTry time.Time
	lastErr error
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientWrapper installs a connection upgrade applied to every
// dialed connection (e.g. the client side of a security channel).
func WithClientWrapper(w ConnWrapper) ClientOption {
	return func(c *Client) { c.wrap = w }
}

// WithTimeout overrides the construction-time default call timeout.
// Chaos and e2e harnesses use it to bound calls tighter than
// DefaultTimeout without mutating the package var while other clients
// are live.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.Timeout = d
		}
	}
}

// WithMaxConns bounds the number of shared multiplexed connections
// (default 1). More than one only helps when a single connection's
// in-flight window saturates, e.g. very high concurrency over real TCP.
func WithMaxConns(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.slots = make([]*connSlot, n)
		}
	}
}

// NewClient returns a client that dials addr over net from the named
// site (the site matters only on simulated networks).
func NewClient(net transport.Network, from, addr string, opts ...ClientOption) *Client {
	c := &Client{net: net, from: from, addr: addr, Timeout: DefaultTimeout}
	c.slots = make([]*connSlot, 1)
	for _, o := range opts {
		o(c)
	}
	for i := range c.slots {
		c.slots[i] = &connSlot{}
	}
	return c
}

// Addr returns the remote service address.
func (c *Client) Addr() string { return c.addr }

// Close tears down the shared connections. In-flight calls fail.
func (c *Client) Close() error {
	c.shut.Store(true)
	for _, s := range c.slots {
		if mc := s.mc.Load(); mc != nil {
			mc.fail(transport.ErrClosed)
		}
	}
	return nil
}

// conn picks the least-loaded live connection, dialing a fresh one only
// when none is live or every live one is saturated and a spare slot
// remains.
func (c *Client) conn() (*muxConn, error) {
	if c.shut.Load() {
		return nil, transport.ErrClosed
	}
	var best *muxConn
	var bestLoad int64
	var spare *connSlot
	for _, s := range c.slots {
		mc := s.mc.Load()
		if mc == nil || mc.dead.Load() {
			if spare == nil {
				spare = s
			}
			continue
		}
		if load := mc.inflight.Load(); best == nil || load < bestLoad {
			best, bestLoad = mc, load
		}
	}
	if best != nil && (spare == nil || bestLoad < pipelineTarget) {
		return best, nil
	}
	if spare == nil {
		return best, nil
	}
	mc, err := c.dial(spare)
	if err != nil && best != nil {
		// The extra connection was only a capacity hint; a live conn
		// can still carry the call even above the pipeline target.
		return best, nil
	}
	return mc, err
}

func (c *Client) dial(s *connSlot) (*muxConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if mc := s.mc.Load(); mc != nil && !mc.dead.Load() {
		return mc, nil
	}
	if s.fails >= dialBackoffAfter && time.Now().Before(s.nextTry) {
		// Inside the cooldown window: fail fast with the last dial
		// error instead of hammering a dead remote. The wrapper keeps
		// the underlying error visible to errors.Is, so failover
		// classification is unchanged.
		mDialBackoff.Inc()
		return nil, &unsentError{fmt.Errorf("rpc: dial %s backed off (%d consecutive failures): %w", c.addr, s.fails, s.lastErr)}
	}
	raw, err := c.net.Dial(c.from, c.addr)
	if err != nil {
		mDialErr.Inc()
		s.fails++
		s.lastErr = err
		s.nextTry = time.Now().Add(transport.Backoff(s.fails-dialBackoffAfter+1, dialBackoffBase, dialBackoffMax))
		return nil, &unsentError{err}
	}
	// The sequence layer sits directly on the raw connection, below any
	// security channel, so link-level frame faults are caught before
	// they can scramble the multiplexed (or encrypted) stream.
	conn := sequenced(raw)
	if c.wrap != nil {
		var werr error
		conn, _, werr = c.wrap(conn)
		if werr != nil {
			raw.Close()
			// A failed upgrade exchanged frames with the remote, so it
			// is not provably unsent — but it still arms the gate.
			mDialErr.Inc()
			s.fails++
			s.lastErr = werr
			s.nextTry = time.Now().Add(transport.Backoff(s.fails-dialBackoffAfter+1, dialBackoffBase, dialBackoffMax))
			return nil, werr
		}
	}
	mDialOK.Inc()
	s.fails, s.lastErr, s.nextTry = 0, nil, time.Time{}
	mc := newMuxConn(conn, c.addr)
	s.mc.Store(mc)
	if c.shut.Load() {
		// Close raced with the dial; do not leak the connection.
		mc.fail(transport.ErrClosed)
		return nil, transport.ErrClosed
	}
	go mc.recvLoop()
	return mc, nil
}

// timeout resolves the effective call deadline: the client's field,
// seeded from DefaultTimeout at construction. The var is re-read only
// for hand-built Clients whose field was left zero.
func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// Call sends one request and waits for the response. The returned cost
// is the virtual network cost of the full call tree: request frame,
// the server's nested calls, and the response frame.
func (c *Client) Call(op uint16, body []byte) (resp []byte, cost time.Duration, err error) {
	return c.CallTimeoutT(obs.SpanContext{}, op, body, c.Timeout)
}

// CallT is Call carrying a trace context: the request is issued under
// a fresh child span of tc (regenerated at this hop) that travels in
// the frame's trace tail, and the round trip is recorded as a span.
// An invalid tc makes CallT exactly Call.
func (c *Client) CallT(tc obs.SpanContext, op uint16, body []byte) ([]byte, time.Duration, error) {
	return c.CallTimeoutT(tc, op, body, c.Timeout)
}

// CallTimeout is Call with a per-call deadline overriding the client's
// Timeout — for callers that must bound one operation tighter than the
// rest (an orderly shutdown closing sessions on a possibly-dead
// remote). Zero or negative selects the client's Timeout; every call
// runs under some deadline.
func (c *Client) CallTimeout(op uint16, body []byte, timeout time.Duration) ([]byte, time.Duration, error) {
	return c.CallTimeoutT(obs.SpanContext{}, op, body, timeout)
}

// CallTimeoutT is CallTimeout carrying a trace context.
func (c *Client) CallTimeoutT(tc obs.SpanContext, op uint16, body []byte, timeout time.Duration) ([]byte, time.Duration, error) {
	if timeout <= 0 {
		timeout = c.timeout()
	}
	span := obs.StartSpan(tc, "rpc.call op 0x"+strconv.FormatUint(uint64(op), 16))
	wtc := span.Context()
	start := time.Now()
	var cost time.Duration
	for attempt := 0; ; attempt++ {
		mc, err := c.conn()
		var resp []byte
		if err == nil {
			var cc time.Duration
			resp, cc, err = mc.call(op, body, timeout, wtc)
			cost += cc
		}
		// Only provably-unsent failures are retried: the remote cannot
		// have executed anything, so the retry is safe even for
		// non-idempotent ops. Timeouts are never retried here — the
		// request's fate is unknown.
		if err == nil || attempt >= c.Retries || !IsUnsent(err) {
			mCallSeconds.ObserveSince(start)
			if err != nil {
				mCallErrors.Inc()
			}
			span.SetError(err)
			span.End()
			return resp, cost, err
		}
		mRetries.Inc()
		time.Sleep(transport.Backoff(attempt+1, 5*time.Millisecond, 250*time.Millisecond))
	}
}

// CallStream sends one request whose response arrives as a stream of
// data frames — the bulk-transfer call shape. The client's Timeout
// applies per frame (an idle limit), so arbitrarily large transfers
// survive as long as data keeps flowing.
func (c *Client) CallStream(op uint16, body []byte) (*Stream, error) {
	return c.CallStreamT(obs.SpanContext{}, op, body)
}

// CallStreamT is CallStream carrying a trace context: the context
// rides the request frame so the serving hop's spans join tc's trace.
// The stream's duration is recorded by the serving handler's span, not
// a client span — the client cannot know when the consumer finishes.
func (c *Client) CallStreamT(tc obs.SpanContext, op uint16, body []byte) (*Stream, error) {
	mc, err := c.conn()
	if err != nil {
		return nil, err
	}
	return mc.callStream(op, body, c.timeout(), tc)
}

// CallUpload opens one request whose body arrives at the server as a
// stream of data frames — the bulk-transfer call shape in the
// deploying direction. header is delivered as the handler's request
// body; the handler's return value answers CloseAndRecv. The client's
// Timeout acts per credit grant (an idle limit), so arbitrarily large
// uploads survive as long as the server keeps consuming.
func (c *Client) CallUpload(op uint16, header []byte) (*UploadStream, error) {
	return c.CallUploadT(obs.SpanContext{}, op, header)
}

// CallUploadT is CallUpload carrying a trace context; it rides the
// upload-open envelope frame, so the handler's span joins tc's trace.
func (c *Client) CallUploadT(tc obs.SpanContext, op uint16, header []byte) (*UploadStream, error) {
	mc, err := c.conn()
	if err != nil {
		return nil, err
	}
	return mc.callUpload(op, header, c.timeout(), tc)
}

// callResult is what the demux goroutine (or the deadline sweeper, or a
// connection-failure broadcast) hands back to a waiting caller.
type callResult struct {
	resp []byte
	cost time.Duration
	err  error
}

// pendingCall is one table entry for an in-flight request.
type pendingCall struct {
	op       uint16
	timeout  time.Duration
	deadline time.Time       // zero when the call has no timeout
	done     chan callResult // buffered; exactly one result is ever sent
	stream   *Stream         // non-nil for streaming (download) calls
	upload   *UploadStream   // non-nil for upload calls
}

// pendShards stripes the pending-call table. Every frame sent and
// received crosses the table, so under high pipelining (64 in-flight
// calls, streams acking every frame) one mutex became the hot spot;
// IDs are sequential, so id&mask spreads registrations evenly.
const pendShards = 8

// pendShard is one stripe of the pending table with its own deadline
// sweeper: the timer is armed for the stripe's earliest deadline, so
// timeout bookkeeping never takes a lock shared with other stripes.
type pendShard struct {
	mu      sync.Mutex
	pending map[uint64]*pendingCall
	timer   *time.Timer // nil until the first deadline is armed
	timerAt time.Time
}

// muxConn is one shared connection carrying many in-flight calls. A
// single recvLoop goroutine demultiplexes responses to the striped
// pending table; timeouts are swept per stripe by a timer armed for
// that stripe's earliest pending deadline.
type muxConn struct {
	conn   transport.Conn
	addr   string
	sender *connSender

	inflight atomic.Int64
	dead     atomic.Bool
	lastRecv atomic.Int64 // unix nanos of the last received frame
	nextID   atomic.Uint64

	// failMu serializes fail(); deadErr is written under it before the
	// dead flag is raised, so any reader that observed dead may read it.
	failMu  sync.Mutex
	deadErr error

	shards [pendShards]pendShard
}

func newMuxConn(conn transport.Conn, addr string) *muxConn {
	m := &muxConn{conn: conn, addr: addr}
	for i := range m.shards {
		m.shards[i].pending = make(map[uint64]*pendingCall)
	}
	m.lastRecv.Store(time.Now().UnixNano())
	m.sender = newConnSender(conn, m.fail)
	return m
}

func (m *muxConn) pendShardOf(id uint64) *pendShard {
	return &m.shards[id&(pendShards-1)]
}

// pendingLen reports the total pending-call count (tests only).
func (m *muxConn) pendingLen() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.pending)
		sh.mu.Unlock()
	}
	return n
}

// register installs a pending call and sends its request frame. It
// reports the assigned ID and whether registration succeeded; on an
// encode failure the call is withdrawn and the error returned.
func (m *muxConn) register(pc *pendingCall, op uint16, body []byte, tc obs.SpanContext) (uint64, error) {
	if op >= opReserved {
		// Reserved ops are consumed by the RPC layer on the server; a
		// service call using one would be misread as flow control and
		// hang or condemn the shared connection. Fail loudly instead.
		return 0, fmt.Errorf("rpc: op %#x is reserved for the protocol", op)
	}
	return m.registerFrame(pc, op, body, tc)
}

// registerFrame is register without the reserved-op guard: upload
// opens legitimately carry a reserved frame op (the real op rides the
// envelope body).
func (m *muxConn) registerFrame(pc *pendingCall, op uint16, body []byte, tc obs.SpanContext) (uint64, error) {
	if m.dead.Load() {
		// Dead at registration: the request was never sent, which makes
		// the failure safe to retry here or on another replica.
		return 0, &unsentError{m.deadErr}
	}
	id := m.nextID.Add(1) - 1
	sh := m.pendShardOf(id)
	sh.mu.Lock()
	if pc.timeout > 0 {
		pc.deadline = time.Now().Add(pc.timeout)
		m.armSweepLocked(sh, pc.deadline)
	}
	sh.pending[id] = pc
	m.inflight.Add(1)
	sh.mu.Unlock()
	if m.dead.Load() {
		// fail() may have swept this stripe before our insert landed;
		// withdraw the entry if it is still ours, else the broadcast
		// owns the result and the caller hears from it.
		if m.withdraw(id) {
			return 0, &unsentError{m.deadErr}
		}
		return id, nil
	}

	w := encodeRequest(id, op, body, tc)
	if err := w.Err(); err != nil {
		// The body cannot be encoded (e.g. over the wire size limits).
		// Fail just this call; the connection is untouched.
		w.Free()
		if m.withdraw(id) {
			return id, err
		}
		return id, nil // a racing failure broadcast owns the result
	}
	// Hand the frame to the flush-combining sender. A send failure
	// condemns the connection, and the failure broadcast delivers the
	// error to our pending entry — no per-call error path needed.
	m.sender.enqueue(w)
	return id, nil
}

func (m *muxConn) call(op uint16, body []byte, timeout time.Duration, tc obs.SpanContext) ([]byte, time.Duration, error) {
	pc := &pendingCall{op: op, timeout: timeout, done: make(chan callResult, 1)}
	if _, err := m.register(pc, op, body, tc); err != nil {
		return nil, 0, err
	}
	r := <-pc.done
	return r.resp, r.cost, r.err
}

// callStream opens a streaming call. The returned Stream yields the
// response's data frames; the call's timeout acts per frame (an idle
// limit), not on the whole transfer.
func (m *muxConn) callStream(op uint16, body []byte, timeout time.Duration, tc obs.SpanContext) (*Stream, error) {
	st := &Stream{mc: m, events: make(chan streamEvent, streamWindow+2)}
	pc := &pendingCall{op: op, timeout: timeout, done: make(chan callResult, 1), stream: st}
	id, err := m.register(pc, op, body, tc)
	if err != nil {
		return nil, err
	}
	st.id = id
	return st, nil
}

// callUpload opens an upload call. The returned UploadStream carries
// data frames to the handler; its timeout acts per credit grant (an
// idle limit), not on the whole transfer.
func (m *muxConn) callUpload(op uint16, header []byte, timeout time.Duration, tc obs.SpanContext) (*UploadStream, error) {
	if op >= opReserved {
		return nil, fmt.Errorf("rpc: op %#x is reserved for the protocol", op)
	}
	us := &UploadStream{mc: m, credits: streamWindow}
	us.cond = sync.NewCond(&us.mu)
	pc := &pendingCall{op: op, timeout: timeout, done: make(chan callResult, 1), upload: us}
	us.pc = pc
	id, err := m.registerFrame(pc, opUploadOpen, encodeUploadOpen(op, header), tc)
	if err != nil {
		return nil, err
	}
	us.id = id
	return us, nil
}

// withdraw removes one pending call, reporting whether this caller
// owned it (false when a failure broadcast or completion already took
// it, and the result channel is or will be filled by that owner).
func (m *muxConn) withdraw(id uint64) bool {
	sh := m.pendShardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.pending[id]; !ok {
		return false
	}
	delete(sh.pending, id)
	m.inflight.Add(-1)
	return true
}

// sendCredit grants the server n more data frames for a stream.
func (m *muxConn) sendCredit(id uint64, n uint32) {
	ack := encodeAckBody(n)
	w := wire.GetWriter(18)
	w.Uint64(id)
	w.Uint16(opStreamAck)
	w.Bytes32(ack[:])
	m.sender.enqueue(w)
}

// touchStream refreshes a stream's idle deadline on consumer
// progress. Frame arrival refreshes it too, but a consumer slower
// than the flow-control window would otherwise see no arrivals for a
// whole timeout despite actively reading.
func (m *muxConn) touchStream(id uint64) {
	sh := m.pendShardOf(id)
	sh.mu.Lock()
	if pc, ok := sh.pending[id]; ok && pc.timeout > 0 {
		pc.deadline = time.Now().Add(pc.timeout)
		m.armSweepLocked(sh, pc.deadline)
	}
	sh.mu.Unlock()
}

// cancelStream withdraws a stream's pending entry and tells the
// server to stop sending.
func (m *muxConn) cancelStream(id uint64) {
	m.withdraw(id)
	if m.dead.Load() {
		return
	}
	m.sendCancelFrame(id)
}

// sendCancelFrame tells the server to abort one response stream, so
// its handler does not stay parked waiting for flow-control credit
// that will never come.
func (m *muxConn) sendCancelFrame(id uint64) {
	w := wire.GetWriter(14)
	w.Uint64(id)
	w.Uint16(opStreamCancel)
	w.Bytes32(nil)
	m.sender.enqueue(w)
}

// recvLoop is the per-connection demux goroutine: it receives response
// frames, adds each frame's own virtual cost to the server-reported
// cost, and wakes the caller registered under the frame's request ID.
// Stream data frames are routed to their Stream without completing
// the call; each one also refreshes the call's idle deadline.
func (m *muxConn) recvLoop() {
	for {
		frame, frameCost, err := m.conn.Recv()
		if err != nil {
			m.fail(err)
			return
		}
		m.lastRecv.Store(time.Now().UnixNano())
		id, status, body, cost, rerr, derr := decodeResponse(frame)
		if derr != nil {
			transport.PutFrame(frame)
			m.fail(fmt.Errorf("rpc: malformed response from %s: %w", m.addr, derr))
			return
		}

		if status == statusCredit {
			// Upload flow control: more data frames granted. Progress
			// refreshes the idle deadline like stream data frames do.
			sh := m.pendShardOf(id)
			sh.mu.Lock()
			pc := sh.pending[id]
			if pc != nil && pc.upload != nil && pc.timeout > 0 {
				pc.deadline = time.Now().Add(pc.timeout)
				m.armSweepLocked(sh, pc.deadline)
			}
			sh.mu.Unlock()
			if pc != nil && pc.upload != nil {
				n, err := decodeAck(body)
				if err != nil {
					transport.PutFrame(frame)
					m.fail(fmt.Errorf("rpc: malformed credit from %s: %w", m.addr, err))
					return
				}
				pc.upload.addCredit(n)
			}
			transport.PutFrame(frame)
			continue
		}

		if status == statusStream {
			sh := m.pendShardOf(id)
			sh.mu.Lock()
			pc := sh.pending[id]
			if pc != nil && pc.stream != nil && pc.timeout > 0 {
				// Progress resets the clock: the timeout bounds silence,
				// not the whole transfer.
				pc.deadline = time.Now().Add(pc.timeout)
				m.armSweepLocked(sh, pc.deadline)
			}
			sh.mu.Unlock()
			switch {
			case pc == nil:
				// Canceled or timed-out stream; drop the late frame.
				transport.PutFrame(frame)
			case pc.stream == nil:
				// A data frame for a unary call: op/shape mismatch.
				// Fail the call and stop the sender instead of wedging.
				m.withdraw(id)
				pc.done <- callResult{err: fmt.Errorf("rpc: streaming response to unary call (op %d)", pc.op)}
				m.cancelStream(id)
				transport.PutFrame(frame)
			default:
				if !pc.stream.deliver(streamEvent{data: body, frame: frame, cost: frameCost}) {
					// deliver refused, so the frame was not enqueued
					// and is still ours to recycle.
					transport.PutFrame(frame)
					m.fail(fmt.Errorf("rpc: %s overran the stream window", m.addr))
					return
				}
			}
			continue
		}

		sh := m.pendShardOf(id)
		sh.mu.Lock()
		pc := sh.pending[id]
		if pc != nil {
			delete(sh.pending, id)
			m.inflight.Add(-1)
		}
		sh.mu.Unlock()
		switch {
		case pc == nil:
			// A response with no pending entry belongs to a call that
			// timed out; recycle and drop it.
			transport.PutFrame(frame)
		case pc.stream != nil:
			// The trailer's bytes escape to the stream consumer, so its
			// frame is not recycled.
			pc.stream.deliver(streamEvent{final: true, resp: body, cost: frameCost + cost, err: rerr})
		case pc.upload != nil:
			// The server answered the upload (the handler returned,
			// possibly before the client finished sending): unblock a
			// parked Send and hand CloseAndRecv the result.
			var resp []byte
			if len(body) > 0 {
				resp = make([]byte, len(body))
				copy(resp, body)
			}
			transport.PutFrame(frame)
			pc.upload.finish(callResult{resp: resp, cost: frameCost + cost, err: rerr})
		default:
			// The response body escapes to the caller; hand it a
			// right-sized copy so the (size-classed, typically larger)
			// receive buffer goes back to the pool instead of leaking
			// out of it one response at a time.
			var resp []byte
			if len(body) > 0 {
				resp = make([]byte, len(body))
				copy(resp, body)
			}
			transport.PutFrame(frame)
			pc.done <- callResult{resp: resp, cost: frameCost + cost, err: rerr}
		}
	}
}

// fail marks the connection dead, closes it, and delivers err to every
// pending call. It is idempotent.
func (m *muxConn) fail(err error) {
	m.failMu.Lock()
	if m.dead.Load() {
		m.failMu.Unlock()
		return
	}
	m.deadErr = err
	m.dead.Store(true)
	m.failMu.Unlock()
	m.conn.Close()
	m.sender.fail(err)
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		pend := sh.pending
		sh.pending = make(map[uint64]*pendingCall)
		if sh.timer != nil {
			sh.timer.Stop()
			sh.timer = nil
		}
		sh.mu.Unlock()
		for _, pc := range pend {
			m.inflight.Add(-1)
			deliverFailure(pc, err)
		}
	}
}

// deliverFailure completes one withdrawn pending call with err,
// through its stream when it has one.
func deliverFailure(pc *pendingCall, err error) {
	if pc.stream != nil {
		pc.stream.deliver(streamEvent{final: true, err: err})
		return
	}
	if pc.upload != nil {
		// Wake a Send parked on credit before completing the call.
		pc.upload.abort(err)
	}
	pc.done <- callResult{err: err}
}

// armSweepLocked ensures sh's sweep timer fires no later than dl.
// Called with sh.mu held.
func (m *muxConn) armSweepLocked(sh *pendShard, dl time.Time) {
	if sh.timer == nil {
		sh.timerAt = dl
		sh.timer = time.AfterFunc(time.Until(dl), func() { m.sweep(sh) })
		return
	}
	if dl.Before(sh.timerAt) {
		sh.timerAt = dl
		sh.timer.Reset(time.Until(dl))
	}
}

// sweep expires one stripe's pending calls whose deadline has passed
// and re-arms the stripe's timer for its next earliest deadline. One
// timer per stripe replaces the old goroutine-plus-timer per call.
//
// A timed-out call normally just leaves the table — the connection
// stays usable and its late response (if any) is dropped by recvLoop,
// so one slow handler cannot condemn the shared connection for every
// other caller. But if the connection has been completely silent for an
// expired call's entire timeout window (no frame received since before
// the call started), the transport itself is almost certainly wedged —
// e.g. a real-TCP peer that stopped reading, leaving our flusher
// blocked in a write forever. Then the connection is condemned, which
// closes it, unblocks any stuck writer, fails the remaining pending
// calls, and makes the next Call redial — the recovery the seed client
// got by closing the connection on every timeout.
func (m *muxConn) sweep(sh *pendShard) {
	now := time.Now()
	type expiredCall struct {
		id uint64
		pc *pendingCall
	}
	var expired []expiredCall
	var wedged bool
	sh.mu.Lock()
	if m.dead.Load() {
		sh.mu.Unlock()
		return
	}
	// Snapshot under the lock: a frame delivered while sweep waited on
	// sh.mu must count as a sign of life, or a live connection could be
	// condemned on a stale reading.
	lastRecv := time.Unix(0, m.lastRecv.Load())
	var next time.Time
	for id, pc := range sh.pending {
		if pc.deadline.IsZero() {
			continue
		}
		if !pc.deadline.After(now) {
			delete(sh.pending, id)
			m.inflight.Add(-1)
			expired = append(expired, expiredCall{id: id, pc: pc})
			if started := pc.deadline.Add(-pc.timeout); lastRecv.Before(started) {
				wedged = true
			}
		} else if next.IsZero() || pc.deadline.Before(next) {
			next = pc.deadline
		}
	}
	if next.IsZero() {
		// No armed deadlines remain; the next registration re-creates
		// the timer.
		sh.timer = nil
	} else {
		sh.timerAt = next
		sh.timer.Reset(time.Until(next))
	}
	sh.mu.Unlock()
	for _, e := range expired {
		mTimeouts.Inc()
		deliverFailure(e.pc, fmt.Errorf("rpc: call to %s op %d timed out after %v", m.addr, e.pc.op, e.pc.timeout))
		if (e.pc.stream != nil || e.pc.upload != nil) && !m.dead.Load() {
			// The server side of a timed-out stream is still parked
			// waiting for credit (or for upload data frames); release
			// it, or its handler goroutine would be leaked for the life
			// of the connection.
			m.sendCancelFrame(e.id)
		}
	}
	if wedged {
		mCondemnedWedged.Inc()
		m.fail(fmt.Errorf("rpc: connection to %s silent through a full timeout window", m.addr))
	}
}

package rpc

import (
	"errors"
	"fmt"
	"log"
	"strconv"
	"sync"
	"time"

	"gdn/internal/obs"
	"gdn/internal/transport"
	"gdn/internal/wire"
)

// RemoteError is an application error returned by the remote handler,
// as opposed to a transport failure.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "rpc: remote error: " + e.Msg }

// IsRemote reports whether err is an application-level error from the
// remote handler rather than a transport failure.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// Call carries one inbound request to a handler.
//
// Body is valid only until the handler returns: the receive buffer
// behind it is recycled. Handlers that retain request bytes must
// copy them.
type Call struct {
	// Op is the service-specific operation code.
	Op uint16
	// Body is the opaque request body.
	Body []byte
	// Peer is the authenticated principal name when the connection runs
	// over a security channel, or "" for unauthenticated connections.
	Peer string
	// RemoteAddr is the transport address of the caller.
	RemoteAddr string

	// TC is the request's trace context. For a call delivered by a
	// Server it is the server-side span started for this request (the
	// caller's context regenerated at this hop), so handlers propagate
	// it into nested calls as-is; zero for untraced requests.
	TC obs.SpanContext

	cost time.Duration

	// openStream is installed by the server so handlers can switch the
	// response into the streaming shape; nil for calls constructed
	// outside a served connection.
	openStream func() (*StreamWriter, error)

	// upload carries the client's data frames when the call was opened
	// as an upload stream; nil for unary calls.
	upload *UploadReader
}

// OpenStream switches this call's response into the streaming shape:
// the returned writer sends data frames to the caller, and the
// handler's eventual return value becomes the stream's trailer. Only
// calls delivered by a Server can stream.
func (c *Call) OpenStream() (*StreamWriter, error) {
	if c.openStream == nil {
		return nil, errNotStreamable
	}
	return c.openStream()
}

// Upload returns the reader for the client's data frames when this
// call was opened as an upload stream (Client.CallUpload), nil for a
// unary call. Handlers that accept both shapes probe it and fall back
// to decoding the request body.
func (c *Call) Upload() *UploadReader { return c.upload }

// Charge adds the virtual cost of a nested call made while serving this
// request; it is reflected back to the caller in the response. Each
// Call is owned by the one handler goroutine dispatched for it; a
// handler that fans out must serialize its own Charge calls.
func (c *Call) Charge(d time.Duration) { c.cost += d }

// Cost returns the nested cost charged so far. Demultiplexing layers
// use it to propagate charges recorded on a copied Call to the original.
func (c *Call) Cost() time.Duration { return c.cost }

// Handler processes one request and returns the response body. A
// returned error is delivered to the client as a RemoteError. Handlers
// must be safe for concurrent use: pipelined requests on one connection
// are dispatched concurrently.
type Handler func(c *Call) ([]byte, error)

// ConnWrapper optionally upgrades an accepted or dialed connection —
// package sec uses this to install authenticated channels without rpc
// depending on it. It returns the upgraded connection and the peer's
// authenticated principal name ("" if anonymous).
type ConnWrapper func(transport.Conn) (transport.Conn, string, error)

// maxConnRequests bounds the handler goroutines in flight per
// connection. When a client pipelines more, the connection's read loop
// blocks, applying backpressure instead of letting one hostile or buggy
// peer spawn unbounded goroutines (paper §6.1).
const maxConnRequests = 256

// Server serves a Handler on one transport address.
type Server struct {
	handler Handler
	wrap    ConnWrapper
	logf    func(format string, args ...any)

	mu       sync.Mutex
	listener transport.Listener
	conns    map[transport.Conn]struct{}
	closed   bool
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerWrapper installs a connection upgrade (e.g. a security
// channel handshake) applied to every accepted connection.
func WithServerWrapper(w ConnWrapper) ServerOption {
	return func(s *Server) { s.wrap = w }
}

// WithServerLog directs server diagnostics to logf instead of the
// standard logger; tests use it to silence expected failures.
func WithServerLog(logf func(string, ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// Serve starts serving handler on addr over net. It returns once the
// listener is installed; connections are handled on background
// goroutines until Close.
func Serve(net transport.Network, addr string, handler Handler, opts ...ServerOption) (*Server, error) {
	s := &Server{
		handler: handler,
		conns:   make(map[transport.Conn]struct{}),
		logf:    func(string, ...any) {},
	}
	for _, o := range opts {
		o(s)
	}
	l, err := net.Listen(addr)
	if err != nil {
		return nil, err
	}
	s.listener = l
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Close stops the listener and tears down active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Server) acceptLoop() {
	for {
		c, err := s.listener.Accept()
		if err != nil {
			return
		}
		go s.serveConn(c)
	}
}

func (s *Server) track(c transport.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c transport.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// serveConn reads pipelined requests off one connection and dispatches
// each to its own handler goroutine. Responses are written back as they
// complete, tagged with the request ID, so they may overtake slower
// requests received earlier.
func (s *Server) serveConn(raw transport.Conn) {
	// Mirror of Client.dial: the sequence layer wraps the raw
	// connection on both ends, below any security channel.
	conn, peer := sequenced(raw), ""
	if s.wrap != nil {
		var err error
		conn, peer, err = s.wrap(conn)
		if err != nil {
			s.logf("rpc: connection upgrade from %s failed: %v", raw.RemoteAddr(), err)
			raw.Close()
			return
		}
	}
	if !s.track(conn) {
		conn.Close()
		return
	}
	defer func() {
		s.untrack(conn)
		conn.Close()
	}()
	// Responses funnel through one flush-combining sender, so bursts of
	// concurrently completing handlers cost one vectored write. A send
	// failure closes the connection, which the read loop observes.
	sender := newConnSender(conn, func(error) { conn.Close() })
	// Response streams for this connection; torn down with it so no
	// handler stays blocked on flow-control credit.
	streams := newStreamTable(sender)
	defer streams.closeAll(transport.ErrClosed)
	// Inbound upload streams; torn down with the connection so no
	// handler stays parked in Recv.
	uploads := newUploadTable(sender)
	defer uploads.closeAll(transport.ErrClosed)
	// Requests are dispatched to a lazily grown per-connection worker
	// pool: steady pipelined traffic reuses parked goroutines instead of
	// spawning one per request. The hand-off channel is unbuffered, so a
	// try-send succeeds only when a worker is actually parked waiting —
	// a request is never queued behind a busy worker while the pool has
	// room to grow. At the cap the blocking send is the backpressure.
	reqs := make(chan serverRequest)
	defer close(reqs)
	var workers int
	for {
		frame, frameCost, err := conn.Recv()
		if err != nil {
			return
		}
		id, call, err := decodeRequest(frame)
		if err != nil {
			s.logf("rpc: malformed request from %s: %v", conn.RemoteAddr(), err)
			return
		}
		if call.Op >= opReserved {
			// Stream flow-control and upload frames are consumed by the
			// RPC layer itself, never dispatched — except opUploadOpen,
			// which unwraps into an ordinary dispatch with a reader
			// attached.
			switch call.Op {
			case opStreamAck:
				n, err := decodeAck(call.Body)
				if err != nil {
					s.logf("rpc: %v from %s", err, conn.RemoteAddr())
					return
				}
				streams.ack(id, n)
			case opStreamCancel:
				// A request ID names at most one stream direction; tell
				// both tables and let the other shrug.
				streams.cancel(id)
				uploads.cancel(id)
			case opUploadOpen:
				innerOp, header, err := decodeUploadOpen(call.Body)
				if err != nil {
					s.logf("rpc: malformed upload open from %s: %v", conn.RemoteAddr(), err)
					return
				}
				if innerOp >= opReserved {
					sender.enqueue(encodeResponse(id, nil, fmt.Errorf("rpc: op %#x is reserved for the protocol", innerOp), frameCost))
					break
				}
				ur, err := uploads.open(id)
				if err != nil {
					// Over the upload cap (or racing teardown): answer the
					// call with the error instead of wedging the uploader.
					sender.enqueue(encodeResponse(id, nil, err, frameCost))
					break
				}
				call.Op = innerOp
				call.Body = header
				call.upload = ur
				goto dispatch
			case opUploadData:
				if ok, overrun := uploads.deliver(id, uploadEvent{data: call.Body, frame: frame, cost: frameCost}); ok {
					continue // the reader owns the frame now
				} else if overrun {
					s.logf("rpc: %s overran the upload window", conn.RemoteAddr())
					return
				}
				// No reader (handler already answered); drop the frame.
			case opUploadEnd:
				uploads.deliver(id, uploadEvent{final: true, cost: frameCost}) //nolint:errcheck // late end frames are harmless
			default:
				s.logf("rpc: unknown reserved op %d from %s", call.Op, conn.RemoteAddr())
			}
			transport.PutFrame(frame)
			continue
		}
	dispatch:
		call.Peer = peer
		call.RemoteAddr = conn.RemoteAddr()
		call.openStream = func() (*StreamWriter, error) { return streams.open(id) }
		r := serverRequest{id: id, call: call, frameCost: frameCost, frame: frame}
		select {
		case reqs <- r:
		default:
			if workers < maxConnRequests {
				workers++
				go s.connWorker(sender, streams, uploads, reqs)
			}
			reqs <- r
		}
	}
}

type serverRequest struct {
	id        uint64
	call      *Call
	frameCost time.Duration
	frame     []byte
}

func (s *Server) connWorker(sender *connSender, streams *streamTable, uploads *uploadTable, reqs <-chan serverRequest) {
	for r := range reqs {
		s.handleRequest(sender, streams, uploads, r)
	}
}

func (s *Server) handleRequest(sender *connSender, streams *streamTable, uploads *uploadTable, r serverRequest) {
	id, call := r.id, r.call
	// Regenerate the span at this hop: the handler runs under a fresh
	// server-side span whose context rides call.TC into any nested
	// calls the handler makes. Untraced requests get a nil span and an
	// unchanged (zero) TC.
	span := obs.StartSpan(call.TC, "rpc.serve op 0x"+strconv.FormatUint(uint64(call.Op), 16))
	call.TC = span.Context()
	start := time.Now()
	body, herr := s.safeHandle(call)
	mServeSeconds.ObserveSince(start)
	span.SetError(herr)
	span.End()
	if call.upload != nil {
		// The handler is done with the upload: withdraw the reader so
		// late data frames are dropped, recycle anything it never
		// consumed, and fold the data frames' virtual cost into the
		// response like any nested charge.
		if ur := uploads.take(id); ur != nil {
			call.Charge(ur.drain())
		}
	}
	w := encodeResponse(id, body, herr, r.frameCost+call.Cost())
	if err := w.Err(); err != nil {
		// The response body itself cannot be encoded (e.g. over the wire
		// size limit); deliver the encode failure as a remote error so
		// the caller learns why instead of losing the connection.
		w.Free()
		w = encodeResponse(id, nil, fmt.Errorf("response unencodable: %v", err), r.frameCost+call.Cost())
	}
	// If the handler streamed, its return value travels as the final
	// (trailer) frame; data frames are already queued ahead of it on
	// the same sender, so ordering holds.
	streams.take(id)
	sender.enqueue(w)
	// The handler is done with the request body; recycle its frame.
	transport.PutFrame(r.frame)
}

// safeHandle runs the handler, converting a panic into an error so one
// bad request cannot take the server down (paper §6.1: availability in
// the face of malformed traffic).
func (s *Server) safeHandle(call *Call) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("handler panic: %v", r)
			mServePanics.Inc()
			s.logf("rpc: handler panic serving op %d: %v", call.Op, r)
		}
	}()
	return s.handler(call)
}

// decodeRequest splits a request frame. The 16-byte trace tail is
// optional: frames from peers predating trace propagation simply end
// after the body and decode to an untraced call, so the wire format
// stays compatible in both directions.
func decodeRequest(frame []byte) (uint64, *Call, error) {
	r := wire.NewReader(frame)
	id := r.Uint64()
	op := r.Uint16()
	body := r.Bytes32()
	var tc obs.SpanContext
	if r.Remaining() == traceTailLen {
		tc.Trace = r.Uint64()
		tc.Span = r.Uint64()
	}
	if err := r.Done(); err != nil {
		return 0, nil, err
	}
	return id, &Call{Op: op, Body: body, TC: tc}, nil
}

// traceTailLen is the size of the optional trace context appended to
// request frames: trace ID then span ID, both uint64.
const traceTailLen = 16

// encodeRequest builds a request frame in a pooled writer. The caller
// must Free it once the frame has been sent. A valid trace context is
// appended as the optional 16-byte tail; untraced requests keep the
// seed frame layout byte for byte.
func encodeRequest(id uint64, op uint16, body []byte, tc obs.SpanContext) *wire.Writer {
	w := wire.GetWriter(14 + traceTailLen + len(body))
	w.Uint64(id)
	w.Uint16(op)
	w.Bytes32(body)
	if tc.Valid() {
		w.Uint64(tc.Trace)
		w.Uint64(tc.Span)
	}
	return w
}

// encodeResponse builds a response frame in a pooled writer. The caller
// must Free it once the frame has been sent.
func encodeResponse(id uint64, body []byte, herr error, cost time.Duration) *wire.Writer {
	w := wire.GetWriter(24 + len(body))
	w.Uint64(id)
	if herr != nil {
		w.Uint8(1)
		w.Str(truncateErr(herr.Error()))
		w.Int64(int64(cost))
		w.Bytes32(nil)
	} else {
		w.Uint8(0)
		w.Str("")
		w.Int64(int64(cost))
		w.Bytes32(body)
	}
	return w
}

func truncateErr(s string) string {
	const max = 1024
	if len(s) > max {
		return s[:max]
	}
	return s
}

// decodeResponse splits a response frame. err is the remote
// application error (a *RemoteError) when the handler failed; derr is a
// decode failure, which condemns the whole connection.
func decodeResponse(frame []byte) (id uint64, status uint8, body []byte, cost time.Duration, err, derr error) {
	r := wire.NewReader(frame)
	id = r.Uint64()
	status = r.Uint8()
	msg := r.Str()
	cost = time.Duration(r.Int64())
	body = r.Bytes32()
	if derr = r.Done(); derr != nil {
		return 0, 0, nil, 0, nil, derr
	}
	switch status {
	case statusOK, statusStream, statusCredit:
		return id, status, body, cost, nil, nil
	case statusErr:
		return id, status, nil, cost, &RemoteError{Msg: msg}, nil
	default:
		// An unknown status byte means a corrupt or incompatible peer;
		// condemn the connection like any other malformed frame.
		return 0, 0, nil, 0, nil, fmt.Errorf("rpc: unknown response status %d", status)
	}
}

// LogTo is the default diagnostic sink for servers created without
// WithServerLog by cmd/ daemons.
func LogTo(prefix string) func(string, ...any) {
	return func(format string, args ...any) {
		log.Printf(prefix+": "+format, args...)
	}
}

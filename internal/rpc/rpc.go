// Package rpc implements the request/response protocol every Globe
// service in this repository speaks: location-service directory nodes,
// object servers, replication peers and naming authorities.
//
// Messages are opaque bodies tagged with an operation code, matching the
// paper's model of subobjects that exchange "opaque invocation messages"
// (§3.3). The one Globe-specific feature is virtual cost propagation:
// a server accumulates the simulated network cost of the nested calls it
// makes on behalf of a request and reports it in the response, so a
// client's Call returns the cost of the entire dependent call tree. This
// is how experiments measure, for example, that a location-service
// lookup costs time proportional to the distance between client and
// nearest replica (paper §3.5) without any real sleeping.
package rpc

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"gdn/internal/transport"
	"gdn/internal/wire"
)

// RemoteError is an application error returned by the remote handler,
// as opposed to a transport failure.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "rpc: remote error: " + e.Msg }

// IsRemote reports whether err is an application-level error from the
// remote handler rather than a transport failure.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// Call carries one inbound request to a handler.
type Call struct {
	// Op is the service-specific operation code.
	Op uint16
	// Body is the opaque request body.
	Body []byte
	// Peer is the authenticated principal name when the connection runs
	// over a security channel, or "" for unauthenticated connections.
	Peer string
	// RemoteAddr is the transport address of the caller.
	RemoteAddr string

	cost time.Duration
}

// Charge adds the virtual cost of a nested call made while serving this
// request; it is reflected back to the caller in the response.
func (c *Call) Charge(d time.Duration) { c.cost += d }

// Cost returns the nested cost charged so far. Demultiplexing layers
// use it to propagate charges recorded on a copied Call to the original.
func (c *Call) Cost() time.Duration { return c.cost }

// Handler processes one request and returns the response body. A
// returned error is delivered to the client as a RemoteError. Handlers
// must be safe for concurrent use.
type Handler func(c *Call) ([]byte, error)

// ConnWrapper optionally upgrades an accepted or dialed connection —
// package sec uses this to install authenticated channels without rpc
// depending on it. It returns the upgraded connection and the peer's
// authenticated principal name ("" if anonymous).
type ConnWrapper func(transport.Conn) (transport.Conn, string, error)

// Server serves a Handler on one transport address.
type Server struct {
	handler Handler
	wrap    ConnWrapper
	logf    func(format string, args ...any)

	mu       sync.Mutex
	listener transport.Listener
	conns    map[transport.Conn]struct{}
	closed   bool
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerWrapper installs a connection upgrade (e.g. a security
// channel handshake) applied to every accepted connection.
func WithServerWrapper(w ConnWrapper) ServerOption {
	return func(s *Server) { s.wrap = w }
}

// WithServerLog directs server diagnostics to logf instead of the
// standard logger; tests use it to silence expected failures.
func WithServerLog(logf func(string, ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// Serve starts serving handler on addr over net. It returns once the
// listener is installed; connections are handled on background
// goroutines until Close.
func Serve(net transport.Network, addr string, handler Handler, opts ...ServerOption) (*Server, error) {
	s := &Server{
		handler: handler,
		conns:   make(map[transport.Conn]struct{}),
		logf:    func(string, ...any) {},
	}
	for _, o := range opts {
		o(s)
	}
	l, err := net.Listen(addr)
	if err != nil {
		return nil, err
	}
	s.listener = l
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Close stops the listener and tears down active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Server) acceptLoop() {
	for {
		c, err := s.listener.Accept()
		if err != nil {
			return
		}
		go s.serveConn(c)
	}
}

func (s *Server) track(c transport.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c transport.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) serveConn(raw transport.Conn) {
	conn, peer := raw, ""
	if s.wrap != nil {
		var err error
		conn, peer, err = s.wrap(raw)
		if err != nil {
			s.logf("rpc: connection upgrade from %s failed: %v", raw.RemoteAddr(), err)
			raw.Close()
			return
		}
	}
	if !s.track(conn) {
		conn.Close()
		return
	}
	defer func() {
		s.untrack(conn)
		conn.Close()
	}()
	for {
		frame, frameCost, err := conn.Recv()
		if err != nil {
			return
		}
		call, err := decodeRequest(frame)
		if err != nil {
			s.logf("rpc: malformed request from %s: %v", conn.RemoteAddr(), err)
			return
		}
		call.Peer = peer
		call.RemoteAddr = conn.RemoteAddr()
		body, herr := s.safeHandle(call)
		resp := encodeResponse(body, herr, frameCost+call.cost)
		if err := conn.Send(resp); err != nil {
			return
		}
	}
}

// safeHandle runs the handler, converting a panic into an error so one
// bad request cannot take the server down (paper §6.1: availability in
// the face of malformed traffic).
func (s *Server) safeHandle(call *Call) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("handler panic: %v", r)
			s.logf("rpc: handler panic serving op %d: %v", call.Op, r)
		}
	}()
	return s.handler(call)
}

func decodeRequest(frame []byte) (*Call, error) {
	r := wire.NewReader(frame)
	op := r.Uint16()
	body := r.Bytes32()
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &Call{Op: op, Body: body}, nil
}

func encodeRequest(op uint16, body []byte) []byte {
	w := wire.NewWriter(6 + len(body))
	w.Uint16(op)
	w.Bytes32(body)
	return w.Bytes()
}

func encodeResponse(body []byte, herr error, cost time.Duration) []byte {
	w := wire.NewWriter(16 + len(body))
	if herr != nil {
		w.Uint8(1)
		w.Str(truncateErr(herr.Error()))
		w.Int64(int64(cost))
		w.Bytes32(nil)
	} else {
		w.Uint8(0)
		w.Str("")
		w.Int64(int64(cost))
		w.Bytes32(body)
	}
	return w.Bytes()
}

func truncateErr(s string) string {
	const max = 1024
	if len(s) > max {
		return s[:max]
	}
	return s
}

func decodeResponse(frame []byte) (body []byte, cost time.Duration, err error) {
	r := wire.NewReader(frame)
	status := r.Uint8()
	msg := r.Str()
	cost = time.Duration(r.Int64())
	body = r.Bytes32()
	if derr := r.Done(); derr != nil {
		return nil, 0, derr
	}
	if status != 0 {
		return nil, cost, &RemoteError{Msg: msg}
	}
	return body, cost, nil
}

// Client issues calls to one service address, reusing a small pool of
// connections. Clients are safe for concurrent use.
type Client struct {
	net  transport.Network
	from string
	addr string
	wrap ConnWrapper

	// Timeout bounds one call including connection setup. It exists to
	// keep real-TCP deployments from hanging forever; the simulated
	// network never blocks long enough to trigger it.
	Timeout time.Duration

	mu   sync.Mutex
	idle []transport.Conn
	n    int // total conns, idle + in use
	max  int
	shut bool
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientWrapper installs a connection upgrade applied to every
// dialed connection (e.g. the client side of a security channel).
func WithClientWrapper(w ConnWrapper) ClientOption {
	return func(c *Client) { c.wrap = w }
}

// WithMaxConns bounds the connection pool (default 8).
func WithMaxConns(n int) ClientOption {
	return func(c *Client) { c.max = n }
}

// NewClient returns a client that dials addr over net from the named
// site (the site matters only on simulated networks).
func NewClient(net transport.Network, from, addr string, opts ...ClientOption) *Client {
	c := &Client{net: net, from: from, addr: addr, max: 8, Timeout: 30 * time.Second}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Addr returns the remote service address.
func (c *Client) Addr() string { return c.addr }

// Close releases pooled connections. In-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.shut = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	return nil
}

func (c *Client) getConn() (transport.Conn, error) {
	c.mu.Lock()
	if c.shut {
		c.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.n++
	c.mu.Unlock()

	raw, err := c.net.Dial(c.from, c.addr)
	if err != nil {
		c.mu.Lock()
		c.n--
		c.mu.Unlock()
		return nil, err
	}
	if c.wrap == nil {
		return raw, nil
	}
	conn, _, err := c.wrap(raw)
	if err != nil {
		raw.Close()
		c.mu.Lock()
		c.n--
		c.mu.Unlock()
		return nil, err
	}
	return conn, nil
}

func (c *Client) putConn(conn transport.Conn, broken bool) {
	c.mu.Lock()
	if broken || c.shut || len(c.idle) >= c.max {
		c.n--
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
	c.mu.Unlock()
}

// Call sends one request and waits for the response. The returned cost
// is the virtual network cost of the full call tree: request frame,
// the server's nested calls, and the response frame.
func (c *Client) Call(op uint16, body []byte) (resp []byte, cost time.Duration, err error) {
	conn, err := c.getConn()
	if err != nil {
		return nil, 0, err
	}

	type result struct {
		resp []byte
		cost time.Duration
		err  error
	}
	done := make(chan result, 1)
	go func() {
		r := c.doCall(conn, op, body)
		done <- r
	}()

	var timeout <-chan time.Time
	if c.Timeout > 0 {
		t := time.NewTimer(c.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case r := <-done:
		broken := r.err != nil && !IsRemote(r.err)
		c.putConn(conn, broken)
		return r.resp, r.cost, r.err
	case <-timeout:
		conn.Close()
		c.putConn(conn, true)
		// Let the call goroutine finish against the closed conn.
		go func() { <-done }()
		return nil, 0, fmt.Errorf("rpc: call to %s op %d timed out after %v", c.addr, op, c.Timeout)
	}
}

func (c *Client) doCall(conn transport.Conn, op uint16, body []byte) (r struct {
	resp []byte
	cost time.Duration
	err  error
}) {
	if err := conn.Send(encodeRequest(op, body)); err != nil {
		r.err = err
		return
	}
	frame, frameCost, err := conn.Recv()
	if err != nil {
		r.err = err
		return
	}
	respBody, serverCost, err := decodeResponse(frame)
	r.resp = respBody
	r.cost = frameCost + serverCost
	r.err = err
	return
}

// LogTo is the default diagnostic sink for servers created without
// WithServerLog by cmd/ daemons.
func LogTo(prefix string) func(string, ...any) {
	return func(format string, args ...any) {
		log.Printf(prefix+": "+format, args...)
	}
}

package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gdn/internal/netsim"
	"gdn/internal/transport"
)

func simNet(t *testing.T) *netsim.Network {
	t.Helper()
	n := netsim.New(nil)
	n.AddSite("client", "c", "eu")
	n.AddSite("server", "s", "us")
	n.AddSite("backend", "b", "ap")
	return n
}

func echoHandler(c *Call) ([]byte, error) {
	return append([]byte{byte(c.Op)}, c.Body...), nil
}

func TestCallRoundTrip(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:echo", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:echo")
	defer cl.Close()
	resp, cost, err := cl.Call(7, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, append([]byte{7}, []byte("ping")...)) {
		t.Fatalf("resp = %q", resp)
	}
	if cost <= 0 {
		t.Fatal("cost must include request+response frames")
	}
}

func TestRemoteError(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:err", func(c *Call) ([]byte, error) {
		return nil, fmt.Errorf("no such object %q", string(c.Body))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:err")
	defer cl.Close()
	_, _, err = cl.Call(1, []byte("x"))
	if err == nil {
		t.Fatal("expected remote error")
	}
	if !IsRemote(err) {
		t.Fatalf("error not recognized as remote: %v", err)
	}
	if !strings.Contains(err.Error(), `no such object "x"`) {
		t.Fatalf("error text lost: %v", err)
	}
}

func TestHandlerPanicIsolated(t *testing.T) {
	n := simNet(t)
	calls := 0
	srv, err := Serve(n, "server:p", func(c *Call) ([]byte, error) {
		calls++
		if c.Op == 666 {
			panic("boom")
		}
		return []byte("ok"), nil
	}, WithServerLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:p")
	defer cl.Close()
	if _, _, err := cl.Call(666, nil); !IsRemote(err) {
		t.Fatalf("panic not converted to remote error: %v", err)
	}
	// The server must still serve subsequent requests.
	resp, _, err := cl.Call(1, nil)
	if err != nil || string(resp) != "ok" {
		t.Fatalf("server dead after panic: %v %q", err, resp)
	}
	if calls != 2 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestCostPropagation(t *testing.T) {
	n := simNet(t)
	// backend is a leaf service.
	back, err := Serve(n, "backend:leaf", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()

	// server forwards to backend and charges the nested cost.
	backCl := NewClient(n, "server", "backend:leaf")
	defer backCl.Close()
	front, err := Serve(n, "server:front", func(c *Call) ([]byte, error) {
		resp, cost, err := backCl.Call(c.Op, c.Body)
		if err != nil {
			return nil, err
		}
		c.Charge(cost)
		return resp, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	// Direct call to backend from client for comparison.
	directCl := NewClient(n, "client", "backend:leaf")
	defer directCl.Close()
	_, directCost, err := directCl.Call(1, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}

	cl := NewClient(n, "client", "server:front")
	defer cl.Close()
	_, chainCost, err := cl.Call(1, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	// The chained call crosses client->server and server->backend, so it
	// must cost strictly more than the direct client->backend call.
	if chainCost <= directCost {
		t.Fatalf("chain cost %v not greater than direct %v", chainCost, directCost)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:conc", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:conc")
	defer cl.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte{byte(i)}
			resp, _, err := cl.Call(uint16(i), body)
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			want := append([]byte{byte(i)}, body...)
			if !bytes.Equal(resp, want) {
				t.Errorf("call %d: resp %q want %q", i, resp, want)
			}
		}(i)
	}
	wg.Wait()
}

// countingNet wraps a Network and counts dials, so tests can observe
// connection sharing without reaching into client internals.
type countingNet struct {
	transport.Network
	dials atomic.Int64
}

func (c *countingNet) Dial(from, addr string) (transport.Conn, error) {
	c.dials.Add(1)
	return c.Network.Dial(from, addr)
}

func TestConnReuse(t *testing.T) {
	n := &countingNet{Network: simNet(t)}
	srv, err := Serve(n, "server:reuse", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:reuse", WithMaxConns(1))
	defer cl.Close()
	for i := 0; i < 50; i++ {
		if _, _, err := cl.Call(1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if d := n.dials.Load(); d != 1 {
		t.Fatalf("sequential calls dialed %d conns, want 1", d)
	}
}

func TestConcurrentCallsShareOneConn(t *testing.T) {
	// The mux must carry many in-flight calls over the single shared
	// connection, not open one per concurrent caller.
	n := &countingNet{Network: simNet(t)}
	srv, err := Serve(n, "server:share", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:share")
	defer cl.Close()
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, _, err := cl.Call(1, []byte("x")); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if d := n.dials.Load(); d != 1 {
		t.Fatalf("64 concurrent callers dialed %d conns, want 1", d)
	}
}

func TestServerCloseFailsCalls(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:close", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(n, "client", "server:close")
	defer cl.Close()
	if _, _, err := cl.Call(1, nil); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	cl.Timeout = 2 * time.Second
	if _, _, err := cl.Call(1, nil); err == nil {
		t.Fatal("call succeeded after server close")
	}
}

func TestClientRecoversAfterServerRestart(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:restart", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(n, "client", "server:restart")
	cl.Timeout = 2 * time.Second
	defer cl.Close()
	if _, _, err := cl.Call(1, nil); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// First call may fail while the pool drains broken conns.
	cl.Call(1, nil)

	srv2, err := Serve(n, "server:restart", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	var ok bool
	for i := 0; i < 5; i++ {
		if _, _, err := cl.Call(1, nil); err == nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("client did not recover after server restart")
	}
}

func TestUnreachableServer(t *testing.T) {
	n := simNet(t)
	cl := NewClient(n, "client", "server:none")
	defer cl.Close()
	if _, _, err := cl.Call(1, nil); !errors.Is(err, transport.ErrNoListener) {
		t.Fatalf("err = %v, want ErrNoListener", err)
	}
}

func TestCallTimeout(t *testing.T) {
	n := simNet(t)
	block := make(chan struct{})
	srv, err := Serve(n, "server:slow", func(c *Call) ([]byte, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(block)

	cl := NewClient(n, "client", "server:slow")
	cl.Timeout = 50 * time.Millisecond
	defer cl.Close()
	start := time.Now()
	_, _, err = cl.Call(1, nil)
	if err == nil {
		t.Fatal("expected timeout")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestMalformedFrameClosesConnNotServer(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:mal", echoHandler, WithServerLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Send garbage directly over the transport.
	c, err := n.Dial("client", "server:mal")
	if err != nil {
		t.Fatal(err)
	}
	c.Send([]byte{0xde, 0xad})
	c.Close()

	// A well-formed client must still work.
	cl := NewClient(n, "client", "server:mal")
	defer cl.Close()
	if _, _, err := cl.Call(1, []byte("fine")); err != nil {
		t.Fatalf("server unusable after malformed frame: %v", err)
	}
}

func TestWrapperInstallsPrincipal(t *testing.T) {
	n := simNet(t)
	wrapper := func(c transport.Conn) (transport.Conn, string, error) {
		return c, "moderator-1", nil
	}
	srv, err := Serve(n, "server:auth", func(c *Call) ([]byte, error) {
		return []byte(c.Peer), nil
	}, WithServerWrapper(wrapper))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:auth")
	defer cl.Close()
	resp, _, err := cl.Call(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "moderator-1" {
		t.Fatalf("peer = %q", resp)
	}
}

func TestWrapperRejectionDropsConn(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:deny", echoHandler,
		WithServerWrapper(func(c transport.Conn) (transport.Conn, string, error) {
			return nil, "", errors.New("handshake refused")
		}),
		WithServerLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:deny")
	cl.Timeout = time.Second
	defer cl.Close()
	if _, _, err := cl.Call(1, nil); err == nil {
		t.Fatal("call succeeded through refused handshake")
	}
}

func TestOverTCP(t *testing.T) {
	// The same stack must run over real sockets.
	var tcp transport.TCP
	srv, err := Serve(tcp, "127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(tcp, "", srv.Addr())
	defer cl.Close()
	resp, cost, err := cl.Call(9, []byte("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, append([]byte{9}, []byte("tcp")...)) {
		t.Fatalf("resp = %q", resp)
	}
	if cost != 0 {
		t.Fatalf("TCP transport reported virtual cost %v", cost)
	}
}

// muxStress hammers one client from many goroutines and verifies every
// response is routed back to its own caller (run under -race).
func TestMuxStress(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:stress", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:stress")
	defer cl.Close()
	const goroutines = 100
	const calls = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				op := uint16(g*calls + i)
				body := []byte{byte(g), byte(i)}
				resp, _, err := cl.Call(op, body)
				if err != nil {
					t.Errorf("g%d call %d: %v", g, i, err)
					return
				}
				want := append([]byte{byte(op)}, body...)
				if !bytes.Equal(resp, want) {
					t.Errorf("g%d call %d: cross-routed response %q, want %q", g, i, resp, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConnDropFailsInFlight drops the connection under a batch of
// in-flight calls and requires every one of them to return an error
// promptly instead of hanging on the pending table.
func TestConnDropFailsInFlight(t *testing.T) {
	n := simNet(t)
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	srv, err := Serve(n, "server:drop", func(c *Call) ([]byte, error) {
		started <- struct{}{}
		<-release
		return []byte("late"), nil
	}, WithServerLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)

	cl := NewClient(n, "client", "server:drop")
	defer cl.Close()
	const inFlight = 16
	errs := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		go func(i int) {
			_, _, err := cl.Call(uint16(i), nil)
			errs <- err
		}(i)
	}
	// Wait until every call is in a handler, then kill the server (which
	// closes its tracked conns).
	for i := 0; i < inFlight; i++ {
		<-started
	}
	srv.Close()
	for i := 0; i < inFlight; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("in-flight call succeeded across a dropped connection")
			}
			if IsRemote(err) {
				t.Fatalf("conn drop surfaced as remote error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("in-flight call hung after connection drop")
		}
	}
}

// TestTimeoutLeavesPendingTableClean checks the deadline sweeper: a
// timed-out call must leave no pending entry behind, and — as long as
// the connection is carrying other live traffic — the shared
// connection must remain usable for later calls.
func TestTimeoutLeavesPendingTableClean(t *testing.T) {
	n := simNet(t)
	block := make(chan struct{})
	srv, err := Serve(n, "server:sweep", func(c *Call) ([]byte, error) {
		if c.Op == 2 {
			<-block
		}
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:sweep")
	defer cl.Close()
	// Establish the shared conn.
	if _, _, err := cl.Call(1, nil); err != nil {
		t.Fatal(err)
	}
	mc := cl.slots[0].mc.Load()
	if mc == nil {
		t.Fatal("shared conn vanished")
	}

	// Set the timeout before the background caller starts: Call reads
	// it unsynchronized, so writing it later would race.
	cl.Timeout = 50 * time.Millisecond

	// Keep fast traffic flowing on the same connection so it shows
	// signs of life while the op-2 calls hang and time out.
	stopFast := make(chan struct{})
	fastDone := make(chan struct{})
	go func() {
		defer close(fastDone)
		for {
			select {
			case <-stopFast:
				return
			default:
				cl.Call(1, nil)
				time.Sleep(time.Millisecond)
			}
		}
	}()

	const timedOut = 8
	var wg sync.WaitGroup
	for i := 0; i < timedOut; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := cl.Call(2, nil); err == nil {
				t.Error("blocked call did not time out")
			}
		}()
	}
	wg.Wait()
	close(stopFast)
	<-fastDone

	deadline := time.Now().Add(5 * time.Second)
	for {
		left := mc.pendingLen()
		inflight := mc.inflight.Load()
		if left == 0 && inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending table dirty after timeouts: %d entries, inflight %d", left, inflight)
		}
		time.Sleep(time.Millisecond)
	}
	if mc.dead.Load() {
		t.Fatal("timeout killed a connection that was carrying live traffic")
	}

	// Release the stuck handlers; their late responses must be dropped,
	// and the same connection must serve fresh calls correctly.
	close(block)
	cl.Timeout = 5 * time.Second
	resp, _, err := cl.Call(3, nil)
	if err != nil || string(resp) != "ok" {
		t.Fatalf("conn unusable after timeouts: %v %q", err, resp)
	}
	if got := cl.slots[0].mc.Load(); got != mc {
		t.Fatal("client redialed instead of reusing the live conn after timeouts")
	}
}

// TestWedgedConnCondemnedAndRedialed covers the transport-wedge path:
// when a connection is completely silent for an expired call's whole
// timeout window, the sweeper condemns it so the next call redials
// instead of piling onto a dead pipe forever.
func TestWedgedConnCondemnedAndRedialed(t *testing.T) {
	n := &countingNet{Network: simNet(t)}
	var wedged atomic.Bool
	wedged.Store(true)
	release := make(chan struct{})
	defer close(release)
	srv, err := Serve(n, "server:wedge", func(c *Call) ([]byte, error) {
		if wedged.Load() {
			<-release // swallow every request: the conn goes silent
		}
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:wedge")
	cl.Timeout = 50 * time.Millisecond
	defer cl.Close()
	if _, _, err := cl.Call(1, nil); err == nil {
		t.Fatal("call through wedged server succeeded")
	}
	mc := cl.slots[0].mc.Load()
	deadline := time.Now().Add(5 * time.Second)
	for !mc.dead.Load() {
		if time.Now().After(deadline) {
			t.Fatal("silent connection was not condemned")
		}
		time.Sleep(time.Millisecond)
	}

	// Server recovers; the client must redial and succeed.
	wedged.Store(false)
	cl.Timeout = 5 * time.Second
	resp, _, err := cl.Call(1, nil)
	if err != nil || string(resp) != "ok" {
		t.Fatalf("client did not recover from wedged conn: %v %q", err, resp)
	}
	if d := n.dials.Load(); d != 2 {
		t.Fatalf("dials = %d, want 2 (original + redial)", d)
	}
}

func TestLargeBody(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:big", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:big")
	defer cl.Close()
	body := bytes.Repeat([]byte("a"), 4<<20)
	resp, _, err := cl.Call(1, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != len(body)+1 {
		t.Fatalf("len(resp) = %d", len(resp))
	}
}

package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gdn/internal/netsim"
	"gdn/internal/transport"
)

func simNet(t *testing.T) *netsim.Network {
	t.Helper()
	n := netsim.New(nil)
	n.AddSite("client", "c", "eu")
	n.AddSite("server", "s", "us")
	n.AddSite("backend", "b", "ap")
	return n
}

func echoHandler(c *Call) ([]byte, error) {
	return append([]byte{byte(c.Op)}, c.Body...), nil
}

func TestCallRoundTrip(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:echo", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:echo")
	defer cl.Close()
	resp, cost, err := cl.Call(7, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, append([]byte{7}, []byte("ping")...)) {
		t.Fatalf("resp = %q", resp)
	}
	if cost <= 0 {
		t.Fatal("cost must include request+response frames")
	}
}

func TestRemoteError(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:err", func(c *Call) ([]byte, error) {
		return nil, fmt.Errorf("no such object %q", string(c.Body))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:err")
	defer cl.Close()
	_, _, err = cl.Call(1, []byte("x"))
	if err == nil {
		t.Fatal("expected remote error")
	}
	if !IsRemote(err) {
		t.Fatalf("error not recognized as remote: %v", err)
	}
	if !strings.Contains(err.Error(), `no such object "x"`) {
		t.Fatalf("error text lost: %v", err)
	}
}

func TestHandlerPanicIsolated(t *testing.T) {
	n := simNet(t)
	calls := 0
	srv, err := Serve(n, "server:p", func(c *Call) ([]byte, error) {
		calls++
		if c.Op == 666 {
			panic("boom")
		}
		return []byte("ok"), nil
	}, WithServerLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:p")
	defer cl.Close()
	if _, _, err := cl.Call(666, nil); !IsRemote(err) {
		t.Fatalf("panic not converted to remote error: %v", err)
	}
	// The server must still serve subsequent requests.
	resp, _, err := cl.Call(1, nil)
	if err != nil || string(resp) != "ok" {
		t.Fatalf("server dead after panic: %v %q", err, resp)
	}
	if calls != 2 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestCostPropagation(t *testing.T) {
	n := simNet(t)
	// backend is a leaf service.
	back, err := Serve(n, "backend:leaf", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()

	// server forwards to backend and charges the nested cost.
	backCl := NewClient(n, "server", "backend:leaf")
	defer backCl.Close()
	front, err := Serve(n, "server:front", func(c *Call) ([]byte, error) {
		resp, cost, err := backCl.Call(c.Op, c.Body)
		if err != nil {
			return nil, err
		}
		c.Charge(cost)
		return resp, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	// Direct call to backend from client for comparison.
	directCl := NewClient(n, "client", "backend:leaf")
	defer directCl.Close()
	_, directCost, err := directCl.Call(1, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}

	cl := NewClient(n, "client", "server:front")
	defer cl.Close()
	_, chainCost, err := cl.Call(1, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	// The chained call crosses client->server and server->backend, so it
	// must cost strictly more than the direct client->backend call.
	if chainCost <= directCost {
		t.Fatalf("chain cost %v not greater than direct %v", chainCost, directCost)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:conc", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:conc")
	defer cl.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte{byte(i)}
			resp, _, err := cl.Call(uint16(i), body)
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			want := append([]byte{byte(i)}, body...)
			if !bytes.Equal(resp, want) {
				t.Errorf("call %d: resp %q want %q", i, resp, want)
			}
		}(i)
	}
	wg.Wait()
}

func TestConnReuse(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:reuse", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:reuse", WithMaxConns(1))
	defer cl.Close()
	for i := 0; i < 50; i++ {
		if _, _, err := cl.Call(1, nil); err != nil {
			t.Fatal(err)
		}
	}
	cl.mu.Lock()
	total := cl.n
	cl.mu.Unlock()
	if total != 1 {
		t.Fatalf("sequential calls used %d conns, want 1", total)
	}
}

func TestServerCloseFailsCalls(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:close", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(n, "client", "server:close")
	defer cl.Close()
	if _, _, err := cl.Call(1, nil); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	cl.Timeout = 2 * time.Second
	if _, _, err := cl.Call(1, nil); err == nil {
		t.Fatal("call succeeded after server close")
	}
}

func TestClientRecoversAfterServerRestart(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:restart", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(n, "client", "server:restart")
	cl.Timeout = 2 * time.Second
	defer cl.Close()
	if _, _, err := cl.Call(1, nil); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// First call may fail while the pool drains broken conns.
	cl.Call(1, nil)

	srv2, err := Serve(n, "server:restart", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	var ok bool
	for i := 0; i < 5; i++ {
		if _, _, err := cl.Call(1, nil); err == nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("client did not recover after server restart")
	}
}

func TestUnreachableServer(t *testing.T) {
	n := simNet(t)
	cl := NewClient(n, "client", "server:none")
	defer cl.Close()
	if _, _, err := cl.Call(1, nil); !errors.Is(err, transport.ErrNoListener) {
		t.Fatalf("err = %v, want ErrNoListener", err)
	}
}

func TestCallTimeout(t *testing.T) {
	n := simNet(t)
	block := make(chan struct{})
	srv, err := Serve(n, "server:slow", func(c *Call) ([]byte, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(block)

	cl := NewClient(n, "client", "server:slow")
	cl.Timeout = 50 * time.Millisecond
	defer cl.Close()
	start := time.Now()
	_, _, err = cl.Call(1, nil)
	if err == nil {
		t.Fatal("expected timeout")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestMalformedFrameClosesConnNotServer(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:mal", echoHandler, WithServerLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Send garbage directly over the transport.
	c, err := n.Dial("client", "server:mal")
	if err != nil {
		t.Fatal(err)
	}
	c.Send([]byte{0xde, 0xad})
	c.Close()

	// A well-formed client must still work.
	cl := NewClient(n, "client", "server:mal")
	defer cl.Close()
	if _, _, err := cl.Call(1, []byte("fine")); err != nil {
		t.Fatalf("server unusable after malformed frame: %v", err)
	}
}

func TestWrapperInstallsPrincipal(t *testing.T) {
	n := simNet(t)
	wrapper := func(c transport.Conn) (transport.Conn, string, error) {
		return c, "moderator-1", nil
	}
	srv, err := Serve(n, "server:auth", func(c *Call) ([]byte, error) {
		return []byte(c.Peer), nil
	}, WithServerWrapper(wrapper))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:auth")
	defer cl.Close()
	resp, _, err := cl.Call(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "moderator-1" {
		t.Fatalf("peer = %q", resp)
	}
}

func TestWrapperRejectionDropsConn(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:deny", echoHandler,
		WithServerWrapper(func(c transport.Conn) (transport.Conn, string, error) {
			return nil, "", errors.New("handshake refused")
		}),
		WithServerLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(n, "client", "server:deny")
	cl.Timeout = time.Second
	defer cl.Close()
	if _, _, err := cl.Call(1, nil); err == nil {
		t.Fatal("call succeeded through refused handshake")
	}
}

func TestOverTCP(t *testing.T) {
	// The same stack must run over real sockets.
	var tcp transport.TCP
	srv, err := Serve(tcp, "127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(tcp, "", srv.Addr())
	defer cl.Close()
	resp, cost, err := cl.Call(9, []byte("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, append([]byte{9}, []byte("tcp")...)) {
		t.Fatalf("resp = %q", resp)
	}
	if cost != 0 {
		t.Fatalf("TCP transport reported virtual cost %v", cost)
	}
}

func TestLargeBody(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:big", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:big")
	defer cl.Close()
	body := bytes.Repeat([]byte("a"), 4<<20)
	resp, _, err := cl.Call(1, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != len(body)+1 {
		t.Fatalf("len(resp) = %d", len(resp))
	}
}

package rpc

import (
	"sync"

	"gdn/internal/transport"
	"gdn/internal/wire"
)

// connSender serializes outbound frames for one connection with flush
// combining: the first enqueuer becomes the flusher and keeps draining
// the queue, so frames enqueued by other goroutines while a send is in
// flight go out together — one vectored write on transports that
// implement BatchSender. Under load this collapses many pipelined
// requests (or responses) into one syscall; with a single caller it
// degenerates to a plain immediate send, adding no latency.
//
// The sender owns every writer handed to enqueue and frees it after the
// frame is sent or discarded. Send failures are reported once through
// onErr; frames enqueued after a failure are silently dropped, which is
// correct for RPC because a send failure condemns the connection and
// the pending-call table delivers the failure to every caller.
type connSender struct {
	conn  transport.Conn
	onErr func(error)

	mu     sync.Mutex
	queue  []*wire.Writer
	spare  []*wire.Writer // recycled queue backing, swapped by flush
	active bool
	dead   bool
}

func newConnSender(conn transport.Conn, onErr func(error)) *connSender {
	return &connSender{conn: conn, onErr: onErr}
}

// enqueue hands one encoded frame to the sender. It returns once the
// frame is queued; the flush (possibly run by this goroutine) delivers
// it in order.
func (s *connSender) enqueue(w *wire.Writer) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		w.Free()
		return
	}
	s.queue = append(s.queue, w)
	if s.active {
		s.mu.Unlock()
		return
	}
	s.active = true
	s.mu.Unlock()
	s.flush()
}

func (s *connSender) flush() {
	var frames [][]byte
	for {
		s.mu.Lock()
		if s.dead || len(s.queue) == 0 {
			q := s.queue
			s.queue = nil
			s.active = false
			s.mu.Unlock()
			for _, w := range q {
				w.Free()
			}
			return
		}
		batch := s.queue
		s.queue = s.spare[:0]
		s.spare = nil
		s.mu.Unlock()

		frames = frames[:0]
		for _, w := range batch {
			frames = append(frames, w.Bytes())
		}
		err := sendFrames(s.conn, frames)
		for i, w := range batch {
			w.Free()
			batch[i] = nil
		}
		if err != nil {
			s.fail(err)
			return
		}
		s.mu.Lock()
		s.spare = batch[:0]
		s.mu.Unlock()
	}
}

// fail marks the sender dead, discards queued frames, and reports err
// through onErr exactly once.
func (s *connSender) fail(err error) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	s.dead = true
	q := s.queue
	s.queue = nil
	s.active = false
	s.mu.Unlock()
	for _, w := range q {
		w.Free()
	}
	if s.onErr != nil {
		s.onErr(err)
	}
}

// sendFrames transmits a batch through one vectored write when the
// transport supports it, else frame by frame.
func sendFrames(conn transport.Conn, frames [][]byte) error {
	if len(frames) == 1 {
		return conn.Send(frames[0])
	}
	if bs, ok := conn.(transport.BatchSender); ok {
		return bs.SendBatch(frames)
	}
	for _, p := range frames {
		if err := conn.Send(p); err != nil {
			return err
		}
	}
	return nil
}

package rpc

import (
	"os"
	"sync"

	"gdn/internal/transport"
	"gdn/internal/wire"
)

// outFrame is one outbound frame queued on a connSender. Three shapes
// exist:
//
//   - plain: w holds the whole encoded frame (unary requests and
//     responses, credit grants). body and file are nil.
//   - vectored: w holds only the frame header; body is an out-of-band
//     payload whose bytes follow w's on the wire without ever being
//     copied into the encoder. This is how chunk bodies travel from the
//     store's buffers straight into the transport's writev.
//   - file-backed: w holds the frame header; fileN bytes are read from
//     file's current offset by the transport (sendfile on TCP).
//
// The sender owns everything in an outFrame: w is freed and release is
// called exactly once, after the frame has been written to the
// transport or dropped because the connection died. release is the
// buffer-ownership handoff the zero-copy path is built on — the store
// recycles a chunk buffer (or closes a chunk file) only when the wire
// is done with it.
type outFrame struct {
	w       *wire.Writer
	body    []byte
	file    *os.File
	fileN   int64
	release func()
}

// plain reports whether the frame is fully encoded in w.
func (f *outFrame) plain() bool { return f.body == nil && f.file == nil }

// done releases everything the sender owned for this frame.
func (f *outFrame) done() {
	f.w.Free()
	if f.release != nil {
		f.release()
	}
}

// connSender serializes outbound frames for one connection with flush
// combining: the first enqueuer becomes the flusher and keeps draining
// the queue, so frames enqueued by other goroutines while a send is in
// flight go out together — one vectored write on transports that
// implement BatchSender. Under load this collapses many pipelined
// requests (or responses) into one syscall; with a single caller it
// degenerates to a plain immediate send, adding no latency.
//
// The sender owns every frame handed to enqueue and releases it after
// the frame is sent or discarded. Send failures are reported once
// through onErr; frames enqueued after a failure are silently dropped,
// which is correct for RPC because a send failure condemns the
// connection and the pending-call table delivers the failure to every
// caller.
type connSender struct {
	conn  transport.Conn
	onErr func(error)

	mu     sync.Mutex
	queue  []outFrame
	spare  []outFrame // recycled queue backing, swapped by flush
	active bool
	dead   bool
}

func newConnSender(conn transport.Conn, onErr func(error)) *connSender {
	return &connSender{conn: conn, onErr: onErr}
}

// enqueue hands one fully encoded frame to the sender. It returns once
// the frame is queued; the flush (possibly run by this goroutine)
// delivers it in order.
func (s *connSender) enqueue(w *wire.Writer) {
	s.enqueueOut(outFrame{w: w})
}

// enqueueOut hands one frame of any shape to the sender, transferring
// ownership of its writer, body buffer and file handle.
func (s *connSender) enqueueOut(f outFrame) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		f.done()
		return
	}
	s.queue = append(s.queue, f)
	if s.active {
		s.mu.Unlock()
		return
	}
	s.active = true
	s.mu.Unlock()
	s.flush()
}

func (s *connSender) flush() {
	var frames [][]byte
	for {
		s.mu.Lock()
		if s.dead || len(s.queue) == 0 {
			q := s.queue
			s.queue = nil
			s.active = false
			s.mu.Unlock()
			for i := range q {
				q[i].done()
			}
			return
		}
		batch := s.queue
		s.queue = s.spare[:0]
		s.spare = nil
		s.mu.Unlock()

		// Contiguous runs of plain frames go out as one batched write;
		// vectored and file-backed frames go out individually (each is
		// one whole frame to the transport). Order is preserved across
		// the boundary — a stream's data frames and its trailer ride the
		// same queue.
		var err error
		i := 0
		for i < len(batch) && err == nil {
			if batch[i].plain() {
				j := i
				frames = frames[:0]
				for j < len(batch) && batch[j].plain() {
					frames = append(frames, batch[j].w.Bytes())
					j++
				}
				err = sendFrames(s.conn, frames)
				for ; i < j; i++ {
					batch[i].done()
					batch[i] = outFrame{}
				}
			} else {
				err = s.sendPayload(&batch[i])
				batch[i].done()
				batch[i] = outFrame{}
				i++
			}
		}
		for ; i < len(batch); i++ {
			batch[i].done()
			batch[i] = outFrame{}
		}
		if err != nil {
			s.fail(err)
			return
		}
		s.mu.Lock()
		s.spare = batch[:0]
		s.mu.Unlock()
	}
}

// sendPayload transmits one vectored or file-backed frame, counting
// how its payload bytes actually traveled.
func (s *connSender) sendPayload(f *outFrame) error {
	hdr := f.w.Bytes()
	if f.file != nil {
		if _, ok := s.conn.(transport.FileSender); ok {
			mSendSendfileFrames.Inc()
			mSendSendfileBytes.Add(f.fileN)
		} else {
			mSendAssembledFrames.Inc()
		}
		return transport.SendFileFrame(s.conn, hdr, f.file, f.fileN)
	}
	if _, ok := s.conn.(transport.VecSender); ok {
		mSendVecFrames.Inc()
		mSendVecBytes.Add(int64(len(f.body)))
	} else {
		mSendAssembledFrames.Inc()
	}
	return transport.SendVec(s.conn, [][]byte{hdr, f.body})
}

// fail marks the sender dead, discards queued frames, and reports err
// through onErr exactly once.
func (s *connSender) fail(err error) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	s.dead = true
	q := s.queue
	s.queue = nil
	s.active = false
	s.mu.Unlock()
	for i := range q {
		q[i].done()
	}
	if s.onErr != nil {
		s.onErr(err)
	}
}

// sendFrames transmits a batch through one vectored write when the
// transport supports it, else frame by frame.
func sendFrames(conn transport.Conn, frames [][]byte) error {
	if len(frames) == 1 {
		return conn.Send(frames[0])
	}
	if bs, ok := conn.(transport.BatchSender); ok {
		return bs.SendBatch(frames)
	}
	for _, p := range frames {
		if err := conn.Send(p); err != nil {
			return err
		}
	}
	return nil
}

package rpc

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// TestSendOwnedReleasesExactlyOnceOnSuccess streams owned buffers and
// counts releases: every buffer handed to SendOwned must be released
// exactly once, after its frame is written — the contract that lets
// the store recycle pooled chunk buffers.
func TestSendOwnedReleasesExactlyOnceOnSuccess(t *testing.T) {
	n := simNet(t)
	const frames, size = 20, 4 << 10
	var releases atomic.Int64
	srv, err := Serve(n, "server:zc", func(c *Call) ([]byte, error) {
		sw, err := c.OpenStream()
		if err != nil {
			return nil, err
		}
		for i := 0; i < frames; i++ {
			buf := bytes.Repeat([]byte{byte(i)}, size)
			if err := sw.SendOwned(buf, func() { releases.Add(1) }); err != nil {
				return nil, err
			}
		}
		return []byte("done"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:zc")
	defer cl.Close()

	st, err := cl.CallStream(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := 0
	for {
		p, _, err := st.Recv()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != size || p[0] != byte(got) || p[size-1] != byte(got) {
			t.Fatalf("frame %d corrupted: len %d, first %d", got, len(p), p[0])
		}
		got++
	}
	if got != frames {
		t.Fatalf("received %d frames, want %d", got, frames)
	}
	// Releases fire at write completion, which may trail the client's
	// last Recv by a beat.
	deadline := time.Now().Add(5 * time.Second)
	for releases.Load() != frames {
		if time.Now().After(deadline) {
			t.Fatalf("releases = %d, want exactly %d", releases.Load(), frames)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSendOwnedReleasesOnConnectionDeath kills the connection under a
// stream of owned buffers: every buffer accepted by SendOwned must
// still be released exactly once (on the sender's failure drain), and
// none may be released twice — a double release would recycle a pooled
// buffer while another frame owns it.
func TestSendOwnedReleasesOnConnectionDeath(t *testing.T) {
	n := simNet(t)
	const size = 4 << 10
	var handed, releases atomic.Int64
	handlerDone := make(chan struct{})
	srv, err := Serve(n, "server:zcdeath", func(c *Call) ([]byte, error) {
		defer close(handlerDone)
		sw, err := c.OpenStream()
		if err != nil {
			return nil, err
		}
		for i := 0; ; i++ {
			buf := bytes.Repeat([]byte{byte(i)}, size)
			handed.Add(1)
			if err := sw.SendOwned(buf, func() { releases.Add(1) }); err != nil {
				return nil, err
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:zcdeath")
	defer cl.Close()

	st, err := cl.CallStream(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Take a few frames, then tear the link down under the stream.
	for i := 0; i < 3; i++ {
		if _, _, err := st.Recv(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	n.SetDown("server", true)
	st.Close()

	select {
	case <-handlerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("handler never observed the dead connection")
	}
	deadline := time.Now().Add(5 * time.Second)
	for releases.Load() != handed.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("handed %d buffers but released %d: the ownership contract leaked or double-freed",
				handed.Load(), releases.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSendFileStreamsFileBytes serves a stream straight from an open
// file through SendFile (the sendfile-eligible path on real TCP; a
// pooled read on the simulated network) and verifies the bytes arrive
// intact and the release — which closes the file — fires exactly once.
func TestSendFileStreamsFileBytes(t *testing.T) {
	n := simNet(t)
	content := bytes.Repeat([]byte("spliced file bytes. "), 1024)
	path := filepath.Join(t.TempDir(), "chunk")
	if err := os.WriteFile(path, content, 0o600); err != nil {
		t.Fatal(err)
	}
	var releases atomic.Int64
	srv, err := Serve(n, "server:zcfile", func(c *Call) ([]byte, error) {
		sw, err := c.OpenStream()
		if err != nil {
			return nil, err
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		if err := sw.SendFile(f, int64(len(content)), func() { releases.Add(1); f.Close() }); err != nil {
			return nil, err
		}
		return []byte("done"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:zcfile")
	defer cl.Close()

	st, err := cl.CallStream(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var got bytes.Buffer
	for {
		p, _, err := st.Recv()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got.Write(p)
	}
	if !bytes.Equal(got.Bytes(), content) {
		t.Fatalf("file stream delivered %d bytes, want %d intact", got.Len(), len(content))
	}
	deadline := time.Now().Add(5 * time.Second)
	for releases.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("file release fired %d times, want exactly 1", releases.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

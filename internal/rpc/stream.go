package rpc

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gdn/internal/transport"
	"gdn/internal/wire"
)

// Streaming call shape: a call whose response arrives as a sequence
// of body frames over the shared multiplexed connection, so a bulk
// transfer (a package file flowing out of a GDN object server) never
// materializes as one giant frame and peak buffering stays O(chunk).
//
// Wire shape. A streaming call is an ordinary request frame; the
// server answers with zero or more data frames (response frames with
// status 2) followed by exactly one final frame (status 0 or 1,
// whose body is the stream's trailer). Data frames for concurrent
// streams interleave freely on the connection; the request ID routes
// each to its caller.
//
// Flow control. The server may have streamWindow data frames
// outstanding; each further frame needs credit. The client grants
// credit as its application consumes frames, with a reserved-op
// request frame (opStreamAck) carrying the consumed count. A slow
// reader therefore stalls its own stream — not the connection, whose
// other calls keep flowing — and buffering per stream is bounded by
// the window. A client that abandons a stream sends opStreamCancel,
// which unblocks the server-side writer with ErrStreamCanceled.

// Reserved operation codes, carried in request frames but consumed by
// the RPC layer itself. Services must not register handlers for ops
// at or above opReserved. (The upload-stream codes opUploadOpen/Data/
// End live in upload.go; opStreamCancel is shared by both stream
// directions — a request ID is only ever one kind of stream.)
const (
	opReserved     uint16 = 0xFF00
	opStreamAck    uint16 = 0xFFFF
	opStreamCancel uint16 = 0xFFFE
)

// Response status codes. statusCredit frames carry upload flow-control
// grants (upload.go); like statusStream frames they never complete the
// call.
const (
	statusOK     uint8 = 0
	statusErr    uint8 = 1
	statusStream uint8 = 2
	statusCredit uint8 = 3
)

// streamWindow is the number of data frames a server may have
// unacknowledged per stream. With chunk-sized frames it bounds
// per-stream buffering to a few megabytes while keeping a wide-area
// pipe full.
const streamWindow = 16

// maxConnStreams bounds the concurrently open response streams per
// connection to half the handler-worker cap. A stream whose client
// stalls parks its worker in Send awaiting credit; if stalled streams
// could take every worker, the read loop would block handing off the
// next request and never reach the credit/cancel frames that free
// them — a deadlock. Keeping half the pool stream-free guarantees
// the loop keeps draining.
const maxConnStreams = maxConnRequests / 2

// ErrTooManyStreams rejects opening a stream beyond the per-connection
// cap; it reaches the caller as a remote error on the stream call.
var ErrTooManyStreams = errors.New("rpc: too many concurrent streams on this connection")

// ErrStreamCanceled is returned by StreamWriter.Send after the client
// abandoned the stream.
var ErrStreamCanceled = errors.New("rpc: stream canceled by caller")

// errNotStreamable is returned by Call.OpenStream outside a served
// connection.
var errNotStreamable = errors.New("rpc: call cannot stream (no serving connection)")

// --- server side ------------------------------------------------------

// streamTable tracks the open response streams of one server
// connection, routing credit and cancel frames to their writers.
type streamTable struct {
	sender *connSender

	// n mirrors len(m) so the per-request cleanup probe on the unary
	// hot path is one atomic load, not a mutex acquisition.
	n atomic.Int32

	mu     sync.Mutex
	m      map[uint64]*StreamWriter
	closed bool
}

func newStreamTable(sender *connSender) *streamTable {
	return &streamTable{sender: sender, m: make(map[uint64]*StreamWriter)}
}

// open registers a stream for one request ID.
func (t *streamTable) open(id uint64) (*StreamWriter, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, transport.ErrClosed
	}
	if sw, ok := t.m[id]; ok {
		return sw, nil
	}
	if len(t.m) >= maxConnStreams {
		return nil, ErrTooManyStreams
	}
	sw := &StreamWriter{table: t, id: id, credits: streamWindow}
	sw.cond = sync.NewCond(&sw.mu)
	t.m[id] = sw
	t.n.Store(int32(len(t.m)))
	return sw, nil
}

// take removes a stream when its handler completes, returning it (nil
// if the handler never opened one). A handler's own open happened on
// the same goroutine, so the lock-free empty probe cannot miss it.
func (t *streamTable) take(id uint64) *StreamWriter {
	if t.n.Load() == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sw := t.m[id]
	delete(t.m, id)
	t.n.Store(int32(len(t.m)))
	return sw
}

// ack adds credit to a stream.
func (t *streamTable) ack(id uint64, n uint32) {
	t.mu.Lock()
	sw := t.m[id]
	t.mu.Unlock()
	if sw == nil {
		return // stream already finished; late ack is harmless
	}
	sw.mu.Lock()
	sw.credits += int(n)
	sw.mu.Unlock()
	sw.cond.Broadcast()
}

// cancel aborts a stream on the client's request.
func (t *streamTable) cancel(id uint64) {
	t.mu.Lock()
	sw := t.m[id]
	t.mu.Unlock()
	if sw != nil {
		sw.abort(ErrStreamCanceled)
	}
}

// closeAll aborts every stream when the connection dies, so no
// handler stays blocked waiting for credit that can never arrive.
func (t *streamTable) closeAll(err error) {
	t.mu.Lock()
	t.closed = true
	streams := make([]*StreamWriter, 0, len(t.m))
	for _, sw := range t.m {
		streams = append(streams, sw)
	}
	t.m = make(map[uint64]*StreamWriter)
	t.n.Store(0)
	t.mu.Unlock()
	for _, sw := range streams {
		sw.abort(err)
	}
}

// StreamWriter is the server half of a streaming call: the handler
// sends data frames through it, then returns normally; the handler's
// return value becomes the stream's trailer. Send applies the
// window's backpressure, so a handler streaming a large file holds
// only one chunk at a time regardless of how slow the client reads.
type StreamWriter struct {
	table *streamTable
	id    uint64

	mu      sync.Mutex
	cond    *sync.Cond
	credits int
	err     error
}

// acquireCredit blocks until the flow-control window has room, and
// fails once the client cancels or the connection dies.
func (sw *StreamWriter) acquireCredit() error {
	sw.mu.Lock()
	for sw.credits == 0 && sw.err == nil {
		sw.cond.Wait()
	}
	if sw.err != nil {
		sw.mu.Unlock()
		return sw.err
	}
	sw.credits--
	sw.mu.Unlock()
	return nil
}

// Send transmits one data frame, blocking while the flow-control
// window is exhausted. It fails once the client cancels or the
// connection dies. The body is copied; the caller keeps ownership of
// p. Handlers on the bulk hot path use SendOwned instead.
func (sw *StreamWriter) Send(p []byte) error {
	if err := sw.acquireCredit(); err != nil {
		return err
	}
	w := wireStreamFrame(sw.id, p)
	if err := w.Err(); err != nil {
		w.Free()
		return err
	}
	sw.table.sender.enqueue(w)
	return nil
}

// SendOwned transmits one data frame whose body travels out of band:
// ownership of p passes to the send path, which calls release (nil is
// allowed) exactly once — after the frame has been written to the
// transport, or when it is dropped because the stream or connection
// died. The body is never copied into the frame encoder; only a
// ~27-byte header is built here, and on TCP the body goes out in the
// same writev as that header. This is the explicit buffer-ownership
// handoff that lets the store's chunk buffers reach the wire without
// intermediate re-copies.
func (sw *StreamWriter) SendOwned(p []byte, release func()) error {
	if err := sw.acquireCredit(); err != nil {
		if release != nil {
			release()
		}
		return err
	}
	w := wireStreamHeader(sw.id, len(p))
	if err := w.Err(); err != nil {
		w.Free()
		if release != nil {
			release()
		}
		return err
	}
	sw.table.sender.enqueueOut(outFrame{w: w, body: p, release: release})
	return nil
}

// SendFile transmits one data frame of n bytes read from f's current
// offset. Ownership of the handle passes to the send path; release
// (typically closing f) is called exactly once after the bytes are on
// the wire or the frame is dropped. On TCP transports the file section
// is spliced with sendfile(2), so resident disk chunks are served
// without their bytes ever entering user space.
func (sw *StreamWriter) SendFile(f *os.File, n int64, release func()) error {
	if err := sw.acquireCredit(); err != nil {
		if release != nil {
			release()
		}
		return err
	}
	w := wireStreamHeader(sw.id, int(n))
	if err := w.Err(); err != nil {
		w.Free()
		if release != nil {
			release()
		}
		return err
	}
	sw.table.sender.enqueueOut(outFrame{w: w, file: f, fileN: n, release: release})
	return nil
}

// abort fails the stream; Send returns err from then on.
func (sw *StreamWriter) abort(err error) {
	sw.mu.Lock()
	if sw.err == nil {
		sw.err = err
	}
	sw.mu.Unlock()
	sw.cond.Broadcast()
}

// wireStreamFrame encodes one data frame in a pooled writer.
func wireStreamFrame(id uint64, body []byte) *wire.Writer {
	w := wire.GetWriter(24 + len(body))
	w.Uint64(id)
	w.Uint8(statusStream)
	w.Str("")
	w.Int64(0)
	w.Bytes32(body)
	return w
}

// wireStreamHeader encodes a data frame's header only — everything up
// to and including the body's length prefix — for a body of n bytes
// that travels out of band. Concatenated with the body it is
// byte-identical to wireStreamFrame's output, so receivers cannot tell
// the paths apart.
func wireStreamHeader(id uint64, n int) *wire.Writer {
	w := wire.GetWriter(32)
	w.Uint64(id)
	w.Uint8(statusStream)
	w.Str("")
	w.Int64(0)
	w.Bytes32Prefix(n)
	return w
}

// --- client side ------------------------------------------------------

// streamEvent is one delivery from the demux goroutine to a stream's
// reader: a data frame, or the final result.
type streamEvent struct {
	data  []byte // one data frame's body (aliases frame)
	frame []byte // backing receive buffer, recycled after consumption
	cost  time.Duration
	final bool
	resp  []byte // trailer (final only)
	err   error  // remote or transport error (final only)
}

// Stream is the client half of a streaming call. Exactly one
// goroutine may call Recv; Close may be called at any time.
type Stream struct {
	mc *muxConn
	id uint64

	events chan streamEvent

	mu       sync.Mutex
	consumed int
	prev     []byte
	trailer  []byte
	cost     time.Duration
	finished bool
	closed   bool
}

// Recv returns the next data frame and its virtual network cost. It
// returns io.EOF once the stream completed, after which Trailer holds
// the final response body. The returned slice is valid only until the
// next Recv or Close call — the buffer is recycled.
func (st *Stream) Recv() ([]byte, time.Duration, error) {
	st.mu.Lock()
	if st.prev != nil {
		transport.PutFrame(st.prev)
		st.prev = nil
	}
	if st.finished || st.closed {
		st.mu.Unlock()
		return nil, 0, io.EOF
	}
	st.mu.Unlock()

	ev := <-st.events
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cost += ev.cost
	if ev.final {
		st.finished = true
		st.trailer = ev.resp
		if ev.err != nil {
			return nil, ev.cost, ev.err
		}
		return nil, ev.cost, io.EOF
	}
	st.consumed++
	if st.consumed >= streamWindow/2 {
		st.mc.sendCredit(st.id, uint32(st.consumed))
		st.consumed = 0
	}
	// Consuming a frame is progress: keep the idle timeout from firing
	// on a reader that is slower than the buffered window.
	st.mc.touchStream(st.id)
	st.prev = ev.frame
	return ev.data, ev.cost, nil
}

// Trailer returns the final response body after Recv returned io.EOF.
func (st *Stream) Trailer() []byte {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.trailer
}

// Cost returns the accumulated virtual network cost of every frame
// received so far (including the final frame's server-side cost).
func (st *Stream) Cost() time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cost
}

// Close releases the stream. If the stream has not completed, the
// server is told to stop sending, and a Recv blocked in another
// goroutine is woken with ErrStreamCanceled.
func (st *Stream) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	if st.prev != nil {
		transport.PutFrame(st.prev)
		st.prev = nil
	}
	finished := st.finished
	st.mu.Unlock()

	if !finished {
		st.mc.cancelStream(st.id)
		// A concurrent Recv may be parked on the events channel with no
		// further deliveries coming (the pending entry is gone). Wake
		// it; if nothing is parked, the sentinel is reaped by the drain
		// below or ignored by later Recv calls via st.closed.
		st.deliver(streamEvent{final: true, err: ErrStreamCanceled})
	}
	// Recycle any frames the demux goroutine had buffered.
	for {
		select {
		case ev := <-st.events:
			if ev.frame != nil {
				transport.PutFrame(ev.frame)
			}
		default:
			return nil
		}
	}
}

// deliver hands one event to the reader. It must never block the
// demux goroutine: capacity covers the flow-control window plus the
// final frame plus one failure event, so an overflow means the peer
// overran its window.
func (st *Stream) deliver(ev streamEvent) bool {
	select {
	case st.events <- ev:
		return true
	default:
		return false
	}
}

func decodeAck(body []byte) (uint32, error) {
	if len(body) != 4 {
		return 0, fmt.Errorf("rpc: malformed stream ack (%d bytes)", len(body))
	}
	return uint32(body[0])<<24 | uint32(body[1])<<16 | uint32(body[2])<<8 | uint32(body[3]), nil
}

func encodeAckBody(n uint32) [4]byte {
	return [4]byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

package rpc

import (
	"bytes"
	"testing"

	"gdn/internal/obs"
	"gdn/internal/wire"
)

// TestRequestFrameOldFormatCompat pins the wire compatibility contract
// of the optional trace tail: an untraced request encodes to exactly
// the pre-trace frame layout, and a frame from a peer predating trace
// propagation (no 16-byte tail) decodes to an untraced call.
func TestRequestFrameOldFormatCompat(t *testing.T) {
	const id, op = uint64(7), uint16(42)
	body := []byte("chunk request body")

	// The seed frame layout: id, op, length-prefixed body. Nothing else.
	old := wire.GetWriter(0)
	defer old.Free()
	old.Uint64(id)
	old.Uint16(op)
	old.Bytes32(body)

	w := encodeRequest(id, op, body, obs.SpanContext{})
	defer w.Free()
	if !bytes.Equal(w.Bytes(), old.Bytes()) {
		t.Fatalf("untraced request frame differs from the pre-trace layout:\n got %x\nwant %x",
			w.Bytes(), old.Bytes())
	}

	gotID, call, err := decodeRequest(old.Bytes())
	if err != nil {
		t.Fatalf("decodeRequest(old frame): %v", err)
	}
	if gotID != id || call.Op != op || !bytes.Equal(call.Body, body) {
		t.Fatalf("old frame decoded to id=%d op=%d body=%q", gotID, call.Op, call.Body)
	}
	if call.TC.Valid() {
		t.Fatalf("old frame decoded to a traced call: %+v", call.TC)
	}
}

// TestRequestFrameTraceRoundTrip checks the traced side of the same
// contract: a valid span context rides the 16-byte tail and survives
// encode/decode intact.
func TestRequestFrameTraceRoundTrip(t *testing.T) {
	tc := obs.SpanContext{Trace: 0xdeadbeefcafe, Span: 0x1234567890ab}
	body := []byte("traced body")

	w := encodeRequest(9, 3, body, tc)
	defer w.Free()

	untraced := encodeRequest(9, 3, body, obs.SpanContext{})
	defer untraced.Free()
	if w.Len() != untraced.Len()+traceTailLen {
		t.Fatalf("traced frame is %d bytes, want untraced %d + tail %d",
			w.Len(), untraced.Len(), traceTailLen)
	}

	_, call, err := decodeRequest(w.Bytes())
	if err != nil {
		t.Fatalf("decodeRequest(traced frame): %v", err)
	}
	if call.TC != tc {
		t.Fatalf("trace context did not round-trip: got %+v, want %+v", call.TC, tc)
	}
	if !bytes.Equal(call.Body, body) {
		t.Fatalf("body = %q, want %q", call.Body, body)
	}
}

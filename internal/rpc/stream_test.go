package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"gdn/internal/transport"
)

// streamNFrames returns a handler that streams n frames of the given
// size (each filled with its index) and a trailer naming the count.
func streamNFrames(n, size int) Handler {
	return func(c *Call) ([]byte, error) {
		sw, err := c.OpenStream()
		if err != nil {
			return nil, err
		}
		buf := make([]byte, size)
		for i := 0; i < n; i++ {
			for j := range buf {
				buf[j] = byte(i)
			}
			if err := sw.Send(buf); err != nil {
				return nil, err
			}
		}
		return []byte(fmt.Sprintf("sent %d", n)), nil
	}
}

func TestStreamDeliversFramesInOrder(t *testing.T) {
	n := simNet(t)
	const frames, size = 50, 4 << 10
	srv, err := Serve(n, "server:stream", streamNFrames(frames, size))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:stream")
	defer cl.Close()

	st, err := cl.CallStream(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := 0
	for {
		p, cost, err := st.Recv()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if cost <= 0 {
			t.Fatal("stream frame lost its virtual cost")
		}
		if len(p) != size || p[0] != byte(got) || p[size-1] != byte(got) {
			t.Fatalf("frame %d corrupted: len %d, first %d", got, len(p), p[0])
		}
		got++
	}
	if got != frames {
		t.Fatalf("received %d frames, want %d", got, frames)
	}
	if string(st.Trailer()) != "sent 50" {
		t.Fatalf("trailer = %q", st.Trailer())
	}
	if st.Cost() <= 0 {
		t.Fatal("stream lost accumulated cost")
	}
}

func TestStreamFlowControlBlocksServer(t *testing.T) {
	n := simNet(t)
	var sent atomic.Int64
	srv, err := Serve(n, "server:flow", func(c *Call) ([]byte, error) {
		sw, err := c.OpenStream()
		if err != nil {
			return nil, err
		}
		for i := 0; i < 4*streamWindow; i++ {
			if err := sw.Send([]byte{byte(i)}); err != nil {
				return nil, err
			}
			sent.Add(1)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:flow")
	defer cl.Close()

	st, err := cl.CallStream(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Without consuming, the server must stall at the window.
	deadline := time.Now().Add(2 * time.Second)
	for sent.Load() < streamWindow && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if got := sent.Load(); got > streamWindow {
		t.Fatalf("server sent %d frames without credit (window %d)", got, streamWindow)
	}

	// Draining releases it.
	frames := 0
	for {
		_, _, err := st.Recv()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
	}
	if frames != 4*streamWindow {
		t.Fatalf("drained %d frames, want %d", frames, 4*streamWindow)
	}
}

func TestStreamCancelUnblocksHandler(t *testing.T) {
	n := simNet(t)
	handlerErr := make(chan error, 1)
	srv, err := Serve(n, "server:cancel", func(c *Call) ([]byte, error) {
		sw, err := c.OpenStream()
		if err != nil {
			return nil, err
		}
		for {
			if err := sw.Send(make([]byte, 1024)); err != nil {
				handlerErr <- err
				return nil, err
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:cancel")
	defer cl.Close()

	st, err := cl.CallStream(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Recv(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	select {
	case err := <-handlerErr:
		if !errors.Is(err, ErrStreamCanceled) {
			t.Fatalf("handler err = %v, want ErrStreamCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler still blocked after cancel")
	}
}

func TestStreamRemoteError(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:fail", func(c *Call) ([]byte, error) {
		sw, err := c.OpenStream()
		if err != nil {
			return nil, err
		}
		if err := sw.Send([]byte("partial")); err != nil {
			return nil, err
		}
		return nil, errors.New("bulk source vanished")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:fail")
	defer cl.Close()

	st, err := cl.CallStream(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p, _, err := st.Recv()
	if err != nil || string(p) != "partial" {
		t.Fatalf("first frame: %v %q", err, p)
	}
	_, _, err = st.Recv()
	if !IsRemote(err) {
		t.Fatalf("err = %v, want remote error", err)
	}
}

func TestCallStreamOnUnaryHandler(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:unary", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:unary")
	defer cl.Close()

	st, err := cl.CallStream(3, []byte{42})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, _, err = st.Recv()
	if !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want immediate EOF", err)
	}
	if !bytes.Equal(st.Trailer(), []byte{3, 42}) {
		t.Fatalf("trailer = %v", st.Trailer())
	}
}

func TestStreamInterleavesWithUnaryCalls(t *testing.T) {
	n := simNet(t)
	srv, err := Serve(n, "server:mixed", func(c *Call) ([]byte, error) {
		if c.Op == 99 {
			return streamNFrames(2*streamWindow, 512)(c)
		}
		return echoHandler(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(n, "client", "server:mixed")
	defer cl.Close()

	st, err := cl.CallStream(99, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Unary traffic proceeds on the shared connection while the
	// stream is open (and stalled on flow control).
	for i := 0; i < 10; i++ {
		resp, _, err := cl.Call(5, []byte{byte(i)})
		if err != nil || !bytes.Equal(resp, []byte{5, byte(i)}) {
			t.Fatalf("unary call during stream: %v %q", err, resp)
		}
	}
	frames := 0
	for {
		_, _, err := st.Recv()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
	}
	if frames != 2*streamWindow {
		t.Fatalf("frames = %d", frames)
	}
}

func TestStreamOverTCP(t *testing.T) {
	var tcp transport.TCP
	const frames, size = 64, 64 << 10
	srv, err := Serve(tcp, "127.0.0.1:0", streamNFrames(frames, size))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(tcp, "", srv.Addr())
	defer cl.Close()

	st, err := cl.CallStream(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var total int
	i := 0
	for {
		p, _, err := st.Recv()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != size || p[0] != byte(i) {
			t.Fatalf("frame %d corrupted", i)
		}
		total += len(p)
		i++
	}
	if total != frames*size {
		t.Fatalf("received %d bytes, want %d", total, frames*size)
	}
}

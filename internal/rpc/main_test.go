package rpc

import (
	"testing"

	"gdn/internal/testutil"
)

// TestMain fails the suite when goroutines leak past the last test —
// the whole-suite version of E12's teardown invariant.
func TestMain(m *testing.M) { testutil.CheckMain(m) }

package rpc

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"time"

	"gdn/internal/transport"
)

// scriptConn feeds Recv a fixed sequence of frames.
type scriptConn struct {
	frames [][]byte
	closed bool
}

func (c *scriptConn) Send(p []byte) error { return nil }

func (c *scriptConn) Recv() ([]byte, time.Duration, error) {
	if len(c.frames) == 0 {
		return nil, 0, errors.New("script exhausted")
	}
	p := c.frames[0]
	c.frames = c.frames[1:]
	return p, 0, nil
}

func (c *scriptConn) Close() error       { c.closed = true; return nil }
func (c *scriptConn) LocalAddr() string  { return "test:local" }
func (c *scriptConn) RemoteAddr() string { return "test:remote" }

func seqFrame(seq uint64, body string) []byte {
	f := transport.GetFrame(seqHeader + len(body))
	binary.BigEndian.PutUint64(f, seq)
	copy(f[seqHeader:], body)
	return f
}

func TestSequencedReorderHeals(t *testing.T) {
	sc := sequenced(&scriptConn{frames: [][]byte{seqFrame(1, "b"), seqFrame(0, "a")}})
	for i, want := range []string{"a", "b"} {
		p, _, err := sc.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if string(p) != want {
			t.Fatalf("Recv %d = %q, want %q", i, p, want)
		}
		transport.PutFrame(p)
	}
}

// TestSequencedUndersizedFrameCondemns pins the validation path that
// used to drop the undersized frame without recycling it (the bufown
// analyzer's first real catch; the pool return itself is locked in by
// the golden test mirroring this shape).
func TestSequencedUndersizedFrameCondemns(t *testing.T) {
	conn := &scriptConn{frames: [][]byte{transport.GetFrame(3)[:3]}}
	sc := sequenced(conn)
	_, _, err := sc.Recv()
	if err == nil || !strings.Contains(err.Error(), "undersized") {
		t.Fatalf("err = %v, want undersized-frame condemnation", err)
	}
	if !conn.closed {
		t.Fatal("condemned conn was not closed")
	}
	if _, _, err2 := sc.Recv(); err2 != err {
		t.Fatalf("condemnation not sticky: %v", err2)
	}
}

// TestSequencedGapCondemnsAndReleasesParked drives the
// second-frame-beyond-the-gap path: the parked frame must be recycled
// by condemn, not silently dropped with the connection.
func TestSequencedGapCondemnsAndReleasesParked(t *testing.T) {
	conn := &scriptConn{frames: [][]byte{seqFrame(1, "parked"), seqFrame(2, "gap")}}
	sc := sequenced(conn)
	_, _, err := sc.Recv()
	if err == nil || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("err = %v, want sequence-gap condemnation", err)
	}
	if !conn.closed {
		t.Fatal("condemned conn was not closed")
	}
}

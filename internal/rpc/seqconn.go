package rpc

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"time"

	"gdn/internal/transport"
)

// seqHeader is the per-frame sequence header length.
const seqHeader = 8

// sequencedConn guards the RPC layer against a transport that breaks
// its in-order, exactly-once framing promise — which is precisely what
// the chaos plane's link faults do (netsim.LinkFaults: duplicated and
// reordered frames are delivered, lost frames simply never arrive).
// Without it those faults scramble multiplexed frames silently: a
// duplicated or swapped stream data frame yields a complete,
// plausible-looking transfer with corrupt bytes.
//
// Every frame is stamped with a connection-local sequence number.
// The receiver delivers in-order frames straight through, drops
// duplicates, repairs a one-frame reordering window (the window the
// fault model injects), and condemns the connection on a genuine gap —
// so a lost frame becomes a visible connection error the retry layers
// above recover from, never silent corruption. On real TCP the header
// is 8 redundant bytes per frame; the end-to-end check stays cheap and
// both transports stay interchangeable.
//
// Both ends of every RPC connection speak this framing: Client.dial
// and Server.serveConn wrap the raw connection before any security
// channel, so the sequence check sits directly above the lossy link.
type sequencedConn struct {
	conn transport.Conn

	// smu makes stamp+send atomic, so concurrent senders cannot emit
	// sequence numbers out of order.
	smu        sync.Mutex
	next       uint64
	vecScratch [][]byte // part-vector backing reused across SendVec calls

	// rmu serializes receivers over the reorder-repair state.
	rmu      sync.Mutex
	want     uint64
	held     []byte // out-of-order frame parked until the gap fills
	heldSeq  uint64
	heldCost time.Duration
	rerr     error // sticky failure: a desynced connection stays dead
}

func sequenced(c transport.Conn) transport.Conn {
	return &sequencedConn{conn: c}
}

// stamp prepends the next sequence number. Caller holds smu. The
// returned buffer is pooled; recycle it after the underlying Send
// returns (both transports have consumed the payload by then).
func (c *sequencedConn) stamp(p []byte) []byte {
	f := transport.GetFrame(len(p) + seqHeader)
	binary.BigEndian.PutUint64(f, c.next)
	c.next++
	copy(f[seqHeader:], p)
	return f
}

func (c *sequencedConn) Send(p []byte) error {
	c.smu.Lock()
	f := c.stamp(p)
	err := c.conn.Send(f)
	c.smu.Unlock()
	transport.PutFrame(f)
	return err
}

// SendVec stamps and forwards one vectored frame. The 8-byte sequence
// header rides as its own leading part, so the payload parts are never
// copied here — the stamp that costs a full frame copy on the
// contiguous path becomes a fixed 8-byte prepend.
func (c *sequencedConn) SendVec(parts [][]byte) error {
	var hdr [seqHeader]byte
	c.smu.Lock()
	binary.BigEndian.PutUint64(hdr[:], c.next)
	c.next++
	c.vecScratch = append(c.vecScratch[:0], hdr[:])
	c.vecScratch = append(c.vecScratch, parts...)
	err := transport.SendVec(c.conn, c.vecScratch)
	for i := range c.vecScratch {
		c.vecScratch[i] = nil
	}
	c.smu.Unlock()
	return err
}

// SendFileFrame stamps and forwards one file-backed frame: the
// sequence header and frame header travel as one small vectored part,
// and the file section is spliced by the transport when it can be.
func (c *sequencedConn) SendFileFrame(hdr []byte, f *os.File, n int64) error {
	c.smu.Lock()
	h := transport.GetFrame(seqHeader + len(hdr))
	binary.BigEndian.PutUint64(h, c.next)
	c.next++
	copy(h[seqHeader:], hdr)
	err := transport.SendFileFrame(c.conn, h, f, n)
	c.smu.Unlock()
	transport.PutFrame(h)
	return err
}

// SendBatch stamps each frame and forwards the batch through the
// underlying vectored write when available.
func (c *sequencedConn) SendBatch(frames [][]byte) error {
	c.smu.Lock()
	stamped := make([][]byte, len(frames))
	for i, p := range frames {
		stamped[i] = c.stamp(p)
	}
	var err error
	if bs, ok := c.conn.(transport.BatchSender); ok {
		err = bs.SendBatch(stamped)
	} else {
		for _, f := range stamped {
			if err = c.conn.Send(f); err != nil {
				break
			}
		}
	}
	c.smu.Unlock()
	for _, f := range stamped {
		transport.PutFrame(f)
	}
	return err
}

func (c *sequencedConn) Recv() ([]byte, time.Duration, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if c.rerr != nil {
		return nil, 0, c.rerr
	}
	for {
		if c.held != nil && c.heldSeq == c.want {
			// The gap filled on a previous iteration; release the
			// parked frame in order.
			p, cost := c.held, c.heldCost
			c.held = nil
			c.want++
			return p, cost, nil
		}
		p, cost, err := c.conn.Recv()
		if err != nil {
			c.rerr = err
			return nil, 0, err
		}
		if len(p) < seqHeader {
			transport.PutFrame(p)
			return nil, 0, c.condemn(fmt.Errorf("rpc: undersized sequenced frame (%d bytes) from %s", len(p), c.conn.RemoteAddr()))
		}
		seq := binary.BigEndian.Uint64(p)
		body := p[seqHeader:]
		switch {
		case seq == c.want:
			c.want++
			return body, cost, nil
		case seq < c.want || (c.held != nil && seq == c.heldSeq):
			// A duplicate of something already delivered or parked.
			mSeqDups.Inc()
			transport.PutFrame(p)
		case c.held == nil:
			// One frame ahead of the gap: park it and wait for the
			// overtaken frame.
			mSeqReorders.Inc()
			c.held, c.heldSeq, c.heldCost = body, seq, cost
		default:
			// A second frame beyond the gap: the missing frame is
			// genuinely lost, and silently skipping it would hand the
			// layers above a corrupted frame sequence. Fail visibly.
			transport.PutFrame(p)
			return nil, 0, c.condemn(fmt.Errorf("rpc: sequence gap from %s: want frame %d, have %d and %d — frame lost in transit",
				c.conn.RemoteAddr(), c.want, c.heldSeq, seq))
		}
	}
}

// condemn records a sticky receive failure and closes the underlying
// connection. Caller holds rmu.
func (c *sequencedConn) condemn(err error) error {
	mSeqCondemned.Inc()
	c.rerr = err
	if c.held != nil {
		transport.PutFrame(c.held)
		c.held = nil
	}
	c.conn.Close()
	return err
}

func (c *sequencedConn) Close() error       { return c.conn.Close() }
func (c *sequencedConn) LocalAddr() string  { return c.conn.LocalAddr() }
func (c *sequencedConn) RemoteAddr() string { return c.conn.RemoteAddr() }

package dns

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// This file implements the RFC 1035 §4 wire format: the 12-byte header,
// label-sequence names with 0xC0 compression pointers, and the four
// record sections. RDATA is encoded per type — a (possibly compressed)
// name for NS/CNAME, and length-prefixed text for TXT, ADDR and TSIG.

// Header flag bits within the second 16-bit word.
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// maxMessage bounds an encoded or decoded message. Real DNS-over-UDP is
// 512 bytes with truncation; this system's frames are larger so batched
// updates fit, but the bound still rejects hostile blobs.
const maxMessage = 1 << 20

// Encode serializes the message with name compression.
func Encode(m *Message) ([]byte, error) {
	e := &encoder{buf: make([]byte, 0, 512), offsets: make(map[string]int)}

	flags := uint16(m.Opcode&0xF) << 11
	if m.Response {
		flags |= flagQR
	}
	if m.Authoritative {
		flags |= flagAA
	}
	if m.RecursionDesired {
		flags |= flagRD
	}
	if m.RecursionAvailable {
		flags |= flagRA
	}
	// The low four RCODE bits live where RFC 1035 puts them; bits 4-6
	// ride in the Z bits, standing in for the EDNS0 extended-RCODE
	// mechanism so BADSIG (16) survives the wire.
	flags |= uint16(m.RCode) & 0x7F

	e.u16(m.ID)
	e.u16(flags)
	e.u16(uint16(len(m.Questions)))
	e.u16(uint16(len(m.Answers)))
	e.u16(uint16(len(m.Authority)))
	e.u16(uint16(len(m.Additional)))

	for _, q := range m.Questions {
		if err := e.name(q.Name); err != nil {
			return nil, err
		}
		e.u16(uint16(q.Type))
		e.u16(uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if err := e.rr(rr); err != nil {
				return nil, err
			}
		}
	}
	if len(e.buf) > maxMessage {
		return nil, fmt.Errorf("%w: message exceeds %d bytes", ErrBadMessage, maxMessage)
	}
	return e.buf, nil
}

type encoder struct {
	buf     []byte
	offsets map[string]int // canonical name -> offset of its encoding
}

func (e *encoder) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// name emits a label sequence, compressing any suffix already present
// in the message with a pointer (RFC 1035 §4.1.4).
func (e *encoder) name(s string) error {
	if !ValidName(s) {
		return fmt.Errorf("%w: %q", ErrBadName, s)
	}
	for s != "" {
		if off, ok := e.offsets[s]; ok && off < 0x3FFF {
			e.u16(0xC000 | uint16(off))
			return nil
		}
		if len(e.buf) < 0x3FFF {
			e.offsets[s] = len(e.buf)
		}
		label := s
		if i := strings.IndexByte(s, '.'); i >= 0 {
			label, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		e.buf = append(e.buf, byte(len(label)))
		e.buf = append(e.buf, label...)
	}
	e.buf = append(e.buf, 0) // root label terminates
	return nil
}

func (e *encoder) rr(rr RR) error {
	if err := e.name(rr.Name); err != nil {
		return err
	}
	e.u16(uint16(rr.Type))
	e.u16(uint16(rr.Class))
	e.u32(rr.TTL)

	// Reserve RDLENGTH, then fill after encoding RDATA.
	lenAt := len(e.buf)
	e.u16(0)
	start := len(e.buf)
	switch rr.Type {
	case TypeNS, TypeCNAME:
		if err := e.name(rr.Data); err != nil {
			return err
		}
	default:
		// TXT, ADDR, SOA (presentation string), TSIG: opaque text with a
		// 16-bit length so RDATA over 255 bytes (batched TSIG MACs,
		// encoded OIDs) survives.
		if len(rr.Data) > 0xFFFF {
			return fmt.Errorf("%w: rdata too long", ErrBadMessage)
		}
		e.u16(uint16(len(rr.Data)))
		e.buf = append(e.buf, rr.Data...)
	}
	binary.BigEndian.PutUint16(e.buf[lenAt:], uint16(len(e.buf)-start))
	return nil
}

// Decode parses a wire-format message.
func Decode(b []byte) (*Message, error) {
	if len(b) > maxMessage {
		return nil, fmt.Errorf("%w: message exceeds %d bytes", ErrBadMessage, maxMessage)
	}
	d := &decoder{buf: b}
	m := &Message{}

	id := d.u16()
	flags := d.u16()
	qd := int(d.u16())
	an := int(d.u16())
	ns := int(d.u16())
	ar := int(d.u16())
	if d.err != nil {
		return nil, d.err
	}
	m.ID = id
	m.Response = flags&flagQR != 0
	m.Opcode = Opcode(flags >> 11 & 0xF)
	m.Authoritative = flags&flagAA != 0
	m.RecursionDesired = flags&flagRD != 0
	m.RecursionAvailable = flags&flagRA != 0
	m.RCode = RCode(flags & 0x7F)

	const maxRecords = 64 << 10
	if qd > maxRecords || an > maxRecords || ns > maxRecords || ar > maxRecords {
		return nil, fmt.Errorf("%w: absurd record counts", ErrBadMessage)
	}

	for i := 0; i < qd; i++ {
		q := Question{Name: d.name(), Type: Type(d.u16()), Class: Class(d.u16())}
		if d.err != nil {
			return nil, d.err
		}
		m.Questions = append(m.Questions, q)
	}
	counts := [3]int{an, ns, ar}
	sections := [3]*[]RR{&m.Answers, &m.Authority, &m.Additional}
	for i, sec := range sections {
		for j := 0; j < counts[i]; j++ {
			rr := d.rr()
			if d.err != nil {
				return nil, d.err
			}
			*sec = append(*sec, rr)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return m, nil
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrBadMessage}, args...)...)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("truncated at offset %d", d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// name reads a possibly compressed label sequence starting at the
// current offset, leaving the offset just past its in-stream encoding.
func (d *decoder) name() string {
	s, next := d.nameAt(d.off, 0)
	if d.err != nil {
		return ""
	}
	d.off = next
	return s
}

// nameAt decodes a name at off and returns it with the offset following
// the name's in-stream bytes. Compression pointers may only move the
// cursor; depth bounds pointer chains so malicious loops terminate.
func (d *decoder) nameAt(off, depth int) (string, int) {
	if depth > 16 {
		d.fail("compression pointer loop")
		return "", off
	}
	var labels []string
	total := 0
	for {
		if off >= len(d.buf) {
			d.fail("name runs past message end")
			return "", off
		}
		c := d.buf[off]
		switch {
		case c == 0:
			return strings.Join(labels, "."), off + 1
		case c&0xC0 == 0xC0:
			if off+1 >= len(d.buf) {
				d.fail("truncated compression pointer")
				return "", off
			}
			ptr := int(binary.BigEndian.Uint16(d.buf[off:]) & 0x3FFF)
			if ptr >= off {
				d.fail("forward compression pointer")
				return "", off
			}
			rest, _ := d.nameAt(ptr, depth+1)
			if d.err != nil {
				return "", off
			}
			if rest != "" {
				labels = append(labels, rest)
			}
			return strings.Join(labels, "."), off + 2
		case c&0xC0 != 0:
			d.fail("reserved label type %#x", c)
			return "", off
		default:
			n := int(c)
			if off+1+n > len(d.buf) {
				d.fail("label runs past message end")
				return "", off
			}
			total += n + 1
			if total > maxNameLen {
				d.fail("name exceeds %d bytes", maxNameLen)
				return "", off
			}
			labels = append(labels, strings.ToLower(string(d.buf[off+1:off+1+n])))
			off += 1 + n
		}
	}
}

func (d *decoder) rr() RR {
	rr := RR{Name: d.name()}
	rr.Type = Type(d.u16())
	rr.Class = Class(d.u16())
	rr.TTL = d.u32()
	rdlen := int(d.u16())
	if d.err != nil {
		return RR{}
	}
	if d.off+rdlen > len(d.buf) {
		d.fail("rdata runs past message end")
		return RR{}
	}
	end := d.off + rdlen
	switch rr.Type {
	case TypeNS, TypeCNAME:
		rr.Data = d.name()
		if d.off != end {
			d.fail("rdata length mismatch for %s", rr.Type)
		}
	default:
		n := int(d.u16())
		text := d.take(n)
		if d.err == nil && d.off != end {
			d.fail("rdata length mismatch for %s", rr.Type)
		}
		rr.Data = string(text)
	}
	return rr
}

package dns

import (
	"sync"
	"sync/atomic"
	"time"

	"gdn/internal/rpc"
	"gdn/internal/transport"
)

// OpDNS is the single RPC operation of a DNS server; the body is a
// wire-format DNS message and query/update are distinguished by the
// message opcode, as a real server distinguishes them on one port.
const OpDNS uint16 = 1

// Server is an authoritative name server hosting one or more zones.
// It answers queries (with delegation referrals for child-zone cuts)
// and applies TSIG-authenticated dynamic updates.
type Server struct {
	net  transport.Network
	addr string

	mu    sync.RWMutex
	zones map[string]*Zone

	srv *rpc.Server

	// now supplies the TSIG clock; replaceable for deterministic tests.
	now func() int64

	queries atomic.Int64
	updates atomic.Int64
}

// ServeDNS starts an authoritative server on addr.
func ServeDNS(net transport.Network, addr string, logf func(string, ...any)) (*Server, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		net:   net,
		addr:  addr,
		zones: make(map[string]*Zone),
		now:   func() int64 { return time.Now().Unix() },
	}
	srv, err := rpc.Serve(net, addr, s.handle, rpc.WithServerLog(logf))
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return s, nil
}

// Addr returns the server's transport address.
func (s *Server) Addr() string { return s.addr }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// AddZone makes the server authoritative for z.
func (s *Server) AddZone(z *Zone) {
	s.mu.Lock()
	s.zones[z.Name()] = z
	s.mu.Unlock()
}

// Zone returns a hosted zone by apex name.
func (s *Server) Zone(apex string) (*Zone, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, ok := s.zones[CanonicalName(apex)]
	return z, ok
}

// SetClock replaces the TSIG clock; tests use it to probe the time
// window.
func (s *Server) SetClock(now func() int64) { s.now = now }

// QueriesHandled and UpdatesHandled expose load counters for the
// name-service experiments.
func (s *Server) QueriesHandled() int64 { return s.queries.Load() }

// UpdatesHandled counts dynamic update messages applied.
func (s *Server) UpdatesHandled() int64 { return s.updates.Load() }

func (s *Server) handle(call *rpc.Call) ([]byte, error) {
	msg, err := Decode(call.Body)
	if err != nil {
		// A malformed message gets a FORMERR with whatever ID parsed, or
		// a zero one; it must never take the server down (paper §6.1).
		return Encode(&Message{Response: true, RCode: RCodeFormErr})
	}
	var resp *Message
	switch msg.Opcode {
	case OpcodeQuery:
		s.queries.Add(1)
		resp = s.answerQuery(msg)
	case OpcodeUpdate:
		s.updates.Add(1)
		resp = s.applyUpdate(msg)
	default:
		resp = msg.Reply()
		resp.RCode = RCodeNotImp
	}
	return Encode(resp)
}

// answerQuery resolves one question against the hosted zones: an
// authoritative answer, a delegation referral with glue, NODATA, or
// NXDOMAIN.
func (s *Server) answerQuery(msg *Message) *Message {
	resp := msg.Reply()
	if len(msg.Questions) != 1 {
		resp.RCode = RCodeFormErr
		return resp
	}
	q := msg.Questions[0]
	name := CanonicalName(q.Name)

	s.mu.RLock()
	zone := findZone(s.zones, name)
	s.mu.RUnlock()
	if zone == nil {
		resp.RCode = RCodeRefused
		return resp
	}

	// A delegation below our apex covering the name turns the response
	// into a referral: NS records in authority, their addresses as glue.
	// Querying the cut itself for its NS records stays an answer.
	if ns := zone.delegation(name); len(ns) > 0 && !(ns[0].Name == name && q.Type == TypeNS) {
		resp.Authority = ns
		resp.Additional = s.glue(zone, ns)
		return resp
	}

	resp.Authoritative = true
	answers := zone.Lookup(name, q.Type)
	if len(answers) > 0 {
		resp.Answers = answers
		return resp
	}
	if zone.nameExists(name) {
		return resp // NODATA: name exists, no records of this type
	}
	resp.RCode = RCodeNXDomain
	return resp
}

// glue collects ADDR records for referral name servers so the resolver
// can contact them without another lookup.
func (s *Server) glue(zone *Zone, ns []RR) []RR {
	var out []RR
	for _, rr := range ns {
		out = append(out, zone.Lookup(rr.Data, TypeADDR)...)
	}
	return out
}

// applyUpdate processes an RFC 2136 dynamic update. The zone section
// names the zone; the authority section carries the updates; the
// message must be TSIG-signed by a key the zone accepts.
func (s *Server) applyUpdate(msg *Message) *Message {
	resp := msg.Reply()
	if len(msg.Questions) != 1 {
		resp.RCode = RCodeFormErr
		return resp
	}
	apex := CanonicalName(msg.Questions[0].Name)

	s.mu.RLock()
	zone := s.zones[apex]
	s.mu.RUnlock()
	if zone == nil {
		resp.RCode = RCodeNotAuth
		return resp
	}

	_, stripped, err := VerifyTSIG(msg, zone.updateKey, s.now())
	if err != nil {
		resp.RCode = RCodeBadSig
		return resp
	}
	if err := zone.Apply(stripped.Authority); err != nil {
		resp.RCode = RCodeRefused
		return resp
	}
	return resp
}

// NewUpdate builds an unsigned RFC 2136 update message for a zone.
// Append records with AddInsert/AddDeleteRRset/AddDeleteRR, then sign
// with SignTSIG and send through a resolver or client.
func NewUpdate(zone string) *Message {
	return &Message{
		Opcode:    OpcodeUpdate,
		Questions: []Question{{Name: CanonicalName(zone), Type: TypeSOA, Class: ClassIN}},
	}
}

// AddInsert appends an add-record operation to an update message.
func AddInsert(m *Message, rr RR) {
	rr.Name = CanonicalName(rr.Name)
	rr.Class = ClassIN
	m.Authority = append(m.Authority, rr)
}

// AddDeleteRRset appends a delete-RRset operation.
func AddDeleteRRset(m *Message, name string, t Type) {
	m.Authority = append(m.Authority, RR{Name: CanonicalName(name), Type: t, Class: ClassANY})
}

// AddDeleteRR appends a delete-exact-record operation.
func AddDeleteRR(m *Message, rr RR) {
	rr.Name = CanonicalName(rr.Name)
	rr.Class = ClassNone
	rr.TTL = 0
	m.Authority = append(m.Authority, rr)
}

package dns

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Zone is one authoritative zone: a name, the records at and below its
// apex, and the TSIG keys allowed to update it dynamically. Zones are
// safe for concurrent use.
type Zone struct {
	name string

	mu     sync.RWMutex
	rrsets map[string]map[Type][]RR // owner -> type -> records
	serial uint32
	keys   map[string][]byte // TSIG key name -> secret
}

// NewZone creates an empty zone for the canonical name.
func NewZone(name string) *Zone {
	return &Zone{
		name:   CanonicalName(name),
		rrsets: make(map[string]map[Type][]RR),
		keys:   make(map[string][]byte),
	}
}

// Name returns the zone apex.
func (z *Zone) Name() string { return z.name }

// Serial returns the zone serial, incremented by every applied update.
func (z *Zone) Serial() uint32 {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.serial
}

// AllowUpdate registers a TSIG key permitted to send dynamic updates.
func (z *Zone) AllowUpdate(keyName string, secret []byte) {
	z.mu.Lock()
	z.keys[CanonicalName(keyName)] = append([]byte(nil), secret...)
	z.mu.Unlock()
}

// updateKey returns the secret for a TSIG key name, if registered.
func (z *Zone) updateKey(keyName string) ([]byte, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	k, ok := z.keys[CanonicalName(keyName)]
	return k, ok
}

// Add inserts a record, deduplicating byte-identical ones. It is the
// static-configuration path; dynamic traffic goes through Apply.
func (z *Zone) Add(rr RR) error {
	rr.Name = CanonicalName(rr.Name)
	if !ValidName(rr.Name) {
		return fmt.Errorf("%w: %q", ErrBadName, rr.Name)
	}
	if !InZone(rr.Name, z.name) {
		return fmt.Errorf("dns: %q is outside zone %q", rr.Name, z.name)
	}
	if rr.Class == 0 {
		rr.Class = ClassIN
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	z.add(rr)
	return nil
}

func (z *Zone) add(rr RR) {
	types := z.rrsets[rr.Name]
	if types == nil {
		types = make(map[Type][]RR)
		z.rrsets[rr.Name] = types
	}
	for _, have := range types[rr.Type] {
		if have == rr {
			return
		}
	}
	types[rr.Type] = append(types[rr.Type], rr)
}

// removeRRset deletes all records of one type at a name; TypeANY deletes
// every type.
func (z *Zone) removeRRset(name string, t Type) {
	types := z.rrsets[name]
	if types == nil {
		return
	}
	if t == TypeANY {
		delete(z.rrsets, name)
		return
	}
	delete(types, t)
	if len(types) == 0 {
		delete(z.rrsets, name)
	}
}

// removeRR deletes one exact record (name, type, data).
func (z *Zone) removeRR(rr RR) {
	types := z.rrsets[rr.Name]
	if types == nil {
		return
	}
	kept := types[rr.Type][:0]
	for _, have := range types[rr.Type] {
		if have.Data != rr.Data {
			kept = append(kept, have)
		}
	}
	if len(kept) == 0 {
		delete(types, rr.Type)
	} else {
		types[rr.Type] = kept
	}
	if len(types) == 0 {
		delete(z.rrsets, rr.Name)
	}
}

// Lookup returns the records of one type at a name. A TypeANY query
// returns every record at the name.
func (z *Zone) Lookup(name string, t Type) []RR {
	name = CanonicalName(name)
	z.mu.RLock()
	defer z.mu.RUnlock()
	types := z.rrsets[name]
	if types == nil {
		return nil
	}
	if t == TypeANY {
		var all []RR
		for _, rrs := range types {
			all = append(all, rrs...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Type != all[j].Type {
				return all[i].Type < all[j].Type
			}
			return all[i].Data < all[j].Data
		})
		return all
	}
	return append([]RR(nil), types[t]...)
}

// nameExists reports whether any record exists at the name.
func (z *Zone) nameExists(name string) bool {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return len(z.rrsets[name]) > 0
}

// delegation finds the closest enclosing delegation point strictly
// below the apex, covering name: the NS records of a child zone cut.
func (z *Zone) delegation(name string) []RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	for cut := name; cut != z.name && cut != ""; cut = Parent(cut) {
		if !InZone(cut, z.name) {
			break
		}
		if ns := z.rrsets[cut][TypeNS]; len(ns) > 0 {
			return append([]RR(nil), ns...)
		}
	}
	return nil
}

// Apply executes the update section of an RFC 2136 message: class IN
// adds a record, class ANY deletes an RRset, class NONE deletes an
// exact record. All prerequisites were already checked by the caller.
// The zone serial increases once per applied message, which the naming
// authority's batching relies on to measure one batch as one update.
func (z *Zone) Apply(updates []RR) error {
	z.mu.Lock()
	defer z.mu.Unlock()
	for _, rr := range updates {
		rr.Name = CanonicalName(rr.Name)
		if !InZone(rr.Name, z.name) {
			return fmt.Errorf("dns: update for %q outside zone %q", rr.Name, z.name)
		}
		switch rr.Class {
		case ClassIN:
			z.add(rr)
		case ClassANY:
			z.removeRRset(rr.Name, rr.Type)
		case ClassNone:
			z.removeRR(rr)
		default:
			return fmt.Errorf("dns: update class %v unsupported", rr.Class)
		}
	}
	z.serial++
	return nil
}

// Dump returns every record in the zone, sorted for stable comparison;
// tests and zone-transfer-style checkpoints use it.
func (z *Zone) Dump() []RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var all []RR
	for _, types := range z.rrsets {
		for _, rrs := range types {
			all = append(all, rrs...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Name != all[j].Name {
			return all[i].Name < all[j].Name
		}
		if all[i].Type != all[j].Type {
			return all[i].Type < all[j].Type
		}
		return all[i].Data < all[j].Data
	})
	return all
}

// Names returns the owner names present in the zone, sorted.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	names := make([]string, 0, len(z.rrsets))
	for n := range z.rrsets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// findZone returns the registered zone with the longest apex matching
// name, mimicking a server choosing its closest enclosing authority.
func findZone(zones map[string]*Zone, name string) *Zone {
	var best *Zone
	for apex, z := range zones {
		if !InZone(name, apex) {
			continue
		}
		if best == nil || len(apex) > len(best.name) {
			best = z
		}
	}
	return best
}

// zoneless reports a helpful diagnostic listing known apexes.
func zoneless(zones map[string]*Zone, name string) error {
	apexes := make([]string, 0, len(zones))
	for apex := range zones {
		apexes = append(apexes, apex)
	}
	sort.Strings(apexes)
	return fmt.Errorf("dns: not authoritative for %q (zones: %s)", name, strings.Join(apexes, ", "))
}

package dns

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gdn/internal/netsim"
)

func TestCanonicalAndValidNames(t *testing.T) {
	cases := []struct {
		in    string
		canon string
		valid bool
	}{
		{"WWW.CS.VU.NL.", "www.cs.vu.nl", true},
		{"", "", true},
		{".", "", true},
		{"a..b", "a..b", false},
		{strings.Repeat("x", 64) + ".nl", strings.Repeat("x", 64) + ".nl", false},
		{"gimp.gdn.cs.vu.nl", "gimp.gdn.cs.vu.nl", true},
	}
	for _, c := range cases {
		got := CanonicalName(c.in)
		if got != c.canon {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.canon)
		}
		if ValidName(got) != c.valid {
			t.Errorf("ValidName(%q) = %v, want %v", got, !c.valid, c.valid)
		}
	}
}

func TestInZone(t *testing.T) {
	cases := []struct {
		name, zone string
		want       bool
	}{
		{"gimp.gdn.cs.vu.nl", "gdn.cs.vu.nl", true},
		{"gdn.cs.vu.nl", "gdn.cs.vu.nl", true},
		{"cs.vu.nl", "gdn.cs.vu.nl", false},
		{"evilgdn.cs.vu.nl", "gdn.cs.vu.nl", false},
		{"anything.at.all", "", true},
	}
	for _, c := range cases {
		if got := InZone(c.name, c.zone); got != c.want {
			t.Errorf("InZone(%q, %q) = %v, want %v", c.name, c.zone, got, c.want)
		}
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		ID:            4242,
		Response:      true,
		Opcode:        OpcodeQuery,
		Authoritative: true,
		RCode:         RCodeOK,
		Questions:     []Question{{Name: "gimp.gdn.cs.vu.nl", Type: TypeTXT, Class: ClassIN}},
		Answers: []RR{
			{Name: "gimp.gdn.cs.vu.nl", Type: TypeTXT, Class: ClassIN, TTL: 300, Data: "oid=cafebabe"},
		},
		Authority: []RR{
			{Name: "gdn.cs.vu.nl", Type: TypeNS, Class: ClassIN, TTL: 3600, Data: "ns1.gdn.cs.vu.nl"},
		},
		Additional: []RR{
			{Name: "ns1.gdn.cs.vu.nl", Type: TypeADDR, Class: ClassIN, TTL: 3600, Data: "eu-nl-vu:dns"},
		},
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
	}
}

func TestNameCompressionShrinksMessages(t *testing.T) {
	// Four records sharing a long suffix must encode smaller than four
	// copies of the full name.
	m := &Message{Questions: []Question{{Name: "a.very.long.zone.example", Type: TypeTXT, Class: ClassIN}}}
	for _, label := range []string{"b", "c", "d"} {
		m.Answers = append(m.Answers, RR{
			Name: label + ".very.long.zone.example", Type: TypeTXT, Class: ClassIN, TTL: 1, Data: "x",
		})
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	uncompressed := len("a.very.long.zone.example") * 4
	if len(b) >= uncompressed+12+4*12 {
		t.Fatalf("compression ineffective: %d bytes", len(b))
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[2].Name != "d.very.long.zone.example" {
		t.Fatalf("decompressed name = %q", got.Answers[2].Name)
	}
}

func TestDecodeRejectsPointerLoops(t *testing.T) {
	// Hand-craft a message whose name is a self-referencing pointer.
	b := make([]byte, 16)
	b[5] = 1 // QDCOUNT = 1
	b[12] = 0xC0
	b[13] = 12 // pointer to itself
	if _, err := Decode(b); err == nil {
		t.Fatal("self-referencing compression pointer must fail")
	}
}

func TestDecodeFuzzSafety(t *testing.T) {
	// Decoding arbitrary bytes must never panic — servers face hostile
	// traffic (paper §6.1).
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rnd.Intn(120))
		rnd.Read(b)
		Decode(b) // outcome irrelevant; must not panic
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(id uint16, ttl uint32, data string) bool {
		if len(data) > 1000 {
			return true
		}
		m := &Message{
			ID:        id,
			Questions: []Question{{Name: "pkg.gdn.cs.vu.nl", Type: TypeTXT, Class: ClassIN}},
			Answers:   []RR{{Name: "pkg.gdn.cs.vu.nl", Type: TypeTXT, Class: ClassIN, TTL: ttl, Data: data}},
		}
		b, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(b)
		return err == nil && reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZoneAddLookupDelete(t *testing.T) {
	z := NewZone("gdn.cs.vu.nl")
	rr := RR{Name: "gimp.gdn.cs.vu.nl", Type: TypeTXT, TTL: 300, Data: "oid=1"}
	if err := z.Add(rr); err != nil {
		t.Fatal(err)
	}
	if err := z.Add(rr); err != nil {
		t.Fatal(err)
	}
	if got := z.Lookup("GIMP.gdn.cs.vu.nl", TypeTXT); len(got) != 1 {
		t.Fatalf("lookup = %v, want 1 deduplicated record", got)
	}
	if err := z.Add(RR{Name: "other.example", Type: TypeTXT}); err == nil {
		t.Fatal("out-of-zone add must fail")
	}

	if err := z.Apply([]RR{{Name: "gimp.gdn.cs.vu.nl", Type: TypeTXT, Class: ClassANY}}); err != nil {
		t.Fatal(err)
	}
	if got := z.Lookup("gimp.gdn.cs.vu.nl", TypeTXT); len(got) != 0 {
		t.Fatalf("after delete: %v", got)
	}
	if z.Serial() != 1 {
		t.Fatalf("serial = %d, want 1", z.Serial())
	}
}

func TestZoneApplyClasses(t *testing.T) {
	z := NewZone("zone")
	adds := []RR{
		{Name: "n.zone", Type: TypeTXT, Class: ClassIN, TTL: 5, Data: "one"},
		{Name: "n.zone", Type: TypeTXT, Class: ClassIN, TTL: 5, Data: "two"},
	}
	if err := z.Apply(adds); err != nil {
		t.Fatal(err)
	}
	// Delete exact record "one"; "two" must remain.
	if err := z.Apply([]RR{{Name: "n.zone", Type: TypeTXT, Class: ClassNone, Data: "one"}}); err != nil {
		t.Fatal(err)
	}
	got := z.Lookup("n.zone", TypeTXT)
	if len(got) != 1 || got[0].Data != "two" {
		t.Fatalf("after exact delete: %v", got)
	}
	if err := z.Apply([]RR{{Name: "n.zone", Type: TypeANY, Class: ClassANY}}); err != nil {
		t.Fatal(err)
	}
	if z.nameExists("n.zone") {
		t.Fatal("name must vanish after delete-all")
	}
}

func TestTSIGSignVerify(t *testing.T) {
	secret := []byte("shared-secret")
	msg := NewUpdate("gdn.cs.vu.nl")
	AddInsert(msg, RR{Name: "p.gdn.cs.vu.nl", Type: TypeTXT, TTL: 60, Data: "oid=2"})
	if err := SignTSIG(msg, "na-key", secret, 1000); err != nil {
		t.Fatal(err)
	}

	lookup := func(name string) ([]byte, bool) {
		if name == "na-key" {
			return secret, true
		}
		return nil, false
	}
	key, stripped, err := VerifyTSIG(msg, lookup, 1000+TSIGFudge-1)
	if err != nil {
		t.Fatal(err)
	}
	if key != "na-key" {
		t.Fatalf("key = %q", key)
	}
	if len(stripped.Additional) != 0 {
		t.Fatal("tsig must be stripped")
	}

	// Outside the time window.
	if _, _, err := VerifyTSIG(msg, lookup, 1000+TSIGFudge+1); err == nil {
		t.Fatal("stale signature must fail")
	}
	// Wrong key.
	badLookup := func(string) ([]byte, bool) { return []byte("other"), true }
	if _, _, err := VerifyTSIG(msg, badLookup, 1000); err == nil {
		t.Fatal("wrong key must fail")
	}
	// Tampered content.
	tampered := *msg
	tampered.Authority = append([]RR(nil), msg.Authority...)
	tampered.Authority[0].Data = "oid=EVIL"
	if _, _, err := VerifyTSIG(&tampered, lookup, 1000); err == nil {
		t.Fatal("tampered update must fail")
	}
}

// dnsWorld starts a root server delegating "vu.nl" to a second server
// which hosts the GDN zone beneath it.
func dnsWorld(t *testing.T) (*netsim.Network, *Server, *Server, *Resolver) {
	t.Helper()
	net := netsim.New(nil)
	net.AddSite("root-site", "core", "core")
	net.AddSite("eu-nl-vu", "eu-nl", "eu")
	net.AddSite("us-client", "us-ca", "us")

	rootSrv, err := ServeDNS(net, "root-site:dns", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rootSrv.Close() })
	rootZone := NewZone("")
	if err := rootZone.Add(RR{Name: "vu.nl", Type: TypeNS, TTL: 3600, Data: "ns1.vu.nl"}); err != nil {
		t.Fatal(err)
	}
	if err := rootZone.Add(RR{Name: "ns1.vu.nl", Type: TypeADDR, TTL: 3600, Data: "eu-nl-vu:dns"}); err != nil {
		t.Fatal(err)
	}
	rootSrv.AddZone(rootZone)

	vuSrv, err := ServeDNS(net, "eu-nl-vu:dns", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vuSrv.Close() })
	gdnZone := NewZone("gdn.cs.vu.nl")
	if err := gdnZone.Add(RR{Name: "gimp.gdn.cs.vu.nl", Type: TypeTXT, TTL: 300, Data: "oid=deadbeef"}); err != nil {
		t.Fatal(err)
	}
	vuSrv.AddZone(NewZone("vu.nl"))
	vuSrv.AddZone(gdnZone)

	res := NewResolver(net, "us-client", []string{"root-site:dns"})
	t.Cleanup(func() { res.Close() })
	return net, rootSrv, vuSrv, res
}

func TestIterativeResolutionFollowsReferral(t *testing.T) {
	_, rootSrv, vuSrv, res := dnsWorld(t)

	texts, result, err := res.QueryTXT("gimp.gdn.cs.vu.nl")
	if err != nil {
		t.Fatal(err)
	}
	if len(texts) != 1 || texts[0] != "oid=deadbeef" {
		t.Fatalf("texts = %v", texts)
	}
	if result.Cost <= 0 {
		t.Fatal("resolution must report network cost")
	}
	if rootSrv.QueriesHandled() == 0 || vuSrv.QueriesHandled() == 0 {
		t.Fatal("both servers must have been consulted")
	}
}

func TestResolverCaching(t *testing.T) {
	_, _, _, res := dnsWorld(t)

	if _, r1, err := res.QueryTXT("gimp.gdn.cs.vu.nl"); err != nil || r1.FromCache {
		t.Fatalf("first query: err=%v fromCache=%v", err, r1.FromCache)
	}
	_, r2, err := res.QueryTXT("gimp.gdn.cs.vu.nl")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.FromCache || r2.Cost != 0 {
		t.Fatalf("second query must hit the cache: %+v", r2)
	}

	// TTL is 300s: after 301 virtual seconds the entry expires.
	res.Advance(301 * time.Second)
	_, r3, err := res.QueryTXT("gimp.gdn.cs.vu.nl")
	if err != nil {
		t.Fatal(err)
	}
	if r3.FromCache {
		t.Fatal("expired entry must not be served")
	}

	res.CacheEnabled = false
	res.FlushCache()
	before := res.QueriesSent()
	for i := 0; i < 3; i++ {
		if _, _, err := res.QueryTXT("gimp.gdn.cs.vu.nl"); err != nil {
			t.Fatal(err)
		}
	}
	if sent := res.QueriesSent() - before; sent < 3 {
		t.Fatalf("cache disabled: %d messages for 3 queries", sent)
	}
}

func TestNXDomainAndNodata(t *testing.T) {
	_, _, _, res := dnsWorld(t)

	r, err := res.Query("nosuch.gdn.cs.vu.nl", TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if r.RCode != RCodeNXDomain {
		t.Fatalf("rcode = %v, want NXDOMAIN", r.RCode)
	}

	// The name exists but has no ADDR records: NODATA (NOERROR, empty).
	r, err = res.Query("gimp.gdn.cs.vu.nl", TypeADDR)
	if err != nil {
		t.Fatal(err)
	}
	if r.RCode != RCodeOK || len(r.RRs) != 0 {
		t.Fatalf("nodata = %+v", r)
	}
}

func TestDynamicUpdateEndToEnd(t *testing.T) {
	_, _, vuSrv, res := dnsWorld(t)
	zone, _ := vuSrv.Zone("gdn.cs.vu.nl")
	secret := []byte("naming-authority-key")
	zone.AllowUpdate("na", secret)
	vuSrv.SetClock(func() int64 { return 5000 })

	// A properly signed update adds a name.
	up := NewUpdate("gdn.cs.vu.nl")
	AddInsert(up, RR{Name: "tetex.gdn.cs.vu.nl", Type: TypeTXT, TTL: 300, Data: "oid=feedface"})
	if err := SignTSIG(up, "na", secret, 5000); err != nil {
		t.Fatal(err)
	}
	resp, _, err := res.Send("eu-nl-vu:dns", up)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != RCodeOK {
		t.Fatalf("update rcode = %v", resp.RCode)
	}
	texts, _, err := res.QueryTXT("tetex.gdn.cs.vu.nl")
	if err != nil || len(texts) != 1 || texts[0] != "oid=feedface" {
		t.Fatalf("texts=%v err=%v", texts, err)
	}

	// An unsigned update is rejected.
	unsigned := NewUpdate("gdn.cs.vu.nl")
	AddInsert(unsigned, RR{Name: "evil.gdn.cs.vu.nl", Type: TypeTXT, TTL: 300, Data: "oid=0"})
	resp, _, err = res.Send("eu-nl-vu:dns", unsigned)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != RCodeBadSig {
		t.Fatalf("unsigned update rcode = %v, want BADSIG", resp.RCode)
	}

	// A forged signature is rejected.
	forged := NewUpdate("gdn.cs.vu.nl")
	AddInsert(forged, RR{Name: "evil.gdn.cs.vu.nl", Type: TypeTXT, TTL: 300, Data: "oid=0"})
	if err := SignTSIG(forged, "na", []byte("wrong"), 5000); err != nil {
		t.Fatal(err)
	}
	resp, _, err = res.Send("eu-nl-vu:dns", forged)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != RCodeBadSig {
		t.Fatalf("forged update rcode = %v, want BADSIG", resp.RCode)
	}
	if zone.nameExists("evil.gdn.cs.vu.nl") {
		t.Fatal("rejected updates must not change the zone")
	}
}

func TestBatchedUpdateIsOneTransaction(t *testing.T) {
	_, _, vuSrv, res := dnsWorld(t)
	zone, _ := vuSrv.Zone("gdn.cs.vu.nl")
	secret := []byte("k")
	zone.AllowUpdate("na", secret)
	vuSrv.SetClock(func() int64 { return 0 })

	up := NewUpdate("gdn.cs.vu.nl")
	for i := 0; i < 20; i++ {
		AddInsert(up, RR{
			Name: "pkg" + string(rune('a'+i)) + ".gdn.cs.vu.nl",
			Type: TypeTXT, TTL: 300, Data: "oid=x",
		})
	}
	if err := SignTSIG(up, "na", secret, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Send("eu-nl-vu:dns", up); err != nil {
		t.Fatal(err)
	}
	if got := zone.Serial(); got != 1 {
		t.Fatalf("serial = %d: a batch must be one transaction", got)
	}
	if got := vuSrv.UpdatesHandled(); got != 1 {
		t.Fatalf("updates handled = %d", got)
	}
}

func TestServerRefusesForeignNames(t *testing.T) {
	_, _, _, res := dnsWorld(t)
	// The vu server knows nothing about .com.
	resp, _, err := res.Send("eu-nl-vu:dns", &Message{
		Opcode:    OpcodeQuery,
		Questions: []Question{{Name: "example.com", Type: TypeTXT, Class: ClassIN}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != RCodeRefused {
		t.Fatalf("rcode = %v, want REFUSED", resp.RCode)
	}
}

func TestServerSurvivesGarbage(t *testing.T) {
	net := netsim.New(nil)
	net.AddSite("s", "d", "r")
	srv, err := ServeDNS(net, "s:dns", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res := NewResolver(net, "s", []string{"s:dns"})
	defer res.Close()
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		garbage := make([]byte, rnd.Intn(64))
		rnd.Read(garbage)
		// Raw call below the Message layer.
		respBody, _, err := resolverRawCall(res, "s:dns", garbage)
		if err != nil {
			t.Fatalf("server must answer garbage, got transport error: %v", err)
		}
		if resp, err := Decode(respBody); err == nil && resp.RCode == RCodeOK && len(garbage) > 0 {
			// Tolerated: some garbage happens to be a valid empty query.
			_ = resp
		}
	}
}

// resolverRawCall sends raw bytes as the DNS op, bypassing Encode.
func resolverRawCall(r *Resolver, addr string, body []byte) ([]byte, time.Duration, error) {
	return r.client(addr).Call(OpDNS, body)
}

package dns

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gdn/internal/rpc"
	"gdn/internal/transport"
)

// Resolver is a caching stub resolver. It iterates from configured root
// servers, following delegation referrals, and caches answers by TTL —
// the behaviour the paper's GNS design depends on: "DNS ... allows ...
// caching entries at client-side resolvers and ... replicating parts of
// the database on multiple machines" (§5).
//
// Time for cache expiry is virtual: the resolver's clock only advances
// when the caller calls Advance, so simulations control TTL behaviour
// deterministically. Resolvers are safe for concurrent use.
type Resolver struct {
	net   transport.Network
	site  string
	roots []string

	// CacheEnabled controls positive and negative caching; the E7
	// experiment compares resolution cost with and without it.
	CacheEnabled bool

	mu      sync.Mutex
	clients map[string]*rpc.Client
	cache   map[cacheKey]cacheEntry
	clock   time.Duration
	rnd     *rand.Rand

	queriesSent int64
	cacheHits   int64
}

type cacheKey struct {
	name string
	t    Type
}

type cacheEntry struct {
	rrs      []RR
	rcode    RCode
	expireAt time.Duration
}

// negativeTTL is how long NXDOMAIN/NODATA answers are cached.
const negativeTTL = 60 * time.Second

// NewResolver returns a caching resolver at site using the given root
// server addresses.
func NewResolver(net transport.Network, site string, roots []string) *Resolver {
	return &Resolver{
		net:          net,
		site:         site,
		roots:        append([]string(nil), roots...),
		CacheEnabled: true,
		clients:      make(map[string]*rpc.Client),
		cache:        make(map[cacheKey]cacheEntry),
		rnd:          rand.New(rand.NewSource(1)),
	}
}

// Close releases pooled connections.
func (r *Resolver) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.clients {
		c.Close()
	}
	r.clients = make(map[string]*rpc.Client)
	return nil
}

// Advance moves the resolver's virtual clock forward, expiring cache
// entries whose TTL has passed.
func (r *Resolver) Advance(d time.Duration) {
	r.mu.Lock()
	r.clock += d
	r.mu.Unlock()
}

// FlushCache drops all cached entries.
func (r *Resolver) FlushCache() {
	r.mu.Lock()
	r.cache = make(map[cacheKey]cacheEntry)
	r.mu.Unlock()
}

// QueriesSent counts messages actually sent to servers; CacheHits
// counts questions answered locally.
func (r *Resolver) QueriesSent() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queriesSent
}

// CacheHits counts questions answered from the local cache.
func (r *Resolver) CacheHits() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cacheHits
}

func (r *Resolver) client(addr string) *rpc.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.clients[addr]
	if !ok {
		c = rpc.NewClient(r.net, r.site, addr)
		r.clients[addr] = c
	}
	return c
}

func (r *Resolver) cacheGet(name string, t Type) (cacheEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.CacheEnabled {
		return cacheEntry{}, false
	}
	e, ok := r.cache[cacheKey{name, t}]
	if !ok || e.expireAt <= r.clock {
		return cacheEntry{}, false
	}
	r.cacheHits++
	return e, true
}

func (r *Resolver) cachePut(name string, t Type, rrs []RR, rcode RCode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.CacheEnabled {
		return
	}
	ttl := negativeTTL
	if len(rrs) > 0 {
		min := rrs[0].TTL
		for _, rr := range rrs {
			if rr.TTL < min {
				min = rr.TTL
			}
		}
		ttl = time.Duration(min) * time.Second
	}
	if ttl <= 0 {
		return
	}
	r.cache[cacheKey{name, t}] = cacheEntry{rrs: rrs, rcode: rcode, expireAt: r.clock + ttl}
}

// Result is the outcome of one resolution.
type Result struct {
	RRs   []RR
	RCode RCode
	// Cost is the virtual network cost of the messages sent; zero when
	// the cache answered.
	Cost time.Duration
	// FromCache reports whether the local cache supplied the answer.
	FromCache bool
}

// maxChase bounds referral chains so delegation loops terminate.
const maxChase = 16

// Query resolves one question iteratively.
func (r *Resolver) Query(name string, t Type) (Result, error) {
	name = CanonicalName(name)
	if !ValidName(name) {
		return Result{}, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if e, ok := r.cacheGet(name, t); ok {
		return Result{RRs: e.rrs, RCode: e.rcode, FromCache: true}, nil
	}

	servers := r.roots
	var total time.Duration
	for hop := 0; hop < maxChase; hop++ {
		if len(servers) == 0 {
			return Result{Cost: total}, fmt.Errorf("dns: no servers to ask for %q", name)
		}
		addr := servers[r.pick(len(servers))]
		resp, cost, err := r.exchange(addr, &Message{
			ID:        uint16(r.pick(1 << 16)),
			Opcode:    OpcodeQuery,
			Questions: []Question{{Name: name, Type: t, Class: ClassIN}},
		})
		total += cost
		if err != nil {
			return Result{Cost: total}, fmt.Errorf("dns: query %s at %s: %w", name, addr, err)
		}

		switch {
		case resp.RCode == RCodeNXDomain, resp.RCode == RCodeOK && len(resp.Answers) > 0,
			resp.RCode == RCodeOK && resp.Authoritative && len(resp.Authority) == 0:
			// Terminal: an answer, NXDOMAIN, or an authoritative NODATA.
			r.cachePut(name, t, resp.Answers, resp.RCode)
			return Result{RRs: resp.Answers, RCode: resp.RCode, Cost: total}, nil
		case resp.RCode == RCodeOK && len(resp.Authority) > 0:
			// Referral: chase the delegation using supplied glue.
			next := referralServers(resp)
			if len(next) == 0 {
				return Result{Cost: total}, fmt.Errorf("dns: glueless referral for %q at %s", name, addr)
			}
			servers = next
		default:
			return Result{RCode: resp.RCode, Cost: total},
				fmt.Errorf("dns: server %s answered %v for %q", addr, resp.RCode, name)
		}
	}
	return Result{Cost: total}, fmt.Errorf("dns: referral chain for %q exceeds %d hops", name, maxChase)
}

// QueryTXT resolves the TXT records at a name and returns their data.
func (r *Resolver) QueryTXT(name string) ([]string, Result, error) {
	res, err := r.Query(name, TypeTXT)
	if err != nil {
		return nil, res, err
	}
	if res.RCode != RCodeOK {
		return nil, res, fmt.Errorf("dns: %s: %v", name, res.RCode)
	}
	var texts []string
	for _, rr := range res.RRs {
		texts = append(texts, rr.Data)
	}
	return texts, res, nil
}

// Send delivers an arbitrary pre-built message (e.g. a signed dynamic
// update) to one server address and returns the decoded response.
func (r *Resolver) Send(addr string, msg *Message) (*Message, time.Duration, error) {
	return r.exchange(addr, msg)
}

func (r *Resolver) exchange(addr string, msg *Message) (*Message, time.Duration, error) {
	body, err := Encode(msg)
	if err != nil {
		return nil, 0, err
	}
	r.mu.Lock()
	r.queriesSent++
	r.mu.Unlock()
	respBody, cost, err := r.client(addr).Call(OpDNS, body)
	if err != nil {
		return nil, cost, err
	}
	resp, err := Decode(respBody)
	if err != nil {
		return nil, cost, err
	}
	return resp, cost, nil
}

func (r *Resolver) pick(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rnd.Intn(n)
}

// referralServers extracts the next server addresses from a referral:
// glue ADDR records matching the authority NS names.
func referralServers(resp *Message) []string {
	var out []string
	for _, ns := range resp.Authority {
		if ns.Type != TypeNS {
			continue
		}
		for _, g := range resp.Additional {
			if g.Type == TypeADDR && g.Name == CanonicalName(ns.Data) {
				out = append(out, g.Data)
			}
		}
	}
	return out
}

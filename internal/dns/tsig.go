package dns

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
)

// TSIG transaction signatures, after RFC 2845: the paper secures the
// path from its GNS Naming Authority to the BIND name servers with
// "BIND's TSIG security feature" (§6.3). A TSIG record is appended as
// the final additional record; its MAC is an HMAC-SHA256 over the
// message as it was before the TSIG was added, keyed by a secret the
// server shares with the signer.
//
// The RDATA is carried in presentation form:
//
//	algorithm|timeSigned|fudge|hex(mac)
//
// with the key name as the record's owner name.

// tsigAlgorithm is the only supported algorithm.
const tsigAlgorithm = "hmac-sha256"

// TSIGFudge is the permitted clock skew, in seconds, between signing
// and verification.
const TSIGFudge = 300

// SignTSIG appends a TSIG record over msg using the key. The message
// must not already carry a TSIG. now is the signing time in Unix
// seconds; callers pass a clock so tests and simulations are
// deterministic.
func SignTSIG(msg *Message, keyName string, secret []byte, now int64) error {
	if sig, _ := msg.TSIG(); sig != nil {
		return fmt.Errorf("dns: message already signed")
	}
	mac, err := tsigMAC(msg, keyName, secret, now)
	if err != nil {
		return err
	}
	msg.Additional = append(msg.Additional, RR{
		Name:  CanonicalName(keyName),
		Type:  TypeTSIG,
		Class: ClassANY,
		Data:  fmt.Sprintf("%s|%d|%d|%s", tsigAlgorithm, now, TSIGFudge, hex.EncodeToString(mac)),
	})
	return nil
}

// VerifyTSIG checks the trailing TSIG of msg against the secret for its
// key name, which lookupKey supplies ("" data, false when unknown). It
// returns the verified key name and the message with the TSIG stripped.
func VerifyTSIG(msg *Message, lookupKey func(keyName string) ([]byte, bool), now int64) (string, *Message, error) {
	sig, stripped := msg.TSIG()
	if sig == nil {
		return "", msg, fmt.Errorf("dns: message is not signed")
	}
	var alg string
	var timeSigned, fudge int64
	var macHex string
	parts := strings.SplitN(sig.Data, "|", 4)
	if len(parts) != 4 {
		return "", msg, fmt.Errorf("%w: bad tsig rdata", ErrBadMessage)
	}
	alg = parts[0]
	if _, err := fmt.Sscanf(parts[1], "%d", &timeSigned); err != nil {
		return "", msg, fmt.Errorf("%w: bad tsig time", ErrBadMessage)
	}
	if _, err := fmt.Sscanf(parts[2], "%d", &fudge); err != nil {
		return "", msg, fmt.Errorf("%w: bad tsig fudge", ErrBadMessage)
	}
	macHex = parts[3]

	if alg != tsigAlgorithm {
		return "", msg, fmt.Errorf("dns: tsig algorithm %q unsupported", alg)
	}
	if now < timeSigned-fudge || now > timeSigned+fudge {
		return "", msg, fmt.Errorf("dns: tsig outside time window")
	}
	secret, ok := lookupKey(sig.Name)
	if !ok {
		return "", msg, fmt.Errorf("dns: unknown tsig key %q", sig.Name)
	}
	want, err := tsigMAC(stripped, sig.Name, secret, timeSigned)
	if err != nil {
		return "", msg, err
	}
	got, err := hex.DecodeString(macHex)
	if err != nil {
		return "", msg, fmt.Errorf("%w: bad tsig mac encoding", ErrBadMessage)
	}
	if !hmac.Equal(want, got) {
		return "", msg, fmt.Errorf("dns: tsig verification failed for key %q", sig.Name)
	}
	return sig.Name, stripped, nil
}

// tsigMAC computes the HMAC over the encoded unsigned message, the key
// name and the signing time.
func tsigMAC(msg *Message, keyName string, secret []byte, timeSigned int64) ([]byte, error) {
	encoded, err := Encode(msg)
	if err != nil {
		return nil, err
	}
	h := hmac.New(sha256.New, secret)
	h.Write(encoded)
	h.Write([]byte(CanonicalName(keyName)))
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(timeSigned))
	h.Write(ts[:])
	return h.Sum(nil), nil
}

// Package dns is a from-scratch miniature Domain Name System: the
// substrate the paper's prototype Globe Name Service is built on (§5).
// The paper runs BIND8 with dynamic updates and TSIG transaction
// signatures; this package reproduces the pieces of that stack the GNS
// exercises — the RFC 1034/1035 data model and wire format with name
// compression, authoritative servers with zones and delegation
// referrals, a caching stub resolver, RFC 2136 dynamic UPDATE, and
// TSIG-style HMAC transaction signatures (see DESIGN.md §2).
//
// One deliberate substitution: where real DNS stores IPv4 addresses in A
// records, this system stores transport addresses ("site:service"
// strings) in ADDR records, a private-use type. Everything else follows
// the RFCs' shapes, including the 12-byte header, question and resource
// record layouts, and 0xC0-prefixed compression pointers.
package dns

import (
	"errors"
	"fmt"
	"strings"
)

// Type is a resource record type code.
type Type uint16

// Record types used by the GDN. Values match RFC 1035 where the type
// exists there; ADDR is from the private-use range.
const (
	TypeNone  Type = 0
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeTXT   Type = 16
	TypeTSIG  Type = 250 // meta-RR carrying a transaction signature
	TypeANY   Type = 255 // query/update meta-type
	// TypeADDR carries a transport address in place of an IPv4 address;
	// it plays the role of an A record in this repository's world.
	TypeADDR Type = 65280
)

// String returns the mnemonic for t.
func (t Type) String() string {
	switch t {
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeTXT:
		return "TXT"
	case TypeTSIG:
		return "TSIG"
	case TypeANY:
		return "ANY"
	case TypeADDR:
		return "ADDR"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a resource record class. Updates reuse classes as operation
// selectors exactly as RFC 2136 does.
type Class uint16

// Classes.
const (
	ClassIN   Class = 1   // the Internet; also "add" in updates
	ClassNone Class = 254 // "delete this exact RR" in updates
	ClassANY  Class = 255 // "delete this RRset" in updates
)

// Opcode selects the kind of transaction.
type Opcode uint8

// Opcodes.
const (
	OpcodeQuery  Opcode = 0
	OpcodeUpdate Opcode = 5
)

// RCode is a response code.
type RCode uint8

// Response codes (RFC 1035 §4.1.1 and RFC 2136 §2.2).
const (
	RCodeOK       RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
	RCodeNotAuth  RCode = 9
	RCodeBadSig   RCode = 16
)

// String returns the mnemonic for rc.
func (rc RCode) String() string {
	switch rc {
	case RCodeOK:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	case RCodeNotAuth:
		return "NOTAUTH"
	case RCodeBadSig:
		return "BADSIG"
	default:
		return fmt.Sprintf("RCODE%d", uint8(rc))
	}
}

// Errors reported by name handling and message parsing.
var (
	ErrBadName    = errors.New("dns: malformed domain name")
	ErrBadMessage = errors.New("dns: malformed message")
)

// maxNameLen bounds an encoded name, per RFC 1035 §2.3.4.
const maxNameLen = 255

// maxLabelLen bounds one label.
const maxLabelLen = 63

// CanonicalName lowercases a name and strips any trailing dot, the
// canonical form used throughout this package. The root is "".
func CanonicalName(s string) string {
	return strings.TrimSuffix(strings.ToLower(s), ".")
}

// ValidName reports whether s is a well-formed canonical name.
func ValidName(s string) bool {
	if s == "" {
		return true // the root
	}
	if len(s) > maxNameLen {
		return false
	}
	for _, label := range strings.Split(s, ".") {
		if len(label) == 0 || len(label) > maxLabelLen {
			return false
		}
	}
	return true
}

// InZone reports whether name lies at or below the zone apex.
func InZone(name, zone string) bool {
	if zone == "" {
		return true
	}
	return name == zone || strings.HasSuffix(name, "."+zone)
}

// Parent returns the name with its leftmost label removed ("" for a
// single-label name or the root).
func Parent(name string) string {
	i := strings.IndexByte(name, '.')
	if i < 0 {
		return ""
	}
	return name[i+1:]
}

// Question is one query: a name, type and class.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

func (q Question) String() string {
	return fmt.Sprintf("%s %s", q.Name, q.Type)
}

// RR is one resource record. Data holds the presentation-form RDATA:
// the target name for NS and CNAME, the text for TXT, the transport
// address for ADDR.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  string
}

func (rr RR) String() string {
	return fmt.Sprintf("%s %d %s %s %q", rr.Name, rr.TTL, rr.Class, rr.Type, rr.Data)
}

func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassNone:
		return "NONE"
	case ClassANY:
		return "ANY"
	default:
		return fmt.Sprintf("CLASS%d", uint16(c))
	}
}

// Message is a DNS message. For queries, Questions holds the question
// section. For RFC 2136 updates, Questions holds the zone section,
// Authority holds the update section, and Additional may end with a
// TSIG record.
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             Opcode
	Authoritative      bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode

	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// Reply constructs a response skeleton for m: same ID and opcode,
// questions echoed, response bit set.
func (m *Message) Reply() *Message {
	return &Message{
		ID:        m.ID,
		Response:  true,
		Opcode:    m.Opcode,
		Questions: append([]Question(nil), m.Questions...),
	}
}

// TSIG returns the trailing TSIG record of the additional section and
// the message without it, or nil and m unchanged when there is none.
func (m *Message) TSIG() (*RR, *Message) {
	n := len(m.Additional)
	if n == 0 || m.Additional[n-1].Type != TypeTSIG {
		return nil, m
	}
	sig := m.Additional[n-1]
	stripped := *m
	stripped.Additional = m.Additional[:n-1]
	return &sig, &stripped
}

// Package walog implements the framed append-only log underneath the
// incremental persistence paths: the GLS journal and the GOS
// checkpoint log. Each entry is length-prefixed and CRC-protected, so
// a reader can stream a log back and stop cleanly at a torn tail — the
// frame a crash interrupted mid-write is detected by its checksum and
// truncated away, and everything before it replays intact. Appends are
// buffered in memory until Flush, which writes the pending frames in
// one syscall and fsyncs once: the batching that makes per-operation
// journaling affordable. Compaction rewrites the log atomically
// (tmp + fsync + rename), the same durable-write discipline as
// store.WriteFileSync.
package walog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// frameHeader is [u32 payload length][u32 CRC-32 (IEEE) of payload].
const frameHeader = 8

// maxFrame bounds a single entry; a length field beyond it is treated
// as tail corruption, not an allocation request.
const maxFrame = 64 << 20

// Log is an append-only frame log on disk. All methods are safe for
// concurrent use.
type Log struct {
	mu   sync.Mutex
	path string
	f    *os.File
	buf  []byte // frames appended but not yet written
	size int64  // bytes durably on disk
}

// Open replays the log at path (creating it empty if absent), calling
// fn for each intact entry in append order, then opens it for further
// appends. A torn or corrupt tail — the mark of a crash mid-append —
// is truncated away; entries before it are delivered normally. The
// payload passed to fn is only valid during the call.
func Open(path string, fn func(payload []byte) error) (*Log, error) {
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("walog: read %s: %w", path, err)
	}
	good := int64(0)
	for off := 0; off+frameHeader <= len(b); {
		ln := binary.BigEndian.Uint32(b[off:])
		sum := binary.BigEndian.Uint32(b[off+4:])
		end := off + frameHeader + int(ln)
		if ln > maxFrame || end > len(b) {
			break // torn tail: length written, payload not (fully)
		}
		payload := b[off+frameHeader : end]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt tail: payload half-written
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return nil, fmt.Errorf("walog: replay %s: %w", path, err)
			}
		}
		off = end
		good = int64(off)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if int64(len(b)) > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("walog: truncate torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{path: path, f: f, size: good}, nil
}

// Append buffers one entry. It does not touch the disk; call Flush to
// make buffered entries durable in one batched write+fsync.
func (l *Log) Append(payload []byte) {
	l.mu.Lock()
	l.appendLocked(payload)
	l.mu.Unlock()
}

func (l *Log) appendLocked(payload []byte) {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
}

// Flush writes every buffered entry and fsyncs. It returns the number
// of bytes written this flush (zero when nothing was pending).
func (l *Log) Flush() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() (int, error) {
	if len(l.buf) == 0 {
		return 0, nil
	}
	nw, err := l.f.Write(l.buf)
	if err != nil {
		// A short write leaves a torn tail; the next Open truncates it.
		l.buf = l.buf[nw:]
		return nw, fmt.Errorf("walog: append to %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return nw, fmt.Errorf("walog: fsync %s: %w", l.path, err)
	}
	l.size += int64(nw)
	l.buf = l.buf[:0]
	return nw, nil
}

// Size returns the durable length of the log in bytes (buffered
// entries not yet flushed are excluded).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Buffered returns the number of bytes waiting for the next Flush.
func (l *Log) Buffered() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Rewrite atomically replaces the log's contents with the given
// entries — the compaction primitive. The replacement is built in a
// temporary file, fsynced, and renamed over the log; a crash at any
// point leaves either the old log or the new one, never a mix.
// Buffered entries not yet flushed are discarded: the caller folds the
// state they described into the replacement entries.
func (l *Log) Rewrite(payloads [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	tmp := l.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var out []byte
	for _, p := range payloads {
		var hdr [frameHeader]byte
		binary.BigEndian.PutUint32(hdr[0:], uint32(len(p)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(p))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	if _, err := nf.Write(out); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("walog: rewrite %s: %w", l.path, err)
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("walog: fsync rewrite of %s: %w", l.path, err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	// Make the rename durable before retiring the old file handle.
	if dir, err := os.Open(filepath.Dir(l.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	l.f.Close()
	l.f = nf
	if _, err := nf.Seek(int64(len(out)), 0); err != nil {
		return err
	}
	l.size = int64(len(out))
	l.buf = l.buf[:0]
	return nil
}

// Close flushes buffered entries and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ferr := l.flushLocked()
	cerr := l.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

package walog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func replayAll(t *testing.T, path string) ([][]byte, *Log) {
	t.Helper()
	var got [][]byte
	l, err := Open(path, func(p []byte) error {
		got = append(got, bytes.Clone(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, l
}

func TestAppendFlushReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log")
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("entry-%d", i))
		want = append(want, p)
		l.Append(p)
	}
	if l.Size() != 0 {
		t.Fatalf("size before flush = %d, want 0", l.Size())
	}
	if n, err := l.Flush(); err != nil || n == 0 {
		t.Fatalf("flush = %d, %v", n, err)
	}
	if n, err := l.Flush(); err != nil || n != 0 {
		t.Fatalf("idempotent flush = %d, %v; want 0, nil", n, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, l2 := replayAll(t, path)
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("entry %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestTornTailTruncated simulates kill -9 mid-append: a final frame
// whose payload never fully reached the disk must be dropped, and the
// entries before it must survive.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log")
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("good-1"))
	l.Append([]byte("good-2"))
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Crash mid-append: a header promising 100 bytes, with only 3 written.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 100, 0xde, 0xad, 0xbe, 0xef, 'x', 'y', 'z'})
	f.Close()

	got, l2 := replayAll(t, path)
	if len(got) != 2 || string(got[0]) != "good-1" || string(got[1]) != "good-2" {
		t.Fatalf("replay after torn tail = %q", got)
	}
	// The truncated log must accept further appends cleanly.
	l2.Append([]byte("good-3"))
	if _, err := l2.Flush(); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	got, l3 := replayAll(t, path)
	defer l3.Close()
	if len(got) != 3 || string(got[2]) != "good-3" {
		t.Fatalf("replay after recovery append = %q", got)
	}
}

// TestCorruptTailTruncated: a full-length frame whose payload bits
// rotted (or were half-written) fails its CRC and is dropped.
func TestCorruptTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log")
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("keep"))
	l.Append([]byte("rot!"))
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	got, l2 := replayAll(t, path)
	defer l2.Close()
	if len(got) != 1 || string(got[0]) != "keep" {
		t.Fatalf("replay after corrupt tail = %q", got)
	}
}

func TestRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log")
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		l.Append([]byte(fmt.Sprintf("old-%d", i)))
	}
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	before := l.Size()
	if err := l.Rewrite([][]byte{[]byte("compacted")}); err != nil {
		t.Fatal(err)
	}
	if l.Size() >= before {
		t.Fatalf("rewrite did not shrink the log: %d -> %d", before, l.Size())
	}
	// Appends after a rewrite land in the new file.
	l.Append([]byte("tail"))
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	got, l2 := replayAll(t, path)
	defer l2.Close()
	if len(got) != 2 || string(got[0]) != "compacted" || string(got[1]) != "tail" {
		t.Fatalf("replay after rewrite = %q", got)
	}
}

package gls

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gdn/internal/ids"
	"gdn/internal/netsim"
	"gdn/internal/sec"
	"gdn/internal/wire"
)

// worldNet builds a two-region world with two leaf domains per region.
func worldNet(t *testing.T) *netsim.Network {
	t.Helper()
	n := netsim.New(nil)
	n.AddSite("root-site", "core", "core")
	n.AddSite("eu-hub", "eu-hub", "eu")
	n.AddSite("us-hub", "us-hub", "us")
	n.AddSite("eu-nl-vu", "eu-nl", "eu")
	n.AddSite("eu-de-tu", "eu-de", "eu")
	n.AddSite("us-ca-ucb", "us-ca", "us")
	n.AddSite("us-ny-cu", "us-ny", "us")
	return n
}

// worldSpec is the matching three-level domain hierarchy.
func worldSpec() DomainSpec {
	return DomainSpec{
		Name:  "root",
		Sites: []string{"root-site"},
		Children: []DomainSpec{
			{Name: "eu", Sites: []string{"eu-hub"}, Children: []DomainSpec{
				Leaf("eu/nl", "eu-nl-vu"),
				Leaf("eu/de", "eu-de-tu"),
			}},
			{Name: "us", Sites: []string{"us-hub"}, Children: []DomainSpec{
				Leaf("us/ca", "us-ca-ucb"),
				Leaf("us/ny", "us-ny-cu"),
			}},
		},
	}
}

func deployWorld(t *testing.T) (*netsim.Network, *Tree) {
	t.Helper()
	net := worldNet(t)
	tree, err := Deploy(net, worldSpec())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	return net, tree
}

func mustResolver(t *testing.T, tree *Tree, site, domain string) *Resolver {
	t.Helper()
	r, err := tree.Resolver(site, domain)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func testAddr(site string) ContactAddress {
	return ContactAddress{Protocol: "masterslave", Address: site + ":gos/obj", Impl: "pkg/1", Role: "slave"}
}

func TestInsertLookupSameLeaf(t *testing.T) {
	_, tree := deployWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	oid, _, err := res.Insert(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}
	if oid.IsNil() {
		t.Fatal("insert must allocate an OID")
	}

	addrs, cost, err := res.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != testAddr("eu-nl-vu") {
		t.Fatalf("addrs = %v", addrs)
	}
	if cost <= 0 {
		t.Fatal("lookup must report positive virtual cost")
	}
}

func TestLookupCostProportionalToDistance(t *testing.T) {
	_, tree := deployWorld(t)
	near := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	sameRegion := mustResolver(t, tree, "eu-de-tu", "eu/de")
	far := mustResolver(t, tree, "us-ca-ucb", "us/ca")

	oid, _, err := near.Insert(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}

	_, costNear, err := near.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	_, costRegion, err := sameRegion.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	_, costFar, err := far.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}

	if !(costNear < costRegion && costRegion < costFar) {
		t.Fatalf("lookup cost must grow with distance: near=%v region=%v far=%v",
			costNear, costRegion, costFar)
	}
}

func TestLookupFindsNearestReplica(t *testing.T) {
	_, tree := deployWorld(t)
	eu := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	us := mustResolver(t, tree, "us-ca-ucb", "us/ca")

	oid, _, err := eu.Insert(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := us.Insert(oid, testAddr("us-ca-ucb")); err != nil {
		t.Fatal(err)
	}

	// Each client's lookup should terminate at its local replica without
	// consulting the other region.
	addrs, _, err := eu.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0].Address != "eu-nl-vu:gos/obj" {
		t.Fatalf("eu lookup = %v, want local replica", addrs)
	}
	addrs, _, err = us.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0].Address != "us-ca-ucb:gos/obj" {
		t.Fatalf("us lookup = %v, want local replica", addrs)
	}
}

func TestLookupFromReplicalessLeafDescends(t *testing.T) {
	_, tree := deployWorld(t)
	eu := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	de := mustResolver(t, tree, "eu-de-tu", "eu/de")

	oid, _, err := eu.Insert(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}

	// The German client has no local entry: the lookup climbs to "eu",
	// finds a forwarding pointer, and descends into eu/nl.
	addrs, _, err := de.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0].Address != "eu-nl-vu:gos/obj" {
		t.Fatalf("descend lookup = %v", addrs)
	}
}

func TestLookupNotFound(t *testing.T) {
	_, tree := deployWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	_, _, err := res.Lookup(ids.Derive("nobody"))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDeleteTearsDownPointerChain(t *testing.T) {
	_, tree := deployWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	oid, _, err := res.Insert(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}

	// The insert must have installed pointers at eu and root.
	for _, domain := range []string{"eu/nl", "eu", "root"} {
		if got := tree.Nodes(domain)[0].Records(); got != 1 {
			t.Fatalf("%s records = %d before delete, want 1", domain, got)
		}
	}

	if _, err := res.Delete(oid, "eu-nl-vu:gos/obj"); err != nil {
		t.Fatal(err)
	}
	for _, domain := range []string{"eu/nl", "eu", "root"} {
		if got := tree.Nodes(domain)[0].Records(); got != 0 {
			t.Fatalf("%s records = %d after delete, want 0", domain, got)
		}
	}

	if _, _, err := res.Lookup(oid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after delete = %v, want ErrNotFound", err)
	}
}

func TestDeleteOneOfTwoReplicasKeepsOther(t *testing.T) {
	_, tree := deployWorld(t)
	eu := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	us := mustResolver(t, tree, "us-ca-ucb", "us/ca")

	oid, _, err := eu.Insert(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := us.Insert(oid, testAddr("us-ca-ucb")); err != nil {
		t.Fatal(err)
	}
	if _, err := eu.Delete(oid, "eu-nl-vu:gos/obj"); err != nil {
		t.Fatal(err)
	}

	// Root must still point at the US subtree.
	addrs, _, err := eu.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0].Address != "us-ca-ucb:gos/obj" {
		t.Fatalf("post-delete lookup = %v", addrs)
	}
}

func TestInsertIdempotent(t *testing.T) {
	_, tree := deployWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	oid, _, err := res.Insert(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Insert(oid, testAddr("eu-nl-vu")); err != nil {
		t.Fatal(err)
	}
	addrs, _, err := res.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 {
		t.Fatalf("duplicate insert must not duplicate the address: %v", addrs)
	}
}

func TestInsertAtIntermediateNode(t *testing.T) {
	_, tree := deployWorld(t)
	eu, _ := tree.Ref("eu")
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	oid, _, err := res.InsertAt(eu, ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}

	// The address lives at "eu": both European leaves find it, and the
	// leaf nodes hold no state for it.
	de := mustResolver(t, tree, "eu-de-tu", "eu/de")
	for _, r := range []*Resolver{res, de} {
		addrs, _, err := r.Lookup(oid)
		if err != nil {
			t.Fatal(err)
		}
		if len(addrs) != 1 {
			t.Fatalf("addrs = %v", addrs)
		}
	}
	if got := tree.Nodes("eu/nl")[0].Records(); got != 0 {
		t.Fatalf("leaf records = %d, want 0 (address stored at intermediate)", got)
	}
}

func TestMultipleChildPointersRandomDescent(t *testing.T) {
	_, tree := deployWorld(t)
	eu := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	de := mustResolver(t, tree, "eu-de-tu", "eu/de")
	us := mustResolver(t, tree, "us-ca-ucb", "us/ca")

	oid, _, err := eu.Insert(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := de.Insert(oid, testAddr("eu-de-tu")); err != nil {
		t.Fatal(err)
	}

	// The US client's lookup reaches the root, which holds one pointer
	// (to eu); eu holds two pointers and picks one at random. Both
	// replicas must be reachable over repeated lookups.
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		addrs, _, err := us.Lookup(oid)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range addrs {
			seen[a.Address] = true
		}
	}
	if len(seen) != 2 {
		t.Fatalf("random descent saw replicas %v, want both", seen)
	}
}

func TestSubnodePartitioningSpreadsLoad(t *testing.T) {
	net := worldNet(t)
	net.AddSite("root-2", "core", "core")
	net.AddSite("root-3", "core", "core")
	net.AddSite("root-4", "core", "core")
	spec := worldSpec()
	spec.Sites = []string{"root-site", "root-2", "root-3", "root-4"}
	tree, err := Deploy(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	const objects = 64
	oids := make([]ids.OID, 0, objects)
	for i := 0; i < objects; i++ {
		oid, _, err := res.Insert(ids.Nil, testAddr("eu-nl-vu"))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}

	// Force traffic through the root: look up from a leaf with no local
	// entry so the request climbs all the way.
	far := mustResolver(t, tree, "us-ca-ucb", "us/ca")
	for _, oid := range oids {
		if _, _, err := far.Lookup(oid); err != nil {
			t.Fatal(err)
		}
	}

	// Pointer installs and descents must be spread over all four
	// subnodes, and each subnode must only hold its own hash share.
	busy := 0
	total := int64(0)
	for _, node := range tree.Nodes("root") {
		s := node.Stats()
		total += s.Total()
		if s.Total() > 0 {
			busy++
		}
	}
	if busy != 4 {
		t.Fatalf("busy root subnodes = %d, want 4", busy)
	}
	records := 0
	for _, node := range tree.Nodes("root") {
		records += node.Records()
	}
	if records != objects {
		t.Fatalf("root records across subnodes = %d, want %d", records, objects)
	}
}

func TestSnapshotRestore(t *testing.T) {
	_, tree := deployWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	var oids []ids.OID
	for i := 0; i < 10; i++ {
		oid, _, err := res.Insert(ids.Nil, testAddr("eu-nl-vu"))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}

	leaf := tree.Nodes("eu/nl")[0]
	snap := leaf.Snapshot()

	// Simulate a crash losing all records, then recovery from the
	// checkpoint.
	if err := leaf.Restore(emptySnapshot(leaf.Domain())); err != nil {
		t.Fatal(err)
	}
	if leaf.Records() != 0 {
		t.Fatal("node must be empty after clearing")
	}
	if err := leaf.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if leaf.Records() != len(oids) {
		t.Fatalf("restored records = %d, want %d", leaf.Records(), len(oids))
	}
	for _, oid := range oids {
		if _, _, err := res.Lookup(oid); err != nil {
			t.Fatalf("lookup %s after restore: %v", oid.Short(), err)
		}
	}
}

// emptySnapshot builds the snapshot of a record-less node for the given
// domain, mimicking the state a freshly started node would checkpoint.
func emptySnapshot(domain string) []byte {
	w := wire.NewWriter(16)
	w.Str(domain)
	w.Count(0)
	return w.Bytes()
}

func TestRestoreRejectsWrongDomain(t *testing.T) {
	_, tree := deployWorld(t)
	nl := tree.Nodes("eu/nl")[0]
	de := tree.Nodes("eu/de")[0]
	if err := nl.Restore(de.Snapshot()); err == nil {
		t.Fatal("restore must reject a snapshot from another domain")
	}
}

func TestAdmissionControl(t *testing.T) {
	net := worldNet(t)
	authority, err := sec.NewAuthority("gdn-root")
	if err != nil {
		t.Fatal(err)
	}
	glsCreds, err := sec.NewCredentials(authority, sec.Principal(sec.RoleGLS, "tree"), sec.RoleGLS)
	if err != nil {
		t.Fatal(err)
	}
	gosCreds, err := sec.NewCredentials(authority, sec.Principal(sec.RoleGOS, "eu-nl-vu"), sec.RoleGOS)
	if err != nil {
		t.Fatal(err)
	}
	userCreds, err := sec.NewCredentials(authority, sec.Principal(sec.RoleUser, "mallory"), sec.RoleUser)
	if err != nil {
		t.Fatal(err)
	}

	tree, err := Deploy(net, worldSpec(), WithTreeAuth(&sec.Config{
		Creds:        glsCreds,
		TrustAnchors: authority.Anchors(),
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	leaf, _ := tree.Ref("eu/nl")
	gos := NewResolver(net, "eu-nl-vu", leaf, WithResolverAuth(&sec.Config{
		Creds:        gosCreds,
		TrustAnchors: authority.Anchors(),
	}))
	defer gos.Close()
	user := NewResolver(net, "eu-de-tu", leaf, WithResolverAuth(&sec.Config{
		Creds:        userCreds,
		TrustAnchors: authority.Anchors(),
	}))
	defer user.Close()

	// An object server may register; a user may not (paper §6.1 req 2).
	oid, _, err := gos.Insert(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatalf("gos insert: %v", err)
	}
	if _, _, err := user.Insert(ids.Nil, testAddr("eu-de-tu")); err == nil {
		t.Fatal("user insert must be rejected")
	} else if !strings.Contains(err.Error(), "unauthorized") && !strings.Contains(err.Error(), "not authorized") {
		t.Fatalf("unexpected rejection: %v", err)
	}
	if _, err := user.Delete(oid, "eu-nl-vu:gos/obj"); err == nil {
		t.Fatal("user delete must be rejected")
	}

	// Anyone — even a user — may look up.
	if _, _, err := user.Lookup(oid); err != nil {
		t.Fatalf("user lookup: %v", err)
	}
}

func TestStatsOverRPC(t *testing.T) {
	_, tree := deployWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	oid, _, err := res.Insert(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Lookup(oid); err != nil {
		t.Fatal(err)
	}
	leafRef, _ := tree.Ref("eu/nl")
	c, err := res.Stats(leafRef.Addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if c.Inserts != 1 || c.Lookups != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestRouteConsistency(t *testing.T) {
	// Route must be stable and in range for any subnode count — the
	// partitioning invariant every node relies on.
	f := func(seed int64, n uint8) bool {
		count := int(n%16) + 1
		ref := Ref{Addrs: make([]string, count)}
		for i := range ref.Addrs {
			ref.Addrs[i] = fmt.Sprintf("site-%d:gls", i)
		}
		rnd := rand.New(rand.NewSource(seed))
		var oid ids.OID
		rnd.Read(oid[:])
		a := ref.Route(oid)
		b := ref.Route(oid)
		if a != b {
			return false
		}
		for _, addr := range ref.Addrs {
			if addr == a {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomChurnInvariant(t *testing.T) {
	// Property: after an arbitrary interleaving of inserts and deletes
	// that ends with every address deleted, the whole tree is empty —
	// no leaked records or dangling pointers anywhere.
	_, tree := deployWorld(t)
	leaves := []string{"eu/nl", "eu/de", "us/ca", "us/ny"}
	sites := []string{"eu-nl-vu", "eu-de-tu", "us-ca-ucb", "us-ny-cu"}
	resolvers := make([]*Resolver, len(leaves))
	for i := range leaves {
		resolvers[i] = mustResolver(t, tree, sites[i], leaves[i])
	}

	rnd := rand.New(rand.NewSource(42))
	type placement struct {
		oid  ids.OID
		leaf int
	}
	var live []placement
	for step := 0; step < 300; step++ {
		if len(live) == 0 || rnd.Intn(2) == 0 {
			leaf := rnd.Intn(len(leaves))
			oid, _, err := resolvers[leaf].Insert(ids.Nil, testAddr(sites[leaf]))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, placement{oid, leaf})
		} else {
			i := rnd.Intn(len(live))
			p := live[i]
			if _, err := resolvers[p.leaf].Delete(p.oid, sites[p.leaf]+":gos/obj"); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
	}
	for _, p := range live {
		if _, err := resolvers[p.leaf].Delete(p.oid, sites[p.leaf]+":gos/obj"); err != nil {
			t.Fatal(err)
		}
	}

	for _, domain := range tree.Domains() {
		for i, node := range tree.Nodes(domain) {
			if got := node.Records(); got != 0 {
				t.Fatalf("domain %s subnode %d: %d leaked records", domain, i, got)
			}
		}
	}
}

func TestEncodeDecodeAddrsRoundTrip(t *testing.T) {
	f := func(proto, addr, impl, role string) bool {
		if len(proto) > 100 || len(addr) > 100 || len(impl) > 100 || len(role) > 100 {
			return true
		}
		in := []ContactAddress{{Protocol: proto, Address: addr, Impl: impl, Role: role}}
		out, err := DecodeAddrs(EncodeAddrs(in))
		return err == nil && len(out) == 1 && out[0] == in[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeployErrors(t *testing.T) {
	net := worldNet(t)
	if _, err := Deploy(net, DomainSpec{Name: "", Sites: []string{"root-site"}}); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, err := Deploy(net, DomainSpec{Name: "x"}); err == nil {
		t.Fatal("no sites must fail")
	}
	dup := DomainSpec{Name: "root", Sites: []string{"root-site"}, Children: []DomainSpec{
		Leaf("root", "eu-nl-vu"),
	}}
	if _, err := Deploy(net, dup); err == nil {
		t.Fatal("duplicate domain must fail")
	}
}

func TestLookupCostIsWallClockIndependent(t *testing.T) {
	// The virtual cost of a lookup must dwarf its real execution time:
	// the simulator's promise is wide-area shapes at CPU speed.
	_, tree := deployWorld(t)
	eu := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	us := mustResolver(t, tree, "us-ca-ucb", "us/ca")
	oid, _, err := eu.Insert(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, cost, err := us.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); cost < 10*wall && cost < 50*time.Millisecond {
		t.Fatalf("virtual cost %v suspiciously close to wall clock %v", cost, wall)
	}
}

package gls

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gdn/internal/ids"
	"gdn/internal/netsim"
	"gdn/internal/wire"
)

// soloWorld starts one root directory node with incremental
// persistence in dir and returns it with a bound resolver. Restarting
// is Close + another soloWorld on the same dir.
func soloWorld(t *testing.T, dir string) (*netsim.Network, *Node, *Resolver) {
	t.Helper()
	net := netsim.New(nil)
	net.AddSite("solo-site", "solo", "eu")
	addr := "solo-site:gls-solo-0"
	n, err := Start(net, Config{
		Domain:     "solo",
		Site:       "solo-site",
		Addr:       addr,
		Self:       Ref{Addrs: []string{addr}},
		Seed:       1,
		SweepEvery: -1,
		StateDir:   dir,
		FlushEvery: time.Hour, // flush by hand; no timing in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	res := NewResolver(net, "solo-site", Ref{Addrs: []string{addr}})
	t.Cleanup(func() { res.Close() })
	return net, n, res
}

func TestJournalRestartRecoversRecordsAndSessions(t *testing.T) {
	dir := t.TempDir()
	_, n, res := soloWorld(t, dir)

	// A permanent record, a session, and entries attached to it.
	permOID, _, err := res.Insert(ids.Nil, testAddr("solo-site"))
	if err != nil {
		t.Fatal(err)
	}
	sess, _, err := res.OpenSession("solo-site:gos/obj", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var attached []ids.OID
	for i := 0; i < 3; i++ {
		oid, _, err := sess.Attach(ids.Nil, testAddr("solo-site"))
		if err != nil {
			t.Fatal(err)
		}
		attached = append(attached, oid)
	}
	if err := n.FlushJournal(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the same state directory on a fresh network.
	_, n2, res2 := soloWorld(t, dir)
	defer n2.Close()
	if got := n2.Records(); got != 4 {
		t.Fatalf("recovered %d records, want 4", got)
	}
	if _, _, err := res2.Lookup(permOID); err != nil {
		t.Fatalf("permanent record lost: %v", err)
	}
	for _, oid := range attached {
		if _, _, err := res2.Lookup(oid); err != nil {
			t.Fatalf("session entry %s lost: %v", oid.Short(), err)
		}
	}
	// The session survived the restart: the owner's next renewal must
	// succeed and agree on the attached count (no re-attach needed).
	sess2, _, err := res2.OpenSession("solo-site:gos/obj", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, oid := range attached {
		if _, _, err := sess2.Attach(oid, testAddr("solo-site")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess2.Renew(); err != nil {
		t.Fatalf("renew after restart: %v", err)
	}
	if got := n2.Records(); got != 4 {
		t.Fatalf("re-attach after restart duplicated records: %d", got)
	}
}

func TestJournalCrashMidAppendRecovers(t *testing.T) {
	dir := t.TempDir()
	_, n, res := soloWorld(t, dir)

	var oids []ids.OID
	for i := 0; i < 8; i++ {
		oid, _, err := res.Insert(ids.Nil, testAddr("solo-site"))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if err := n.FlushJournal(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	// kill -9 mid-append: the last journal write tore. Fake it by
	// appending a frame header that promises more bytes than follow.
	f, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var torn [11]byte
	binary.LittleEndian.PutUint32(torn[0:], 64) // length 64, only 3 payload bytes present
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, n2, res2 := soloWorld(t, dir)
	defer n2.Close()
	if got := n2.Records(); got != len(oids) {
		t.Fatalf("recovered %d records, want %d", got, len(oids))
	}
	for _, oid := range oids {
		if _, _, err := res2.Lookup(oid); err != nil {
			t.Fatalf("record %s lost to torn tail: %v", oid.Short(), err)
		}
	}
	// The recovered node keeps journaling: a new insert survives the
	// next restart, proving the log was re-opened writable at the
	// truncation point.
	fresh, _, err := res2.Insert(ids.Nil, testAddr("solo-site"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n2.Close(); err != nil {
		t.Fatal(err)
	}
	_, n3, res3 := soloWorld(t, dir)
	defer n3.Close()
	if _, _, err := res3.Lookup(fresh); err != nil {
		t.Fatalf("post-recovery insert lost: %v", err)
	}
}

func TestJournalCompactionFoldsLog(t *testing.T) {
	dir := t.TempDir()
	_, n, res := soloWorld(t, dir)
	defer n.Close()

	for i := 0; i < 16; i++ {
		if _, _, err := res.Insert(ids.Nil, testAddr("solo-site")); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.FlushJournal(); err != nil {
		t.Fatal(err)
	}
	grown, err := os.Stat(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	base, err := os.Stat(filepath.Join(dir, "base.snap"))
	if err != nil {
		t.Fatalf("compaction wrote no base snapshot: %v", err)
	}
	if base.Size() == 0 {
		t.Fatal("empty base snapshot")
	}
	shrunk, err := os.Stat(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Size() >= grown.Size() {
		t.Fatalf("journal did not shrink: %d -> %d bytes", grown.Size(), shrunk.Size())
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	_, n2, _ := soloWorld(t, dir)
	defer n2.Close()
	if got := n2.Records(); got != 16 {
		t.Fatalf("recovered %d records after compaction, want 16", got)
	}
}

func TestJournalSteadyStateAppendsOnly(t *testing.T) {
	dir := t.TempDir()
	_, n, res := soloWorld(t, dir)
	defer n.Close()

	if _, _, err := res.Insert(ids.Nil, testAddr("solo-site")); err != nil {
		t.Fatal(err)
	}
	if err := n.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	baseBefore, err := os.ReadFile(filepath.Join(dir, "base.snap"))
	if err != nil {
		t.Fatal(err)
	}
	logBefore, err := os.Stat(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}

	// Steady-state traffic: inserts, a session heartbeat, a drain flip.
	sess, _, err := res.OpenSession("solo-site:gos/obj", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Attach(ids.Nil, testAddr("solo-site")); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Renew(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Drain(true); err != nil {
		t.Fatal(err)
	}
	if err := n.FlushJournal(); err != nil {
		t.Fatal(err)
	}

	baseAfter, err := os.ReadFile(filepath.Join(dir, "base.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseBefore, baseAfter) {
		t.Fatal("steady-state traffic rewrote the base snapshot")
	}
	logAfter, err := os.Stat(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if logAfter.Size() <= logBefore.Size() {
		t.Fatal("steady-state traffic did not append to the journal")
	}
}

// TestSnapshotV2StillRestores hand-encodes the version-2 layout (flat
// record list, whole-node consistency) and restores it into a striped
// node: one permanent entry, one session entry, one drained address.
func TestSnapshotV2StillRestores(t *testing.T) {
	_, tree := deployWorld(t)
	leaf := tree.domains["eu/nl"].nodes[0]
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	permOID, sessOID := ids.New(), ids.New()
	sid := ids.New()
	w := wire.NewWriter(512)
	w.Str("gls-snapshot/2")
	w.Str("eu/nl")
	w.Count(1) // drained addresses
	w.Str("eu-de-tu:gos/obj")
	w.Count(1) // sessions
	w.OID(sid)
	w.Str("eu-nl-vu:gos/obj")
	w.Uint32(30) // ttl seconds
	w.Uint32(30) // remaining seconds
	w.Bool(false)
	w.Count(2) // flat record list — v2 has no shard grouping
	w.OID(permOID)
	w.Count(1)
	testAddr("eu-nl-vu").encode(w)
	w.Uint8(leasePermanent)
	w.Count(0) // no pointers
	w.OID(sessOID)
	w.Count(1)
	testAddr("eu-nl-vu").encode(w)
	w.Uint8(leaseSession)
	w.OID(sid)
	w.Count(0)

	if err := leaf.Restore(w.Bytes()); err != nil {
		t.Fatalf("v2 restore: %v", err)
	}
	if got := leaf.Records(); got != 2 {
		t.Fatalf("restored %d records, want 2", got)
	}
	for _, oid := range []ids.OID{permOID, sessOID} {
		if _, _, err := res.Lookup(oid); err != nil {
			t.Fatalf("lookup %s after v2 restore: %v", oid.Short(), err)
		}
	}

	// v2 is strict about unknown sessions: written under one lock, a
	// dangling reference means corruption, not a benign race.
	bad := wire.NewWriter(256)
	bad.Str("gls-snapshot/2")
	bad.Str("eu/nl")
	bad.Count(0)
	bad.Count(0) // no sessions...
	bad.Count(1)
	bad.OID(ids.New())
	bad.Count(1)
	testAddr("eu-nl-vu").encode(bad)
	bad.Uint8(leaseSession)
	bad.OID(ids.New()) // ...but an entry referencing one
	bad.Count(0)
	if err := leaf.Restore(bad.Bytes()); err == nil {
		t.Fatal("v2 restore accepted an entry referencing an unknown session")
	}
}

// TestSnapshotV3DropsEntriesRacingTheSessionBlock checks the v3
// per-stripe consistency contract: an entry referencing a session the
// session block missed restores as dropped, not as an error.
func TestSnapshotV3DropsEntriesRacingTheSessionBlock(t *testing.T) {
	_, tree := deployWorld(t)
	leaf := tree.domains["eu/nl"].nodes[0]

	w := wire.NewWriter(256)
	w.Str("gls-snapshot/3")
	w.Str("eu/nl")
	w.Count(0)  // drained
	w.Count(0)  // sessions
	w.Uint32(1) // one shard group
	w.Count(1)  // one record
	w.OID(ids.New())
	w.Count(1)
	testAddr("eu-nl-vu").encode(w)
	w.Uint8(leaseSession)
	w.OID(ids.New()) // session unknown: the stripe writer raced it
	w.Count(0)
	if err := leaf.Restore(w.Bytes()); err != nil {
		t.Fatalf("v3 restore must tolerate a racing session reference: %v", err)
	}
	if got := leaf.Records(); got != 0 {
		t.Fatalf("dangling entry restored as %d records, want 0 (dropped)", got)
	}
}

// TestSnapshotRoundTripMatrix restores snapshots of every lineage
// version into a fresh node and re-snapshots: v1 and v2 content must
// survive conversion to the v3 writer.
func TestSnapshotRoundTripMatrix(t *testing.T) {
	_, tree := deployWorld(t)
	leaf := tree.domains["eu/nl"].nodes[0]
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	oid, _, err := res.Insert(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		snap func() []byte
	}{
		{"v1->v3", func() []byte { return encodeV1Snapshot(leaf) }},
		{"v3->v3", leaf.Snapshot},
	} {
		b := tc.snap()
		if err := leaf.Restore(b); err != nil {
			t.Fatalf("%s: restore: %v", tc.name, err)
		}
		again := leaf.Snapshot() // must re-encode as v3...
		if err := leaf.Restore(again); err != nil {
			t.Fatalf("%s: second hop: %v", tc.name, err)
		}
		if _, _, err := res.Lookup(oid); err != nil {
			t.Fatalf("%s: record lost in round trip: %v", tc.name, err)
		}
	}
}

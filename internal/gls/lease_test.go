package gls

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gdn/internal/ids"
)

// fakeClock is a controllable time source for lease tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// deployLeaseWorld deploys the standard test tree with a controllable
// clock and a disabled janitor, so tests drive expiry explicitly.
func deployLeaseWorld(t *testing.T) (*Tree, *fakeClock) {
	t.Helper()
	net := worldNet(t)
	clock := newFakeClock()
	tree, err := Deploy(net, worldSpec(), WithTreeClock(clock.Now), WithTreeSweep(-1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	return tree, clock
}

func TestLeaseExpiresOutOfLookups(t *testing.T) {
	tree, clock := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	oid, _, err := res.InsertLease(ids.Nil, testAddr("eu-nl-vu"), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if addrs, _, err := res.Lookup(oid); err != nil || len(addrs) != 1 {
		t.Fatalf("lookup within lease: %v (%d addrs)", err, len(addrs))
	}

	// Past the TTL the entry stops appearing even before any janitor
	// runs: expiry is enforced lazily at lookup time.
	clock.Advance(11 * time.Second)
	if _, _, err := res.Lookup(oid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after expiry = %v, want ErrNotFound", err)
	}
}

func TestLeaseRenewalKeepsEntryAlive(t *testing.T) {
	tree, clock := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	ca := testAddr("eu-nl-vu")
	oid, _, err := res.InsertLease(ids.Nil, ca, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Heartbeat: renew every 6s; the entry must survive well past the
	// original TTL.
	for i := 0; i < 5; i++ {
		clock.Advance(6 * time.Second)
		if _, _, err := res.InsertLease(oid, ca, 10*time.Second); err != nil {
			t.Fatalf("renewal %d: %v", i, err)
		}
	}
	if addrs, _, err := res.Lookup(oid); err != nil || len(addrs) != 1 {
		t.Fatalf("lookup after renewals: %v (%d addrs)", err, len(addrs))
	}
	// Stop heartbeating: the lease ages out.
	clock.Advance(11 * time.Second)
	if _, _, err := res.Lookup(oid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after heartbeats stop = %v, want ErrNotFound", err)
	}
}

func TestLeaseExpiryOfOneReplicaLeavesOthers(t *testing.T) {
	tree, clock := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	leased := testAddr("eu-nl-vu")
	permanent := testAddr("eu-de-tu")
	oid, _, err := res.InsertLease(ids.Nil, leased, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Insert(oid, permanent); err != nil {
		t.Fatal(err)
	}

	clock.Advance(11 * time.Second)
	addrs, _, err := res.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != permanent {
		t.Fatalf("addrs after one lease expired = %v, want just %v", addrs, permanent)
	}
}

func TestSweepTearsDownPointerChain(t *testing.T) {
	tree, clock := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	if _, _, err := res.InsertLease(ids.Nil, testAddr("eu-nl-vu"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	root := tree.Nodes("root")[0]
	if root.Records() != 1 {
		t.Fatalf("root records after insert = %d, want 1 (the pointer chain)", root.Records())
	}

	clock.Advance(11 * time.Second)
	leaf := tree.Nodes("eu/nl")[0]
	if n := leaf.SweepExpired(); n != 1 {
		t.Fatalf("SweepExpired = %d, want 1", n)
	}
	if leaf.Records() != 0 {
		t.Fatalf("leaf records after sweep = %d, want 0", leaf.Records())
	}
	// The chain of forwarding pointers above the emptied record is torn
	// down too, so the tree does not accumulate entries for replicas
	// that stopped heartbeating.
	if root.Records() != 0 {
		t.Fatalf("root records after sweep = %d, want 0", root.Records())
	}
	if got := leaf.Stats().Expiries; got != 1 {
		t.Fatalf("leaf Expiries = %d, want 1", got)
	}
}

func TestDrainHidesAddressWhileOthersRemain(t *testing.T) {
	tree, _ := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	sick := testAddr("eu-nl-vu")
	healthy := testAddr("eu-de-tu")
	oid, _, err := res.Insert(ids.Nil, sick)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Insert(oid, healthy); err != nil {
		t.Fatal(err)
	}

	if _, err := res.Drain(sick.Address, true); err != nil {
		t.Fatal(err)
	}
	addrs, _, err := res.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != healthy {
		t.Fatalf("addrs while drained = %v, want just %v", addrs, healthy)
	}

	// Undrain restores the address without any re-registration: the
	// lease state was never deleted.
	if _, err := res.Drain(sick.Address, false); err != nil {
		t.Fatal(err)
	}
	addrs, _, err = res.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 {
		t.Fatalf("addrs after undrain = %v, want both", addrs)
	}
}

func TestDrainedReplicaDoesNotShadowHealthySibling(t *testing.T) {
	tree, _ := deployLeaseWorld(t)
	euRes := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	usRes := mustResolver(t, tree, "us-ca-ucb", "us/ca")

	sick := testAddr("eu-nl-vu")
	healthy := testAddr("us-ca-ucb")
	oid, _, err := euRes.Insert(ids.Nil, sick)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := usRes.Insert(oid, healthy); err != nil {
		t.Fatal(err)
	}
	if _, err := euRes.Drain(sick.Address, true); err != nil {
		t.Fatal(err)
	}

	// A lookup whose search reaches the drained replica's subtree
	// first must keep going and find the healthy replica in the
	// sibling subtree — a draining replica never shadows a healthy
	// one, wherever it lives in the tree.
	for i := 0; i < 8; i++ {
		addrs, _, err := euRes.Lookup(oid)
		if err != nil {
			t.Fatal(err)
		}
		if len(addrs) != 1 || addrs[0] != healthy {
			t.Fatalf("lookup %d = %v, want just %v", i, addrs, healthy)
		}
	}

	// Once the healthy replica deregisters, the drained one is the
	// tree-wide last resort.
	if _, err := usRes.Delete(oid, healthy.Address); err != nil {
		t.Fatal(err)
	}
	addrs, _, err := euRes.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != sick {
		t.Fatalf("last-resort lookup = %v, want %v", addrs, sick)
	}
}

func TestDrainedLastReplicaStillServes(t *testing.T) {
	tree, _ := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	only := testAddr("eu-nl-vu")
	oid, _, err := res.Insert(ids.Nil, only)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Drain(only.Address, true); err != nil {
		t.Fatal(err)
	}
	// A degraded replica beats no replica: when every live address is
	// draining, lookups keep returning them.
	addrs, _, err := res.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != only {
		t.Fatalf("addrs with all drained = %v, want %v", addrs, only)
	}
}

package gls

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gdn/internal/ids"
)

// TestShardDistribution checks that routing by the OID's trailing byte
// actually spreads uniform identifiers over every record stripe — a
// skewed map would quietly serialize the "parallel" hot path.
func TestShardDistribution(t *testing.T) {
	_, tree := deployWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	const inserts = 512
	for i := 0; i < inserts; i++ {
		if _, _, err := res.Insert(ids.Nil, testAddr("eu-nl-vu")); err != nil {
			t.Fatal(err)
		}
	}
	leaf := tree.domains["eu/nl"].nodes[0]
	populated := 0
	for i := range leaf.shards {
		leaf.shards[i].mu.RLock()
		if len(leaf.shards[i].recs) > 0 {
			populated++
		}
		leaf.shards[i].mu.RUnlock()
	}
	if populated < recShards/2 {
		t.Fatalf("512 random OIDs landed in only %d/%d shards", populated, recShards)
	}
	if got := leaf.Records(); got != inserts {
		t.Fatalf("Records() = %d across shards, want %d", got, inserts)
	}
}

// TestConcurrentLookupInsertExpiry hammers one directory node with
// parallel lookups, inserts and lease expiries; run under -race it
// proves the striped table needs no global lock.
func TestConcurrentLookupInsertExpiry(t *testing.T) {
	tree, clock := deployLeaseWorld(t)
	leaf := tree.domains["eu/nl"].nodes[0]

	// Seed a working set the lookers race over.
	seedRes := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	var seeded []ids.OID
	for i := 0; i < 64; i++ {
		oid, _, err := seedRes.InsertLease(ids.Nil, testAddr("eu-nl-vu"), time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		seeded = append(seeded, oid)
	}

	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	errc := make(chan error, workers*3)

	for w := 0; w < workers; w++ {
		r := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
		wg.Add(3)
		// Inserters: short leases, so the sweeps below find work.
		go func(r *Resolver) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				if _, _, err := r.InsertLease(ids.Nil, testAddr("eu-nl-vu"), time.Second); err != nil {
					errc <- err
					return
				}
			}
		}(r)
		// Lookers over the stable seeded set.
		go func(r *Resolver) {
			defer wg.Done()
			<-start
			for i := 0; i < 100; i++ {
				if _, _, err := r.Lookup(seeded[i%len(seeded)]); err != nil {
					errc <- err
					return
				}
			}
		}(r)
		// Janitors racing everyone, one stripe at a time.
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 40; i++ {
				leaf.sweepShard(i%recShards, clock.Now())
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Expire the short leases and sweep every stripe: only the
	// hour-long seeds must survive.
	clock.Advance(2 * time.Second)
	leaf.SweepExpired()
	if got := leaf.Records(); got != len(seeded) {
		t.Fatalf("after expiry sweep: %d records, want %d", got, len(seeded))
	}
}

// TestLookupDescentRacesSweep exercises the up-phase/down-phase walk
// (root pointer -> leaf addresses) while the janitor concurrently
// tears down expiring chains on both nodes. Under -race this is the
// lookup-descent vs sweep-janitor interleaving.
func TestLookupDescentRacesSweep(t *testing.T) {
	tree, clock := deployLeaseWorld(t)
	leaf := tree.domains["eu/nl"].nodes[0]
	region := tree.domains["eu"].nodes[0]
	root := tree.domains["root"].nodes[0]

	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	// Far resolver: its lookups climb to the root and descend the
	// pointer chain back down into eu/nl.
	far := mustResolver(t, tree, "us-ca-ucb", "us/ca")

	var stable []ids.OID
	for i := 0; i < 32; i++ {
		oid, _, err := res.InsertLease(ids.Nil, testAddr("eu-nl-vu"), time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		stable = append(stable, oid)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	errc := make(chan error, 4)

	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 120; i++ {
			if _, _, err := far.Lookup(stable[i%len(stable)]); err != nil {
				errc <- err
				return
			}
		}
	}()
	// Churner: short-lease inserts whose pointer chains the janitor
	// tears down mid-run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 40; i++ {
			if _, _, err := res.InsertLease(ids.Nil, testAddr("eu-nl-vu"), time.Second); err != nil {
				errc <- err
				return
			}
		}
	}()
	// Janitors on every level of the tree.
	for _, n := range []*Node{leaf, region, root} {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			<-start
			for i := 0; i < 60; i++ {
				n.sweepShard(i%recShards, clock.Now())
			}
		}(n)
	}
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Every stable object still resolves through the full descent.
	for _, oid := range stable {
		if _, _, err := far.Lookup(oid); err != nil {
			t.Fatalf("descent lost %s: %v", oid.Short(), err)
		}
	}
}

// TestConcurrentSessionRenewalAndExpiry races session heartbeats
// against the session reaper and lookups of attached entries.
func TestConcurrentSessionRenewalAndExpiry(t *testing.T) {
	tree, clock := deployLeaseWorld(t)
	leaf := tree.domains["eu/nl"].nodes[0]
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	sess, _, err := res.OpenSession("eu-nl-vu:gos/obj", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var oids []ids.OID
	for i := 0; i < 16; i++ {
		oid, _, err := sess.Attach(ids.Nil, testAddr("eu-nl-vu"))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	errc := make(chan error, 3)
	wg.Add(3)
	go func() { // heartbeat
		defer wg.Done()
		<-start
		for i := 0; i < 50; i++ {
			if _, err := sess.Renew(); err != nil {
				errc <- err
				return
			}
		}
	}()
	go func() { // reaper + lease sweeps, clock creeping forward
		defer wg.Done()
		<-start
		for i := 0; i < 50; i++ {
			clock.Advance(100 * time.Millisecond)
			leaf.SweepExpired()
		}
	}()
	go func() { // lookups of the attached entries
		defer wg.Done()
		<-start
		for i := 0; i < 100; i++ {
			if _, _, err := res.Lookup(oids[i%len(oids)]); err != nil && !errors.Is(err, ErrNotFound) {
				errc <- err
				return
			}
		}
	}()
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The heartbeats kept the session alive through 5s of clock
	// advance (TTL 10s): everything must still resolve.
	for _, oid := range oids {
		if _, _, err := res.Lookup(oid); err != nil {
			t.Fatalf("attached entry %s lost: %v", oid.Short(), err)
		}
	}
}

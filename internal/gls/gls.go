// Package gls implements the Globe Location Service: the worldwide
// mapping from location-independent object identifiers to the contact
// addresses of a distributed shared object's replicas (paper §3.5).
//
// The Internet is organized into a hierarchy of domains — leaf domains
// for campus-sized networks, combined recursively up to a root domain
// covering everything. Each domain has a directory node. A directory
// node stores, per object, either actual contact addresses or forwarding
// pointers to child nodes whose subtrees contain addresses. Lookups
// start at the client's leaf node, climb toward the root until an entry
// is found, then descend along forwarding pointers; the cost of a lookup
// is therefore proportional to the distance between the client and the
// nearest replica. Higher-level nodes are kept from becoming bottlenecks
// by partitioning them into subnodes, each responsible for a slice of
// the object-identifier space selected by hashing (ids.OID.Subnode).
//
// Directory nodes are RPC servers; every hop is a real message over the
// transport, so experiments measure genuine message counts and (on the
// simulated network) virtual wide-area cost.
package gls

import (
	"errors"
	"fmt"
	"strings"

	"gdn/internal/ids"
	"gdn/internal/wire"
)

// ErrNotFound is returned by lookups for objects with no registered
// contact address anywhere in the tree.
var ErrNotFound = errors.New("gls: object not found")

// ErrNoAddrs is returned when constructing a reference to a directory
// node with no subnode addresses.
var ErrNoAddrs = errors.New("gls: directory node reference has no addresses")

// ErrUnknownSession is returned by session-scoped operations naming a
// session the directory node does not hold — the node restarted without
// its snapshot, or the session aged out. The owner reacts by reopening
// the session and re-attaching its registrations.
var ErrUnknownSession = errors.New("gls: unknown registration session")

// IsUnknownSession recognizes ErrUnknownSession across an RPC boundary,
// where remote errors arrive flattened to text.
func IsUnknownSession(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrUnknownSession) || strings.Contains(err.Error(), ErrUnknownSession.Error())
}

// Operation codes of the directory-node protocol.
const (
	// OpLookup is the up-phase lookup sent by resolvers and child nodes.
	OpLookup uint16 = iota + 1
	// OpLookupDown descends a tree of forwarding pointers.
	OpLookupDown
	// OpInsert registers a contact address at this node. A nil OID asks
	// the service to allocate a fresh identifier (paper §6.1: "an object
	// identifier is allocated for the DSO by the GLS").
	OpInsert
	// OpDelete deregisters one contact address.
	OpDelete
	// OpInstallPtr installs a forwarding pointer; sent by a child node to
	// its parent while an insert propagates toward the root.
	OpInstallPtr
	// OpRemovePtr removes a forwarding pointer; sent by a child node to
	// its parent when its last entry for an object disappears.
	OpRemovePtr
	// OpStats returns the node's operation counters.
	OpStats
	// OpDump returns the node's full state; used by persistence and tests.
	OpDump
	// OpDrain marks (or unmarks) a transport address as draining at this
	// node: its contact addresses stop appearing in lookup responses
	// while other replicas remain, without deleting any registration
	// state. Object servers send it when their chunk store turns
	// chronically corrupt, so traffic shifts to healthy replicas until
	// the store heals (ROADMAP: "scrub results feed the GLS"). When the
	// address belongs to a registration session the flag is recorded on
	// the session, so it survives snapshot/restore with it.
	OpDrain
	// OpSessionOpen opens (or refreshes) a registration session: one
	// lease covering every contact address a server attaches through it.
	// The body carries the session identifier (allocated by the server),
	// the server's transport address, and the TTL in whole seconds.
	OpSessionOpen
	// OpSessionRenew renews a session's lease in one round trip — the
	// batched heartbeat that keeps renewal traffic O(servers) rather
	// than O(replicas). The response reports whether the node knows the
	// session; an unknown session must be reopened and its entries
	// re-attached.
	OpSessionRenew
	// OpSessionClose ends a session; every entry attached to it expires
	// immediately. The orderly-shutdown counterpart of letting the
	// session age out.
	OpSessionClose
	// OpSessionReattach reopens a session and re-attaches a batch of
	// entries in one round trip — the repair path after a directory
	// subnode lost the session (restart, age-out behind a partition).
	// Without it a heal triggered one insert RPC per attached entry, a
	// reopen storm proportional to the server's replica count. The body
	// carries the session open fields (identifier, address, TTL)
	// followed by the entries: a count, then (oid, contact address)
	// pairs.
	OpSessionReattach
)

// ContactAddress describes where one local representative of an object
// lives and how to talk to it (paper §3.4): the replication protocol it
// speaks, its transport address, the implementation to load into a
// client address space, and the representative's role in the protocol.
type ContactAddress struct {
	// Protocol names the replication protocol, e.g. "masterslave".
	Protocol string
	// Address is the transport address of the representative's
	// communication endpoint, e.g. "eu-nl-vu:gos/obj".
	Address string
	// Impl identifies the local-representative implementation a binding
	// client must load from its implementation registry (the paper's
	// remote-class-loading step, §3.4).
	Impl string
	// Role is the representative's protocol role: "server", "master",
	// "slave", "peer" or "" when the protocol has a single role.
	Role string
}

func (ca ContactAddress) String() string {
	if ca.Role == "" {
		return fmt.Sprintf("%s@%s", ca.Protocol, ca.Address)
	}
	return fmt.Sprintf("%s/%s@%s", ca.Protocol, ca.Role, ca.Address)
}

func (ca ContactAddress) encode(w *wire.Writer) {
	w.Str(ca.Protocol)
	w.Str(ca.Address)
	w.Str(ca.Impl)
	w.Str(ca.Role)
}

func decodeContactAddress(r *wire.Reader) ContactAddress {
	return ContactAddress{
		Protocol: r.Str(),
		Address:  r.Str(),
		Impl:     r.Str(),
		Role:     r.Str(),
	}
}

// EncodeAddrs serializes a contact-address set; it is used in lookup
// responses and in object-server checkpoints.
func EncodeAddrs(addrs []ContactAddress) []byte {
	w := wire.NewWriter(16 + 64*len(addrs))
	w.Count(len(addrs))
	for _, ca := range addrs {
		ca.encode(w)
	}
	return w.Bytes()
}

// DecodeAddrs reverses EncodeAddrs.
func DecodeAddrs(b []byte) ([]ContactAddress, error) {
	r := wire.NewReader(b)
	addrs := decodeAddrList(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return addrs, nil
}

// EncodeLookupResult serializes a lookup response: the healthy contact
// addresses plus, separately, addresses that are alive but draining.
// Keeping the two apart lets every node on the search path keep
// looking for healthy replicas elsewhere in the tree when a subtree
// answers with drained ones only — a draining replica must not shadow
// a healthy sibling — while still flowing the drained set upward as
// the last resort the client gets when nothing healthy exists.
func EncodeLookupResult(healthy, drained []ContactAddress) []byte {
	h := EncodeAddrs(healthy)
	d := EncodeAddrs(drained)
	w := wire.NewWriter(16 + len(h) + len(d))
	w.Bytes32(h)
	w.Bytes32(d)
	return w.Bytes()
}

// DecodeLookupResult reverses EncodeLookupResult.
func DecodeLookupResult(b []byte) (healthy, drained []ContactAddress, err error) {
	r := wire.NewReader(b)
	hb := r.Bytes32()
	db := r.Bytes32()
	if err := r.Done(); err != nil {
		return nil, nil, err
	}
	if healthy, err = DecodeAddrs(hb); err != nil {
		return nil, nil, err
	}
	if drained, err = DecodeAddrs(db); err != nil {
		return nil, nil, err
	}
	return healthy, drained, nil
}

func decodeAddrList(r *wire.Reader) []ContactAddress {
	n := r.Count()
	if r.Err() != nil {
		return nil
	}
	addrs := make([]ContactAddress, 0, n)
	for i := 0; i < n; i++ {
		addrs = append(addrs, decodeContactAddress(r))
	}
	return addrs
}

// Ref identifies one directory node: the addresses of its subnodes.
// An unpartitioned node has exactly one address. Requests for an object
// must be routed to the subnode selected by the object's identifier so
// all parties agree on which subnode owns which slice of the space.
type Ref struct {
	Addrs []string
}

// IsZero reports whether the reference names no node (e.g. the parent
// reference of the root).
func (r Ref) IsZero() bool { return len(r.Addrs) == 0 }

// Route returns the subnode address responsible for oid.
func (r Ref) Route(oid ids.OID) string {
	return r.Addrs[oid.Subnode(len(r.Addrs))]
}

func (r Ref) encode(w *wire.Writer) {
	w.Count(len(r.Addrs))
	for _, a := range r.Addrs {
		w.Str(a)
	}
}

func decodeRef(r *wire.Reader) Ref {
	n := r.Count()
	if r.Err() != nil {
		return Ref{}
	}
	ref := Ref{Addrs: make([]string, 0, n)}
	for i := 0; i < n; i++ {
		ref.Addrs = append(ref.Addrs, r.Str())
	}
	return ref
}

// Counters is a snapshot of the operations one subnode has handled. The
// partitioning experiment (§3.5) reads these to show load spreading
// across subnodes.
type Counters struct {
	Lookups       int64 // up-phase lookups handled
	Descends      int64 // down-phase lookups handled
	Inserts       int64 // contact-address registrations (including renewals)
	Deletes       int64 // deregistrations
	PtrOps        int64 // forwarding-pointer installs and removals
	Expiries      int64 // leased contact addresses aged out
	Drains        int64 // drain/undrain requests handled
	SessionOpens  int64 // registration sessions opened (or reopened)
	SessionRenews int64 // batched session renewals handled
	SessionCloses int64 // orderly session closes handled
}

// Total sums all operation classes.
func (c Counters) Total() int64 {
	return c.Lookups + c.Descends + c.Inserts + c.Deletes + c.PtrOps + c.Drains +
		c.SessionOpens + c.SessionRenews + c.SessionCloses
}

func (c Counters) encode(w *wire.Writer) {
	w.Int64(c.Lookups)
	w.Int64(c.Descends)
	w.Int64(c.Inserts)
	w.Int64(c.Deletes)
	w.Int64(c.PtrOps)
	w.Int64(c.Expiries)
	w.Int64(c.Drains)
	w.Int64(c.SessionOpens)
	w.Int64(c.SessionRenews)
	w.Int64(c.SessionCloses)
}

func decodeCounters(r *wire.Reader) Counters {
	return Counters{
		Lookups:       r.Int64(),
		Descends:      r.Int64(),
		Inserts:       r.Int64(),
		Deletes:       r.Int64(),
		PtrOps:        r.Int64(),
		Expiries:      r.Int64(),
		Drains:        r.Int64(),
		SessionOpens:  r.Int64(),
		SessionRenews: r.Int64(),
		SessionCloses: r.Int64(),
	}
}

package gls

import "gdn/internal/obs"

// Registry handles for the location service. The per-node Counters
// struct remains the per-instance view; these aggregate across every
// directory subnode in the process, and the histograms give the
// latency distributions the 1M-object scaling work needs (ROADMAP).
var (
	mResolverLookupSeconds = obs.Default.Histogram("gdn_gls_resolver_lookup_seconds",
		"client-observed lookup latency at the resolver",
		obs.Seconds, obs.TimeBuckets)
	mSessionRenewSeconds = obs.Default.Histogram("gdn_gls_session_renew_seconds",
		"server-session renewal round latency (all leaf subnodes)",
		obs.Seconds, obs.TimeBuckets)
	mSessionsOpened = obs.Default.Counter("gdn_gls_sessions_opened_total",
		"registration sessions opened or refreshed at directory nodes")
	mSessionsClosed = obs.Default.Counter("gdn_gls_sessions_closed_total",
		"registration sessions closed explicitly by their server")
	mSessionsExpired = obs.Default.Counter("gdn_gls_sessions_expired_total",
		"registration sessions reaped by the lease sweeper")
	mSnapshotAppendSeconds = obs.Default.Histogram("gdn_gls_snapshot_append_seconds",
		"journal flush latency: one batched append write plus fsync",
		obs.Seconds, obs.TimeBuckets)
	mSnapshotCompactSeconds = obs.Default.Histogram("gdn_gls_snapshot_compact_seconds",
		"latency of folding the journal into a fresh base snapshot",
		obs.Seconds, obs.TimeBuckets)
	mLogBytesTotal = obs.Default.Counter("gdn_gls_log_bytes_total",
		"bytes appended to GLS journals across all subnodes")
)

// LookupLatency and RenewLatency expose the resolver-side latency
// histograms; benchmarks read quantiles from these snapshots instead
// of re-deriving timings.
func LookupLatency() obs.HistogramSnapshot { return mResolverLookupSeconds.Snapshot() }

// RenewLatency is the renewal-round counterpart of LookupLatency.
func RenewLatency() obs.HistogramSnapshot { return mSessionRenewSeconds.Snapshot() }

// opNames maps directory-node protocol ops to the label values of the
// gdn_gls_op_seconds histogram family.
var opNames = map[uint16]string{
	OpLookup:          "lookup",
	OpLookupDown:      "lookup_down",
	OpInsert:          "insert",
	OpDelete:          "delete",
	OpInstallPtr:      "install_ptr",
	OpRemovePtr:       "remove_ptr",
	OpDrain:           "drain",
	OpSessionOpen:     "session_open",
	OpSessionRenew:    "session_renew",
	OpSessionClose:    "session_close",
	OpSessionReattach: "session_reattach",
	OpStats:           "stats",
	OpDump:            "dump",
}

// mOpSeconds holds one histogram per known op, keyed by op code, so
// the hot handle path is a map read plus an atomic observe.
var mOpSeconds = func() map[uint16]*obs.Histogram {
	m := make(map[uint16]*obs.Histogram, len(opNames))
	for op, name := range opNames {
		m[op] = obs.Default.Histogram(
			"gdn_gls_op_seconds{op=\""+name+"\"}",
			"directory-node operation service time by op",
			obs.Seconds, obs.TimeBuckets)
	}
	return m
}()

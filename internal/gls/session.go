package gls

import (
	"fmt"
	"sync"
	"time"

	"gdn/internal/ids"
	"gdn/internal/wire"
)

// ServerSession is the client side of a registration session: one lease
// a server (a GOS, or a caching HTTPD acting as a replica) holds with
// its leaf directory node, covering every contact address attached
// through it. The server heartbeats with a single Renew per interval —
// O(1) in the number of hosted replicas — and when it dies, every
// attached entry ages out of lookups within one TTL.
//
// A leaf directory node may be partitioned into subnodes, each owning a
// slice of the object-identifier space; the session is opened at every
// subnode, attaches route to the subnode owning each identifier, and
// Renew touches each subnode once. The session remembers what it
// attached, so a directory subnode that lost the session (restarted
// without its snapshot, or reaped it after missed heartbeats) is
// repaired transparently: the next Renew reopens the session there and
// re-attaches the entries that subnode owns.
//
// ServerSession is safe for concurrent use.
type ServerSession struct {
	res  *Resolver
	id   ids.OID
	addr string
	ttl  time.Duration

	mu       sync.Mutex
	attached map[ids.OID]ContactAddress

	// drainSet/draining are the server's declared drain state. Once set,
	// every renewal (and re-attach repair) carries the bit, so the
	// drain both propagates in the heartbeat the server was sending
	// anyway and re-establishes itself on subnodes that lost it.
	drainMu  sync.Mutex
	drainSet bool
	draining bool

	reopenMu  sync.Mutex
	reopening map[string]*reopenFlight
}

// reopenFlight is one in-progress session reopen at a subnode, shared
// by every caller that observed ErrUnknownSession while it was running.
type reopenFlight struct {
	done chan struct{}
	cost time.Duration
	err  error
}

// sessionCloseTimeout bounds each per-subnode RPC in Close. Close runs
// on shutdown paths, and an unreachable subnode (crashed, or behind a
// partition) must not wedge them: its entries age out within one
// session TTL anyway, so waiting longer buys nothing.
var sessionCloseTimeout = 2 * time.Second

// OpenSession opens a registration session for a server at the given
// transport address: its registrations are attached with Attach and
// kept alive with Renew. The ttl must be positive; sub-second TTLs
// round up to one second.
func (r *Resolver) OpenSession(addr string, ttl time.Duration) (*ServerSession, time.Duration, error) {
	if r.leaf.IsZero() {
		return nil, 0, ErrNoAddrs
	}
	if addr == "" || ttl <= 0 {
		return nil, 0, fmt.Errorf("gls: a registration session needs an address and a positive TTL")
	}
	s := &ServerSession{
		res:      r,
		id:       ids.New(),
		addr:     addr,
		ttl:      ttl,
		attached: make(map[ids.OID]ContactAddress),
	}
	var total time.Duration
	for _, sub := range r.leaf.Addrs {
		cost, err := s.openAt(sub)
		total += cost
		if err != nil {
			return nil, total, fmt.Errorf("gls: open session at %s: %w", sub, err)
		}
	}
	return s, total, nil
}

// ID returns the session identifier.
func (s *ServerSession) ID() ids.OID { return s.id }

// Addr returns the transport address the session covers.
func (s *ServerSession) Addr() string { return s.addr }

// TTL returns the session lease lifetime.
func (s *ServerSession) TTL() time.Duration { return s.ttl }

// Attached returns how many registrations ride this session.
func (s *ServerSession) Attached() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.attached)
}

func (s *ServerSession) ttlSecs() uint32 {
	return uint32((s.ttl + time.Second - 1) / time.Second)
}

// openAt (re)opens the session at one subnode.
func (s *ServerSession) openAt(sub string) (time.Duration, error) {
	w := wire.NewWriter(64 + len(s.addr))
	w.OID(s.id)
	w.Str(s.addr)
	w.Uint32(s.ttlSecs())
	_, cost, err := s.res.client(sub).Call(OpSessionOpen, w.Bytes())
	return cost, err
}

// Attach registers one contact address through the session: the entry
// stays in lookups exactly as long as the session is renewed. A nil oid
// asks the service to allocate a fresh identifier; the identifier
// actually registered is returned either way. When the owning subnode
// no longer knows the session, Attach reopens it there and retries
// once.
func (s *ServerSession) Attach(oid ids.OID, ca ContactAddress) (ids.OID, time.Duration, error) {
	if oid.IsNil() {
		oid = ids.New()
	}
	got, cost, err := s.res.insertAt(s.res.leaf, oid, ca, 0, s.id)
	if IsUnknownSession(err) {
		c, oerr := s.reopenAt(s.res.leaf.Route(oid))
		cost += c
		if oerr != nil {
			return ids.Nil, cost, fmt.Errorf("gls: reopen session: %w", oerr)
		}
		got, c, err = s.res.insertAt(s.res.leaf, oid, ca, 0, s.id)
		cost += c
	}
	if err != nil {
		return ids.Nil, cost, err
	}
	s.mu.Lock()
	s.attached[got] = ca
	s.mu.Unlock()
	return got, cost, nil
}

// Detach deregisters one attached entry now (rather than letting it die
// with the session) and drops it from the session's re-attach set.
func (s *ServerSession) Detach(oid ids.OID) (time.Duration, error) {
	s.mu.Lock()
	ca, ok := s.attached[oid]
	delete(s.attached, oid)
	s.mu.Unlock()
	if !ok {
		return 0, nil
	}
	return s.res.Delete(oid, ca.Address)
}

// Renew extends the session lease — one round trip per leaf subnode, no
// matter how many entries are attached. A subnode whose state disagrees
// with the server's books is repaired in place: one that lost the
// session entirely (known=false), or one that rolled back to a snapshot
// older than some attaches (its attached-entry count differs), gets the
// session reopened and the entries that subnode owns re-attached.
func (s *ServerSession) Renew() (time.Duration, error) {
	start := time.Now()
	defer mSessionRenewSeconds.ObserveSince(start)
	w := wire.NewWriter(32)
	w.OID(s.id)
	w.Uint32(s.ttlSecs())
	if hasDrain, draining := s.drainState(); hasDrain {
		w.Bool(true)
		w.Bool(draining)
	}
	body := w.Bytes()

	// What each subnode should be holding, by the server's own books. A
	// single-subnode leaf skips the per-entry routing pass: with a
	// million attached entries the renewal must stay O(1), not O(n).
	expect := make(map[string]int, len(s.res.leaf.Addrs))
	s.mu.Lock()
	if len(s.res.leaf.Addrs) == 1 {
		expect[s.res.leaf.Addrs[0]] = len(s.attached)
	} else {
		for oid := range s.attached {
			expect[s.res.leaf.Route(oid)]++
		}
	}
	s.mu.Unlock()

	var total time.Duration
	var firstErr error
	for _, sub := range s.res.leaf.Addrs {
		resp, cost, err := s.res.client(sub).Call(OpSessionRenew, body)
		total += cost
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("gls: renew session at %s: %w", sub, err)
			}
			continue
		}
		r := wire.NewReader(resp)
		known := r.Bool()
		attached := int(r.Uint32())
		if err := r.Done(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !known || attached != expect[sub] {
			cost, err := s.reattachAt(sub)
			total += cost
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return total, firstErr
}

// reopenAt coalesces concurrent session reopens at one subnode. When a
// partition heals, every in-flight Attach observes ErrUnknownSession at
// once; without coalescing each would issue its own OpSessionOpen — a
// reopen storm proportional to the attach concurrency. The first caller
// performs the RPC, the rest wait for its outcome; only the leader
// reports the RPC's cost, so the network meter stays honest.
func (s *ServerSession) reopenAt(sub string) (time.Duration, error) {
	s.reopenMu.Lock()
	if f := s.reopening[sub]; f != nil {
		s.reopenMu.Unlock()
		<-f.done
		return 0, f.err
	}
	f := &reopenFlight{done: make(chan struct{})}
	if s.reopening == nil {
		s.reopening = make(map[string]*reopenFlight)
	}
	s.reopening[sub] = f
	s.reopenMu.Unlock()

	f.cost, f.err = s.openAt(sub)

	s.reopenMu.Lock()
	delete(s.reopening, sub)
	s.reopenMu.Unlock()
	close(f.done)
	return f.cost, f.err
}

// reattachAt repairs a directory subnode that lost the session
// (restarted without — or rolled back beyond — its snapshot): one
// OpSessionReattach round trip reopens the session there and
// re-registers every attached entry that subnode owns. The batched op
// replaces the earlier open-plus-insert-per-entry sequence, whose cost
// after a partition heal grew with the server's replica count.
func (s *ServerSession) reattachAt(sub string) (time.Duration, error) {
	s.mu.Lock()
	entries := make(map[ids.OID]ContactAddress, len(s.attached))
	for oid, ca := range s.attached {
		if s.res.leaf.Route(oid) == sub {
			entries[oid] = ca
		}
	}
	s.mu.Unlock()
	w := wire.NewWriter(64 + len(s.addr) + 80*len(entries))
	w.OID(s.id)
	w.Str(s.addr)
	w.Uint32(s.ttlSecs())
	w.Count(len(entries))
	for oid, ca := range entries {
		w.OID(oid)
		ca.encode(w)
	}
	if hasDrain, draining := s.drainState(); hasDrain {
		w.Bool(true)
		w.Bool(draining)
	}
	_, cost, err := s.res.client(sub).Call(OpSessionReattach, w.Bytes())
	if err != nil {
		return cost, fmt.Errorf("gls: re-attach session at %s: %w", sub, err)
	}
	return cost, nil
}

// AttachBatch registers many contact addresses through the session in
// one batched OpSessionReattach round trip per leaf subnode — the
// bulk path for a server bringing a large replica population online,
// where per-entry Attach RPCs would cost a round trip each. Callers
// mint the identifiers themselves (a nil identifier is rejected, since
// a batch cannot report per-entry allocations).
func (s *ServerSession) AttachBatch(entries map[ids.OID]ContactAddress) (time.Duration, error) {
	bySub := make(map[string][]reattachEntry, len(s.res.leaf.Addrs))
	for oid, ca := range entries {
		if oid.IsNil() {
			return 0, fmt.Errorf("gls: AttachBatch needs caller-minted identifiers")
		}
		sub := s.res.leaf.Route(oid)
		bySub[sub] = append(bySub[sub], reattachEntry{oid: oid, ca: ca})
	}
	hasDrain, draining := s.drainState()
	var total time.Duration
	for sub, batch := range bySub {
		w := wire.NewWriter(64 + len(s.addr) + 80*len(batch))
		w.OID(s.id)
		w.Str(s.addr)
		w.Uint32(s.ttlSecs())
		w.Count(len(batch))
		for _, e := range batch {
			w.OID(e.oid)
			e.ca.encode(w)
		}
		if hasDrain {
			w.Bool(true)
			w.Bool(draining)
		}
		_, cost, err := s.res.client(sub).Call(OpSessionReattach, w.Bytes())
		total += cost
		if err != nil {
			return total, fmt.Errorf("gls: batch attach at %s: %w", sub, err)
		}
	}
	s.mu.Lock()
	for oid, ca := range entries {
		s.attached[oid] = ca
	}
	s.mu.Unlock()
	return total, nil
}

// drainState returns the declared drain bit and whether one was set.
func (s *ServerSession) drainState() (set, draining bool) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.drainSet, s.draining
}

// Drain marks (or clears) the session's transport address as draining:
// attached entries stop appearing in lookups while healthy alternatives
// exist, without losing any registration state. The bit rides the
// session heartbeat — Drain records the desired state and performs one
// immediate Renew, so the change reaches every leaf subnode in the one
// batched RPC a renewal already costs (the OpDrain fan-out this
// replaces paid a dedicated RPC per subnode), and every subsequent
// heartbeat re-asserts it. The directory node records the flag on the
// session, so it survives a snapshot restore with it.
func (s *ServerSession) Drain(draining bool) (time.Duration, error) {
	s.drainMu.Lock()
	s.drainSet = true
	s.draining = draining
	s.drainMu.Unlock()
	return s.Renew()
}

// Close ends the session at every subnode: each attached entry expires
// immediately. This is the orderly-shutdown path; a crashed server
// simply stops renewing and its entries age out within one TTL. Each
// per-subnode close is bounded by a short deadline so an unreachable
// subnode cannot block shutdown indefinitely — its entries expire with
// the unrenewed session regardless.
func (s *ServerSession) Close() (time.Duration, error) {
	w := wire.NewWriter(ids.Size)
	w.OID(s.id)
	body := w.Bytes()
	var total time.Duration
	var firstErr error
	for _, sub := range s.res.leaf.Addrs {
		_, cost, err := s.res.client(sub).CallTimeout(OpSessionClose, body, sessionCloseTimeout)
		total += cost
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

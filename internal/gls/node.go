package gls

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gdn/internal/ids"
	"gdn/internal/rpc"
	"gdn/internal/sec"
	"gdn/internal/transport"
	"gdn/internal/wire"
)

// Config describes one directory subnode.
type Config struct {
	// Domain is the domain this node's directory serves, e.g. "root",
	// "eu" or "eu/nl-vu". All subnodes of one domain share it.
	Domain string
	// Site is the simulated site (or host) the subnode runs on.
	Site string
	// Addr is the transport address the subnode listens on.
	Addr string
	// Self references the whole directory node (all subnode addresses,
	// including this one); it is what gets installed in parent
	// forwarding pointers.
	Self Ref
	// Parent references the parent domain's directory node; zero for
	// the root.
	Parent Ref
	// Seed makes the random choice among multiple forwarding pointers
	// reproducible. The paper picks a pointer at random (§3.5).
	Seed int64
	// Auth, when non-nil, upgrades every connection to an authenticated
	// security channel. Lookups are admitted from anyone, but inserts
	// and deletes only from object servers and administrators, and
	// pointer operations only from fellow directory nodes (paper §6.1,
	// requirement 2).
	Auth *sec.Config
	// Clock supplies the time lease expiry is judged against; nil means
	// wall time. Tests install controllable clocks here.
	Clock func() time.Time
	// SweepEvery is the interval between lease-expiry sweeps that
	// reclaim aged-out records (and tear down their pointer chains).
	// Correctness does not depend on it — lookups filter expired leases
	// lazily — so it defaults generously (5s); negative disables the
	// janitor entirely. The janitor visits one record shard per tick
	// (ticking recShards times per SweepEvery), so no single sweep ever
	// write-locks more than 1/16th of the table.
	SweepEvery time.Duration
	// StateDir, when non-empty, enables incremental persistence: the
	// node restores from <StateDir>/base.snap plus <StateDir>/journal.log
	// at start, appends every mutation to the journal (flushed and
	// fsynced in batches every FlushEvery), and folds the journal into a
	// fresh base snapshot whenever it outgrows CompactBytes. Empty
	// leaves persistence to the caller via Snapshot/Restore.
	StateDir string
	// FlushEvery is the journal flush cadence; zero means one second.
	// Mutations appended since the last flush are the crash loss
	// window — and lease semantics absorb it: a replayed journal
	// restarts every lease relative to the restoring clock, and session
	// owners re-attach anything the node forgot.
	FlushEvery time.Duration
	// CompactBytes is the journal size that triggers folding it into
	// the base snapshot; zero means 8 MiB.
	CompactBytes int64
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// defaultSweepEvery is the lease-janitor interval when the config does
// not choose one.
const defaultSweepEvery = 5 * time.Second

// session is one server's registration session: a single lease covering
// every contact address the server attached through it. Renewal touches
// the session, not the entries, so a server hosting thousands of
// replicas keeps them all alive with one renew per heartbeat — and a
// server that dies takes every attached entry out of lookups within one
// TTL. The hot fields are atomics because lookups consult sessions
// while holding only a record-shard read lock; addr and ttl are guarded
// by the session's own mutex.
type session struct {
	id ids.OID

	mu   sync.Mutex
	addr string // the server's transport address
	ttl  time.Duration

	expiresNano atomic.Int64
	closed      atomic.Bool
	// drained records the drain state as a session attribute, so a
	// snapshot restore brings the drain back with the session instead
	// of forgetting it until the server's next scrub pass.
	drained atomic.Bool
	// attached counts the entries riding this session. Renewal
	// responses echo it, so a server can tell that the node rolled
	// back to a snapshot older than some attaches (the count
	// disagrees with its own books) and re-attach — the self-healing
	// the per-replica heartbeat used to provide for free.
	attached atomic.Int64
}

func (s *session) expired(now time.Time) bool {
	return s.closed.Load() || now.UnixNano() > s.expiresNano.Load()
}

// fields returns the mutex-guarded addr and ttl in one acquisition.
func (s *session) fields() (addr string, ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr, s.ttl
}

// leasedAddr is one registered contact address with its liveness
// contract: attached to a session (sess non-nil — expiry and drain
// follow the session), under its own lease (expires non-zero), or
// permanent (the pre-lease behaviour, still used by experiments that
// register addresses by hand and never heartbeat).
type leasedAddr struct {
	ca      ContactAddress
	expires time.Time
	sess    *session
}

func (la leasedAddr) expired(now time.Time) bool {
	if la.sess != nil {
		return la.sess.expired(now)
	}
	return !la.expires.IsZero() && now.After(la.expires)
}

// record is one object's entry in a directory node: contact addresses
// stored here, and forwarding pointers to child nodes whose subtrees
// store addresses. Either set may be non-empty; intermediate nodes
// normally hold only pointers, but may hold addresses for highly mobile
// objects (§3.5).
type record struct {
	addrs []leasedAddr
	ptrs  map[string]Ref // child domain -> child node reference
}

func (rec *record) empty() bool { return len(rec.addrs) == 0 && len(rec.ptrs) == 0 }

// recShards is the number of lock stripes the record table is split
// over — the same trick as the rpc pending table's 8 stripes and the
// store index's 16, sized so sixteen concurrent resolvers rarely
// collide on a stripe.
const recShards = 16

// recShard is one stripe of the record table. Its mutex is held for
// map surgery only — never across an RPC, which the lockrpc analyzer
// enforces through the "shard" in the type name.
type recShard struct {
	mu   sync.RWMutex
	recs map[ids.OID]*record
}

// clientShards stripes the outbound client cache so descent fan-out
// does not serialize on one mutex.
const clientShards = 8

// clientShard is one stripe of the outbound rpc.Client cache. Only
// construction happens under the mutex (NewClient dials lazily);
// calls and Close always happen outside it.
type clientShard struct {
	mu sync.Mutex
	m  map[string]*rpc.Client
}

// counters is the atomic backing of the exported Counters snapshot:
// per-op increments must not share one mutex when sixteen resolvers
// hit the node in parallel.
type counters struct {
	lookups, descends, inserts, deletes, ptrOps, expiries, drains,
	sessionOpens, sessionRenews, sessionCloses atomic.Int64
}

// Node is one directory subnode. It serves the directory-node protocol
// on its configured address and talks to its parent and children as an
// RPC client. All methods are safe for concurrent use.
type Node struct {
	cfg Config
	net transport.Network

	shards [recShards]recShard

	sessMu   sync.RWMutex
	sessions map[ids.OID]*session

	drainMu sync.RWMutex
	drained map[string]bool // transport address -> draining

	rndMu sync.Mutex
	rnd   *rand.Rand

	stats counters

	clients [clientShards]clientShard

	journal *journal // nil unless cfg.StateDir is set

	server    *rpc.Server
	stopSweep chan struct{}
	sweepOnce sync.Once
}

// shard returns the record stripe for an object. Object identifiers
// are uniformly random (crypto/rand at mint, sha256 when derived), so
// any byte spreads the stripes evenly; the last avoids correlating
// with Subnode's hash of the whole identifier.
func (n *Node) shard(oid ids.OID) *recShard {
	return &n.shards[int(oid[ids.Size-1])&(recShards-1)]
}

// Start creates a directory subnode and begins serving it.
func Start(net transport.Network, cfg Config) (*Node, error) {
	if cfg.Domain == "" {
		return nil, fmt.Errorf("gls: node needs a domain")
	}
	if len(cfg.Self.Addrs) == 0 {
		return nil, fmt.Errorf("gls: node %q: %w", cfg.Domain, ErrNoAddrs)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.SweepEvery == 0 {
		cfg.SweepEvery = defaultSweepEvery
	}
	n := &Node{
		cfg:      cfg,
		net:      net,
		drained:  make(map[string]bool),
		sessions: make(map[ids.OID]*session),
		rnd:      rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := range n.shards {
		n.shards[i].recs = make(map[ids.OID]*record)
	}
	for i := range n.clients {
		n.clients[i].m = make(map[string]*rpc.Client)
	}
	// Recover persisted state before serving: no request may observe
	// (or journal over) a half-replayed node.
	if cfg.StateDir != "" {
		j, err := openJournal(n)
		if err != nil {
			return nil, err
		}
		n.journal = j
	}
	opts := []rpc.ServerOption{rpc.WithServerLog(cfg.Logf)}
	if cfg.Auth != nil {
		opts = append(opts, rpc.WithServerWrapper(cfg.Auth.WrapServer))
	}
	srv, err := rpc.Serve(net, cfg.Addr, n.handle, opts...)
	if err != nil {
		if n.journal != nil {
			n.journal.close()
		}
		return nil, err
	}
	n.server = srv
	if n.journal != nil {
		n.journal.startFlusher()
	}
	if cfg.SweepEvery > 0 {
		n.stopSweep = make(chan struct{})
		go n.sweepLoop(n.stopSweep)
	}
	return n, nil
}

// Domain returns the domain this subnode serves.
func (n *Node) Domain() string { return n.cfg.Domain }

// Addr returns the subnode's transport address.
func (n *Node) Addr() string { return n.cfg.Addr }

// Close stops serving, flushes the journal when one is open, and
// releases client connections.
func (n *Node) Close() error {
	if n.stopSweep != nil {
		n.sweepOnce.Do(func() { close(n.stopSweep) })
	}
	err := n.server.Close()
	if n.journal != nil {
		if jerr := n.journal.close(); err == nil {
			err = jerr
		}
	}
	var open []*rpc.Client
	for i := range n.clients {
		sh := &n.clients[i]
		sh.mu.Lock()
		for _, c := range sh.m {
			open = append(open, c)
		}
		sh.m = make(map[string]*rpc.Client)
		sh.mu.Unlock()
	}
	for _, c := range open {
		c.Close()
	}
	return err
}

// Stats returns a snapshot of this subnode's operation counters.
func (n *Node) Stats() Counters {
	return Counters{
		Lookups:       n.stats.lookups.Load(),
		Descends:      n.stats.descends.Load(),
		Inserts:       n.stats.inserts.Load(),
		Deletes:       n.stats.deletes.Load(),
		PtrOps:        n.stats.ptrOps.Load(),
		Expiries:      n.stats.expiries.Load(),
		Drains:        n.stats.drains.Load(),
		SessionOpens:  n.stats.sessionOpens.Load(),
		SessionRenews: n.stats.sessionRenews.Load(),
		SessionCloses: n.stats.sessionCloses.Load(),
	}
}

// Records returns the number of objects this subnode has entries for.
func (n *Node) Records() int {
	total := 0
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.RLock()
		total += len(sh.recs)
		sh.mu.RUnlock()
	}
	return total
}

// clientStripe hashes a transport address onto a client-cache stripe
// (FNV-1a, folded to the stripe count).
func clientStripe(addr string) int {
	h := uint32(2166136261)
	for i := 0; i < len(addr); i++ {
		h ^= uint32(addr[i])
		h *= 16777619
	}
	return int(h) & (clientShards - 1)
}

func (n *Node) client(addr string) *rpc.Client {
	sh := &n.clients[clientStripe(addr)]
	sh.mu.Lock()
	c, ok := sh.m[addr]
	if !ok {
		var opts []rpc.ClientOption
		if n.cfg.Auth != nil {
			opts = append(opts, rpc.WithClientWrapper(n.cfg.Auth.WrapClient))
		}
		c = rpc.NewClient(n.net, n.cfg.Site, addr, opts...)
		sh.m[addr] = c
	}
	sh.mu.Unlock()
	return c
}

func (n *Node) isRoot() bool { return n.cfg.Parent.IsZero() }

// handle dispatches one directory-node protocol request.
func (n *Node) handle(call *rpc.Call) ([]byte, error) {
	if h := mOpSeconds[call.Op]; h != nil {
		start := time.Now()
		defer h.ObserveSince(start)
	}
	switch call.Op {
	case OpLookup:
		return n.handleLookup(call, false)
	case OpLookupDown:
		return n.handleLookup(call, true)
	case OpInsert:
		return n.handleInsert(call)
	case OpDelete:
		return n.handleDelete(call)
	case OpInstallPtr:
		return n.handleInstallPtr(call)
	case OpRemovePtr:
		return n.handleRemovePtr(call)
	case OpDrain:
		return n.handleDrain(call)
	case OpSessionOpen:
		return n.handleSessionOpen(call)
	case OpSessionRenew:
		return n.handleSessionRenew(call)
	case OpSessionClose:
		return n.handleSessionClose(call)
	case OpSessionReattach:
		return n.handleSessionReattach(call)
	case OpStats:
		return n.handleStats()
	case OpDump:
		return n.Snapshot(), nil
	default:
		return nil, fmt.Errorf("gls: unknown op %d", call.Op)
	}
}

// charge records nested cost on a call when one exists; janitor-driven
// operations run without a call to charge.
func charge(call *rpc.Call, d time.Duration) {
	if call != nil {
		call.Charge(d)
	}
}

// authorize enforces role-based admission when the node runs with a
// security configuration. Without one (simulations, benchmarks) every
// caller is admitted.
func (n *Node) authorize(call *rpc.Call, roles ...string) error {
	if n.cfg.Auth == nil {
		return nil
	}
	if !sec.HasRole(call.Peer, roles...) {
		return fmt.Errorf("%w: peer %q may not perform op %d", sec.ErrUnauthorized, call.Peer, call.Op)
	}
	return nil
}

// handleLookup serves both lookup phases. In the up phase a miss
// forwards to the parent; in the down phase the request must terminate
// in this subtree.
func (n *Node) handleLookup(call *rpc.Call, down bool) ([]byte, error) {
	r := wire.NewReader(call.Body)
	oid := r.OID()
	if err := r.Done(); err != nil {
		return nil, err
	}
	if down {
		n.stats.descends.Add(1)
	} else {
		n.stats.lookups.Add(1)
	}

	// Collect the record's live entries under the shard read lock only;
	// the address-wide drain set is consulted after release, and the
	// session drain flag is an atomic — no lock ordering to get wrong,
	// and the stripe is never held across the drain map.
	type candidate struct {
		ca          ContactAddress
		sessDrained bool
	}
	now := n.cfg.Clock()
	sh := n.shard(oid)
	sh.mu.RLock()
	rec := sh.recs[oid]
	var cands []candidate
	var childRefs []Ref
	if rec != nil {
		for _, la := range rec.addrs {
			if la.expired(now) {
				// A lease (or session) its owner stopped renewing: the
				// replica is gone (or cut off); it must not be handed to
				// clients. The sweep janitor reclaims the entry itself.
				continue
			}
			cands = append(cands, candidate{
				ca:          la.ca,
				sessDrained: la.sess != nil && la.sess.drained.Load(),
			})
		}
		for _, ref := range rec.ptrs {
			childRefs = append(childRefs, ref)
		}
	}
	sh.mu.RUnlock()

	var addrs, drainedAddrs []ContactAddress
	if len(cands) > 0 {
		n.drainMu.RLock()
		for _, c := range cands {
			if c.sessDrained || n.drained[c.ca.Address] {
				drainedAddrs = append(drainedAddrs, c.ca)
			} else {
				addrs = append(addrs, c.ca)
			}
		}
		n.drainMu.RUnlock()
	}

	// Healthy contact addresses stored here end the search immediately;
	// a local drained set is only the fallback of last resort.
	if len(addrs) > 0 {
		return EncodeLookupResult(addrs, nil), nil
	}

	// Forwarding pointers send the search down into a child subtree,
	// starting with a random one when there are several (§3.5). A
	// subtree whose entries all expired, died or drained does not end
	// the search: the remaining children are tried, and in the up
	// phase it finally continues toward the root — neither a stale
	// pointer chain (sweep-driven teardown pending) nor a draining
	// replica may hide replicas that are healthy elsewhere in the
	// tree. Drained addresses encountered along the way are carried as
	// the fallback.
	if len(childRefs) > 0 {
		if len(childRefs) > 1 {
			n.rndMu.Lock()
			n.rnd.Shuffle(len(childRefs), func(i, j int) {
				childRefs[i], childRefs[j] = childRefs[j], childRefs[i]
			})
			n.rndMu.Unlock()
		}
		var descendErr error
		for _, ref := range childRefs {
			resp, cost, err := n.client(ref.Route(oid)).Call(OpLookupDown, encodeOID(oid))
			charge(call, cost)
			if err != nil {
				if descendErr == nil {
					descendErr = fmt.Errorf("gls: %s: descend failed: %w", n.cfg.Domain, err)
				}
				continue
			}
			healthy, drained, err := DecodeLookupResult(resp)
			if err != nil {
				continue
			}
			if len(healthy) > 0 {
				return resp, nil
			}
			drainedAddrs = append(drainedAddrs, drained...)
		}
		if down && descendErr != nil && len(drainedAddrs) == 0 {
			return nil, descendErr
		}
	}

	if !down && !n.isRoot() {
		// Up phase: the rest of the tree may hold healthy replicas;
		// only settle for a drained set after the root came up empty.
		resp, cost, err := n.client(n.cfg.Parent.Route(oid)).Call(OpLookup, encodeOID(oid))
		charge(call, cost)
		if err != nil {
			if len(drainedAddrs) > 0 {
				return EncodeLookupResult(nil, drainedAddrs), nil
			}
			return nil, fmt.Errorf("gls: %s: forward to parent failed: %w", n.cfg.Domain, err)
		}
		healthy, drained, derr := DecodeLookupResult(resp)
		if derr != nil {
			return nil, derr
		}
		if len(healthy) > 0 {
			return resp, nil
		}
		drainedAddrs = append(drainedAddrs, drained...)
	}

	// Nothing healthy remains reachable from here: report the drained
	// fallback (a degraded replica beats ErrNotFound), or a miss.
	return EncodeLookupResult(nil, dedupAddrs(drainedAddrs)), nil
}

// dedupAddrs drops duplicate contact addresses, preserving order; a
// drained set can pick up the same address from several search paths.
func dedupAddrs(addrs []ContactAddress) []ContactAddress {
	if len(addrs) < 2 {
		return addrs
	}
	seen := make(map[ContactAddress]bool, len(addrs))
	out := addrs[:0]
	for _, ca := range addrs {
		if !seen[ca] {
			seen[ca] = true
			out = append(out, ca)
		}
	}
	return out
}

// lookupSession resolves a live session or reports ErrUnknownSession.
func (n *Node) lookupSession(sid ids.OID) (*session, error) {
	n.sessMu.RLock()
	sess := n.sessions[sid]
	n.sessMu.RUnlock()
	if sess == nil || sess.closed.Load() {
		return nil, fmt.Errorf("%w: %s at %s", ErrUnknownSession, sid.Short(), n.cfg.Domain)
	}
	return sess, nil
}

// attachAddr adds ca to rec, or renews it in place — a re-registration
// is a lease renewal, and may also move the entry between liveness
// contracts (attach it to a session, or upgrade it to permanent with
// ttl 0 and no session). The caller holds the record's shard lock.
func attachAddr(rec *record, ca ContactAddress, expires time.Time, sess *session) {
	for i, have := range rec.addrs {
		if have.ca == ca {
			rec.addrs[i].expires = expires
			if old := rec.addrs[i].sess; old != sess {
				if old != nil {
					old.attached.Add(-1)
				}
				if sess != nil {
					sess.attached.Add(1)
				}
				rec.addrs[i].sess = sess
			}
			return
		}
	}
	rec.addrs = append(rec.addrs, leasedAddr{ca: ca, expires: expires, sess: sess})
	if sess != nil {
		sess.attached.Add(1)
	}
}

// handleInsert registers a contact address at this node — attached to a
// registration session when the request names one, as a per-entry lease
// when it carries a TTL (renewed by re-inserting), permanent otherwise —
// and installs the chain of forwarding pointers up to the root. The
// response carries the object identifier, which the service allocates
// when the request's is nil.
func (n *Node) handleInsert(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	oid := r.OID()
	ca := decodeContactAddress(r)
	ttlSecs := r.Uint32()
	sid := r.OID()
	if err := r.Done(); err != nil {
		return nil, err
	}
	if oid.IsNil() {
		oid = ids.New()
	}
	n.stats.inserts.Add(1)

	var expires time.Time
	if ttlSecs > 0 {
		expires = n.cfg.Clock().Add(time.Duration(ttlSecs) * time.Second)
	}
	var sess *session
	if !sid.IsNil() {
		// Session attach: liveness (and drain) follow the session, so the
		// request's TTL is ignored. An unknown session means this node
		// lost it (restart, age-out); the owner must reopen before
		// attaching, or the entry would never expire with its server.
		var err error
		if sess, err = n.lookupSession(sid); err != nil {
			return nil, err
		}
		expires = time.Time{}
	}
	sh := n.shard(oid)
	sh.mu.Lock()
	rec := sh.recs[oid]
	wasEmpty := rec == nil
	if rec == nil {
		rec = &record{}
		sh.recs[oid] = rec
	}
	attachAddr(rec, ca, expires, sess)
	sh.mu.Unlock()
	n.journalInsert(oid, ca, ttlSecs, sid)

	// A pre-existing record (addresses or pointers) implies the chain
	// of forwarding pointers above this node is already installed, so
	// only the first entry for an object pays the climb to the root.
	if wasEmpty {
		if err := n.propagateInstall(call, oid); err != nil {
			return nil, err
		}
	}
	return oid.Bytes(), nil
}

// propagateInstall asks the parent to install a forwarding pointer to
// this node. The parent continues upward until it finds the pointer
// already present (the chain above is then complete) or reaches the root.
func (n *Node) propagateInstall(call *rpc.Call, oid ids.OID) error {
	if n.isRoot() {
		return nil
	}
	w := wire.NewWriter(64)
	w.OID(oid)
	w.Str(n.cfg.Domain)
	n.cfg.Self.encode(w)
	_, cost, err := n.client(n.cfg.Parent.Route(oid)).Call(OpInstallPtr, w.Bytes())
	charge(call, cost)
	if err != nil {
		return fmt.Errorf("gls: %s: install pointer at parent: %w", n.cfg.Domain, err)
	}
	return nil
}

func (n *Node) handleInstallPtr(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGLS); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	oid := r.OID()
	child := r.Str()
	ref := decodeRef(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	n.stats.ptrOps.Add(1)

	sh := n.shard(oid)
	sh.mu.Lock()
	rec := sh.recs[oid]
	if rec == nil {
		rec = &record{}
		sh.recs[oid] = rec
	}
	if rec.ptrs == nil {
		rec.ptrs = make(map[string]Ref)
	}
	_, existed := rec.ptrs[child]
	rec.ptrs[child] = ref
	sh.mu.Unlock()
	n.journalInstallPtr(oid, child, ref)

	// An existing pointer implies the chain above is already installed.
	if existed {
		return nil, nil
	}
	return nil, n.propagateInstall(call, oid)
}

// handleDelete removes one contact address; when the record empties, the
// pointer chain above is torn down.
func (n *Node) handleDelete(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	oid := r.OID()
	addr := r.Str()
	if err := r.Done(); err != nil {
		return nil, err
	}
	n.stats.deletes.Add(1)

	sh := n.shard(oid)
	sh.mu.Lock()
	rec := sh.recs[oid]
	removedAll := false
	if rec != nil {
		kept := rec.addrs[:0]
		for _, la := range rec.addrs {
			if la.ca.Address != addr {
				kept = append(kept, la)
			} else if la.sess != nil {
				la.sess.attached.Add(-1)
			}
		}
		rec.addrs = kept
		if rec.empty() {
			delete(sh.recs, oid)
			removedAll = true
		}
	}
	sh.mu.Unlock()
	n.journalDelete(oid, addr)

	if removedAll {
		return nil, n.propagateRemove(call, oid)
	}
	return nil, nil
}

func (n *Node) propagateRemove(call *rpc.Call, oid ids.OID) error {
	if n.isRoot() {
		return nil
	}
	w := wire.NewWriter(64)
	w.OID(oid)
	w.Str(n.cfg.Domain)
	_, cost, err := n.client(n.cfg.Parent.Route(oid)).Call(OpRemovePtr, w.Bytes())
	charge(call, cost)
	if err != nil {
		return fmt.Errorf("gls: %s: remove pointer at parent: %w", n.cfg.Domain, err)
	}
	return nil
}

func (n *Node) handleRemovePtr(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGLS); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	oid := r.OID()
	child := r.Str()
	if err := r.Done(); err != nil {
		return nil, err
	}
	n.stats.ptrOps.Add(1)

	sh := n.shard(oid)
	sh.mu.Lock()
	rec := sh.recs[oid]
	nowEmpty := false
	if rec != nil && rec.ptrs != nil {
		delete(rec.ptrs, child)
		if rec.empty() {
			delete(sh.recs, oid)
			nowEmpty = true
		}
	}
	sh.mu.Unlock()
	n.journalRemovePtr(oid, child)

	if nowEmpty {
		return nil, n.propagateRemove(call, oid)
	}
	return nil, nil
}

// applyDrain flips the node-local, address-wide draining state and
// mirrors it onto every session registered from that address.
func (n *Node) applyDrain(addr string, draining bool) {
	n.drainMu.Lock()
	if draining {
		n.drained[addr] = true
	} else {
		delete(n.drained, addr)
	}
	n.drainMu.Unlock()
	n.sessMu.RLock()
	for _, sess := range n.sessions {
		if a, _ := sess.fields(); a == addr {
			sess.drained.Store(draining)
		}
	}
	n.sessMu.RUnlock()
}

// drainState reports the current address-wide draining flag.
func (n *Node) drainState(addr string) bool {
	n.drainMu.RLock()
	defer n.drainMu.RUnlock()
	return n.drained[addr]
}

// handleDrain marks or clears the draining state of one transport
// address — the standalone op, kept as the compatibility path for
// sessionless registrants; servers with a registration session
// piggyback the same bit on OpSessionRenew instead. Draining is
// node-local and address-wide: every record whose contact addresses
// live at that address stops returning them while alternatives exist.
// Registrations (and their leases) are untouched, so undraining
// restores service instantly — the point of drain over delete. When
// the address belongs to a registration session the flag is recorded
// on the session too, so it rides the session through
// snapshot/restore instead of evaporating on a node restart.
func (n *Node) handleDrain(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	addr := r.Str()
	draining := r.Bool()
	if err := r.Done(); err != nil {
		return nil, err
	}
	if addr == "" {
		return nil, fmt.Errorf("gls: drain without a transport address")
	}
	n.stats.drains.Add(1)
	n.applyDrain(addr, draining)
	n.journalDrain(addr, draining)
	return nil, nil
}

// applySessionOpen creates or refreshes a session — shared by the
// open and reattach handlers and by journal replay.
func (n *Node) applySessionOpen(sid ids.OID, addr string, ttl time.Duration, now time.Time) *session {
	n.sessMu.Lock()
	sess := n.sessions[sid]
	if sess == nil {
		sess = &session{id: sid}
		n.sessions[sid] = sess
	}
	n.sessMu.Unlock()
	sess.mu.Lock()
	sess.addr = addr
	sess.ttl = ttl
	sess.mu.Unlock()
	sess.expiresNano.Store(now.Add(ttl).UnixNano())
	sess.closed.Store(false)
	// A fresh session inherits the address-wide drain state: a server
	// that drained itself, crashed and reopened is still draining until
	// it says otherwise.
	sess.drained.Store(n.drainState(addr))
	return sess
}

// handleSessionOpen creates (or refreshes) a registration session. The
// operation is idempotent: reopening an existing session resets its
// lease and transport address, which is exactly what a server does
// after a directory-node restart.
func (n *Node) handleSessionOpen(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	sid := r.OID()
	addr := r.Str()
	ttlSecs := r.Uint32()
	if err := r.Done(); err != nil {
		return nil, err
	}
	if sid.IsNil() || addr == "" || ttlSecs == 0 {
		return nil, fmt.Errorf("gls: session open needs an identifier, an address and a TTL")
	}
	n.stats.sessionOpens.Add(1)
	mSessionsOpened.Inc()
	n.applySessionOpen(sid, addr, time.Duration(ttlSecs)*time.Second, n.cfg.Clock())
	n.journalSessionOpen(sid, addr, ttlSecs)
	return nil, nil
}

// handleSessionRenew extends a session's lease — the one-round-trip
// heartbeat covering every entry attached to it. The response reports
// whether the session is known here and how many entries ride it, so
// the owner can detect a node that rolled back to a snapshot older
// than some attaches and repair it. Renewing an expired-but-unswept
// session revives it (and with it every attached entry), while an
// unknown one tells the owner to reopen and re-attach.
//
// The request may carry an optional drain tail (two booleans:
// presence, then the desired state) — the batched replacement for the
// OpDrain fan-out: a server flips its drain bit on the heartbeat it
// was going to send anyway, and the node applies it address-wide
// exactly as OpDrain would.
func (n *Node) handleSessionRenew(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	sid := r.OID()
	ttlSecs := r.Uint32()
	hasDrain, drain := false, false
	if r.Remaining() > 0 {
		hasDrain = r.Bool()
		drain = r.Bool()
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	n.stats.sessionRenews.Add(1)
	now := n.cfg.Clock()
	n.sessMu.RLock()
	sess := n.sessions[sid]
	n.sessMu.RUnlock()
	known := sess != nil && !sess.closed.Load()
	attached := 0
	if known {
		sess.mu.Lock()
		if ttlSecs > 0 {
			sess.ttl = time.Duration(ttlSecs) * time.Second
		}
		ttl := sess.ttl
		addr := sess.addr
		sess.mu.Unlock()
		sess.expiresNano.Store(now.Add(ttl).UnixNano())
		attached = int(sess.attached.Load())
		if hasDrain && (sess.drained.Load() != drain || n.drainState(addr) != drain) {
			n.stats.drains.Add(1)
			n.applyDrain(addr, drain)
			n.journalDrain(addr, drain)
		}
		n.journalSessionRenew(sid, ttlSecs)
	}
	w := wire.NewWriter(8)
	w.Bool(known)
	w.Uint32(uint32(attached))
	return w.Bytes(), nil
}

// handleSessionClose ends a session now: every attached entry expires
// with it (lookups filter them immediately; the sweep reclaims the
// records and tears down their pointer chains).
func (n *Node) handleSessionClose(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	sid := r.OID()
	if err := r.Done(); err != nil {
		return nil, err
	}
	n.stats.sessionCloses.Add(1)
	mSessionsClosed.Inc()
	n.sessMu.Lock()
	if sess := n.sessions[sid]; sess != nil {
		// Entries keep their pointer to the struct; marking it closed
		// expires them all at once, wherever they are referenced.
		sess.closed.Store(true)
		delete(n.sessions, sid)
	}
	n.sessMu.Unlock()
	n.journalSessionClose(sid)
	return nil, nil
}

// handleSessionReattach reopens a session and re-attaches a batch of
// entries in one round trip — the repair path after this subnode lost
// the session (restart without a snapshot, or age-out behind a
// partition), and the bulk-registration path for servers bringing a
// large replica population online. Semantically it is one
// OpSessionOpen followed by one OpInsert per entry, collapsed into a
// single message so a partition-heal does not cost a storm of RPCs
// proportional to the server's replica count. Like OpSessionRenew it
// accepts an optional drain tail, so a draining server's repair
// traffic re-establishes the drain too.
func (n *Node) handleSessionReattach(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	sid := r.OID()
	addr := r.Str()
	ttlSecs := r.Uint32()
	cnt := r.Count()
	if err := r.Err(); err != nil {
		return nil, err
	}
	entries := make([]reattachEntry, 0, cnt)
	for i := 0; i < cnt; i++ {
		entries = append(entries, reattachEntry{oid: r.OID(), ca: decodeContactAddress(r)})
	}
	hasDrain, drain := false, false
	if r.Remaining() > 0 {
		hasDrain = r.Bool()
		drain = r.Bool()
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	if sid.IsNil() || addr == "" || ttlSecs == 0 {
		return nil, fmt.Errorf("gls: session reattach needs an identifier, an address and a TTL")
	}
	n.stats.sessionOpens.Add(1)
	n.stats.inserts.Add(int64(len(entries)))
	mSessionsOpened.Inc()
	now := n.cfg.Clock()
	sess := n.applySessionOpen(sid, addr, time.Duration(ttlSecs)*time.Second, now)
	if hasDrain && n.drainState(addr) != drain {
		n.stats.drains.Add(1)
		n.applyDrain(addr, drain)
		n.journalDrain(addr, drain)
	}
	// Attach every entry, remembering which objects had no record here:
	// only those pay the pointer-chain climb. Entries hash across the
	// record stripes, so each attach holds only its own stripe.
	fresh := n.attachBatch(entries, sess)
	n.journalReattach(sid, addr, ttlSecs, entries)
	for _, oid := range fresh {
		if err := n.propagateInstall(call, oid); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// reattachEntry is one (object, contact address) pair of a batched
// session reattach.
type reattachEntry struct {
	oid ids.OID
	ca  ContactAddress
}

// attachBatch attaches entries to sess, returning the objects that had
// no record before (their pointer chains need installing).
func (n *Node) attachBatch(entries []reattachEntry, sess *session) []ids.OID {
	var fresh []ids.OID
	for _, e := range entries {
		sh := n.shard(e.oid)
		sh.mu.Lock()
		rec := sh.recs[e.oid]
		if rec == nil {
			rec = &record{}
			sh.recs[e.oid] = rec
			fresh = append(fresh, e.oid)
		}
		attachAddr(rec, e.ca, time.Time{}, sess)
		sh.mu.Unlock()
	}
	return fresh
}

// Sessions returns the number of live registration sessions at this
// subnode; tests and diagnostics read it.
func (n *Node) Sessions() int {
	n.sessMu.RLock()
	defer n.sessMu.RUnlock()
	return len(n.sessions)
}

// Draining reports whether an address is currently drained at this
// subnode; tests and diagnostics read it.
func (n *Node) Draining(addr string) bool {
	return n.drainState(addr)
}

// sweepLoop is the lease janitor: it visits one record shard per tick,
// recShards ticks per SweepEvery, so every shard is swept once per
// SweepEvery but no sweep ever write-locks more than one stripe — a
// full-table lock freeze is exactly what striping exists to avoid.
// Sessions are reaped once per full rotation.
func (n *Node) sweepLoop(stop <-chan struct{}) {
	step := n.cfg.SweepEvery / recShards
	if step <= 0 {
		step = time.Millisecond
	}
	ticker := time.NewTicker(step)
	defer ticker.Stop()
	si := 0
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			n.sweepShard(si, n.cfg.Clock())
			si = (si + 1) % recShards
			if si == 0 {
				n.reapSessions(n.cfg.Clock())
			}
		}
	}
}

// sweepShard removes aged-out leases from one record stripe and tears
// down the pointer chains of records it emptied. Expiries need no
// journal entries: a replayed lease re-expires against the restored
// clock on its own.
func (n *Node) sweepShard(si int, now time.Time) int {
	sh := &n.shards[si]
	var emptied []ids.OID
	expired := 0
	sh.mu.Lock()
	for oid, rec := range sh.recs {
		kept := rec.addrs[:0]
		for _, la := range rec.addrs {
			if la.expired(now) {
				expired++
				if la.sess != nil {
					la.sess.attached.Add(-1)
				}
			} else {
				kept = append(kept, la)
			}
		}
		rec.addrs = kept
		if rec.empty() {
			delete(sh.recs, oid)
			emptied = append(emptied, oid)
		}
	}
	sh.mu.Unlock()
	if expired > 0 {
		n.stats.expiries.Add(int64(expired))
	}
	for _, oid := range emptied {
		if err := n.propagateRemove(nil, oid); err != nil {
			n.cfg.Logf("gls: %s: tear down pointers for expired %s: %v", n.cfg.Domain, oid.Short(), err)
			continue
		}
		// A renewal racing the teardown can re-create the record between
		// the locked delete above and the propagateRemove: its own
		// pointer install then loses to our removal, and — since later
		// renewals find the record non-empty — would never be repeated.
		// Re-check and reinstall, so the record converges to findable.
		sh.mu.RLock()
		revived := sh.recs[oid] != nil
		sh.mu.RUnlock()
		if revived {
			if err := n.propagateInstall(nil, oid); err != nil {
				n.cfg.Logf("gls: %s: reinstall pointers for revived %s: %v", n.cfg.Domain, oid.Short(), err)
			}
		}
	}
	return expired
}

// reapSessions deletes sessions whose lease ran out; their entries
// were (or will be) reclaimed by the shard sweeps, and a server that
// comes back later learns from the unknown-session renewal response
// that it must re-attach.
func (n *Node) reapSessions(now time.Time) {
	n.sessMu.Lock()
	for sid, sess := range n.sessions {
		if sess.expired(now) {
			delete(n.sessions, sid)
			mSessionsExpired.Inc()
		}
	}
	n.sessMu.Unlock()
}

// SweepExpired sweeps every shard (and reaps expired sessions) now and
// returns how many contact addresses were reclaimed. The janitor
// covers the same ground incrementally; tests call this directly.
func (n *Node) SweepExpired() int {
	now := n.cfg.Clock()
	total := 0
	for i := range n.shards {
		total += n.sweepShard(i, now)
	}
	n.reapSessions(now)
	return total
}

func (n *Node) handleStats() ([]byte, error) {
	w := wire.NewWriter(64)
	n.Stats().encode(w)
	return w.Bytes(), nil
}

func encodeOID(oid ids.OID) []byte {
	w := wire.NewWriter(ids.Size)
	w.OID(oid)
	return w.Bytes()
}

package gls

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gdn/internal/ids"
	"gdn/internal/rpc"
	"gdn/internal/sec"
	"gdn/internal/transport"
	"gdn/internal/wire"
)

// Config describes one directory subnode.
type Config struct {
	// Domain is the domain this node's directory serves, e.g. "root",
	// "eu" or "eu/nl-vu". All subnodes of one domain share it.
	Domain string
	// Site is the simulated site (or host) the subnode runs on.
	Site string
	// Addr is the transport address the subnode listens on.
	Addr string
	// Self references the whole directory node (all subnode addresses,
	// including this one); it is what gets installed in parent
	// forwarding pointers.
	Self Ref
	// Parent references the parent domain's directory node; zero for
	// the root.
	Parent Ref
	// Seed makes the random choice among multiple forwarding pointers
	// reproducible. The paper picks a pointer at random (§3.5).
	Seed int64
	// Auth, when non-nil, upgrades every connection to an authenticated
	// security channel. Lookups are admitted from anyone, but inserts
	// and deletes only from object servers and administrators, and
	// pointer operations only from fellow directory nodes (paper §6.1,
	// requirement 2).
	Auth *sec.Config
	// Clock supplies the time lease expiry is judged against; nil means
	// wall time. Tests install controllable clocks here.
	Clock func() time.Time
	// SweepEvery is the interval between lease-expiry sweeps that
	// reclaim aged-out records (and tear down their pointer chains).
	// Correctness does not depend on it — lookups filter expired leases
	// lazily — so it defaults generously (5s); negative disables the
	// janitor entirely.
	SweepEvery time.Duration
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// defaultSweepEvery is the lease-janitor interval when the config does
// not choose one.
const defaultSweepEvery = 5 * time.Second

// session is one server's registration session: a single lease covering
// every contact address the server attached through it. Renewal touches
// the session, not the entries, so a server hosting thousands of
// replicas keeps them all alive with one renew per heartbeat — and a
// server that dies takes every attached entry out of lookups within one
// TTL. All fields are guarded by the owning node's mu.
type session struct {
	id      ids.OID
	addr    string // the server's transport address
	ttl     time.Duration
	expires time.Time
	closed  bool
	// drained records the OpDrain state as a session attribute, so a
	// snapshot restore brings the drain back with the session instead
	// of forgetting it until the server's next scrub pass.
	drained bool
	// attached counts the entries riding this session. Renewal
	// responses echo it, so a server can tell that the node rolled
	// back to a snapshot older than some attaches (the count
	// disagrees with its own books) and re-attach — the self-healing
	// the per-replica heartbeat used to provide for free.
	attached int
}

func (s *session) expired(now time.Time) bool {
	return s.closed || now.After(s.expires)
}

// leasedAddr is one registered contact address with its liveness
// contract: attached to a session (sess non-nil — expiry and drain
// follow the session), under its own lease (expires non-zero), or
// permanent (the pre-lease behaviour, still used by experiments that
// register addresses by hand and never heartbeat).
type leasedAddr struct {
	ca      ContactAddress
	expires time.Time
	sess    *session
}

func (la leasedAddr) expired(now time.Time) bool {
	if la.sess != nil {
		return la.sess.expired(now)
	}
	return !la.expires.IsZero() && now.After(la.expires)
}

// record is one object's entry in a directory node: contact addresses
// stored here, and forwarding pointers to child nodes whose subtrees
// store addresses. Either set may be non-empty; intermediate nodes
// normally hold only pointers, but may hold addresses for highly mobile
// objects (§3.5).
type record struct {
	addrs []leasedAddr
	ptrs  map[string]Ref // child domain -> child node reference
}

func (rec *record) empty() bool { return len(rec.addrs) == 0 && len(rec.ptrs) == 0 }

// Node is one directory subnode. It serves the directory-node protocol
// on its configured address and talks to its parent and children as an
// RPC client. All methods are safe for concurrent use.
type Node struct {
	cfg Config
	net transport.Network

	mu       sync.RWMutex
	recs     map[ids.OID]*record
	drained  map[string]bool // transport address -> draining
	sessions map[ids.OID]*session

	rndMu sync.Mutex
	rnd   *rand.Rand

	statMu sync.Mutex
	stats  Counters

	clientMu sync.Mutex
	clients  map[string]*rpc.Client

	server    *rpc.Server
	stopSweep chan struct{}
	sweepOnce sync.Once
}

// Start creates a directory subnode and begins serving it.
func Start(net transport.Network, cfg Config) (*Node, error) {
	if cfg.Domain == "" {
		return nil, fmt.Errorf("gls: node needs a domain")
	}
	if len(cfg.Self.Addrs) == 0 {
		return nil, fmt.Errorf("gls: node %q: %w", cfg.Domain, ErrNoAddrs)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.SweepEvery == 0 {
		cfg.SweepEvery = defaultSweepEvery
	}
	n := &Node{
		cfg:      cfg,
		net:      net,
		recs:     make(map[ids.OID]*record),
		drained:  make(map[string]bool),
		sessions: make(map[ids.OID]*session),
		rnd:      rand.New(rand.NewSource(cfg.Seed)),
		clients:  make(map[string]*rpc.Client),
	}
	opts := []rpc.ServerOption{rpc.WithServerLog(cfg.Logf)}
	if cfg.Auth != nil {
		opts = append(opts, rpc.WithServerWrapper(cfg.Auth.WrapServer))
	}
	srv, err := rpc.Serve(net, cfg.Addr, n.handle, opts...)
	if err != nil {
		return nil, err
	}
	n.server = srv
	if cfg.SweepEvery > 0 {
		n.stopSweep = make(chan struct{})
		go n.sweepLoop(n.stopSweep)
	}
	return n, nil
}

// Domain returns the domain this subnode serves.
func (n *Node) Domain() string { return n.cfg.Domain }

// Addr returns the subnode's transport address.
func (n *Node) Addr() string { return n.cfg.Addr }

// Close stops serving and releases client connections.
func (n *Node) Close() error {
	if n.stopSweep != nil {
		n.sweepOnce.Do(func() { close(n.stopSweep) })
	}
	err := n.server.Close()
	n.clientMu.Lock()
	for _, c := range n.clients {
		c.Close()
	}
	n.clients = make(map[string]*rpc.Client)
	n.clientMu.Unlock()
	return err
}

// Stats returns a snapshot of this subnode's operation counters.
func (n *Node) Stats() Counters {
	n.statMu.Lock()
	defer n.statMu.Unlock()
	return n.stats
}

// Records returns the number of objects this subnode has entries for.
func (n *Node) Records() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.recs)
}

func (n *Node) client(addr string) *rpc.Client {
	n.clientMu.Lock()
	defer n.clientMu.Unlock()
	c, ok := n.clients[addr]
	if !ok {
		var opts []rpc.ClientOption
		if n.cfg.Auth != nil {
			opts = append(opts, rpc.WithClientWrapper(n.cfg.Auth.WrapClient))
		}
		c = rpc.NewClient(n.net, n.cfg.Site, addr, opts...)
		n.clients[addr] = c
	}
	return c
}

func (n *Node) count(f func(*Counters)) {
	n.statMu.Lock()
	f(&n.stats)
	n.statMu.Unlock()
}

func (n *Node) isRoot() bool { return n.cfg.Parent.IsZero() }

// handle dispatches one directory-node protocol request.
func (n *Node) handle(call *rpc.Call) ([]byte, error) {
	if h := mOpSeconds[call.Op]; h != nil {
		start := time.Now()
		defer h.ObserveSince(start)
	}
	switch call.Op {
	case OpLookup:
		return n.handleLookup(call, false)
	case OpLookupDown:
		return n.handleLookup(call, true)
	case OpInsert:
		return n.handleInsert(call)
	case OpDelete:
		return n.handleDelete(call)
	case OpInstallPtr:
		return n.handleInstallPtr(call)
	case OpRemovePtr:
		return n.handleRemovePtr(call)
	case OpDrain:
		return n.handleDrain(call)
	case OpSessionOpen:
		return n.handleSessionOpen(call)
	case OpSessionRenew:
		return n.handleSessionRenew(call)
	case OpSessionClose:
		return n.handleSessionClose(call)
	case OpSessionReattach:
		return n.handleSessionReattach(call)
	case OpStats:
		return n.handleStats()
	case OpDump:
		return n.Snapshot(), nil
	default:
		return nil, fmt.Errorf("gls: unknown op %d", call.Op)
	}
}

// charge records nested cost on a call when one exists; janitor-driven
// operations run without a call to charge.
func charge(call *rpc.Call, d time.Duration) {
	if call != nil {
		call.Charge(d)
	}
}

// authorize enforces role-based admission when the node runs with a
// security configuration. Without one (simulations, benchmarks) every
// caller is admitted.
func (n *Node) authorize(call *rpc.Call, roles ...string) error {
	if n.cfg.Auth == nil {
		return nil
	}
	if !sec.HasRole(call.Peer, roles...) {
		return fmt.Errorf("%w: peer %q may not perform op %d", sec.ErrUnauthorized, call.Peer, call.Op)
	}
	return nil
}

// handleLookup serves both lookup phases. In the up phase a miss
// forwards to the parent; in the down phase the request must terminate
// in this subtree.
func (n *Node) handleLookup(call *rpc.Call, down bool) ([]byte, error) {
	r := wire.NewReader(call.Body)
	oid := r.OID()
	if err := r.Done(); err != nil {
		return nil, err
	}
	if down {
		n.count(func(c *Counters) { c.Descends++ })
	} else {
		n.count(func(c *Counters) { c.Lookups++ })
	}

	now := n.cfg.Clock()
	n.mu.RLock()
	rec := n.recs[oid]
	var addrs, drainedAddrs []ContactAddress
	var childRefs []Ref
	if rec != nil {
		for _, la := range rec.addrs {
			switch {
			case la.expired(now):
				// A lease (or session) its owner stopped renewing: the
				// replica is gone (or cut off); it must not be handed to
				// clients. The sweep janitor reclaims the entry itself.
			case n.drained[la.ca.Address] || (la.sess != nil && la.sess.drained):
				drainedAddrs = append(drainedAddrs, la.ca)
			default:
				addrs = append(addrs, la.ca)
			}
		}
		for _, ref := range rec.ptrs {
			childRefs = append(childRefs, ref)
		}
	}
	n.mu.RUnlock()

	// Healthy contact addresses stored here end the search immediately;
	// a local drained set is only the fallback of last resort.
	if len(addrs) > 0 {
		return EncodeLookupResult(addrs, nil), nil
	}

	// Forwarding pointers send the search down into a child subtree,
	// starting with a random one when there are several (§3.5). A
	// subtree whose entries all expired, died or drained does not end
	// the search: the remaining children are tried, and in the up
	// phase it finally continues toward the root — neither a stale
	// pointer chain (sweep-driven teardown pending) nor a draining
	// replica may hide replicas that are healthy elsewhere in the
	// tree. Drained addresses encountered along the way are carried as
	// the fallback.
	if len(childRefs) > 0 {
		if len(childRefs) > 1 {
			n.rndMu.Lock()
			n.rnd.Shuffle(len(childRefs), func(i, j int) {
				childRefs[i], childRefs[j] = childRefs[j], childRefs[i]
			})
			n.rndMu.Unlock()
		}
		var descendErr error
		for _, ref := range childRefs {
			resp, cost, err := n.client(ref.Route(oid)).Call(OpLookupDown, encodeOID(oid))
			charge(call, cost)
			if err != nil {
				if descendErr == nil {
					descendErr = fmt.Errorf("gls: %s: descend failed: %w", n.cfg.Domain, err)
				}
				continue
			}
			healthy, drained, err := DecodeLookupResult(resp)
			if err != nil {
				continue
			}
			if len(healthy) > 0 {
				return resp, nil
			}
			drainedAddrs = append(drainedAddrs, drained...)
		}
		if down && descendErr != nil && len(drainedAddrs) == 0 {
			return nil, descendErr
		}
	}

	if !down && !n.isRoot() {
		// Up phase: the rest of the tree may hold healthy replicas;
		// only settle for a drained set after the root came up empty.
		resp, cost, err := n.client(n.cfg.Parent.Route(oid)).Call(OpLookup, encodeOID(oid))
		charge(call, cost)
		if err != nil {
			if len(drainedAddrs) > 0 {
				return EncodeLookupResult(nil, drainedAddrs), nil
			}
			return nil, fmt.Errorf("gls: %s: forward to parent failed: %w", n.cfg.Domain, err)
		}
		healthy, drained, derr := DecodeLookupResult(resp)
		if derr != nil {
			return nil, derr
		}
		if len(healthy) > 0 {
			return resp, nil
		}
		drainedAddrs = append(drainedAddrs, drained...)
	}

	// Nothing healthy remains reachable from here: report the drained
	// fallback (a degraded replica beats ErrNotFound), or a miss.
	return EncodeLookupResult(nil, dedupAddrs(drainedAddrs)), nil
}

// dedupAddrs drops duplicate contact addresses, preserving order; a
// drained set can pick up the same address from several search paths.
func dedupAddrs(addrs []ContactAddress) []ContactAddress {
	if len(addrs) < 2 {
		return addrs
	}
	seen := make(map[ContactAddress]bool, len(addrs))
	out := addrs[:0]
	for _, ca := range addrs {
		if !seen[ca] {
			seen[ca] = true
			out = append(out, ca)
		}
	}
	return out
}

// handleInsert registers a contact address at this node — attached to a
// registration session when the request names one, as a per-entry lease
// when it carries a TTL (renewed by re-inserting), permanent otherwise —
// and installs the chain of forwarding pointers up to the root. The
// response carries the object identifier, which the service allocates
// when the request's is nil.
func (n *Node) handleInsert(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	oid := r.OID()
	ca := decodeContactAddress(r)
	ttl := time.Duration(r.Uint32()) * time.Second
	sid := r.OID()
	if err := r.Done(); err != nil {
		return nil, err
	}
	if oid.IsNil() {
		oid = ids.New()
	}
	n.count(func(c *Counters) { c.Inserts++ })

	var expires time.Time
	if ttl > 0 {
		expires = n.cfg.Clock().Add(ttl)
	}
	n.mu.Lock()
	var sess *session
	if !sid.IsNil() {
		// Session attach: liveness (and drain) follow the session, so the
		// request's TTL is ignored. An unknown session means this node
		// lost it (restart, age-out); the owner must reopen before
		// attaching, or the entry would never expire with its server.
		sess = n.sessions[sid]
		if sess == nil || sess.closed {
			n.mu.Unlock()
			return nil, fmt.Errorf("%w: %s at %s", ErrUnknownSession, sid.Short(), n.cfg.Domain)
		}
		expires = time.Time{}
	}
	rec := n.recs[oid]
	wasEmpty := rec == nil
	if rec == nil {
		rec = &record{}
		n.recs[oid] = rec
	}
	dup := false
	for i, have := range rec.addrs {
		if have.ca == ca {
			// A re-registration is a lease renewal; it may also move the
			// entry between liveness contracts (attach it to a session, or
			// upgrade it to permanent with ttl 0 and no session).
			rec.addrs[i].expires = expires
			if old := rec.addrs[i].sess; old != sess {
				if old != nil {
					old.attached--
				}
				if sess != nil {
					sess.attached++
				}
				rec.addrs[i].sess = sess
			}
			dup = true
			break
		}
	}
	if !dup {
		rec.addrs = append(rec.addrs, leasedAddr{ca: ca, expires: expires, sess: sess})
		if sess != nil {
			sess.attached++
		}
	}
	n.mu.Unlock()

	// A pre-existing record (addresses or pointers) implies the chain
	// of forwarding pointers above this node is already installed, so
	// only the first entry for an object pays the climb to the root.
	if wasEmpty {
		if err := n.propagateInstall(call, oid); err != nil {
			return nil, err
		}
	}
	return oid.Bytes(), nil
}

// propagateInstall asks the parent to install a forwarding pointer to
// this node. The parent continues upward until it finds the pointer
// already present (the chain above is then complete) or reaches the root.
func (n *Node) propagateInstall(call *rpc.Call, oid ids.OID) error {
	if n.isRoot() {
		return nil
	}
	w := wire.NewWriter(64)
	w.OID(oid)
	w.Str(n.cfg.Domain)
	n.cfg.Self.encode(w)
	_, cost, err := n.client(n.cfg.Parent.Route(oid)).Call(OpInstallPtr, w.Bytes())
	charge(call, cost)
	if err != nil {
		return fmt.Errorf("gls: %s: install pointer at parent: %w", n.cfg.Domain, err)
	}
	return nil
}

func (n *Node) handleInstallPtr(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGLS); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	oid := r.OID()
	child := r.Str()
	ref := decodeRef(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	n.count(func(c *Counters) { c.PtrOps++ })

	n.mu.Lock()
	rec := n.recs[oid]
	if rec == nil {
		rec = &record{}
		n.recs[oid] = rec
	}
	if rec.ptrs == nil {
		rec.ptrs = make(map[string]Ref)
	}
	_, existed := rec.ptrs[child]
	rec.ptrs[child] = ref
	n.mu.Unlock()

	// An existing pointer implies the chain above is already installed.
	if existed {
		return nil, nil
	}
	return nil, n.propagateInstall(call, oid)
}

// handleDelete removes one contact address; when the record empties, the
// pointer chain above is torn down.
func (n *Node) handleDelete(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	oid := r.OID()
	addr := r.Str()
	if err := r.Done(); err != nil {
		return nil, err
	}
	n.count(func(c *Counters) { c.Deletes++ })

	n.mu.Lock()
	rec := n.recs[oid]
	removedAll := false
	if rec != nil {
		kept := rec.addrs[:0]
		for _, la := range rec.addrs {
			if la.ca.Address != addr {
				kept = append(kept, la)
			} else if la.sess != nil {
				la.sess.attached--
			}
		}
		rec.addrs = kept
		if rec.empty() {
			delete(n.recs, oid)
			removedAll = true
		}
	}
	n.mu.Unlock()

	if removedAll {
		return nil, n.propagateRemove(call, oid)
	}
	return nil, nil
}

func (n *Node) propagateRemove(call *rpc.Call, oid ids.OID) error {
	if n.isRoot() {
		return nil
	}
	w := wire.NewWriter(64)
	w.OID(oid)
	w.Str(n.cfg.Domain)
	_, cost, err := n.client(n.cfg.Parent.Route(oid)).Call(OpRemovePtr, w.Bytes())
	charge(call, cost)
	if err != nil {
		return fmt.Errorf("gls: %s: remove pointer at parent: %w", n.cfg.Domain, err)
	}
	return nil
}

func (n *Node) handleRemovePtr(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGLS); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	oid := r.OID()
	child := r.Str()
	if err := r.Done(); err != nil {
		return nil, err
	}
	n.count(func(c *Counters) { c.PtrOps++ })

	n.mu.Lock()
	rec := n.recs[oid]
	nowEmpty := false
	if rec != nil && rec.ptrs != nil {
		delete(rec.ptrs, child)
		if rec.empty() {
			delete(n.recs, oid)
			nowEmpty = true
		}
	}
	n.mu.Unlock()

	if nowEmpty {
		return nil, n.propagateRemove(call, oid)
	}
	return nil, nil
}

// handleDrain marks or clears the draining state of one transport
// address. Draining is node-local and address-wide: every record whose
// contact addresses live at that address stops returning them while
// alternatives exist. Registrations (and their leases) are untouched,
// so undraining restores service instantly — the point of drain over
// delete. When the address belongs to a registration session the flag
// is recorded on the session too, so it rides the session through
// snapshot/restore instead of evaporating on a node restart.
func (n *Node) handleDrain(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	addr := r.Str()
	draining := r.Bool()
	if err := r.Done(); err != nil {
		return nil, err
	}
	if addr == "" {
		return nil, fmt.Errorf("gls: drain without a transport address")
	}
	n.count(func(c *Counters) { c.Drains++ })
	n.mu.Lock()
	if draining {
		n.drained[addr] = true
	} else {
		delete(n.drained, addr)
	}
	for _, sess := range n.sessions {
		if sess.addr == addr {
			sess.drained = draining
		}
	}
	n.mu.Unlock()
	return nil, nil
}

// handleSessionOpen creates (or refreshes) a registration session. The
// operation is idempotent: reopening an existing session resets its
// lease and transport address, which is exactly what a server does
// after a directory-node restart.
func (n *Node) handleSessionOpen(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	sid := r.OID()
	addr := r.Str()
	ttl := time.Duration(r.Uint32()) * time.Second
	if err := r.Done(); err != nil {
		return nil, err
	}
	if sid.IsNil() || addr == "" || ttl <= 0 {
		return nil, fmt.Errorf("gls: session open needs an identifier, an address and a TTL")
	}
	n.count(func(c *Counters) { c.SessionOpens++ })
	mSessionsOpened.Inc()
	now := n.cfg.Clock()
	n.mu.Lock()
	sess := n.sessions[sid]
	if sess == nil {
		sess = &session{id: sid}
		n.sessions[sid] = sess
	}
	sess.addr = addr
	sess.ttl = ttl
	sess.expires = now.Add(ttl)
	sess.closed = false
	// A fresh session inherits the address-wide drain state: a server
	// that drained itself, crashed and reopened is still draining until
	// it says otherwise.
	sess.drained = n.drained[addr]
	n.mu.Unlock()
	return nil, nil
}

// handleSessionRenew extends a session's lease — the one-round-trip
// heartbeat covering every entry attached to it. The response reports
// whether the session is known here and how many entries ride it, so
// the owner can detect a node that rolled back to a snapshot older
// than some attaches and repair it. Renewing an expired-but-unswept
// session revives it (and with it every attached entry), while an
// unknown one tells the owner to reopen and re-attach.
func (n *Node) handleSessionRenew(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	sid := r.OID()
	ttl := time.Duration(r.Uint32()) * time.Second
	if err := r.Done(); err != nil {
		return nil, err
	}
	n.count(func(c *Counters) { c.SessionRenews++ })
	now := n.cfg.Clock()
	n.mu.Lock()
	sess := n.sessions[sid]
	known := sess != nil && !sess.closed
	attached := 0
	if known {
		if ttl > 0 {
			sess.ttl = ttl
		}
		sess.expires = now.Add(sess.ttl)
		attached = sess.attached
	}
	n.mu.Unlock()
	w := wire.NewWriter(8)
	w.Bool(known)
	w.Uint32(uint32(attached))
	return w.Bytes(), nil
}

// handleSessionClose ends a session now: every attached entry expires
// with it (lookups filter them immediately; the sweep reclaims the
// records and tears down their pointer chains).
func (n *Node) handleSessionClose(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	sid := r.OID()
	if err := r.Done(); err != nil {
		return nil, err
	}
	n.count(func(c *Counters) { c.SessionCloses++ })
	mSessionsClosed.Inc()
	n.mu.Lock()
	if sess := n.sessions[sid]; sess != nil {
		// Entries keep their pointer to the struct; marking it closed
		// expires them all at once, wherever they are referenced.
		sess.closed = true
		delete(n.sessions, sid)
	}
	n.mu.Unlock()
	return nil, nil
}

// handleSessionReattach reopens a session and re-attaches a batch of
// entries in one round trip — the repair path after this subnode lost
// the session (restart without a snapshot, or age-out behind a
// partition). Semantically it is one OpSessionOpen followed by one
// OpInsert per entry, collapsed into a single message so a
// partition-heal does not cost a storm of RPCs proportional to the
// server's replica count.
func (n *Node) handleSessionReattach(call *rpc.Call) ([]byte, error) {
	if err := n.authorize(call, sec.RoleGOS, sec.RoleAdmin, sec.RoleGLS, sec.RoleHTTPD); err != nil {
		return nil, err
	}
	r := wire.NewReader(call.Body)
	sid := r.OID()
	addr := r.Str()
	ttl := time.Duration(r.Uint32()) * time.Second
	cnt := r.Count()
	if err := r.Err(); err != nil {
		return nil, err
	}
	type entry struct {
		oid ids.OID
		ca  ContactAddress
	}
	entries := make([]entry, 0, cnt)
	for i := 0; i < cnt; i++ {
		entries = append(entries, entry{oid: r.OID(), ca: decodeContactAddress(r)})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	if sid.IsNil() || addr == "" || ttl <= 0 {
		return nil, fmt.Errorf("gls: session reattach needs an identifier, an address and a TTL")
	}
	n.count(func(c *Counters) {
		c.SessionOpens++
		c.Inserts += int64(len(entries))
	})
	now := n.cfg.Clock()
	n.mu.Lock()
	sess := n.sessions[sid]
	if sess == nil {
		sess = &session{id: sid}
		n.sessions[sid] = sess
	}
	sess.addr = addr
	sess.ttl = ttl
	sess.expires = now.Add(ttl)
	sess.closed = false
	sess.drained = n.drained[addr]
	// Attach every entry under the one lock hold, remembering which
	// objects had no record here: only those pay the pointer-chain climb.
	var fresh []ids.OID
	for _, e := range entries {
		rec := n.recs[e.oid]
		if rec == nil {
			rec = &record{}
			n.recs[e.oid] = rec
			fresh = append(fresh, e.oid)
		}
		dup := false
		for i, have := range rec.addrs {
			if have.ca == e.ca {
				rec.addrs[i].expires = time.Time{}
				if old := rec.addrs[i].sess; old != sess {
					if old != nil {
						old.attached--
					}
					sess.attached++
					rec.addrs[i].sess = sess
				}
				dup = true
				break
			}
		}
		if !dup {
			rec.addrs = append(rec.addrs, leasedAddr{ca: e.ca, sess: sess})
			sess.attached++
		}
	}
	n.mu.Unlock()
	for _, oid := range fresh {
		if err := n.propagateInstall(call, oid); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// Sessions returns the number of live registration sessions at this
// subnode; tests and diagnostics read it.
func (n *Node) Sessions() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.sessions)
}

// Draining reports whether an address is currently drained at this
// subnode; tests and diagnostics read it.
func (n *Node) Draining(addr string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.drained[addr]
}

// sweepLoop periodically reclaims expired leases. Lookups already
// filter them lazily; the sweep's job is to delete emptied records and
// tear down their forwarding-pointer chains so the tree does not
// accumulate dead entries for every replica that ever lived.
func (n *Node) sweepLoop(stop <-chan struct{}) {
	ticker := time.NewTicker(n.cfg.SweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			n.SweepExpired()
		}
	}
}

// SweepExpired removes aged-out leases (and the sessions they hung
// from) now and returns how many contact addresses were reclaimed. The
// janitor calls it on a timer; tests call it directly.
func (n *Node) SweepExpired() int {
	now := n.cfg.Clock()
	var emptied []ids.OID
	expired := 0
	n.mu.Lock()
	for oid, rec := range n.recs {
		kept := rec.addrs[:0]
		for _, la := range rec.addrs {
			if la.expired(now) {
				expired++
				if la.sess != nil {
					la.sess.attached--
				}
			} else {
				kept = append(kept, la)
			}
		}
		rec.addrs = kept
		if rec.empty() {
			delete(n.recs, oid)
			emptied = append(emptied, oid)
		}
	}
	// Reap expired sessions in the same pass: their entries were just
	// removed above, and a server that comes back later learns from the
	// unknown-session renewal response that it must re-attach.
	for sid, sess := range n.sessions {
		if sess.expired(now) {
			delete(n.sessions, sid)
			mSessionsExpired.Inc()
		}
	}
	n.mu.Unlock()
	if expired > 0 {
		n.count(func(c *Counters) { c.Expiries += int64(expired) })
	}
	for _, oid := range emptied {
		if err := n.propagateRemove(nil, oid); err != nil {
			n.cfg.Logf("gls: %s: tear down pointers for expired %s: %v", n.cfg.Domain, oid.Short(), err)
			continue
		}
		// A renewal racing the teardown can re-create the record between
		// the locked delete above and the propagateRemove: its own
		// pointer install then loses to our removal, and — since later
		// renewals find the record non-empty — would never be repeated.
		// Re-check and reinstall, so the record converges to findable.
		n.mu.RLock()
		revived := n.recs[oid] != nil
		n.mu.RUnlock()
		if revived {
			if err := n.propagateInstall(nil, oid); err != nil {
				n.cfg.Logf("gls: %s: reinstall pointers for revived %s: %v", n.cfg.Domain, oid.Short(), err)
			}
		}
	}
	return expired
}

func (n *Node) handleStats() ([]byte, error) {
	w := wire.NewWriter(64)
	n.Stats().encode(w)
	return w.Bytes(), nil
}

func encodeOID(oid ids.OID) []byte {
	w := wire.NewWriter(ids.Size)
	w.OID(oid)
	return w.Bytes()
}

// snapshotMagic marks the version-2 snapshot layout, which persists
// sessions, per-entry lease deadlines and drain flags. Version-1
// snapshots (which started straight with the domain string and carried
// bare contact addresses) are still readable; their entries restore as
// permanent, the pre-session behaviour.
const snapshotMagic = "gls-snapshot/2"

// Lease kinds in a version-2 snapshot entry.
const (
	leasePermanent = uint8(iota) // no expiry
	leaseOwn                     // per-entry lease; remaining seconds follow
	leaseSession                 // attached to a session; its id follows
)

// Snapshot serializes the node's state for persistent storage. The
// paper's Java GLS supports "persistent storage of the state of a
// directory node (location information and forwarding pointers)" (§7);
// object servers and the gdn-gls daemon checkpoint with this. Liveness
// state is part of the image: registration sessions with their
// remaining TTL and drain attribute, per-entry lease deadlines (as
// seconds remaining, so the restored clock regime does not matter) and
// the address drain set — a restored node can therefore never
// resurrect a dead server's replicas as permanent, which the
// version-1 layout did. Entries and sessions already expired at
// snapshot time are not encoded.
func (n *Node) Snapshot() []byte {
	now := n.cfg.Clock()
	n.mu.RLock()
	defer n.mu.RUnlock()
	w := wire.NewWriter(1024)
	w.Str(snapshotMagic)
	w.Str(n.cfg.Domain)

	w.Count(len(n.drained))
	for addr := range n.drained {
		w.Str(addr)
	}

	live := make([]*session, 0, len(n.sessions))
	for _, sess := range n.sessions {
		if !sess.expired(now) {
			live = append(live, sess)
		}
	}
	w.Count(len(live))
	for _, sess := range live {
		w.OID(sess.id)
		w.Str(sess.addr)
		w.Uint32(wholeSeconds(sess.ttl))
		w.Uint32(remainingSeconds(now, sess.expires))
		w.Bool(sess.drained)
	}

	w.Count(len(n.recs))
	for oid, rec := range n.recs {
		w.OID(oid)
		kept := make([]leasedAddr, 0, len(rec.addrs))
		for _, la := range rec.addrs {
			if !la.expired(now) {
				kept = append(kept, la)
			}
		}
		w.Count(len(kept))
		for _, la := range kept {
			la.ca.encode(w)
			switch {
			case la.sess != nil:
				w.Uint8(leaseSession)
				w.OID(la.sess.id)
			case !la.expires.IsZero():
				w.Uint8(leaseOwn)
				w.Uint32(remainingSeconds(now, la.expires))
			default:
				w.Uint8(leasePermanent)
			}
		}
		w.Count(len(rec.ptrs))
		for child, ref := range rec.ptrs {
			w.Str(child)
			ref.encode(w)
		}
	}
	return w.Bytes()
}

// wholeSeconds rounds a duration up to whole seconds for the wire.
func wholeSeconds(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	return uint32((d + time.Second - 1) / time.Second)
}

// remainingSeconds encodes a deadline as whole seconds left, at least
// one for a deadline still in the future.
func remainingSeconds(now, deadline time.Time) uint32 {
	return wholeSeconds(deadline.Sub(now))
}

// Restore replaces the node's state with a snapshot taken by Snapshot.
// The snapshot must come from a node serving the same domain. Lease
// deadlines restart relative to the restoring node's clock: an entry
// snapshot with five seconds left has five seconds to be renewed after
// the restore, and a dead server's entries age out within one TTL of
// the restart instead of living forever.
func (n *Node) Restore(b []byte) error {
	r := wire.NewReader(b)
	first := r.Str()
	if r.Err() != nil {
		return r.Err()
	}
	if first != snapshotMagic {
		// Version-1 layout: the first string is the domain and every
		// entry restores as permanent.
		return n.restoreV1(first, r)
	}
	domain := r.Str()
	if r.Err() != nil {
		return r.Err()
	}
	if domain != n.cfg.Domain {
		return fmt.Errorf("gls: snapshot is for domain %q, node serves %q", domain, n.cfg.Domain)
	}
	now := n.cfg.Clock()

	nd := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	drained := make(map[string]bool, nd)
	for i := 0; i < nd; i++ {
		drained[r.Str()] = true
	}

	ns := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	sessions := make(map[ids.OID]*session, ns)
	for i := 0; i < ns; i++ {
		sess := &session{
			id:   r.OID(),
			addr: r.Str(),
			ttl:  time.Duration(r.Uint32()) * time.Second,
		}
		sess.expires = now.Add(time.Duration(r.Uint32()) * time.Second)
		sess.drained = r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		sessions[sess.id] = sess
	}

	count := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	recs := make(map[ids.OID]*record, count)
	for i := 0; i < count; i++ {
		oid := r.OID()
		rec := &record{}
		na := r.Count()
		if r.Err() != nil {
			return r.Err()
		}
		for j := 0; j < na; j++ {
			la := leasedAddr{ca: decodeContactAddress(r)}
			switch r.Uint8() {
			case leaseOwn:
				la.expires = now.Add(time.Duration(r.Uint32()) * time.Second)
			case leaseSession:
				sid := r.OID()
				la.sess = sessions[sid]
				if r.Err() == nil && la.sess == nil {
					return fmt.Errorf("gls: snapshot entry references unknown session %s", sid.Short())
				}
				if la.sess != nil {
					// Counts are recomputed from the entries themselves, so
					// the snapshot cannot carry a stale tally.
					la.sess.attached++
				}
			}
			if r.Err() != nil {
				return r.Err()
			}
			rec.addrs = append(rec.addrs, la)
		}
		np := r.Count()
		if r.Err() != nil {
			return r.Err()
		}
		if np > 0 {
			rec.ptrs = make(map[string]Ref, np)
		}
		for j := 0; j < np; j++ {
			child := r.Str()
			rec.ptrs[child] = decodeRef(r)
		}
		recs[oid] = rec
	}
	if err := r.Done(); err != nil {
		return err
	}
	n.mu.Lock()
	n.recs = recs
	n.drained = drained
	n.sessions = sessions
	n.mu.Unlock()
	return nil
}

// restoreV1 decodes the pre-session snapshot layout; r is positioned
// just past the leading domain string.
func (n *Node) restoreV1(domain string, r *wire.Reader) error {
	if domain != n.cfg.Domain {
		return fmt.Errorf("gls: snapshot is for domain %q, node serves %q", domain, n.cfg.Domain)
	}
	count := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	recs := make(map[ids.OID]*record, count)
	for i := 0; i < count; i++ {
		oid := r.OID()
		rec := &record{}
		na := r.Count()
		if r.Err() != nil {
			return r.Err()
		}
		for j := 0; j < na; j++ {
			rec.addrs = append(rec.addrs, leasedAddr{ca: decodeContactAddress(r)})
		}
		np := r.Count()
		if r.Err() != nil {
			return r.Err()
		}
		if np > 0 {
			rec.ptrs = make(map[string]Ref, np)
		}
		for j := 0; j < np; j++ {
			child := r.Str()
			rec.ptrs[child] = decodeRef(r)
		}
		recs[oid] = rec
	}
	if err := r.Done(); err != nil {
		return err
	}
	n.mu.Lock()
	n.recs = recs
	n.drained = make(map[string]bool)
	n.sessions = make(map[ids.OID]*session)
	n.mu.Unlock()
	return nil
}

package gls

import (
	"fmt"
	"sync"
	"time"

	"gdn/internal/ids"
	"gdn/internal/rpc"
	"gdn/internal/sec"
	"gdn/internal/transport"
	"gdn/internal/wire"
)

// Resolver is a client of the location service. It is bound to one leaf
// directory node — the node of the domain the client's site belongs to —
// exactly as the paper's run-time system sends look-up requests "to the
// directory node of the leaf domain the client is located in" (§3.5).
// Resolvers are safe for concurrent use.
type Resolver struct {
	net  transport.Network
	site string
	leaf Ref
	auth *sec.Config

	mu      sync.Mutex
	clients map[string]*rpc.Client
}

// ResolverOption configures a Resolver.
type ResolverOption func(*Resolver)

// WithResolverAuth dials directory nodes through authenticated security
// channels. Object servers registering replicas need this when the tree
// runs with admission control.
func WithResolverAuth(cfg *sec.Config) ResolverOption {
	return func(r *Resolver) { r.auth = cfg }
}

// NewResolver returns a resolver for a client at the given site whose
// leaf domain directory node is leaf.
func NewResolver(net transport.Network, site string, leaf Ref, opts ...ResolverOption) *Resolver {
	r := &Resolver{net: net, site: site, leaf: leaf, clients: make(map[string]*rpc.Client)}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Close releases pooled connections.
func (r *Resolver) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.clients {
		c.Close()
	}
	r.clients = make(map[string]*rpc.Client)
	return nil
}

func (r *Resolver) client(addr string) *rpc.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.clients[addr]
	if !ok {
		var opts []rpc.ClientOption
		if r.auth != nil {
			opts = append(opts, rpc.WithClientWrapper(r.auth.WrapClient))
		}
		c = rpc.NewClient(r.net, r.site, addr, opts...)
		r.clients[addr] = c
	}
	return c
}

// Lookup maps an object identifier to the contact addresses of the
// nearest healthy replicas — falling back to draining ones when the
// whole tree holds nothing healthier, since a degraded replica still
// beats not-found. The returned cost is the virtual network cost of
// the whole lookup path (up the tree, down the pointers, and back).
func (r *Resolver) Lookup(oid ids.OID) ([]ContactAddress, time.Duration, error) {
	start := time.Now()
	defer mResolverLookupSeconds.ObserveSince(start)
	resp, cost, err := r.client(r.leaf.Route(oid)).Call(OpLookup, encodeOID(oid))
	if err != nil {
		return nil, cost, err
	}
	healthy, drained, err := DecodeLookupResult(resp)
	if err != nil {
		return nil, cost, err
	}
	if len(healthy) > 0 {
		return healthy, cost, nil
	}
	if len(drained) > 0 {
		return drained, cost, nil
	}
	return nil, cost, fmt.Errorf("%w: %s", ErrNotFound, oid.Short())
}

// Insert registers a contact address in the client's leaf domain,
// permanently (no lease). A nil oid asks the service to allocate a
// fresh identifier; the identifier actually registered is returned
// either way.
func (r *Resolver) Insert(oid ids.OID, ca ContactAddress) (ids.OID, time.Duration, error) {
	return r.insertAt(r.leaf, oid, ca, 0, ids.Nil)
}

// InsertLease registers a contact address as a lease that ages out of
// lookups after ttl unless renewed by re-inserting — the per-entry
// liveness contract single-replica clients heartbeat under, so a
// crashed owner's entry vanishes from the location service within one
// TTL instead of 502ing clients forever. Servers hosting many replicas
// batch their liveness through a registration session instead
// (OpenSession). A ttl of 0 is a permanent Insert; sub-second TTLs
// round up to one second (the wire carries whole seconds).
func (r *Resolver) InsertLease(oid ids.OID, ca ContactAddress, ttl time.Duration) (ids.OID, time.Duration, error) {
	return r.insertAt(r.leaf, oid, ca, ttl, ids.Nil)
}

// InsertAt registers a contact address at an arbitrary directory node
// instead of the client's leaf. Storing addresses at an intermediate
// node trades lookup locality for cheaper updates on highly mobile
// objects (§3.5); the E2 ablation uses this.
func (r *Resolver) InsertAt(node Ref, oid ids.OID, ca ContactAddress) (ids.OID, time.Duration, error) {
	return r.insertAt(node, oid, ca, 0, ids.Nil)
}

func (r *Resolver) insertAt(node Ref, oid ids.OID, ca ContactAddress, ttl time.Duration, sid ids.OID) (ids.OID, time.Duration, error) {
	if node.IsZero() {
		return ids.Nil, 0, ErrNoAddrs
	}
	// Allocating the identifier client-side keeps subnode routing
	// consistent: the request must reach the subnode that will own the
	// identifier, which cannot be known before the identifier exists.
	if oid.IsNil() {
		oid = ids.New()
	}
	ttlSecs := uint32(0)
	if ttl > 0 {
		ttlSecs = uint32((ttl + time.Second - 1) / time.Second)
	}
	w := wire.NewWriter(96)
	w.OID(oid)
	ca.encode(w)
	w.Uint32(ttlSecs)
	w.OID(sid)
	resp, cost, err := r.client(node.Route(oid)).Call(OpInsert, w.Bytes())
	if err != nil {
		return ids.Nil, cost, err
	}
	got, err := ids.FromBytes(resp)
	if err != nil {
		return ids.Nil, cost, err
	}
	return got, cost, nil
}

// Drain marks (draining=true) or clears (false) the draining state of
// a transport address at every subnode of the client's leaf directory
// node — the node where that address's replicas registered. Drained
// addresses stop appearing in lookups while healthy alternatives
// exist; registrations stay intact, so recovery is one Drain(false)
// away.
//
// This is the compatibility shim for sessionless registrants: it fans
// one OpDrain RPC out to every leaf subnode. Servers holding a
// registration session use ServerSession.Drain instead, which
// piggybacks the bit on the batched renewal heartbeat.
func (r *Resolver) Drain(addr string, draining bool) (time.Duration, error) {
	if r.leaf.IsZero() {
		return 0, ErrNoAddrs
	}
	w := wire.NewWriter(16 + len(addr))
	w.Str(addr)
	w.Bool(draining)
	body := w.Bytes()
	var total time.Duration
	var firstErr error
	// Drain state is per subnode; every subnode of the leaf must hear
	// it, since each owns a slice of the identifier space.
	for _, sub := range r.leaf.Addrs {
		_, cost, err := r.client(sub).Call(OpDrain, body)
		total += cost
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// Delete deregisters the contact address with the given transport
// address from the client's leaf domain.
func (r *Resolver) Delete(oid ids.OID, addr string) (time.Duration, error) {
	return r.DeleteAt(r.leaf, oid, addr)
}

// DeleteAt deregisters from an arbitrary directory node; the counterpart
// of InsertAt.
func (r *Resolver) DeleteAt(node Ref, oid ids.OID, addr string) (time.Duration, error) {
	if node.IsZero() {
		return 0, ErrNoAddrs
	}
	w := wire.NewWriter(64)
	w.OID(oid)
	w.Str(addr)
	_, cost, err := r.client(node.Route(oid)).Call(OpDelete, w.Bytes())
	return cost, err
}

// Stats fetches the operation counters of one subnode.
func (r *Resolver) Stats(addr string) (Counters, error) {
	resp, _, err := r.client(addr).Call(OpStats, nil)
	if err != nil {
		return Counters{}, err
	}
	rd := wire.NewReader(resp)
	c := decodeCounters(rd)
	if err := rd.Done(); err != nil {
		return Counters{}, err
	}
	return c, nil
}

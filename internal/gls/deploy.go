package gls

import (
	"fmt"
	"sort"
	"time"

	"gdn/internal/sec"
	"gdn/internal/transport"
)

// DomainSpec describes one domain of the location-service hierarchy for
// Deploy: its name, the sites hosting its directory subnodes (one
// subnode per listed site — more than one means the node is partitioned,
// §3.5), and its child domains.
type DomainSpec struct {
	Name     string
	Sites    []string
	Children []DomainSpec
}

// Leaf is shorthand for a leaf domain with a single-subnode directory.
func Leaf(name, site string) DomainSpec {
	return DomainSpec{Name: name, Sites: []string{site}}
}

// Tree is a deployed location-service hierarchy.
type Tree struct {
	net     transport.Network
	auth    *sec.Config
	domains map[string]*deployedDomain
	order   []string // creation order, children after parents
}

type deployedDomain struct {
	spec  DomainSpec
	ref   Ref
	nodes []*Node
	// leaf reports whether the domain has no children; resolvers bind
	// to leaf domains.
	leaf bool
}

// DeployOption configures Deploy.
type DeployOption func(*deployOptions)

type deployOptions struct {
	auth    *sec.Config
	service string
	clock   func() time.Time
	sweep   time.Duration
	logf    func(string, ...any)
}

// WithTreeClock installs a time source on every directory node; lease
// expiry is judged against it. Tests install controllable clocks.
func WithTreeClock(clock func() time.Time) DeployOption {
	return func(o *deployOptions) { o.clock = clock }
}

// WithTreeSweep sets the lease-janitor interval on every node
// (negative disables the janitor; tests sweep by hand).
func WithTreeSweep(d time.Duration) DeployOption {
	return func(o *deployOptions) { o.sweep = d }
}

// WithTreeAuth runs every directory node with the given security
// configuration (shared credentials and trust anchors).
func WithTreeAuth(cfg *sec.Config) DeployOption {
	return func(o *deployOptions) { o.auth = cfg }
}

// WithServiceName changes the service part of node addresses (default
// "gls"); tests deploying several trees on one network need it.
func WithServiceName(s string) DeployOption {
	return func(o *deployOptions) { o.service = s }
}

// WithTreeLog directs node diagnostics to logf.
func WithTreeLog(logf func(string, ...any)) DeployOption {
	return func(o *deployOptions) { o.logf = logf }
}

// Deploy starts a directory node for every domain in the hierarchy
// rooted at spec and wires parents to children. It returns a Tree for
// creating resolvers and inspecting nodes. On error, nodes already
// started are shut down.
func Deploy(net transport.Network, spec DomainSpec, opts ...DeployOption) (*Tree, error) {
	o := deployOptions{service: "gls"}
	for _, opt := range opts {
		opt(&o)
	}
	t := &Tree{net: net, auth: o.auth, domains: make(map[string]*deployedDomain)}
	if err := t.deploy(spec, Ref{}, &o); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

func (t *Tree) deploy(spec DomainSpec, parent Ref, o *deployOptions) error {
	if spec.Name == "" {
		return fmt.Errorf("gls: domain spec without a name")
	}
	if _, dup := t.domains[spec.Name]; dup {
		return fmt.Errorf("gls: duplicate domain %q", spec.Name)
	}
	if len(spec.Sites) == 0 {
		return fmt.Errorf("gls: domain %q has no sites", spec.Name)
	}

	self := Ref{Addrs: make([]string, len(spec.Sites))}
	for i, site := range spec.Sites {
		self.Addrs[i] = fmt.Sprintf("%s:%s-%s-%d", site, o.service, spec.Name, i)
	}

	d := &deployedDomain{spec: spec, ref: self, leaf: len(spec.Children) == 0}
	for i, site := range spec.Sites {
		node, err := Start(t.net, Config{
			Domain:     spec.Name,
			Site:       site,
			Addr:       self.Addrs[i],
			Self:       self,
			Parent:     parent,
			Seed:       int64(len(t.order))*1000 + int64(i),
			Auth:       o.auth,
			Clock:      o.clock,
			SweepEvery: o.sweep,
			Logf:       o.logf,
		})
		if err != nil {
			for _, n := range d.nodes {
				n.Close()
			}
			return fmt.Errorf("gls: start %s subnode %d: %w", spec.Name, i, err)
		}
		d.nodes = append(d.nodes, node)
	}
	t.domains[spec.Name] = d
	t.order = append(t.order, spec.Name)

	for _, child := range spec.Children {
		if err := t.deploy(child, self, o); err != nil {
			return err
		}
	}
	return nil
}

// Ref returns the directory-node reference for a domain.
func (t *Tree) Ref(domain string) (Ref, bool) {
	d, ok := t.domains[domain]
	if !ok {
		return Ref{}, false
	}
	return d.ref, true
}

// Nodes returns the subnodes serving a domain, in subnode order.
func (t *Tree) Nodes(domain string) []*Node {
	d, ok := t.domains[domain]
	if !ok {
		return nil
	}
	return append([]*Node(nil), d.nodes...)
}

// Domains lists all deployed domains, leaves last within their subtree
// creation order.
func (t *Tree) Domains() []string {
	out := append([]string(nil), t.order...)
	sort.Strings(out)
	return out
}

// LeafDomains lists the leaf domains clients can attach to.
func (t *Tree) LeafDomains() []string {
	var out []string
	for name, d := range t.domains {
		if d.leaf {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Resolver returns a resolver for a client at site attached to the given
// leaf domain. Attaching to interior domains is allowed — the paper only
// requires that the node be the client's local one.
func (t *Tree) Resolver(site, domain string, opts ...ResolverOption) (*Resolver, error) {
	d, ok := t.domains[domain]
	if !ok {
		return nil, fmt.Errorf("gls: unknown domain %q", domain)
	}
	if t.auth != nil {
		opts = append([]ResolverOption{WithResolverAuth(t.auth)}, opts...)
	}
	return NewResolver(t.net, site, d.ref, opts...), nil
}

// Close shuts down every directory node in the tree.
func (t *Tree) Close() {
	for i := len(t.order) - 1; i >= 0; i-- {
		for _, n := range t.domains[t.order[i]].nodes {
			n.Close()
		}
	}
}

package gls

import (
	"fmt"
	"time"

	"gdn/internal/ids"
	"gdn/internal/wire"
)

// Snapshot format lineage:
//
//   - v1 started straight with the domain string and carried bare
//     contact addresses; entries restore as permanent.
//   - v2 ("gls-snapshot/2") added registration sessions, per-entry
//     lease deadlines (as seconds remaining) and drain flags, written
//     under one whole-node lock.
//   - v3 ("gls-snapshot/3") keeps v2's content but groups records by
//     record shard: the writer holds one stripe read lock at a time,
//     so snapshotting a million-record node never freezes the whole
//     table. The price is per-stripe (not whole-node) consistency —
//     an entry can reference a session born after the session block
//     was written. Restore drops such entries; the owner's next
//     renewal notices the attached-count mismatch and re-attaches,
//     the same self-healing that repairs a rollback to an old
//     snapshot.
//
// Restore accepts all three; Snapshot writes v3.
const (
	snapshotMagic   = "gls-snapshot/2"
	snapshotMagicV3 = "gls-snapshot/3"
)

// Lease kinds in a version-2/3 snapshot entry.
const (
	leasePermanent = uint8(iota) // no expiry
	leaseOwn                     // per-entry lease; remaining seconds follow
	leaseSession                 // attached to a session; its id follows
)

// Snapshot serializes the node's state for persistent storage. The
// paper's Java GLS supports "persistent storage of the state of a
// directory node (location information and forwarding pointers)" (§7);
// object servers and the gdn-gls daemon checkpoint with this. Liveness
// state is part of the image: registration sessions with their
// remaining TTL and drain attribute, per-entry lease deadlines (as
// seconds remaining, so the restored clock regime does not matter) and
// the address drain set — a restored node can therefore never
// resurrect a dead server's replicas as permanent, which the
// version-1 layout did. Entries and sessions already expired at
// snapshot time are not encoded.
func (n *Node) Snapshot() []byte {
	now := n.cfg.Clock()
	w := wire.NewWriter(1024)
	w.Str(snapshotMagicV3)
	w.Str(n.cfg.Domain)

	n.drainMu.RLock()
	w.Count(len(n.drained))
	for addr := range n.drained {
		w.Str(addr)
	}
	n.drainMu.RUnlock()

	n.sessMu.RLock()
	live := make([]*session, 0, len(n.sessions))
	for _, sess := range n.sessions {
		if !sess.expired(now) {
			live = append(live, sess)
		}
	}
	w.Count(len(live))
	for _, sess := range live {
		addr, ttl := sess.fields()
		w.OID(sess.id)
		w.Str(addr)
		w.Uint32(wholeSeconds(ttl))
		w.Uint32(remainingSeconds(now, time.Unix(0, sess.expiresNano.Load())))
		w.Bool(sess.drained.Load())
	}
	n.sessMu.RUnlock()

	w.Uint32(recShards)
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.RLock()
		w.Count(len(sh.recs))
		for oid, rec := range sh.recs {
			w.OID(oid)
			kept := make([]leasedAddr, 0, len(rec.addrs))
			for _, la := range rec.addrs {
				if !la.expired(now) {
					kept = append(kept, la)
				}
			}
			w.Count(len(kept))
			for _, la := range kept {
				la.ca.encode(w)
				switch {
				case la.sess != nil:
					w.Uint8(leaseSession)
					w.OID(la.sess.id)
				case !la.expires.IsZero():
					w.Uint8(leaseOwn)
					w.Uint32(remainingSeconds(now, la.expires))
				default:
					w.Uint8(leasePermanent)
				}
			}
			w.Count(len(rec.ptrs))
			for child, ref := range rec.ptrs {
				w.Str(child)
				ref.encode(w)
			}
		}
		sh.mu.RUnlock()
	}
	return w.Bytes()
}

// wholeSeconds rounds a duration up to whole seconds for the wire.
func wholeSeconds(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	return uint32((d + time.Second - 1) / time.Second)
}

// remainingSeconds encodes a deadline as whole seconds left, at least
// one for a deadline still in the future.
func remainingSeconds(now, deadline time.Time) uint32 {
	return wholeSeconds(deadline.Sub(now))
}

// Restore replaces the node's state with a snapshot taken by Snapshot
// (any format version). The snapshot must come from a node serving the
// same domain. Lease deadlines restart relative to the restoring
// node's clock: an entry snapshot with five seconds left has five
// seconds to be renewed after the restore, and a dead server's entries
// age out within one TTL of the restart instead of living forever.
func (n *Node) Restore(b []byte) error {
	r := wire.NewReader(b)
	first := r.Str()
	if r.Err() != nil {
		return r.Err()
	}
	switch first {
	case snapshotMagicV3:
		return n.restoreV23(r, true)
	case snapshotMagic:
		return n.restoreV23(r, false)
	default:
		// Version-1 layout: the first string is the domain and every
		// entry restores as permanent.
		return n.restoreV1(first, r)
	}
}

// restoreV23 decodes the v2 and v3 layouts, which differ only in the
// record section: v2 is one flat record list; v3 is a list per shard
// (with the shard count on the wire, so the stripe constant can change
// without a format bump). v3 additionally tolerates entries whose
// session is missing — the per-stripe consistency documented on
// Snapshot — where v2, written atomically, treats that as corruption.
func (n *Node) restoreV23(r *wire.Reader, v3 bool) error {
	domain := r.Str()
	if r.Err() != nil {
		return r.Err()
	}
	if domain != n.cfg.Domain {
		return fmt.Errorf("gls: snapshot is for domain %q, node serves %q", domain, n.cfg.Domain)
	}
	now := n.cfg.Clock()

	nd := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	drained := make(map[string]bool, nd)
	for i := 0; i < nd; i++ {
		drained[r.Str()] = true
	}

	ns := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	sessions := make(map[ids.OID]*session, ns)
	for i := 0; i < ns; i++ {
		sess := &session{id: r.OID()}
		sess.addr = r.Str()
		sess.ttl = time.Duration(r.Uint32()) * time.Second
		sess.expiresNano.Store(now.Add(time.Duration(r.Uint32()) * time.Second).UnixNano())
		sess.drained.Store(r.Bool())
		if r.Err() != nil {
			return r.Err()
		}
		sessions[sess.id] = sess
	}

	groups := 1
	if v3 {
		groups = int(r.Uint32())
		if r.Err() != nil {
			return r.Err()
		}
		if groups == 0 || groups > 1<<10 {
			return fmt.Errorf("gls: snapshot carries implausible shard count %d", groups)
		}
	}
	recs := make(map[ids.OID]*record)
	for g := 0; g < groups; g++ {
		count := r.Count()
		if r.Err() != nil {
			return r.Err()
		}
		for i := 0; i < count; i++ {
			oid := r.OID()
			rec := &record{}
			na := r.Count()
			if r.Err() != nil {
				return r.Err()
			}
			for j := 0; j < na; j++ {
				la := leasedAddr{ca: decodeContactAddress(r)}
				keep := true
				switch r.Uint8() {
				case leaseOwn:
					la.expires = now.Add(time.Duration(r.Uint32()) * time.Second)
				case leaseSession:
					sid := r.OID()
					la.sess = sessions[sid]
					if r.Err() == nil && la.sess == nil {
						if !v3 {
							return fmt.Errorf("gls: snapshot entry references unknown session %s", sid.Short())
						}
						// The session raced the shard-by-shard writer; drop
						// the entry and let its owner re-attach.
						keep = false
					}
					if la.sess != nil {
						// Counts are recomputed from the entries themselves, so
						// the snapshot cannot carry a stale tally.
						la.sess.attached.Add(1)
					}
				}
				if r.Err() != nil {
					return r.Err()
				}
				if keep {
					rec.addrs = append(rec.addrs, la)
				}
			}
			np := r.Count()
			if r.Err() != nil {
				return r.Err()
			}
			if np > 0 {
				rec.ptrs = make(map[string]Ref, np)
			}
			for j := 0; j < np; j++ {
				child := r.Str()
				rec.ptrs[child] = decodeRef(r)
			}
			if !rec.empty() {
				recs[oid] = rec
			}
		}
	}
	if err := r.Done(); err != nil {
		return err
	}
	n.installState(recs, drained, sessions)
	return nil
}

// restoreV1 decodes the pre-session snapshot layout; r is positioned
// just past the leading domain string.
func (n *Node) restoreV1(domain string, r *wire.Reader) error {
	if domain != n.cfg.Domain {
		return fmt.Errorf("gls: snapshot is for domain %q, node serves %q", domain, n.cfg.Domain)
	}
	count := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	recs := make(map[ids.OID]*record, count)
	for i := 0; i < count; i++ {
		oid := r.OID()
		rec := &record{}
		na := r.Count()
		if r.Err() != nil {
			return r.Err()
		}
		for j := 0; j < na; j++ {
			rec.addrs = append(rec.addrs, leasedAddr{ca: decodeContactAddress(r)})
		}
		np := r.Count()
		if r.Err() != nil {
			return r.Err()
		}
		if np > 0 {
			rec.ptrs = make(map[string]Ref, np)
		}
		for j := 0; j < np; j++ {
			child := r.Str()
			rec.ptrs[child] = decodeRef(r)
		}
		recs[oid] = rec
	}
	if err := r.Done(); err != nil {
		return err
	}
	n.installState(recs, make(map[string]bool), make(map[ids.OID]*session))
	return nil
}

// installState swaps in a fully decoded state, distributing records
// over the shards. Each stripe is swapped under its own lock; Restore
// runs at boot (or between test phases), so the brief window where
// stripes mix old and new state has no observers that care.
func (n *Node) installState(recs map[ids.OID]*record, drained map[string]bool, sessions map[ids.OID]*session) {
	var byShard [recShards]map[ids.OID]*record
	for i := range byShard {
		byShard[i] = make(map[ids.OID]*record, len(recs)/recShards+1)
	}
	for oid, rec := range recs {
		byShard[int(oid[ids.Size-1])&(recShards-1)][oid] = rec
	}
	n.drainMu.Lock()
	n.drained = drained
	n.drainMu.Unlock()
	n.sessMu.Lock()
	n.sessions = sessions
	n.sessMu.Unlock()
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		sh.recs = byShard[i]
		sh.mu.Unlock()
	}
}

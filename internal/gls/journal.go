package gls

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gdn/internal/ids"
	"gdn/internal/store"
	"gdn/internal/walog"
	"gdn/internal/wire"
)

// The journal replaces monolithic snapshotting as the node's
// persistence path. Layout on disk, under Config.StateDir:
//
//	base.snap    "gls-base/1" header + generation + a v3 Snapshot
//	journal.log  walog frames: a "gls-journal/1" header frame carrying
//	             the generation, then one frame per mutation
//
// Every mutation handler appends one entry after releasing its shard
// lock; the flusher writes and fsyncs the batch every FlushEvery —
// steady-state renewal and insert traffic therefore costs appends, not
// snapshot rewrites. When the log outgrows CompactBytes it is folded:
// a new base (generation+1) is written with the durable-write
// discipline, then the log is atomically rewritten to just a header
// with the new generation. Recovery applies log entries only when the
// log generation matches the base generation, so a crash between the
// two writes replays the old log against the old base or skips the
// stale log against the new base — never a mix. A torn final frame
// (kill -9 mid-append) is truncated by walog; everything before it
// replays.
//
// Replay follows the restore clock contract: leases and session TTLs
// restart relative to the recovering node's clock, so a dead server's
// entries age out within one TTL of the restart, and session owners
// repair anything in the loss window (mutations since the last flush)
// through the renewal attached-count echo.
const (
	baseMagic    = "gls-base/1"
	journalMagic = "gls-journal/1"
	baseFile     = "base.snap"
	journalFile  = "journal.log"
)

// Journal entry kinds, one per mutating op. Lease expiry needs none:
// a replayed lease re-expires against the restored clock on its own.
const (
	jInsert = uint8(iota + 1)
	jDelete
	jInstallPtr
	jRemovePtr
	jDrain
	jSessionOpen
	jSessionRenew
	jSessionClose
	jReattach
)

// Default persistence tuning when the Config leaves it zero.
const (
	defaultFlushEvery   = time.Second
	defaultCompactBytes = 8 << 20
)

// journal is the node's append-log persistence. mu serializes appends
// against compaction: an entry either lands in the log generation its
// mutation precedes, or waits for the new generation — whose base
// snapshot may already contain the mutation, which replay tolerates
// (every entry kind is idempotent).
type journal struct {
	n *Node

	mu  sync.Mutex
	log *walog.Log
	gen uint64

	flushEvery   time.Duration
	compactBytes int64

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

func (n *Node) basePath() string    { return filepath.Join(n.cfg.StateDir, baseFile) }
func (n *Node) journalPath() string { return filepath.Join(n.cfg.StateDir, journalFile) }

// openJournal recovers the node's state from StateDir (base snapshot,
// then matching-generation log entries) and opens the log for
// appending. It runs before the node serves requests.
func openJournal(n *Node) (*journal, error) {
	if err := os.MkdirAll(n.cfg.StateDir, 0o755); err != nil {
		return nil, err
	}
	baseGen := uint64(0)
	if b, err := os.ReadFile(n.basePath()); err == nil {
		r := wire.NewReader(b)
		if magic := r.Str(); r.Err() != nil || magic != baseMagic {
			return nil, fmt.Errorf("gls: %s: not a base snapshot (magic %q)", n.basePath(), magic)
		}
		baseGen = r.Uint64()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if err := n.Restore(b[len(b)-r.Remaining():]); err != nil {
			return nil, fmt.Errorf("gls: restore %s: %w", n.basePath(), err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	j := &journal{
		n:            n,
		flushEvery:   n.cfg.FlushEvery,
		compactBytes: n.cfg.CompactBytes,
	}
	if j.flushEvery <= 0 {
		j.flushEvery = defaultFlushEvery
	}
	if j.compactBytes <= 0 {
		j.compactBytes = defaultCompactBytes
	}
	j.gen = baseGen
	sawHeader := false
	logGen := uint64(0)
	applied, skipped := 0, 0
	lg, err := walog.Open(n.journalPath(), func(p []byte) error {
		if !sawHeader {
			sawHeader = true
			r := wire.NewReader(p)
			if magic := r.Str(); r.Err() != nil || magic != journalMagic {
				return fmt.Errorf("bad journal header (magic %q)", magic)
			}
			logGen = r.Uint64()
			return r.Done()
		}
		if logGen != baseGen {
			// A crash between base write and log rewrite during
			// compaction: the log belongs to another generation, and its
			// entries are either folded into this base already (older) or
			// unreachable (no such case — the base is written first).
			skipped++
			return nil
		}
		applied++
		return n.applyLogEntry(p)
	})
	if err != nil {
		return nil, err
	}
	j.log = lg
	if skipped > 0 {
		n.cfg.Logf("gls: %s: skipped %d journal entries from generation %d (base is %d)",
			n.cfg.Domain, skipped, logGen, baseGen)
	}
	if applied > 0 {
		n.cfg.Logf("gls: %s: replayed %d journal entries onto base generation %d",
			n.cfg.Domain, applied, baseGen)
	}
	if !sawHeader {
		// Fresh (or fully truncated) log: stamp it with the current
		// generation. The header rides the first flush batch.
		lg.Append(journalHeader(baseGen))
	}
	return j, nil
}

func journalHeader(gen uint64) []byte {
	w := wire.NewWriter(32)
	w.Str(journalMagic)
	w.Uint64(gen)
	return w.Bytes()
}

func (j *journal) append(p []byte) {
	j.mu.Lock()
	j.log.Append(p)
	j.mu.Unlock()
}

// flush makes the buffered entries durable in one batched write+fsync
// and accounts the persistence cost.
func (j *journal) flush() error {
	start := time.Now()
	nw, err := j.log.Flush()
	if nw > 0 {
		mSnapshotAppendSeconds.ObserveSince(start)
		mLogBytesTotal.Add(int64(nw))
	}
	return err
}

// compact folds the journal into a fresh base snapshot. Appends block
// for the duration (they would be lost by the log rewrite otherwise);
// the snapshot itself holds only one record stripe at a time, so
// lookups and the read sides keep flowing.
func (j *journal) compact() error {
	start := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	gen := j.gen + 1
	w := wire.NewWriter(64)
	w.Str(baseMagic)
	w.Uint64(gen)
	img := append(w.Bytes(), j.n.Snapshot()...)
	if err := store.WriteFileSync(j.n.basePath(), img); err != nil {
		return fmt.Errorf("gls: write base snapshot: %w", err)
	}
	if err := j.log.Rewrite([][]byte{journalHeader(gen)}); err != nil {
		return fmt.Errorf("gls: reset journal: %w", err)
	}
	j.gen = gen
	mSnapshotCompactSeconds.ObserveSince(start)
	return nil
}

func (j *journal) startFlusher() {
	j.stop = make(chan struct{})
	j.done = make(chan struct{})
	go j.flushLoop()
}

func (j *journal) flushLoop() {
	defer close(j.done)
	t := time.NewTicker(j.flushEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			if err := j.flush(); err != nil {
				j.n.cfg.Logf("gls: %s: journal flush: %v", j.n.cfg.Domain, err)
				continue
			}
			if j.log.Size() > j.compactBytes {
				if err := j.compact(); err != nil {
					j.n.cfg.Logf("gls: %s: journal compaction: %v", j.n.cfg.Domain, err)
				}
			}
		}
	}
}

// close stops the flusher, flushes what remains and closes the log.
func (j *journal) close() error {
	j.closeOnce.Do(func() {
		if j.stop != nil {
			close(j.stop)
			<-j.done
		}
		ferr := j.flush()
		cerr := j.log.Close()
		if ferr != nil {
			j.closeErr = ferr
		} else {
			j.closeErr = cerr
		}
	})
	return j.closeErr
}

// applyLogEntry replays one journal entry against the node's state.
// Every kind is idempotent, and entries referencing sessions the log's
// own later entries (or the base) no longer know are dropped — the
// owner re-attaches on its next renewal.
func (n *Node) applyLogEntry(p []byte) error {
	r := wire.NewReader(p)
	kind := r.Uint8()
	now := n.cfg.Clock()
	switch kind {
	case jInsert:
		oid := r.OID()
		ca := decodeContactAddress(r)
		ttlSecs := r.Uint32()
		sid := r.OID()
		if err := r.Done(); err != nil {
			return err
		}
		var sess *session
		if !sid.IsNil() {
			n.sessMu.RLock()
			sess = n.sessions[sid]
			n.sessMu.RUnlock()
			if sess == nil {
				return nil // session gone by end of log; entry is moot
			}
		}
		var expires time.Time
		if sess == nil && ttlSecs > 0 {
			expires = now.Add(time.Duration(ttlSecs) * time.Second)
		}
		sh := n.shard(oid)
		sh.mu.Lock()
		rec := sh.recs[oid]
		if rec == nil {
			rec = &record{}
			sh.recs[oid] = rec
		}
		attachAddr(rec, ca, expires, sess)
		sh.mu.Unlock()
	case jDelete:
		oid := r.OID()
		addr := r.Str()
		if err := r.Done(); err != nil {
			return err
		}
		sh := n.shard(oid)
		sh.mu.Lock()
		if rec := sh.recs[oid]; rec != nil {
			kept := rec.addrs[:0]
			for _, la := range rec.addrs {
				if la.ca.Address != addr {
					kept = append(kept, la)
				} else if la.sess != nil {
					la.sess.attached.Add(-1)
				}
			}
			rec.addrs = kept
			if rec.empty() {
				delete(sh.recs, oid)
			}
		}
		sh.mu.Unlock()
	case jInstallPtr:
		oid := r.OID()
		child := r.Str()
		ref := decodeRef(r)
		if err := r.Done(); err != nil {
			return err
		}
		sh := n.shard(oid)
		sh.mu.Lock()
		rec := sh.recs[oid]
		if rec == nil {
			rec = &record{}
			sh.recs[oid] = rec
		}
		if rec.ptrs == nil {
			rec.ptrs = make(map[string]Ref)
		}
		rec.ptrs[child] = ref
		sh.mu.Unlock()
	case jRemovePtr:
		oid := r.OID()
		child := r.Str()
		if err := r.Done(); err != nil {
			return err
		}
		sh := n.shard(oid)
		sh.mu.Lock()
		if rec := sh.recs[oid]; rec != nil && rec.ptrs != nil {
			delete(rec.ptrs, child)
			if rec.empty() {
				delete(sh.recs, oid)
			}
		}
		sh.mu.Unlock()
	case jDrain:
		addr := r.Str()
		draining := r.Bool()
		if err := r.Done(); err != nil {
			return err
		}
		n.applyDrain(addr, draining)
	case jSessionOpen:
		sid := r.OID()
		addr := r.Str()
		ttlSecs := r.Uint32()
		if err := r.Done(); err != nil {
			return err
		}
		n.applySessionOpen(sid, addr, time.Duration(ttlSecs)*time.Second, now)
	case jSessionRenew:
		sid := r.OID()
		ttlSecs := r.Uint32()
		if err := r.Done(); err != nil {
			return err
		}
		n.sessMu.RLock()
		sess := n.sessions[sid]
		n.sessMu.RUnlock()
		if sess != nil {
			sess.mu.Lock()
			if ttlSecs > 0 {
				sess.ttl = time.Duration(ttlSecs) * time.Second
			}
			ttl := sess.ttl
			sess.mu.Unlock()
			sess.expiresNano.Store(now.Add(ttl).UnixNano())
		}
	case jSessionClose:
		sid := r.OID()
		if err := r.Done(); err != nil {
			return err
		}
		n.sessMu.Lock()
		if sess := n.sessions[sid]; sess != nil {
			sess.closed.Store(true)
			delete(n.sessions, sid)
		}
		n.sessMu.Unlock()
	case jReattach:
		sid := r.OID()
		addr := r.Str()
		ttlSecs := r.Uint32()
		cnt := r.Count()
		if err := r.Err(); err != nil {
			return err
		}
		entries := make([]reattachEntry, 0, cnt)
		for i := 0; i < cnt; i++ {
			entries = append(entries, reattachEntry{oid: r.OID(), ca: decodeContactAddress(r)})
		}
		if err := r.Done(); err != nil {
			return err
		}
		sess := n.applySessionOpen(sid, addr, time.Duration(ttlSecs)*time.Second, now)
		n.attachBatch(entries, sess)
	default:
		return fmt.Errorf("gls: unknown journal entry kind %d", kind)
	}
	return nil
}

// The journal* methods encode one entry per mutation and hand it to
// the journal; they no-op on nodes running without a StateDir. They
// are called after the mutation's shard lock is released.

func (n *Node) journalInsert(oid ids.OID, ca ContactAddress, ttlSecs uint32, sid ids.OID) {
	if n.journal == nil {
		return
	}
	w := wire.NewWriter(96)
	w.Uint8(jInsert)
	w.OID(oid)
	ca.encode(w)
	w.Uint32(ttlSecs)
	w.OID(sid)
	n.journal.append(w.Bytes())
}

func (n *Node) journalDelete(oid ids.OID, addr string) {
	if n.journal == nil {
		return
	}
	w := wire.NewWriter(64)
	w.Uint8(jDelete)
	w.OID(oid)
	w.Str(addr)
	n.journal.append(w.Bytes())
}

func (n *Node) journalInstallPtr(oid ids.OID, child string, ref Ref) {
	if n.journal == nil {
		return
	}
	w := wire.NewWriter(96)
	w.Uint8(jInstallPtr)
	w.OID(oid)
	w.Str(child)
	ref.encode(w)
	n.journal.append(w.Bytes())
}

func (n *Node) journalRemovePtr(oid ids.OID, child string) {
	if n.journal == nil {
		return
	}
	w := wire.NewWriter(64)
	w.Uint8(jRemovePtr)
	w.OID(oid)
	w.Str(child)
	n.journal.append(w.Bytes())
}

func (n *Node) journalDrain(addr string, draining bool) {
	if n.journal == nil {
		return
	}
	w := wire.NewWriter(64)
	w.Uint8(jDrain)
	w.Str(addr)
	w.Bool(draining)
	n.journal.append(w.Bytes())
}

func (n *Node) journalSessionOpen(sid ids.OID, addr string, ttlSecs uint32) {
	if n.journal == nil {
		return
	}
	w := wire.NewWriter(64)
	w.Uint8(jSessionOpen)
	w.OID(sid)
	w.Str(addr)
	w.Uint32(ttlSecs)
	n.journal.append(w.Bytes())
}

func (n *Node) journalSessionRenew(sid ids.OID, ttlSecs uint32) {
	if n.journal == nil {
		return
	}
	w := wire.NewWriter(32)
	w.Uint8(jSessionRenew)
	w.OID(sid)
	w.Uint32(ttlSecs)
	n.journal.append(w.Bytes())
}

func (n *Node) journalSessionClose(sid ids.OID) {
	if n.journal == nil {
		return
	}
	w := wire.NewWriter(32)
	w.Uint8(jSessionClose)
	w.OID(sid)
	n.journal.append(w.Bytes())
}

func (n *Node) journalReattach(sid ids.OID, addr string, ttlSecs uint32, entries []reattachEntry) {
	if n.journal == nil {
		return
	}
	w := wire.NewWriter(64 + 64*len(entries))
	w.Uint8(jReattach)
	w.OID(sid)
	w.Str(addr)
	w.Uint32(ttlSecs)
	w.Count(len(entries))
	for _, e := range entries {
		w.OID(e.oid)
		e.ca.encode(w)
	}
	n.journal.append(w.Bytes())
}

// FlushJournal forces a journal flush now; the gdn-gls daemon calls it
// on shutdown paths, and tests use it to bound the loss window.
func (n *Node) FlushJournal() error {
	if n.journal == nil {
		return nil
	}
	return n.journal.flush()
}

// CompactJournal folds the journal into the base snapshot now,
// regardless of size. The daemon exposes it for operators; the flusher
// triggers it automatically past CompactBytes.
func (n *Node) CompactJournal() error {
	if n.journal == nil {
		return nil
	}
	return n.journal.compact()
}

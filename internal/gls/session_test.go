package gls

import (
	"errors"
	"testing"
	"time"

	"gdn/internal/ids"
	"gdn/internal/netsim"
	"gdn/internal/wire"
)

// Registration-session tests: one leased session per server covers
// every attached entry, renewal is O(1) in the number of replicas,
// session death ages everything out within one TTL, and session state
// (including drain) survives snapshot/restore.

func openTestSession(t *testing.T, res *Resolver, addr string, ttl time.Duration) *ServerSession {
	t.Helper()
	sess, _, err := res.OpenSession(addr, ttl)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestSessionAttachRenewExpire(t *testing.T) {
	tree, clock := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	sess := openTestSession(t, res, "eu-nl-vu:gos-obj", 10*time.Second)

	ca := testAddr("eu-nl-vu")
	var oids []ids.OID
	for i := 0; i < 3; i++ {
		oid, _, err := sess.Attach(ids.Nil, ca)
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		oids = append(oids, oid)
	}
	for _, oid := range oids {
		if addrs, _, err := res.Lookup(oid); err != nil || len(addrs) != 1 {
			t.Fatalf("lookup while session lives: %v (%d addrs)", err, len(addrs))
		}
	}

	// Renewals keep every attached entry alive well past the TTL —
	// without touching any entry individually.
	for i := 0; i < 5; i++ {
		clock.Advance(6 * time.Second)
		if _, err := sess.Renew(); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	for _, oid := range oids {
		if _, _, err := res.Lookup(oid); err != nil {
			t.Fatalf("lookup after renewals: %v", err)
		}
	}

	// Stop renewing: one TTL later every attached entry is gone from
	// lookups, before any janitor runs (lazy expiry).
	clock.Advance(11 * time.Second)
	for _, oid := range oids {
		if _, _, err := res.Lookup(oid); !errors.Is(err, ErrNotFound) {
			t.Fatalf("lookup after session expiry = %v, want ErrNotFound", err)
		}
	}
}

func TestSessionRenewalIsOneCallPerSubnode(t *testing.T) {
	tree, clock := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	sess := openTestSession(t, res, "eu-nl-vu:gos-obj", 10*time.Second)

	ca := testAddr("eu-nl-vu")
	for i := 0; i < 50; i++ {
		if _, _, err := sess.Attach(ids.Nil, ca); err != nil {
			t.Fatal(err)
		}
	}
	leaf := tree.Nodes("eu/nl")[0]
	before := leaf.Stats()

	for i := 0; i < 3; i++ {
		clock.Advance(3 * time.Second)
		if _, err := sess.Renew(); err != nil {
			t.Fatal(err)
		}
	}
	after := leaf.Stats()
	// The heartbeat is one batched renew: no per-entry inserts, however
	// many replicas ride the session.
	if got := after.Inserts - before.Inserts; got != 0 {
		t.Fatalf("renewals performed %d inserts, want 0", got)
	}
	if got := after.SessionRenews - before.SessionRenews; got != 3 {
		t.Fatalf("SessionRenews delta = %d, want 3", got)
	}
}

func TestSessionDeathAgesOut1000Replicas(t *testing.T) {
	tree, clock := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	sess := openTestSession(t, res, "eu-nl-vu:gos-obj", 10*time.Second)

	const n = 1000
	ca := testAddr("eu-nl-vu")
	oids := make([]ids.OID, n)
	for i := range oids {
		oid, _, err := sess.Attach(ids.Nil, ca)
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		oids[i] = oid
	}
	leaf := tree.Nodes("eu/nl")[0]
	if got := leaf.Records(); got != n {
		t.Fatalf("leaf records = %d, want %d", got, n)
	}

	// The server dies (no renewals): within one TTL every entry is out
	// of lookups.
	clock.Advance(11 * time.Second)
	for _, i := range []int{0, 1, n / 2, n - 1} {
		if _, _, err := res.Lookup(oids[i]); !errors.Is(err, ErrNotFound) {
			t.Fatalf("lookup %d one TTL after death = %v, want ErrNotFound", i, err)
		}
	}

	// The sweep reclaims every record and tears down the pointer
	// chains, so the tree does not accumulate a dead server's entries.
	if got := leaf.SweepExpired(); got != n {
		t.Fatalf("SweepExpired = %d, want %d", got, n)
	}
	if got := leaf.Records(); got != 0 {
		t.Fatalf("leaf records after sweep = %d, want 0", got)
	}
	if got := tree.Nodes("root")[0].Records(); got != 0 {
		t.Fatalf("root records after sweep = %d, want 0", got)
	}
	if got := leaf.Sessions(); got != 0 {
		t.Fatalf("sessions after sweep = %d, want 0", got)
	}
}

func TestSessionCloseExpiresAttachedEntries(t *testing.T) {
	tree, _ := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	sess := openTestSession(t, res, "eu-nl-vu:gos-obj", 10*time.Second)

	oid, _, err := sess.Attach(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Lookup(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	// Orderly shutdown: no clock advance needed, the entries are gone
	// at once.
	if _, _, err := res.Lookup(oid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after session close = %v, want ErrNotFound", err)
	}
	if got := tree.Nodes("eu/nl")[0].Sessions(); got != 0 {
		t.Fatalf("sessions after close = %d, want 0", got)
	}
}

func TestSessionDrainIsASessionAttribute(t *testing.T) {
	tree, _ := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	sess := openTestSession(t, res, "eu-nl-vu:gos-obj", 10*time.Second)

	sick := ContactAddress{Protocol: "masterslave", Address: sess.Addr(), Impl: "pkg/1", Role: "master"}
	healthy := testAddr("eu-de-tu")
	oid, _, err := sess.Attach(ids.Nil, sick)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Insert(oid, healthy); err != nil {
		t.Fatal(err)
	}

	if _, err := sess.Drain(true); err != nil {
		t.Fatal(err)
	}
	addrs, _, err := res.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != healthy {
		t.Fatalf("addrs while drained = %v, want just %v", addrs, healthy)
	}

	// The drain travels with the session through snapshot/restore: a
	// node restart no longer forgets it until the next scrub pass.
	leaf := tree.Nodes("eu/nl")[0]
	snap := leaf.Snapshot()
	if err := leaf.Restore(snap); err != nil {
		t.Fatal(err)
	}
	addrs, _, err = res.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != healthy {
		t.Fatalf("addrs after restore = %v, want drain remembered (just %v)", addrs, healthy)
	}

	if _, err := sess.Drain(false); err != nil {
		t.Fatal(err)
	}
	addrs, _, err = res.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 {
		t.Fatalf("addrs after undrain = %v, want both", addrs)
	}
}

func TestSnapshotPersistsLeaseDeadlines(t *testing.T) {
	tree, clock := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	// One per-entry lease and one permanent entry.
	leased := testAddr("eu-nl-vu")
	permanent := testAddr("eu-de-tu")
	oid, _, err := res.InsertLease(ids.Nil, leased, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Insert(oid, permanent); err != nil {
		t.Fatal(err)
	}

	leaf := tree.Nodes("eu/nl")[0]
	snap := leaf.Snapshot()
	if err := leaf.Restore(snap); err != nil {
		t.Fatal(err)
	}

	// Within the restored TTL both entries serve.
	addrs, _, err := res.Lookup(oid)
	if err != nil || len(addrs) != 2 {
		t.Fatalf("lookup within restored lease: %v (%d addrs)", err, len(addrs))
	}

	// Past it, the leased entry is gone — a restored node can no longer
	// resurrect a dead server's replicas as permanent (the PR 4 bug).
	clock.Advance(11 * time.Second)
	addrs, _, err = res.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != permanent {
		t.Fatalf("addrs after restored lease expired = %v, want just %v", addrs, permanent)
	}
}

func TestSnapshotRestoreRenewRoundTrip(t *testing.T) {
	tree, clock := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	sess := openTestSession(t, res, "eu-nl-vu:gos-obj", 10*time.Second)

	ca := testAddr("eu-nl-vu")
	var oids []ids.OID
	for i := 0; i < 4; i++ {
		oid, _, err := sess.Attach(ids.Nil, ca)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}

	// Snapshot, restart the node (restore), and keep heartbeating: the
	// restored session accepts renewals — no re-registration storm.
	leaf := tree.Nodes("eu/nl")[0]
	snap := leaf.Snapshot()
	if err := leaf.Restore(snap); err != nil {
		t.Fatal(err)
	}
	before := leaf.Stats()
	for i := 0; i < 4; i++ {
		clock.Advance(6 * time.Second)
		if _, err := sess.Renew(); err != nil {
			t.Fatalf("renew after restore: %v", err)
		}
	}
	if got := leaf.Stats().Inserts - before.Inserts; got != 0 {
		t.Fatalf("renewals after restore performed %d inserts, want 0 (session survived the snapshot)", got)
	}
	for _, oid := range oids {
		if _, _, err := res.Lookup(oid); err != nil {
			t.Fatalf("lookup after restore+renew: %v", err)
		}
	}
	// And once the server dies, the restored session still ages its
	// entries out.
	clock.Advance(11 * time.Second)
	if _, _, err := res.Lookup(oids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after death = %v, want ErrNotFound", err)
	}
}

func TestSessionLossReattachesOnRenew(t *testing.T) {
	tree, _ := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	// Capture the node's empty state, then attach through a session.
	leaf := tree.Nodes("eu/nl")[0]
	empty := leaf.Snapshot()

	sess := openTestSession(t, res, "eu-nl-vu:gos-obj", 10*time.Second)
	ca := testAddr("eu-nl-vu")
	var oids []ids.OID
	for i := 0; i < 3; i++ {
		oid, _, err := sess.Attach(ids.Nil, ca)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}

	// The node restarts having lost everything since the empty
	// snapshot: session and entries are gone.
	if err := leaf.Restore(empty); err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Lookup(oids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after amnesiac restart = %v, want ErrNotFound", err)
	}

	// The next heartbeat learns the session is unknown, reopens it and
	// re-attaches every entry — the server repairs the node's memory.
	if _, err := sess.Renew(); err != nil {
		t.Fatalf("renew after session loss: %v", err)
	}
	for _, oid := range oids {
		if addrs, _, err := res.Lookup(oid); err != nil || len(addrs) != 1 {
			t.Fatalf("lookup after re-attach: %v (%d addrs)", err, len(addrs))
		}
	}
}

func TestRenewRepairsSnapshotRollback(t *testing.T) {
	tree, _ := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	sess := openTestSession(t, res, "eu-nl-vu:gos-obj", 10*time.Second)

	ca := testAddr("eu-nl-vu")
	var oids []ids.OID
	for i := 0; i < 3; i++ {
		oid, _, err := sess.Attach(ids.Nil, ca)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	// Snapshot, then attach two more entries the snapshot predates.
	leaf := tree.Nodes("eu/nl")[0]
	snap := leaf.Snapshot()
	for i := 0; i < 2; i++ {
		oid, _, err := sess.Attach(ids.Nil, ca)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}

	// The node rolls back: the session is known (it is in the
	// snapshot), but the two young attaches are gone — the dangerous
	// case, since a bare known/unknown bit would report all-is-well
	// forever.
	if err := leaf.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Lookup(oids[4]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("young attach after rollback = %v, want ErrNotFound", err)
	}

	// The next heartbeat sees the attached-entry count disagree with
	// its books and re-attaches.
	if _, err := sess.Renew(); err != nil {
		t.Fatal(err)
	}
	for i, oid := range oids {
		if addrs, _, err := res.Lookup(oid); err != nil || len(addrs) != 1 {
			t.Fatalf("lookup %d after repairing rollback: %v (%d addrs)", i, err, len(addrs))
		}
	}
	// And once repaired, heartbeats go back to being pure renewals.
	before := leaf.Stats()
	if _, err := sess.Renew(); err != nil {
		t.Fatal(err)
	}
	if got := leaf.Stats().Inserts - before.Inserts; got != 0 {
		t.Fatalf("renew after repair performed %d inserts, want 0", got)
	}
}

func TestAttachUnknownSessionReopens(t *testing.T) {
	tree, _ := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	leaf := tree.Nodes("eu/nl")[0]
	empty := leaf.Snapshot()
	sess := openTestSession(t, res, "eu-nl-vu:gos-obj", 10*time.Second)

	// Node forgets the session before the first attach.
	if err := leaf.Restore(empty); err != nil {
		t.Fatal(err)
	}
	oid, _, err := sess.Attach(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatalf("attach after session loss: %v", err)
	}
	if addrs, _, err := res.Lookup(oid); err != nil || len(addrs) != 1 {
		t.Fatalf("lookup after reopened attach: %v (%d addrs)", err, len(addrs))
	}
}

func TestV1SnapshotStillRestores(t *testing.T) {
	tree, _ := deployLeaseWorld(t)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")
	leaf := tree.Nodes("eu/nl")[0]

	oid, _, err := res.Insert(ids.Nil, testAddr("eu-nl-vu"))
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build the version-1 layout for the same record set the node
	// holds: domain, then per-record bare contact addresses + pointers.
	v1 := encodeV1Snapshot(leaf)
	if err := leaf.Restore(v1); err != nil {
		t.Fatalf("restore v1 snapshot: %v", err)
	}
	if addrs, _, err := res.Lookup(oid); err != nil || len(addrs) != 1 {
		t.Fatalf("lookup after v1 restore: %v (%d addrs)", err, len(addrs))
	}
}

// encodeV1Snapshot re-encodes a node's records in the pre-session
// snapshot layout (domain first, bare contact addresses) — the image a
// daemon checkpointed before this PR.
func encodeV1Snapshot(n *Node) []byte {
	w := wire.NewWriter(1024)
	w.Str(n.cfg.Domain)
	w.Count(n.Records())
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.RLock()
		for oid, rec := range sh.recs {
			w.OID(oid)
			w.Count(len(rec.addrs))
			for _, la := range rec.addrs {
				la.ca.encode(w)
			}
			w.Count(len(rec.ptrs))
			for child, ref := range rec.ptrs {
				w.Str(child)
				ref.encode(w)
			}
		}
		sh.mu.RUnlock()
	}
	return w.Bytes()
}

// TestReattachIsOneMessagePerSubnode: repairing an amnesiac leaf must
// cost one batched OpSessionReattach round trip on the client<->leaf
// link, not one insert RPC per attached entry — the reopen storm a
// partition heal used to trigger.
func TestReattachIsOneMessagePerSubnode(t *testing.T) {
	net := worldNet(t)
	tree, err := Deploy(net, worldSpec())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	res := mustResolver(t, tree, "eu-nl-vu", "eu/nl")

	leaf := tree.Nodes("eu/nl")[0]
	empty := leaf.Snapshot()
	sess := openTestSession(t, res, "eu-nl-vu:gos-obj", 10*time.Second)

	const n = 40
	ca := testAddr("eu-nl-vu")
	var oids []ids.OID
	for i := 0; i < n; i++ {
		oid, _, err := sess.Attach(ids.Nil, ca)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}

	// The leaf restarts with no memory; the next heartbeat repairs it.
	if err := leaf.Restore(empty); err != nil {
		t.Fatal(err)
	}
	net.ResetMeter()
	if _, err := sess.Renew(); err != nil {
		t.Fatal(err)
	}
	// Client and leaf share a site, so their traffic is the loopback
	// class: one renew plus one batched reattach, each a request and a
	// response — nothing proportional to the n attached entries. (The
	// leaf's pointer re-installs climb regional links and are excluded.)
	if got := net.Meter().Frames[netsim.Loopback]; got > 6 {
		t.Fatalf("repair cost %d loopback frames for %d entries, want a batched handful", got, n)
	}
	for _, oid := range oids {
		if addrs, _, err := res.Lookup(oid); err != nil || len(addrs) != 1 {
			t.Fatalf("lookup after batched re-attach: %v (%d addrs)", err, len(addrs))
		}
	}
}

// TestSessionCloseBoundedWhenLeafUnreachable: Close must not hang on a
// subnode that receives requests but cannot answer (the one-way
// partition); each per-subnode close is cut off by its deadline.
func TestSessionCloseBoundedWhenLeafUnreachable(t *testing.T) {
	net := worldNet(t)
	tree, err := Deploy(net, worldSpec())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	// The resolver lives one site over from its leaf node, so the link
	// between them can be cut one way.
	res := mustResolver(t, tree, "eu-de-tu", "eu/nl")
	sess := openTestSession(t, res, "eu-de-tu:gos-obj", 10*time.Second)
	if _, _, err := sess.Attach(ids.Nil, testAddr("eu-de-tu")); err != nil {
		t.Fatal(err)
	}

	old := sessionCloseTimeout
	sessionCloseTimeout = 250 * time.Millisecond
	t.Cleanup(func() { sessionCloseTimeout = old })

	// Responses from the leaf's site no longer reach the client: the
	// close request arrives, its answer does not.
	net.PartitionOneWay("eu-nl-vu", "eu-de-tu")
	start := time.Now()
	_, err = sess.Close()
	if err == nil {
		t.Fatal("close through a one-way partition must error")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("close took %v, want bounded by the per-subnode deadline", took)
	}
}

package httpd_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gdn"
	"gdn/internal/gos"
)

func TestLastModifiedAndIfModifiedSince(t *testing.T) {
	_, h, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})
	url := ts.URL + "/pkg/apps/graphics/gimp/-/README"

	resp, _ := get(t, url)
	lm := resp.Header.Get("Last-Modified")
	if lm == "" {
		t.Fatal("download must carry Last-Modified (the package's replicated change stamp)")
	}
	when, err := http.ParseTime(lm)
	if err != nil {
		t.Fatalf("Last-Modified %q: %v", lm, err)
	}
	if d := time.Since(when); d < 0 || d > time.Hour {
		t.Fatalf("Last-Modified %v is not a recent deploy stamp", when)
	}

	// An up-to-date dumb client (dates only, no ETags) revalidates for
	// free.
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-Modified-Since", lm)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotModified {
		t.Fatalf("If-Modified-Since(current) = %d, want 304", r2.StatusCode)
	}

	// A stale copy gets the body.
	req.Header.Set("If-Modified-Since", when.Add(-time.Hour).Format(http.TimeFormat))
	r3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r3.Body)
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("If-Modified-Since(old) = %d with %d bytes, want 200 + body", r3.StatusCode, len(body))
	}

	// If-None-Match wins over If-Modified-Since (RFC 9110): a matching
	// tag answers 304 even with an ancient date; a mismatched tag gets
	// the body even with a current date.
	req.Header.Set("If-None-Match", resp.Header.Get("ETag"))
	r4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusNotModified {
		t.Fatalf("ETag match + old date = %d, want 304", r4.StatusCode)
	}
	req.Header.Set("If-None-Match", `"deadbeef"`)
	req.Header.Set("If-Modified-Since", lm)
	r5, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r5.Body.Close()
	if r5.StatusCode != http.StatusOK {
		t.Fatalf("ETag mismatch + current date = %d, want 200", r5.StatusCode)
	}
	if h.Stats().NotModified < 2 {
		t.Fatalf("stats = %+v", h.Stats())
	}
}

func TestRebindRetriesThroughFreshPeers(t *testing.T) {
	// The binding caches a proxy pinned (via the location service) to
	// the nearest replica. When that replica is torn down, the next
	// request must drop the corpse and retry once through a fresh
	// lookup — answering 200 off the surviving replica, not 502.
	w, h, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})
	url := ts.URL + "/pkg/apps/graphics/gimp/-/README"

	// Warm the binding: the na-ny HTTPD binds to the na-ca slave.
	if resp, _ := get(t, url); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status = %d", resp.StatusCode)
	}

	// Tear the slave replica down (deregistered and unhosted).
	srv, ok := w.GOS("na-ca-ucb")
	if !ok {
		t.Fatal("no GOS at na-ca-ucb")
	}
	cl := gos.NewClient(w.Net, "na-ca-ucb", srv.Addr(), nil)
	defer cl.Close()
	infos, err := cl.ListReplicas()
	if err != nil || len(infos) != 1 {
		t.Fatalf("replicas = %v, %v", infos, err)
	}
	if _, err := cl.RemoveReplica(infos[0].OID); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after replica removal = %d, want 200 via rebind", resp.StatusCode)
	}
	if !bytes.Equal(body, []byte("The GNU Image Manipulation Program")) {
		t.Fatalf("body = %q", body)
	}
	if errs := h.Stats().Errors; errs != 0 {
		t.Fatalf("handler served %d errors", errs)
	}
}

// TestKillReplicaMidDownloadFailsOver is the acceptance scenario: two
// registered replicas, the one the proxy is bound to dies mid-download,
// and the fleet of requests finishes hash-verified with zero 5xx after
// at most one retried request per transfer.
func TestKillReplicaMidDownloadFailsOver(t *testing.T) {
	top := gdn.Topology{
		Regions: map[string][]string{
			"eu": {"eu-1", "eu-2"},
			"na": {"na-1"},
		},
		// One GLS record per region: a binding client learns both eu
		// replicas in one lookup, which is what makes instant failover
		// possible before the dead one's lease expires.
		SharedRegionLeaves: true,
	}
	w, err := gdn.NewWorld(top)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	// 16 MiB: far more than the stream credit window plus any HTTP
	// buffering, so the kill lands mid-transfer.
	content := bytes.Repeat([]byte("highly available bits! "), 730_000)
	mod, err := w.Moderator("eu-1", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mod.CreatePackage("/apps/big", gdn.Scenario{
		Protocol: gdn.ProtocolMasterSlave,
		Servers:  w.GOSAddrs("eu-1", "eu-2"), // master eu-1, slave eu-2
	}, gdn.Package{Files: map[string][]byte{"blob": content}}); err != nil {
		t.Fatal(err)
	}

	h, err := w.HTTPD("na-1", gdn.HTTPDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	url := ts.URL + "/pkg/apps/big/-/blob"

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Consume a slice of the body, then crash the slave (the preferred
	// read replica) mid-stream.
	head := make([]byte, 256<<10)
	if _, err := io.ReadFull(resp.Body, head); err != nil {
		t.Fatal(err)
	}
	w.Net.SetDown("eu-2", true)
	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("download across replica death: %v", err)
	}
	got := append(head, rest...)
	if !bytes.Equal(got, content) {
		t.Fatalf("downloaded %d bytes, mismatch after failover (want %d)", len(got), len(content))
	}

	// The fleet keeps going: fresh requests (same binding, dead slave
	// in backoff) succeed with zero 5xx.
	r2, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(r2.Body)
	r2.Body.Close()
	if err != nil || r2.StatusCode != http.StatusOK || !bytes.Equal(body, content) {
		t.Fatalf("post-kill download: status %d, %d bytes, err %v", r2.StatusCode, len(body), err)
	}
	if errs := h.Stats().Errors; errs != 0 {
		t.Fatalf("handler served %d errors, want 0", errs)
	}
}

package httpd

import (
	"net/http"
	"time"

	"gdn/internal/obs"
)

// Registry handles for the HTTP edge. Stats remains the per-handler
// view for experiments; these aggregate across every handler in the
// process and add the latency distributions the per-struct counters
// never had.
var (
	mRequests2xx = obs.Default.Counter(`gdn_httpd_requests_total{class="2xx"}`,
		"HTTP responses by status class")
	mRequests3xx = obs.Default.Counter(`gdn_httpd_requests_total{class="3xx"}`,
		"HTTP responses by status class")
	mRequests4xx = obs.Default.Counter(`gdn_httpd_requests_total{class="4xx"}`,
		"HTTP responses by status class")
	mRequests5xx = obs.Default.Counter(`gdn_httpd_requests_total{class="5xx"}`,
		"HTTP responses by status class")
	mBytesServed = obs.Default.Counter("gdn_httpd_bytes_served_total",
		"payload bytes sent to HTTP clients")
	mTTFBSeconds = obs.Default.Histogram("gdn_httpd_ttfb_seconds",
		"time from request arrival to the first response byte",
		obs.Seconds, obs.TimeBuckets)
	mRequestSeconds = obs.Default.Histogram("gdn_httpd_request_seconds",
		"full HTTP request service time, body streaming included",
		obs.Seconds, obs.TimeBuckets)
	mSinkWriteSeconds = obs.Default.Histogram("gdn_httpd_sink_write_seconds",
		"time blocked writing one response buffer into the client connection",
		obs.Seconds, obs.TimeBuckets)
)

func requestClass(status int) *obs.Counter {
	switch {
	case status >= 500:
		return mRequests5xx
	case status >= 400:
		return mRequests4xx
	case status >= 300:
		return mRequests3xx
	default:
		return mRequests2xx
	}
}

// statusWriter wraps a ResponseWriter to observe the status code, the
// payload byte count, and the time to first byte — the edge metrics —
// without touching the handlers that produce the response.
type statusWriter struct {
	http.ResponseWriter
	status  int
	bytes   int64
	started func() // invoked once, just before the first header/byte leaves
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
		sw.started()
	}
	sw.ResponseWriter.WriteHeader(code)
}

// Write forwards one buffer to the client connection. On the download
// path p is a borrowed chunk buffer (pooled in the store or the RPC
// stream layer and recycled the moment this call returns), so the
// write must not retain p — net/http's copy into the socket is the one
// boundary copy the edge pays. The histogram around it shows when the
// client connection, not the GDN, is the bottleneck: sink-write time
// is where a slow consumer's backpressure surfaces.
func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
		sw.started()
	}
	start := time.Now()
	n, err := sw.ResponseWriter.Write(p)
	mSinkWriteSeconds.ObserveSince(start)
	sw.bytes += int64(n)
	return n, err
}

package httpd

import (
	"net/http"

	"gdn/internal/obs"
)

// Registry handles for the HTTP edge. Stats remains the per-handler
// view for experiments; these aggregate across every handler in the
// process and add the latency distributions the per-struct counters
// never had.
var (
	mRequests2xx = obs.Default.Counter(`gdn_httpd_requests_total{class="2xx"}`,
		"HTTP responses by status class")
	mRequests3xx = obs.Default.Counter(`gdn_httpd_requests_total{class="3xx"}`,
		"HTTP responses by status class")
	mRequests4xx = obs.Default.Counter(`gdn_httpd_requests_total{class="4xx"}`,
		"HTTP responses by status class")
	mRequests5xx = obs.Default.Counter(`gdn_httpd_requests_total{class="5xx"}`,
		"HTTP responses by status class")
	mBytesServed = obs.Default.Counter("gdn_httpd_bytes_served_total",
		"payload bytes sent to HTTP clients")
	mTTFBSeconds = obs.Default.Histogram("gdn_httpd_ttfb_seconds",
		"time from request arrival to the first response byte",
		obs.Seconds, obs.TimeBuckets)
	mRequestSeconds = obs.Default.Histogram("gdn_httpd_request_seconds",
		"full HTTP request service time, body streaming included",
		obs.Seconds, obs.TimeBuckets)
)

func requestClass(status int) *obs.Counter {
	switch {
	case status >= 500:
		return mRequests5xx
	case status >= 400:
		return mRequests4xx
	case status >= 300:
		return mRequests3xx
	default:
		return mRequests2xx
	}
}

// statusWriter wraps a ResponseWriter to observe the status code, the
// payload byte count, and the time to first byte — the edge metrics —
// without touching the handlers that produce the response.
type statusWriter struct {
	http.ResponseWriter
	status  int
	bytes   int64
	started func() // invoked once, just before the first header/byte leaves
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
		sw.started()
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
		sw.started()
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

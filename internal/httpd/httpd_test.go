package httpd_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gdn"
	"gdn/internal/core"
	"gdn/internal/httpd"
)

// world publishes one package and returns the world plus a running
// HTTP test server backed by a GDN-HTTPD at the given site.
func world(t *testing.T, site string, cfg gdn.HTTPDConfig) (*gdn.World, *httpd.Handler, *httptest.Server) {
	t.Helper()
	w, err := gdn.NewWorld(gdn.DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	mod, err := w.Moderator("eu-nl-vu", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mod.CreatePackage("/apps/graphics/gimp", gdn.Scenario{
		Protocol: gdn.ProtocolMasterSlave,
		Servers:  w.GOSAddrs("eu-nl-vu", "na-ca-ucb"),
	}, gdn.Package{
		Files: map[string][]byte{
			"README":          []byte("The GNU Image Manipulation Program"),
			"src/gimp.tar":    bytes.Repeat([]byte("pixel"), 100_000),
			"docs/manual.txt": []byte("manual text"),
		},
		Meta: map[string]string{"description": "image editor"},
	}); err != nil {
		t.Fatal(err)
	}

	h, err := w.HTTPD(site, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return w, h, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestBrowseAndListing(t *testing.T) {
	_, _, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})

	// Root redirects to /browse/.
	resp, body := get(t, ts.URL+"/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "apps") {
		t.Fatalf("root browse misses /apps: %s", body)
	}

	// Descend to the package.
	_, body = get(t, ts.URL+"/browse/apps/graphics")
	if !strings.Contains(string(body), "/pkg/apps/graphics/gimp") {
		t.Fatalf("directory misses package link: %s", body)
	}

	// The package listing names every file with size and digest.
	resp, body = get(t, ts.URL+"/pkg/apps/graphics/gimp")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	page := string(body)
	for _, want := range []string{"README", "src/gimp.tar", "docs/manual.txt", "image editor", "500000"} {
		if !strings.Contains(page, want) {
			t.Fatalf("listing misses %q:\n%s", want, page)
		}
	}
	if resp.Header.Get("X-GDN-Cost") == "" {
		t.Fatal("listing must report its virtual cost")
	}
}

func TestFileDownload(t *testing.T) {
	_, h, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})

	resp, body := get(t, ts.URL+"/pkg/apps/graphics/gimp/-/src/gimp.tar")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(body) != 500_000 {
		t.Fatalf("downloaded %d bytes, want 500000", len(body))
	}
	if !bytes.Equal(body, bytes.Repeat([]byte("pixel"), 100_000)) {
		t.Fatal("content mismatch")
	}
	if resp.Header.Get("X-GDN-Digest") == "" {
		t.Fatal("download must carry the integrity digest")
	}
	if resp.ContentLength != 500_000 {
		t.Fatalf("content-length = %d", resp.ContentLength)
	}

	st := h.Stats()
	if st.Downloads != 1 || st.BytesServed != 500_000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.VirtualCost <= 0 {
		t.Fatal("download must accumulate virtual cost")
	}
}

func TestNotFoundPaths(t *testing.T) {
	_, h, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})

	cases := []string{
		"/pkg/apps/graphics/nosuch",
		"/pkg/apps/graphics/gimp/-/nosuch.file",
		"/browse/apps/nosuchdir",
		"/unknown/prefix",
	}
	for _, path := range cases {
		resp, _ := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	if h.Stats().Errors < int64(len(cases)) {
		t.Fatalf("stats = %+v", h.Stats())
	}
}

func TestMethodRestrictions(t *testing.T) {
	_, _, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})
	resp, err := http.Post(ts.URL+"/pkg/apps/graphics/gimp", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST = %d, want 405", resp.StatusCode)
	}
}

func TestCachingHTTPDServesRepeatsLocally(t *testing.T) {
	w, h, ts := world(t, "ap-jp-ut", gdn.HTTPDConfig{
		Caching:     true,
		CacheParams: map[string]string{"ttl": "1h"},
	})

	// First download fills the cache replica from the nearest slave.
	get(t, ts.URL+"/pkg/apps/graphics/gimp/-/README")
	costAfterFirst := h.Stats().VirtualCost
	if costAfterFirst <= 0 {
		t.Fatal("first download must cost")
	}

	// Repeats are served from local cache state: zero added virtual
	// cost and no new network frames.
	before := w.Net.Meter()
	get(t, ts.URL+"/pkg/apps/graphics/gimp/-/README")
	if added := h.Stats().VirtualCost - costAfterFirst; added != 0 {
		t.Fatalf("repeat download added %v virtual cost", added)
	}
	if diff := w.Net.Meter().Sub(before); diff.TotalFrames() != 0 {
		t.Fatalf("repeat download sent %d frames", diff.TotalFrames())
	}
}

func TestCachingHTTPDSeesUpdatesAfterTTL(t *testing.T) {
	w, _, ts := world(t, "ap-jp-ut", gdn.HTTPDConfig{
		Caching:     true,
		CacheParams: map[string]string{"ttl": "30s"},
	})
	get(t, ts.URL+"/pkg/apps/graphics/gimp/-/README")

	// A moderator updates the package.
	mod, err := w.Moderator("eu-nl-vu", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mod.UpdatePackage("/apps/graphics/gimp", func(s *gdn.Stub) error {
		return s.AddFile("README", []byte("brand new readme"))
	}); err != nil {
		t.Fatal(err)
	}

	// Within the TTL the proxy may serve the stale copy...
	_, body := get(t, ts.URL+"/pkg/apps/graphics/gimp/-/README")
	if string(body) != "The GNU Image Manipulation Program" {
		t.Fatalf("expected stale content inside TTL, got %q", body)
	}
	// ...after expiry it revalidates and serves the update.
	w.Clock.Advance(31 * time.Second)
	_, body = get(t, ts.URL+"/pkg/apps/graphics/gimp/-/README")
	if string(body) != "brand new readme" {
		t.Fatalf("expected fresh content after TTL, got %q", body)
	}
}

func TestRegisteredCacheBecomesReplica(t *testing.T) {
	w, _, ts := world(t, "ap-jp-ut", gdn.HTTPDConfig{
		Caching:        true,
		CacheParams:    map[string]string{"ttl": "1h"},
		RegisterCaches: true,
	})
	// Touch the package so the HTTPD binds and registers its cache.
	get(t, ts.URL+"/pkg/apps/graphics/gimp")

	// Another client in the same region now finds a replica locally:
	// its lookup returns the HTTPD's cache.
	rt, err := w.UserRuntime("ap-au-mu")
	if err != nil {
		t.Fatal(err)
	}
	oid, _, err := rt.Names().Resolve("/apps/graphics/gimp")
	if err != nil {
		t.Fatal(err)
	}
	addrs, _, err := rt.Resolver().Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	foundCache := false
	for _, ca := range addrs {
		if ca.Role == "cache" && strings.HasPrefix(ca.Address, "ap-jp-ut:") {
			foundCache = true
		}
	}
	if !foundCache {
		t.Fatalf("registered cache not discoverable; lookup = %v", addrs)
	}
}

func TestConcurrentDownloads(t *testing.T) {
	_, h, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/pkg/apps/graphics/gimp/-/src/gimp.tar")
			if err != nil {
				done <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && len(body) != 500_000 {
				err = fmt.Errorf("short read: %d", len(body))
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if st := h.Stats(); st.Downloads != 8 {
		t.Fatalf("downloads = %d", st.Downloads)
	}
}

func TestAttributeSearch(t *testing.T) {
	w, _, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})

	// A second package distinguishes name-matches from meta-matches.
	mod, err := w.Moderator("eu-nl-vu", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mod.CreatePackage("/apps/tex/tetex", gdn.Scenario{
		Protocol: gdn.ProtocolClientServer,
		Servers:  w.GOSAddrs("eu-nl-vu"),
	}, gdn.Package{
		Files: map[string][]byte{"tetex.tar": []byte("tex")},
		Meta:  map[string]string{"description": "TeX typesetting distribution"},
	}); err != nil {
		t.Fatal(err)
	}

	// Meta match: "typesetting" only appears in tetex's description.
	_, body := get(t, ts.URL+"/search?q=typesetting")
	page := string(body)
	if !strings.Contains(page, "/pkg/apps/tex/tetex") {
		t.Fatalf("search misses meta match:\n%s", page)
	}
	if strings.Contains(page, "gimp") {
		t.Fatalf("search over-matches:\n%s", page)
	}

	// Name match.
	_, body = get(t, ts.URL+"/search?q=gimp")
	if !strings.Contains(string(body), "/pkg/apps/graphics/gimp") {
		t.Fatalf("search misses name match:\n%s", body)
	}

	// Empty query is a client error.
	resp, _ := get(t, ts.URL+"/search")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query = %d", resp.StatusCode)
	}
}

// getWith issues a GET with extra headers.
func getWith(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestRangeRequests(t *testing.T) {
	_, h, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})
	full := bytes.Repeat([]byte("pixel"), 100_000)
	url := ts.URL + "/pkg/apps/graphics/gimp/-/src/gimp.tar"

	cases := []struct {
		name, spec string
		wantFrom   int64
		wantTo     int64 // inclusive
	}{
		{"middle", "bytes=100000-299999", 100_000, 299_999},
		{"open-ended", "bytes=499990-", 499_990, 499_999},
		{"suffix", "bytes=-5", 499_995, 499_999},
		{"first-byte", "bytes=0-0", 0, 0},
		{"clamped-end", "bytes=499000-900000", 499_000, 499_999},
	}
	for _, tc := range cases {
		resp, body := getWith(t, url, map[string]string{"Range": tc.spec})
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("%s: status %d, want 206", tc.name, resp.StatusCode)
		}
		if !bytes.Equal(body, full[tc.wantFrom:tc.wantTo+1]) {
			t.Fatalf("%s: wrong bytes (%d returned)", tc.name, len(body))
		}
		wantCR := fmt.Sprintf("bytes %d-%d/%d", tc.wantFrom, tc.wantTo, len(full))
		if cr := resp.Header.Get("Content-Range"); cr != wantCR {
			t.Fatalf("%s: Content-Range %q, want %q", tc.name, cr, wantCR)
		}
		if resp.Header.Get("ETag") == "" || resp.Header.Get("Accept-Ranges") != "bytes" {
			t.Fatalf("%s: range response misses ETag/Accept-Ranges", tc.name)
		}
	}

	// Unsatisfiable ranges answer 416 with the star form.
	for _, spec := range []string{"bytes=500000-", "bytes=-0", "bytes=9999999-10000000"} {
		resp, _ := getWith(t, url, map[string]string{"Range": spec})
		if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
			t.Fatalf("%s: status %d, want 416", spec, resp.StatusCode)
		}
		if cr := resp.Header.Get("Content-Range"); cr != fmt.Sprintf("bytes */%d", len(full)) {
			t.Fatalf("%s: Content-Range %q", spec, cr)
		}
	}

	// Malformed and multi-range headers are ignored: full 200 body.
	for _, spec := range []string{"bytes=10-5", "bytes=a-b", "chunks=0-5", "bytes=0-5,10-15"} {
		resp, body := getWith(t, url, map[string]string{"Range": spec})
		if resp.StatusCode != http.StatusOK || len(body) != len(full) {
			t.Fatalf("%s: status %d body %d; want the full file", spec, resp.StatusCode, len(body))
		}
	}

	if st := h.Stats(); st.Ranges != int64(len(cases)) {
		t.Fatalf("stats.Ranges = %d, want %d", st.Ranges, len(cases))
	}
}

func TestETagRevalidationAndIfRange(t *testing.T) {
	_, h, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})
	url := ts.URL + "/pkg/apps/graphics/gimp/-/README"

	resp, body := get(t, url)
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("download carries no ETag")
	}
	if want := fmt.Sprintf(`"%x"`, sha256.Sum256(body)); etag != want {
		t.Fatalf("ETag %s is not the content digest %s", etag, want)
	}

	// If-None-Match with the current tag: 304, nothing streamed.
	resp, body = getWith(t, url, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("revalidation = %d with %d body bytes, want bare 304", resp.StatusCode, len(body))
	}
	if h.Stats().NotModified != 1 {
		t.Fatalf("stats.NotModified = %d", h.Stats().NotModified)
	}
	// A list containing the tag matches; a stale tag does not.
	resp, _ = getWith(t, url, map[string]string{"If-None-Match": `"deadbeef", ` + etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("list revalidation = %d", resp.StatusCode)
	}
	resp, _ = getWith(t, url, map[string]string{"If-None-Match": `"deadbeef"`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale revalidation = %d, want 200", resp.StatusCode)
	}

	// If-Range with the current tag honours the range; with a stale tag
	// the whole (changed) file is served instead of a misaligned slice.
	resp, part := getWith(t, url, map[string]string{"Range": "bytes=0-3", "If-Range": etag})
	if resp.StatusCode != http.StatusPartialContent || len(part) != 4 {
		t.Fatalf("If-Range match: %d with %d bytes", resp.StatusCode, len(part))
	}
	resp, part = getWith(t, url, map[string]string{"Range": "bytes=0-3", "If-Range": `"stale"`})
	if resp.StatusCode != http.StatusOK || len(part) == 4 {
		t.Fatalf("If-Range mismatch: %d with %d bytes, want the full file", resp.StatusCode, len(part))
	}
}

// TestDiskCacheSurvivesRestart reboots a caching HTTPD on the same
// StateDir and checks the second instance refills from disk, not the
// network: the whole point of wiring StateDir through httpd.Config.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	w, err := gdn.NewWorld(gdn.DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	mod, err := w.Moderator("eu-nl-vu", "alice")
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("cache me"), 100_000)
	if _, _, err := mod.CreatePackage("/apps/tool", gdn.Scenario{
		Protocol: gdn.ProtocolClientServer,
		Servers:  w.GOSAddrs("eu-nl-vu"),
	}, gdn.Package{Files: map[string][]byte{"tool.bin": content}}); err != nil {
		t.Fatal(err)
	}

	stateDir := t.TempDir()
	rt, err := w.UserRuntime("ap-jp-ut")
	if err != nil {
		t.Fatal(err)
	}
	start := func(objAddr string) *httpd.Handler {
		disp, err := core.NewDispatcher(w.Net, "ap-jp-ut", objAddr, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { disp.Close() })
		h, err := httpd.New(httpd.Config{
			Runtime:      rt,
			CacheObjects: true,
			Disp:         disp,
			CacheParams:  map[string]string{"ttl": "1h"},
			StateDir:     stateDir,
			ScrubEvery:   -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { h.Close() })
		return h
	}

	h1 := start("ap-jp-ut:hcache1")
	ts1 := httptest.NewServer(h1)
	_, body := get(t, ts1.URL+"/pkg/apps/tool/-/tool.bin")
	if !bytes.Equal(body, content) {
		t.Fatal("first download corrupt")
	}
	chunksOnDisk := h1.Chunks().Stats().Chunks
	if chunksOnDisk == 0 {
		t.Fatal("first download cached nothing")
	}
	ts1.Close()
	h1.Close()

	// Reboot: a fresh handler on the same directory re-indexes the
	// chunks the first one wrote.
	h2 := start("ap-jp-ut:hcache2")
	ts2 := httptest.NewServer(h2)
	t.Cleanup(ts2.Close)
	if got := h2.Chunks().Stats().Chunks; got != chunksOnDisk {
		t.Fatalf("restart recovered %d chunks, want %d", got, chunksOnDisk)
	}
	before := h2.Chunks().Stats()
	_, body = get(t, ts2.URL+"/pkg/apps/tool/-/tool.bin")
	if !bytes.Equal(body, content) {
		t.Fatal("post-restart download corrupt")
	}
	after := h2.Chunks().Stats()
	if after.Chunks != before.Chunks || after.Dedup != before.Dedup {
		t.Fatalf("post-restart refill fetched chunk bodies (%+v -> %+v); disk cache not reused", before, after)
	}
}

package httpd_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gdn"
	"gdn/internal/httpd"
)

// world publishes one package and returns the world plus a running
// HTTP test server backed by a GDN-HTTPD at the given site.
func world(t *testing.T, site string, cfg gdn.HTTPDConfig) (*gdn.World, *httpd.Handler, *httptest.Server) {
	t.Helper()
	w, err := gdn.NewWorld(gdn.DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	mod, err := w.Moderator("eu-nl-vu", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mod.CreatePackage("/apps/graphics/gimp", gdn.Scenario{
		Protocol: gdn.ProtocolMasterSlave,
		Servers:  w.GOSAddrs("eu-nl-vu", "na-ca-ucb"),
	}, gdn.Package{
		Files: map[string][]byte{
			"README":          []byte("The GNU Image Manipulation Program"),
			"src/gimp.tar":    bytes.Repeat([]byte("pixel"), 100_000),
			"docs/manual.txt": []byte("manual text"),
		},
		Meta: map[string]string{"description": "image editor"},
	}); err != nil {
		t.Fatal(err)
	}

	h, err := w.HTTPD(site, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return w, h, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestBrowseAndListing(t *testing.T) {
	_, _, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})

	// Root redirects to /browse/.
	resp, body := get(t, ts.URL+"/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "apps") {
		t.Fatalf("root browse misses /apps: %s", body)
	}

	// Descend to the package.
	_, body = get(t, ts.URL+"/browse/apps/graphics")
	if !strings.Contains(string(body), "/pkg/apps/graphics/gimp") {
		t.Fatalf("directory misses package link: %s", body)
	}

	// The package listing names every file with size and digest.
	resp, body = get(t, ts.URL+"/pkg/apps/graphics/gimp")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	page := string(body)
	for _, want := range []string{"README", "src/gimp.tar", "docs/manual.txt", "image editor", "500000"} {
		if !strings.Contains(page, want) {
			t.Fatalf("listing misses %q:\n%s", want, page)
		}
	}
	if resp.Header.Get("X-GDN-Cost") == "" {
		t.Fatal("listing must report its virtual cost")
	}
}

func TestFileDownload(t *testing.T) {
	_, h, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})

	resp, body := get(t, ts.URL+"/pkg/apps/graphics/gimp/-/src/gimp.tar")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(body) != 500_000 {
		t.Fatalf("downloaded %d bytes, want 500000", len(body))
	}
	if !bytes.Equal(body, bytes.Repeat([]byte("pixel"), 100_000)) {
		t.Fatal("content mismatch")
	}
	if resp.Header.Get("X-GDN-Digest") == "" {
		t.Fatal("download must carry the integrity digest")
	}
	if resp.ContentLength != 500_000 {
		t.Fatalf("content-length = %d", resp.ContentLength)
	}

	st := h.Stats()
	if st.Downloads != 1 || st.BytesServed != 500_000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.VirtualCost <= 0 {
		t.Fatal("download must accumulate virtual cost")
	}
}

func TestNotFoundPaths(t *testing.T) {
	_, h, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})

	cases := []string{
		"/pkg/apps/graphics/nosuch",
		"/pkg/apps/graphics/gimp/-/nosuch.file",
		"/browse/apps/nosuchdir",
		"/unknown/prefix",
	}
	for _, path := range cases {
		resp, _ := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	if h.Stats().Errors < int64(len(cases)) {
		t.Fatalf("stats = %+v", h.Stats())
	}
}

func TestMethodRestrictions(t *testing.T) {
	_, _, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})
	resp, err := http.Post(ts.URL+"/pkg/apps/graphics/gimp", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST = %d, want 405", resp.StatusCode)
	}
}

func TestCachingHTTPDServesRepeatsLocally(t *testing.T) {
	w, h, ts := world(t, "ap-jp-ut", gdn.HTTPDConfig{
		Caching:     true,
		CacheParams: map[string]string{"ttl": "1h"},
	})

	// First download fills the cache replica from the nearest slave.
	get(t, ts.URL+"/pkg/apps/graphics/gimp/-/README")
	costAfterFirst := h.Stats().VirtualCost
	if costAfterFirst <= 0 {
		t.Fatal("first download must cost")
	}

	// Repeats are served from local cache state: zero added virtual
	// cost and no new network frames.
	before := w.Net.Meter()
	get(t, ts.URL+"/pkg/apps/graphics/gimp/-/README")
	if added := h.Stats().VirtualCost - costAfterFirst; added != 0 {
		t.Fatalf("repeat download added %v virtual cost", added)
	}
	if diff := w.Net.Meter().Sub(before); diff.TotalFrames() != 0 {
		t.Fatalf("repeat download sent %d frames", diff.TotalFrames())
	}
}

func TestCachingHTTPDSeesUpdatesAfterTTL(t *testing.T) {
	w, _, ts := world(t, "ap-jp-ut", gdn.HTTPDConfig{
		Caching:     true,
		CacheParams: map[string]string{"ttl": "30s"},
	})
	get(t, ts.URL+"/pkg/apps/graphics/gimp/-/README")

	// A moderator updates the package.
	mod, err := w.Moderator("eu-nl-vu", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mod.UpdatePackage("/apps/graphics/gimp", func(s *gdn.Stub) error {
		return s.AddFile("README", []byte("brand new readme"))
	}); err != nil {
		t.Fatal(err)
	}

	// Within the TTL the proxy may serve the stale copy...
	_, body := get(t, ts.URL+"/pkg/apps/graphics/gimp/-/README")
	if string(body) != "The GNU Image Manipulation Program" {
		t.Fatalf("expected stale content inside TTL, got %q", body)
	}
	// ...after expiry it revalidates and serves the update.
	w.Clock.Advance(31 * time.Second)
	_, body = get(t, ts.URL+"/pkg/apps/graphics/gimp/-/README")
	if string(body) != "brand new readme" {
		t.Fatalf("expected fresh content after TTL, got %q", body)
	}
}

func TestRegisteredCacheBecomesReplica(t *testing.T) {
	w, _, ts := world(t, "ap-jp-ut", gdn.HTTPDConfig{
		Caching:        true,
		CacheParams:    map[string]string{"ttl": "1h"},
		RegisterCaches: true,
	})
	// Touch the package so the HTTPD binds and registers its cache.
	get(t, ts.URL+"/pkg/apps/graphics/gimp")

	// Another client in the same region now finds a replica locally:
	// its lookup returns the HTTPD's cache.
	rt, err := w.UserRuntime("ap-au-mu")
	if err != nil {
		t.Fatal(err)
	}
	oid, _, err := rt.Names().Resolve("/apps/graphics/gimp")
	if err != nil {
		t.Fatal(err)
	}
	addrs, _, err := rt.Resolver().Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	foundCache := false
	for _, ca := range addrs {
		if ca.Role == "cache" && strings.HasPrefix(ca.Address, "ap-jp-ut:") {
			foundCache = true
		}
	}
	if !foundCache {
		t.Fatalf("registered cache not discoverable; lookup = %v", addrs)
	}
}

func TestConcurrentDownloads(t *testing.T) {
	_, h, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/pkg/apps/graphics/gimp/-/src/gimp.tar")
			if err != nil {
				done <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && len(body) != 500_000 {
				err = fmt.Errorf("short read: %d", len(body))
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if st := h.Stats(); st.Downloads != 8 {
		t.Fatalf("downloads = %d", st.Downloads)
	}
}

func TestAttributeSearch(t *testing.T) {
	w, _, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{})

	// A second package distinguishes name-matches from meta-matches.
	mod, err := w.Moderator("eu-nl-vu", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mod.CreatePackage("/apps/tex/tetex", gdn.Scenario{
		Protocol: gdn.ProtocolClientServer,
		Servers:  w.GOSAddrs("eu-nl-vu"),
	}, gdn.Package{
		Files: map[string][]byte{"tetex.tar": []byte("tex")},
		Meta:  map[string]string{"description": "TeX typesetting distribution"},
	}); err != nil {
		t.Fatal(err)
	}

	// Meta match: "typesetting" only appears in tetex's description.
	_, body := get(t, ts.URL+"/search?q=typesetting")
	page := string(body)
	if !strings.Contains(page, "/pkg/apps/tex/tetex") {
		t.Fatalf("search misses meta match:\n%s", page)
	}
	if strings.Contains(page, "gimp") {
		t.Fatalf("search over-matches:\n%s", page)
	}

	// Name match.
	_, body = get(t, ts.URL+"/search?q=gimp")
	if !strings.Contains(string(body), "/pkg/apps/graphics/gimp") {
		t.Fatalf("search misses name match:\n%s", body)
	}

	// Empty query is a client error.
	resp, _ := get(t, ts.URL+"/search")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query = %d", resp.StatusCode)
	}
}

package httpd_test

import (
	"net/http"
	"testing"
	"time"

	"gdn"
)

// Registered-cache leasing: a caching HTTPD that registers its cache
// replicas holds a registration session with the location service,
// renewed by heartbeat, so a killed proxy's caches vanish from lookups
// within one TTL — the same liveness contract object servers run under
// (the ROADMAP open item "cache replicas still register permanently").

// cacheRegistered reports whether the na-ny-cu proxy's cache replica is
// what a nearby lookup returns.
func cacheRegistered(t *testing.T, w *gdn.World, name string) bool {
	t.Helper()
	oid, _, err := w.NameService("na-ny-cu").Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.GLSResolver("na-ny-cu", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	addrs, _, err := res.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	for _, ca := range addrs {
		if ca.Address == "na-ny-cu:httpd-obj" {
			return true
		}
	}
	return false
}

func TestRegisteredCacheLeasesAndAgesOut(t *testing.T) {
	const ttl = time.Second
	w, h, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{
		Caching:        true,
		RegisterCaches: true,
		LeaseTTL:       ttl,
		RenewEvery:     -1, // the test heartbeats by hand to simulate life and death
	})

	const name = "/apps/graphics/gimp"
	resp, _ := get(t, ts.URL+"/pkg"+name+"/-/README")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download status = %d", resp.StatusCode)
	}
	if !cacheRegistered(t, w, name) {
		t.Fatal("cache replica must be registered after the first download")
	}

	// Heartbeats keep the registration alive well past the original
	// TTL.
	for i := 0; i < 6; i++ {
		time.Sleep(ttl / 4)
		h.RenewLeases()
	}
	if !cacheRegistered(t, w, name) {
		t.Fatal("renewed cache registration must stay in lookups past the TTL")
	}

	// The proxy is killed (no orderly close, no more heartbeats): the
	// cache ages out of lookups within one TTL, and clients fall back
	// to the package's real replicas.
	deadline := time.Now().Add(10 * ttl)
	for cacheRegistered(t, w, name) {
		if time.Now().After(deadline) {
			t.Fatal("killed proxy's cache registration never aged out")
		}
		time.Sleep(ttl / 5)
	}
	// The object itself is still resolvable through its GOS replicas.
	resp, _ = get(t, ts.URL+"/pkg"+name+"/-/README")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download after age-out status = %d", resp.StatusCode)
	}
}

func TestHTTPDCloseEndsSessionImmediately(t *testing.T) {
	w, h, ts := world(t, "na-ny-cu", gdn.HTTPDConfig{
		Caching:        true,
		RegisterCaches: true,
		LeaseTTL:       time.Minute, // far longer than the test
		RenewEvery:     -1,
	})
	const name = "/apps/graphics/gimp"
	if resp, _ := get(t, ts.URL+"/pkg"+name+"/-/README"); resp.StatusCode != http.StatusOK {
		t.Fatalf("download status = %d", resp.StatusCode)
	}
	if !cacheRegistered(t, w, name) {
		t.Fatal("cache replica must be registered after the first download")
	}

	// Orderly shutdown closes the registration session: no TTL wait,
	// the caches are out of lookups at once.
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if cacheRegistered(t, w, name) {
		t.Fatal("closed proxy's cache registration must vanish immediately")
	}
}
